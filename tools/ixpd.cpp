// ixpd — always-on ingest daemon: flowgen traffic through the sharded
// streaming engine into the live detector.
//
//   ixpd --profile us2 --minutes 2880 --shards 4 [--seed 7]
//        [--sampling 10] [--queue 4096] [--policy block|drop] [--wire 1]
//        [--batch 512] [--gen-threads N] [--train-threads N]
//        [--agg-threads N] [--simd auto|scalar|avx2]
//        [--stats-every 240] [--warmup 1440] [--retrain 1440]
//   ixpd --listen <port> [--bind 127.0.0.1] [--backend auto|recvmmsg|io_uring]
//        [--recv-batch 32] [--idle-stop-ms 0] [--pool-slots 4096]
//        --profile ... --minutes ...
//
// The daemon replays a seeded synthetic trace (the repo's stand-in for the
// IXP's sFlow + BGP feeds, DESIGN.md §1) as fast as the engine accepts it:
// every minute of flows is expanded back into sFlow datagrams (optionally
// full wire encoding, exercising the decoder), interleaved with the BGP
// blackhole announcements, and pushed through decode → shard → collect →
// merge → score. The score stage feeds core::LiveDetector, which trains
// after the warmup day and then emits detections, printed as they happen.
// A stats heartbeat prints every --stats-every minutes of stream time and
// a final throughput report (flows/sec, per-stage utilization) at exit.
//
// --listen replaces the in-process feed with the wire: sFlow datagrams
// arrive over UDP (from tools/scrubber-loadgen or any sFlow v5 exporter)
// through src/netio's batched listener. The BGP schedule is pre-drawn from
// (--profile, --minutes, --seed) — which must match the load generator's —
// and interleaved by export minute exactly as the in-process feed would,
// so verdicts match the in-process run bit for bit (DESIGN.md §11). The
// run ends at the load generator's FIN sentinel (or --idle-stop-ms of
// silence, 0 = wait forever); the report then includes the listener line:
// datagrams/bytes received, ring-full drops, kernel socket-buffer drops.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <map>
#include <stdexcept>
#include <string>
#include <thread>

#include "core/live_detector.hpp"
#include "flowgen/generator.hpp"
#include "netio/listener.hpp"
#include "runtime/engine.hpp"
#include "util/simd.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace scrubber;

/// Minimal --key value argument parser (same shape as scrubberctl's).
class Args {
 public:
  Args(int argc, char** argv, int first) {
    for (int i = first; i + 1 < argc; i += 2) {
      if (std::strncmp(argv[i], "--", 2) != 0) {
        throw std::runtime_error(std::string("expected --option, got ") +
                                 argv[i]);
      }
      values_[argv[i] + 2] = argv[i + 1];
    }
    if ((argc - first) % 2 != 0) {
      throw std::runtime_error("dangling option without a value");
    }
  }

  [[nodiscard]] std::string get(const std::string& key,
                                const std::string& fallback) const {
    const auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }
  [[nodiscard]] std::uint64_t number(const std::string& key,
                                     std::uint64_t fallback) const {
    const auto it = values_.find(key);
    return it == values_.end() ? fallback : std::stoull(it->second);
  }

 private:
  std::map<std::string, std::string> values_;
};

flowgen::IxpProfile profile_by_name(const std::string& name) {
  for (const auto& profile : flowgen::all_ixp_profiles()) {
    std::string lowered = profile.name;  // "IXP-US1" -> accept "us1"
    for (auto& c : lowered) c = static_cast<char>(std::tolower(c));
    if (lowered == "ixp-" + name || lowered == name) return profile;
  }
  if (name == "sas") return flowgen::self_attack_profile();
  throw std::runtime_error("unknown profile: " + name +
                           " (use ce1/us1/se/us2/ce2/sas)");
}

int run(int argc, char** argv) {
  const Args args(argc, argv, 1);
  const auto profile = profile_by_name(args.get("profile", "us2"));
  const std::uint32_t minutes =
      static_cast<std::uint32_t>(args.number("minutes", 2880));
  const std::uint64_t seed = args.number("seed", 7);
  const auto sampling = static_cast<std::uint32_t>(args.number("sampling", 10));
  const bool wire = args.number("wire", 0) != 0;
  const std::uint32_t stats_every =
      static_cast<std::uint32_t>(args.number("stats-every", 240));
  // Trace generation threads: the source is deterministic for any value
  // (per-minute RNG streams), so default to every available core.
  const auto gen_threads = static_cast<unsigned>(args.number(
      "gen-threads", std::max(1U, std::thread::hardware_concurrency())));
  // Learning-plane threads (LiveDetector retraining): deterministic for
  // any value too (DESIGN.md §9), so also default to every core.
  const unsigned train_threads = util::set_training_threads(
      static_cast<unsigned>(args.number("train-threads", 0)));
  // Scoring kernel dispatch: scores are bit-identical at every level
  // (DESIGN.md §13), so this only trades wall time — scalar is the
  // apples-to-apples baseline for perf triage. A level the build or CPU
  // cannot execute is clamped down, never trusted.
  const std::string simd = args.get("simd", "auto");
  if (simd == "scalar") {
    util::set_simd_override(util::SimdLevel::kScalar);
  } else if (simd == "avx2") {
    util::set_simd_override(util::SimdLevel::kAvx2);
  } else if (simd != "auto") {
    throw std::runtime_error("--simd must be auto, scalar or avx2");
  }

  runtime::EngineConfig engine_config;
  engine_config.shards = static_cast<std::size_t>(args.number("shards", 4));
  engine_config.queue_capacity =
      static_cast<std::size_t>(args.number("queue", 4096));
  const std::string policy = args.get("policy", "block");
  if (policy == "drop") {
    engine_config.backpressure = runtime::Backpressure::kDrop;
  } else if (policy != "block") {
    throw std::runtime_error("--policy must be block or drop");
  }
  engine_config.collector.sampling_rate = sampling;
  engine_config.batch_records =
      static_cast<std::size_t>(args.number("batch", runtime::kDefaultBatchRecords));
  // Pooled wire buffers for --listen mode: the receiver scatters datagrams
  // straight into pool slots and the ring carries handles — the
  // zero-allocation ingest path (DESIGN.md §15). 0 reverts to copying each
  // datagram into a heap vector; ignored without --listen. The heartbeat
  // and final report show pool occupancy/highwater/exhaustion when active.
  engine_config.wire_pool_slots = static_cast<std::size_t>(args.number(
      "pool-slots", args.get("listen", "").empty() ? 0 : 4096));

  core::LiveDetectorConfig detector_config;
  detector_config.warmup_min =
      static_cast<std::uint32_t>(args.number("warmup", 1440));
  detector_config.retrain_interval_min =
      static_cast<std::uint32_t>(args.number("retrain", 1440));
  detector_config.min_flows_per_target =
      static_cast<std::uint32_t>(args.number("min-flows", 8));
  detector_config.seed = seed ^ 0xD43;
  // Feature-build threads for the per-minute aggregation (bit-identical
  // for any value, DESIGN.md §10); 0 = full training pool.
  detector_config.agg_threads =
      static_cast<unsigned>(args.number("agg-threads", 0));

  std::uint64_t detections = 0;
  core::LiveDetector detector(
      detector_config, [&](const core::Detection& detection) {
        ++detections;
        const std::string vector =
            detection.vector
                ? " vector=" + std::string(net::vector_name(*detection.vector))
                : "";
        std::printf("DETECT minute=%u target=%s score=%.3f flows=%u%s\n",
                    detection.minute, detection.target.to_string().c_str(),
                    detection.score, detection.flow_count, vector.c_str());
      });

  runtime::Engine engine(
      engine_config,
      [&](std::uint32_t minute, std::span<const net::FlowRecord> flows) {
        detector.ingest_minute(minute, flows);
      });

  flowgen::TrafficGenerator generator(profile, seed);
  std::size_t next_update = 0;
  const std::string listen = args.get("listen", "");
  std::string listener_summary;
  if (!listen.empty()) {
    // Wire mode: flows arrive over UDP; only the BGP control plane is
    // drawn locally (it depends on seed + range alone) and interleaved by
    // the export minute peeked off each datagram — the same ordering the
    // in-process feed below produces.
    generator.schedule_control_plane(0, minutes);
    const auto& updates = generator.updates();
    netio::ListenerConfig listener_config;
    listener_config.bind_address = args.get("bind", "127.0.0.1");
    listener_config.port =
        static_cast<std::uint16_t>(args.number("listen", 0));
    listener_config.batch_msgs =
        static_cast<std::size_t>(args.number("recv-batch", 32));
    listener_config.idle_stop_ms =
        static_cast<int>(args.number("idle-stop-ms", 0));
    const std::string backend = args.get("backend", "auto");
    if (backend == "recvmmsg") {
      listener_config.backend = netio::RecvBackend::kRecvmmsg;
    } else if (backend == "io_uring") {
      listener_config.backend = netio::RecvBackend::kIoUring;
    } else if (backend != "auto") {
      throw std::runtime_error("--backend must be auto, recvmmsg or io_uring");
    }
    netio::UdpListener listener(
        listener_config, engine, [&](std::uint32_t minute) {
          while (next_update < updates.size() &&
                 updates[next_update].first <= minute) {
            engine.push_bgp(updates[next_update].second,
                            std::uint64_t{updates[next_update].first} *
                                60'000);
            ++next_update;
          }
        });
    std::printf("ixpd: profile=%s minutes=%u shards=%zu queue=%zu batch=%zu "
                "policy=%s listen=%s:%u backend=%s simd=%s seed=%llu\n",
                profile.name.c_str(), minutes, engine_config.shards,
                engine_config.queue_capacity, engine_config.batch_records,
                policy.c_str(), listener_config.bind_address.c_str(),
                listener.port(), backend.c_str(),
                util::simd_level_name(util::simd_level()),
                static_cast<unsigned long long>(seed));
    std::fflush(stdout);
    // This (the main) thread becomes the engine's producer: it runs the
    // receive loop, pushes every datagram and BGP update, and finishes
    // the engine when the FIN sentinel arrives.
    listener.run();
    const netio::ListenerSnapshot snapshot = listener.stats();
    if (!snapshot.fin_seen) engine.finish();  // idle timeout: drain anyway
    listener_summary = snapshot.summary();
  } else {
    std::printf("ixpd: profile=%s minutes=%u shards=%zu queue=%zu batch=%zu "
                "policy=%s sampling=1/%u wire=%d gen-threads=%u "
                "train-threads=%u agg-threads=%u simd=%s seed=%llu\n",
                profile.name.c_str(), minutes, engine_config.shards,
                engine_config.queue_capacity, engine_config.batch_records,
                policy.c_str(), sampling, wire, gen_threads, train_threads,
                detector_config.agg_threads,
                util::simd_level_name(util::simd_level()),
                static_cast<unsigned long long>(seed));

    const net::Ipv4Address agent = net::Ipv4Address::from_octets(10, 99, 0, 1);
    generator.generate_stream(
        0, minutes, flowgen::TrafficGenerator::Labeling::kBlackholeRegistry,
        [&](std::uint32_t minute, std::span<const net::FlowRecord> flows) {
          // BGP first: announcements effective in minute M must be in the
          // registry before M's bin closes (same order the route server
          // feed would deliver them).
          const auto& updates = generator.updates();
          while (next_update < updates.size() &&
                 updates[next_update].first <= minute) {
            engine.push_bgp(updates[next_update].second,
                            std::uint64_t{updates[next_update].first} * 60'000);
            ++next_update;
          }
          for (const auto& datagram :
               core::flows_to_datagrams(flows, sampling, agent)) {
            if (wire) {
              engine.push_wire(datagram.encode());
            } else {
              engine.push(datagram);
            }
          }
          if (stats_every != 0 && minute != 0 && minute % stats_every == 0) {
            std::printf("STATS minute=%u %s\n", minute,
                        engine.stats().stats_line().c_str());
            std::fflush(stdout);
          }
        },
        gen_threads);
    engine.finish();
  }

  const runtime::EngineSnapshot snapshot = engine.stats();
  std::printf("\n--- ixpd report ---\n%s", snapshot.report().c_str());
  if (!listener_summary.empty()) {
    std::printf("%s\n", listener_summary.c_str());
  }
  std::printf("detector: trained=%d retrains=%u window_flows=%zu "
              "detections=%llu\n",
              detector.ready(), detector.retrain_count(),
              detector.window_flows(),
              static_cast<unsigned long long>(detections));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& error) {
    std::fprintf(stderr, "ixpd: %s\n", error.what());
    return 1;
  }
}
