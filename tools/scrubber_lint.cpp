// scrubber-lint — project-specific static analysis for the IXP scrubber.
//
// clang-tidy covers general C++ hygiene; this linter enforces the handful
// of *project* invariants that keep the concurrent ingest runtime honest
// and that no off-the-shelf check can express:
//
//   scrubber-memory-order      every std::atomic load/store/RMW in
//                              src/runtime/ names an explicit
//                              std::memory_order (no seq_cst-by-default;
//                              the ordering argument is documentation of
//                              the synchronization protocol)
//   scrubber-hot-path-blocking no mutexes, condition variables, or
//                              sleeping calls inside regions marked
//                              // scrubber-hot-begin / // scrubber-hot-end
//                              (the SPSC ring push/pop paths); socket
//                              syscalls (recv*/send*/poll/select/...)
//                              count as blocking too, everywhere except
//                              src/netio/ — the listener is the one
//                              component allowed to touch the wire
//   scrubber-hot-path-alloc    no heap allocation inside scrubber-hot
//                              regions: no new/make_unique/make_shared,
//                              no malloc family, no growing container
//                              calls (push_back, resize, reserve, ...) —
//                              per-record batch kernels preallocate
//                              outside the region
//   scrubber-hot-path-container no node-based std::map/unordered_map/
//                              unordered_set inside scrubber-hot regions
//                              or anywhere in src/net/packet.* and
//                              src/core/aggregator.* — the flow hot path
//                              runs on util::FlatHash / sorted vectors
//                              (contiguous, insertion-ordered, no
//                              per-node allocation)
//   scrubber-raw-rand          no rand()/srand()/std::random_device
//                              outside src/util/rng — all randomness is
//                              seeded and reproducible
//   scrubber-raw-thread        no std::thread/std::jthread outside
//                              src/util/thread_pool.hpp, src/runtime/
//                              and src/netio/ (the serving path owns its
//                              shard threads; the listener owns its
//                              receive thread) — everything else fans out
//                              through util::training_pool()
//                              (deterministic for any thread count);
//                              static member access like
//                              std::thread::hardware_concurrency() is
//                              allowed anywhere
//   scrubber-float-counter     byte/packet counters must not accumulate
//                              in float/double (silent precision loss at
//                              IXP volumes); integers only
//   scrubber-naked-new         no naked new/delete — ownership goes
//                              through containers and smart pointers
//   scrubber-include-guard     headers use #pragma once, not #ifndef
//                              guard macros
//   scrubber-banned-construct  std::regex (unbounded backtracking on hot
//                              paths) and volatile (it is not
//                              synchronization) are banned in src/
//
// Suppression: append `// NOLINT(scrubber-<rule>): <justification>` to
// the offending line, or put `// NOLINTNEXTLINE(scrubber-<rule>): <why>`
// on the line above. The justification text is mandatory — a bare NOLINT
// is itself a violation (scrubber-nolint-needs-reason).
//
// Output: one `file:line: rule-id message` diagnostic per violation;
// exit status 1 when anything fired, 0 when clean, 2 on usage/IO errors.
// Wired into ctest as `scrubber_lint_repo` over src/, tools/ and bench/.
//
// The "parser" is a comment/string-aware token scanner, not a full C++
// front end. That is deliberate: every rule here is lexical by design so
// the linter stays dependency-free, builds in a second, and never goes
// stale against compiler versions. Rules that need semantics (aliasing,
// escape analysis) belong in the sanitizer matrix, not here.

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace {

namespace fs = std::filesystem;

struct Token {
  std::string text;
  int line = 0;
  bool is_identifier = false;
};

struct Comment {
  std::string text;
  int line = 0;
};

struct Directive {
  std::string text;  ///< full preprocessor line, whitespace-normalized
  int line = 0;
};

struct HotRegion {
  int begin_line = 0;
  int end_line = 0;  ///< 0 while unclosed
};

/// One source file, lexed: code tokens with comments and strings stripped
/// out, plus the comments and preprocessor directives kept on the side
/// (NOLINT markers and include-guard checks need them).
struct LexedFile {
  std::string rel_path;  ///< forward-slash path relative to the scan root
  std::vector<Token> tokens;
  std::vector<Comment> comments;
  std::vector<Directive> directives;
  std::vector<HotRegion> hot_regions;
  int last_line = 1;
};

struct Diagnostic {
  std::string file;
  int line = 0;
  std::string rule;
  std::string message;

  bool operator<(const Diagnostic& other) const {
    return std::tie(file, line, rule) <
           std::tie(other.file, other.line, other.rule);
  }
};

bool is_ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}
bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// Comment/string/char-literal aware scanner. Raw strings are handled
/// (R"delim(...)delim"), line continuations inside directives are not —
/// the codebase does not use them.
LexedFile lex(const std::string& rel_path, const std::string& text) {
  LexedFile out;
  out.rel_path = rel_path;
  const std::size_t n = text.size();
  std::size_t i = 0;
  int line = 1;
  bool at_line_start = true;

  // A marker is the comment's *entire* content (mentioning a marker in
  // prose must not open a region).
  const auto note_hot_marker = [&](const std::string& comment, int at) {
    const auto first = comment.find_first_not_of(" \t");
    const auto last = comment.find_last_not_of(" \t\r");
    const std::string trimmed =
        first == std::string::npos
            ? std::string()
            : comment.substr(first, last - first + 1);
    if (trimmed == "scrubber-hot-begin") {
      out.hot_regions.push_back(HotRegion{at, 0});
    } else if (trimmed == "scrubber-hot-end") {
      if (!out.hot_regions.empty() && out.hot_regions.back().end_line == 0) {
        out.hot_regions.back().end_line = at;
      } else {
        out.hot_regions.push_back(HotRegion{0, at});  // end without begin
      }
    }
  };

  while (i < n) {
    const char c = text[i];
    if (c == '\n') {
      ++line;
      ++i;
      at_line_start = true;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c)) != 0) {
      ++i;
      continue;
    }
    // Preprocessor directive: consume the whole line.
    if (c == '#' && at_line_start) {
      std::size_t end = text.find('\n', i);
      if (end == std::string::npos) end = n;
      std::string directive = text.substr(i, end - i);
      // Strip a trailing // comment from the directive text.
      if (const auto slash = directive.find("//"); slash != std::string::npos) {
        std::string trailing = directive.substr(slash + 2);
        note_hot_marker(trailing, line);
        out.comments.push_back(Comment{std::move(trailing), line});
        directive.resize(slash);
      }
      out.directives.push_back(Directive{std::move(directive), line});
      i = end;
      continue;
    }
    at_line_start = false;
    // Line comment.
    if (c == '/' && i + 1 < n && text[i + 1] == '/') {
      std::size_t end = text.find('\n', i);
      if (end == std::string::npos) end = n;
      std::string comment = text.substr(i + 2, end - i - 2);
      note_hot_marker(comment, line);
      out.comments.push_back(Comment{std::move(comment), line});
      i = end;
      continue;
    }
    // Block comment.
    if (c == '/' && i + 1 < n && text[i + 1] == '*') {
      const int start_line = line;
      std::size_t end = text.find("*/", i + 2);
      if (end == std::string::npos) end = n;
      std::string comment = text.substr(i + 2, end - i - 2);
      line += static_cast<int>(std::count(comment.begin(), comment.end(), '\n'));
      note_hot_marker(comment, start_line);
      out.comments.push_back(Comment{std::move(comment), start_line});
      i = end == n ? n : end + 2;
      continue;
    }
    // Raw string literal.
    if (c == 'R' && i + 1 < n && text[i + 1] == '"') {
      std::size_t paren = text.find('(', i + 2);
      if (paren == std::string::npos) {
        ++i;
        continue;
      }
      const std::string close =
          ")" + text.substr(i + 2, paren - i - 2) + "\"";
      std::size_t end = text.find(close, paren + 1);
      if (end == std::string::npos) end = n;
      line += static_cast<int>(
          std::count(text.begin() + static_cast<std::ptrdiff_t>(i),
                     text.begin() + static_cast<std::ptrdiff_t>(
                                        std::min(n, end + close.size())),
                     '\n'));
      i = std::min(n, end + close.size());
      continue;
    }
    // String / char literal.
    if (c == '"' || c == '\'') {
      const char quote = c;
      ++i;
      while (i < n && text[i] != quote) {
        if (text[i] == '\\' && i + 1 < n) ++i;
        if (text[i] == '\n') ++line;
        ++i;
      }
      ++i;  // closing quote
      continue;
    }
    // Identifier / keyword.
    if (is_ident_start(c)) {
      std::size_t end = i;
      while (end < n && is_ident_char(text[end])) ++end;
      out.tokens.push_back(Token{text.substr(i, end - i), line, true});
      i = end;
      continue;
    }
    // Number (digits and the usual suffix soup; precision irrelevant here).
    // Digit separators (60'000) are consumed here — otherwise the `'`
    // would open a phantom char literal that eats code until the next
    // apostrophe, comments and hot-region markers included.
    if (std::isdigit(static_cast<unsigned char>(c)) != 0) {
      std::size_t end = i;
      while (end < n && (is_ident_char(text[end]) || text[end] == '.' ||
                         ((text[end] == '+' || text[end] == '-') && end > i &&
                          (text[end - 1] == 'e' || text[end - 1] == 'E')) ||
                         (text[end] == '\'' && end + 1 < n &&
                          is_ident_char(text[end + 1])))) {
        ++end;
      }
      out.tokens.push_back(Token{text.substr(i, end - i), line, false});
      i = end;
      continue;
    }
    // Punctuation: single characters; enough for every rule here.
    out.tokens.push_back(Token{std::string(1, c), line, false});
    ++i;
  }
  out.last_line = line;
  return out;
}

/// NOLINT bookkeeping: which scrubber-* rules are suppressed on which
/// lines, and which NOLINT markers are missing their justification.
struct Suppressions {
  std::map<int, std::set<std::string>> by_line;
  std::vector<Diagnostic> malformed;

  [[nodiscard]] bool covers(const std::string& file, int line,
                            const std::string& rule) const {
    (void)file;
    const auto it = by_line.find(line);
    return it != by_line.end() && it->second.count(rule) > 0;
  }
};

Suppressions parse_suppressions(const LexedFile& file) {
  Suppressions out;
  for (const Comment& comment : file.comments) {
    for (const char* marker : {"NOLINTNEXTLINE(", "NOLINT("}) {
      const auto at = comment.text.find(marker);
      if (at == std::string::npos) continue;
      const bool next_line = marker[6] == 'N';  // NOLINTNEXTLINE
      const auto open = comment.text.find('(', at);
      const auto close = comment.text.find(')', open);
      if (close == std::string::npos) break;
      // Parse the comma-separated rule list.
      std::set<std::string> rules;
      std::string list = comment.text.substr(open + 1, close - open - 1);
      std::stringstream stream(list);
      std::string rule;
      bool any_scrubber = false;
      while (std::getline(stream, rule, ',')) {
        rule.erase(std::remove_if(rule.begin(), rule.end(),
                                  [](unsigned char ch) {
                                    return std::isspace(ch) != 0;
                                  }),
                   rule.end());
        if (rule.rfind("scrubber-", 0) == 0) any_scrubber = true;
        if (!rule.empty()) rules.insert(rule);
      }
      if (!any_scrubber) break;  // clang-tidy suppression, not ours
      // Justification: required non-blank text after "):".
      std::string after = comment.text.substr(close + 1);
      bool justified = false;
      if (!after.empty() && after[0] == ':') {
        const std::string reason = after.substr(1);
        justified = std::any_of(reason.begin(), reason.end(),
                                [](unsigned char ch) {
                                  return std::isspace(ch) == 0;
                                });
      }
      const int target = next_line ? comment.line + 1 : comment.line;
      if (!justified) {
        out.malformed.push_back(Diagnostic{
            file.rel_path, comment.line, "scrubber-nolint-needs-reason",
            "NOLINT(scrubber-*) requires a justification: "
            "`// NOLINT(scrubber-rule): why this is safe`"});
      } else {
        out.by_line[target].insert(rules.begin(), rules.end());
      }
      break;  // one NOLINT marker per comment
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Rules
// ---------------------------------------------------------------------------

using Sink = std::vector<Diagnostic>;

bool starts_with(const std::string& s, std::string_view prefix) {
  return s.rfind(prefix, 0) == 0;
}

void add(Sink& sink, const LexedFile& f, int line, const char* rule,
         std::string message) {
  sink.push_back(Diagnostic{f.rel_path, line, rule, std::move(message)});
}

/// scrubber-memory-order: atomic operations in src/runtime/ must pass an
/// explicit std::memory_order. Matches `.op(` / `->op(` for the atomic
/// member-function vocabulary and scans the balanced argument list for a
/// memory_order* identifier.
void rule_memory_order(const LexedFile& f, Sink& sink) {
  if (!starts_with(f.rel_path, "src/runtime/")) return;
  // `clear`/`test_and_set` (atomic_flag) are deliberately absent: `clear`
  // collides with the container vocabulary and atomic_flag is unused.
  static const std::set<std::string> kAtomicOps = {
      "load",          "store",
      "exchange",      "fetch_add",
      "fetch_sub",     "fetch_and",
      "fetch_or",      "fetch_xor",
      "compare_exchange_weak", "compare_exchange_strong",
  };
  const auto& t = f.tokens;
  for (std::size_t i = 1; i + 1 < t.size(); ++i) {
    if (!t[i].is_identifier || kAtomicOps.count(t[i].text) == 0) continue;
    const bool member_call =
        t[i - 1].text == "." ||
        (i >= 2 && t[i - 1].text == ">" && t[i - 2].text == "-");
    if (!member_call || t[i + 1].text != "(") continue;
    // Scan the balanced argument list for memory_order*.
    int depth = 0;
    bool found = false;
    std::size_t j = i + 1;
    for (; j < t.size(); ++j) {
      if (t[j].text == "(") ++depth;
      if (t[j].text == ")" && --depth == 0) break;
      if (t[j].is_identifier && starts_with(t[j].text, "memory_order")) {
        found = true;
      }
    }
    if (!found) {
      add(sink, f, t[i].line, "scrubber-memory-order",
          "atomic `" + t[i].text +
              "` without an explicit std::memory_order (seq_cst-by-default "
              "is banned in src/runtime/ — name the ordering the protocol "
              "needs)");
    }
  }
}

/// scrubber-hot-path-blocking: inside // scrubber-hot-begin/end regions
/// (the SPSC ring push/pop paths) no locks, condvars, or sleeps. Socket
/// syscalls are blocking calls too (recvmmsg parks the thread in the
/// kernel even with a timeout) and are banned in hot regions everywhere
/// except src/netio/ — the listener subsystem is the one place the wire
/// is allowed to touch the hot path, and its receive loop is the very
/// thing the rule protects the rest of the pipeline from.
void rule_hot_path_blocking(const LexedFile& f, Sink& sink) {
  if (f.hot_regions.empty()) return;
  static const std::set<std::string> kBlocking = {
      "mutex",          "timed_mutex",
      "recursive_mutex", "shared_mutex",
      "lock_guard",     "unique_lock",
      "scoped_lock",    "shared_lock",
      "condition_variable", "condition_variable_any",
      "sleep_for",      "sleep_until",
      "wait",           "wait_for",
      "wait_until",     "future",
      "promise",
  };
  static const std::set<std::string> kSocketSyscalls = {
      "recv",     "recvfrom", "recvmsg",  "recvmmsg",
      "send",     "sendto",   "sendmsg",  "sendmmsg",
      "poll",     "ppoll",    "select",   "epoll_wait",
      "accept",   "connect",
  };
  const bool netio = starts_with(f.rel_path, "src/netio/");
  for (const HotRegion& region : f.hot_regions) {
    if (region.begin_line == 0) {
      add(sink, f, region.end_line, "scrubber-hot-path-blocking",
          "scrubber-hot-end without a matching scrubber-hot-begin");
      continue;
    }
    if (region.end_line == 0) {
      add(sink, f, region.begin_line, "scrubber-hot-path-blocking",
          "scrubber-hot-begin without a matching scrubber-hot-end");
      continue;
    }
    for (const Token& token : f.tokens) {
      if (token.line <= region.begin_line || token.line >= region.end_line) {
        continue;
      }
      if (!token.is_identifier) continue;
      if (kBlocking.count(token.text) > 0) {
        add(sink, f, token.line, "scrubber-hot-path-blocking",
            "`" + token.text +
                "` inside a scrubber-hot region — ring push/pop paths must "
                "stay lock-free (spin/yield only)");
      } else if (!netio && kSocketSyscalls.count(token.text) > 0) {
        add(sink, f, token.line, "scrubber-hot-path-blocking",
            "socket syscall `" + token.text +
                "` inside a scrubber-hot region — only src/netio/ touches "
                "the wire; hand bytes off through the input ring");
      }
    }
  }
}

/// scrubber-hot-path-alloc: inside // scrubber-hot-begin/end regions no
/// heap allocation — per-record work must run at memory speed, so growth
/// happens in batch-sized chunks outside the marked kernels. Unbalanced
/// region markers are diagnosed by scrubber-hot-path-blocking already and
/// skipped here.
void rule_hot_path_alloc(const LexedFile& f, Sink& sink) {
  if (f.hot_regions.empty()) return;
  static const std::set<std::string> kAllocating = {
      "new",         "make_unique", "make_shared",
      "malloc",      "calloc",      "realloc",
      "aligned_alloc", "strdup",
      "push_back",   "emplace_back", "emplace",
      "resize",      "reserve",     "insert",
      "append",      "assign",
  };
  for (const HotRegion& region : f.hot_regions) {
    if (region.begin_line == 0 || region.end_line == 0) continue;
    for (const Token& token : f.tokens) {
      if (token.line <= region.begin_line || token.line >= region.end_line) {
        continue;
      }
      if (token.is_identifier && kAllocating.count(token.text) > 0) {
        add(sink, f, token.line, "scrubber-hot-path-alloc",
            "`" + token.text +
                "` inside a scrubber-hot region — the per-record path must "
                "not allocate (preallocate or batch outside the region)");
      }
    }
  }
}

/// scrubber-hot-path-container: the flow hot path must not touch
/// node-based associative containers. std::map / std::unordered_map /
/// std::unordered_set are banned (i) inside scrubber-hot regions in any
/// file and (ii) *anywhere* in src/net/packet.* and src/core/aggregator.*
/// — the per-flow and per-group paths run on util::FlatHash and sorted
/// vectors (contiguous storage, deterministic insertion-order iteration,
/// zero per-node allocation), and a casual `std::map` reintroduced there
/// is exactly the regression this PR removed.
void rule_hot_path_container(const LexedFile& f, Sink& sink) {
  const bool hot_file = starts_with(f.rel_path, "src/net/packet.") ||
                        starts_with(f.rel_path, "src/core/aggregator.");
  if (!hot_file && f.hot_regions.empty()) return;
  static const std::set<std::string> kNodeContainers = {
      "map", "multimap", "unordered_map", "unordered_multimap",
      "unordered_set", "unordered_multiset",
  };
  const auto in_hot_region = [&](int line) {
    for (const HotRegion& region : f.hot_regions) {
      if (region.begin_line == 0 || region.end_line == 0) continue;
      if (line > region.begin_line && line < region.end_line) return true;
    }
    return false;
  };
  const auto& t = f.tokens;
  for (std::size_t i = 3; i < t.size(); ++i) {
    if (!t[i].is_identifier || kNodeContainers.count(t[i].text) == 0) continue;
    // Only the std::-qualified spelling: `map` alone is too common a name
    // (the functional idiom, local variables) to match bare.
    const bool qualified = t[i - 3].text == "std" && t[i - 2].text == ":" &&
                           t[i - 1].text == ":";
    if (!qualified) continue;
    if (!hot_file && !in_hot_region(t[i].line)) continue;
    add(sink, f, t[i].line, "scrubber-hot-path-container",
        "`std::" + t[i].text +
            "` on the flow hot path — use util::FlatHash or a sorted "
            "vector (contiguous, insertion-ordered, no per-node "
            "allocation)");
  }
}

/// scrubber-raw-rand: all randomness flows through util/rng (seeded,
/// reproducible); libc rand and std::random_device are banned elsewhere.
void rule_raw_rand(const LexedFile& f, Sink& sink) {
  if (starts_with(f.rel_path, "src/util/rng")) return;
  static const std::set<std::string> kBanned = {
      "rand", "srand", "rand_r", "drand48", "random_device",
  };
  for (const Token& token : f.tokens) {
    if (token.is_identifier && kBanned.count(token.text) > 0) {
      add(sink, f, token.line, "scrubber-raw-rand",
          "`" + token.text +
              "` is banned — draw from util::Rng (seeded, reproducible) "
              "instead");
    }
  }
}

/// scrubber-raw-thread: naming std::thread/std::jthread (construction or
/// member containers of them) is only allowed in src/util/thread_pool.hpp
/// (the pool that owns learning-plane workers), src/runtime/ (the serving
/// path owns its shard threads) and src/netio/ (the listener and load
/// generator own their socket threads — pooling a thread that blocks in
/// recvmmsg would poison the pool) — everything else fans work out
/// through util::training_pool(), which is what keeps learning-plane
/// results bit-identical for any thread count. Static member access
/// (std::thread::hardware_concurrency) is fine anywhere: it reads the
/// machine, it does not spawn on it.
void rule_raw_thread(const LexedFile& f, Sink& sink) {
  if (f.rel_path == "src/util/thread_pool.hpp") return;
  if (starts_with(f.rel_path, "src/runtime/")) return;
  if (starts_with(f.rel_path, "src/netio/")) return;
  const auto& t = f.tokens;
  for (std::size_t i = 3; i < t.size(); ++i) {
    if (!t[i].is_identifier ||
        (t[i].text != "thread" && t[i].text != "jthread")) {
      continue;
    }
    const bool qualified = t[i - 3].text == "std" && t[i - 2].text == ":" &&
                           t[i - 1].text == ":";
    if (!qualified) continue;
    const bool static_member_access =
        i + 2 < t.size() && t[i + 1].text == ":" && t[i + 2].text == ":";
    if (static_member_access) continue;
    add(sink, f, t[i].line, "scrubber-raw-thread",
        "`std::" + t[i].text +
            "` outside src/util/thread_pool.hpp, src/runtime/ and "
            "src/netio/ — fan work out through util::training_pool() so "
            "results stay bit-identical for any thread count");
  }
}

/// scrubber-float-counter: names that look like byte/packet counters must
/// not be declared float/double. Derived quantities (means, rates, sizes,
/// shares) are fine and excluded by name.
void rule_float_counter(const LexedFile& f, Sink& sink) {
  const auto counter_name = [](std::string name) {
    std::transform(name.begin(), name.end(), name.begin(), [](unsigned char c) {
      return static_cast<char>(std::tolower(c));
    });
    for (const char* derived : {"mean", "avg", "per", "rate", "size", "share",
                                "frac", "ratio", "scale", "weight", "norm"}) {
      if (name.find(derived) != std::string::npos) return false;
    }
    for (const char* unit : {"byte", "packet", "pkt"}) {
      if (name.find(unit) != std::string::npos) return true;
    }
    return false;
  };
  const auto& t = f.tokens;
  for (std::size_t i = 0; i + 1 < t.size(); ++i) {
    if (!t[i].is_identifier ||
        (t[i].text != "float" && t[i].text != "double")) {
      continue;
    }
    if (t[i + 1].is_identifier && counter_name(t[i + 1].text)) {
      add(sink, f, t[i + 1].line, "scrubber-float-counter",
          "byte/packet counter `" + t[i + 1].text + "` declared as " +
              t[i].text +
              " — counters accumulate in integers (precision loss at IXP "
              "volumes is silent)");
    }
  }
}

/// scrubber-naked-new: no naked new/delete expressions. `= delete;`
/// (deleted functions) is the one allowed spelling.
void rule_naked_new(const LexedFile& f, Sink& sink) {
  const auto& t = f.tokens;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (!t[i].is_identifier) continue;
    if (t[i].text == "new") {
      add(sink, f, t[i].line, "scrubber-naked-new",
          "naked `new` — use std::make_unique/containers; ownership must "
          "be structural");
    } else if (t[i].text == "delete") {
      const bool deleted_function =
          i > 0 && t[i - 1].text == "=" && i + 1 < t.size() &&
          (t[i + 1].text == ";" || t[i + 1].text == ",");
      if (!deleted_function) {
        add(sink, f, t[i].line, "scrubber-naked-new",
            "naked `delete` — if you need this, the ownership model is "
            "already broken");
      }
    }
  }
}

/// scrubber-include-guard: headers say #pragma once (and nothing else).
void rule_include_guard(const LexedFile& f, Sink& sink) {
  const bool is_header = f.rel_path.size() > 4 &&
                         (f.rel_path.ends_with(".hpp") ||
                          f.rel_path.ends_with(".h"));
  if (!is_header) return;
  bool has_pragma_once = false;
  for (const Directive& d : f.directives) {
    if (d.text.find("pragma") != std::string::npos &&
        d.text.find("once") != std::string::npos) {
      has_pragma_once = true;
      break;
    }
  }
  if (!has_pragma_once) {
    add(sink, f, 1, "scrubber-include-guard",
        "header without #pragma once (the project guard style; #ifndef "
        "guards drift)");
  }
  // #ifndef-style guard: first two directives are #ifndef X / #define X.
  if (f.directives.size() >= 2) {
    const std::string& first = f.directives[0].text;
    const std::string& second = f.directives[1].text;
    if (first.find("ifndef") != std::string::npos &&
        second.find("define") != std::string::npos) {
      add(sink, f, f.directives[0].line, "scrubber-include-guard",
          "#ifndef include guard — use #pragma once (project style)");
    }
  }
}

/// scrubber-banned-construct: std::regex and volatile are banned in
/// src/, tools/ and bench/ (regex backtracks unboundedly; volatile is
/// not synchronization — use std::atomic).
void rule_banned_construct(const LexedFile& f, Sink& sink) {
  for (const Directive& d : f.directives) {
    if (d.text.find("<regex>") != std::string::npos) {
      add(sink, f, d.line, "scrubber-banned-construct",
          "#include <regex> — std::regex backtracking is unbounded; use "
          "hand-rolled matching");
    }
  }
  for (const Token& token : f.tokens) {
    if (!token.is_identifier) continue;
    if (token.text == "regex" || token.text == "basic_regex") {
      add(sink, f, token.line, "scrubber-banned-construct",
          "std::regex is banned (unbounded backtracking on hot paths)");
    } else if (token.text == "volatile") {
      add(sink, f, token.line, "scrubber-banned-construct",
          "volatile is not synchronization — use std::atomic with an "
          "explicit memory order");
    }
  }
}

// ---------------------------------------------------------------------------
// Driver
// ---------------------------------------------------------------------------

const std::vector<std::string>& all_rule_ids() {
  static const std::vector<std::string> kRules = {
      "scrubber-memory-order",    "scrubber-hot-path-blocking",
      "scrubber-hot-path-alloc",  "scrubber-hot-path-container",
      "scrubber-raw-rand",        "scrubber-raw-thread",
      "scrubber-float-counter",   "scrubber-naked-new",
      "scrubber-include-guard",   "scrubber-banned-construct",
      "scrubber-nolint-needs-reason",
  };
  return kRules;
}

bool lintable(const fs::path& path) {
  const std::string ext = path.extension().string();
  return ext == ".cpp" || ext == ".hpp" || ext == ".h" || ext == ".cc";
}

int run(const fs::path& root, const std::vector<std::string>& targets,
        const std::set<std::string>& only_rules, Sink& sink) {
  std::vector<fs::path> files;
  for (const std::string& target : targets) {
    const fs::path path = root / target;
    std::error_code ec;
    if (fs::is_directory(path, ec)) {
      for (auto it = fs::recursive_directory_iterator(path, ec);
           it != fs::recursive_directory_iterator(); ++it) {
        if (it->is_regular_file() && lintable(it->path())) {
          files.push_back(it->path());
        }
      }
    } else if (fs::is_regular_file(path, ec)) {
      files.push_back(path);
    } else {
      std::fprintf(stderr, "scrubber-lint: no such file or directory: %s\n",
                   path.string().c_str());
      return 2;
    }
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());

  for (const fs::path& path : files) {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "scrubber-lint: cannot read %s\n",
                   path.string().c_str());
      return 2;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    const std::string rel =
        fs::relative(path, root).generic_string();
    const LexedFile lexed = lex(rel, buffer.str());
    const Suppressions suppressions = parse_suppressions(lexed);

    Sink raw;
    rule_memory_order(lexed, raw);
    rule_hot_path_blocking(lexed, raw);
    rule_hot_path_alloc(lexed, raw);
    rule_hot_path_container(lexed, raw);
    rule_raw_rand(lexed, raw);
    rule_raw_thread(lexed, raw);
    rule_float_counter(lexed, raw);
    rule_naked_new(lexed, raw);
    rule_include_guard(lexed, raw);
    rule_banned_construct(lexed, raw);
    for (const Diagnostic& d : suppressions.malformed) raw.push_back(d);

    for (Diagnostic& d : raw) {
      if (!only_rules.empty() && only_rules.count(d.rule) == 0) continue;
      if (d.rule != "scrubber-nolint-needs-reason" &&
          suppressions.covers(d.file, d.line, d.rule)) {
        continue;
      }
      sink.push_back(std::move(d));
    }
  }
  return 0;
}

void usage() {
  std::fprintf(
      stderr,
      "usage: scrubber-lint [--root DIR] [--rule scrubber-...] PATH...\n"
      "       scrubber-lint --list-rules\n"
      "\n"
      "Lints .cpp/.hpp files under each PATH (relative to --root, default\n"
      "the current directory) against the scrubber-* project rules.\n"
      "Exit status: 0 clean, 1 violations, 2 usage/IO error.\n");
}

}  // namespace

int main(int argc, char** argv) {
  fs::path root = fs::current_path();
  std::vector<std::string> targets;
  std::set<std::string> only_rules;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--root") {
      if (++i >= argc) {
        usage();
        return 2;
      }
      root = argv[i];
    } else if (arg == "--rule") {
      if (++i >= argc) {
        usage();
        return 2;
      }
      only_rules.insert(argv[i]);
    } else if (arg == "--list-rules") {
      for (const std::string& rule : all_rule_ids()) {
        std::printf("%s\n", rule.c_str());
      }
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      usage();
      return 2;
    } else {
      targets.push_back(arg);
    }
  }
  if (targets.empty()) {
    usage();
    return 2;
  }

  Sink sink;
  const int status = run(root, targets, only_rules, sink);
  if (status != 0) return status;
  std::sort(sink.begin(), sink.end());
  for (const Diagnostic& d : sink) {
    std::printf("%s:%d: %s %s\n", d.file.c_str(), d.line, d.rule.c_str(),
                d.message.c_str());
  }
  if (!sink.empty()) {
    std::fprintf(stderr, "scrubber-lint: %zu violation%s\n", sink.size(),
                 sink.size() == 1 ? "" : "s");
    return 1;
  }
  return 0;
}
