#include "lint/lexer.hpp"

#include <algorithm>
#include <cctype>
#include <sstream>

namespace scrubber::lint {
namespace {

bool is_ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}
bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// Length of a raw-string introducer (`R"`, `LR"`, `uR"`, `UR"`, `u8R"`)
/// starting at `i`, including the opening quote; 0 when `i` does not start
/// one. Checked before identifier scanning so the encoding prefix is never
/// consumed as an identifier (which would hand the quote to the ordinary
/// string scanner and let `\)` escapes derail it).
std::size_t raw_intro_len(const std::string& text, std::size_t i) {
  static const char* kIntros[] = {"R\"", "LR\"", "uR\"", "UR\"", "u8R\""};
  for (const char* intro : kIntros) {
    const std::size_t len = std::char_traits<char>::length(intro);
    if (text.compare(i, len, intro) == 0) {
      // The prefix must begin a token: `FooR"` is an identifier then a
      // plain string, not a raw string.
      if (i > 0 && is_ident_char(text[i - 1])) continue;
      return len;
    }
  }
  return 0;
}

/// Extends `end` (an offset of '\n' or npos) across backslash-newline
/// splices: returns the offset of the first newline NOT preceded by a
/// backslash (ignoring a \r), or npos.
std::size_t extend_over_continuations(const std::string& text,
                                      std::size_t from, std::size_t begin) {
  std::size_t end = from;
  while (true) {
    end = text.find('\n', end);
    if (end == std::string::npos) return end;
    std::size_t back = end;
    while (back > begin && text[back - 1] == '\r') --back;
    if (back > begin && text[back - 1] == '\\') {
      ++end;  // spliced: keep scanning past this newline
      continue;
    }
    return end;
  }
}

}  // namespace

bool line_in_region(const std::vector<Region>& regions, int line) {
  for (const Region& region : regions) {
    if (region.begin_line == 0 || region.end_line == 0) continue;
    if (line > region.begin_line && line < region.end_line) return true;
  }
  return false;
}

LexedFile lex(const std::string& rel_path, const std::string& text) {
  LexedFile out;
  out.rel_path = rel_path;
  const std::size_t n = text.size();
  std::size_t i = 0;
  int line = 1;
  bool at_line_start = true;

  // A marker is the comment's *entire* content (mentioning a marker in
  // prose must not open a region).
  const auto note_region_marker = [&](const std::string& comment, int at) {
    const auto first = comment.find_first_not_of(" \t");
    const auto last = comment.find_last_not_of(" \t\r");
    const std::string trimmed =
        first == std::string::npos
            ? std::string()
            : comment.substr(first, last - first + 1);
    const auto open = [&](std::vector<Region>& regions) {
      regions.push_back(Region{at, 0});
    };
    const auto close = [&](std::vector<Region>& regions) {
      if (!regions.empty() && regions.back().end_line == 0) {
        regions.back().end_line = at;
      } else {
        regions.push_back(Region{0, at});  // end without begin
      }
    };
    if (trimmed == "scrubber-hot-begin") {
      open(out.hot_regions);
    } else if (trimmed == "scrubber-hot-end") {
      close(out.hot_regions);
    } else if (trimmed == "scrubber-deterministic-begin") {
      open(out.det_regions);
    } else if (trimmed == "scrubber-deterministic-end") {
      close(out.det_regions);
    }
  };

  while (i < n) {
    const char c = text[i];
    if (c == '\n') {
      ++line;
      ++i;
      at_line_start = true;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c)) != 0) {
      ++i;
      continue;
    }
    // Preprocessor directive: consume the whole logical line, including
    // backslash-newline continuations.
    if (c == '#' && at_line_start) {
      const int start_line = line;
      std::size_t end = extend_over_continuations(text, i, i);
      if (end == std::string::npos) end = n;
      std::string directive = text.substr(i, end - i);
      line += static_cast<int>(
          std::count(directive.begin(), directive.end(), '\n'));
      // Strip a trailing // comment from the directive text.
      if (const auto slash = directive.find("//"); slash != std::string::npos) {
        std::string trailing = directive.substr(slash + 2);
        note_region_marker(trailing, start_line);
        out.comments.push_back(Comment{std::move(trailing), start_line});
        directive.resize(slash);
      }
      out.directives.push_back(Directive{std::move(directive), start_line});
      i = end;
      continue;
    }
    at_line_start = false;
    // Line comment. A trailing backslash splices the next physical line
    // into the comment (phase-2 line splicing runs before comments are
    // recognized), so code on the spliced line is NOT code.
    if (c == '/' && i + 1 < n && text[i + 1] == '/') {
      const int start_line = line;
      std::size_t end = extend_over_continuations(text, i, i);
      if (end == std::string::npos) end = n;
      std::string comment = text.substr(i + 2, end - i - 2);
      line += static_cast<int>(std::count(comment.begin(), comment.end(), '\n'));
      note_region_marker(comment, start_line);
      out.comments.push_back(Comment{std::move(comment), start_line});
      i = end;
      continue;
    }
    // Block comment.
    if (c == '/' && i + 1 < n && text[i + 1] == '*') {
      const int start_line = line;
      std::size_t end = text.find("*/", i + 2);
      if (end == std::string::npos) end = n;
      std::string comment = text.substr(i + 2, end - i - 2);
      line += static_cast<int>(std::count(comment.begin(), comment.end(), '\n'));
      note_region_marker(comment, start_line);
      out.comments.push_back(Comment{std::move(comment), start_line});
      i = end == n ? n : end + 2;
      continue;
    }
    // Raw string literal (any encoding prefix). The d-char delimiter is
    // validated — at most 16 chars, none of space/tab/newline/backslash/
    // paren/quote — so a stray `R"` that is not actually a raw string
    // falls back to ordinary lexing instead of eating the rest of the
    // file.
    if (const std::size_t intro = raw_intro_len(text, i); intro > 0) {
      const std::size_t dstart = i + intro;
      std::size_t paren = dstart;
      bool valid = true;
      while (true) {
        if (paren >= n || paren - dstart > 16) {
          valid = false;
          break;
        }
        const char dc = text[paren];
        if (dc == '(') break;
        if (dc == ' ' || dc == '\t' || dc == '\n' || dc == '\\' ||
            dc == '"' || dc == ')') {
          valid = false;
          break;
        }
        ++paren;
      }
      if (valid) {
        const std::string close =
            ")" + text.substr(dstart, paren - dstart) + "\"";
        std::size_t end = text.find(close, paren + 1);
        if (end == std::string::npos) end = n;
        const std::size_t stop = std::min(n, end + close.size());
        line += static_cast<int>(
            std::count(text.begin() + static_cast<std::ptrdiff_t>(i),
                       text.begin() + static_cast<std::ptrdiff_t>(stop),
                       '\n'));
        i = stop;
        continue;
      }
      // Not a raw string: emit the prefix (minus the quote) as an
      // identifier token and let the quote lex as an ordinary string.
      out.tokens.push_back(Token{text.substr(i, intro - 1), line, true});
      i += intro - 1;
      continue;
    }
    // String / char literal.
    if (c == '"' || c == '\'') {
      const char quote = c;
      ++i;
      while (i < n && text[i] != quote) {
        if (text[i] == '\\' && i + 1 < n) ++i;
        if (text[i] == '\n') ++line;
        ++i;
      }
      ++i;  // closing quote
      continue;
    }
    // Identifier / keyword.
    if (is_ident_start(c)) {
      std::size_t end = i;
      while (end < n && is_ident_char(text[end])) ++end;
      out.tokens.push_back(Token{text.substr(i, end - i), line, true});
      i = end;
      continue;
    }
    // Number (digits and the usual suffix soup; precision irrelevant here).
    // Digit separators (60'000) are consumed here — otherwise the `'`
    // would open a phantom char literal that eats code until the next
    // apostrophe, comments and hot-region markers included.
    if (std::isdigit(static_cast<unsigned char>(c)) != 0) {
      std::size_t end = i;
      while (end < n && (is_ident_char(text[end]) || text[end] == '.' ||
                         ((text[end] == '+' || text[end] == '-') && end > i &&
                          (text[end - 1] == 'e' || text[end - 1] == 'E')) ||
                         (text[end] == '\'' && end + 1 < n &&
                          is_ident_char(text[end + 1])))) {
        ++end;
      }
      out.tokens.push_back(Token{text.substr(i, end - i), line, false});
      i = end;
      continue;
    }
    // Punctuation: single characters; enough for every rule here.
    out.tokens.push_back(Token{std::string(1, c), line, false});
    ++i;
  }
  out.last_line = line;
  return out;
}

Suppressions parse_suppressions(const LexedFile& file) {
  Suppressions out;
  for (const Comment& comment : file.comments) {
    for (const char* marker : {"NOLINTNEXTLINE(", "NOLINT("}) {
      const auto at = comment.text.find(marker);
      if (at == std::string::npos) continue;
      const bool next_line = marker[6] == 'N';  // NOLINTNEXTLINE
      const auto open = comment.text.find('(', at);
      const auto close = comment.text.find(')', open);
      if (close == std::string::npos) break;
      // Parse the comma-separated rule list.
      std::set<std::string> rules;
      std::string list = comment.text.substr(open + 1, close - open - 1);
      std::stringstream stream(list);
      std::string rule;
      bool any_scrubber = false;
      while (std::getline(stream, rule, ',')) {
        rule.erase(std::remove_if(rule.begin(), rule.end(),
                                  [](unsigned char ch) {
                                    return std::isspace(ch) != 0;
                                  }),
                   rule.end());
        if (rule.rfind("scrubber-", 0) == 0) any_scrubber = true;
        if (!rule.empty()) rules.insert(rule);
      }
      if (!any_scrubber) break;  // clang-tidy suppression, not ours
      // Justification: required non-blank text after "):".
      std::string after = comment.text.substr(close + 1);
      bool justified = false;
      if (!after.empty() && after[0] == ':') {
        const std::string reason = after.substr(1);
        justified = std::any_of(reason.begin(), reason.end(),
                                [](unsigned char ch) {
                                  return std::isspace(ch) == 0;
                                });
      }
      const int target = next_line ? comment.line + 1 : comment.line;
      if (!justified) {
        out.malformed.push_back(Diagnostic{
            file.rel_path, comment.line, "scrubber-nolint-needs-reason",
            "NOLINT(scrubber-*) requires a justification: "
            "`// NOLINT(scrubber-rule): why this is safe`"});
      } else {
        out.by_line[target].insert(rules.begin(), rules.end());
        out.sites.push_back(SuppressionSite{comment.line, target, rules});
      }
      break;  // one NOLINT marker per comment
    }
  }
  return out;
}

}  // namespace scrubber::lint
