#pragma once
// Pass 2 of scrubber-lint: name-based call-graph construction and
// transitive taint propagation. A call site inside a `scrubber-hot` or
// `scrubber-deterministic` region roots a bounded-depth walk; any banned
// primitive reachable through the chain is reported at the *root call
// site* (that is the line the author can fix or justify).
//
// Resolution is deliberately conservative:
//   - a vocabulary veto list drops edges to std-colliding names (`size`,
//     `lock`, `push_back`, ...) — those show up as *primitives* in callee
//     bodies instead, so nothing is lost, only misattribution
//   - receiver calls (`x.f()`) resolve to member functions only, and are
//     skipped (counted, not guessed) when the name is defined in more
//     than one class
//   - receiverless calls prefer the enclosing class, then free functions,
//     then a unique member class; several defs of one name in the chosen
//     bucket become edges to all of them (overload-set fallback)

#include <optional>
#include <ostream>
#include <set>
#include <string>
#include <tuple>
#include <vector>

#include "lint/index.hpp"

namespace scrubber::lint {

enum class Category {
  Alloc,         ///< hot: heap allocation / growing containers
  Blocking,      ///< hot: locks, condvars, sleeps, futures
  Socket,        ///< hot: socket syscalls (exempt for src/netio/ roots)
  Container,     ///< hot: node-based std::map / std::unordered_*
  Throw,         ///< hot: throw expressions (unwinding off the wire path)
  DetRand,       ///< det: unseeded randomness
  DetClock,      ///< det: wall/steady clock reads
  DetUnordered,  ///< det: unordered-container use (iteration order)
  DetAddr,       ///< det: uintptr_t/intptr_t address-dependent ordering
};

bool is_hot_category(Category category);
bool is_det_category(Category category);
const char* category_label(Category category);

struct Primitive {
  Category category;
  std::string token;
  int line = 0;
};

/// Scans the token range [begin, end) of `file` for banned primitives.
/// One token can yield two entries (std::unordered_map is both a hot
/// container and a determinism break).
void collect_primitives(const LexedFile& file, std::size_t begin,
                        std::size_t end, std::vector<Primitive>& out);

struct CallGraph {
  std::vector<std::vector<std::uint32_t>> call_targets;  ///< per CallSite
  std::vector<std::vector<std::uint32_t>> calls_of;      ///< per FunctionDef
  std::size_t resolved_edges = 0;
  std::size_t unresolved_calls = 0;
  std::size_t ambiguous_calls = 0;
  std::size_t vetoed_calls = 0;
};

CallGraph build_call_graph(const ProjectIndex& index);

/// (file index, NOLINT target line, rule) triples consumed while walking
/// the graph — a suppressed edge is a *used* suppression even though no
/// diagnostic survives to say so, and must not be reported as stale.
using UsedSuppressions = std::set<std::tuple<std::uint32_t, int, std::string>>;

struct TransitiveOptions {
  int max_depth = 6;  ///< call-chain hops explored below a root site
};

/// Emits scrubber-transitive (hot roots) and scrubber-deterministic (det
/// roots) diagnostics, one per root call site and category, with the
/// shortest offending chain in the message.
void check_transitive(const ProjectIndex& index, const CallGraph& graph,
                      const TransitiveOptions& options, Sink& sink,
                      UsedSuppressions& used);

/// Graphviz dump of the resolved call graph plus the declared module DAG
/// (`scrubber-lint --graph dot`).
void dot_dump(const ProjectIndex& index, const CallGraph& graph,
              std::ostream& out);

}  // namespace scrubber::lint
