// scrubber-lint v2 — whole-program static analysis for the IXP scrubber.
//
// clang-tidy covers general C++ hygiene; this analyzer enforces the
// *project* invariants that keep the concurrent ingest runtime honest and
// that no off-the-shelf check can express. v1 was purely lexical; v2 adds
// a whole-program index and call graph so region contracts hold through
// call chains, plus layering enforcement and stale-suppression detection:
//
//   pass 0 (lexer)    comment/string-aware token scan; raw strings with
//                     encoding prefixes, backslash-newline continuations
//                     in comments/directives, digit separators; hot and
//                     deterministic region markers
//   pass 1 (index)    function definitions, call sites, #include edges,
//                     region membership for every TU under the targets
//   pass 2 (taint)    scrubber-transitive: hot regions transitively
//                     forbid allocation, blocking syscalls and node
//                     containers through any call chain (bounded depth);
//                     scrubber-deterministic: det regions transitively
//                     ban rand/clock reads/unordered iteration/address
//                     ordering
//   pass 3 (program)  scrubber-layering: quoted includes must follow the
//                     declared module DAG; scrubber-stale-nolint:
//                     suppressions that no longer silence anything
//
// Direct (per-file) rules are unchanged from v1 — see lint/rules.cpp.
//
// Suppression: append a NOLINT comment naming the scrubber-<rule> and a
// `: <justification>` to the offending line, or a NOLINTNEXTLINE variant
// on the line above. The justification text is mandatory — a bare NOLINT
// is itself a violation (scrubber-nolint-needs-reason). For transitive
// findings, suppress at the call site the diagnostic points at.
//
// Output: one `file:line: rule-id message` diagnostic per violation;
// `--sarif FILE` additionally writes SARIF 2.1.0 for CI annotation;
// `--graph dot` dumps the resolved call graph and the module DAG as
// Graphviz instead of diagnostics. Exit status 1 when anything fired, 0
// when clean, 2 on usage/IO errors. Wired into ctest as
// `scrubber_lint_repo` over src/, tools/ and bench/.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "lint/callgraph.hpp"
#include "lint/index.hpp"
#include "lint/rules.hpp"
#include "lint/sarif.hpp"

namespace {

namespace fs = std::filesystem;

using scrubber::lint::Diagnostic;
using scrubber::lint::Sink;

bool lintable(const fs::path& path) {
  const std::string ext = path.extension().string();
  return ext == ".cpp" || ext == ".hpp" || ext == ".h" || ext == ".cc";
}

struct Options {
  fs::path root;
  std::vector<std::string> targets;
  std::set<std::string> only_rules;
  std::string sarif_path;
  bool graph_dot = false;
  int max_depth = 6;
};

int run(const Options& options, Sink& sink) {
  std::vector<fs::path> files;
  for (const std::string& target : options.targets) {
    const fs::path path = options.root / target;
    std::error_code ec;
    if (fs::is_directory(path, ec)) {
      for (auto it = fs::recursive_directory_iterator(path, ec);
           it != fs::recursive_directory_iterator(); ++it) {
        if (it->is_regular_file() && lintable(it->path())) {
          files.push_back(it->path());
        }
      }
    } else if (fs::is_regular_file(path, ec)) {
      files.push_back(path);
    } else {
      std::fprintf(stderr, "scrubber-lint: no such file or directory: %s\n",
                   path.string().c_str());
      return 2;
    }
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());

  const auto started = std::chrono::steady_clock::now();
  std::vector<scrubber::lint::LexedFile> lexed;
  lexed.reserve(files.size());
  for (const fs::path& path : files) {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "scrubber-lint: cannot read %s\n",
                   path.string().c_str());
      return 2;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    const std::string rel = fs::relative(path, options.root).generic_string();
    lexed.push_back(scrubber::lint::lex(rel, buffer.str()));
  }

  const scrubber::lint::ProjectIndex index =
      scrubber::lint::build_index(std::move(lexed));
  const scrubber::lint::CallGraph graph =
      scrubber::lint::build_call_graph(index);

  if (options.graph_dot) {
    std::ostringstream dot;
    scrubber::lint::dot_dump(index, graph, dot);
    std::fputs(dot.str().c_str(), stdout);
    return 0;
  }

  Sink raw;
  for (const scrubber::lint::IndexedFile& file : index.files) {
    scrubber::lint::run_file_rules(file.lexed, raw);
  }
  scrubber::lint::rule_layering(index, raw);
  scrubber::lint::UsedSuppressions edge_used;
  scrubber::lint::TransitiveOptions transitive;
  transitive.max_depth = options.max_depth;
  scrubber::lint::check_transitive(index, graph, transitive, raw, edge_used);

  Sink kept;
  scrubber::lint::apply_suppressions(index, std::move(raw), edge_used, kept);

  for (Diagnostic& d : kept) {
    if (!options.only_rules.empty() &&
        options.only_rules.count(d.rule) == 0) {
      continue;
    }
    sink.push_back(std::move(d));
  }

  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - started);
  std::fprintf(stderr,
               "scrubber-lint: %zu files, %zu functions, %zu call edges "
               "(%zu unresolved, %zu ambiguous, %zu vetoed), analysis %lld "
               "ms\n",
               index.files.size(), index.functions.size(),
               graph.resolved_edges, graph.unresolved_calls,
               graph.ambiguous_calls, graph.vetoed_calls,
               static_cast<long long>(elapsed.count()));

  if (!options.sarif_path.empty()) {
    std::sort(sink.begin(), sink.end());
    std::ofstream out(options.sarif_path, std::ios::binary);
    if (!out) {
      std::fprintf(stderr, "scrubber-lint: cannot write %s\n",
                   options.sarif_path.c_str());
      return 2;
    }
    scrubber::lint::write_sarif(sink, out);
  }
  return 0;
}

void usage() {
  std::fprintf(
      stderr,
      "usage: scrubber-lint [--root DIR] [--rule scrubber-...] "
      "[--sarif FILE] [--max-depth N] PATH...\n"
      "       scrubber-lint [--root DIR] --graph dot PATH...\n"
      "       scrubber-lint --list-rules\n"
      "\n"
      "Lints .cpp/.hpp files under each PATH (relative to --root, default\n"
      "the current directory) against the scrubber-* project rules,\n"
      "including transitive call-graph checks for scrubber-hot and\n"
      "scrubber-deterministic regions, module-DAG layering, and stale\n"
      "NOLINT detection. --sarif also writes SARIF 2.1.0; --graph dot\n"
      "dumps the call graph and module DAG as Graphviz.\n"
      "Exit status: 0 clean, 1 violations, 2 usage/IO error.\n");
}

}  // namespace

int main(int argc, char** argv) {
  Options options;
  options.root = fs::current_path();

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--root") {
      if (++i >= argc) {
        usage();
        return 2;
      }
      options.root = argv[i];
    } else if (arg == "--rule") {
      if (++i >= argc) {
        usage();
        return 2;
      }
      options.only_rules.insert(argv[i]);
    } else if (arg == "--sarif") {
      if (++i >= argc) {
        usage();
        return 2;
      }
      options.sarif_path = argv[i];
    } else if (arg == "--max-depth") {
      if (++i >= argc) {
        usage();
        return 2;
      }
      options.max_depth = std::atoi(argv[i]);
      if (options.max_depth < 1) {
        usage();
        return 2;
      }
    } else if (arg == "--graph") {
      if (++i >= argc || std::string(argv[i]) != "dot") {
        usage();
        return 2;
      }
      options.graph_dot = true;
    } else if (arg == "--list-rules") {
      for (const std::string& rule : scrubber::lint::all_rule_ids()) {
        std::printf("%s\n", rule.c_str());
      }
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      usage();
      return 2;
    } else {
      options.targets.push_back(arg);
    }
  }
  if (options.targets.empty()) {
    usage();
    return 2;
  }

  Sink sink;
  const int status = run(options, sink);
  if (status != 0 || options.graph_dot) return status;
  std::sort(sink.begin(), sink.end());
  for (const Diagnostic& d : sink) {
    std::printf("%s:%d: %s %s\n", d.file.c_str(), d.line, d.rule.c_str(),
                d.message.c_str());
  }
  if (!sink.empty()) {
    std::fprintf(stderr, "scrubber-lint: %zu violation%s\n", sink.size(),
                 sink.size() == 1 ? "" : "s");
    return 1;
  }
  return 0;
}
