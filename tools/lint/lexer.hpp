#pragma once
// Pass 0 of scrubber-lint: a comment/string/char-literal aware token
// scanner. Deliberately not a C++ front end — every downstream rule is
// lexical or name-based by design so the linter stays dependency-free,
// builds in a second, and never goes stale against compiler versions.
//
// Handled here (and regression-tested in tests/lint/fixtures):
//   - raw string literals, including encoding prefixes (R"", LR"", uR"",
//     UR"", u8R"") and d-char delimiters (R"x(...)x")
//   - backslash-newline line continuations inside // comments and
//     preprocessor directives (the spliced lines stay comment/directive)
//   - digit separators (60'000 must not open a phantom char literal)
//   - // scrubber-hot-begin/end and // scrubber-deterministic-begin/end
//     region markers (the comment's entire content, so prose mentioning a
//     marker opens nothing)

#include <map>
#include <set>
#include <string>
#include <vector>

#include "lint/diag.hpp"

namespace scrubber::lint {

struct Token {
  std::string text;
  int line = 0;
  bool is_identifier = false;
};

struct Comment {
  std::string text;
  int line = 0;  ///< first line of the comment
};

struct Directive {
  std::string text;  ///< full preprocessor line(s), continuations included
  int line = 0;
};

/// A marked region. begin_line == 0 means end-without-begin; end_line == 0
/// means begin-without-end (both are diagnosed by the region rules).
struct Region {
  int begin_line = 0;
  int end_line = 0;
};

/// One source file, lexed: code tokens with comments and strings stripped
/// out, plus the comments and preprocessor directives kept on the side
/// (NOLINT markers and include/guard checks need them).
struct LexedFile {
  std::string rel_path;  ///< forward-slash path relative to the scan root
  std::vector<Token> tokens;
  std::vector<Comment> comments;
  std::vector<Directive> directives;
  std::vector<Region> hot_regions;  ///< scrubber-hot-begin/end
  std::vector<Region> det_regions;  ///< scrubber-deterministic-begin/end
  int last_line = 1;
};

LexedFile lex(const std::string& rel_path, const std::string& text);

/// True when `line` falls strictly inside a balanced region.
bool line_in_region(const std::vector<Region>& regions, int line);

/// One justified scrubber-* NOLINT marker: which rules it suppresses and
/// on which line. Tracked individually so the stale pass can report
/// suppressions that no longer fire.
struct SuppressionSite {
  int comment_line = 0;
  int target_line = 0;  ///< comment_line, or +1 for NOLINTNEXTLINE
  std::set<std::string> rules;
};

/// NOLINT bookkeeping: which scrubber-* rules are suppressed on which
/// lines, and which NOLINT markers are missing their justification.
struct Suppressions {
  std::map<int, std::set<std::string>> by_line;
  std::vector<Diagnostic> malformed;
  std::vector<SuppressionSite> sites;

  [[nodiscard]] bool covers(int line, const std::string& rule) const {
    const auto it = by_line.find(line);
    return it != by_line.end() && it->second.count(rule) > 0;
  }
};

Suppressions parse_suppressions(const LexedFile& file);

}  // namespace scrubber::lint
