#include "lint/callgraph.hpp"

#include <algorithm>
#include <deque>
#include <map>

#include "lint/rules.hpp"

namespace scrubber::lint {
namespace {

bool starts_with(const std::string& s, const char* prefix) {
  return s.rfind(prefix, 0) == 0;
}

/// Names that are std/container/atomic vocabulary: an edge to a project
/// function of the same name would almost always be misattribution
/// (`slots_.size()` is not `MpscQueue::size`). The banned ones among them
/// still surface as primitives in whatever body spells them.
const std::set<std::string>& veto_set() {
  static const std::set<std::string> kVeto = {
      // containers / strings
      "size", "length", "empty", "capacity", "clear", "begin", "end",
      "cbegin", "cend", "rbegin", "rend", "front", "back", "data", "at",
      "find", "count", "contains", "erase", "insert", "push_back",
      "pop_back", "push_front", "pop_front", "emplace", "emplace_back",
      "emplace_front", "emplace_hint", "resize", "reserve",
      "shrink_to_fit", "assign", "append", "substr", "compare", "c_str",
      "str", "lower_bound", "upper_bound", "equal_range", "first",
      "second", "swap", "fill", "top",
      // atomics
      "load", "store", "exchange", "fetch_add", "fetch_sub", "fetch_and",
      "fetch_or", "fetch_xor", "compare_exchange_weak",
      "compare_exchange_strong",
      // synchronization / threads
      "wait", "wait_for", "wait_until", "notify_one", "notify_all",
      "lock", "unlock", "try_lock", "join", "joinable", "detach",
      "hardware_concurrency", "sleep_for", "sleep_until",
      // smart pointers / optional / variant
      "get", "reset", "release", "value", "value_or", "has_value",
      "index", "visit",
      // <algorithm> / <utility> / <cmath>
      "min", "max", "clamp", "abs", "move", "forward", "sort",
      "stable_sort", "copy", "copy_n", "accumulate", "transform",
      "make_unique", "make_shared", "make_pair", "make_tuple", "tie",
      "distance", "advance", "next", "prev",
      // libc / stdio / posix
      "memcpy", "memmove", "memset", "strlen", "strcmp", "strncmp",
      "snprintf", "printf", "fprintf", "sprintf", "sscanf", "malloc",
      "calloc", "realloc", "free", "open", "close", "read", "write",
      "flush", "exit",
      // strings / conversion
      "to_string", "stoi", "stol", "stoul", "stoull", "stod",
      "from_chars", "to_chars", "getline",
      // streams
      "good", "fail", "eof", "is_open", "rdbuf", "setw", "precision",
  };
  return kVeto;
}

const std::set<std::string>& alloc_set() {
  static const std::set<std::string> kAlloc = {
      "new",           "make_unique",  "make_shared", "malloc",
      "calloc",        "realloc",      "aligned_alloc", "strdup",
      "push_back",     "emplace_back", "emplace",     "resize",
      "reserve",       "insert",       "append",      "assign",
  };
  return kAlloc;
}

const std::set<std::string>& blocking_set() {
  static const std::set<std::string> kBlocking = {
      "mutex",          "timed_mutex",
      "recursive_mutex", "shared_mutex",
      "lock_guard",     "unique_lock",
      "scoped_lock",    "shared_lock",
      "condition_variable", "condition_variable_any",
      "sleep_for",      "sleep_until",
      "wait",           "wait_for",
      "wait_until",     "future",
      "promise",
  };
  return kBlocking;
}

const std::set<std::string>& socket_set() {
  static const std::set<std::string> kSocket = {
      "recv",     "recvfrom", "recvmsg",  "recvmmsg",
      "send",     "sendto",   "sendmsg",  "sendmmsg",
      "poll",     "ppoll",    "select",   "epoll_wait",
      "accept",   "connect",
  };
  return kSocket;
}

const std::set<std::string>& node_container_set() {
  static const std::set<std::string> kNode = {
      "map", "multimap", "unordered_map", "unordered_multimap",
      "unordered_set", "unordered_multiset",
  };
  return kNode;
}

const std::set<std::string>& unordered_set_names() {
  static const std::set<std::string> kUnordered = {
      "unordered_map", "unordered_multimap", "unordered_set",
      "unordered_multiset",
  };
  return kUnordered;
}

const std::set<std::string>& det_rand_set() {
  static const std::set<std::string> kRand = {
      "rand", "srand", "rand_r", "drand48", "random_device",
  };
  return kRand;
}

const std::set<std::string>& det_clock_set() {
  static const std::set<std::string> kClock = {
      "steady_clock", "system_clock", "high_resolution_clock",
      "clock_gettime", "gettimeofday",
  };
  return kClock;
}

/// True for a hot-file path where scrubber-hot-path-container already
/// bans node containers file-wide (the transitive pass must not double
/// report them).
bool container_banned_file(const std::string& rel_path) {
  return starts_with(rel_path, "src/net/packet.") ||
         starts_with(rel_path, "src/core/aggregator.");
}

}  // namespace

bool is_hot_category(Category category) {
  switch (category) {
    case Category::Alloc:
    case Category::Blocking:
    case Category::Socket:
    case Category::Container:
    case Category::Throw:
      return true;
    default:
      return false;
  }
}

bool is_det_category(Category category) { return !is_hot_category(category); }

const char* category_label(Category category) {
  switch (category) {
    case Category::Alloc:
      return "heap allocation";
    case Category::Blocking:
      return "blocking synchronization";
    case Category::Socket:
      return "socket syscall";
    case Category::Container:
      return "node-based container";
    case Category::Throw:
      return "throw expression";
    case Category::DetRand:
      return "unseeded randomness";
    case Category::DetClock:
      return "clock read";
    case Category::DetUnordered:
      return "unordered-container use";
    case Category::DetAddr:
      return "address-dependent ordering";
  }
  return "banned construct";
}

void collect_primitives(const LexedFile& file, std::size_t begin,
                        std::size_t end, std::vector<Primitive>& out) {
  const auto& t = file.tokens;
  end = std::min(end, t.size());
  for (std::size_t i = begin; i < end; ++i) {
    if (!t[i].is_identifier) continue;
    const std::string& s = t[i].text;
    const bool member_access =
        (i >= 1 && t[i - 1].text == ".") ||
        (i >= 2 && t[i - 1].text == ">" && t[i - 2].text == "-");
    const bool std_qualified = i >= 3 && t[i - 3].text == "std" &&
                               t[i - 2].text == ":" && t[i - 1].text == ":";
    if (node_container_set().count(s) > 0) {
      // Only the std::-qualified spelling, exactly like the direct rule:
      // `map` alone is too common a name to match bare.
      if (std_qualified) {
        out.push_back(Primitive{Category::Container, s, t[i].line});
        if (unordered_set_names().count(s) > 0) {
          out.push_back(Primitive{Category::DetUnordered, s, t[i].line});
        }
      }
      continue;
    }
    if (alloc_set().count(s) > 0) {
      out.push_back(Primitive{Category::Alloc, s, t[i].line});
      // fall through intentionally avoided: alloc names never collide
      // with the remaining sets
      continue;
    }
    if (blocking_set().count(s) > 0) {
      out.push_back(Primitive{Category::Blocking, s, t[i].line});
      continue;
    }
    if (socket_set().count(s) > 0) {
      out.push_back(Primitive{Category::Socket, s, t[i].line});
      continue;
    }
    if (s == "throw") {
      out.push_back(Primitive{Category::Throw, s, t[i].line});
      continue;
    }
    if (det_rand_set().count(s) > 0) {
      out.push_back(Primitive{Category::DetRand, s, t[i].line});
      continue;
    }
    if (det_clock_set().count(s) > 0) {
      out.push_back(Primitive{Category::DetClock, s, t[i].line});
      continue;
    }
    if ((s == "time" || s == "clock") && !member_access &&
        i + 1 < t.size() && t[i + 1].text == "(") {
      out.push_back(Primitive{Category::DetClock, s, t[i].line});
      continue;
    }
    if (s == "uintptr_t" || s == "intptr_t") {
      out.push_back(Primitive{Category::DetAddr, s, t[i].line});
      continue;
    }
  }
}

CallGraph build_call_graph(const ProjectIndex& index) {
  CallGraph graph;
  graph.call_targets.resize(index.calls.size());
  graph.calls_of.resize(index.functions.size());
  for (std::uint32_t c = 0; c < index.calls.size(); ++c) {
    const CallSite& call = index.calls[c];
    if (call.caller >= 0) {
      graph.calls_of[static_cast<std::size_t>(call.caller)].push_back(c);
    }
    if (veto_set().count(call.name) > 0 || call.qualifier == "std") {
      ++graph.vetoed_calls;
      continue;
    }
    const auto it = index.functions_by_name.find(call.name);
    if (it == index.functions_by_name.end()) {
      ++graph.unresolved_calls;
      continue;
    }
    std::vector<std::uint32_t> candidates = it->second;
    if (!call.qualifier.empty() && call.qualifier != "scrubber") {
      std::vector<std::uint32_t> filtered;
      for (const std::uint32_t fi : candidates) {
        const FunctionDef& def = index.functions[fi];
        if (def.class_name == call.qualifier ||
            def.qualified.find(call.qualifier + "::") != std::string::npos) {
          filtered.push_back(fi);
        }
      }
      if (!filtered.empty()) candidates = std::move(filtered);
    }
    if (call.has_receiver) {
      std::vector<std::uint32_t> members;
      std::set<std::string> classes;
      for (const std::uint32_t fi : candidates) {
        const FunctionDef& def = index.functions[fi];
        if (def.class_name.empty()) continue;
        members.push_back(fi);
        classes.insert(def.class_name);
      }
      if (members.empty()) {
        ++graph.unresolved_calls;
        continue;
      }
      if (classes.size() > 1) {
        ++graph.ambiguous_calls;  // skipped, not guessed
        continue;
      }
      candidates = std::move(members);
    } else {
      std::string enclosing;
      if (call.caller >= 0) {
        enclosing =
            index.functions[static_cast<std::size_t>(call.caller)].class_name;
      }
      std::vector<std::uint32_t> same_class;
      std::vector<std::uint32_t> free_fns;
      std::vector<std::uint32_t> members;
      std::set<std::string> classes;
      for (const std::uint32_t fi : candidates) {
        const FunctionDef& def = index.functions[fi];
        if (def.class_name.empty()) {
          free_fns.push_back(fi);
        } else {
          members.push_back(fi);
          classes.insert(def.class_name);
          if (!enclosing.empty() && def.class_name == enclosing) {
            same_class.push_back(fi);
          }
        }
      }
      if (!same_class.empty()) {
        candidates = std::move(same_class);
      } else if (!free_fns.empty()) {
        // Same-TU free functions win for unqualified calls: per-file
        // anonymous-namespace helpers (`now_ns` and friends) otherwise
        // resolve to every same-named twin in the tree.
        if (call.qualifier.empty()) {
          std::vector<std::uint32_t> same_file;
          for (const std::uint32_t fi : free_fns) {
            if (index.functions[fi].file == call.file) same_file.push_back(fi);
          }
          if (!same_file.empty()) free_fns = std::move(same_file);
        }
        candidates = std::move(free_fns);
      } else if (classes.size() == 1) {
        candidates = std::move(members);
      } else {
        ++graph.ambiguous_calls;
        continue;
      }
    }
    graph.resolved_edges += candidates.size();
    graph.call_targets[c] = std::move(candidates);
  }
  return graph;
}

namespace {

struct WalkItem {
  std::uint32_t func;
  int depth;
  std::string chain;  ///< " → "-joined call names from the root
};

/// Lazily computed per-function primitive cache.
class PrimitiveCache {
 public:
  explicit PrimitiveCache(const ProjectIndex& index) : index_(index) {
    done_.resize(index.functions.size(), false);
    cache_.resize(index.functions.size());
  }
  const std::vector<Primitive>& of(std::uint32_t func) {
    if (!done_[func]) {
      const FunctionDef& def = index_.functions[func];
      collect_primitives(index_.files[def.file].lexed, def.body_begin,
                         def.body_end, cache_[func]);
      done_[func] = true;
    }
    return cache_[func];
  }

 private:
  const ProjectIndex& index_;
  std::vector<char> done_;
  std::vector<std::vector<Primitive>> cache_;
};

void walk_from_root(const ProjectIndex& index, const CallGraph& graph,
                    const TransitiveOptions& options, std::uint32_t root_call,
                    bool det, PrimitiveCache& primitives, Sink& sink,
                    UsedSuppressions& used) {
  const CallSite& root = index.calls[root_call];
  const IndexedFile& root_file = index.files[root.file];
  const char* rule = det ? "scrubber-deterministic" : "scrubber-transitive";
  const bool netio_root = starts_with(root_file.lexed.rel_path, "src/netio/");

  std::set<std::uint32_t> visited;
  std::set<Category> emitted;
  std::deque<WalkItem> queue;
  for (const std::uint32_t target : graph.call_targets[root_call]) {
    if (visited.insert(target).second) {
      queue.push_back(WalkItem{target, 1, root.name});
    }
  }
  while (!queue.empty()) {
    const WalkItem item = queue.front();
    queue.pop_front();
    const FunctionDef& def = index.functions[item.func];
    const IndexedFile& def_file = index.files[def.file];
    for (const Primitive& primitive : primitives.of(item.func)) {
      if (det != is_det_category(primitive.category)) continue;
      // Primitives the direct rules (or a file-wide exemption) already
      // own are not re-reported through the chain.
      const auto& regions =
          det ? def_file.lexed.det_regions : def_file.lexed.hot_regions;
      if (line_in_region(regions, primitive.line)) continue;
      if (primitive.category == Category::Container &&
          container_banned_file(def_file.lexed.rel_path)) {
        continue;
      }
      if (primitive.category == Category::Socket && netio_root) continue;
      if (primitive.category == Category::DetRand &&
          starts_with(def_file.lexed.rel_path, "src/util/rng")) {
        continue;
      }
      if (!emitted.insert(primitive.category).second) continue;
      const std::string region_name =
          det ? "scrubber-deterministic" : "scrubber-hot";
      const std::string fix_hint =
          det ? "deterministic regions must stay reproducible through every "
                "call chain"
              : "hot regions must stay clean through every call chain";
      sink.push_back(Diagnostic{
          root_file.lexed.rel_path, root.line, rule,
          "call chain " + item.chain + " reaches `" + primitive.token +
              "` (" + category_label(primitive.category) + ") at " +
              def_file.lexed.rel_path + ":" +
              std::to_string(primitive.line) + " from a " + region_name +
              " region — " + fix_hint +
              " (suppress at this call site with `// NOLINT(" + rule +
              "): reason` if justified)"});
    }
    if (item.depth >= options.max_depth) continue;
    for (const std::uint32_t next_call : graph.calls_of[item.func]) {
      const CallSite& call = index.calls[next_call];
      if (def_file.suppressions.covers(call.line, rule)) {
        used.insert({call.file, call.line, rule});
        continue;
      }
      for (const std::uint32_t target : graph.call_targets[next_call]) {
        if (visited.insert(target).second) {
          queue.push_back(
              WalkItem{target, item.depth + 1, item.chain + " → " + call.name});
        }
      }
    }
  }
}

}  // namespace

void check_transitive(const ProjectIndex& index, const CallGraph& graph,
                      const TransitiveOptions& options, Sink& sink,
                      UsedSuppressions& used) {
  PrimitiveCache primitives(index);
  for (std::uint32_t c = 0; c < index.calls.size(); ++c) {
    if (graph.call_targets[c].empty()) continue;
    const CallSite& call = index.calls[c];
    const LexedFile& lexed = index.files[call.file].lexed;
    if (line_in_region(lexed.hot_regions, call.line)) {
      walk_from_root(index, graph, options, c, /*det=*/false, primitives,
                     sink, used);
    }
    if (line_in_region(lexed.det_regions, call.line)) {
      walk_from_root(index, graph, options, c, /*det=*/true, primitives,
                     sink, used);
    }
  }
}

void dot_dump(const ProjectIndex& index, const CallGraph& graph,
              std::ostream& out) {
  const auto escape = [](const std::string& s) {
    std::string escaped;
    for (const char c : s) {
      if (c == '"' || c == '\\') escaped.push_back('\\');
      escaped.push_back(c);
    }
    return escaped;
  };
  out << "digraph scrubber_lint {\n";
  out << "  rankdir=LR;\n";
  out << "  subgraph cluster_module_dag {\n"
      << "    label=\"declared module DAG\";\n"
      << "    node [shape=folder];\n";
  for (const auto& [module, allowed] : module_dag()) {
    out << "    \"mod:" << escape(module) << "\" [label=\"" << escape(module)
        << "\"];\n";
    for (const std::string& dep : allowed) {
      if (dep == module) continue;
      out << "    \"mod:" << escape(module) << "\" -> \"mod:" << escape(dep)
          << "\";\n";
    }
  }
  out << "  }\n";
  out << "  node [shape=box];\n";
  for (std::uint32_t fi = 0; fi < index.functions.size(); ++fi) {
    const FunctionDef& def = index.functions[fi];
    out << "  \"fn:" << fi << "\" [label=\"" << escape(def.qualified)
        << "\\n" << escape(index.files[def.file].lexed.rel_path) << ":"
        << def.name_line << "\"];\n";
  }
  std::set<std::pair<std::uint32_t, std::uint32_t>> printed;
  for (std::uint32_t c = 0; c < index.calls.size(); ++c) {
    const CallSite& call = index.calls[c];
    if (call.caller < 0) continue;
    for (const std::uint32_t target : graph.call_targets[c]) {
      if (printed.insert({static_cast<std::uint32_t>(call.caller), target})
              .second) {
        out << "  \"fn:" << call.caller << "\" -> \"fn:" << target << "\";\n";
      }
    }
  }
  out << "}\n";
}

}  // namespace scrubber::lint
