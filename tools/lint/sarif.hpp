#pragma once
// Minimal SARIF 2.1.0 emitter for CI annotation (--sarif out.sarif).
// Hand-rolled JSON on purpose: the linter stays dependency-free and the
// document shape is fixed.

#include <ostream>

#include "lint/diag.hpp"

namespace scrubber::lint {

/// Writes the diagnostics as one SARIF run. `diagnostics` is expected
/// sorted (the driver sorts before printing); rule metadata is derived
/// from all_rule_ids().
void write_sarif(const Sink& diagnostics, std::ostream& out);

}  // namespace scrubber::lint
