#pragma once
// Shared diagnostic record for every scrubber-lint pass (lexical rules,
// transitive call-graph checks, layering, stale-suppression detection).

#include <string>
#include <tuple>
#include <vector>

namespace scrubber::lint {

struct Diagnostic {
  std::string file;  ///< forward-slash path relative to the scan root
  int line = 0;
  std::string rule;
  std::string message;

  bool operator<(const Diagnostic& other) const {
    return std::tie(file, line, rule, message) <
           std::tie(other.file, other.line, other.rule, other.message);
  }
  bool operator==(const Diagnostic& other) const {
    return file == other.file && line == other.line && rule == other.rule &&
           message == other.message;
  }
};

using Sink = std::vector<Diagnostic>;

}  // namespace scrubber::lint
