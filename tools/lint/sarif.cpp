#include "lint/sarif.hpp"

#include <cstdio>
#include <string>

#include "lint/rules.hpp"

namespace scrubber::lint {
namespace {

/// JSON string escaping: quotes, backslashes, and control characters.
/// Everything else (UTF-8 included) passes through verbatim.
std::string escaped(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 8);
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buffer;
        } else {
          out.push_back(c);
        }
        break;
    }
  }
  return out;
}

}  // namespace

void write_sarif(const Sink& diagnostics, std::ostream& out) {
  out << "{\n"
      << "  \"$schema\": "
         "\"https://json.schemastore.org/sarif-2.1.0.json\",\n"
      << "  \"version\": \"2.1.0\",\n"
      << "  \"runs\": [\n"
      << "    {\n"
      << "      \"tool\": {\n"
      << "        \"driver\": {\n"
      << "          \"name\": \"scrubber-lint\",\n"
      << "          \"rules\": [\n";
  const auto& rules = all_rule_ids();
  for (std::size_t i = 0; i < rules.size(); ++i) {
    out << "            {\"id\": \"" << escaped(rules[i]) << "\"}"
        << (i + 1 < rules.size() ? "," : "") << "\n";
  }
  out << "          ]\n"
      << "        }\n"
      << "      },\n"
      << "      \"results\": [\n";
  for (std::size_t i = 0; i < diagnostics.size(); ++i) {
    const Diagnostic& d = diagnostics[i];
    out << "        {\n"
        << "          \"ruleId\": \"" << escaped(d.rule) << "\",\n"
        << "          \"level\": \"error\",\n"
        << "          \"message\": {\"text\": \"" << escaped(d.message)
        << "\"},\n"
        << "          \"locations\": [\n"
        << "            {\n"
        << "              \"physicalLocation\": {\n"
        << "                \"artifactLocation\": {\"uri\": \""
        << escaped(d.file) << "\"},\n"
        << "                \"region\": {\"startLine\": " << d.line << "}\n"
        << "              }\n"
        << "            }\n"
        << "          ]\n"
        << "        }" << (i + 1 < diagnostics.size() ? "," : "") << "\n";
  }
  out << "      ]\n"
      << "    }\n"
      << "  ]\n"
      << "}\n";
}

}  // namespace scrubber::lint
