#include "lint/index.hpp"

#include <algorithm>
#include <cctype>
#include <set>

namespace scrubber::lint {
namespace {

constexpr std::size_t kNpos = static_cast<std::size_t>(-1);

/// Keywords and vocabulary that can never be a project function name or a
/// call worth an edge: control flow, type heads, cast-like builtins.
const std::set<std::string>& keyword_set() {
  static const std::set<std::string> kKeywords = {
      "if", "else", "for", "while", "do", "switch", "case", "default",
      "return", "goto", "break", "continue", "sizeof", "alignof", "alignas",
      "decltype", "typeid", "static_assert", "new", "delete", "throw",
      "catch", "try", "operator", "template", "typename", "using",
      "namespace", "class", "struct", "enum", "union", "concept", "requires",
      "const", "constexpr", "consteval", "constinit", "volatile", "static",
      "inline", "extern", "mutable", "register", "thread_local", "friend",
      "explicit", "virtual", "override", "final", "public", "private",
      "protected", "typedef", "void", "bool", "char", "wchar_t", "char8_t",
      "char16_t", "char32_t", "int", "float", "double", "long", "short",
      "unsigned", "signed", "auto", "noexcept", "this", "true", "false",
      "nullptr", "asm", "co_await", "co_return", "co_yield",
      // Fixed-width typedefs show up as functional casts (`uint64_t(x)`);
      // they are types, not calls.
      "int8_t", "int16_t", "int32_t", "int64_t", "uint8_t", "uint16_t",
      "uint32_t", "uint64_t", "size_t", "ssize_t", "ptrdiff_t", "uintptr_t",
      "intptr_t",
  };
  return kKeywords;
}

/// ALL_CAPS identifiers are treated as macros: never function definitions,
/// never call edges.
bool is_all_caps(const std::string& name) {
  if (name.size() < 2) return false;
  bool has_upper = false;
  for (const char c : name) {
    if (std::isupper(static_cast<unsigned char>(c)) != 0) {
      has_upper = true;
    } else if (c != '_' && std::isdigit(static_cast<unsigned char>(c)) == 0) {
      return false;
    }
  }
  return has_upper;
}

/// Index one past the closer matching the opener at `open`, or kNpos.
std::size_t skip_balanced(const std::vector<Token>& toks, std::size_t open,
                          const char* opener, const char* closer) {
  int depth = 0;
  for (std::size_t q = open; q < toks.size(); ++q) {
    if (toks[q].text == opener) {
      ++depth;
    } else if (toks[q].text == closer) {
      if (--depth == 0) return q + 1;
    }
  }
  return kNpos;
}

/// Parses a constructor mem-initializer list starting after the `:`.
/// Grammar per initializer: name-soup, then one balanced `(...)` or
/// `{...}` group, then `,` (next initializer) or `{` (body). Returns the
/// body-brace token index, or kNpos when this is not an initializer list.
std::size_t parse_ctor_init(const std::vector<Token>& toks, std::size_t from) {
  std::size_t q = from;
  while (true) {
    while (q < toks.size() && toks[q].text != "(" && toks[q].text != "{") {
      if (toks[q].text == ";" || toks[q].text == "}") return kNpos;
      ++q;
    }
    if (q >= toks.size()) return kNpos;
    const bool paren = toks[q].text == "(";
    const std::size_t after = paren ? skip_balanced(toks, q, "(", ")")
                                    : skip_balanced(toks, q, "{", "}");
    if (after == kNpos || after >= toks.size()) return kNpos;
    if (toks[after].text == ",") {
      q = after + 1;
      continue;
    }
    if (toks[after].text == "{") return after;
    return kNpos;
  }
}

struct ParsedFn {
  std::size_t body_open = kNpos;  ///< token index of the body `{`
};

/// Tries to parse a function definition whose name token is at `t` (with
/// `toks[t + 1] == "("`). Accepts the parameter list, then a trailer of
/// const / noexcept(...) / override / final / & / && / trailing return /
/// ctor-initializer list, ending at the body `{`. Declarations (`;`) and
/// `= default` / initializers (`=`) are rejected.
bool try_parse_function(const std::vector<Token>& toks, std::size_t t,
                        ParsedFn& out) {
  std::size_t q = skip_balanced(toks, t + 1, "(", ")");
  if (q == kNpos) return false;
  while (q < toks.size()) {
    const std::string& s = toks[q].text;
    if (s == "{") {
      out.body_open = q;
      return true;
    }
    if (s == ";" || s == "=" || s == "}") return false;
    if (s == "const" || s == "override" || s == "final" || s == "mutable") {
      ++q;
      continue;
    }
    if (s == "noexcept" || s == "throw") {
      ++q;
      if (q < toks.size() && toks[q].text == "(") {
        q = skip_balanced(toks, q, "(", ")");
        if (q == kNpos) return false;
      }
      continue;
    }
    if (s == "&") {
      ++q;
      continue;
    }
    if (s == "-" && q + 1 < toks.size() && toks[q + 1].text == ">") {
      // Trailing return type: scan to the body `{` at paren depth 0.
      q += 2;
      int depth = 0;
      while (q < toks.size()) {
        const std::string& u = toks[q].text;
        if (u == "(") {
          ++depth;
        } else if (u == ")") {
          --depth;
        } else if (depth == 0 && (u == "{" || u == ";" || u == "=")) {
          break;
        }
        ++q;
      }
      continue;  // the outer loop classifies the stop token
    }
    if (s == ":") {
      const std::size_t body = parse_ctor_init(toks, q + 1);
      if (body == kNpos) return false;
      out.body_open = body;
      return true;
    }
    return false;
  }
  return false;
}

/// The per-file scope scanner. A stack of frames tracks where `{` put us;
/// function definitions are only recognized at namespace/class scope, call
/// sites are only recorded inside function bodies.
class Scanner {
 public:
  Scanner(ProjectIndex& out, std::uint32_t file_idx)
      : out_(out), file_(file_idx),
        toks_(out.files[file_idx].lexed.tokens) {}

  void run() {
    scopes_.push_back(Frame{Kind::Namespace, "", -1});
    std::size_t t = 0;
    while (t < toks_.size()) {
      const Token& tok = toks_[t];
      const bool decl_scope = scopes_.back().kind == Kind::Namespace ||
                              scopes_.back().kind == Kind::Class;
      if (tok.text == "{") {
        Kind kind = Kind::Block;
        std::string name;
        if (decl_scope && pending_.kind == Pending::Namespace) {
          kind = Kind::Namespace;
          name = pending_.name;
        } else if (decl_scope && pending_.kind == Pending::Class) {
          kind = Kind::Class;
          name = pending_.name;
        }
        scopes_.push_back(Frame{kind, std::move(name), -1});
        pending_ = {};
        ++t;
        continue;
      }
      if (tok.text == "}") {
        close_top(t, tok.line);
        pending_ = {};
        ++t;
        continue;
      }
      if (decl_scope) {
        t = scan_decl_scope(t);
      } else {
        t = scan_body_scope(t);
      }
    }
    // Unbalanced file (preprocessor-split braces): close what is open so
    // body ranges stay valid.
    while (scopes_.size() > 1) {
      close_top(toks_.size(),
                toks_.empty() ? 1 : toks_.back().line);
    }
  }

 private:
  enum class Kind { Namespace, Class, Function, Block };
  struct Frame {
    Kind kind;
    std::string name;
    std::int32_t func;  ///< FunctionDef index for Kind::Function
  };
  struct Pending {
    /// Enum and Init both make the next `{` a plain block, but only Enum
    /// also blocks `class`/`struct` from re-classifying: `enum class` is
    /// still an enum, while `template <typename H = std::hash<K>> class`
    /// must be a class despite the `=` in the default argument.
    enum Which { None, Namespace, Class, Enum, Init } kind = None;
    std::string name;
    bool name_frozen = false;  ///< a `:` base clause froze the class name
  };

  void close_top(std::size_t t, int line) {
    if (scopes_.size() <= 1) return;
    const Frame& top = scopes_.back();
    if (top.kind == Kind::Function && top.func >= 0) {
      FunctionDef& fn = out_.functions[static_cast<std::size_t>(top.func)];
      fn.body_end = t;
      fn.body_end_line = line;
    }
    scopes_.pop_back();
  }

  /// Handles one token at namespace/class scope; returns the next index.
  std::size_t scan_decl_scope(std::size_t t) {
    const Token& tok = toks_[t];
    if (!tok.is_identifier) {
      if (tok.text == ";") {
        pending_ = {};
      } else if (tok.text == "=") {
        pending_.kind = Pending::Init;  // initializer braces, not a scope
      } else if (tok.text == ":" && pending_.kind == Pending::Class) {
        pending_.name_frozen = true;  // base clause: `class Foo : Bar`
      }
      return t + 1;
    }
    const std::string& s = tok.text;
    if (s == "namespace") {
      pending_ = {};
      pending_.kind = Pending::Namespace;
      return t + 1;
    }
    if ((s == "class" || s == "struct") && pending_.kind != Pending::Enum) {
      pending_.kind = Pending::Class;
      pending_.name_frozen = false;
      return t + 1;
    }
    if (s == "enum" || s == "union") {
      pending_.kind = Pending::Enum;
      return t + 1;
    }
    if (pending_.kind == Pending::Namespace) {
      pending_.name =
          pending_.name.empty() ? s : pending_.name + "::" + s;
      return t + 1;
    }
    if (pending_.kind == Pending::Class && !pending_.name_frozen &&
        keyword_set().count(s) == 0) {
      pending_.name = s;  // last identifier before `{` / `:` wins
      return t + 1;
    }
    if (keyword_set().count(s) == 0 && !is_all_caps(s) &&
        t + 1 < toks_.size() && toks_[t + 1].text == "(") {
      ParsedFn parsed;
      if (try_parse_function(toks_, t, parsed)) {
        return record_definition(t, parsed);
      }
    }
    return t + 1;
  }

  /// Records the definition whose name is at `t`, pushes its frame, and
  /// returns the first body token index.
  std::size_t record_definition(std::size_t t, const ParsedFn& parsed) {
    std::string name = toks_[t].text;
    std::string qual_class;
    std::size_t back = t;
    if (back >= 1 && toks_[back - 1].text == "~") {
      name = "~" + name;
      --back;
    }
    if (back >= 3 && toks_[back - 1].text == ":" &&
        toks_[back - 2].text == ":" && toks_[back - 3].is_identifier) {
      qual_class = toks_[back - 3].text;  // out-of-line `Foo::bar`
    }
    std::string class_name = qual_class;
    if (class_name.empty()) {
      for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
        if (it->kind == Kind::Class) {
          class_name = it->name;
          break;
        }
      }
    }
    std::string qualified;
    for (const Frame& frame : scopes_) {
      if ((frame.kind == Kind::Namespace || frame.kind == Kind::Class) &&
          !frame.name.empty()) {
        qualified += frame.name + "::";
      }
    }
    if (!qual_class.empty()) qualified += qual_class + "::";
    qualified += name;

    FunctionDef def;
    def.file = file_;
    def.name = name;
    def.class_name = class_name;
    def.qualified = std::move(qualified);
    def.name_line = toks_[t].line;
    def.body_begin = parsed.body_open + 1;
    def.body_begin_line = toks_[parsed.body_open].line;
    const auto idx = static_cast<std::int32_t>(out_.functions.size());
    out_.functions.push_back(std::move(def));
    scopes_.push_back(Frame{Kind::Function, name, idx});
    pending_ = {};
    return parsed.body_open + 1;
  }

  /// Handles one token inside a function/block body; returns next index.
  std::size_t scan_body_scope(std::size_t t) {
    const Token& tok = toks_[t];
    if (!tok.is_identifier || keyword_set().count(tok.text) != 0 ||
        is_all_caps(tok.text) || t + 1 >= toks_.size() ||
        toks_[t + 1].text != "(") {
      return t + 1;
    }
    std::int32_t caller = -1;
    for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
      if (it->kind == Kind::Function) {
        caller = it->func;
        break;
      }
    }
    if (caller < 0) return t + 1;  // initializer block at file scope

    CallSite call;
    call.file = file_;
    call.caller = caller;
    call.name = tok.text;
    call.line = tok.line;
    std::size_t back = t;
    if (back >= 1 && toks_[back - 1].text == "~") {
      call.name = "~" + call.name;
      --back;
    }
    if (back >= 1) {
      const std::string& prev = toks_[back - 1].text;
      if (prev == ".") {
        call.has_receiver = true;
      } else if (prev == ">" && back >= 2 && toks_[back - 2].text == "-") {
        call.has_receiver = true;
      } else if (prev == ":" && back >= 3 && toks_[back - 2].text == ":" &&
                 toks_[back - 3].is_identifier) {
        call.qualifier = toks_[back - 3].text;
      }
    }
    out_.calls.push_back(std::move(call));
    return t + 1;
  }

  ProjectIndex& out_;
  const std::uint32_t file_;
  const std::vector<Token>& toks_;
  std::vector<Frame> scopes_;
  Pending pending_;
};

void collect_includes(ProjectIndex& out, std::uint32_t file_idx) {
  for (const Directive& directive : out.files[file_idx].lexed.directives) {
    std::size_t p = 0;
    const std::string& text = directive.text;
    auto skip_ws = [&] {
      while (p < text.size() &&
             (text[p] == ' ' || text[p] == '\t')) {
        ++p;
      }
    };
    skip_ws();
    if (p >= text.size() || text[p] != '#') continue;
    ++p;
    skip_ws();
    if (text.compare(p, 7, "include") != 0) continue;
    const auto open = text.find('"', p + 7);
    if (open == std::string::npos) continue;  // <system> include
    const auto close = text.find('"', open + 1);
    if (close == std::string::npos) continue;
    out.includes.push_back(IncludeEdge{
        file_idx, text.substr(open + 1, close - open - 1), directive.line});
  }
}

}  // namespace

std::string module_of(const std::string& rel_path) {
  if (rel_path.rfind("src/", 0) == 0) {
    const auto slash = rel_path.find('/', 4);
    if (slash == std::string::npos) return "";
    return rel_path.substr(4, slash - 4);
  }
  if (rel_path.rfind("tools/", 0) == 0) return "tools";
  if (rel_path.rfind("bench/", 0) == 0) return "bench";
  return "";
}

ProjectIndex build_index(std::vector<LexedFile> files) {
  ProjectIndex out;
  out.files.reserve(files.size());
  for (LexedFile& lexed : files) {
    IndexedFile indexed;
    indexed.suppressions = parse_suppressions(lexed);
    indexed.module = module_of(lexed.rel_path);
    indexed.lexed = std::move(lexed);
    out.files.push_back(std::move(indexed));
  }
  for (std::uint32_t fi = 0; fi < out.files.size(); ++fi) {
    Scanner(out, fi).run();
    collect_includes(out, fi);
  }
  for (std::uint32_t i = 0; i < out.functions.size(); ++i) {
    out.functions_by_name[out.functions[i].name].push_back(i);
  }
  return out;
}

}  // namespace scrubber::lint
