#pragma once
// Pass 1 of scrubber-lint: the whole-program index. Every translation
// unit handed to the driver is lexed and scanned once for
//
//   - function definitions (free and member, in-class and out-of-line),
//     with their body token ranges and scope-qualified names
//   - call sites inside those bodies (bare name + spelled qualifier +
//     receiver-ness, resolved later by the call-graph pass)
//   - quoted #include edges (the layering pass checks them against the
//     declared module DAG)
//   - NOLINT suppression sites (the stale pass checks they still fire)
//
// The function scanner is a heuristic brace/scope tracker, not a parser:
// it recognizes `name(args) <trailer> {` at namespace/class scope,
// including ctor-initializer lists and trailing return types. Operator
// overloads and templates spelled `f<T>(...)` are not indexed — the
// region rules still cover their bodies lexically, only the transitive
// pass cannot see through them (documented in DESIGN.md §12).

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "lint/lexer.hpp"

namespace scrubber::lint {

struct FunctionDef {
  std::uint32_t file = 0;    ///< index into ProjectIndex::files
  std::string name;          ///< bare name ("~" prefix for destructors)
  std::string class_name;    ///< enclosing class/struct; "" = free function
  std::string qualified;     ///< scope-qualified spelling, for graph labels
  int name_line = 0;
  int body_begin_line = 0;
  int body_end_line = 0;
  std::size_t body_begin = 0;  ///< token range [body_begin, body_end)
  std::size_t body_end = 0;
};

struct CallSite {
  std::uint32_t file = 0;
  std::int32_t caller = -1;  ///< FunctionDef index; only in-body calls kept
  std::string name;          ///< bare callee name
  std::string qualifier;     ///< "std" / "util" / "Foo" when spelled A::f
  int line = 0;
  bool has_receiver = false;  ///< x.f(...) or x->f(...)
};

struct IncludeEdge {
  std::uint32_t file = 0;
  std::string path;  ///< quoted include target, as written
  int line = 0;
};

struct IndexedFile {
  LexedFile lexed;
  Suppressions suppressions;
  std::string module;  ///< "runtime", "tools", ...; "" outside the tree
};

struct ProjectIndex {
  std::vector<IndexedFile> files;
  std::vector<FunctionDef> functions;
  std::vector<CallSite> calls;
  std::vector<IncludeEdge> includes;
  std::map<std::string, std::vector<std::uint32_t>> functions_by_name;
};

/// Module of a scan-root-relative path: "src/runtime/ring.hpp" ->
/// "runtime", "tools/lint/main.cpp" -> "tools", "bench/micro.cpp" ->
/// "bench", anything else -> "".
std::string module_of(const std::string& rel_path);

/// Builds the whole-program index over already-lexed files.
ProjectIndex build_index(std::vector<LexedFile> files);

}  // namespace scrubber::lint
