#pragma once
// Pass 3 of scrubber-lint: the rule set. Per-file lexical rules (the v1
// rules plus the direct scrubber-deterministic region rule), the
// whole-program layering check over the include graph, and the central
// NOLINT application that also reports stale suppressions.

#include <map>
#include <set>
#include <string>
#include <vector>

#include "lint/callgraph.hpp"
#include "lint/index.hpp"

namespace scrubber::lint {

/// Every rule id the analyzer can emit, in --list-rules order.
const std::vector<std::string>& all_rule_ids();

/// The declared module DAG: module -> set of modules it may include
/// (itself always allowed). Modules absent from the map (tools, bench,
/// top-level src files) are unrestricted.
const std::map<std::string, std::set<std::string>>& module_dag();

/// Runs every per-file lexical rule over one lexed file.
void run_file_rules(const LexedFile& file, Sink& sink);

/// scrubber-layering: quoted includes must follow the declared module DAG.
void rule_layering(const ProjectIndex& index, Sink& sink);

/// Applies NOLINT suppressions to `raw` and appends survivors to `kept`,
/// together with malformed-NOLINT diagnostics and scrubber-stale-nolint
/// findings for suppression sites that silenced nothing (neither a
/// generated diagnostic nor a call-graph edge in `edge_used`).
void apply_suppressions(const ProjectIndex& index, Sink raw,
                        const UsedSuppressions& edge_used, Sink& kept);

}  // namespace scrubber::lint
