#include "lint/rules.hpp"

#include <algorithm>
#include <cctype>
#include <string_view>

namespace scrubber::lint {
namespace {

bool starts_with(const std::string& s, std::string_view prefix) {
  return s.rfind(prefix, 0) == 0;
}

void add(Sink& sink, const LexedFile& f, int line, const char* rule,
         std::string message) {
  sink.push_back(Diagnostic{f.rel_path, line, rule, std::move(message)});
}

/// scrubber-memory-order: atomic operations in src/runtime/ must pass an
/// explicit std::memory_order. Matches `.op(` / `->op(` for the atomic
/// member-function vocabulary and scans the balanced argument list for a
/// memory_order* identifier.
void rule_memory_order(const LexedFile& f, Sink& sink) {
  if (!starts_with(f.rel_path, "src/runtime/")) return;
  // `clear`/`test_and_set` (atomic_flag) are deliberately absent: `clear`
  // collides with the container vocabulary and atomic_flag is unused.
  static const std::set<std::string> kAtomicOps = {
      "load",          "store",
      "exchange",      "fetch_add",
      "fetch_sub",     "fetch_and",
      "fetch_or",      "fetch_xor",
      "compare_exchange_weak", "compare_exchange_strong",
  };
  const auto& t = f.tokens;
  for (std::size_t i = 1; i + 1 < t.size(); ++i) {
    if (!t[i].is_identifier || kAtomicOps.count(t[i].text) == 0) continue;
    const bool member_call =
        t[i - 1].text == "." ||
        (i >= 2 && t[i - 1].text == ">" && t[i - 2].text == "-");
    if (!member_call || t[i + 1].text != "(") continue;
    // Scan the balanced argument list for memory_order*.
    int depth = 0;
    bool found = false;
    std::size_t j = i + 1;
    for (; j < t.size(); ++j) {
      if (t[j].text == "(") ++depth;
      if (t[j].text == ")" && --depth == 0) break;
      if (t[j].is_identifier && starts_with(t[j].text, "memory_order")) {
        found = true;
      }
    }
    if (!found) {
      add(sink, f, t[i].line, "scrubber-memory-order",
          "atomic `" + t[i].text +
              "` without an explicit std::memory_order (seq_cst-by-default "
              "is banned in src/runtime/ — name the ordering the protocol "
              "needs)");
    }
  }
}

/// scrubber-hot-path-blocking: inside // scrubber-hot-begin/end regions
/// (the SPSC ring push/pop paths) no locks, condvars, or sleeps. Socket
/// syscalls are blocking calls too (recvmmsg parks the thread in the
/// kernel even with a timeout) and are banned in hot regions everywhere
/// except src/netio/ — the listener subsystem is the one place the wire
/// is allowed to touch the hot path, and its receive loop is the very
/// thing the rule protects the rest of the pipeline from.
void rule_hot_path_blocking(const LexedFile& f, Sink& sink) {
  if (f.hot_regions.empty()) return;
  static const std::set<std::string> kBlocking = {
      "mutex",          "timed_mutex",
      "recursive_mutex", "shared_mutex",
      "lock_guard",     "unique_lock",
      "scoped_lock",    "shared_lock",
      "condition_variable", "condition_variable_any",
      "sleep_for",      "sleep_until",
      "wait",           "wait_for",
      "wait_until",     "future",
      "promise",
  };
  static const std::set<std::string> kSocketSyscalls = {
      "recv",     "recvfrom", "recvmsg",  "recvmmsg",
      "send",     "sendto",   "sendmsg",  "sendmmsg",
      "poll",     "ppoll",    "select",   "epoll_wait",
      "accept",   "connect",
  };
  const bool netio = starts_with(f.rel_path, "src/netio/");
  for (const Region& region : f.hot_regions) {
    if (region.begin_line == 0) {
      add(sink, f, region.end_line, "scrubber-hot-path-blocking",
          "scrubber-hot-end without a matching scrubber-hot-begin");
      continue;
    }
    if (region.end_line == 0) {
      add(sink, f, region.begin_line, "scrubber-hot-path-blocking",
          "scrubber-hot-begin without a matching scrubber-hot-end");
      continue;
    }
    for (const Token& token : f.tokens) {
      if (token.line <= region.begin_line || token.line >= region.end_line) {
        continue;
      }
      if (!token.is_identifier) continue;
      if (kBlocking.count(token.text) > 0) {
        add(sink, f, token.line, "scrubber-hot-path-blocking",
            "`" + token.text +
                "` inside a scrubber-hot region — ring push/pop paths must "
                "stay lock-free (spin/yield only)");
      } else if (!netio && kSocketSyscalls.count(token.text) > 0) {
        add(sink, f, token.line, "scrubber-hot-path-blocking",
            "socket syscall `" + token.text +
                "` inside a scrubber-hot region — only src/netio/ touches "
                "the wire; hand bytes off through the input ring");
      }
    }
  }
}

/// scrubber-hot-path-alloc: inside // scrubber-hot-begin/end regions no
/// heap allocation — per-record work must run at memory speed, so growth
/// happens in batch-sized chunks outside the marked kernels. Unbalanced
/// region markers are diagnosed by scrubber-hot-path-blocking already and
/// skipped here.
void rule_hot_path_alloc(const LexedFile& f, Sink& sink) {
  if (f.hot_regions.empty()) return;
  static const std::set<std::string> kAllocating = {
      "new",         "make_unique", "make_shared",
      "malloc",      "calloc",      "realloc",
      "aligned_alloc", "strdup",
      "push_back",   "emplace_back", "emplace",
      "resize",      "reserve",     "insert",
      "append",      "assign",
  };
  for (const Region& region : f.hot_regions) {
    if (region.begin_line == 0 || region.end_line == 0) continue;
    for (const Token& token : f.tokens) {
      if (token.line <= region.begin_line || token.line >= region.end_line) {
        continue;
      }
      if (token.is_identifier && kAllocating.count(token.text) > 0) {
        add(sink, f, token.line, "scrubber-hot-path-alloc",
            "`" + token.text +
                "` inside a scrubber-hot region — the per-record path must "
                "not allocate (preallocate or batch outside the region)");
      }
    }
  }
}

/// scrubber-hot-path-throw: inside // scrubber-hot-begin/end regions no
/// throw expressions — the wire hot path is exception-free. Unwinding
/// tears down per-record state the pool/ring protocols rely on, and a
/// throw in a noexcept decode kernel is std::terminate. Report errors as
/// values (net::DecodeStatus) and let the cold path decide. Unbalanced
/// region markers are diagnosed by scrubber-hot-path-blocking and
/// skipped here.
void rule_hot_path_throw(const LexedFile& f, Sink& sink) {
  if (f.hot_regions.empty()) return;
  for (const Region& region : f.hot_regions) {
    if (region.begin_line == 0 || region.end_line == 0) continue;
    for (const Token& token : f.tokens) {
      if (token.line <= region.begin_line || token.line >= region.end_line) {
        continue;
      }
      if (token.is_identifier && token.text == "throw") {
        add(sink, f, token.line, "scrubber-hot-path-throw",
            "`throw` inside a scrubber-hot region — the wire hot path is "
            "exception-free (return a status value like net::DecodeStatus "
            "instead of unwinding)");
      }
    }
  }
}

/// scrubber-hot-path-container: the flow hot path must not touch
/// node-based associative containers. std::map / std::unordered_map /
/// std::unordered_set are banned (i) inside scrubber-hot regions in any
/// file and (ii) *anywhere* in src/net/packet.* and src/core/aggregator.*
/// — the per-flow and per-group paths run on util::FlatHash and sorted
/// vectors (contiguous storage, deterministic insertion-order iteration,
/// zero per-node allocation), and a casual `std::map` reintroduced there
/// is exactly the regression this PR removed.
void rule_hot_path_container(const LexedFile& f, Sink& sink) {
  const bool hot_file = starts_with(f.rel_path, "src/net/packet.") ||
                        starts_with(f.rel_path, "src/core/aggregator.");
  if (!hot_file && f.hot_regions.empty()) return;
  static const std::set<std::string> kNodeContainers = {
      "map", "multimap", "unordered_map", "unordered_multimap",
      "unordered_set", "unordered_multiset",
  };
  const auto& t = f.tokens;
  for (std::size_t i = 3; i < t.size(); ++i) {
    if (!t[i].is_identifier || kNodeContainers.count(t[i].text) == 0) continue;
    // Only the std::-qualified spelling: `map` alone is too common a name
    // (the functional idiom, local variables) to match bare.
    const bool qualified = t[i - 3].text == "std" && t[i - 2].text == ":" &&
                           t[i - 1].text == ":";
    if (!qualified) continue;
    if (!hot_file && !line_in_region(f.hot_regions, t[i].line)) continue;
    add(sink, f, t[i].line, "scrubber-hot-path-container",
        "`std::" + t[i].text +
            "` on the flow hot path — use util::FlatHash or a sorted "
            "vector (contiguous, insertion-ordered, no per-node "
            "allocation)");
  }
}

/// scrubber-raw-rand: all randomness flows through util/rng (seeded,
/// reproducible); libc rand and std::random_device are banned elsewhere.
void rule_raw_rand(const LexedFile& f, Sink& sink) {
  if (starts_with(f.rel_path, "src/util/rng")) return;
  static const std::set<std::string> kBanned = {
      "rand", "srand", "rand_r", "drand48", "random_device",
  };
  for (const Token& token : f.tokens) {
    if (token.is_identifier && kBanned.count(token.text) > 0) {
      add(sink, f, token.line, "scrubber-raw-rand",
          "`" + token.text +
              "` is banned — draw from util::Rng (seeded, reproducible) "
              "instead");
    }
  }
}

/// scrubber-raw-thread: naming std::thread/std::jthread (construction or
/// member containers of them) is only allowed in src/util/thread_pool.hpp
/// (the pool that owns learning-plane workers), src/runtime/ (the serving
/// path owns its shard threads) and src/netio/ (the listener and load
/// generator own their socket threads — pooling a thread that blocks in
/// recvmmsg would poison the pool) — everything else fans work out
/// through util::training_pool(), which is what keeps learning-plane
/// results bit-identical for any thread count. Static member access
/// (std::thread::hardware_concurrency) is fine anywhere: it reads the
/// machine, it does not spawn on it.
void rule_raw_thread(const LexedFile& f, Sink& sink) {
  if (f.rel_path == "src/util/thread_pool.hpp") return;
  if (starts_with(f.rel_path, "src/runtime/")) return;
  if (starts_with(f.rel_path, "src/netio/")) return;
  const auto& t = f.tokens;
  for (std::size_t i = 3; i < t.size(); ++i) {
    if (!t[i].is_identifier ||
        (t[i].text != "thread" && t[i].text != "jthread")) {
      continue;
    }
    const bool qualified = t[i - 3].text == "std" && t[i - 2].text == ":" &&
                           t[i - 1].text == ":";
    if (!qualified) continue;
    const bool static_member_access =
        i + 2 < t.size() && t[i + 1].text == ":" && t[i + 2].text == ":";
    if (static_member_access) continue;
    add(sink, f, t[i].line, "scrubber-raw-thread",
        "`std::" + t[i].text +
            "` outside src/util/thread_pool.hpp, src/runtime/ and "
            "src/netio/ — fan work out through util::training_pool() so "
            "results stay bit-identical for any thread count");
  }
}

/// scrubber-float-counter: names that look like byte/packet counters must
/// not be declared float/double. Derived quantities (means, rates, sizes,
/// shares) are fine and excluded by name.
void rule_float_counter(const LexedFile& f, Sink& sink) {
  const auto counter_name = [](std::string name) {
    std::transform(name.begin(), name.end(), name.begin(), [](unsigned char c) {
      return static_cast<char>(std::tolower(c));
    });
    for (const char* derived : {"mean", "avg", "per", "rate", "size", "share",
                                "frac", "ratio", "scale", "weight", "norm"}) {
      if (name.find(derived) != std::string::npos) return false;
    }
    for (const char* unit : {"byte", "packet", "pkt"}) {
      if (name.find(unit) != std::string::npos) return true;
    }
    return false;
  };
  const auto& t = f.tokens;
  for (std::size_t i = 0; i + 1 < t.size(); ++i) {
    if (!t[i].is_identifier ||
        (t[i].text != "float" && t[i].text != "double")) {
      continue;
    }
    if (t[i + 1].is_identifier && counter_name(t[i + 1].text)) {
      add(sink, f, t[i + 1].line, "scrubber-float-counter",
          "byte/packet counter `" + t[i + 1].text + "` declared as " +
              t[i].text +
              " — counters accumulate in integers (precision loss at IXP "
              "volumes is silent)");
    }
  }
}

/// scrubber-naked-new: no naked new/delete expressions. `= delete;`
/// (deleted functions) is the one allowed spelling.
void rule_naked_new(const LexedFile& f, Sink& sink) {
  const auto& t = f.tokens;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (!t[i].is_identifier) continue;
    if (t[i].text == "new") {
      add(sink, f, t[i].line, "scrubber-naked-new",
          "naked `new` — use std::make_unique/containers; ownership must "
          "be structural");
    } else if (t[i].text == "delete") {
      const bool deleted_function =
          i > 0 && t[i - 1].text == "=" && i + 1 < t.size() &&
          (t[i + 1].text == ";" || t[i + 1].text == ",");
      if (!deleted_function) {
        add(sink, f, t[i].line, "scrubber-naked-new",
            "naked `delete` — if you need this, the ownership model is "
            "already broken");
      }
    }
  }
}

/// scrubber-include-guard: headers say #pragma once (and nothing else).
void rule_include_guard(const LexedFile& f, Sink& sink) {
  const bool is_header = f.rel_path.size() > 4 &&
                         (f.rel_path.ends_with(".hpp") ||
                          f.rel_path.ends_with(".h"));
  if (!is_header) return;
  bool has_pragma_once = false;
  for (const Directive& d : f.directives) {
    if (d.text.find("pragma") != std::string::npos &&
        d.text.find("once") != std::string::npos) {
      has_pragma_once = true;
      break;
    }
  }
  if (!has_pragma_once) {
    add(sink, f, 1, "scrubber-include-guard",
        "header without #pragma once (the project guard style; #ifndef "
        "guards drift)");
  }
  // #ifndef-style guard: first two directives are #ifndef X / #define X.
  if (f.directives.size() >= 2) {
    const std::string& first = f.directives[0].text;
    const std::string& second = f.directives[1].text;
    if (first.find("ifndef") != std::string::npos &&
        second.find("define") != std::string::npos) {
      add(sink, f, f.directives[0].line, "scrubber-include-guard",
          "#ifndef include guard — use #pragma once (project style)");
    }
  }
}

/// scrubber-banned-construct: std::regex and volatile are banned in
/// src/, tools/ and bench/ (regex backtracks unboundedly; volatile is
/// not synchronization — use std::atomic).
void rule_banned_construct(const LexedFile& f, Sink& sink) {
  for (const Directive& d : f.directives) {
    if (d.text.find("<regex>") != std::string::npos) {
      add(sink, f, d.line, "scrubber-banned-construct",
          "#include <regex> — std::regex backtracking is unbounded; use "
          "hand-rolled matching");
    }
  }
  for (const Token& token : f.tokens) {
    if (!token.is_identifier) continue;
    if (token.text == "regex" || token.text == "basic_regex") {
      add(sink, f, token.line, "scrubber-banned-construct",
          "std::regex is banned (unbounded backtracking on hot paths)");
    } else if (token.text == "volatile") {
      add(sink, f, token.line, "scrubber-banned-construct",
          "volatile is not synchronization — use std::atomic with an "
          "explicit memory order");
    }
  }
}

/// scrubber-simd-isolation: x86 vector intrinsics — the <immintrin.h>
/// header family and _mm*/__m128/__m256/__m512 identifiers — are allowed
/// only in src/util/simd.* (the dispatch layer) and src/ml/compiled_tree*
/// (the lane-table kernels). Everywhere else wants the dispatched batch
/// APIs: intrinsics that sprawl into ordinary TUs can be inlined into
/// functions the linker picks for other TUs and then fault on machines
/// the runtime cpuid gate was supposed to protect (DESIGN.md §13).
void rule_simd_isolation(const LexedFile& f, Sink& sink) {
  if (starts_with(f.rel_path, "src/util/simd.")) return;
  if (starts_with(f.rel_path, "src/ml/compiled_tree")) return;
  for (const Directive& d : f.directives) {
    if (d.text.find("intrin.h") != std::string::npos) {
      add(sink, f, d.line, "scrubber-simd-isolation",
          "intrinsics header outside src/util/simd.* and "
          "src/ml/compiled_tree* — SIMD code lives behind "
          "util::simd_level() dispatch so one binary stays safe on "
          "non-AVX2 machines");
    }
  }
  const auto vector_intrinsic = [](const std::string& name) {
    return starts_with(name, "_mm") || starts_with(name, "__m64") ||
           starts_with(name, "__m128") || starts_with(name, "__m256") ||
           starts_with(name, "__m512");
  };
  for (const Token& token : f.tokens) {
    if (!token.is_identifier || !vector_intrinsic(token.text)) continue;
    add(sink, f, token.line, "scrubber-simd-isolation",
        "`" + token.text +
            "` outside src/util/simd.* and src/ml/compiled_tree* — call "
            "the dispatched batch APIs (CompiledForest::margin_batch et "
            "al.) instead of raw vector intrinsics");
  }
}

/// scrubber-deterministic (direct): inside // scrubber-deterministic
/// regions no unseeded randomness, clock reads, unordered-container use,
/// or address-dependent ordering — the sharded-collector merge, the
/// training plane, and flowgen must produce bit-identical output for any
/// thread count and any run. Unbalanced markers are diagnosed here too.
void rule_deterministic_direct(const LexedFile& f, Sink& sink) {
  if (f.det_regions.empty()) return;
  for (const Region& region : f.det_regions) {
    if (region.begin_line == 0) {
      add(sink, f, region.end_line, "scrubber-deterministic",
          "scrubber-deterministic-end without a matching "
          "scrubber-deterministic-begin");
    } else if (region.end_line == 0) {
      add(sink, f, region.begin_line, "scrubber-deterministic",
          "scrubber-deterministic-begin without a matching "
          "scrubber-deterministic-end");
    }
  }
  std::vector<Primitive> primitives;
  collect_primitives(f, 0, f.tokens.size(), primitives);
  for (const Primitive& primitive : primitives) {
    if (!is_det_category(primitive.category)) continue;
    if (!line_in_region(f.det_regions, primitive.line)) continue;
    if (primitive.category == Category::DetRand &&
        starts_with(f.rel_path, "src/util/rng")) {
      continue;
    }
    add(sink, f, primitive.line, "scrubber-deterministic",
        "`" + primitive.token + "` (" + category_label(primitive.category) +
            ") inside a scrubber-deterministic region — merge, training and "
            "flowgen output must be bit-identical for any thread count and "
            "any run");
  }
}

}  // namespace

const std::vector<std::string>& all_rule_ids() {
  static const std::vector<std::string> kRules = {
      "scrubber-memory-order",    "scrubber-hot-path-blocking",
      "scrubber-hot-path-alloc",  "scrubber-hot-path-container",
      "scrubber-hot-path-throw",
      "scrubber-raw-rand",        "scrubber-raw-thread",
      "scrubber-float-counter",   "scrubber-naked-new",
      "scrubber-include-guard",   "scrubber-banned-construct",
      "scrubber-nolint-needs-reason", "scrubber-transitive",
      "scrubber-deterministic",   "scrubber-layering",
      "scrubber-stale-nolint",    "scrubber-simd-isolation",
  };
  return kRules;
}

const std::map<std::string, std::set<std::string>>& module_dag() {
  // Derived from the actual include graph at the time the DAG was
  // declared; enforced against drift from here on. netio sits on top
  // (it may see everything), util at the bottom (it sees nothing), and
  // ml must never reach netio — the learning plane cannot grow a
  // dependency on the wire.
  static const std::map<std::string, std::set<std::string>> kDag = {
      {"netio", {"netio", "runtime", "core", "net", "bgp", "util"}},
      {"runtime", {"runtime", "core", "net", "bgp", "util"}},
      {"core", {"core", "ml", "arm", "bgp", "net", "util"}},
      {"ml", {"ml", "net", "util"}},
      {"arm", {"arm", "net", "util"}},
      {"bgp", {"bgp", "net", "util"}},
      {"flowgen", {"flowgen", "net", "bgp", "util"}},
      {"net", {"net", "util"}},
      {"util", {"util"}},
  };
  return kDag;
}

void run_file_rules(const LexedFile& file, Sink& sink) {
  rule_memory_order(file, sink);
  rule_hot_path_blocking(file, sink);
  rule_hot_path_alloc(file, sink);
  rule_hot_path_container(file, sink);
  rule_hot_path_throw(file, sink);
  rule_raw_rand(file, sink);
  rule_raw_thread(file, sink);
  rule_float_counter(file, sink);
  rule_naked_new(file, sink);
  rule_include_guard(file, sink);
  rule_banned_construct(file, sink);
  rule_simd_isolation(file, sink);
  rule_deterministic_direct(file, sink);
}

namespace {

/// Module of an include target: "netio/udp.hpp" (or "src/netio/udp.hpp")
/// names module netio; targets whose first segment is not a declared
/// module ("lint/lexer.hpp", "gtest/gtest.h") are unconstrained.
std::string include_target_module(const std::string& include_path) {
  std::string path = include_path;
  if (starts_with(path, "src/")) path = path.substr(4);
  const auto slash = path.find('/');
  if (slash == std::string::npos) return "";
  const std::string segment = path.substr(0, slash);
  return module_dag().count(segment) > 0 ? segment : "";
}

std::string joined(const std::set<std::string>& values) {
  std::string out;
  for (const std::string& value : values) {
    if (!out.empty()) out += ", ";
    out += value;
  }
  return out;
}

}  // namespace

void rule_layering(const ProjectIndex& index, Sink& sink) {
  for (const IncludeEdge& edge : index.includes) {
    const IndexedFile& from = index.files[edge.file];
    const auto allowed = module_dag().find(from.module);
    if (allowed == module_dag().end()) continue;  // tools/bench/top-level
    const std::string target = include_target_module(edge.path);
    if (target.empty()) continue;
    if (allowed->second.count(target) > 0) continue;
    sink.push_back(Diagnostic{
        from.lexed.rel_path, edge.line, "scrubber-layering",
        "module `" + from.module + "` must not include `" + edge.path +
            "` (module `" + target + "`) — the declared DAG allows " +
            from.module + " -> { " + joined(allowed->second) +
            " } (see DESIGN.md §12)"});
  }
}

void apply_suppressions(const ProjectIndex& index, Sink raw,
                        const UsedSuppressions& edge_used, Sink& kept) {
  std::map<std::string, std::uint32_t> file_of;
  for (std::uint32_t fi = 0; fi < index.files.size(); ++fi) {
    file_of[index.files[fi].lexed.rel_path] = fi;
  }
  // (file, target line, rule) triples whose suppression absorbed a
  // diagnostic — seeded with the edges the transitive walk consumed.
  UsedSuppressions used = edge_used;
  for (Diagnostic& d : raw) {
    const auto fit = file_of.find(d.file);
    const bool suppressible = d.rule != "scrubber-nolint-needs-reason";
    if (suppressible && fit != file_of.end() &&
        index.files[fit->second].suppressions.covers(d.line, d.rule)) {
      used.insert({fit->second, d.line, d.rule});
      continue;
    }
    kept.push_back(std::move(d));
  }
  for (std::uint32_t fi = 0; fi < index.files.size(); ++fi) {
    const IndexedFile& file = index.files[fi];
    for (const Diagnostic& d : file.suppressions.malformed) {
      kept.push_back(d);
    }
    for (const SuppressionSite& site : file.suppressions.sites) {
      bool fired = false;
      for (const std::string& rule : site.rules) {
        if (used.count({fi, site.target_line, rule}) > 0) {
          fired = true;
          break;
        }
      }
      if (!fired) {
        kept.push_back(Diagnostic{
            file.lexed.rel_path, site.comment_line, "scrubber-stale-nolint",
            "NOLINT(" + joined(site.rules) +
                ") suppresses nothing — the violation it silenced is gone; "
                "remove the suppression or re-justify it"});
      }
    }
  }
}

}  // namespace scrubber::lint
