// scrubber-loadgen — open-loop sFlow wire load generator for ixpd --listen.
//
//   scrubber-loadgen --port 6343 [--host 127.0.0.1] [--profile us2]
//                    [--minutes 120] [--seed 7] [--sampling 10]
//                    [--rate 0] [--schedule-seed 1] [--fin 3]
//                    [--gen-threads N]
//
// Replays the seeded flowgen trace as sFlow v5 wire datagrams over UDP.
// The trace (--profile/--minutes/--seed/--sampling) must match the
// receiving daemon's flags: ixpd --listen draws the BGP schedule from the
// same seed, which is what makes wire-path verdicts identical to an
// in-process run. --rate paces sends open-loop — exponential inter-arrival
// times drawn up front from --schedule-seed, deadlines never rescheduled —
// so offered load stays fixed no matter how the receiver keeps up
// (DESIGN.md §11 on why closed-loop load generation lies about latency).
// --rate 0 sends as fast as the socket accepts. After the data, the FIN
// sentinel (carrying the datagram total) is sent --fin times.

#include <cstdio>
#include <cstring>
#include <map>
#include <stdexcept>
#include <string>
#include <thread>

#include "core/collector.hpp"
#include "flowgen/generator.hpp"
#include "netio/loadgen.hpp"

namespace {

using namespace scrubber;

/// Minimal --key value argument parser (same shape as ixpd's).
class Args {
 public:
  Args(int argc, char** argv, int first) {
    for (int i = first; i + 1 < argc; i += 2) {
      if (std::strncmp(argv[i], "--", 2) != 0) {
        throw std::runtime_error(std::string("expected --option, got ") +
                                 argv[i]);
      }
      values_[argv[i] + 2] = argv[i + 1];
    }
    if ((argc - first) % 2 != 0) {
      throw std::runtime_error("dangling option without a value");
    }
  }

  [[nodiscard]] std::string get(const std::string& key,
                                const std::string& fallback) const {
    const auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }
  [[nodiscard]] std::uint64_t number(const std::string& key,
                                     std::uint64_t fallback) const {
    const auto it = values_.find(key);
    return it == values_.end() ? fallback : std::stoull(it->second);
  }
  [[nodiscard]] double real(const std::string& key, double fallback) const {
    const auto it = values_.find(key);
    return it == values_.end() ? fallback : std::stod(it->second);
  }
  [[nodiscard]] bool has(const std::string& key) const {
    return values_.count(key) != 0;
  }

 private:
  std::map<std::string, std::string> values_;
};

flowgen::IxpProfile profile_by_name(const std::string& name) {
  for (const auto& profile : flowgen::all_ixp_profiles()) {
    std::string lowered = profile.name;  // "IXP-US1" -> accept "us1"
    for (auto& c : lowered) c = static_cast<char>(std::tolower(c));
    if (lowered == "ixp-" + name || lowered == name) return profile;
  }
  if (name == "sas") return flowgen::self_attack_profile();
  throw std::runtime_error("unknown profile: " + name +
                           " (use ce1/us1/se/us2/ce2/sas)");
}

int run(int argc, char** argv) {
  const Args args(argc, argv, 1);
  if (!args.has("port")) {
    throw std::runtime_error(
        "usage: scrubber-loadgen --port <port> [--host 127.0.0.1] "
        "[--profile us2] [--minutes 120] [--seed 7] [--sampling 10] "
        "[--rate dgrams/s] [--schedule-seed 1] [--fin 3] [--gen-threads N]");
  }
  const auto profile = profile_by_name(args.get("profile", "us2"));
  const std::uint32_t minutes =
      static_cast<std::uint32_t>(args.number("minutes", 120));
  const std::uint64_t seed = args.number("seed", 7);
  const auto sampling = static_cast<std::uint32_t>(args.number("sampling", 10));
  const auto gen_threads = static_cast<unsigned>(args.number(
      "gen-threads", std::max(1U, std::thread::hardware_concurrency())));

  netio::LoadGenConfig config;
  config.host = args.get("host", "127.0.0.1");
  config.port = static_cast<std::uint16_t>(args.number("port", 0));
  config.rate = args.real("rate", 0.0);
  config.seed = args.number("schedule-seed", 1);
  config.fin_repeats = static_cast<unsigned>(args.number("fin", 3));
  config.record_stamps = false;  // CLI replays; stamps are for bench joins

  // Wire-encode the whole trace up front so the send loop measures the
  // network and the pacing, not the generator.
  const net::Ipv4Address agent = net::Ipv4Address::from_octets(10, 99, 0, 1);
  std::vector<std::vector<std::uint8_t>> wire;
  std::vector<std::uint32_t> wire_minutes;
  flowgen::TrafficGenerator generator(profile, seed);
  generator.generate_stream(
      0, minutes, flowgen::TrafficGenerator::Labeling::kBlackholeRegistry,
      [&](std::uint32_t minute, std::span<const net::FlowRecord> flows) {
        for (const auto& datagram :
             core::flows_to_datagrams(flows, sampling, agent)) {
          wire.push_back(datagram.encode());
          wire_minutes.push_back(minute);
        }
      },
      gen_threads);

  std::printf("scrubber-loadgen: profile=%s minutes=%u datagrams=%zu "
              "target=%s:%u rate=%.0f/s schedule-seed=%llu seed=%llu\n",
              profile.name.c_str(), minutes, wire.size(),
              config.host.c_str(), config.port, config.rate,
              static_cast<unsigned long long>(config.seed),
              static_cast<unsigned long long>(seed));
  std::fflush(stdout);

  netio::LoadGenerator loadgen(config, std::move(wire),
                               std::move(wire_minutes));
  const netio::LoadGenSummary summary = loadgen.run();
  std::printf("sent=%llu bytes=%llu wall=%.3fs achieved=%.0f/s "
              "target=%.0f/s behind=%llu\n",
              static_cast<unsigned long long>(summary.sent),
              static_cast<unsigned long long>(summary.bytes),
              summary.wall_seconds, summary.achieved_rate,
              summary.target_rate,
              static_cast<unsigned long long>(summary.behind));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& error) {
    std::fprintf(stderr, "scrubber-loadgen: %s\n", error.what());
    return 1;
  }
}
