// scrubberctl — file-based command-line workflow around the library.
//
//   scrubberctl generate --profile us1 --minutes 1440 --out flows.bin
//   scrubberctl balance  --in raw.bin --out flows.bin
//   scrubberctl mine     --flows flows.bin --accept 0.9 --out rules.json
//   scrubberctl train    --flows flows.bin --rules rules.json --model xgb
//                        --out model.json
//   scrubberctl classify --flows flows.bin --model model.json
//                        [--rules rules.json] [--explain 3]
//   scrubberctl acl      --rules rules.json
//
// Flow files use the library's binary format (net::write_flows); rules and
// models are the JSON interchange formats of arm::RuleSet / ml::model_io.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>

#include "core/balancer.hpp"
#include "core/acl.hpp"
#include "core/explain.hpp"
#include "core/scrubber.hpp"
#include "flowgen/generator.hpp"
#include "ml/model_io.hpp"

namespace {

using namespace scrubber;

/// Minimal --key value argument parser.
class Args {
 public:
  Args(int argc, char** argv, int first) {
    for (int i = first; i + 1 < argc; i += 2) {
      if (std::strncmp(argv[i], "--", 2) != 0) {
        throw std::runtime_error(std::string("expected --option, got ") + argv[i]);
      }
      values_[argv[i] + 2] = argv[i + 1];
    }
    if ((argc - first) % 2 != 0) {
      throw std::runtime_error("dangling option without a value");
    }
  }

  [[nodiscard]] std::string get(const std::string& key,
                                const std::string& fallback = "") const {
    const auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }
  [[nodiscard]] std::string require(const std::string& key) const {
    const auto it = values_.find(key);
    if (it == values_.end()) throw std::runtime_error("missing --" + key);
    return it->second;
  }
  [[nodiscard]] double number(const std::string& key, double fallback) const {
    const auto it = values_.find(key);
    return it == values_.end() ? fallback : std::stod(it->second);
  }

 private:
  std::map<std::string, std::string> values_;
};

flowgen::IxpProfile profile_by_name(const std::string& name) {
  for (const auto& profile : flowgen::all_ixp_profiles()) {
    std::string lowered = profile.name;  // "IXP-US1" -> accept "us1"
    for (auto& c : lowered) c = static_cast<char>(std::tolower(c));
    if (lowered == "ixp-" + name || lowered == name) return profile;
  }
  if (name == "sas") return flowgen::self_attack_profile();
  throw std::runtime_error("unknown profile: " + name +
                           " (use ce1/us1/se/us2/ce2/sas)");
}

std::vector<net::FlowRecord> read_flow_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open " + path);
  return net::read_flows(in);
}

void write_flow_file(const std::string& path,
                     const std::vector<net::FlowRecord>& flows) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("cannot open " + path + " for writing");
  net::write_flows(out, flows);
}

std::string read_text_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open " + path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

void write_text_file(const std::string& path, const std::string& text) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open " + path + " for writing");
  out << text;
}

ml::ModelKind model_by_name(const std::string& name) {
  for (const ml::ModelKind kind : ml::all_model_kinds()) {
    std::string lowered(ml::model_kind_name(kind));
    for (auto& c : lowered) c = static_cast<char>(std::tolower(c));
    if (lowered == name) return kind;
  }
  throw std::runtime_error("unknown model: " + name +
                           " (use xgb/dt/nn/lsvm/nb-g/dum)");
}

// ---------------------------------------------------------------------------

int cmd_generate(const Args& args) {
  const auto profile = profile_by_name(args.get("profile", "us1"));
  const auto seed = static_cast<std::uint64_t>(args.number("seed", 42));
  const auto minutes = static_cast<std::uint32_t>(args.number("minutes", 1440));
  const auto start = static_cast<std::uint32_t>(args.number("start", 0));
  const bool balanced = args.get("balanced", "true") != "false";
  const bool ground_truth = args.get("ground-truth", "false") == "true";
  const std::string out_path = args.require("out");

  flowgen::TrafficGenerator generator(profile, seed);
  const auto labeling = ground_truth
                            ? flowgen::TrafficGenerator::Labeling::kGroundTruth
                            : flowgen::TrafficGenerator::Labeling::kBlackholeRegistry;
  std::vector<net::FlowRecord> flows;
  core::Balancer balancer(seed ^ 0xBA1A);
  generator.generate_stream(
      start, minutes, labeling,
      [&](std::uint32_t m, std::span<const net::FlowRecord> f) {
        if (balanced) {
          balancer.add_minute(m, f);
        } else {
          flows.insert(flows.end(), f.begin(), f.end());
        }
      });
  if (balanced) flows = balancer.take_balanced();
  write_flow_file(out_path, flows);
  std::printf("%s: %zu flows (%s, profile %s, %u min)\n", out_path.c_str(),
              flows.size(), balanced ? "balanced" : "raw", profile.name.c_str(),
              minutes);
  return 0;
}

int cmd_balance(const Args& args) {
  const auto flows = read_flow_file(args.require("in"));
  core::BalanceTotals totals;
  const auto balanced = core::balance_trace(
      flows, static_cast<std::uint64_t>(args.number("seed", 1)), &totals);
  write_flow_file(args.require("out"), balanced);
  std::printf("balanced %llu -> %llu flows (blackhole share %.1f%%)\n",
              static_cast<unsigned long long>(totals.raw_flows),
              static_cast<unsigned long long>(totals.balanced_flows),
              totals.blackhole_share() * 100.0);
  return 0;
}

int cmd_mine(const Args& args) {
  const auto flows = read_flow_file(args.require("flows"));
  core::ScrubberConfig config;
  config.mining.min_confidence = args.number("min-confidence", 0.8);
  config.mining.min_support = args.number("min-support", 0.002);
  core::IxpScrubber scrubber(config);
  std::array<std::size_t, 3> counts{};
  auto rules = scrubber.mine_tagging_rules(flows, &counts);
  const double accept = args.number("accept", 0.0);
  if (accept > 0.0) {
    const auto accepted = core::accept_rules_above(
        rules, accept, 0.0, static_cast<std::size_t>(args.number("min-items", 0)));
    std::printf("auto-accepted %zu rules at confidence >= %.2f\n", accepted,
                accept);
  }
  write_text_file(args.require("out"), rules.to_json().dump(2) + "\n");
  std::printf("mined %zu -> blackhole %zu -> minimized %zu rules -> %s\n",
              counts[0], counts[1], counts[2], args.require("out").c_str());
  return 0;
}

int cmd_train(const Args& args) {
  const auto flows = read_flow_file(args.require("flows"));
  core::ScrubberConfig config;
  config.model = model_by_name(args.get("model", "xgb"));
  core::IxpScrubber scrubber(config);
  if (const std::string rules_path = args.get("rules"); !rules_path.empty()) {
    scrubber.set_rules(
        arm::RuleSet::from_json(util::Json::parse(read_text_file(rules_path))));
  }
  const auto dataset = scrubber.aggregate(flows);
  scrubber.train(dataset);
  const auto cm = scrubber.evaluate(dataset);
  std::printf("trained %s on %zu records (train-set %s)\n",
              scrubber.pipeline().describe().c_str(), dataset.size(),
              cm.summary().c_str());
  write_text_file(
      args.require("out"),
      ml::pipeline_to_json(scrubber.pipeline(), dataset.data.n_cols()).dump() +
          "\n");
  std::printf("model -> %s\n", args.require("out").c_str());
  return 0;
}

int cmd_classify(const Args& args) {
  const auto flows = read_flow_file(args.require("flows"));
  core::IxpScrubber scrubber;
  if (const std::string rules_path = args.get("rules"); !rules_path.empty()) {
    scrubber.set_rules(
        arm::RuleSet::from_json(util::Json::parse(read_text_file(rules_path))));
  }
  ml::Pipeline pipeline = ml::pipeline_from_json(
      util::Json::parse(read_text_file(args.require("model"))));
  const auto dataset = scrubber.aggregate(flows);
  const auto predictions = pipeline.predict_all(dataset.data);
  const auto cm = ml::evaluate(dataset.data.labels(), predictions);
  std::printf("%zu records: %s\n", dataset.size(), cm.summary().c_str());

  // Optional: locally explain the first N positive classifications.
  const auto explain_n = static_cast<std::size_t>(args.number("explain", 0));
  if (explain_n > 0) {
    // Reuse the loaded pipeline inside the scrubber for explanation.
    scrubber.pipeline() = std::move(pipeline);
    std::size_t shown = 0;
    for (std::size_t i = 0; i < dataset.size() && shown < explain_n; ++i) {
      if (predictions[i] != 1) continue;
      ++shown;
      std::fputs(core::explain(scrubber, dataset, i, 6).to_string().c_str(),
                 stdout);
    }
  }
  return 0;
}

int cmd_acl(const Args& args) {
  const auto rules =
      arm::RuleSet::from_json(util::Json::parse(read_text_file(args.require("rules"))));
  std::fputs(core::generate_acl(rules).c_str(), stdout);
  return 0;
}

int usage() {
  std::fputs(
      "usage: scrubberctl <generate|balance|mine|train|classify|acl> [--opt value]...\n"
      "  generate --out F [--profile us1] [--seed 42] [--minutes 1440]\n"
      "           [--start 0] [--balanced true|false] [--ground-truth true]\n"
      "  balance  --in F --out F [--seed 1]\n"
      "  mine     --flows F --out rules.json [--min-confidence 0.8]\n"
      "           [--min-support 0.002] [--accept 0.9] [--min-items 3]\n"
      "  train    --flows F --out model.json [--model xgb] [--rules rules.json]\n"
      "  classify --flows F --model model.json [--rules rules.json] [--explain N]\n"
      "  acl      --rules rules.json\n",
      stderr);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];
  try {
    const Args args(argc, argv, 2);
    if (command == "generate") return cmd_generate(args);
    if (command == "balance") return cmd_balance(args);
    if (command == "mine") return cmd_mine(args);
    if (command == "train") return cmd_train(args);
    if (command == "classify") return cmd_classify(args);
    if (command == "acl") return cmd_acl(args);
    return usage();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "scrubberctl %s: %s\n", command.c_str(), e.what());
    return 1;
  }
}
