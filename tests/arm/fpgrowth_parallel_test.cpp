// Thread-count bit-identity of parallel FP-Growth: frequent itemsets and
// mined rules must come out exactly identical — same sets, same order,
// same support/confidence bits — for any training-pool thread count
// (DESIGN.md §9). Run under TSan to prove the shared-tree traversal
// race-free.

#include "arm/fpgrowth.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace scrubber::arm {
namespace {

const unsigned kThreadCounts[] = {2, 3, 8};

/// Random transactions over a small item universe with skewed item
/// popularity — deep enough trees that the per-item fan-out matters.
std::vector<Transaction> random_transactions(std::size_t n,
                                             std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<Transaction> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    Transaction tx;
    for (std::uint32_t item = 0; item < 12; ++item) {
      // Popularity falls with the item id; item 0 is near-ubiquitous.
      if (rng.chance(0.9 / (1.0 + 0.4 * item))) {
        tx.push_back(Item(Attribute::kDstPort, item));
      }
    }
    if (tx.empty()) tx.push_back(Item(Attribute::kDstPort, 0));
    std::sort(tx.begin(), tx.end());
    out.push_back(std::move(tx));
  }
  return out;
}

TEST(FpGrowthParallel, ItemsetsIdenticalForAnyThreadCount) {
  const auto transactions = random_transactions(500, 31);
  FpGrowthParams params;
  params.min_support = 0.05;

  util::set_training_threads(1);
  const auto reference = mine_frequent_itemsets(transactions, params);
  ASSERT_FALSE(reference.empty());

  for (const unsigned threads : kThreadCounts) {
    util::set_training_threads(threads);
    const auto itemsets = mine_frequent_itemsets(transactions, params);
    EXPECT_EQ(itemsets, reference) << "thread count " << threads;
  }
  util::set_training_threads(0);
}

TEST(FpGrowthParallel, RulesIdenticalForAnyThreadCount) {
  const auto transactions = random_transactions(800, 32);
  FpGrowthParams params;
  params.min_support = 0.04;
  params.min_confidence = 0.6;

  util::set_training_threads(1);
  const auto reference = mine_rules(transactions, params);
  ASSERT_FALSE(reference.empty());

  for (const unsigned threads : kThreadCounts) {
    util::set_training_threads(threads);
    const auto rules = mine_rules(transactions, params);
    EXPECT_EQ(rules, reference) << "thread count " << threads;
  }
  util::set_training_threads(0);
}

}  // namespace
}  // namespace scrubber::arm
