#include "arm/rules.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace scrubber::arm {
namespace {

Item item(Attribute a, int v) { return Item(a, static_cast<std::uint32_t>(v)); }

MinedRule make_rule(std::vector<Item> antecedent, double confidence,
                    double support) {
  std::sort(antecedent.begin(), antecedent.end());
  MinedRule rule;
  rule.antecedent = std::move(antecedent);
  rule.consequent = kBlackholeItem;
  rule.confidence = confidence;
  rule.support = support;
  return rule;
}

net::FlowRecord ntp_flow() {
  net::FlowRecord f;
  f.protocol = 17;
  f.src_port = 123;
  f.dst_port = 44321;
  f.packets = 2;
  f.bytes = 936;
  return f;
}

TEST(RuleId, StableAndDistinct) {
  const auto a = rule_id({item(Attribute::kSrcPort, 123)});
  const auto b = rule_id({item(Attribute::kSrcPort, 123)});
  const auto c = rule_id({item(Attribute::kSrcPort, 53)});
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(a.size(), 8u);  // 8 hex chars, as in the paper's UI
}

TEST(KeepBlackholeConsequent, FiltersOtherConsequents) {
  std::vector<MinedRule> rules;
  rules.push_back(make_rule({item(Attribute::kSrcPort, 123)}, 0.9, 0.1));
  MinedRule other = make_rule({item(Attribute::kProtocol, 17)}, 0.9, 0.1);
  other.consequent = item(Attribute::kSrcPort, 123);  // not {blackhole}
  rules.push_back(other);
  const auto kept = keep_blackhole_consequent(std::move(rules));
  ASSERT_EQ(kept.size(), 1u);
  EXPECT_EQ(kept[0].consequent, kBlackholeItem);
}

TEST(MinimizeRules, RemovesGeneralRuleWithinLoss) {
  // A_i = {proto} subset of A_j = {proto, port}; nearly equal metrics.
  std::vector<MinedRule> rules;
  rules.push_back(make_rule({item(Attribute::kProtocol, 17)}, 0.90, 0.100));
  rules.push_back(make_rule(
      {item(Attribute::kProtocol, 17), item(Attribute::kSrcPort, 123)}, 0.895,
      0.095));
  const auto minimized = minimize_rules(std::move(rules), 0.01, 0.01);
  ASSERT_EQ(minimized.size(), 1u);
  EXPECT_EQ(minimized[0].antecedent.size(), 2u);  // the specific rule survives
}

TEST(MinimizeRules, KeepsRuleWhenLossTooHigh) {
  std::vector<MinedRule> rules;
  // The general rule has much higher confidence: removing it would lose
  // more than L_c, so both stay.
  rules.push_back(make_rule({item(Attribute::kProtocol, 17)}, 0.99, 0.100));
  rules.push_back(make_rule(
      {item(Attribute::kProtocol, 17), item(Attribute::kSrcPort, 123)}, 0.90,
      0.095));
  const auto minimized = minimize_rules(std::move(rules), 0.01, 0.01);
  EXPECT_EQ(minimized.size(), 2u);
}

TEST(MinimizeRules, SupportLossAloneBlocksRemoval) {
  std::vector<MinedRule> rules;
  rules.push_back(make_rule({item(Attribute::kProtocol, 17)}, 0.90, 0.500));
  rules.push_back(make_rule(
      {item(Attribute::kProtocol, 17), item(Attribute::kSrcPort, 123)}, 0.90,
      0.010));
  const auto minimized = minimize_rules(std::move(rules), 0.01, 0.01);
  EXPECT_EQ(minimized.size(), 2u);
}

TEST(MinimizeRules, ChainCollapsesTransitively) {
  // {a} < {a,b} < {a,b,c} with near-identical metrics: only the most
  // specific should remain after iterating to a fixpoint.
  std::vector<MinedRule> rules;
  rules.push_back(make_rule({item(Attribute::kProtocol, 17)}, 0.900, 0.10));
  rules.push_back(make_rule(
      {item(Attribute::kProtocol, 17), item(Attribute::kSrcPort, 123)}, 0.899,
      0.099));
  rules.push_back(make_rule({item(Attribute::kProtocol, 17),
                             item(Attribute::kSrcPort, 123),
                             item(Attribute::kPacketSize, 4)},
                            0.898, 0.098));
  const auto minimized = minimize_rules(std::move(rules), 0.01, 0.01);
  ASSERT_EQ(minimized.size(), 1u);
  EXPECT_EQ(minimized[0].antecedent.size(), 3u);
}

TEST(MinimizeRules, UnrelatedRulesUntouched) {
  std::vector<MinedRule> rules;
  rules.push_back(make_rule({item(Attribute::kSrcPort, 123)}, 0.9, 0.1));
  rules.push_back(make_rule({item(Attribute::kSrcPort, 53)}, 0.9, 0.1));
  const auto minimized = minimize_rules(std::move(rules), 0.01, 0.01);
  EXPECT_EQ(minimized.size(), 2u);
}

TEST(MinimizeRules, ZeroLossRemovesStrictlyRedundantOnly) {
  std::vector<MinedRule> rules;
  // Specific rule strictly better: general one removed even at L = 0+eps.
  rules.push_back(make_rule({item(Attribute::kProtocol, 17)}, 0.90, 0.10));
  rules.push_back(make_rule(
      {item(Attribute::kProtocol, 17), item(Attribute::kSrcPort, 123)}, 0.95,
      0.12));
  const auto minimized = minimize_rules(std::move(rules), 1e-9, 1e-9);
  ASSERT_EQ(minimized.size(), 1u);
}

TEST(TaggingRule, MatchesSubsetsOfHeaderItems) {
  const Itemizer itemizer;
  TaggingRule rule;
  rule.rule = make_rule(
      {item(Attribute::kProtocol, 17), item(Attribute::kSrcPort, 123)}, 0.9, 0.1);
  EXPECT_TRUE(rule.matches(itemizer.itemize_header(ntp_flow())));
  net::FlowRecord dns = ntp_flow();
  dns.src_port = 53;
  EXPECT_FALSE(rule.matches(itemizer.itemize_header(dns)));
}

TEST(TaggingRule, AntecedentString) {
  TaggingRule rule;
  rule.rule = make_rule(
      {item(Attribute::kProtocol, 17), item(Attribute::kSrcPort, 123)}, 0.9, 0.1);
  const std::string s = rule.antecedent_string();
  EXPECT_NE(s.find("protocol=17"), std::string::npos);
  EXPECT_NE(s.find("port_src=123"), std::string::npos);
}

TEST(RuleSet, FromMinedStartsInStaging) {
  const std::vector<MinedRule> mined{
      make_rule({item(Attribute::kSrcPort, 123)}, 0.9, 0.1)};
  const RuleSet set = RuleSet::from_mined(mined);
  ASSERT_EQ(set.size(), 1u);
  EXPECT_EQ(set.rules()[0].status, RuleStatus::kStaging);
  EXPECT_FALSE(set.rules()[0].id.empty());
}

TEST(RuleSet, AddRejectsDuplicateIds) {
  RuleSet set;
  TaggingRule rule;
  rule.id = "deadbeef";
  rule.rule = make_rule({item(Attribute::kSrcPort, 123)}, 0.9, 0.1);
  EXPECT_TRUE(set.add(rule));
  EXPECT_FALSE(set.add(rule));
  EXPECT_EQ(set.size(), 1u);
}

TEST(RuleSet, MergeKeepsExistingCuration) {
  RuleSet curated;
  TaggingRule rule;
  rule.id = rule_id({item(Attribute::kSrcPort, 123)});
  rule.rule = make_rule({item(Attribute::kSrcPort, 123)}, 0.9, 0.1);
  rule.status = RuleStatus::kAccepted;
  rule.note = "NTP reflection";
  curated.add(rule);

  // Fresh mining produced the same rule (staging) plus a new one.
  RuleSet fresh = RuleSet::from_mined(
      {make_rule({item(Attribute::kSrcPort, 123)}, 0.91, 0.11),
       make_rule({item(Attribute::kSrcPort, 53)}, 0.95, 0.2)});
  const std::size_t added = curated.merge(fresh);
  EXPECT_EQ(added, 1u);
  EXPECT_EQ(curated.size(), 2u);
  EXPECT_EQ(curated.rules()[0].status, RuleStatus::kAccepted);  // kept
  EXPECT_EQ(curated.rules()[0].note, "NTP reflection");
}

TEST(RuleSet, SetStatusById) {
  RuleSet set = RuleSet::from_mined(
      {make_rule({item(Attribute::kSrcPort, 123)}, 0.9, 0.1)});
  const std::string id = set.rules()[0].id;
  EXPECT_TRUE(set.set_status(id, RuleStatus::kAccepted));
  EXPECT_EQ(set.rules()[0].status, RuleStatus::kAccepted);
  EXPECT_FALSE(set.set_status("ffffffff", RuleStatus::kDeclined));
}

TEST(RuleSet, MatchingAcceptedOnly) {
  const Itemizer itemizer;
  RuleSet set = RuleSet::from_mined(
      {make_rule({item(Attribute::kSrcPort, 123)}, 0.9, 0.1),
       make_rule({item(Attribute::kProtocol, 17)}, 0.85, 0.3)});
  // Nothing accepted yet.
  EXPECT_TRUE(set.matching_accepted(ntp_flow(), itemizer).empty());
  EXPECT_FALSE(set.any_accepted_match(ntp_flow(), itemizer));
  set.rules()[0].status = RuleStatus::kAccepted;
  const auto tags = set.matching_accepted(ntp_flow(), itemizer);
  ASSERT_EQ(tags.size(), 1u);
  EXPECT_EQ(tags[0], 0u);
  EXPECT_TRUE(set.any_accepted_match(ntp_flow(), itemizer));
}

TEST(RuleSet, JsonRoundTrip) {
  RuleSet set = RuleSet::from_mined(
      {make_rule({item(Attribute::kProtocol, 17), item(Attribute::kSrcPort, 123),
                  item(Attribute::kPacketSize, 4),
                  item(Attribute::kDstPortOther, 0)},
                 0.97601, 0.02598)});
  set.rules()[0].status = RuleStatus::kAccepted;
  set.rules()[0].note = "NTP reflection with typical size";

  const std::string text = set.to_json().dump(2);
  const RuleSet restored = RuleSet::from_json(util::Json::parse(text));
  ASSERT_EQ(restored.size(), 1u);
  const TaggingRule& rule = restored.rules()[0];
  EXPECT_EQ(rule.id, set.rules()[0].id);
  EXPECT_EQ(rule.rule.antecedent, set.rules()[0].rule.antecedent);
  EXPECT_EQ(rule.status, RuleStatus::kAccepted);
  EXPECT_EQ(rule.note, "NTP reflection with typical size");
  EXPECT_NEAR(rule.rule.confidence, 0.97601, 1e-9);
}

TEST(RuleSet, JsonRejectsUnknownStatus) {
  const std::string text = R"([{"id":"x","antecedent":["protocol=17"],
    "consequent":"blackhole","confidence":0.9,"antecedent_support":0.1,
    "rule_status":"bogus","notes":""}])";
  EXPECT_THROW(RuleSet::from_json(util::Json::parse(text)), util::JsonError);
}

TEST(RuleStatusNames, RoundTrip) {
  for (const RuleStatus status :
       {RuleStatus::kStaging, RuleStatus::kAccepted, RuleStatus::kDeclined}) {
    EXPECT_EQ(rule_status_from(rule_status_name(status)), status);
  }
  EXPECT_FALSE(rule_status_from("nope").has_value());
}

}  // namespace
}  // namespace scrubber::arm
