#include "arm/fpgrowth.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "util/rng.hpp"

namespace scrubber::arm {
namespace {

Item item(int v) { return Item(Attribute::kDstPort, static_cast<std::uint32_t>(v)); }

Transaction tx(std::initializer_list<int> values) {
  Transaction t;
  for (const int v : values) t.push_back(item(v));
  std::sort(t.begin(), t.end());
  return t;
}

/// Brute-force support count of an itemset in transactions.
std::uint64_t count_support(const std::vector<Transaction>& transactions,
                            const std::vector<Item>& itemset) {
  std::uint64_t count = 0;
  for (const auto& t : transactions) {
    if (std::includes(t.begin(), t.end(), itemset.begin(), itemset.end())) ++count;
  }
  return count;
}

TEST(FpGrowth, ClassicExample) {
  // Textbook dataset: {1,2}, {2,3}, {1,2,3}, {1,2}.
  const std::vector<Transaction> transactions{tx({1, 2}), tx({2, 3}),
                                              tx({1, 2, 3}), tx({1, 2})};
  FpGrowthParams params;
  params.min_support = 0.5;  // count >= 2
  const auto itemsets = mine_frequent_itemsets(transactions, params);

  std::map<std::vector<Item>, std::uint64_t> by_set;
  for (const auto& fi : itemsets) by_set[fi.items] = fi.count;

  EXPECT_EQ(by_set[{item(1)}], 3u);
  EXPECT_EQ(by_set[{item(2)}], 4u);
  EXPECT_EQ(by_set[{item(3)}], 2u);
  EXPECT_EQ(by_set[(tx({1, 2}))], 3u);
  EXPECT_EQ(by_set[(tx({2, 3}))], 2u);
  // {1,3} has support 1 < 2 and must be absent.
  EXPECT_EQ(by_set.count(tx({1, 3})), 0u);
  // {1,2,3} has support 1 and must be absent.
  EXPECT_EQ(by_set.count(tx({1, 2, 3})), 0u);
}

TEST(FpGrowth, CountsMatchBruteForce) {
  // Property: every mined itemset's count equals a brute-force recount,
  // and all itemsets meet the support threshold.
  util::Rng rng(5);
  std::vector<Transaction> transactions;
  for (int i = 0; i < 400; ++i) {
    Transaction t;
    for (int v = 0; v < 8; ++v) {
      if (rng.chance(0.3)) t.push_back(item(v));
    }
    std::sort(t.begin(), t.end());
    if (!t.empty()) transactions.push_back(std::move(t));
  }
  FpGrowthParams params;
  params.min_support = 0.05;
  const auto itemsets = mine_frequent_itemsets(transactions, params);
  ASSERT_FALSE(itemsets.empty());
  const auto threshold = static_cast<std::uint64_t>(
      params.min_support * static_cast<double>(transactions.size()));
  for (const auto& fi : itemsets) {
    EXPECT_EQ(fi.count, count_support(transactions, fi.items));
    EXPECT_GE(fi.count, threshold);
  }
  // No duplicates.
  std::set<std::vector<Item>> unique;
  for (const auto& fi : itemsets) unique.insert(fi.items);
  EXPECT_EQ(unique.size(), itemsets.size());
}

TEST(FpGrowth, FindsAllFrequentItemsetsExhaustively) {
  // Compare against exhaustive enumeration over a small item alphabet.
  util::Rng rng(7);
  std::vector<Transaction> transactions;
  for (int i = 0; i < 200; ++i) {
    Transaction t;
    for (int v = 0; v < 5; ++v) {
      if (rng.chance(0.4)) t.push_back(item(v));
    }
    std::sort(t.begin(), t.end());
    transactions.push_back(std::move(t));
  }
  FpGrowthParams params;
  params.min_support = 0.1;
  const auto itemsets = mine_frequent_itemsets(transactions, params);
  std::set<std::vector<Item>> mined;
  for (const auto& fi : itemsets) mined.insert(fi.items);

  const auto threshold = static_cast<std::uint64_t>(
      params.min_support * static_cast<double>(transactions.size()));
  for (int mask = 1; mask < 32; ++mask) {
    std::vector<Item> candidate;
    for (int v = 0; v < 5; ++v) {
      if (mask & (1 << v)) candidate.push_back(item(v));
    }
    std::sort(candidate.begin(), candidate.end());
    const bool frequent = count_support(transactions, candidate) >= threshold;
    EXPECT_EQ(mined.count(candidate) > 0, frequent)
        << "itemset mask " << mask;
  }
}

TEST(FpGrowth, MaxItemsetSizeCaps) {
  std::vector<Transaction> transactions(10, tx({1, 2, 3, 4}));
  FpGrowthParams params;
  params.min_support = 0.5;
  params.max_itemset_size = 2;
  const auto itemsets = mine_frequent_itemsets(transactions, params);
  for (const auto& fi : itemsets) EXPECT_LE(fi.items.size(), 2u);
}

TEST(FpGrowth, EmptyInput) {
  FpGrowthParams params;
  EXPECT_TRUE(mine_frequent_itemsets({}, params).empty());
  EXPECT_TRUE(mine_rules({}, params).empty());
}

TEST(RuleGeneration, ConfidenceAndSupport) {
  // 10 transactions: 8 x {1,2}, 2 x {1}. Rule 1->2: conf 0.8, support(A)=1.
  std::vector<Transaction> transactions;
  for (int i = 0; i < 8; ++i) transactions.push_back(tx({1, 2}));
  for (int i = 0; i < 2; ++i) transactions.push_back(tx({1}));
  FpGrowthParams params;
  params.min_support = 0.1;
  params.min_confidence = 0.75;
  const auto rules = mine_rules(transactions, params);
  const MinedRule* found = nullptr;
  for (const auto& rule : rules) {
    if (rule.antecedent == std::vector<Item>{item(1)} && rule.consequent == item(2))
      found = &rule;
  }
  ASSERT_NE(found, nullptr);
  EXPECT_NEAR(found->confidence, 0.8, 1e-12);
  EXPECT_NEAR(found->support, 1.0, 1e-12);  // antecedent {1} in all 10
}

TEST(RuleGeneration, MinConfidenceFilters) {
  std::vector<Transaction> transactions;
  for (int i = 0; i < 6; ++i) transactions.push_back(tx({1, 2}));
  for (int i = 0; i < 4; ++i) transactions.push_back(tx({1}));
  FpGrowthParams params;
  params.min_support = 0.1;
  params.min_confidence = 0.7;  // conf(1->2) = 0.6 < 0.7
  const auto rules = mine_rules(transactions, params);
  for (const auto& rule : rules) {
    EXPECT_GE(rule.confidence, 0.7);
  }
}

TEST(RuleGeneration, ReverseRuleHasOwnMetrics) {
  // conf(2->1) = 1.0 even when conf(1->2) = 0.6.
  std::vector<Transaction> transactions;
  for (int i = 0; i < 6; ++i) transactions.push_back(tx({1, 2}));
  for (int i = 0; i < 4; ++i) transactions.push_back(tx({1}));
  FpGrowthParams params;
  params.min_support = 0.1;
  params.min_confidence = 0.9;
  const auto rules = mine_rules(transactions, params);
  ASSERT_EQ(rules.size(), 1u);
  EXPECT_EQ(rules[0].antecedent, std::vector<Item>{item(2)});
  EXPECT_EQ(rules[0].consequent, item(1));
  EXPECT_NEAR(rules[0].confidence, 1.0, 1e-12);
  EXPECT_NEAR(rules[0].support, 0.6, 1e-12);
}

}  // namespace
}  // namespace scrubber::arm
