#include "arm/item.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace scrubber::arm {
namespace {

net::FlowRecord ntp_flow() {
  net::FlowRecord f;
  f.protocol = 17;
  f.src_port = 123;
  f.dst_port = 44321;  // ephemeral
  f.packets = 2;
  f.bytes = 936;  // mean 468 -> bucket (400,500]
  return f;
}

TEST(Item, PackingRoundTrip) {
  const Item item(Attribute::kSrcPort, 123);
  EXPECT_EQ(item.attribute(), Attribute::kSrcPort);
  EXPECT_EQ(item.value(), 123u);
  const Item copy(Attribute::kSrcPort, 123);
  EXPECT_EQ(item, copy);
  EXPECT_NE(item, Item(Attribute::kDstPort, 123));
  EXPECT_NE(item, Item(Attribute::kSrcPort, 124));
}

TEST(Item, ToStringForms) {
  EXPECT_EQ(Item(Attribute::kProtocol, 17).to_string(), "protocol=17");
  EXPECT_EQ(Item(Attribute::kSrcPort, 123).to_string(), "port_src=123");
  EXPECT_EQ(Item(Attribute::kPacketSize, 4).to_string(), "packet_size=(400,500]");
  EXPECT_EQ(Item(Attribute::kFragment, 1).to_string(), "fragment=1");
  EXPECT_EQ(kBlackholeItem.to_string(), "blackhole");
  // Complement items render the paper's "~{...}" notation.
  const std::string other = Item(Attribute::kDstPortOther, 0).to_string();
  EXPECT_EQ(other.rfind("port_dst=~{", 0), 0u);
  EXPECT_NE(other.find("123"), std::string::npos);
}

TEST(Itemizer, KnownPortsExact) {
  EXPECT_TRUE(Itemizer::is_known_port(17, 123));
  EXPECT_TRUE(Itemizer::is_known_port(6, 443));
  EXPECT_FALSE(Itemizer::is_known_port(17, 44321));
}

TEST(Itemizer, NtpFlowItems) {
  const Itemizer itemizer;
  const Transaction items = itemizer.itemize_header(ntp_flow());
  EXPECT_TRUE(std::is_sorted(items.begin(), items.end()));
  const auto has = [&](Item item) {
    return std::binary_search(items.begin(), items.end(), item);
  };
  EXPECT_TRUE(has(Item(Attribute::kProtocol, 17)));
  EXPECT_TRUE(has(Item(Attribute::kSrcPort, 123)));
  EXPECT_TRUE(has(Item(Attribute::kDstPortOther, 0)));  // ephemeral dst
  EXPECT_TRUE(has(Item(Attribute::kPacketSize, 4)));    // 468 B -> (400,500]
  EXPECT_FALSE(has(kBlackholeItem));
}

TEST(Itemizer, BlackholedFlowGetsLabelItem) {
  const Itemizer itemizer;
  net::FlowRecord flow = ntp_flow();
  flow.blackholed = true;
  const Transaction items = itemizer.itemize(flow);
  EXPECT_TRUE(std::binary_search(items.begin(), items.end(), kBlackholeItem));
  EXPECT_TRUE(std::is_sorted(items.begin(), items.end()));
}

TEST(Itemizer, FragmentFlow) {
  const Itemizer itemizer;
  net::FlowRecord flow;
  flow.protocol = 17;
  flow.src_port = 0;
  flow.dst_port = 0;
  flow.packets = 1;
  flow.bytes = 1400;
  const Transaction items = itemizer.itemize_header(flow);
  const auto has = [&](Item item) {
    return std::binary_search(items.begin(), items.end(), item);
  };
  EXPECT_TRUE(has(Item(Attribute::kFragment, 1)));
  // Fragments carry no L4 ports, so no port items at all.
  for (const Item item : items) {
    EXPECT_NE(item.attribute(), Attribute::kSrcPort);
    EXPECT_NE(item.attribute(), Attribute::kSrcPortOther);
    EXPECT_NE(item.attribute(), Attribute::kDstPort);
    EXPECT_NE(item.attribute(), Attribute::kDstPortOther);
  }
}

TEST(Itemizer, PacketSizeBuckets) {
  const Itemizer itemizer;
  net::FlowRecord flow = ntp_flow();
  flow.packets = 1;
  flow.bytes = 100;  // exactly on boundary -> bucket (0,100]
  auto items = itemizer.itemize_header(flow);
  EXPECT_TRUE(std::binary_search(items.begin(), items.end(),
                                 Item(Attribute::kPacketSize, 0)));
  flow.bytes = 101;  // -> (100,200]
  items = itemizer.itemize_header(flow);
  EXPECT_TRUE(std::binary_search(items.begin(), items.end(),
                                 Item(Attribute::kPacketSize, 1)));
  flow.bytes = 50000;  // clamped to top bucket
  items = itemizer.itemize_header(flow);
  EXPECT_TRUE(std::binary_search(items.begin(), items.end(),
                                 Item(Attribute::kPacketSize, 20)));
}

TEST(Itemizer, ZeroPacketFlowSafe) {
  const Itemizer itemizer;
  net::FlowRecord flow = ntp_flow();
  flow.packets = 0;
  flow.bytes = 0;
  const Transaction items = itemizer.itemize_header(flow);
  EXPECT_TRUE(std::binary_search(items.begin(), items.end(),
                                 Item(Attribute::kPacketSize, 0)));
}

}  // namespace
}  // namespace scrubber::arm
