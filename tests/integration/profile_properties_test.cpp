// Parameterized property sweep over all five IXP profiles: the invariants
// the pipeline relies on must hold at every vantage point, not just the
// ones the other tests happen to use.

#include <gtest/gtest.h>

#include <unordered_set>

#include "core/aggregator.hpp"
#include "core/balancer.hpp"
#include "flowgen/generator.hpp"

namespace scrubber {
namespace {

struct ProfileCase {
  flowgen::IxpProfile profile;
  std::uint32_t minutes;
};

class AllProfiles : public ::testing::TestWithParam<ProfileCase> {
 protected:
  static constexpr std::uint64_t kSeed = 2024;
};

TEST_P(AllProfiles, RawTraceInvariants) {
  flowgen::TrafficGenerator gen(GetParam().profile, kSeed);
  const auto trace = gen.generate(0, GetParam().minutes);
  ASSERT_FALSE(trace.flows.empty());
  for (const auto& flow : trace.flows) {
    EXPECT_GT(flow.packets, 0u);
    EXPECT_GT(flow.bytes, 0u);
    // Mean packet size within physical bounds.
    const double size = flow.mean_packet_size();
    EXPECT_GE(size, 20.0);
    EXPECT_LE(size, 1500.0 * 1.01);
    // Member ids within the profile's port count for member-space sources.
    EXPECT_LT(flow.src_member, GetParam().profile.member_count);
  }
}

TEST_P(AllProfiles, LabelsConsistentWithRegistry) {
  flowgen::TrafficGenerator gen(GetParam().profile, kSeed);
  const auto trace = gen.generate(0, GetParam().minutes);
  for (const auto& flow : trace.flows) {
    EXPECT_EQ(flow.blackholed,
              gen.registry().is_blackholed(flow.dst_ip, flow.minute));
  }
}

TEST_P(AllProfiles, BalancerInvariants) {
  flowgen::TrafficGenerator gen(GetParam().profile, kSeed);
  core::Balancer balancer(7);
  gen.generate_stream(0, GetParam().minutes,
                      flowgen::TrafficGenerator::Labeling::kBlackholeRegistry,
                      [&](std::uint32_t m, std::span<const net::FlowRecord> f) {
                        balancer.add_minute(m, f);
                      });
  const auto& totals = balancer.totals();
  // Balanced output is a subset of the input.
  EXPECT_LE(totals.balanced_flows, totals.raw_flows);
  if (totals.balanced_flows == 0) {
    GTEST_SKIP() << "no blackholed traffic in this horizon";
  }
  // Class mix within the paper's tolerance band, heavy data reduction.
  EXPECT_GE(totals.blackhole_share(), 0.40);
  EXPECT_LE(totals.blackhole_share(), 0.80);
  EXPECT_LT(totals.reduction_ratio(), 0.25);
  // Every kept blackholed flow really was in the input as blackholed.
  std::size_t bh = 0;
  for (const auto& flow : balancer.balanced()) bh += flow.blackholed;
  EXPECT_EQ(bh, totals.balanced_blackhole_flows);
}

TEST_P(AllProfiles, AggregatorInvariants) {
  flowgen::TrafficGenerator gen(GetParam().profile, kSeed);
  core::Balancer balancer(7);
  gen.generate_stream(0, GetParam().minutes,
                      flowgen::TrafficGenerator::Labeling::kBlackholeRegistry,
                      [&](std::uint32_t m, std::span<const net::FlowRecord> f) {
                        balancer.add_minute(m, f);
                      });
  const auto flows = balancer.take_balanced();
  if (flows.empty()) GTEST_SKIP() << "no balanced flows";
  const core::Aggregator aggregator;
  const auto aggregated = aggregator.aggregate(flows);

  // Every (minute, target) of the input appears exactly once.
  std::unordered_set<std::uint64_t> keys;
  for (const auto& flow : flows) {
    keys.insert((std::uint64_t{flow.minute} << 32) | flow.dst_ip.value());
  }
  EXPECT_EQ(aggregated.size(), keys.size());

  // Ranking metric columns are non-increasing across ranks.
  const auto& data = aggregated.data;
  const std::size_t c0 = data.column_index("port_src/bytes/0/val");
  const std::size_t c1 = data.column_index("port_src/bytes/1/val");
  const std::size_t c2 = data.column_index("port_src/bytes/2/val");
  for (std::size_t i = 0; i < data.n_rows(); ++i) {
    const double v0 = data.at(i, c0);
    const double v1 = data.at(i, c1);
    const double v2 = data.at(i, c2);
    if (!ml::is_missing(v1)) {
      EXPECT_GE(v0, v1);
    }
    if (!ml::is_missing(v2)) {
      EXPECT_GE(v1, v2);
    }
  }

  // Flow counts in metadata add up to the input size.
  std::uint64_t flow_total = 0;
  for (const auto& meta : aggregated.meta) flow_total += meta.flow_count;
  EXPECT_EQ(flow_total, flows.size());
}

INSTANTIATE_TEST_SUITE_P(
    Profiles, AllProfiles,
    ::testing::Values(ProfileCase{flowgen::ixp_ce1(), 4 * 60},
                      ProfileCase{flowgen::ixp_us1(), 12 * 60},
                      ProfileCase{flowgen::ixp_se(), 12 * 60},
                      ProfileCase{flowgen::ixp_us2(), 48 * 60},
                      ProfileCase{flowgen::ixp_ce2(), 72 * 60},
                      ProfileCase{flowgen::self_attack_profile(), 6 * 60}),
    [](const auto& param_info) {
      std::string name = param_info.param.profile.name;  // "IXP-US1" -> "IXP_US1"
      for (auto& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace scrubber
