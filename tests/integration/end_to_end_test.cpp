// Integration tests exercising the full IXP Scrubber chain:
//   traffic generation -> BGP blackholing -> online balancing ->
//   rule mining/minimization/curation -> aggregation -> training ->
//   classification -> explanation / ACL export -> model transfer.

#include <gtest/gtest.h>

#include <sstream>

#include "core/acl.hpp"
#include "core/balancer.hpp"
#include "core/explain.hpp"
#include "core/scrubber.hpp"
#include "flowgen/generator.hpp"
#include "ml/model_io.hpp"

namespace scrubber {
namespace {

using flowgen::TrafficGenerator;

std::vector<net::FlowRecord> balanced_day(const flowgen::IxpProfile& profile,
                                          std::uint64_t seed,
                                          std::uint32_t minutes = 24 * 60,
                                          std::uint32_t start = 0) {
  TrafficGenerator gen(profile, seed);
  core::Balancer balancer(seed ^ 0xBA1);
  gen.generate_stream(start, minutes,
                      TrafficGenerator::Labeling::kBlackholeRegistry,
                      [&](std::uint32_t m, std::span<const net::FlowRecord> f) {
                        balancer.add_minute(m, f);
                      });
  return balancer.take_balanced();
}

TEST(EndToEnd, FullChainOnUs1) {
  const auto flows = balanced_day(flowgen::ixp_us1(), 1001, 36 * 60);
  ASSERT_GT(flows.size(), 1000u);

  core::IxpScrubber scrubber;
  auto rules = scrubber.mine_tagging_rules(flows);
  ASSERT_GT(rules.size(), 5u);
  core::accept_rules_above(rules, 0.9);
  scrubber.set_rules(std::move(rules));

  auto aggregated = scrubber.aggregate(flows);
  util::Rng rng(2);
  const auto [train_idx, test_idx] = aggregated.data.split_indices(2.0 / 3.0, rng);
  const auto train = aggregated.subset(train_idx);
  const auto test = aggregated.subset(test_idx);
  scrubber.train(train);

  const auto cm = scrubber.evaluate(test);
  EXPECT_GE(cm.f_beta(0.5), 0.9) << cm.summary();

  // Explanation works for an arbitrary test record.
  const auto explanation = core::explain(scrubber, test, 0, 5);
  EXPECT_FALSE(explanation.to_string().empty());

  // ACL export produces at least one deny line.
  const std::string acl = core::generate_acl(scrubber.rules());
  EXPECT_NE(acl.find("deny"), std::string::npos);
}

TEST(EndToEnd, SelfAttackValidation) {
  // Train on blackhole-labeled data, validate on ground-truth SAS (§6.1):
  // the bias check — performance must carry over.
  const auto train_flows = balanced_day(flowgen::ixp_us1(), 1002, 36 * 60);

  TrafficGenerator sas_gen(flowgen::self_attack_profile(), 555);
  core::Balancer sas_balancer(9);
  sas_gen.generate_stream(0, 12 * 60, TrafficGenerator::Labeling::kGroundTruth,
                          [&](std::uint32_t m, std::span<const net::FlowRecord> f) {
                            sas_balancer.add_minute(m, f);
                          });
  const auto sas_flows = sas_balancer.take_balanced();
  ASSERT_GT(sas_flows.size(), 500u);

  core::IxpScrubber scrubber;
  auto rules = scrubber.mine_tagging_rules(train_flows);
  core::accept_rules_above(rules, 0.9);
  scrubber.set_rules(std::move(rules));
  scrubber.train(scrubber.aggregate(train_flows));

  const auto sas_agg = scrubber.aggregate(sas_flows);
  const auto cm = scrubber.evaluate(sas_agg);
  EXPECT_GE(cm.f_beta(0.5), 0.85) << cm.summary();
}

TEST(EndToEnd, ClassifierTransferWithLocalWoe) {
  // §6.4 Figure 12 (right): move the trained classifier between IXPs while
  // keeping the receiving site's local WoE encoding.
  const auto flows_a = balanced_day(flowgen::ixp_us1(), 1003, 36 * 60);
  const auto flows_b = balanced_day(flowgen::ixp_se(), 1004, 36 * 60);

  core::IxpScrubber site_a;
  site_a.set_rules(arm::RuleSet{});
  auto agg_a = site_a.aggregate(flows_a);
  site_a.train(agg_a);

  core::IxpScrubber site_b;
  site_b.set_rules(arm::RuleSet{});
  auto agg_b = site_b.aggregate(flows_b);
  util::Rng rng(3);
  const auto [train_idx, test_idx] = agg_b.data.split_indices(0.5, rng);
  const auto train_b = agg_b.subset(train_idx);
  const auto test_b = agg_b.subset(test_idx);
  site_b.train(train_b);  // fits B's local WoE (and a local classifier)

  // Serialize A's classifier, deserialize, swap into B's pipeline.
  auto& gbt_a = dynamic_cast<ml::GradientBoostedTrees&>(site_a.pipeline().classifier());
  const auto json = ml::gbt_to_json(gbt_a);
  auto restored = ml::gbt_from_json(json);
  site_b.pipeline().swap_classifier(std::move(restored));

  const auto cm = site_b.evaluate(test_b);
  EXPECT_GE(cm.f_beta(0.5), 0.85) << cm.summary();
}

TEST(EndToEnd, FlowsSurviveSerializationRoundTrip) {
  // Balanced flows can be persisted and reloaded without changing the
  // downstream aggregate dataset.
  const auto flows = balanced_day(flowgen::ixp_ce2(), 1005, 24 * 60);
  std::stringstream buffer;
  net::write_flows(buffer, flows);
  const auto restored = net::read_flows(buffer);
  ASSERT_EQ(restored, flows);

  core::Aggregator aggregator;
  const auto a = aggregator.aggregate(flows);
  const auto b = aggregator.aggregate(restored);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.data.label(i), b.data.label(i));
  }
}

TEST(EndToEnd, BgpFeedReplayLabelsIdentically) {
  // Feeding the generator's BGP updates through wire encode/decode into a
  // fresh registry must reproduce the flow labels exactly.
  TrafficGenerator gen(flowgen::ixp_us2(), 1006);
  const auto trace = gen.generate(0, 24 * 60);

  bgp::BlackholeRegistry replayed;
  for (const auto& [minute, update] : gen.updates()) {
    replayed.apply(bgp::UpdateMessage::decode(update.encode()), minute);
  }
  for (const auto& flow : trace.flows) {
    EXPECT_EQ(flow.blackholed, replayed.is_blackholed(flow.dst_ip, flow.minute));
  }
}

TEST(EndToEnd, RuleSetExportImportKeepsTaggingBehavior) {
  const auto flows = balanced_day(flowgen::ixp_us1(), 1007, 24 * 60);
  core::IxpScrubber scrubber;
  auto rules = scrubber.mine_tagging_rules(flows);
  core::accept_rules_above(rules, 0.9);

  const std::string json_text = rules.to_json().dump(2);
  const arm::RuleSet reloaded = arm::RuleSet::from_json(util::Json::parse(json_text));
  ASSERT_EQ(reloaded.size(), rules.size());

  const arm::Itemizer itemizer;
  for (std::size_t i = 0; i < 200 && i < flows.size(); ++i) {
    EXPECT_EQ(rules.any_accepted_match(flows[i], itemizer),
              reloaded.any_accepted_match(flows[i], itemizer));
  }
}

}  // namespace
}  // namespace scrubber
