#include "flowgen/generator.hpp"

#include <gtest/gtest.h>

#include <set>
#include <sstream>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <unordered_set>

#include "util/stats.hpp"

namespace scrubber::flowgen {
namespace {

using Labeling = TrafficGenerator::Labeling;

constexpr std::uint32_t kDay = 24 * 60;

IxpProfile small_profile() {
  IxpProfile p = ixp_us1();
  p.benign_flows_per_minute = 120.0;
  p.attacks_per_day = 40.0;
  return p;
}

TEST(Generator, DeterministicForSeed) {
  TrafficGenerator a(small_profile(), 42);
  TrafficGenerator b(small_profile(), 42);
  const auto trace_a = a.generate(0, 120);
  const auto trace_b = b.generate(0, 120);
  EXPECT_EQ(trace_a.flows, trace_b.flows);
  EXPECT_EQ(trace_a.attacks.size(), trace_b.attacks.size());
}

TEST(Generator, DifferentSeedsDiffer) {
  TrafficGenerator a(small_profile(), 1);
  TrafficGenerator b(small_profile(), 2);
  EXPECT_NE(a.generate(0, 60).flows, b.generate(0, 60).flows);
}

TEST(Generator, FlowsSortedByMinuteWithinRange) {
  TrafficGenerator gen(small_profile(), 3);
  const auto trace = gen.generate(100, 60);
  std::uint32_t last = 0;
  for (const auto& flow : trace.flows) {
    EXPECT_GE(flow.minute, 100u);
    EXPECT_LT(flow.minute, 160u);
    EXPECT_GE(flow.minute, last);
    last = flow.minute;
  }
}

TEST(Generator, StreamMatchesMaterialized) {
  TrafficGenerator a(small_profile(), 4);
  TrafficGenerator b(small_profile(), 4);
  const auto trace = a.generate(0, 60);
  std::vector<net::FlowRecord> streamed;
  b.generate_stream(0, 60, Labeling::kBlackholeRegistry,
                    [&](std::uint32_t, std::span<const net::FlowRecord> flows) {
                      streamed.insert(streamed.end(), flows.begin(), flows.end());
                    });
  EXPECT_EQ(trace.flows, streamed);
}

// Parallel generation must be invisible: any thread count, and any number
// of regenerations with the same seed, produce the same trace bytes (the
// wire serialization, not just value equality). This test is part of the
// TSan CI config, which also checks the worker handoff for data races.
TEST(Generator, ThreadedStreamByteIdenticalForAnyThreadCount) {
  const auto bytes_with_threads = [](unsigned threads) {
    TrafficGenerator gen(small_profile(), 11);
    std::vector<net::FlowRecord> flows;
    std::uint32_t next_minute = 0;
    gen.generate_stream(
        0, 48, Labeling::kBlackholeRegistry,
        [&](std::uint32_t minute, std::span<const net::FlowRecord> batch) {
          EXPECT_EQ(minute, next_minute++);  // sink stays in minute order
          flows.insert(flows.end(), batch.begin(), batch.end());
        },
        threads);
    EXPECT_EQ(next_minute, 48u);
    std::ostringstream out;
    net::write_flows(out, flows);
    return out.str();
  };

  const std::string serial = bytes_with_threads(1);
  EXPECT_FALSE(serial.empty());
  EXPECT_EQ(serial, bytes_with_threads(2));
  EXPECT_EQ(serial, bytes_with_threads(8));
  // Oversubscribed relative to the 48-minute range: more workers than the
  // 4*threads window can ever fill concurrently.
  EXPECT_EQ(serial, bytes_with_threads(64));
  // Same-seed regeneration (fresh generator object) is also identical.
  EXPECT_EQ(serial, bytes_with_threads(2));
}

TEST(Generator, ThreadedStreamPropagatesSinkExceptions) {
  TrafficGenerator gen(small_profile(), 12);
  std::uint32_t delivered = 0;
  EXPECT_THROW(
      gen.generate_stream(
          0, 32, Labeling::kBlackholeRegistry,
          [&](std::uint32_t minute, std::span<const net::FlowRecord>) {
            if (minute == 5) throw std::runtime_error("sink failed");
            ++delivered;
          },
          4),
      std::runtime_error);
  EXPECT_EQ(delivered, 5u);  // minutes 0..4, then the throw stopped the run
}

TEST(Generator, BlackholeShareIsSmall) {
  // Figure 3a: blackholing traffic is a tiny share of total bytes.
  TrafficGenerator gen(ixp_us1(), 5);
  const auto trace = gen.generate(0, kDay);
  std::uint64_t total = 0, blackholed = 0;
  for (const auto& flow : trace.flows) {
    total += flow.bytes;
    if (flow.blackholed) blackholed += flow.bytes;
  }
  const double share = static_cast<double>(blackholed) / static_cast<double>(total);
  EXPECT_GT(share, 0.0);
  EXPECT_LT(share, 0.05);
}

TEST(Generator, LabelsComeFromRegistryNotGroundTruth) {
  // Attacks without a blackhole announcement must stay unlabeled.
  IxpProfile profile = small_profile();
  profile.blackhole_probability = 0.0;
  profile.spurious_blackhole_per_day = 0.0;
  TrafficGenerator gen(profile, 6);
  const auto trace = gen.generate(0, kDay);
  for (const auto& flow : trace.flows) EXPECT_FALSE(flow.blackholed);
  EXPECT_GT(trace.attacks.size(), 0u);
}

TEST(Generator, AnnouncementDelayLeavesEarlyAttackFlowsUnlabeled) {
  IxpProfile profile = small_profile();
  profile.announce_delay_mean_min = 10.0;  // long detection delay
  profile.spurious_blackhole_per_day = 0.0;
  TrafficGenerator gen(profile, 7);
  const auto trace = gen.generate(0, kDay);
  // Some reflector-sourced flows (128.0.0.0/2) are not blackholed because
  // the announcement lagged: exactly the §3 label noise.
  std::size_t unlabeled_attack_flows = 0;
  for (const auto& flow : trace.flows) {
    if ((flow.src_ip.value() >> 30) == 2 && !flow.blackholed)
      ++unlabeled_attack_flows;
  }
  EXPECT_GT(unlabeled_attack_flows, 0u);
}

TEST(Generator, BlackholeClassContainsBenignTraffic) {
  // §4.2: attacked IPs receive benign and attack traffic; both get swept
  // into the blackhole class.
  TrafficGenerator gen(small_profile(), 8);
  const auto trace = gen.generate(0, kDay);
  std::size_t bh_total = 0, bh_benign = 0;
  for (const auto& flow : trace.flows) {
    if (!flow.blackholed) continue;
    ++bh_total;
    if ((flow.src_ip.value() >> 30) != 2) ++bh_benign;  // not a reflector
  }
  ASSERT_GT(bh_total, 0u);
  const double benign_share = static_cast<double>(bh_benign) / bh_total;
  EXPECT_GT(benign_share, 0.02);
  EXPECT_LT(benign_share, 0.30);  // paper: up to ~12.5%
}

TEST(Generator, GroundTruthLabelingMarksReflectorFlows) {
  TrafficGenerator gen(self_attack_profile(), 9);
  const auto trace = gen.generate(0, 6 * 60, Labeling::kGroundTruth);
  std::size_t attack = 0;
  for (const auto& flow : trace.flows) {
    EXPECT_EQ(flow.blackholed, (flow.src_ip.value() >> 30) == 2);
    attack += flow.blackholed;
  }
  EXPECT_GT(attack, 0u);
}

TEST(Generator, UpdatesDriveRegistry) {
  TrafficGenerator gen(small_profile(), 10);
  (void)gen.generate(0, kDay);
  EXPECT_GT(gen.updates().size(), 0u);
  // Every update must round-trip the BGP wire format.
  for (const auto& [minute, update] : gen.updates()) {
    const auto decoded = bgp::UpdateMessage::decode(update.encode());
    EXPECT_EQ(decoded, update);
  }
  // Registry must contain at least one interval per announced attack
  // (spurious blackholes add more; repeat victims may merge intervals).
  std::size_t announced = 0;
  for (const auto& attack : gen.attacks()) announced += attack.announces_blackhole;
  EXPECT_GT(announced, 0u);
  EXPECT_GT(gen.registry().interval_count(), announced / 2);
}

TEST(Generator, AttackVectorsFollowPrevalence) {
  TrafficGenerator gen(ixp_ce1(), 11);
  (void)gen.generate(0, 7 * kDay);
  std::size_t ntp = 0, rare = 0;
  for (const auto& attack : gen.attacks()) {
    if (attack.vector == net::DdosVector::kNtp) ++ntp;
    if (attack.vector == net::DdosVector::kTftp) ++rare;
  }
  EXPECT_GT(ntp, rare);
}

TEST(Generator, VectorOnsetRespected) {
  // Strip the profile down so a full year of schedule is cheap to emit.
  IxpProfile profile = ixp_se_longitudinal();
  profile.attacks_per_day = 40.0;
  profile.benign_flows_per_minute = 0.0;
  profile.attack_duration_mean_min = 1.0;
  profile.attack_flows_per_minute_scale = 1.0;
  TrafficGenerator gen(profile, 12);
  (void)gen.generate(0, 52 * 7 * kDay);  // one year
  ASSERT_GT(gen.attacks().size(), 1000u);
  // memcached onset is week 40, SNMP week 10: nothing before.
  for (const auto& attack : gen.attacks()) {
    if (attack.vector == net::DdosVector::kMemcached) {
      EXPECT_GE(attack.start_minute / (7 * kDay), 40u);
    }
    if (attack.vector == net::DdosVector::kSnmp) {
      EXPECT_GE(attack.start_minute / (7 * kDay), 10u);
    }
  }
}

TEST(Generator, ReflectorPoolsChurnOverTime) {
  TrafficGenerator gen(ixp_us1(), 13);
  const std::uint32_t week = 7 * kDay;
  std::size_t same = 0, total = 0;
  for (std::uint32_t slot = 0; slot < 200; ++slot) {
    const auto now = gen.reflector_ip(net::DdosVector::kNtp, slot, 0);
    const auto later = gen.reflector_ip(net::DdosVector::kNtp, slot, 26 * week);
    same += (now == later);
    ++total;
  }
  // After half a year almost every reflector should have rotated
  // (lifetime ~6 weeks), but within the same week they are stable.
  EXPECT_LT(static_cast<double>(same) / total, 0.2);
  for (std::uint32_t slot = 0; slot < 50; ++slot) {
    EXPECT_EQ(gen.reflector_ip(net::DdosVector::kNtp, slot, 100),
              gen.reflector_ip(net::DdosVector::kNtp, slot, 101));
  }
}

TEST(Generator, ReflectorPoolsDisjointAcrossIxps) {
  // §6.4 / Figure 12 (middle): reflector overlap between IXPs is tiny.
  TrafficGenerator a(ixp_ce1(), 14);
  TrafficGenerator b(ixp_us1(), 14);
  std::unordered_set<std::uint32_t> pool_a;
  for (std::uint32_t slot = 0; slot < 400; ++slot)
    pool_a.insert(a.reflector_ip(net::DdosVector::kNtp, slot, 0).value());
  std::size_t overlap = 0;
  for (std::uint32_t slot = 0; slot < 400; ++slot)
    overlap += pool_a.count(b.reflector_ip(net::DdosVector::kNtp, slot, 0).value());
  EXPECT_LT(overlap, 4u);
}

TEST(Generator, BenignDdosPortShareNearTarget) {
  // Figure 4a: ~7.5% of benign flows carry well-known DDoS ports.
  TrafficGenerator gen(ixp_us1(), 15);
  const auto trace = gen.generate(0, kDay);
  std::size_t benign = 0, ddos_port = 0;
  for (const auto& flow : trace.flows) {
    if (flow.blackholed) continue;
    ++benign;
    ddos_port += flow.vector().has_value();
  }
  const double share = static_cast<double>(ddos_port) / benign;
  EXPECT_GT(share, 0.03);
  EXPECT_LT(share, 0.15);
}

TEST(Generator, ProfilesScaleAsTable2) {
  // CE1 must dwarf CE2 in traffic and attacks, as in Table 2.
  EXPECT_GT(ixp_ce1().benign_flows_per_minute, ixp_ce2().benign_flows_per_minute * 5);
  EXPECT_GT(ixp_ce1().attacks_per_day, ixp_ce2().attacks_per_day * 20);
  EXPECT_EQ(all_ixp_profiles().size(), 5u);
  std::set<std::string> names;
  for (const auto& p : all_ixp_profiles()) names.insert(p.name);
  EXPECT_EQ(names.size(), 5u);
}

TEST(Generator, MemberIdsStable) {
  TrafficGenerator gen(ixp_us1(), 16);
  const auto trace = gen.generate(0, 30);
  // The same source IP always enters via the same member port.
  std::unordered_map<std::uint32_t, net::MemberId> seen;
  for (const auto& flow : trace.flows) {
    const auto [it, inserted] = seen.emplace(flow.src_ip.value(), flow.src_member);
    if (!inserted) {
      EXPECT_EQ(it->second, flow.src_member);
    }
  }
}

}  // namespace
}  // namespace scrubber::flowgen
