#include "flowgen/vectors.hpp"

#include <gtest/gtest.h>

#include "util/stats.hpp"

namespace scrubber::flowgen {
namespace {

TEST(VectorTraffic, EveryVectorHasAModel) {
  for (const auto& sig : net::vector_signatures()) {
    const VectorTraffic& model = vector_traffic(sig.vector);
    EXPECT_EQ(model.vector, sig.vector);
    EXPECT_GT(model.mean_packet_size, 0.0);
    EXPECT_GE(model.fragment_fraction, 0.0);
    EXPECT_LE(model.fragment_fraction, 1.0);
  }
}

TEST(VectorTraffic, NtpMonlistSignature) {
  // NTP monlist replies are ~468 bytes with little spread (§4.2 mentions
  // ~500-byte monlist replies).
  const VectorTraffic& ntp = vector_traffic(net::DdosVector::kNtp);
  EXPECT_NEAR(ntp.mean_packet_size, 468.0, 1.0);
  EXPECT_LT(ntp.stddev_packet_size, 50.0);
}

TEST(VectorTraffic, AmplifiersNearMtuCarryFragments) {
  for (const auto v : {net::DdosVector::kLdap, net::DdosVector::kMemcached,
                       net::DdosVector::kDns}) {
    const VectorTraffic& model = vector_traffic(v);
    EXPECT_GT(model.mean_packet_size, 1000.0) << net::vector_name(v);
    EXPECT_GT(model.fragment_fraction, 0.2) << net::vector_name(v);
  }
}

TEST(VectorTraffic, Top7CarryMostPrevalence) {
  double top7 = 0.0, rest = 0.0;
  for (const auto& sig : net::vector_signatures()) {
    const bool is_top7 =
        std::find(net::top7_vectors().begin(), net::top7_vectors().end(),
                  sig.vector) != net::top7_vectors().end();
    (is_top7 ? top7 : rest) += vector_traffic(sig.vector).prevalence;
  }
  EXPECT_GT(top7, rest * 3.0);
}

TEST(SamplePacketSize, WithinBoundsAndNearMean) {
  util::Rng rng(1);
  for (const auto v : {net::DdosVector::kNtp, net::DdosVector::kSsdp,
                       net::DdosVector::kMemcached}) {
    util::Accumulator acc;
    for (int i = 0; i < 5000; ++i) {
      const double s = sample_packet_size(v, rng);
      EXPECT_GE(s, 60.0);
      EXPECT_LE(s, 1500.0);
      acc.add(s);
    }
    // Mean close to model (memcached clips at MTU, so allow slack).
    EXPECT_NEAR(acc.mean(), vector_traffic(v).mean_packet_size, 40.0)
        << net::vector_name(v);
  }
}

TEST(SampleFragmentSize, Bounds) {
  util::Rng rng(2);
  for (int i = 0; i < 5000; ++i) {
    const double s = sample_fragment_size(rng);
    EXPECT_GE(s, 100.0);
    EXPECT_LE(s, 1480.0);
  }
}

}  // namespace
}  // namespace scrubber::flowgen
