// SIMD-vs-scalar bit-identity property suite (DESIGN.md §13).
//
// compiled_tree_test.cpp proves batch == per-row under whatever kernel
// util::simd_level() happens to pick. This file pins BOTH kernels
// explicitly via set_simd_override() and compares their outputs bit for
// bit (memcmp, so NaN payloads count too) across the adversarial corner
// inputs: NaN (missing) cells, feature indices beyond the row width,
// values exactly on a split threshold, empty and single-leaf (degenerate)
// trees, row counts that are not a multiple of the lane width, padded vs
// unpadded batch buffers, and the dispatch fallback itself.
//
// On a machine (or build: SCRUBBER_AVX2=OFF) without AVX2 the forced
// "avx2" runs are clamped to scalar by the dispatch layer — every
// comparison still holds, and the forced-scalar CI leg runs exactly that
// way by design.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <iterator>
#include <limits>
#include <span>
#include <vector>

#include "ml/compiled_tree.hpp"
#include "util/rng.hpp"
#include "util/simd.hpp"

namespace scrubber::ml {
namespace {

// Same discrete pool as compiled_tree_test.cpp: cells and thresholds
// collide so `v <= t` lands exactly on the boundary, and -1.0 doubles as
// the missing/out-of-range substitute value.
constexpr double kPool[] = {-3.7, -1.0, 0.0, 0.5, 1.0, 2.5, 1e9};

struct Node {
  double threshold = 0.0;
  double value = 0.0;
  std::int32_t left = -1;
  std::int32_t right = -1;
  std::uint32_t feature = 0;
};

/// Random topology; features occasionally index one past the row width.
std::int32_t grow(std::vector<Node>& nodes, util::Rng& rng,
                  std::uint32_t width, int depth) {
  const std::size_t index = nodes.size();
  nodes.emplace_back();
  if (depth == 0 || rng.chance(0.3)) {
    nodes[index].value = rng.uniform(-2.0, 2.0);
    return static_cast<std::int32_t>(index);
  }
  nodes[index].feature = static_cast<std::uint32_t>(rng.below(width + 1));
  nodes[index].threshold = kPool[rng.below(std::size(kPool))];
  const std::int32_t left = grow(nodes, rng, width, depth - 1);
  const std::int32_t right = grow(nodes, rng, width, depth - 1);
  nodes[index].left = left;
  nodes[index].right = right;
  return static_cast<std::int32_t>(index);
}

std::vector<double> random_cells(util::Rng& rng, std::size_t count) {
  std::vector<double> cells(count);
  for (auto& cell : cells) {
    cell = rng.chance(0.15) ? std::numeric_limits<double>::quiet_NaN()
                            : kPool[rng.below(std::size(kPool))];
  }
  return cells;
}

/// RAII: pin the dispatch level for one batch call, restore after.
struct ForceLevel {
  explicit ForceLevel(util::SimdLevel level) noexcept {
    util::set_simd_override(level);
  }
  ~ForceLevel() { util::clear_simd_override(); }
};

std::vector<double> forest_margins(const CompiledForest& forest,
                                   std::span<const double> rows,
                                   std::size_t width, std::size_t n,
                                   util::SimdLevel level) {
  ForceLevel guard(level);
  std::vector<double> out(n);
  forest.margin_batch(rows, width, out);
  return out;
}

std::vector<double> tree_predictions(const CompiledTree& tree,
                                     std::span<const double> rows,
                                     std::size_t width, std::size_t n,
                                     util::SimdLevel level) {
  ForceLevel guard(level);
  std::vector<double> out(n);
  tree.predict_batch(rows, width, out);
  return out;
}

void expect_bits_equal(const std::vector<double>& scalar,
                       const std::vector<double>& vector, const char* what) {
  ASSERT_EQ(scalar.size(), vector.size());
  for (std::size_t i = 0; i < scalar.size(); ++i) {
    EXPECT_EQ(std::memcmp(&scalar[i], &vector[i], sizeof(double)), 0)
        << what << ": row " << i << " scalar=" << scalar[i]
        << " vector=" << vector[i];
  }
}

TEST(SimdInference, ForestMarginsBitIdenticalOnRandomForests) {
  util::Rng rng(0x51D0);
  for (int trial = 0; trial < 40; ++trial) {
    const auto width = static_cast<std::uint32_t>(1 + rng.below(6));
    std::vector<std::vector<Node>> trees(1 + rng.below(8));
    for (auto& tree : trees) {
      grow(tree, rng, width, static_cast<int>(1 + rng.below(7)));
    }
    const CompiledForest forest =
        CompiledForest::compile(trees, rng.uniform(-1.0, 1.0));

    // Unpadded buffer: the vector kernel takes n & ~3, the scalar oracle
    // finishes the ragged tail.
    const std::size_t n = rng.below(40);
    const std::vector<double> rows = random_cells(rng, n * width);
    const auto scalar =
        forest_margins(forest, rows, width, n, util::SimdLevel::kScalar);
    const auto vector =
        forest_margins(forest, rows, width, n, util::SimdLevel::kAvx2);
    expect_bits_equal(scalar, vector, "unpadded margins");
    for (std::size_t i = 0; i < n; ++i) {
      const double want =
          forest.margin(std::span(rows.data() + i * width, width));
      EXPECT_EQ(std::memcmp(&scalar[i], &want, sizeof(double)), 0)
          << "trial " << trial << " row " << i;
    }
  }
}

TEST(SimdInference, TreePredictionsBitIdenticalOnRandomTrees) {
  util::Rng rng(0x51D1);
  for (int trial = 0; trial < 40; ++trial) {
    const auto width = static_cast<std::uint32_t>(1 + rng.below(6));
    std::vector<Node> nodes;
    grow(nodes, rng, width, static_cast<int>(1 + rng.below(8)));
    const CompiledTree tree = CompiledTree::compile(nodes);

    const std::size_t n = rng.below(40);
    const std::vector<double> rows = random_cells(rng, n * width);
    const auto scalar =
        tree_predictions(tree, rows, width, n, util::SimdLevel::kScalar);
    const auto vector =
        tree_predictions(tree, rows, width, n, util::SimdLevel::kAvx2);
    expect_bits_equal(scalar, vector, "tree predictions");
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(scalar[i],
                tree.predict(std::span(rows.data() + i * width, width)))
          << "trial " << trial << " row " << i;
    }
  }
}

TEST(SimdInference, PaddedBufferCoversRaggedTail) {
  // Rows padded to a multiple of kSimdLaneRows (the LiveDetector batch
  // assembly): the vector kernel covers the ragged tail via the zero
  // padding rows, whose outputs are never read back.
  util::Rng rng(0x51D2);
  for (const std::size_t n : {1u, 2u, 3u, 5u, 7u, 9u, 13u, 17u, 31u}) {
    const std::uint32_t width = 5;
    std::vector<std::vector<Node>> trees(3);
    for (auto& tree : trees) grow(tree, rng, width, 6);
    const CompiledForest forest = CompiledForest::compile(trees, 0.25);

    const std::size_t padded =
        (n + kSimdLaneRows - 1) / kSimdLaneRows * kSimdLaneRows;
    std::vector<double> rows(padded * width, 0.0);
    const std::vector<double> cells = random_cells(rng, n * width);
    std::memcpy(rows.data(), cells.data(), cells.size() * sizeof(double));

    const auto scalar_padded =
        forest_margins(forest, rows, width, n, util::SimdLevel::kScalar);
    const auto vector_padded =
        forest_margins(forest, rows, width, n, util::SimdLevel::kAvx2);
    const auto vector_unpadded =
        forest_margins(forest, cells, width, n, util::SimdLevel::kAvx2);
    expect_bits_equal(scalar_padded, vector_padded, "padded buffer");
    expect_bits_equal(scalar_padded, vector_unpadded,
                      "padded vs unpadded entry");
  }
}

TEST(SimdInference, OnThresholdMissingAndOutOfRangeCells) {
  // One hand-built tree whose root splits feature 0 at 0.5 and whose right
  // child reads feature 7 of width-2 rows (out of range -> -1.0 -> left).
  std::vector<Node> nodes(5);
  nodes[0] = {.threshold = 0.5, .left = 1, .right = 2, .feature = 0};
  nodes[1] = {.value = 10.0};
  nodes[2] = {.threshold = -1.0, .left = 3, .right = 4, .feature = 7};
  nodes[3] = {.value = 20.0};
  nodes[4] = {.value = 30.0};
  const CompiledTree tree = CompiledTree::compile(nodes);
  const CompiledForest forest =
      CompiledForest::compile(std::vector<std::vector<Node>>{nodes}, 0.0);

  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double above = std::nextafter(0.5, 1.0);
  // width 2; feature 1 is never read, feature 7 never exists.
  const std::vector<double> rows{
      0.5,   0.0,  // exactly on threshold -> left -> 10
      above, 0.0,  // just above -> right, f7 out of range -> -1 <= -1 -> 20
      nan,   0.0,  // missing -> -1.0 <= 0.5 -> left -> 10
      -1.0,  nan,  // boundary pool value -> left -> 10
      1e9,   0.0,  // far right -> 20 (via out-of-range left turn)
  };
  const std::size_t n = 5;
  const std::vector<double> want{10.0, 20.0, 10.0, 10.0, 20.0};

  const auto scalar =
      tree_predictions(tree, rows, 2, n, util::SimdLevel::kScalar);
  const auto vector =
      tree_predictions(tree, rows, 2, n, util::SimdLevel::kAvx2);
  expect_bits_equal(scalar, vector, "corner cells");
  EXPECT_EQ(scalar, want);

  const auto margins_scalar =
      forest_margins(forest, rows, 2, n, util::SimdLevel::kScalar);
  const auto margins_vector =
      forest_margins(forest, rows, 2, n, util::SimdLevel::kAvx2);
  expect_bits_equal(margins_scalar, margins_vector, "corner margins");
  EXPECT_EQ(margins_scalar, want);
}

TEST(SimdInference, DegenerateForestsAgree) {
  util::Rng rng(0x51D3);
  const std::uint32_t width = 3;
  const std::size_t n = 9;
  const std::vector<double> rows = random_cells(rng, n * width);

  // No trees at all: margin is the base margin everywhere.
  const CompiledForest empty =
      CompiledForest::compile(std::vector<std::vector<Node>>{}, 0.75);
  for (const auto level : {util::SimdLevel::kScalar, util::SimdLevel::kAvx2}) {
    for (const double margin : forest_margins(empty, rows, width, n, level)) {
      EXPECT_EQ(margin, 0.75);
    }
  }

  // Single-leaf (depth 0) trees: zero lockstep steps per tree.
  std::vector<std::vector<Node>> stumps(4);
  for (std::size_t t = 0; t < stumps.size(); ++t) {
    stumps[t].push_back({.value = static_cast<double>(t) + 0.5});
  }
  const CompiledForest leafy = CompiledForest::compile(stumps, -1.0);
  const auto scalar =
      forest_margins(leafy, rows, width, n, util::SimdLevel::kScalar);
  const auto vector =
      forest_margins(leafy, rows, width, n, util::SimdLevel::kAvx2);
  expect_bits_equal(scalar, vector, "leaf-only forest");
  for (const double margin : scalar) {
    EXPECT_EQ(margin, -1.0 + 0.5 + 1.5 + 2.5 + 3.5);
  }

  // Zero-width rows and empty batches must be no-ops under both kernels.
  const CompiledTree empty_tree = CompiledTree::compile(std::vector<Node>{});
  for (const auto level : {util::SimdLevel::kScalar, util::SimdLevel::kAvx2}) {
    const auto none = tree_predictions(empty_tree, {}, 0, 0, level);
    EXPECT_TRUE(none.empty());
    for (const double p : tree_predictions(empty_tree, rows, width, n, level)) {
      EXPECT_EQ(p, 0.5);  // empty tree scores 0.5 everywhere
    }
  }
}

TEST(SimdInference, ForcedVectorOnSmallBatchesFallsBackCleanly) {
  // Batches below kSimdLaneRows rows never enter the vector kernel even
  // when it is forced — simd dispatch hands them to the scalar oracle.
  util::Rng rng(0x51D4);
  const std::uint32_t width = 4;
  std::vector<std::vector<Node>> trees(2);
  for (auto& tree : trees) grow(tree, rng, width, 5);
  const CompiledForest forest = CompiledForest::compile(trees, 0.0);
  for (std::size_t n = 1; n < kSimdLaneRows; ++n) {
    const std::vector<double> rows = random_cells(rng, n * width);
    const auto scalar =
        forest_margins(forest, rows, width, n, util::SimdLevel::kScalar);
    const auto vector =
        forest_margins(forest, rows, width, n, util::SimdLevel::kAvx2);
    expect_bits_equal(scalar, vector, "sub-lane batch");
  }
}

}  // namespace
}  // namespace scrubber::ml
