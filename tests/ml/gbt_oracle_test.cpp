// Oracle equivalence for the histogram training engine: the production
// fit() (partition-based, packed (g,h) histograms, u8 codes, cached
// binning — src/ml/gbt.cpp) must produce serialized model bytes EQUAL to
// the embedded seed engine (bench/gbt_oracle.hpp, global scans + u16 +
// upper_bound) on the same data and params, at every thread count. This
// is the refactor's contract: faster, not different.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "../../bench/gbt_oracle.hpp"
#include "ml/bin_cache.hpp"
#include "ml/dataset.hpp"
#include "ml/gbt.hpp"
#include "ml/model_io.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace scrubber::ml {
namespace {

const unsigned kThreadCounts[] = {1, 2, 3, 8};

Dataset nan_heavy(std::size_t n, std::uint64_t seed) {
  // ~30% missing cells across three features; float order would show in
  // the shared -1.0 bins.
  Dataset data({{"x0", ColumnKind::kNumeric},
                {"x1", ColumnKind::kNumeric},
                {"x2", ColumnKind::kNumeric}});
  util::Rng rng(seed);
  for (std::size_t i = 0; i < n; ++i) {
    const int y = rng.chance(0.5) ? 1 : 0;
    double row[3] = {rng.normal(y ? 0.7 : -0.7, 1.0),
                     rng.normal(y ? -0.4 : 0.4, 1.5),
                     rng.uniform(-2.0, 2.0)};
    for (double& v : row) {
      if (rng.chance(0.3)) v = kMissing;
    }
    data.add_row(row, y);
  }
  return data;
}

Dataset duplicate_valued(std::size_t n, std::uint64_t seed) {
  // Values drawn from tiny lattices: most rows collide in every bin, and
  // many candidate splits tie in gain — exercises the strict-> argmax.
  Dataset data({{"x0", ColumnKind::kNumeric}, {"x1", ColumnKind::kNumeric}});
  util::Rng rng(seed);
  for (std::size_t i = 0; i < n; ++i) {
    const int y = rng.chance(0.4) ? 1 : 0;
    const double row[2] = {
        std::floor(rng.uniform(0.0, 8.0)) + (y != 0 ? 0.5 : 0.0),
        std::floor(rng.uniform(0.0, 4.0))};
    data.add_row(row, y);
  }
  return data;
}

Dataset single_row() {
  Dataset data({{"x0", ColumnKind::kNumeric}});
  const double row[1] = {1.25};
  data.add_row(row, 1);
  return data;
}

Dataset all_positive(std::size_t n) {
  // pos == n: the base-rate clamp and "no useful split" paths.
  Dataset data({{"x0", ColumnKind::kNumeric}});
  for (std::size_t i = 0; i < n; ++i) {
    const double row[1] = {static_cast<double>(i % 13)};
    data.add_row(row, 1);
  }
  return data;
}

void expect_matches_oracle(const Dataset& data, const GbtParams& params,
                           const std::string& what) {
  util::set_training_threads(1);
  const GradientBoostedTrees oracle =
      bench_oracle::restore_oracle(data, params);
  const std::string oracle_bytes = gbt_to_json(oracle).dump(2);

  for (const unsigned threads : kThreadCounts) {
    util::set_training_threads(threads);
    BinCache::instance().clear();  // cold and warm paths both covered below
    GradientBoostedTrees cold(params);
    cold.fit(data);
    EXPECT_EQ(gbt_to_json(cold).dump(2), oracle_bytes)
        << what << " cold fit, " << threads << " threads";
    GradientBoostedTrees warm(params);  // BinCache hit path
    warm.fit(data);
    EXPECT_EQ(gbt_to_json(warm).dump(2), oracle_bytes)
        << what << " warm fit, " << threads << " threads";
  }
  util::set_training_threads(1);
  BinCache::instance().clear();
}

TEST(GbtOracle, NanHeavyDataMatchesAtEveryThreadCount) {
  GbtParams params;
  params.n_estimators = 10;
  params.max_depth = 5;
  expect_matches_oracle(nan_heavy(900, 41), params, "nan-heavy");
}

TEST(GbtOracle, DuplicateValuedDataMatchesAtEveryThreadCount) {
  GbtParams params;
  params.n_estimators = 12;
  params.max_depth = 4;
  params.learning_rate = 0.2;
  expect_matches_oracle(duplicate_valued(1100, 42), params, "duplicates");
}

TEST(GbtOracle, SingleRowMatches) {
  GbtParams params;
  params.n_estimators = 3;
  params.max_depth = 3;
  expect_matches_oracle(single_row(), params, "single-row");
}

TEST(GbtOracle, AllPositiveLabelsMatch) {
  GbtParams params;
  params.n_estimators = 5;
  params.max_depth = 4;
  expect_matches_oracle(all_positive(128), params, "pos==n");
}

TEST(GbtOracle, SmallBinBudgetForcesQuantilePath) {
  // max_bins far below the distinct-value count: the quantile edge
  // estimator (not the midpoint path) must also agree with the oracle.
  GbtParams params;
  params.n_estimators = 8;
  params.max_depth = 5;
  params.max_bins = 8;
  expect_matches_oracle(nan_heavy(700, 43), params, "quantile-edges");
}

}  // namespace
}  // namespace scrubber::ml
