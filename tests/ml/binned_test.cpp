// Direct unit tests for ml/binned (the histogram engine's input layer)
// and ml/bin_cache: edge construction, branchless bin assignment vs the
// std::upper_bound definition, the u8/u16 code-width boundary, degenerate
// columns, the missing-value collision both ways (legacy -1.0 folding vs
// the reserved bin), and cache hit/miss/eviction semantics.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <span>
#include <string>
#include <vector>

#include "ml/bin_cache.hpp"
#include "ml/binned.hpp"
#include "ml/dataset.hpp"
#include "ml/gbt.hpp"
#include "ml/model_io.hpp"
#include "util/rng.hpp"

namespace scrubber::ml {
namespace {

Dataset one_column(const std::vector<double>& values,
                   const std::vector<int>& labels = {}) {
  Dataset data({{"x0", ColumnKind::kNumeric}});
  for (std::size_t i = 0; i < values.size(); ++i) {
    const double row[1] = {values[i]};
    data.add_row(row, labels.empty() ? 0 : labels[i]);
  }
  return data;
}

/// A column holding `distinct` evenly spaced distinct values, cycled over
/// `rows` rows.
Dataset spread_column(std::size_t rows, std::size_t distinct) {
  std::vector<double> values(rows);
  for (std::size_t i = 0; i < rows; ++i) {
    values[i] = static_cast<double>(i % distinct) * 0.5;
  }
  return one_column(values);
}

TEST(Binned, EdgesStrictlyAscending) {
  util::Rng rng(71);
  std::vector<double> values;
  for (int i = 0; i < 4000; ++i) {
    // Heavy duplication: draws from a small lattice stress the dedup in
    // the quantile path.
    values.push_back(std::floor(rng.uniform(-50.0, 50.0)) / 4.0);
  }
  for (const MissingPolicy policy :
       {MissingPolicy::kMinusOne, MissingPolicy::kReservedBin}) {
    const BinnedMatrix binned(one_column(values), 32, policy);
    const std::vector<double>& edges = binned.edges(0);
    for (std::size_t k = 0; k + 1 < edges.size(); ++k) {
      EXPECT_LT(edges[k], edges[k + 1]) << "edge " << k;
    }
    EXPECT_LE(binned.bin_count(0), 32u);
  }
}

TEST(Binned, BranchlessBinMatchesUpperBound) {
  util::Rng rng(72);
  std::vector<double> edges;
  double e = -10.0;
  for (int k = 0; k < 77; ++k) {
    e += rng.uniform(0.01, 1.0);
    edges.push_back(e);
  }
  std::vector<double> probes;
  for (int i = 0; i < 2000; ++i) probes.push_back(rng.uniform(-15.0, 70.0));
  for (const double edge : edges) probes.push_back(edge);  // exact hits
  probes.push_back(-std::numeric_limits<double>::infinity());
  probes.push_back(std::numeric_limits<double>::infinity());
  probes.push_back(std::numeric_limits<double>::lowest());
  probes.push_back(std::numeric_limits<double>::max());

  for (const double v : probes) {
    const auto expected = static_cast<std::uint32_t>(std::distance(
        edges.begin(), std::upper_bound(edges.begin(), edges.end(), v)));
    EXPECT_EQ(branchless_bin(edges.data(),
                             static_cast<std::uint32_t>(edges.size()), v),
              expected)
        << "v=" << v;
  }
  // Empty edge list: everything is bin 0.
  EXPECT_EQ(branchless_bin(edges.data(), 0, 3.0), 0u);
}

TEST(Binned, BinAssignmentMonotoneAndEdgeValueRoundTrips) {
  const Dataset data = spread_column(512, 40);
  const BinnedMatrix binned(data, 16);
  // Monotone: sorting rows by raw value sorts their bins.
  std::vector<std::size_t> order(data.n_rows());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return data.at(a, 0) < data.at(b, 0);
  });
  for (std::size_t k = 0; k + 1 < order.size(); ++k) {
    EXPECT_LE(binned.bin(order[k], 0), binned.bin(order[k + 1], 0));
  }
  // edge_value round trip, quantile path (distinct > max_bins): edges are
  // data values and bin = #{edges <= v}, so "bin <= b" is exactly
  // "v < edge_value(b)" — a row equal to the stored threshold sits right.
  for (std::size_t b = 0; b + 1 < binned.bin_count(0); ++b) {
    const double threshold = binned.edge_value(0, b);
    for (std::size_t i = 0; i < data.n_rows(); ++i) {
      EXPECT_EQ(binned.bin(i, 0) <= b, data.at(i, 0) < threshold)
          << "row " << i << " bin-edge " << b;
    }
  }

  // Midpoint path (distinct <= max_bins): edges fall strictly between
  // data values, so the inference rule "v <= threshold goes left" and the
  // training rule "bin <= b goes left" route every data row identically.
  const Dataset narrow = spread_column(512, 12);
  const BinnedMatrix mid(narrow, 16);
  for (std::size_t b = 0; b + 1 < mid.bin_count(0); ++b) {
    const double threshold = mid.edge_value(0, b);
    for (std::size_t i = 0; i < narrow.n_rows(); ++i) {
      EXPECT_EQ(mid.bin(i, 0) <= b, narrow.at(i, 0) <= threshold)
          << "row " << i << " midpoint-edge " << b;
    }
  }
}

TEST(Binned, CodeWidthBoundaryAt256Bins) {
  // 600 distinct values: the quantile path emits budget-1 distinct edges,
  // so bin_count == max_bins exactly.
  const Dataset data = spread_column(1200, 600);
  const BinnedMatrix narrow(data, 256);
  EXPECT_EQ(narrow.bin_count(0), 256u);
  EXPECT_TRUE(narrow.narrow());

  const BinnedMatrix wide(data, 257);
  EXPECT_EQ(wide.bin_count(0), 257u);
  EXPECT_FALSE(wide.narrow());

  // Same bins either width; codes<> returns the matching column pointer.
  for (std::size_t i = 0; i < data.n_rows(); ++i) {
    EXPECT_EQ(narrow.codes<std::uint8_t>(0)[i], narrow.bin(i, 0));
    EXPECT_EQ(wide.codes<std::uint16_t>(0)[i], wide.bin(i, 0));
  }
}

TEST(Binned, DegenerateColumns) {
  // No rows: one trivial bin, no edges.
  const Dataset empty({{"x0", ColumnKind::kNumeric}});
  const BinnedMatrix binned_empty(empty, 16);
  EXPECT_EQ(binned_empty.rows(), 0u);
  EXPECT_EQ(binned_empty.bin_count(0), 1u);

  // Constant column: nothing to split, all rows share bin 0.
  const BinnedMatrix constant(one_column(std::vector<double>(64, 3.5)), 16);
  EXPECT_EQ(constant.bin_count(0), 1u);
  for (std::size_t i = 0; i < 64; ++i) EXPECT_EQ(constant.bin(i, 0), 0u);

  // All-missing column, legacy: folds to the constant -1.0 — one bin.
  const std::vector<double> all_missing(64, kMissing);
  const BinnedMatrix legacy(one_column(all_missing), 16,
                            MissingPolicy::kMinusOne);
  EXPECT_EQ(legacy.bin_count(0), 1u);

  // All-missing column, reserved: only the sentinel edge; every row lands
  // in the reserved bin 0.
  const BinnedMatrix reserved(one_column(all_missing), 16,
                              MissingPolicy::kReservedBin);
  EXPECT_EQ(reserved.bin_count(0), 2u);
  EXPECT_EQ(reserved.edge_value(0, 0), kReservedMissingEdge);
  for (std::size_t i = 0; i < 64; ++i) EXPECT_EQ(reserved.bin(i, 0), 0u);
}

TEST(Binned, MissingCollisionBothWays) {
  // Rows 0..9 missing, rows 10..19 a legitimate -1.0, rest spread values.
  std::vector<double> values;
  for (int i = 0; i < 10; ++i) values.push_back(kMissing);
  for (int i = 0; i < 10; ++i) values.push_back(-1.0);
  for (int i = 0; i < 40; ++i) values.push_back(static_cast<double>(i));
  const Dataset data = one_column(values);

  // Legacy: NaN and -1.0 collide in one bin (the historical behavior).
  const BinnedMatrix legacy(data, 32, MissingPolicy::kMinusOne);
  EXPECT_EQ(legacy.bin(0, 0), legacy.bin(10, 0));

  // Reserved: missing alone owns bin 0; the real -1.0 sits above it.
  const BinnedMatrix reserved(data, 32, MissingPolicy::kReservedBin);
  EXPECT_EQ(reserved.bin(0, 0), 0u);
  EXPECT_GE(reserved.bin(10, 0), 1u);
  EXPECT_NE(reserved.bin(0, 0), reserved.bin(10, 0));
  // The reserved split threshold is the sentinel, below every real value.
  EXPECT_EQ(reserved.edge_value(0, 0), kReservedMissingEdge);
}

TEST(Binned, ReservedBinLetsGbtSeparateMissingFromMinusOne) {
  // Label is "was the cell missing": indistinguishable from a -1.0 value
  // under the legacy mapping, fully separable with the reserved bin.
  std::vector<double> values;
  std::vector<int> labels;
  util::Rng rng(73);
  for (int i = 0; i < 400; ++i) {
    if (i % 2 == 0) {
      values.push_back(kMissing);
      labels.push_back(1);
    } else {
      values.push_back(i % 4 == 1 ? -1.0 : rng.uniform(-1.0, 1.0));
      labels.push_back(0);
    }
  }
  const Dataset data = one_column(values, labels);

  GbtParams params;
  params.n_estimators = 8;
  params.max_depth = 3;

  // Legacy flag off: scoring a missing cell and a -1.0 cell is the SAME
  // traversal (missing reads as -1.0) — collision by construction.
  GradientBoostedTrees legacy(params);
  legacy.fit(data);
  const double nan_row[1] = {kMissing};
  const double minus_one_row[1] = {-1.0};
  EXPECT_EQ(legacy.score(nan_row), legacy.score(minus_one_row));

  // Reserved bin on: the model splits missing from present and scores the
  // two rows on opposite sides.
  params.missing_reserved_bin = true;
  GradientBoostedTrees reserved(params);
  reserved.fit(data);
  EXPECT_GT(reserved.score(nan_row), 0.9);
  EXPECT_LT(reserved.score(minus_one_row), 0.1);
  // Batch (compiled) path agrees with the scalar path on missing rows —
  // the -inf surrogate is plumbed through every kernel.
  std::vector<double> batch(data.n_rows());
  reserved.score_batch(data, batch);
  for (std::size_t i = 0; i < data.n_rows(); ++i) {
    const double row[1] = {values[i]};
    EXPECT_EQ(batch[i], reserved.score(row)) << "row " << i;
  }
}

TEST(Binned, ReservedFlagRoundTripsThroughModelIo) {
  std::vector<double> values;
  std::vector<int> labels;
  for (int i = 0; i < 100; ++i) {
    values.push_back(i % 3 == 0 ? kMissing : static_cast<double>(i));
    labels.push_back(i % 3 == 0 ? 1 : 0);
  }
  const Dataset data = one_column(values, labels);
  GbtParams params;
  params.n_estimators = 4;
  params.max_depth = 3;
  params.missing_reserved_bin = true;
  GradientBoostedTrees model(params);
  model.fit(data);

  const auto loaded = gbt_from_json(gbt_to_json(model));
  EXPECT_TRUE(loaded->params().missing_reserved_bin);
  const double nan_row[1] = {kMissing};
  EXPECT_EQ(loaded->score(nan_row), model.score(nan_row));
  EXPECT_EQ(gbt_to_json(*loaded).dump(2), gbt_to_json(model).dump(2));
}

TEST(BinCache, HitMissAndValueDeterminism) {
  BinCache& cache = BinCache::instance();
  cache.clear();

  const Dataset data = spread_column(300, 37);
  const auto first = cache.get_or_build(data, 16, MissingPolicy::kMinusOne);
  auto stats = cache.stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.entries, 1u);

  // Same content again — including through a COPY of the dataset (keying
  // is by value, not address): both hit and share the instance.
  const auto second = cache.get_or_build(data, 16, MissingPolicy::kMinusOne);
  std::vector<std::size_t> all(data.n_rows());
  std::iota(all.begin(), all.end(), std::size_t{0});
  const Dataset copy = data.subset(all);
  const auto third = cache.get_or_build(copy, 16, MissingPolicy::kMinusOne);
  stats = cache.stats();
  EXPECT_EQ(stats.hits, 2u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(second.get(), first.get());
  EXPECT_EQ(third.get(), first.get());

  // Different parameters are different entries.
  const auto other_bins = cache.get_or_build(data, 8, MissingPolicy::kMinusOne);
  const auto other_policy =
      cache.get_or_build(data, 16, MissingPolicy::kReservedBin);
  EXPECT_NE(other_bins.get(), first.get());
  EXPECT_NE(other_policy.get(), first.get());
  EXPECT_EQ(cache.stats().entries, 3u);

  // A cache hit is value-identical to a fresh build.
  const BinnedMatrix fresh(data, 16, MissingPolicy::kMinusOne);
  ASSERT_EQ(first->bin_count(0), fresh.bin_count(0));
  EXPECT_EQ(first->edges(0), fresh.edges(0));
  for (std::size_t i = 0; i < data.n_rows(); ++i) {
    EXPECT_EQ(first->bin(i, 0), fresh.bin(i, 0));
  }
  cache.clear();
  EXPECT_EQ(cache.stats().entries, 0u);
}

TEST(BinCache, FifoEvictionBeyondCapacity) {
  BinCache& cache = BinCache::instance();
  cache.clear();
  const Dataset first = spread_column(100, 11);
  (void)cache.get_or_build(first, 16, MissingPolicy::kMinusOne);
  for (std::size_t k = 0; k < BinCache::kCapacity; ++k) {
    (void)cache.get_or_build(spread_column(100 + k + 1, 13), 16,
                             MissingPolicy::kMinusOne);
  }
  auto stats = cache.stats();
  EXPECT_EQ(stats.entries, BinCache::kCapacity);
  EXPECT_EQ(stats.evictions, 1u);
  // The oldest entry (first) was evicted: asking again is a miss.
  const auto before = cache.stats().misses;
  (void)cache.get_or_build(first, 16, MissingPolicy::kMinusOne);
  EXPECT_EQ(cache.stats().misses, before + 1);
  cache.clear();
}

TEST(BinCache, RepeatedGbtFitsHitTheCache) {
  BinCache& cache = BinCache::instance();
  cache.clear();
  const Dataset data = spread_column(400, 29);
  GbtParams params;
  params.n_estimators = 4;
  params.max_depth = 3;

  GradientBoostedTrees a(params);
  a.fit(data);
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().hits, 0u);

  GradientBoostedTrees b(params);
  b.fit(data);
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().hits, 1u);
  // The cache-hit fit produces byte-identical model output.
  EXPECT_EQ(gbt_to_json(a).dump(2), gbt_to_json(b).dump(2));
  cache.clear();
}

}  // namespace
}  // namespace scrubber::ml
