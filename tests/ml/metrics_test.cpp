#include "ml/metrics.hpp"

#include <gtest/gtest.h>

namespace scrubber::ml {
namespace {

ConfusionMatrix make_cm(std::uint64_t tp, std::uint64_t tn, std::uint64_t fp,
                        std::uint64_t fn) {
  ConfusionMatrix cm;
  cm.tp = tp;
  cm.tn = tn;
  cm.fp = fp;
  cm.fn = fn;
  return cm;
}

TEST(ConfusionMatrix, AddAccumulates) {
  ConfusionMatrix cm;
  cm.add(1, 1);  // tp
  cm.add(1, 0);  // fn
  cm.add(0, 0);  // tn
  cm.add(0, 1);  // fp
  EXPECT_EQ(cm.tp, 1u);
  EXPECT_EQ(cm.fn, 1u);
  EXPECT_EQ(cm.tn, 1u);
  EXPECT_EQ(cm.fp, 1u);
  EXPECT_EQ(cm.total(), 4u);
}

TEST(ConfusionMatrix, Rates) {
  const auto cm = make_cm(80, 90, 10, 20);
  EXPECT_DOUBLE_EQ(cm.tpr(), 0.8);
  EXPECT_DOUBLE_EQ(cm.fnr(), 0.2);
  EXPECT_DOUBLE_EQ(cm.tnr(), 0.9);
  EXPECT_DOUBLE_EQ(cm.fpr(), 0.1);
  EXPECT_DOUBLE_EQ(cm.precision(), 80.0 / 90.0);
  EXPECT_DOUBLE_EQ(cm.recall(), 0.8);
  EXPECT_DOUBLE_EQ(cm.accuracy(), 170.0 / 200.0);
}

TEST(ConfusionMatrix, RatesComplementary) {
  const auto cm = make_cm(33, 44, 7, 9);
  EXPECT_DOUBLE_EQ(cm.tpr() + cm.fnr(), 1.0);
  EXPECT_DOUBLE_EQ(cm.tnr() + cm.fpr(), 1.0);
}

TEST(ConfusionMatrix, F1MatchesPaperFormula) {
  // F1 = tp / (tp + (fp + fn) / 2), §6.1.
  const auto cm = make_cm(80, 90, 10, 20);
  EXPECT_DOUBLE_EQ(cm.f1(), 80.0 / (80.0 + 0.5 * (10.0 + 20.0)));
}

TEST(ConfusionMatrix, FBetaMatchesPaperFormula) {
  // F_beta = (1+b^2) tp / ((1+b^2) tp + b^2 fn + fp), beta = 0.5.
  const auto cm = make_cm(80, 90, 10, 20);
  const double b2 = 0.25;
  const double expected =
      (1 + b2) * 80.0 / ((1 + b2) * 80.0 + b2 * 20.0 + 10.0);
  EXPECT_DOUBLE_EQ(cm.f_beta(0.5), expected);
}

TEST(ConfusionMatrix, FBetaWeightsFalsePositivesMore) {
  // With beta = 0.5, trading a false negative for a false positive must
  // lower the score (the paper's rationale for using it).
  const auto more_fp = make_cm(80, 90, 20, 10);
  const auto more_fn = make_cm(80, 90, 10, 20);
  EXPECT_LT(more_fp.f_beta(0.5), more_fn.f_beta(0.5));
  // F1 treats both errors equally.
  EXPECT_DOUBLE_EQ(more_fp.f1(), more_fn.f1());
}

TEST(ConfusionMatrix, PerfectAndWorst) {
  EXPECT_DOUBLE_EQ(make_cm(10, 10, 0, 0).f_beta(0.5), 1.0);
  EXPECT_DOUBLE_EQ(make_cm(10, 10, 0, 0).f1(), 1.0);
  EXPECT_DOUBLE_EQ(make_cm(0, 0, 10, 10).f1(), 0.0);
}

TEST(ConfusionMatrix, EmptyIsZeroNotNan) {
  const ConfusionMatrix cm;
  EXPECT_DOUBLE_EQ(cm.tpr(), 0.0);
  EXPECT_DOUBLE_EQ(cm.tnr(), 0.0);
  EXPECT_DOUBLE_EQ(cm.f1(), 0.0);
  EXPECT_DOUBLE_EQ(cm.f_beta(0.5), 0.0);
  EXPECT_DOUBLE_EQ(cm.accuracy(), 0.0);
  EXPECT_DOUBLE_EQ(cm.precision(), 0.0);
}

TEST(Evaluate, BuildsFromSpans) {
  const std::vector<int> truth{1, 1, 0, 0, 1};
  const std::vector<int> pred{1, 0, 0, 1, 1};
  const auto cm = evaluate(truth, pred);
  EXPECT_EQ(cm.tp, 2u);
  EXPECT_EQ(cm.fn, 1u);
  EXPECT_EQ(cm.tn, 1u);
  EXPECT_EQ(cm.fp, 1u);
}

TEST(Evaluate, SizeMismatchThrows) {
  const std::vector<int> truth{1};
  const std::vector<int> pred{1, 0};
  EXPECT_THROW((void)evaluate(truth, pred), std::invalid_argument);
}

TEST(ConfusionMatrix, SummaryMentionsCounts) {
  const auto s = make_cm(1, 2, 3, 4).summary();
  EXPECT_NE(s.find("tp=1"), std::string::npos);
  EXPECT_NE(s.find("fn=4"), std::string::npos);
}

}  // namespace
}  // namespace scrubber::ml
