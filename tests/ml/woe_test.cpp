#include "ml/woe.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <span>
#include <utility>
#include <vector>

namespace scrubber::ml {
namespace {

/// Dataset with one categorical column; value 100 appears only in class 1,
/// value 200 only in class 0, value 300 in both equally.
Dataset categorical_dataset() {
  Dataset data({{"cat", ColumnKind::kCategorical}});
  for (int i = 0; i < 10; ++i) {
    const double a[1] = {100.0};
    data.add_row(a, 1);
    const double b[1] = {200.0};
    data.add_row(b, 0);
    const double c[1] = {300.0};
    data.add_row(c, i % 2);
  }
  return data;
}

TEST(WoeColumn, MatchesClosedForm) {
  WoeColumn column;
  // 3 positives of value 7, 1 negative of value 7; totals 4 pos, 2 neg.
  column.observe(7, 1);
  column.observe(7, 1);
  column.observe(7, 1);
  column.observe(7, 0);
  column.observe(9, 1);
  column.observe(9, 0);
  column.finalize();
  // WoE(7) = ln( ((3+1)/(4+1)) / ((1+1)/(2+1)) ) with +1 smoothing.
  const double expected = std::log((4.0 / 5.0) / (2.0 / 3.0));
  EXPECT_NEAR(column.encode(7), expected, 1e-12);
}

TEST(WoeColumn, UnknownValueIsNeutral) {
  WoeColumn column;
  column.observe(1, 1);
  column.finalize();
  EXPECT_DOUBLE_EQ(column.encode(9999), 0.0);
}

TEST(WoeColumn, SignsReflectClassAffinity) {
  WoeColumn column;
  for (int i = 0; i < 50; ++i) {
    column.observe(100, 1);  // blackhole-only value
    column.observe(200, 0);  // benign-only value
  }
  column.finalize();
  EXPECT_GT(column.encode(100), 1.0);
  EXPECT_LT(column.encode(200), -1.0);
}

TEST(WoeColumn, BalancedValueNearZero) {
  WoeColumn column;
  for (int i = 0; i < 50; ++i) {
    column.observe(300, 1);
    column.observe(300, 0);
  }
  column.finalize();
  EXPECT_NEAR(column.encode(300), 0.0, 0.05);
}

TEST(WoeColumn, DivisionByZeroSmoothed) {
  WoeColumn column;
  column.observe(5, 1);  // value 5 never seen in class 0
  column.observe(6, 0);  // class 0 exists, but with a different value
  column.finalize();
  const double woe5 = column.encode(5);
  EXPECT_TRUE(std::isfinite(woe5));
  EXPECT_GT(woe5, 0.0);
  const double woe6 = column.encode(6);
  EXPECT_TRUE(std::isfinite(woe6));
  EXPECT_LT(woe6, 0.0);
}

TEST(WoeColumn, OverrideWins) {
  WoeColumn column;
  column.observe(5, 1);
  column.finalize();
  column.set_override(5, -3.0);
  EXPECT_DOUBLE_EQ(column.encode(5), -3.0);
  column.set_override(77, 2.0);  // value never observed
  EXPECT_DOUBLE_EQ(column.encode(77), 2.0);
}

TEST(WoeColumn, ValuesAboveThreshold) {
  WoeColumn column;
  for (int i = 0; i < 100; ++i) column.observe(1, 1);
  for (int i = 0; i < 100; ++i) column.observe(2, 0);
  column.finalize();
  const auto above = column.values_above(1.0);
  ASSERT_EQ(above.size(), 1u);
  EXPECT_EQ(above[0], 1);
}

TEST(WoeEncoder, EncodesOnlyCategoricalColumns) {
  Dataset data({{"num", ColumnKind::kNumeric}, {"cat", ColumnKind::kCategorical}});
  for (int i = 0; i < 20; ++i) {
    const double row[2] = {1.5, static_cast<double>(i % 2)};
    data.add_row(row, i % 2);
  }
  WoeEncoder encoder(0);
  encoder.fit(data);
  EXPECT_FALSE(encoder.encodes(0));
  EXPECT_TRUE(encoder.encodes(1));
  EXPECT_EQ(encoder.encoded_columns(), std::vector<std::size_t>{1});
  std::vector<double> row{1.5, 1.0};
  encoder.apply(row);
  EXPECT_DOUBLE_EQ(row[0], 1.5);       // numeric untouched
  EXPECT_GT(row[1], 0.5);              // value 1 is pure class-1
  EXPECT_THROW((void)encoder.column(0), std::out_of_range);
}

TEST(WoeEncoder, MissingEncodesToNeutral) {
  Dataset data = categorical_dataset();
  WoeEncoder encoder(0);
  encoder.fit(data);
  std::vector<double> row{kMissing};
  encoder.apply(row);
  EXPECT_DOUBLE_EQ(row[0], 0.0);
}

TEST(WoeEncoder, ApplyIsDeterministic) {
  Dataset data = categorical_dataset();
  WoeEncoder encoder(0);
  encoder.fit(data);
  std::vector<double> a{100.0}, b{100.0};
  encoder.apply(a);
  encoder.apply(b);
  EXPECT_DOUBLE_EQ(a[0], b[0]);
}

TEST(WoeEncoder, CrossFitEncodesTrainingRowsOutOfFold) {
  // A value that appears exactly once gets WoE 0 under cross-fitting
  // (the fold that encodes it never saw it), while in-sample fitting
  // would give it a nonzero score — the memorization this prevents.
  Dataset data({{"cat", ColumnKind::kCategorical}});
  for (int i = 0; i < 40; ++i) {
    const double row[1] = {static_cast<double>(1000 + i)};  // all unique
    data.add_row(row, i % 2);
  }
  WoeEncoder cross(5);
  const Dataset encoded = cross.fit_transform(data);
  for (std::size_t i = 0; i < encoded.n_rows(); ++i)
    EXPECT_DOUBLE_EQ(encoded.at(i, 0), 0.0);

  WoeEncoder in_sample(0);
  const Dataset leaky = in_sample.fit_transform(data);
  bool any_nonzero = false;
  for (std::size_t i = 0; i < leaky.n_rows(); ++i)
    any_nonzero |= (leaky.at(i, 0) != 0.0);
  EXPECT_TRUE(any_nonzero);
}

TEST(WoeEncoder, CrossFitKeepsFullTablesForInference) {
  Dataset data = categorical_dataset();
  WoeEncoder encoder(5);
  (void)encoder.fit_transform(data);
  // After fit_transform, apply() must use tables over ALL rows.
  std::vector<double> row{100.0};
  encoder.apply(row);
  EXPECT_GT(row[0], 1.0);
}

TEST(WoeEncoder, CrossFitSmallDataFallsBack) {
  Dataset data({{"cat", ColumnKind::kCategorical}});
  const double row[1] = {1.0};
  data.add_row(row, 1);
  data.add_row(row, 0);
  WoeEncoder encoder(5);
  EXPECT_NO_THROW((void)encoder.fit_transform(data));
}

TEST(WoeColumn, FromTablePreservesIterationOrder) {
  // FlatHash iterates in insertion order; from_table() re-adopts a table
  // as-is, so the (value, woe) sequence — and therefore every future
  // serialization — survives the round trip exactly.
  WoeColumn column;
  for (const std::int64_t value : {42, 7, 1000, -3, 0}) {
    column.observe(value, 1);
    column.observe(value, value % 2 == 0 ? 0 : 1);
  }
  column.finalize();

  const auto sequence = [](const WoeColumn& c) {
    std::vector<std::pair<std::int64_t, double>> out;
    c.table().for_each([&out](std::int64_t value, double woe) {
      out.emplace_back(value, woe);
    });
    return out;
  };
  const auto original = sequence(column);
  ASSERT_EQ(original.size(), 5u);
  EXPECT_EQ(original[0].first, 42);  // first-observation order
  EXPECT_EQ(original[4].first, 0);

  const WoeColumn restored = WoeColumn::from_table(column.table());
  EXPECT_EQ(sequence(restored), original);
}

TEST(WoeEncoder, EncodeRowsBitIdenticalToPerRowApply) {
  // encode_rows() is the column-strip batch form of apply(): same table
  // lookups, same missing -> 0.0 rule, cell-for-cell identical bits.
  Dataset data({{"cat_a", ColumnKind::kCategorical},
                {"num", ColumnKind::kNumeric},
                {"cat_b", ColumnKind::kCategorical}});
  for (int i = 0; i < 30; ++i) {
    const double row[3] = {static_cast<double>(i % 5), 1.5 * i,
                           static_cast<double>(100 + i % 7)};
    data.add_row(row, i % 2);
  }
  WoeEncoder encoder(0);
  encoder.fit(data);

  // Seen values, unseen values (-> 0.0), missing cells, and a numeric
  // column that must pass through untouched (including its NaNs).
  std::vector<double> cells{
      0.0,      1.5,      100.0,     //
      4.0,      kMissing, 106.0,     //
      999.0,    -2.25,    -50.0,     //
      kMissing, 0.0,      kMissing,  //
      2.0,      1e18,     103.0,     //
  };
  const std::size_t width = 3;
  const std::size_t n = cells.size() / width;

  std::vector<double> by_row = cells;
  for (std::size_t i = 0; i < n; ++i) {
    encoder.apply(std::span(by_row.data() + i * width, width));
  }
  std::vector<double> by_batch = cells;
  encoder.encode_rows(by_batch, width);
  ASSERT_EQ(by_row.size(), by_batch.size());
  EXPECT_EQ(std::memcmp(by_row.data(), by_batch.data(),
                        by_row.size() * sizeof(double)),
            0);

  // The Dataset-level batch override routes through the same pass.
  Dataset probe({{"cat_a", ColumnKind::kCategorical},
                 {"num", ColumnKind::kNumeric},
                 {"cat_b", ColumnKind::kCategorical}});
  for (std::size_t i = 0; i < n; ++i) {
    probe.add_row(std::span(cells.data() + i * width, width), 0);
  }
  const Dataset encoded = encoder.apply_to_dataset(probe);
  EXPECT_EQ(std::memcmp(encoded.raw().data(), by_row.data(),
                        by_row.size() * sizeof(double)),
            0);
}

TEST(WoeEncoder, RestoreRoundTrip) {
  Dataset data = categorical_dataset();
  WoeEncoder encoder(0);
  encoder.fit(data);
  const double woe_100 = encoder.column(0).encode(100);

  std::vector<std::optional<WoeColumn>> columns(1);
  columns[0] = WoeColumn::from_table(encoder.column(0).table());
  WoeEncoder restored;
  restored.restore(std::move(columns));
  EXPECT_DOUBLE_EQ(restored.column(0).encode(100), woe_100);
}

}  // namespace
}  // namespace scrubber::ml
