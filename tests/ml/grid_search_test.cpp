#include "ml/grid_search.hpp"

#include <gtest/gtest.h>

#include <set>

#include "ml/decision_tree.hpp"
#include "ml/preprocess.hpp"

namespace scrubber::ml {
namespace {

Dataset blobs(std::size_t n, std::uint64_t seed) {
  Dataset data({{"x0", ColumnKind::kNumeric}, {"x1", ColumnKind::kNumeric}});
  util::Rng rng(seed);
  for (std::size_t i = 0; i < n; ++i) {
    const int y = rng.chance(0.5) ? 1 : 0;
    const double row[2] = {rng.normal(y ? 1.5 : -1.5, 1.0),
                           rng.normal(y ? 1.5 : -1.5, 1.0)};
    data.add_row(row, y);
  }
  return data;
}

TEST(ParamGrid, CartesianProduct) {
  const auto grid = param_grid({{"a", {1.0, 2.0}}, {"b", {10.0, 20.0, 30.0}}});
  EXPECT_EQ(grid.size(), 6u);
  // Every combination appears exactly once.
  std::set<std::pair<double, double>> seen;
  for (const auto& point : grid) seen.insert({point.at("a"), point.at("b")});
  EXPECT_EQ(seen.size(), 6u);
}

TEST(ParamGrid, EmptyAxesGiveSinglePoint) {
  const auto grid = param_grid({});
  ASSERT_EQ(grid.size(), 1u);
  EXPECT_TRUE(grid[0].empty());
}

TEST(ParamGrid, SingleAxis) {
  const auto grid = param_grid({{"x", {1.0, 2.0, 3.0}}});
  EXPECT_EQ(grid.size(), 3u);
}

TEST(CrossVal, ScoreIsHighOnSeparableData) {
  const Dataset data = blobs(900, 1);
  util::Rng rng(2);
  const double score = cross_val_fbeta(
      data,
      [] {
        Pipeline p;
        p.set_classifier(std::make_unique<DecisionTree>());
        return p;
      },
      3, rng);
  EXPECT_GT(score, 0.9);
}

TEST(CrossVal, DeterministicGivenSeed) {
  const Dataset data = blobs(300, 3);
  auto factory = [] {
    Pipeline p;
    p.set_classifier(std::make_unique<DecisionTree>());
    return p;
  };
  util::Rng rng_a(7), rng_b(7);
  EXPECT_DOUBLE_EQ(cross_val_fbeta(data, factory, 3, rng_a),
                   cross_val_fbeta(data, factory, 3, rng_b));
}

TEST(GridSearch, PicksDepthThatFitsData) {
  // Depth 1 underfits a quadrant problem (XOR-free variant still needs 2).
  Dataset data({{"x0", ColumnKind::kNumeric}, {"x1", ColumnKind::kNumeric}});
  util::Rng rng(4);
  for (int i = 0; i < 1200; ++i) {
    const double a = rng.uniform(-1.0, 1.0);
    const double b = rng.uniform(-1.0, 1.0);
    const int y = (a > 0.0 && b > 0.0) ? 1 : 0;  // needs depth 2
    const double row[2] = {a, b};
    data.add_row(row, y);
  }
  util::Rng rng2(5);
  const auto grid = param_grid({{"max_depth", {1.0, 4.0}}});
  const auto result = grid_search(
      data, grid,
      [](const ParamPoint& point) {
        DecisionTreeParams params;
        params.max_depth = static_cast<std::size_t>(point.at("max_depth"));
        Pipeline p;
        p.set_classifier(std::make_unique<DecisionTree>(params));
        return p;
      },
      3, rng2);
  EXPECT_DOUBLE_EQ(result.best_params.at("max_depth"), 4.0);
  EXPECT_EQ(result.all_scores.size(), 2u);
  EXPECT_GT(result.best_score, 0.9);
  // Scores recorded in grid order.
  EXPECT_LT(result.all_scores[0].second, result.all_scores[1].second);
}

}  // namespace
}  // namespace scrubber::ml
