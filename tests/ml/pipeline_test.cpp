#include "ml/pipeline.hpp"

#include <gtest/gtest.h>

#include "ml/gbt.hpp"
#include "ml/linear.hpp"
#include "ml/pca.hpp"
#include "ml/preprocess.hpp"
#include "ml/woe.hpp"
#include "util/rng.hpp"

namespace scrubber::ml {
namespace {

/// Mixed numeric/categorical dataset: categorical value predicts the label,
/// numeric column is noise; some numeric cells missing.
Dataset mixed_dataset(std::size_t n, std::uint64_t seed) {
  Dataset data({{"num", ColumnKind::kNumeric}, {"cat", ColumnKind::kCategorical}});
  util::Rng rng(seed);
  for (std::size_t i = 0; i < n; ++i) {
    const int y = rng.chance(0.5) ? 1 : 0;
    double num = rng.normal();
    if (rng.chance(0.1)) num = kMissing;
    // Categorical: classes draw from overlapping but biased value pools.
    const double cat =
        y ? static_cast<double>(rng.below(20))          // 0..19
          : static_cast<double>(10 + rng.below(20));    // 10..29
    const double row[2] = {num, cat};
    data.add_row(row, y);
  }
  return data;
}

TEST(Pipeline, FitWithoutClassifierThrows) {
  Pipeline p;
  p.add(std::make_unique<Imputer>());
  Dataset data = mixed_dataset(10, 1);
  EXPECT_THROW(p.fit(data), std::logic_error);
  EXPECT_FALSE(p.has_classifier());
}

TEST(Pipeline, EndToEndLearnsFromCategorical) {
  Dataset train = mixed_dataset(2000, 2);
  Dataset test = mixed_dataset(500, 3);
  Pipeline p;
  p.add(std::make_unique<FeatureReducer>());
  p.add(std::make_unique<Imputer>(-1.0));
  p.add(std::make_unique<WoeEncoder>());
  p.set_classifier(std::make_unique<GradientBoostedTrees>());
  p.fit(train);
  std::size_t correct = 0;
  for (std::size_t i = 0; i < test.n_rows(); ++i)
    correct += static_cast<std::size_t>(p.predict(test.row(i)) == test.label(i));
  // Bayes-optimal here is 75% (half of each class in the overlap region).
  EXPECT_GT(static_cast<double>(correct) / test.n_rows(), 0.70);
}

TEST(Pipeline, TransformAppliesAllStages) {
  Dataset train = mixed_dataset(500, 4);
  Pipeline p;
  p.add(std::make_unique<Imputer>(-1.0));
  p.add(std::make_unique<WoeEncoder>());
  p.set_classifier(std::make_unique<GradientBoostedTrees>());
  p.fit(train);
  const auto out = p.transform(std::vector<double>{kMissing, 5.0});
  ASSERT_EQ(out.size(), 2u);
  EXPECT_DOUBLE_EQ(out[0], -1.0);           // imputed
  EXPECT_NE(out[1], 5.0);                   // WoE-encoded
}

TEST(Pipeline, WidthChangingStage) {
  Dataset train = mixed_dataset(500, 5);
  Pipeline p;
  p.add(std::make_unique<Imputer>(-1.0));
  p.add(std::make_unique<WoeEncoder>());
  p.add(std::make_unique<Pca>(1));
  p.set_classifier(std::make_unique<LinearSvm>());
  p.fit(train);
  EXPECT_EQ(p.transform(std::vector<double>{1.0, 2.0}).size(), 1u);
  const Dataset transformed = p.transform_dataset(train);
  EXPECT_EQ(transformed.n_cols(), 1u);
  EXPECT_EQ(transformed.n_rows(), train.n_rows());
}

TEST(Pipeline, TransformDatasetMatchesRowTransform) {
  Dataset train = mixed_dataset(300, 6);
  Pipeline p;
  p.add(std::make_unique<Imputer>(-1.0));
  p.add(std::make_unique<WoeEncoder>());
  p.set_classifier(std::make_unique<LinearSvm>());
  p.fit(train);
  const Dataset transformed = p.transform_dataset(train);
  for (std::size_t i = 0; i < 20; ++i) {
    const auto row = p.transform(train.row(i));
    for (std::size_t j = 0; j < row.size(); ++j)
      EXPECT_DOUBLE_EQ(row[j], transformed.at(i, j));
  }
}

TEST(Pipeline, FindStageByName) {
  Pipeline p;
  p.add(std::make_unique<Imputer>());
  p.add(std::make_unique<WoeEncoder>());
  EXPECT_NE(p.find_stage("WoE"), nullptr);
  EXPECT_NE(p.find_stage("I"), nullptr);
  EXPECT_EQ(p.find_stage("PCA"), nullptr);
  EXPECT_EQ(p.stage_count(), 2u);
}

TEST(Pipeline, SwapClassifierKeepsStages) {
  Dataset train = mixed_dataset(800, 7);
  Pipeline p;
  p.add(std::make_unique<Imputer>(-1.0));
  p.add(std::make_unique<WoeEncoder>());
  p.set_classifier(std::make_unique<GradientBoostedTrees>());
  p.fit(train);

  // Train a second classifier on this pipeline's transformed output and
  // swap it in — the §6.4 "transfer the classifier, keep local WoE" move.
  auto foreign = std::make_unique<GradientBoostedTrees>();
  foreign->fit(p.transform_dataset(train));
  const double before = p.score(train.row(0));
  p.swap_classifier(std::move(foreign));
  const double after = p.score(train.row(0));
  EXPECT_TRUE(std::isfinite(before));
  EXPECT_TRUE(std::isfinite(after));
  EXPECT_EQ(p.classifier().name(), "XGB");
}

TEST(Pipeline, CloneIsDeepAndIdentical) {
  Dataset train = mixed_dataset(400, 8);
  Pipeline p;
  p.add(std::make_unique<Imputer>(-1.0));
  p.add(std::make_unique<WoeEncoder>());
  p.set_classifier(std::make_unique<GradientBoostedTrees>());
  p.fit(train);
  const Pipeline copy = p.clone();
  for (std::size_t i = 0; i < 20; ++i)
    EXPECT_DOUBLE_EQ(p.score(train.row(i)), copy.score(train.row(i)));
}

TEST(Pipeline, DescribeListsStages) {
  Pipeline p = make_model_pipeline(ModelKind::kNeuralNet);
  const std::string desc = p.describe();
  EXPECT_NE(desc.find("FR->"), std::string::npos);
  EXPECT_NE(desc.find("WoE->"), std::string::npos);
  EXPECT_NE(desc.find("PCA"), std::string::npos);
  EXPECT_NE(desc.find("C(NN)"), std::string::npos);
}

TEST(ModelPipelines, AllKindsConstructAndName) {
  for (const ModelKind kind : all_model_kinds()) {
    const Pipeline p = make_model_pipeline(kind);
    ASSERT_TRUE(p.has_classifier()) << model_kind_name(kind);
    if (kind != ModelKind::kDummy) {
      EXPECT_GE(p.stage_count(), 3u) << model_kind_name(kind);
    }
  }
  EXPECT_EQ(model_kind_name(ModelKind::kXgb), "XGB");
  EXPECT_EQ(model_kind_name(ModelKind::kNaiveBayesComplement), "NB-C");
}

TEST(ModelPipelines, Figure8StageOrders) {
  // XGB: FR->I->WoE; NN gets S, PCA, N on top.
  EXPECT_EQ(make_model_pipeline(ModelKind::kXgb).describe(), "FR->I->WoE->C(XGB)");
  EXPECT_EQ(make_model_pipeline(ModelKind::kNeuralNet).describe(),
            "FR->I->WoE->S->PCA->N->C(NN)");
  EXPECT_EQ(make_model_pipeline(ModelKind::kLinearSvm).describe(),
            "FR->I->WoE->S->N->C(LSVM)");
  EXPECT_EQ(make_model_pipeline(ModelKind::kDummy).describe(), "C(DUM)");
}

TEST(ModelPipelines, EveryKindFitsOnMixedData) {
  Dataset train = mixed_dataset(600, 9);
  for (const ModelKind kind : all_model_kinds()) {
    Pipeline p = make_model_pipeline(kind, 2);
    ASSERT_NO_THROW(p.fit(train)) << model_kind_name(kind);
    const double s = p.score(train.row(0));
    EXPECT_GE(s, 0.0);
    EXPECT_LE(s, 1.0);
  }
}

}  // namespace
}  // namespace scrubber::ml
