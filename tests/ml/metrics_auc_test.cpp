#include <gtest/gtest.h>

#include "ml/metrics.hpp"
#include "util/rng.hpp"

namespace scrubber::ml {
namespace {

TEST(RocAuc, PerfectSeparation) {
  const std::vector<int> truth{0, 0, 1, 1};
  const std::vector<double> scores{0.1, 0.2, 0.8, 0.9};
  EXPECT_DOUBLE_EQ(roc_auc(truth, scores), 1.0);
}

TEST(RocAuc, PerfectlyWrong) {
  const std::vector<int> truth{1, 1, 0, 0};
  const std::vector<double> scores{0.1, 0.2, 0.8, 0.9};
  EXPECT_DOUBLE_EQ(roc_auc(truth, scores), 0.0);
}

TEST(RocAuc, RandomScoresNearHalf) {
  util::Rng rng(1);
  std::vector<int> truth;
  std::vector<double> scores;
  for (int i = 0; i < 50000; ++i) {
    truth.push_back(rng.chance(0.3) ? 1 : 0);
    scores.push_back(rng.uniform());
  }
  EXPECT_NEAR(roc_auc(truth, scores), 0.5, 0.01);
}

TEST(RocAuc, TiesHandledAsHalf) {
  // All scores equal: AUC must be exactly 0.5 (tie-corrected ranks).
  const std::vector<int> truth{0, 1, 0, 1};
  const std::vector<double> scores{0.5, 0.5, 0.5, 0.5};
  EXPECT_DOUBLE_EQ(roc_auc(truth, scores), 0.5);
}

TEST(RocAuc, KnownSmallCase) {
  // positives: 0.8, 0.4; negatives: 0.6, 0.2.
  // Pairs: (0.8>0.6), (0.8>0.2), (0.4<0.6), (0.4>0.2) -> 3/4.
  const std::vector<int> truth{1, 1, 0, 0};
  const std::vector<double> scores{0.8, 0.4, 0.6, 0.2};
  EXPECT_DOUBLE_EQ(roc_auc(truth, scores), 0.75);
}

TEST(RocAuc, DegenerateClassesGiveHalf) {
  EXPECT_DOUBLE_EQ(roc_auc(std::vector<int>{1, 1}, std::vector<double>{0.1, 0.9}),
                   0.5);
  EXPECT_DOUBLE_EQ(roc_auc(std::vector<int>{0, 0}, std::vector<double>{0.1, 0.9}),
                   0.5);
}

TEST(RocAuc, SizeMismatchThrows) {
  EXPECT_THROW((void)roc_auc(std::vector<int>{1}, std::vector<double>{0.5, 0.6}),
               std::invalid_argument);
}

TEST(ThresholdSweep, MonotonePredictions) {
  const std::vector<int> truth{0, 0, 1, 1, 1};
  const std::vector<double> scores{0.1, 0.4, 0.45, 0.7, 0.9};
  const std::vector<double> thresholds{0.0, 0.5, 1.1};
  const auto sweep = threshold_sweep(truth, scores, thresholds);
  ASSERT_EQ(sweep.size(), 3u);
  // Threshold 0: everything positive.
  EXPECT_EQ(sweep[0].cm.tp, 3u);
  EXPECT_EQ(sweep[0].cm.fp, 2u);
  // Threshold 0.5: one positive lost.
  EXPECT_EQ(sweep[1].cm.tp, 2u);
  EXPECT_EQ(sweep[1].cm.fp, 0u);
  // Threshold above max score: nothing positive.
  EXPECT_EQ(sweep[2].cm.tp, 0u);
  EXPECT_EQ(sweep[2].cm.tn, 2u);
}

TEST(BestFbetaThreshold, PicksOperatingPoint) {
  // fp-heavy low thresholds should lose to a mid threshold under beta=0.5.
  util::Rng rng(2);
  std::vector<int> truth;
  std::vector<double> scores;
  for (int i = 0; i < 5000; ++i) {
    const int y = rng.chance(0.5) ? 1 : 0;
    truth.push_back(y);
    scores.push_back(y ? rng.uniform(0.3, 1.0) : rng.uniform(0.0, 0.7));
  }
  const std::vector<double> thresholds{0.05, 0.3, 0.5, 0.7, 0.95};
  const double best = best_fbeta_threshold(truth, scores, thresholds, 0.5);
  EXPECT_GE(best, 0.3);
  EXPECT_LE(best, 0.7);
}

}  // namespace
}  // namespace scrubber::ml
