// Thread-count bit-identity of the parallelized training kernels: the
// same data must produce byte-identical serialized models (GBT, decision
// tree) and exactly identical grid-search winners/scores no matter how
// many threads the training pool runs — the learning-plane determinism
// contract (DESIGN.md §9). Run under TSan to also prove the fan-out
// race-free.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "ml/dataset.hpp"
#include "ml/decision_tree.hpp"
#include "ml/gbt.hpp"
#include "ml/grid_search.hpp"
#include "ml/model_io.hpp"
#include "ml/pipeline.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace scrubber::ml {
namespace {

const unsigned kThreadCounts[] = {2, 3, 8};

/// Two noisy interleaved blobs plus missing cells — enough rows to clear
/// the decision tree's sequential-split cutoff so the parallel search
/// actually runs, and awkward enough that float order would show.
Dataset blobs(std::size_t n, std::uint64_t seed) {
  Dataset data({{"x0", ColumnKind::kNumeric},
                {"x1", ColumnKind::kNumeric},
                {"x2", ColumnKind::kNumeric}});
  util::Rng rng(seed);
  for (std::size_t i = 0; i < n; ++i) {
    const int y = rng.chance(0.5) ? 1 : 0;
    double row[3] = {rng.normal(y ? 0.8 : -0.8, 1.0),
                     rng.normal(y ? 0.8 : -0.8, 1.0),
                     rng.uniform(-3.0, 3.0)};
    if (rng.chance(0.05)) row[2] = kMissing;
    data.add_row(row, y);
  }
  return data;
}

TEST(TrainParallel, GbtSerializesByteIdenticalForAnyThreadCount) {
  const Dataset data = blobs(1500, 11);
  GbtParams params;
  params.n_estimators = 12;
  params.max_depth = 5;

  util::set_training_threads(1);
  GradientBoostedTrees reference(params);
  reference.fit(data);
  const std::string reference_bytes = gbt_to_json(reference).dump(2);

  for (const unsigned threads : kThreadCounts) {
    util::set_training_threads(threads);
    GradientBoostedTrees model(params);
    model.fit(data);
    EXPECT_EQ(gbt_to_json(model).dump(2), reference_bytes)
        << "thread count " << threads;
  }
  util::set_training_threads(0);
}

TEST(TrainParallel, DecisionTreeSerializesByteIdenticalForAnyThreadCount) {
  const Dataset data = blobs(1500, 12);  // > 512 rows: parallel split path
  DecisionTreeParams params;
  params.max_depth = 8;
  params.min_samples_leaf = 5;

  util::set_training_threads(1);
  DecisionTree reference(params);
  reference.fit(data);
  const std::string reference_bytes = dt_to_json(reference).dump(2);

  for (const unsigned threads : kThreadCounts) {
    util::set_training_threads(threads);
    DecisionTree model(params);
    model.fit(data);
    EXPECT_EQ(dt_to_json(model).dump(2), reference_bytes)
        << "thread count " << threads;
  }
  util::set_training_threads(0);
}

TEST(TrainParallel, GridSearchWinnerAndScoresIdenticalForAnyThreadCount) {
  const Dataset data = blobs(600, 13);
  const auto grid = param_grid(
      {{"max_depth", {2.0, 4.0}}, {"min_samples_leaf", {1.0, 20.0}}});
  const auto factory = [](const ParamPoint& point) {
    DecisionTreeParams params;
    params.max_depth = static_cast<std::size_t>(point.at("max_depth"));
    params.min_samples_leaf =
        static_cast<std::size_t>(point.at("min_samples_leaf"));
    Pipeline p;
    p.set_classifier(std::make_unique<DecisionTree>(params));
    return p;
  };
  // Fresh RNG per run: every thread count must consume the identical
  // fold-assignment stream.
  const auto search = [&] {
    util::Rng rng(21);
    return grid_search(data, grid, factory, 3, rng);
  };

  util::set_training_threads(1);
  const GridSearchResult reference = search();

  for (const unsigned threads : kThreadCounts) {
    util::set_training_threads(threads);
    const GridSearchResult result = search();
    EXPECT_EQ(result.best_params, reference.best_params)
        << "thread count " << threads;
    EXPECT_EQ(result.best_score, reference.best_score)  // exact bits
        << "thread count " << threads;
    ASSERT_EQ(result.all_scores.size(), reference.all_scores.size());
    for (std::size_t i = 0; i < result.all_scores.size(); ++i) {
      EXPECT_EQ(result.all_scores[i].first, reference.all_scores[i].first);
      EXPECT_EQ(result.all_scores[i].second, reference.all_scores[i].second)
          << "grid point " << i << ", thread count " << threads;
    }
  }
  util::set_training_threads(0);
}

}  // namespace
}  // namespace scrubber::ml
