#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "ml/decision_tree.hpp"
#include "ml/dummy.hpp"
#include "ml/gbt.hpp"
#include "ml/linear.hpp"
#include "ml/metrics.hpp"
#include "ml/naive_bayes.hpp"
#include "ml/neural_net.hpp"
#include "util/rng.hpp"

namespace scrubber::ml {
namespace {

Dataset gaussian_blobs(std::size_t n, double separation, std::uint64_t seed,
                       std::size_t extra_noise_cols = 0) {
  std::vector<ColumnInfo> cols{{"x0", ColumnKind::kNumeric},
                               {"x1", ColumnKind::kNumeric}};
  for (std::size_t j = 0; j < extra_noise_cols; ++j)
    cols.push_back({"noise" + std::to_string(j), ColumnKind::kNumeric});
  Dataset data(std::move(cols));
  util::Rng rng(seed);
  for (std::size_t i = 0; i < n; ++i) {
    const int y = rng.chance(0.5) ? 1 : 0;
    std::vector<double> row;
    row.push_back(rng.normal(y ? separation : -separation, 1.0));
    row.push_back(rng.normal(y ? separation : -separation, 1.0));
    for (std::size_t j = 0; j < extra_noise_cols; ++j)
      row.push_back(rng.normal());
    data.add_row(row, y);
  }
  return data;
}

double holdout_accuracy(Classifier& model, const Dataset& train,
                        const Dataset& test) {
  model.fit(train);
  std::size_t correct = 0;
  for (std::size_t i = 0; i < test.n_rows(); ++i)
    correct += static_cast<std::size_t>(model.predict(test.row(i)) == test.label(i));
  return static_cast<double>(correct) / static_cast<double>(test.n_rows());
}

// ---------------------------------------------------------------------------
// Parameterized sweep: every real classifier must separate Gaussian blobs.
// ---------------------------------------------------------------------------

using ClassifierFactory = std::function<std::unique_ptr<Classifier>()>;

struct ClassifierCase {
  std::string name;
  ClassifierFactory make;
  double min_accuracy;
};

class AllClassifiers : public ::testing::TestWithParam<ClassifierCase> {};

TEST_P(AllClassifiers, SeparatesGaussianBlobs) {
  const Dataset train = gaussian_blobs(1500, 2.0, 1);
  const Dataset test = gaussian_blobs(600, 2.0, 2);
  auto model = GetParam().make();
  EXPECT_GE(holdout_accuracy(*model, train, test), GetParam().min_accuracy)
      << model->name();
}

TEST_P(AllClassifiers, ScoresAreProbabilities) {
  const Dataset train = gaussian_blobs(400, 2.0, 3);
  auto model = GetParam().make();
  model->fit(train);
  for (std::size_t i = 0; i < 100; ++i) {
    const double s = model->score(train.row(i));
    EXPECT_GE(s, 0.0);
    EXPECT_LE(s, 1.0);
  }
}

TEST_P(AllClassifiers, CloneBehavesIdentically) {
  const Dataset train = gaussian_blobs(300, 2.0, 4);
  auto model = GetParam().make();
  model->fit(train);
  auto copy = model->clone();
  // DummyClassifier is stochastic by design; skip its score comparison.
  if (model->name() == "DUM") return;
  for (std::size_t i = 0; i < 50; ++i)
    EXPECT_DOUBLE_EQ(model->score(train.row(i)), copy->score(train.row(i)));
}

TEST_P(AllClassifiers, HandlesMissingValuesAtPredictTime) {
  const Dataset train = gaussian_blobs(300, 2.0, 5);
  auto model = GetParam().make();
  model->fit(train);
  const std::vector<double> row{kMissing, kMissing};
  const double s = model->score(row);
  EXPECT_TRUE(std::isfinite(s));
}

TEST_P(AllClassifiers, EmptyTrainingDataSafe) {
  Dataset empty({{"x0", ColumnKind::kNumeric}, {"x1", ColumnKind::kNumeric}});
  auto model = GetParam().make();
  EXPECT_NO_THROW(model->fit(empty));
  EXPECT_TRUE(std::isfinite(model->score(std::vector<double>{0.0, 0.0})));
}

INSTANTIATE_TEST_SUITE_P(
    Models, AllClassifiers,
    ::testing::Values(
        ClassifierCase{"XGB", [] { return std::make_unique<GradientBoostedTrees>(); }, 0.95},
        ClassifierCase{"DT", [] { return std::make_unique<DecisionTree>(); }, 0.93},
        ClassifierCase{"LSVM", [] { return std::make_unique<LinearSvm>(); }, 0.95},
        ClassifierCase{"NN", [] { return std::make_unique<NeuralNet>(); }, 0.95},
        ClassifierCase{"NB-G", [] { return std::make_unique<GaussianNaiveBayes>(); }, 0.95},
        ClassifierCase{"NB-B",
                       [] {
                         return std::make_unique<CountingNaiveBayes>(
                             CountNbKind::kBernoulli);
                       },
                       0.80}),
    [](const auto& param_info) {
      std::string name = param_info.param.name;
      for (auto& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

// ---------------------------------------------------------------------------
// Model-specific behavior.
// ---------------------------------------------------------------------------

TEST(DecisionTree, RespectsMaxDepth) {
  const Dataset train = gaussian_blobs(500, 1.0, 6);
  DecisionTreeParams params;
  params.max_depth = 3;
  DecisionTree tree(params);
  tree.fit(train);
  EXPECT_LE(tree.depth(), 3u);
}

TEST(DecisionTree, MinSamplesLeafLimitsGrowth) {
  const Dataset train = gaussian_blobs(500, 1.0, 6);
  DecisionTreeParams strict;
  strict.min_samples_leaf = 100;
  DecisionTree small(strict);
  small.fit(train);
  DecisionTree big;
  big.fit(train);
  EXPECT_LT(small.node_count(), big.node_count());
}

TEST(DecisionTree, CcpPruningShrinksTree) {
  const Dataset train = gaussian_blobs(500, 0.8, 7);
  DecisionTreeParams pruned_params;
  pruned_params.ccp_alpha = 0.01;
  DecisionTree pruned(pruned_params);
  pruned.fit(train);
  DecisionTree unpruned;
  unpruned.fit(train);
  EXPECT_LT(pruned.depth(), unpruned.depth());
}

TEST(DecisionTree, PureNodeIsLeaf) {
  Dataset data({{"x", ColumnKind::kNumeric}});
  for (int i = 0; i < 10; ++i) {
    const double row[1] = {static_cast<double>(i)};
    data.add_row(row, 1);  // all positive
  }
  DecisionTree tree;
  tree.fit(data);
  EXPECT_EQ(tree.node_count(), 1u);
  EXPECT_DOUBLE_EQ(tree.score(std::vector<double>{5.0}), 1.0);
}

TEST(Gbt, GainImportanceIdentifiesSignalFeature) {
  // Feature 0/1 carry all signal; noise columns carry none.
  const Dataset train = gaussian_blobs(2000, 2.0, 8, 4);
  GradientBoostedTrees gbt;
  gbt.fit(train);
  const auto importance = gbt.gain_importance();
  ASSERT_GE(importance.size(), 1u);
  EXPECT_LT(importance[0].feature, 2u);  // a signal column ranks first
  double signal_gain = 0.0, noise_gain = 0.0;
  for (const auto& g : importance) {
    (g.feature < 2 ? signal_gain : noise_gain) += g.total_gain;
  }
  EXPECT_GT(signal_gain, noise_gain * 10.0);
}

TEST(Gbt, MoreRoundsImproveTrainFit) {
  const Dataset train = gaussian_blobs(800, 0.7, 9);
  GbtParams weak_params;
  weak_params.n_estimators = 1;
  weak_params.max_depth = 2;
  GradientBoostedTrees weak(weak_params);
  GbtParams strong_params;
  strong_params.n_estimators = 30;
  strong_params.max_depth = 6;
  GradientBoostedTrees strong(strong_params);
  const double weak_acc = holdout_accuracy(weak, train, train);
  const double strong_acc = holdout_accuracy(strong, train, train);
  EXPECT_GT(strong_acc, weak_acc);
}

TEST(Gbt, BaseMarginMatchesClassPrior) {
  Dataset data({{"x", ColumnKind::kNumeric}});
  util::Rng rng(10);
  for (int i = 0; i < 1000; ++i) {
    const double row[1] = {rng.normal()};
    data.add_row(row, i < 250 ? 1 : 0);  // 25% positive, feature useless
  }
  GbtParams params;
  params.n_estimators = 0;  // prior only
  GradientBoostedTrees gbt(params);
  gbt.fit(data);
  const double expected = std::log(0.25 / 0.75);
  EXPECT_NEAR(gbt.base_margin(), expected, 1e-9);
  EXPECT_NEAR(gbt.score(std::vector<double>{0.0}), 0.25, 1e-9);
}

TEST(Gbt, RestoreReproducesScores) {
  const Dataset train = gaussian_blobs(500, 2.0, 11);
  GradientBoostedTrees gbt;
  gbt.fit(train);
  GradientBoostedTrees restored;
  std::vector<GradientBoostedTrees::Tree> trees = gbt.trees();
  restored.restore(std::move(trees), gbt.base_margin(), gbt.params(), {});
  for (std::size_t i = 0; i < 100; ++i)
    EXPECT_DOUBLE_EQ(gbt.score(train.row(i)), restored.score(train.row(i)));
}

TEST(Gbt, DeepTreesDoNotCorruptMemory) {
  // Regression test: node references must survive tree-vector reallocation.
  const Dataset train = gaussian_blobs(3000, 0.5, 12, 8);
  GbtParams params;
  params.max_depth = 24;
  params.n_estimators = 10;
  GradientBoostedTrees gbt(params);
  EXPECT_NO_THROW(gbt.fit(train));
  for (const auto& tree : gbt.trees()) {
    for (const auto& node : tree) {
      if (!node.is_leaf()) {
        ASSERT_GE(node.left, 0);
        ASSERT_LT(static_cast<std::size_t>(node.left), tree.size());
        ASSERT_LT(static_cast<std::size_t>(node.right), tree.size());
      }
    }
  }
}

TEST(LinearSvm, LearnsLinearBoundaryWeights) {
  const Dataset train = gaussian_blobs(2000, 2.0, 13);
  LinearSvm svm;
  svm.fit(train);
  // Both features discriminate positively.
  EXPECT_GT(svm.weights()[0], 0.0);
  EXPECT_GT(svm.weights()[1], 0.0);
  EXPECT_GT(svm.margin(std::vector<double>{3.0, 3.0}), 0.0);
  EXPECT_LT(svm.margin(std::vector<double>{-3.0, -3.0}), 0.0);
}

TEST(LinearSvm, BalancedClassWeightHelpsMinority) {
  // 95:5 imbalance; balanced weighting should recover minority recall.
  Dataset train({{"x0", ColumnKind::kNumeric}, {"x1", ColumnKind::kNumeric}});
  util::Rng rng(14);
  for (int i = 0; i < 4000; ++i) {
    const int y = rng.chance(0.05) ? 1 : 0;
    const double row[2] = {rng.normal(y ? 1.5 : -1.5, 1.0),
                           rng.normal(y ? 1.5 : -1.5, 1.0)};
    train.add_row(row, y);
  }
  LinearSvmParams balanced_params;
  balanced_params.balanced_class_weight = true;
  balanced_params.c = 1.0;
  LinearSvm balanced(balanced_params);
  balanced.fit(train);
  LinearSvmParams plain_params;
  plain_params.c = 1.0;
  LinearSvm plain(plain_params);
  plain.fit(train);

  auto recall = [&](const LinearSvm& model) {
    ConfusionMatrix cm;
    for (std::size_t i = 0; i < train.n_rows(); ++i)
      cm.add(train.label(i), model.predict(train.row(i)));
    return cm.tpr();
  };
  EXPECT_GE(recall(balanced), recall(plain));
}

TEST(LinearSvm, RestoreReproducesMargin) {
  const Dataset train = gaussian_blobs(500, 2.0, 15);
  LinearSvm svm;
  svm.fit(train);
  LinearSvm restored;
  restored.restore(svm.weights(), svm.bias());
  for (std::size_t i = 0; i < 50; ++i)
    EXPECT_DOUBLE_EQ(svm.margin(train.row(i)), restored.margin(train.row(i)));
}

TEST(GaussianNb, VarianceSmoothingPreventsDegeneracy) {
  // A feature constant within one class must not produce infinities.
  Dataset data({{"x", ColumnKind::kNumeric}});
  util::Rng rng(16);
  for (int i = 0; i < 100; ++i) {
    const double pos_row[1] = {5.0};  // zero variance in class 1
    data.add_row(pos_row, 1);
    const double neg_row[1] = {rng.normal()};
    data.add_row(neg_row, 0);
  }
  GaussianNaiveBayes nb(1e-9);
  nb.fit(data);
  EXPECT_TRUE(std::isfinite(nb.score(std::vector<double>{5.0})));
  EXPECT_GT(nb.score(std::vector<double>{5.0}), 0.5);
}

TEST(CountingNb, MultinomialUsesFrequencies) {
  // Class 1 rows are heavy in feature 0, class 0 rows in feature 1.
  Dataset data({{"a", ColumnKind::kNumeric}, {"b", ColumnKind::kNumeric}});
  for (int i = 0; i < 200; ++i) {
    const double pos_row[2] = {9.0, 1.0};
    data.add_row(pos_row, 1);
    const double neg_row[2] = {1.0, 9.0};
    data.add_row(neg_row, 0);
  }
  CountingNaiveBayes nb(CountNbKind::kMultinomial);
  nb.fit(data);
  EXPECT_GT(nb.score(std::vector<double>{8.0, 2.0}), 0.5);
  EXPECT_LT(nb.score(std::vector<double>{2.0, 8.0}), 0.5);
}

TEST(CountingNb, ComplementAgreesOnProportionData) {
  // Count-based NB needs classes that differ in feature *proportions*,
  // not just magnitude (multinomial likelihoods are scale-invariant).
  Dataset data({{"a", ColumnKind::kNumeric}, {"b", ColumnKind::kNumeric}});
  util::Rng rng(17);
  for (int i = 0; i < 500; ++i) {
    const double pos_row[2] = {7.0 + rng.uniform(), 2.0 + rng.uniform()};
    data.add_row(pos_row, 1);
    const double neg_row[2] = {2.0 + rng.uniform(), 7.0 + rng.uniform()};
    data.add_row(neg_row, 0);
  }
  CountingNaiveBayes nb(CountNbKind::kComplement);
  const double acc = holdout_accuracy(nb, data, data);
  EXPECT_GT(acc, 0.95);
}

TEST(CountingNb, BernoulliBinarizes) {
  Dataset data({{"a", ColumnKind::kNumeric}});
  for (int i = 0; i < 100; ++i) {
    const double pos_row[1] = {0.7};
    data.add_row(pos_row, 1);
    const double neg_row[1] = {0.0};
    data.add_row(neg_row, 0);
  }
  CountingNaiveBayes nb(CountNbKind::kBernoulli);
  nb.fit(data);
  // Any positive magnitude binarizes to 1.
  EXPECT_GT(nb.score(std::vector<double>{123.0}), 0.5);
  EXPECT_LT(nb.score(std::vector<double>{0.0}), 0.5);
}

TEST(NeuralNet, DropoutStillLearns) {
  const Dataset train = gaussian_blobs(1500, 2.0, 18);
  NeuralNetParams params;
  params.dropout = 0.3;
  NeuralNet nn(params);
  EXPECT_GE(holdout_accuracy(nn, train, train), 0.93);
}

TEST(Dummy, IsACoinToss) {
  DummyClassifier dummy(1);
  Dataset empty({{"x", ColumnKind::kNumeric}});
  dummy.fit(empty);
  int ones = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i)
    ones += dummy.predict(std::vector<double>{0.0});
  EXPECT_NEAR(static_cast<double>(ones) / n, 0.5, 0.03);
}

}  // namespace
}  // namespace scrubber::ml
