// Tests of whole-pipeline serialization (the deployable model file).

#include <gtest/gtest.h>

#include "ml/model_io.hpp"
#include "util/rng.hpp"

namespace scrubber::ml {
namespace {

Dataset mixed_dataset(std::size_t n, std::uint64_t seed) {
  Dataset data({{"num", ColumnKind::kNumeric},
                {"cat", ColumnKind::kCategorical},
                {"noise", ColumnKind::kNumeric}});
  util::Rng rng(seed);
  for (std::size_t i = 0; i < n; ++i) {
    const int y = rng.chance(0.5) ? 1 : 0;
    double num = rng.normal(y ? 1.0 : -1.0, 1.0);
    if (rng.chance(0.05)) num = kMissing;
    const double cat = y ? static_cast<double>(rng.below(15))
                         : static_cast<double>(8 + rng.below(15));
    const double row[3] = {num, cat, rng.normal()};
    data.add_row(row, y);
  }
  return data;
}

class PipelineIo : public ::testing::TestWithParam<ModelKind> {};

TEST_P(PipelineIo, RoundTripPreservesScores) {
  const Dataset train = mixed_dataset(800, 3);
  Pipeline pipeline = make_model_pipeline(GetParam(), 2);
  pipeline.fit(train);

  const std::string text = pipeline_to_json(pipeline, train.n_cols()).dump();
  Pipeline restored = pipeline_from_json(util::Json::parse(text));

  EXPECT_EQ(restored.describe(), pipeline.describe());
  if (GetParam() == ModelKind::kDummy) return;  // stochastic scores
  for (std::size_t i = 0; i < 100; ++i) {
    EXPECT_NEAR(pipeline.score(train.row(i)), restored.score(train.row(i)), 1e-12)
        << "row " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(SerializableModels, PipelineIo,
                         ::testing::Values(ModelKind::kXgb,
                                           ModelKind::kDecisionTree,
                                           ModelKind::kLinearSvm,
                                           ModelKind::kNeuralNet,
                                           ModelKind::kNaiveBayesGaussian,
                                           ModelKind::kDummy),
                         [](const auto& param_info) {
                           std::string name(model_kind_name(param_info.param));
                           for (auto& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

TEST(PipelineIoDetail, DtRoundTrip) {
  const Dataset train = mixed_dataset(500, 4);
  DecisionTree dt;
  dt.fit(train);
  const auto restored = dt_from_json(util::Json::parse(dt_to_json(dt).dump()));
  for (std::size_t i = 0; i < 50; ++i)
    EXPECT_DOUBLE_EQ(dt.score(train.row(i)), restored->score(train.row(i)));
}

TEST(PipelineIoDetail, NnRoundTrip) {
  const Dataset train = mixed_dataset(300, 5);
  NeuralNetParams params;
  params.epochs = 5;
  NeuralNet nn(params);
  nn.fit(train);
  const auto restored = nn_from_json(util::Json::parse(nn_to_json(nn).dump()));
  for (std::size_t i = 0; i < 50; ++i)
    EXPECT_NEAR(nn.score(train.row(i)), restored->score(train.row(i)), 1e-12);
}

TEST(PipelineIoDetail, NbgRoundTrip) {
  const Dataset train = mixed_dataset(300, 6);
  GaussianNaiveBayes nb;
  nb.fit(train);
  const auto restored = nbg_from_json(util::Json::parse(nbg_to_json(nb).dump()));
  for (std::size_t i = 0; i < 50; ++i)
    EXPECT_NEAR(nb.score(train.row(i)), restored->score(train.row(i)), 1e-12);
}

TEST(PipelineIoDetail, RejectsWrongDocumentType) {
  util::Json bogus;
  bogus.set("type", util::Json("gbt"));
  EXPECT_THROW(pipeline_from_json(bogus), util::JsonError);
}

TEST(PipelineIoDetail, RejectsUnknownStage) {
  util::Json doc;
  doc.set("type", util::Json("pipeline"));
  doc.set("columns", util::Json(std::uint64_t{2}));
  util::Json stage;
  stage.set("stage", util::Json("BOGUS"));
  doc.set("stages", util::Json(util::JsonArray{stage}));
  util::Json dum;
  dum.set("type", util::Json("dum"));
  doc.set("classifier", dum);
  EXPECT_THROW(pipeline_from_json(doc), util::JsonError);
}

TEST(PipelineIoDetail, MultinomialNbUnsupported) {
  const Dataset train = mixed_dataset(100, 7);
  Pipeline pipeline = make_model_pipeline(ModelKind::kNaiveBayesMultinomial);
  pipeline.fit(train);
  EXPECT_THROW(pipeline_to_json(pipeline, train.n_cols()), std::invalid_argument);
}

}  // namespace
}  // namespace scrubber::ml
