#include "ml/model_io.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace scrubber::ml {
namespace {

Dataset blobs(std::size_t n, std::uint64_t seed) {
  Dataset data({{"x0", ColumnKind::kNumeric}, {"x1", ColumnKind::kNumeric}});
  util::Rng rng(seed);
  for (std::size_t i = 0; i < n; ++i) {
    const int y = rng.chance(0.5) ? 1 : 0;
    const double row[2] = {rng.normal(y ? 2.0 : -2.0, 1.0), rng.normal()};
    data.add_row(row, y);
  }
  return data;
}

TEST(ModelIo, GbtRoundTripThroughJsonText) {
  const Dataset train = blobs(600, 1);
  GradientBoostedTrees gbt;
  gbt.fit(train);
  // Serialize to text and back (full parse round trip, not just the tree).
  const std::string text = gbt_to_json(gbt).dump();
  const auto restored = gbt_from_json(util::Json::parse(text));
  for (std::size_t i = 0; i < 100; ++i)
    EXPECT_DOUBLE_EQ(gbt.score(train.row(i)), restored->score(train.row(i)));
  EXPECT_EQ(restored->tree_count(), gbt.tree_count());
}

TEST(ModelIo, GbtPreservesImportance) {
  const Dataset train = blobs(600, 2);
  GradientBoostedTrees gbt;
  gbt.fit(train);
  const auto restored = gbt_from_json(gbt_to_json(gbt));
  const auto original_importance = gbt.gain_importance();
  const auto restored_importance = restored->gain_importance();
  ASSERT_EQ(original_importance.size(), restored_importance.size());
  for (std::size_t i = 0; i < original_importance.size(); ++i) {
    EXPECT_EQ(original_importance[i].feature, restored_importance[i].feature);
    EXPECT_NEAR(original_importance[i].total_gain,
                restored_importance[i].total_gain, 1e-6);
  }
}

TEST(ModelIo, GbtRejectsWrongType) {
  util::Json bogus;
  bogus.set("type", util::Json("lsvm"));
  EXPECT_THROW(gbt_from_json(bogus), util::JsonError);
}

TEST(ModelIo, LsvmRoundTrip) {
  const Dataset train = blobs(600, 3);
  LinearSvm svm;
  svm.fit(train);
  const std::string text = lsvm_to_json(svm).dump();
  const auto restored = lsvm_from_json(util::Json::parse(text));
  for (std::size_t i = 0; i < 100; ++i)
    EXPECT_NEAR(svm.margin(train.row(i)), restored->margin(train.row(i)), 1e-9);
}

TEST(ModelIo, LsvmRejectsWrongType) {
  util::Json bogus;
  bogus.set("type", util::Json("gbt"));
  EXPECT_THROW(lsvm_from_json(bogus), util::JsonError);
}

TEST(ModelIo, WoeRoundTrip) {
  Dataset data({{"num", ColumnKind::kNumeric}, {"cat", ColumnKind::kCategorical}});
  util::Rng rng(4);
  for (int i = 0; i < 200; ++i) {
    const int y = i % 2;
    const double row[2] = {rng.normal(),
                           static_cast<double>(y ? rng.below(5) : 5 + rng.below(5))};
    data.add_row(row, y);
  }
  WoeEncoder encoder(0);
  encoder.fit(data);
  const std::string text = woe_to_json(encoder, data.n_cols()).dump();
  const auto restored = woe_from_json(util::Json::parse(text));
  EXPECT_FALSE(restored->encodes(0));
  ASSERT_TRUE(restored->encodes(1));
  for (std::int64_t v = 0; v < 12; ++v)
    EXPECT_NEAR(encoder.column(1).encode(v), restored->column(1).encode(v), 1e-9);
}

TEST(ModelIo, WoeSaveLoadSaveIsByteIdentical) {
  // WoE tables live in insertion-ordered FlatHash storage and
  // woe_from_json re-inserts in serialized order, so save -> load -> save
  // reproduces the exact bytes — model artifacts stay diffable across
  // continuous-learning rounds.
  Dataset data({{"cat_a", ColumnKind::kCategorical},
                {"num", ColumnKind::kNumeric},
                {"cat_b", ColumnKind::kCategorical}});
  util::Rng rng(5);
  for (int i = 0; i < 300; ++i) {
    const int y = rng.chance(0.5) ? 1 : 0;
    const double row[3] = {static_cast<double>(rng.below(40)), rng.normal(),
                           static_cast<double>(rng.below(1000))};
    data.add_row(row, y);
  }
  WoeEncoder encoder(0);
  encoder.fit(data);
  const std::string first = woe_to_json(encoder, data.n_cols()).dump();
  const auto restored = woe_from_json(util::Json::parse(first));
  const std::string second = woe_to_json(*restored, data.n_cols()).dump();
  EXPECT_EQ(first, second);
  const auto again = woe_from_json(util::Json::parse(second));
  EXPECT_EQ(woe_to_json(*again, data.n_cols()).dump(), second);
}

TEST(ModelIo, WoeRejectsOutOfRangeIndex) {
  util::Json bogus;
  bogus.set("type", util::Json("woe"));
  bogus.set("columns", util::Json(std::uint64_t{1}));
  util::JsonArray tables;
  util::Json entry;
  entry.set("index", util::Json(std::uint64_t{5}));
  entry.set("table", util::Json(util::JsonArray{}));
  tables.push_back(std::move(entry));
  bogus.set("tables", util::Json(std::move(tables)));
  EXPECT_THROW(woe_from_json(bogus), util::JsonError);
}

}  // namespace
}  // namespace scrubber::ml
