// Continuous-learning WoE: decay ("forgetting", §6.3) and in-place update.

#include <gtest/gtest.h>

#include "ml/woe.hpp"

namespace scrubber::ml {
namespace {

TEST(WoeDecay, ForgettingFlipsARepurposedValue) {
  // A value observed only in the blackhole class, later repurposed as a
  // legitimate host: with decay its WoE follows the new behavior.
  WoeColumn column;
  for (int i = 0; i < 100; ++i) column.observe(7, 1);
  for (int i = 0; i < 100; ++i) column.observe(8, 0);
  column.finalize();
  EXPECT_GT(column.encode(7), 1.0);

  // Three rounds of heavy decay; value 7 now appears benign while attack
  // traffic continues on a different value (9).
  for (int round = 0; round < 3; ++round) {
    column.decay(0.3);
    for (int i = 0; i < 100; ++i) column.observe(7, 0);
    for (int i = 0; i < 100; ++i) column.observe(8, 0);
    for (int i = 0; i < 100; ++i) column.observe(9, 1);
    column.finalize();
  }
  EXPECT_LT(column.encode(7), 0.0);
  EXPECT_GT(column.encode(9), 0.0);
}

TEST(WoeDecay, NoDecayAccumulatesForever) {
  WoeColumn with_decay, without_decay;
  for (int i = 0; i < 50; ++i) {
    with_decay.observe(1, 1);
    without_decay.observe(1, 1);
    with_decay.observe(2, 0);
    without_decay.observe(2, 0);
  }
  with_decay.decay(1.0);  // keep = 1 must be a no-op
  with_decay.finalize();
  without_decay.finalize();
  EXPECT_DOUBLE_EQ(with_decay.encode(1), without_decay.encode(1));
}

TEST(WoeDecay, TinyCountsAreDropped) {
  WoeColumn column;
  column.observe(5, 1);
  column.observe(6, 0);
  for (int i = 0; i < 10; ++i) column.decay(0.3);  // 0.3^10 ~ 6e-6 < 0.01
  column.finalize();
  // Both values fully forgotten: neutral again.
  EXPECT_DOUBLE_EQ(column.encode(5), 0.0);
  EXPECT_DOUBLE_EQ(column.encode(6), 0.0);
}

Dataset categorical_rows(std::int64_t value, int label, std::size_t n) {
  Dataset data({{"cat", ColumnKind::kCategorical}});
  for (std::size_t i = 0; i < n; ++i) {
    const double row[1] = {static_cast<double>(value)};
    data.add_row(row, label);
  }
  return data;
}

TEST(WoeEncoderUpdate, IncrementalObservationsShiftTables) {
  Dataset initial = categorical_rows(100, 1, 20);
  initial.append(categorical_rows(200, 0, 20));
  WoeEncoder encoder(0);
  encoder.fit(initial);
  const double before = encoder.column(0).encode(100);
  EXPECT_GT(before, 0.0);

  // New week of data: value 100 now appears benign.
  Dataset update_batch = categorical_rows(100, 0, 200);
  update_batch.append(categorical_rows(300, 1, 200));
  encoder.update(update_batch, /*keep=*/0.5);
  EXPECT_LT(encoder.column(0).encode(100), before);
  EXPECT_GT(encoder.column(0).encode(300), 0.0);  // new value learned
}

TEST(WoeEncoderUpdate, SchemaMismatchThrows) {
  WoeEncoder encoder(0);
  encoder.fit(categorical_rows(1, 1, 4));
  Dataset wrong({{"a", ColumnKind::kCategorical}, {"b", ColumnKind::kNumeric}});
  const double row[2] = {1.0, 2.0};
  wrong.add_row(row, 1);
  EXPECT_THROW(encoder.update(wrong), std::invalid_argument);
}

TEST(WoeEncoderUpdate, UpdateWithoutDecayIsPureAccumulation) {
  Dataset first = categorical_rows(1, 1, 10);
  first.append(categorical_rows(2, 0, 10));
  Dataset second = categorical_rows(1, 1, 10);
  second.append(categorical_rows(2, 0, 10));

  WoeEncoder incremental(0);
  incremental.fit(first);
  incremental.update(second, 1.0);

  Dataset merged = first;
  merged.append(second);
  WoeEncoder batch(0);
  batch.fit(merged);

  EXPECT_NEAR(incremental.column(0).encode(1), batch.column(0).encode(1), 1e-12);
  EXPECT_NEAR(incremental.column(0).encode(2), batch.column(0).encode(2), 1e-12);
}

}  // namespace
}  // namespace scrubber::ml
