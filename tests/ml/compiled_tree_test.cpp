// Property tests for the flattened (compiled) tree inference path: for
// random tree/forest topologies and adversarial rows (NaNs, values exactly
// on split thresholds, out-of-range feature indices), the batch kernel must
// be bit-identical to the per-node scalar walk. This is the oracle that
// lets LiveDetector and the tag predictor route through predict_batch
// without any behavioural review: identical bits, faster layout.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <iterator>
#include <vector>

#include "ml/compiled_tree.hpp"
#include "ml/decision_tree.hpp"
#include "ml/gbt.hpp"
#include "ml/pipeline.hpp"
#include "util/rng.hpp"

namespace scrubber::ml {
namespace {

// Thresholds and row values share one discrete pool so that `v <= t`
// regularly lands exactly on the boundary — the case a sloppy kernel
// rewrite (e.g. flipping to `<`) would get wrong. -1.0 matters doubly:
// it is also the substitute value for missing/out-of-range features.
constexpr double kPool[] = {-3.7, -1.0, 0.0, 0.5, 1.0, 2.5, 1e9};

double random_cell(util::Rng& rng) {
  if (rng.chance(0.15)) return kMissing;  // quiet NaN
  return kPool[rng.below(std::size(kPool))];
}

/// Grows a random topology into `nodes`, returning the subtree root index.
/// Features occasionally index one past the row width to exercise the
/// out-of-range → -1.0 substitution.
template <typename Node>
std::int32_t grow(std::vector<Node>& nodes, util::Rng& rng,
                  std::uint32_t width, int depth) {
  const std::size_t index = nodes.size();
  nodes.emplace_back();
  if (depth == 0 || rng.chance(0.3)) {
    nodes[index].value = rng.uniform(-2.0, 2.0);
    return static_cast<std::int32_t>(index);
  }
  nodes[index].feature = static_cast<std::uint32_t>(rng.below(width + 1));
  nodes[index].threshold = kPool[rng.below(std::size(kPool))];
  const std::int32_t left = grow(nodes, rng, width, depth - 1);
  const std::int32_t right = grow(nodes, rng, width, depth - 1);
  nodes[index].left = left;
  nodes[index].right = right;
  return static_cast<std::int32_t>(index);
}

Dataset random_rows(util::Rng& rng, std::uint32_t width, std::size_t n) {
  std::vector<ColumnInfo> cols;
  for (std::uint32_t j = 0; j < width; ++j) {
    cols.push_back({"f" + std::to_string(j), ColumnKind::kNumeric});
  }
  Dataset data(std::move(cols));
  std::vector<double> row(width);
  for (std::size_t i = 0; i < n; ++i) {
    for (auto& cell : row) cell = random_cell(rng);
    data.add_row(row, 0);
  }
  return data;
}

TEST(CompiledTree, BatchBitIdenticalToScalarOnRandomTrees) {
  util::Rng rng(0xC0117EE5);
  for (int trial = 0; trial < 50; ++trial) {
    const auto width = static_cast<std::uint32_t>(1 + rng.below(6));
    const auto depth = static_cast<int>(1 + rng.below(8));
    std::vector<DecisionTree::Node> nodes;
    grow(nodes, rng, width, depth);
    DecisionTree tree;
    tree.restore(std::move(nodes));

    // Row counts around the block size (16) hit full blocks, the ragged
    // tail, and the empty case over the course of the trials.
    const Dataset rows = random_rows(rng, width, rng.below(40));
    std::vector<double> batch(rows.n_rows());
    tree.score_batch(rows, batch);
    for (std::size_t i = 0; i < rows.n_rows(); ++i) {
      const double scalar = tree.score(rows.row(i));
      EXPECT_EQ(scalar, batch[i]) << "trial " << trial << " row " << i;
      EXPECT_EQ(scalar, tree.compiled().predict(rows.row(i)))
          << "trial " << trial << " row " << i;
    }
  }
}

TEST(CompiledTree, EmptyTreeScoresHalfEverywhere) {
  DecisionTree tree;
  tree.restore({});
  util::Rng rng(7);
  const Dataset rows = random_rows(rng, 3, 17);
  std::vector<double> batch(rows.n_rows());
  tree.score_batch(rows, batch);
  for (std::size_t i = 0; i < rows.n_rows(); ++i) {
    EXPECT_EQ(tree.score(rows.row(i)), 0.5);
    EXPECT_EQ(batch[i], 0.5);
  }
}

TEST(CompiledForest, BatchBitIdenticalToScalarOnRandomForests) {
  util::Rng rng(0xF05E57);
  for (int trial = 0; trial < 30; ++trial) {
    const auto width = static_cast<std::uint32_t>(1 + rng.below(5));
    std::vector<GradientBoostedTrees::Tree> trees(1 + rng.below(8));
    for (auto& tree : trees) {
      grow(tree, rng, width, static_cast<int>(1 + rng.below(6)));
    }
    GradientBoostedTrees model;
    model.restore(std::move(trees), rng.uniform(-1.0, 1.0), GbtParams{}, {});

    const Dataset rows = random_rows(rng, width, rng.below(40));
    std::vector<double> batch(rows.n_rows());
    model.score_batch(rows, batch);
    for (std::size_t i = 0; i < rows.n_rows(); ++i) {
      const double scalar = model.score(rows.row(i));
      EXPECT_EQ(scalar, batch[i]) << "trial " << trial << " row " << i;
      EXPECT_EQ(model.margin(rows.row(i)),
                model.compiled().margin(rows.row(i)))
          << "trial " << trial << " row " << i;
    }
  }
}

TEST(CompiledForest, TrainedModelsBatchIdentical) {
  // End-to-end: models trained by the real fit() (including ccp pruning on
  // the DT side, which orphans nodes the flattener must drop) agree with
  // their compiled form on rows with missing values.
  std::vector<ColumnInfo> cols{{"x0", ColumnKind::kNumeric},
                               {"x1", ColumnKind::kNumeric},
                               {"x2", ColumnKind::kNumeric}};
  Dataset train(cols);
  util::Rng rng(42);
  std::vector<double> row(3);
  for (std::size_t i = 0; i < 400; ++i) {
    const int y = rng.chance(0.5) ? 1 : 0;
    for (auto& cell : row) cell = rng.normal(y ? 1.0 : -1.0, 1.0);
    train.add_row(row, y);
  }
  const Dataset test = random_rows(rng, 3, 97);

  DecisionTree dt(DecisionTreeParams{.max_depth = 6, .ccp_alpha = 0.001});
  dt.fit(train);
  GradientBoostedTrees gbt(GbtParams{.n_estimators = 8, .max_depth = 4});
  gbt.fit(train);

  std::vector<double> dt_batch(test.n_rows()), gbt_batch(test.n_rows());
  dt.score_batch(test, dt_batch);
  gbt.score_batch(test, gbt_batch);
  for (std::size_t i = 0; i < test.n_rows(); ++i) {
    EXPECT_EQ(dt.score(test.row(i)), dt_batch[i]) << "row " << i;
    EXPECT_EQ(gbt.score(test.row(i)), gbt_batch[i]) << "row " << i;
  }
}

TEST(Pipeline, ScoreAllBitIdenticalToPerRowScore) {
  std::vector<ColumnInfo> cols{{"x0", ColumnKind::kNumeric},
                               {"x1", ColumnKind::kNumeric},
                               {"port", ColumnKind::kCategorical}};
  Dataset train(cols);
  util::Rng rng(0xA11);
  std::vector<double> row(3);
  for (std::size_t i = 0; i < 300; ++i) {
    const int y = rng.chance(0.5) ? 1 : 0;
    row[0] = rng.normal(y ? 1.0 : -1.0, 1.0);
    row[1] = rng.chance(0.1) ? kMissing : rng.normal(y ? 1.0 : -1.0, 1.0);
    row[2] = static_cast<double>(rng.below(5));
    train.add_row(row, y);
  }

  Pipeline pipeline = make_model_pipeline(ModelKind::kXgb);
  pipeline.fit(train);

  Dataset test(cols);
  for (std::size_t i = 0; i < 111; ++i) {
    row[0] = random_cell(rng);
    row[1] = random_cell(rng);
    row[2] = static_cast<double>(rng.below(8));  // includes unseen categories
    test.add_row(row, 0);
  }
  const std::vector<double> all = pipeline.score_all(test);
  const std::vector<int> predictions = pipeline.predict_all(test);
  ASSERT_EQ(all.size(), test.n_rows());
  for (std::size_t i = 0; i < test.n_rows(); ++i) {
    EXPECT_EQ(pipeline.score(test.row(i)), all[i]) << "row " << i;
    EXPECT_EQ(pipeline.predict(test.row(i)), predictions[i]) << "row " << i;
  }
}

}  // namespace
}  // namespace scrubber::ml
