#include "ml/preprocess.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace scrubber::ml {
namespace {

Dataset numeric_dataset(std::vector<std::vector<double>> rows) {
  std::vector<ColumnInfo> cols;
  for (std::size_t j = 0; j < rows.at(0).size(); ++j)
    cols.push_back({"c" + std::to_string(j), ColumnKind::kNumeric});
  Dataset data(std::move(cols));
  for (const auto& row : rows) data.add_row(row, 0);
  return data;
}

TEST(Imputer, ReplacesMissingWithFill) {
  const Imputer imputer(-1.0);
  std::vector<double> row{1.0, kMissing, 3.0};
  imputer.apply(row);
  EXPECT_DOUBLE_EQ(row[0], 1.0);
  EXPECT_DOUBLE_EQ(row[1], -1.0);
  EXPECT_DOUBLE_EQ(row[2], 3.0);
}

TEST(Imputer, CustomFillValue) {
  const Imputer imputer(0.0);
  std::vector<double> row{kMissing};
  imputer.apply(row);
  EXPECT_DOUBLE_EQ(row[0], 0.0);
}

TEST(Standardizer, ZeroMeanUnitVariance) {
  Dataset data = numeric_dataset({{1.0, 10.0}, {2.0, 20.0}, {3.0, 30.0}});
  Standardizer s;
  s.fit(data);
  Dataset transformed = s.apply_to_dataset(data);
  for (std::size_t j = 0; j < 2; ++j) {
    double mean = 0.0, var = 0.0;
    for (std::size_t i = 0; i < 3; ++i) mean += transformed.at(i, j);
    mean /= 3.0;
    for (std::size_t i = 0; i < 3; ++i) {
      const double d = transformed.at(i, j) - mean;
      var += d * d;
    }
    var /= 3.0;
    EXPECT_NEAR(mean, 0.0, 1e-12);
    EXPECT_NEAR(var, 1.0, 1e-12);
  }
}

TEST(Standardizer, ConstantColumnSafe) {
  Dataset data = numeric_dataset({{5.0}, {5.0}, {5.0}});
  Standardizer s;
  s.fit(data);
  std::vector<double> row{5.0};
  s.apply(row);
  EXPECT_DOUBLE_EQ(row[0], 0.0);  // no division by zero
}

TEST(Standardizer, SkipsMissing) {
  Dataset data = numeric_dataset({{1.0}, {kMissing}, {3.0}});
  Standardizer s;
  s.fit(data);
  EXPECT_DOUBLE_EQ(s.means()[0], 2.0);  // missing excluded from the mean
  std::vector<double> row{kMissing};
  s.apply(row);
  EXPECT_TRUE(is_missing(row[0]));  // missing passes through
}

TEST(MinMaxNormalizer, MapsToUnitInterval) {
  Dataset data = numeric_dataset({{2.0}, {4.0}, {6.0}});
  MinMaxNormalizer n;
  n.fit(data);
  std::vector<double> row{2.0};
  n.apply(row);
  EXPECT_DOUBLE_EQ(row[0], 0.0);
  row[0] = 6.0;
  n.apply(row);
  EXPECT_DOUBLE_EQ(row[0], 1.0);
  row[0] = 4.0;
  n.apply(row);
  EXPECT_DOUBLE_EQ(row[0], 0.5);
}

TEST(MinMaxNormalizer, OutOfRangeExtrapolates) {
  Dataset data = numeric_dataset({{0.0}, {10.0}});
  MinMaxNormalizer n;
  n.fit(data);
  std::vector<double> row{20.0};
  n.apply(row);
  EXPECT_DOUBLE_EQ(row[0], 2.0);  // linear map, unclamped
}

TEST(MinMaxNormalizer, ConstantColumnSafe) {
  Dataset data = numeric_dataset({{7.0}, {7.0}});
  MinMaxNormalizer n;
  n.fit(data);
  std::vector<double> row{7.0};
  n.apply(row);
  EXPECT_DOUBLE_EQ(row[0], 0.0);
}

TEST(FeatureReducer, ZeroesConstantColumns) {
  Dataset data = numeric_dataset({{1.0, 5.0}, {2.0, 5.0}, {3.0, 5.0}});
  FeatureReducer fr;
  fr.fit(data);
  ASSERT_EQ(fr.dropped().size(), 1u);
  EXPECT_EQ(fr.dropped()[0], 1u);
  std::vector<double> row{9.0, 9.0};
  fr.apply(row);
  EXPECT_DOUBLE_EQ(row[0], 9.0);
  EXPECT_DOUBLE_EQ(row[1], 0.0);
}

TEST(FeatureReducer, AllMissingColumnIsConstant) {
  Dataset data = numeric_dataset({{1.0, kMissing}, {2.0, kMissing}});
  FeatureReducer fr;
  fr.fit(data);
  EXPECT_EQ(fr.dropped().size(), 1u);
}

TEST(FeatureReducer, MixedMissingNotConstant) {
  Dataset data = numeric_dataset({{1.0, kMissing}, {2.0, 3.0}, {2.0, 4.0}});
  FeatureReducer fr;
  fr.fit(data);
  EXPECT_TRUE(fr.dropped().empty());
}

TEST(Transformers, CloneIsIndependent) {
  Dataset data = numeric_dataset({{1.0}, {3.0}});
  Standardizer s;
  s.fit(data);
  auto copy = s.clone();
  std::vector<double> a{1.0}, b{1.0};
  s.apply(a);
  copy->apply(b);
  EXPECT_DOUBLE_EQ(a[0], b[0]);
  EXPECT_EQ(copy->name(), "S");
}

TEST(Transformers, DefaultFitTransformEqualsFitPlusApply) {
  Dataset data = numeric_dataset({{2.0}, {4.0}});
  MinMaxNormalizer a, b;
  const Dataset via_fit_transform = a.fit_transform(data);
  b.fit(data);
  const Dataset via_apply = b.apply_to_dataset(data);
  for (std::size_t i = 0; i < 2; ++i)
    EXPECT_DOUBLE_EQ(via_fit_transform.at(i, 0), via_apply.at(i, 0));
}

}  // namespace
}  // namespace scrubber::ml
