#include "ml/dataset.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace scrubber::ml {
namespace {

Dataset two_column_dataset(std::size_t rows) {
  Dataset data({{"x", ColumnKind::kNumeric}, {"c", ColumnKind::kCategorical}});
  for (std::size_t i = 0; i < rows; ++i) {
    const double row[2] = {static_cast<double>(i), static_cast<double>(i % 3)};
    data.add_row(row, static_cast<int>(i % 2));
  }
  return data;
}

TEST(Dataset, AddRowAndAccess) {
  Dataset data = two_column_dataset(5);
  EXPECT_EQ(data.n_rows(), 5u);
  EXPECT_EQ(data.n_cols(), 2u);
  EXPECT_DOUBLE_EQ(data.at(3, 0), 3.0);
  EXPECT_DOUBLE_EQ(data.row(4)[1], 1.0);
  EXPECT_EQ(data.label(1), 1);
}

TEST(Dataset, AddRowWrongWidthThrows) {
  Dataset data = two_column_dataset(1);
  const double bad[3] = {1.0, 2.0, 3.0};
  EXPECT_THROW(data.add_row(bad, 0), std::invalid_argument);
}

TEST(Dataset, ColumnIndexLookup) {
  const Dataset data = two_column_dataset(1);
  EXPECT_EQ(data.column_index("x"), 0u);
  EXPECT_EQ(data.column_index("c"), 1u);
  EXPECT_THROW((void)data.column_index("missing"), std::out_of_range);
}

TEST(Dataset, PositiveCount) {
  const Dataset data = two_column_dataset(10);
  EXPECT_EQ(data.positive_count(), 5u);
}

TEST(Dataset, MissingSentinel) {
  EXPECT_TRUE(is_missing(kMissing));
  EXPECT_FALSE(is_missing(0.0));
  EXPECT_FALSE(is_missing(-1.0));
}

TEST(Dataset, SubsetPreservesOrderAndLabels) {
  const Dataset data = two_column_dataset(10);
  const std::vector<std::size_t> idx{7, 2, 9};
  const Dataset sub = data.subset(idx);
  EXPECT_EQ(sub.n_rows(), 3u);
  EXPECT_DOUBLE_EQ(sub.at(0, 0), 7.0);
  EXPECT_DOUBLE_EQ(sub.at(1, 0), 2.0);
  EXPECT_EQ(sub.label(2), 1);
}

TEST(Dataset, SelectColumns) {
  const Dataset data = two_column_dataset(4);
  const std::vector<std::size_t> cols{1};
  const Dataset sel = data.select_columns(cols);
  EXPECT_EQ(sel.n_cols(), 1u);
  EXPECT_EQ(sel.column(0).name, "c");
  EXPECT_EQ(sel.column(0).kind, ColumnKind::kCategorical);
  EXPECT_DOUBLE_EQ(sel.at(2, 0), 2.0);
  EXPECT_EQ(sel.labels(), data.labels());
}

TEST(Dataset, SplitIndicesPartition) {
  const Dataset data = two_column_dataset(99);
  util::Rng rng(1);
  const auto [train, test] = data.split_indices(2.0 / 3.0, rng);
  EXPECT_EQ(train.size(), 66u);
  EXPECT_EQ(test.size(), 33u);
  std::vector<bool> seen(99, false);
  for (const auto i : train) seen[i] = true;
  for (const auto i : test) {
    EXPECT_FALSE(seen[i]);  // disjoint
    seen[i] = true;
  }
  for (const bool s : seen) EXPECT_TRUE(s);  // exhaustive
}

TEST(Dataset, StratifiedFoldsBalanceClasses) {
  Dataset data({{"x", ColumnKind::kNumeric}});
  // 30 positives, 90 negatives.
  for (int i = 0; i < 120; ++i) {
    const double row[1] = {static_cast<double>(i)};
    data.add_row(row, i < 30 ? 1 : 0);
  }
  util::Rng rng(2);
  const auto folds = data.stratified_folds(3, rng);
  ASSERT_EQ(folds.size(), 3u);
  for (const auto& fold : folds) {
    EXPECT_EQ(fold.size(), 40u);
    std::size_t pos = 0;
    for (const auto i : fold) pos += static_cast<std::size_t>(data.label(i) == 1);
    EXPECT_EQ(pos, 10u);  // exact class balance per fold
  }
}

TEST(Dataset, StratifiedFoldsZeroThrows) {
  const Dataset data = two_column_dataset(4);
  util::Rng rng(2);
  EXPECT_THROW(data.stratified_folds(0, rng), std::invalid_argument);
}

TEST(Dataset, AppendRequiresSameSchema) {
  Dataset a = two_column_dataset(3);
  const Dataset b = two_column_dataset(2);
  a.append(b);
  EXPECT_EQ(a.n_rows(), 5u);
  Dataset different(std::vector<ColumnInfo>{{"z", ColumnKind::kNumeric}});
  EXPECT_THROW(a.append(different), std::invalid_argument);
}

TEST(Dataset, SetLabels) {
  Dataset data = two_column_dataset(3);
  data.set_labels({1, 1, 1});
  EXPECT_EQ(data.positive_count(), 3u);
  EXPECT_THROW(data.set_labels({1}), std::invalid_argument);
}

TEST(Dataset, MutableRowWrites) {
  Dataset data = two_column_dataset(2);
  data.row(0)[0] = 42.0;
  EXPECT_DOUBLE_EQ(data.at(0, 0), 42.0);
}

}  // namespace
}  // namespace scrubber::ml
