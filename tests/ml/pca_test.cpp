#include "ml/pca.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.hpp"

namespace scrubber::ml {
namespace {

Dataset numeric_dataset(std::size_t cols) {
  std::vector<ColumnInfo> infos;
  for (std::size_t j = 0; j < cols; ++j)
    infos.push_back({"c" + std::to_string(j), ColumnKind::kNumeric});
  return Dataset(std::move(infos));
}

TEST(Jacobi, DiagonalMatrix) {
  std::vector<double> m{3.0, 0.0, 0.0, 1.0};
  std::vector<double> vectors;
  const auto values = jacobi_eigen_symmetric(m, 2, vectors);
  ASSERT_EQ(values.size(), 2u);
  const double hi = std::max(values[0], values[1]);
  const double lo = std::min(values[0], values[1]);
  EXPECT_NEAR(hi, 3.0, 1e-10);
  EXPECT_NEAR(lo, 1.0, 1e-10);
}

TEST(Jacobi, KnownEigenvalues) {
  // [[2,1],[1,2]] has eigenvalues 3 and 1.
  std::vector<double> m{2.0, 1.0, 1.0, 2.0};
  std::vector<double> vectors;
  const auto values = jacobi_eigen_symmetric(m, 2, vectors);
  const double hi = std::max(values[0], values[1]);
  const double lo = std::min(values[0], values[1]);
  EXPECT_NEAR(hi, 3.0, 1e-10);
  EXPECT_NEAR(lo, 1.0, 1e-10);
}

TEST(Jacobi, EigenvectorsOrthonormal) {
  util::Rng rng(3);
  const std::size_t n = 8;
  // Random symmetric matrix.
  std::vector<double> m(n * n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i; j < n; ++j) {
      const double v = rng.normal();
      m[i * n + j] = v;
      m[j * n + i] = v;
    }
  }
  std::vector<double> vectors;
  (void)jacobi_eigen_symmetric(m, n, vectors);
  for (std::size_t a = 0; a < n; ++a) {
    for (std::size_t b = 0; b < n; ++b) {
      double dot = 0.0;
      for (std::size_t k = 0; k < n; ++k)
        dot += vectors[k * n + a] * vectors[k * n + b];
      EXPECT_NEAR(dot, a == b ? 1.0 : 0.0, 1e-8);
    }
  }
}

TEST(Jacobi, SizeMismatchThrows) {
  std::vector<double> m(3, 0.0);
  std::vector<double> vectors;
  EXPECT_THROW(jacobi_eigen_symmetric(m, 2, vectors), std::invalid_argument);
}

TEST(Pca, RecoversDominantDirection) {
  // Data lies along (1,1)/sqrt(2) with small orthogonal noise.
  util::Rng rng(5);
  Dataset data = numeric_dataset(2);
  for (int i = 0; i < 2000; ++i) {
    const double t = rng.normal(0.0, 5.0);
    const double noise = rng.normal(0.0, 0.1);
    const double row[2] = {t + noise, t - noise};
    data.add_row(row, 0);
  }
  Pca pca(1);
  pca.fit(data);
  // First component explains nearly all variance.
  EXPECT_GT(pca.explained_variance(1), 0.99);
  // Differences cancel the (empirical) mean centering: moving by (1,1)
  // shifts the projection by sqrt(2); moving by (1,-1) barely moves it.
  std::vector<double> origin(1), along(1), across(1);
  pca.transform(std::vector<double>{0.0, 0.0}, origin);
  pca.transform(std::vector<double>{1.0, 1.0}, along);
  pca.transform(std::vector<double>{1.0, -1.0}, across);
  EXPECT_NEAR(std::abs(along[0] - origin[0]), std::sqrt(2.0), 0.01);
  EXPECT_NEAR(std::abs(across[0] - origin[0]), 0.0, 0.05);
}

TEST(Pca, ExplainedVarianceCurveMonotone) {
  util::Rng rng(7);
  Dataset data = numeric_dataset(6);
  for (int i = 0; i < 500; ++i) {
    std::vector<double> row(6);
    for (auto& v : row) v = rng.normal();
    row[3] = row[0] * 2.0;  // induce correlation
    data.add_row(row, 0);
  }
  Pca pca(0);
  pca.fit(data);
  const auto curve = pca.explained_variance_curve();
  ASSERT_EQ(curve.size(), 6u);
  for (std::size_t i = 1; i < curve.size(); ++i)
    EXPECT_GE(curve[i], curve[i - 1] - 1e-12);
  EXPECT_NEAR(curve.back(), 1.0, 1e-9);
}

TEST(Pca, OutputWidthClamps) {
  Pca pca(10);
  EXPECT_EQ(pca.output_width(4), 4u);
  EXPECT_EQ(pca.output_width(20), 10u);
  Pca full(0);
  EXPECT_EQ(full.output_width(7), 7u);
}

TEST(Pca, CenteringRemovesMean) {
  Dataset data = numeric_dataset(2);
  for (int i = 0; i < 100; ++i) {
    const double row[2] = {100.0 + (i % 2), 200.0 - (i % 2)};
    data.add_row(row, 0);
  }
  Pca pca(2);
  pca.fit(data);
  // Transforming the mean row gives the origin.
  std::vector<double> out(2);
  pca.transform(std::vector<double>{100.5, 199.5}, out);
  EXPECT_NEAR(out[0], 0.0, 1e-9);
  EXPECT_NEAR(out[1], 0.0, 1e-9);
}

TEST(Pca, EmptyDatasetSafe) {
  Dataset data = numeric_dataset(3);
  Pca pca(2);
  EXPECT_NO_THROW(pca.fit(data));
  EXPECT_DOUBLE_EQ(pca.explained_variance(1), 0.0);
}

TEST(Pca, EigenvaluesSortedDescending) {
  util::Rng rng(11);
  Dataset data = numeric_dataset(5);
  for (int i = 0; i < 300; ++i) {
    std::vector<double> row(5);
    for (std::size_t j = 0; j < 5; ++j)
      row[j] = rng.normal(0.0, static_cast<double>(j + 1));
    data.add_row(row, 0);
  }
  Pca pca(0);
  pca.fit(data);
  const auto& ev = pca.eigenvalues();
  for (std::size_t i = 1; i < ev.size(); ++i) EXPECT_GE(ev[i - 1], ev[i]);
  // Largest eigenvalue should be ~variance of the widest column (25).
  EXPECT_NEAR(ev[0], 25.0, 4.0);
}

}  // namespace
}  // namespace scrubber::ml
