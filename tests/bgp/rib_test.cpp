#include "bgp/rib.hpp"

#include <gtest/gtest.h>

namespace scrubber::bgp {
namespace {

using net::Ipv4Address;
using net::Ipv4Prefix;

Ipv4Address ip(const char* text) { return *Ipv4Address::parse(text); }
Ipv4Prefix pfx(const char* text) { return *Ipv4Prefix::parse(text); }

TEST(Rib, AnnounceInstallsRoute) {
  Rib rib;
  rib.apply(make_blackhole_announcement(pfx("203.0.113.5/32"), 64512, ip("10.255.0.1")));
  ASSERT_NE(rib.lookup(pfx("203.0.113.5/32")), nullptr);
  EXPECT_EQ(rib.size(), 1u);
  EXPECT_TRUE(rib.lookup(pfx("203.0.113.5/32"))->is_blackhole());
  EXPECT_EQ(rib.lookup(pfx("203.0.113.5/32"))->origin_as, 64512u);
}

TEST(Rib, WithdrawRemovesRoute) {
  Rib rib;
  rib.apply(make_blackhole_announcement(pfx("203.0.113.5/32"), 64512, ip("10.255.0.1")));
  rib.apply(make_withdrawal(pfx("203.0.113.5/32")));
  EXPECT_EQ(rib.lookup(pfx("203.0.113.5/32")), nullptr);
  EXPECT_EQ(rib.size(), 0u);
}

TEST(Rib, ImplicitReplaceUpdatesAttributes) {
  Rib rib;
  rib.apply(make_blackhole_announcement(pfx("203.0.113.5/32"), 64512, ip("10.255.0.1")));
  UpdateMessage replace;
  replace.announced = {pfx("203.0.113.5/32")};
  replace.as_path = {64999};
  replace.next_hop = ip("10.255.0.2");
  rib.apply(replace);
  const RouteEntry* entry = rib.lookup(pfx("203.0.113.5/32"));
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->origin_as, 64999u);
  EXPECT_FALSE(entry->is_blackhole());  // new path has no community
  EXPECT_EQ(rib.size(), 1u);
}

TEST(Rib, ResolveUsesLongestMatch) {
  Rib rib;
  UpdateMessage covering;
  covering.announced = {pfx("203.0.0.0/16")};
  covering.as_path = {100};
  covering.next_hop = ip("10.0.0.1");
  rib.apply(covering);
  rib.apply(make_blackhole_announcement(pfx("203.0.113.5/32"), 64512, ip("10.255.0.1")));
  EXPECT_EQ(rib.resolve(ip("203.0.113.5"))->origin_as, 64512u);
  EXPECT_EQ(rib.resolve(ip("203.0.1.1"))->origin_as, 100u);
  EXPECT_EQ(rib.resolve(ip("9.9.9.9")), nullptr);
}

TEST(Rib, IsBlackholedConsidersCoveringRoutes) {
  Rib rib;
  // Blackhole on the /24, regular more-specific /32.
  rib.apply(make_blackhole_announcement(pfx("203.0.113.0/24"), 64512, ip("10.255.0.1")));
  UpdateMessage specific;
  specific.announced = {pfx("203.0.113.5/32")};
  specific.as_path = {100};
  specific.next_hop = ip("10.0.0.1");
  rib.apply(specific);
  // The /32 is the best path, but a covering blackhole still applies.
  EXPECT_TRUE(rib.is_blackholed(ip("203.0.113.5")));
  EXPECT_TRUE(rib.is_blackholed(ip("203.0.113.77")));
  EXPECT_FALSE(rib.is_blackholed(ip("203.0.114.1")));
}

TEST(Rib, BlackholePrefixesEnumeration) {
  Rib rib;
  rib.apply(make_blackhole_announcement(pfx("203.0.113.5/32"), 64512, ip("10.255.0.1")));
  rib.apply(make_blackhole_announcement(pfx("198.51.100.9/32"), 64513, ip("10.255.0.1")));
  UpdateMessage plain;
  plain.announced = {pfx("10.0.0.0/8")};
  plain.as_path = {100};
  plain.next_hop = ip("10.0.0.1");
  rib.apply(plain);
  EXPECT_EQ(rib.blackhole_prefixes().size(), 2u);
  EXPECT_EQ(rib.size(), 3u);
}

TEST(Rib, UpdateViaWireBytes) {
  // A RIB fed from encoded bytes behaves identically.
  Rib rib;
  const auto update =
      make_blackhole_announcement(pfx("203.0.113.5/32"), 64512, ip("10.255.0.1"));
  rib.apply(UpdateMessage::decode(update.encode()));
  EXPECT_TRUE(rib.is_blackholed(ip("203.0.113.5")));
}

}  // namespace
}  // namespace scrubber::bgp
