#include "bgp/message.hpp"

#include <gtest/gtest.h>

namespace scrubber::bgp {
namespace {

using net::Ipv4Address;
using net::Ipv4Prefix;

UpdateMessage sample_announcement() {
  UpdateMessage msg;
  msg.announced = {*Ipv4Prefix::parse("203.0.113.5/32"),
                   *Ipv4Prefix::parse("198.51.100.0/24")};
  msg.as_path = {64512, 64513, 3320};
  msg.next_hop = *Ipv4Address::parse("10.255.0.1");
  msg.origin = Origin::kIgp;
  msg.communities = {kBlackhole, kNoExport, Community(64512, 100)};
  return msg;
}

TEST(Community, Packing) {
  const Community c(65535, 666);
  EXPECT_EQ(c.asn(), 65535);
  EXPECT_EQ(c.value(), 666);
  EXPECT_EQ(c.raw(), 0xFFFF029Au);
  EXPECT_EQ(c.to_string(), "65535:666");
  EXPECT_EQ(c, kBlackhole);
}

TEST(Community, WellKnownValues) {
  EXPECT_EQ(kNoExport.raw(), 0xFFFFFF01u);
  EXPECT_EQ(kNoAdvertise.raw(), 0xFFFFFF02u);
}

TEST(UpdateMessage, EncodeDecodeRoundTrip) {
  const UpdateMessage msg = sample_announcement();
  const auto wire = msg.encode();
  const UpdateMessage decoded = UpdateMessage::decode(wire);
  EXPECT_EQ(decoded, msg);
}

TEST(UpdateMessage, WireFormatBasics) {
  const auto wire = sample_announcement().encode();
  ASSERT_GE(wire.size(), 19u);
  for (std::size_t i = 0; i < 16; ++i) EXPECT_EQ(wire[i], 0xFF);  // marker
  const std::size_t length = (std::size_t{wire[16]} << 8) | std::size_t{wire[17]};
  EXPECT_EQ(length, wire.size());
  EXPECT_EQ(wire[18], 2);  // type UPDATE
}

TEST(UpdateMessage, WithdrawalRoundTrip) {
  const UpdateMessage msg = make_withdrawal(*Ipv4Prefix::parse("203.0.113.5/32"));
  const UpdateMessage decoded = UpdateMessage::decode(msg.encode());
  ASSERT_EQ(decoded.withdrawn.size(), 1u);
  EXPECT_EQ(decoded.withdrawn[0].to_string(), "203.0.113.5/32");
  EXPECT_TRUE(decoded.announced.empty());
  EXPECT_FALSE(decoded.is_blackhole_announcement());
}

TEST(UpdateMessage, PrefixEncodingUsesMinimalBytes) {
  UpdateMessage msg;
  msg.announced = {*Ipv4Prefix::parse("10.0.0.0/8")};
  msg.as_path = {64512};
  msg.next_hop = Ipv4Address(1);
  const auto wire = msg.encode();
  const UpdateMessage decoded = UpdateMessage::decode(wire);
  EXPECT_EQ(decoded.announced[0].to_string(), "10.0.0.0/8");
  // /8 NLRI takes 2 bytes (length + 1 address byte); compare against /24.
  UpdateMessage msg24 = msg;
  msg24.announced = {*Ipv4Prefix::parse("10.1.2.0/24")};
  EXPECT_EQ(msg24.encode().size(), wire.size() + 2);
}

TEST(UpdateMessage, ZeroLengthPrefixRoundTrip) {
  UpdateMessage msg;
  msg.announced = {*Ipv4Prefix::parse("0.0.0.0/0")};
  msg.as_path = {64512};
  msg.next_hop = Ipv4Address(1);
  const UpdateMessage decoded = UpdateMessage::decode(msg.encode());
  EXPECT_EQ(decoded.announced[0].length(), 0);
}

TEST(UpdateMessage, BlackholeDetection) {
  EXPECT_TRUE(sample_announcement().is_blackhole_announcement());
  UpdateMessage plain = sample_announcement();
  plain.communities = {Community(64512, 100)};
  EXPECT_FALSE(plain.is_blackhole_announcement());
  // A withdrawal with the community set is still not an announcement.
  UpdateMessage withdrawal;
  withdrawal.withdrawn = {*Ipv4Prefix::parse("1.2.3.4/32")};
  withdrawal.communities = {kBlackhole};
  EXPECT_FALSE(withdrawal.is_blackhole_announcement());
}

TEST(UpdateMessage, OriginAs) {
  EXPECT_EQ(sample_announcement().origin_as(), 3320u);
  EXPECT_EQ(UpdateMessage{}.origin_as(), 0u);
}

TEST(UpdateMessage, MakeBlackholeAnnouncementFollowsRfc7999) {
  const auto msg = make_blackhole_announcement(
      *Ipv4Prefix::parse("203.0.113.5/32"), 64999, Ipv4Address(7));
  EXPECT_TRUE(msg.is_blackhole_announcement());
  EXPECT_EQ(msg.origin_as(), 64999u);
  // BLACKHOLE should be combined with NO_EXPORT per RFC 7999 §3.2.
  bool has_no_export = false;
  for (const Community c : msg.communities) has_no_export |= (c == kNoExport);
  EXPECT_TRUE(has_no_export);
}

TEST(UpdateMessage, DecodeRejectsGarbage) {
  EXPECT_THROW(UpdateMessage::decode({}), BgpDecodeError);
  std::vector<std::uint8_t> bad(19, 0x00);
  EXPECT_THROW(UpdateMessage::decode(bad), BgpDecodeError);
  // Correct marker but wrong length field.
  auto wire = sample_announcement().encode();
  wire[17] = static_cast<std::uint8_t>(wire[17] + 1);
  EXPECT_THROW(UpdateMessage::decode(wire), BgpDecodeError);
}

TEST(UpdateMessage, DecodeRejectsTruncated) {
  auto wire = sample_announcement().encode();
  wire.resize(wire.size() - 3);
  wire[16] = static_cast<std::uint8_t>(wire.size() >> 8);
  wire[17] = static_cast<std::uint8_t>(wire.size());
  EXPECT_THROW(UpdateMessage::decode(wire), BgpDecodeError);
}

TEST(UpdateMessage, DecodeRejectsNonUpdateType) {
  auto wire = sample_announcement().encode();
  wire[18] = 1;  // OPEN
  EXPECT_THROW(UpdateMessage::decode(wire), BgpDecodeError);
}

TEST(UpdateMessage, LargeAsPathRoundTrip) {
  UpdateMessage msg;
  msg.announced = {*Ipv4Prefix::parse("10.0.0.0/8")};
  msg.next_hop = Ipv4Address(1);
  for (std::uint32_t i = 0; i < 40; ++i) msg.as_path.push_back(64500 + i);
  const UpdateMessage decoded = UpdateMessage::decode(msg.encode());
  EXPECT_EQ(decoded.as_path, msg.as_path);
}

TEST(UpdateMessage, OversizeThrowsLengthError) {
  UpdateMessage msg;
  msg.next_hop = Ipv4Address(1);
  msg.as_path = {64512};
  for (std::uint32_t i = 0; i < 1200; ++i) {
    msg.announced.push_back(Ipv4Prefix(Ipv4Address(i << 8), 32));
  }
  EXPECT_THROW(msg.encode(), std::length_error);
}

}  // namespace
}  // namespace scrubber::bgp
