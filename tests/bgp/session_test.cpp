#include "bgp/session.hpp"

#include <gtest/gtest.h>

#include "bgp/blackhole_registry.hpp"

namespace scrubber::bgp {
namespace {

using net::Ipv4Address;
using net::Ipv4Prefix;

/// Test harness: captures sent messages and received updates.
struct Harness {
  std::vector<std::vector<std::uint8_t>> sent;
  std::vector<UpdateMessage> updates;

  Session make_session(Session::Config config = {}) {
    return Session(
        config,
        [this](std::vector<std::uint8_t> wire) { sent.push_back(std::move(wire)); },
        [this](const UpdateMessage& update, std::uint64_t) {
          updates.push_back(update);
        });
  }

  /// Drives the handshake to Established at t=0.
  static void establish(Session& session, Harness& harness) {
    session.start(0);
    OpenMessage peer;
    peer.as_number = 65000;
    peer.hold_time_s = 90;
    peer.bgp_identifier = 0x01020304;
    session.receive(peer.encode(), 10);
    session.receive(encode_keepalive(), 20);
    ASSERT_TRUE(session.established());
    harness.sent.clear();
  }
};

TEST(OpenMessage, RoundTrip) {
  OpenMessage open;
  open.as_number = 64999;
  open.hold_time_s = 180;
  open.bgp_identifier = 0xC0000201;
  EXPECT_EQ(OpenMessage::decode(open.encode()), open);
}

TEST(NotificationMessage, RoundTrip) {
  const NotificationMessage n{6, 2};
  EXPECT_EQ(NotificationMessage::decode(n.encode()), n);
}

TEST(MessageType, Detection) {
  EXPECT_EQ(message_type(OpenMessage{}.encode()), MessageType::kOpen);
  EXPECT_EQ(message_type(encode_keepalive()), MessageType::kKeepalive);
  EXPECT_EQ(message_type(NotificationMessage{1, 1}.encode()),
            MessageType::kNotification);
  const auto update =
      make_withdrawal(*Ipv4Prefix::parse("10.0.0.0/8")).encode();
  EXPECT_EQ(message_type(update), MessageType::kUpdate);
  EXPECT_THROW((void)message_type({}), BgpDecodeError);
}

TEST(Session, HandshakeReachesEstablished) {
  Harness harness;
  Session session = harness.make_session();
  EXPECT_EQ(session.state(), SessionState::kIdle);

  session.start(0);
  EXPECT_EQ(session.state(), SessionState::kOpenSent);
  ASSERT_EQ(harness.sent.size(), 1u);
  EXPECT_EQ(message_type(harness.sent[0]), MessageType::kOpen);

  OpenMessage peer;
  peer.as_number = 65000;
  peer.hold_time_s = 30;
  session.receive(peer.encode(), 10);
  EXPECT_EQ(session.state(), SessionState::kOpenConfirm);
  EXPECT_EQ(session.negotiated_hold_time(), 30);  // min of both sides
  ASSERT_EQ(harness.sent.size(), 2u);
  EXPECT_EQ(message_type(harness.sent[1]), MessageType::kKeepalive);

  session.receive(encode_keepalive(), 20);
  EXPECT_TRUE(session.established());
}

TEST(Session, UpdatesDeliveredToSink) {
  Harness harness;
  Session session = harness.make_session();
  Harness::establish(session, harness);

  const auto update = make_blackhole_announcement(
      *Ipv4Prefix::parse("203.0.113.5/32"), 64512, Ipv4Address(1));
  session.receive(update.encode(), 1000);
  session.receive(update.encode(), 2000);
  EXPECT_EQ(session.updates_received(), 2u);
  ASSERT_EQ(harness.updates.size(), 2u);
  EXPECT_TRUE(harness.updates[0].is_blackhole_announcement());
}

TEST(Session, UpdateBeforeEstablishedIsFsmError) {
  Harness harness;
  Session session = harness.make_session();
  session.start(0);
  const auto update = make_withdrawal(*Ipv4Prefix::parse("10.0.0.0/8"));
  session.receive(update.encode(), 10);
  EXPECT_EQ(session.state(), SessionState::kIdle);
  ASSERT_TRUE(session.last_notification_sent().has_value());
  EXPECT_EQ(session.last_notification_sent()->code, 5);  // FSM error
}

TEST(Session, MalformedInputSendsNotification) {
  Harness harness;
  Session session = harness.make_session();
  Harness::establish(session, harness);
  session.receive(std::vector<std::uint8_t>(25, 0x00), 100);
  EXPECT_EQ(session.state(), SessionState::kIdle);
  ASSERT_TRUE(session.last_notification_sent().has_value());
  EXPECT_EQ(session.last_notification_sent()->code, 1);  // header error
}

TEST(Session, UnsupportedVersionRejected) {
  Harness harness;
  Session session = harness.make_session();
  session.start(0);
  OpenMessage peer;
  peer.version = 3;
  session.receive(peer.encode(), 10);
  EXPECT_EQ(session.state(), SessionState::kIdle);
  EXPECT_EQ(session.last_notification_sent()->code, 2);  // OPEN error
}

TEST(Session, HoldTimerExpiryDropsSession) {
  Harness harness;
  Session session = harness.make_session();
  Harness::establish(session, harness);
  // Negotiated hold is 90 s; no traffic for 91 s.
  session.tick(20 + 91'000);
  EXPECT_EQ(session.state(), SessionState::kIdle);
  EXPECT_EQ(session.last_notification_sent()->code, 4);  // hold timer expired
}

TEST(Session, KeepalivesRefreshHoldTimer) {
  Harness harness;
  Session session = harness.make_session();
  Harness::establish(session, harness);
  for (std::uint64_t t = 10'000; t <= 300'000; t += 10'000) {
    session.receive(encode_keepalive(), t);
    session.tick(t);
  }
  EXPECT_TRUE(session.established());
}

TEST(Session, EmitsPeriodicKeepalives) {
  Harness harness;
  Session session = harness.make_session();
  Harness::establish(session, harness);
  const auto before = session.keepalives_sent();
  // 90 s hold -> keepalive every 30 s; tick over 2 minutes.
  for (std::uint64_t t = 0; t <= 120'000; t += 1'000) {
    session.receive(encode_keepalive(), t);  // peer stays alive
    session.tick(t);
  }
  EXPECT_GE(session.keepalives_sent() - before, 3u);
}

TEST(Session, PeerNotificationClosesSession) {
  Harness harness;
  Session session = harness.make_session();
  Harness::establish(session, harness);
  session.receive(NotificationMessage{6, 4}.encode(), 50);
  EXPECT_EQ(session.state(), SessionState::kIdle);
}

TEST(Session, FullFeedIntoBlackholeRegistry) {
  // End-to-end: session feeds a BlackholeRegistry keyed by minute.
  BlackholeRegistry registry;
  std::vector<std::vector<std::uint8_t>> sent;
  Session session(
      Session::Config{},
      [&](std::vector<std::uint8_t> wire) { sent.push_back(std::move(wire)); },
      [&](const UpdateMessage& update, std::uint64_t now_ms) {
        registry.apply(update, static_cast<std::uint32_t>(now_ms / 60'000));
      });
  session.start(0);
  OpenMessage peer;
  peer.as_number = 65000;
  session.receive(peer.encode(), 1);
  session.receive(encode_keepalive(), 2);
  ASSERT_TRUE(session.established());

  const auto prefix = *Ipv4Prefix::parse("203.0.113.5/32");
  session.receive(
      make_blackhole_announcement(prefix, 64512, Ipv4Address(1)).encode(),
      5 * 60'000);
  session.receive(make_withdrawal(prefix).encode(), 9 * 60'000);

  EXPECT_FALSE(registry.is_blackholed(*Ipv4Address::parse("203.0.113.5"), 4));
  EXPECT_TRUE(registry.is_blackholed(*Ipv4Address::parse("203.0.113.5"), 7));
  EXPECT_FALSE(registry.is_blackholed(*Ipv4Address::parse("203.0.113.5"), 10));
}

}  // namespace
}  // namespace scrubber::bgp
