#include "bgp/blackhole_registry.hpp"

#include <gtest/gtest.h>

namespace scrubber::bgp {
namespace {

using net::Ipv4Address;
using net::Ipv4Prefix;

Ipv4Address ip(const char* text) { return *Ipv4Address::parse(text); }
Ipv4Prefix pfx(const char* text) { return *Ipv4Prefix::parse(text); }

TEST(BlackholeRegistry, IntervalSemantics) {
  BlackholeRegistry registry;
  registry.announce(pfx("203.0.113.5/32"), 100);
  registry.withdraw(pfx("203.0.113.5/32"), 110);
  EXPECT_FALSE(registry.is_blackholed(ip("203.0.113.5"), 99));
  EXPECT_TRUE(registry.is_blackholed(ip("203.0.113.5"), 100));
  EXPECT_TRUE(registry.is_blackholed(ip("203.0.113.5"), 109));
  EXPECT_FALSE(registry.is_blackholed(ip("203.0.113.5"), 110));  // half-open
}

TEST(BlackholeRegistry, OpenEndedInterval) {
  BlackholeRegistry registry;
  registry.announce(pfx("203.0.113.5/32"), 100);
  EXPECT_TRUE(registry.is_blackholed(ip("203.0.113.5"), 1000000));
}

TEST(BlackholeRegistry, ReAnnouncementIdempotent) {
  BlackholeRegistry registry;
  registry.announce(pfx("203.0.113.5/32"), 100);
  registry.announce(pfx("203.0.113.5/32"), 105);
  EXPECT_EQ(registry.interval_count(), 1u);
  registry.withdraw(pfx("203.0.113.5/32"), 110);
  registry.announce(pfx("203.0.113.5/32"), 200);
  EXPECT_EQ(registry.interval_count(), 2u);
  EXPECT_FALSE(registry.is_blackholed(ip("203.0.113.5"), 150));
  EXPECT_TRUE(registry.is_blackholed(ip("203.0.113.5"), 250));
}

TEST(BlackholeRegistry, WithdrawWithoutAnnouncementIsNoop) {
  BlackholeRegistry registry;
  registry.withdraw(pfx("203.0.113.5/32"), 100);
  EXPECT_EQ(registry.interval_count(), 0u);
}

TEST(BlackholeRegistry, DifferentPrefixesIndependent) {
  BlackholeRegistry registry;
  registry.announce(pfx("203.0.113.5/32"), 100);
  registry.announce(pfx("198.51.100.9/32"), 200);
  EXPECT_TRUE(registry.is_blackholed(ip("203.0.113.5"), 150));
  EXPECT_FALSE(registry.is_blackholed(ip("198.51.100.9"), 150));
  EXPECT_EQ(registry.prefix_count(), 2u);
}

TEST(BlackholeRegistry, CoveringPrefixApplies) {
  BlackholeRegistry registry;
  registry.announce(pfx("203.0.113.0/24"), 100);
  EXPECT_TRUE(registry.is_blackholed(ip("203.0.113.200"), 105));
  const auto covering = registry.covering_blackhole(ip("203.0.113.200"), 105);
  ASSERT_TRUE(covering.has_value());
  EXPECT_EQ(covering->to_string(), "203.0.113.0/24");
}

TEST(BlackholeRegistry, CoveringBlackholePrefersMostSpecificActive) {
  BlackholeRegistry registry;
  registry.announce(pfx("203.0.113.0/24"), 100);
  registry.announce(pfx("203.0.113.5/32"), 100);
  registry.withdraw(pfx("203.0.113.5/32"), 110);
  EXPECT_EQ(registry.covering_blackhole(ip("203.0.113.5"), 105)->to_string(),
            "203.0.113.5/32");
  // After the /32 is withdrawn, the /24 still covers.
  EXPECT_EQ(registry.covering_blackhole(ip("203.0.113.5"), 115)->to_string(),
            "203.0.113.0/24");
}

TEST(BlackholeRegistry, ActiveCount) {
  BlackholeRegistry registry;
  registry.announce(pfx("203.0.113.5/32"), 100);
  registry.announce(pfx("198.51.100.9/32"), 105);
  registry.withdraw(pfx("203.0.113.5/32"), 110);
  EXPECT_EQ(registry.active_count(99), 0u);
  EXPECT_EQ(registry.active_count(102), 1u);
  EXPECT_EQ(registry.active_count(107), 2u);
  EXPECT_EQ(registry.active_count(115), 1u);
}

TEST(BlackholeRegistry, ApplyBgpUpdates) {
  BlackholeRegistry registry;
  const auto bh = make_blackhole_announcement(pfx("203.0.113.5/32"), 64512,
                                              ip("10.255.0.1"));
  registry.apply(bh, 100);
  EXPECT_TRUE(registry.is_blackholed(ip("203.0.113.5"), 100));

  // A non-blackhole announcement must not register.
  UpdateMessage plain;
  plain.announced = {pfx("198.51.100.9/32")};
  plain.as_path = {64512};
  plain.next_hop = ip("10.255.0.1");
  registry.apply(plain, 100);
  EXPECT_FALSE(registry.is_blackholed(ip("198.51.100.9"), 100));

  registry.apply(make_withdrawal(pfx("203.0.113.5/32")), 120);
  EXPECT_FALSE(registry.is_blackholed(ip("203.0.113.5"), 125));
}

}  // namespace
}  // namespace scrubber::bgp
