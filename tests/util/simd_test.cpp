// Dispatch-layer tests for util/simd.hpp: the override can only ever
// lower the level below simd_detect() (never fault the box by forcing a
// kernel the build or CPU cannot execute), detection respects the
// compile-time gate, and the level names are stable (they land in bench
// provenance and the ixpd stats line).

#include "util/simd.hpp"

#include <gtest/gtest.h>

#include <string>

namespace scrubber::util {
namespace {

/// RAII: every test leaves dispatch in the automatic (detected) state.
struct OverrideGuard {
  ~OverrideGuard() { clear_simd_override(); }
};

TEST(Simd, LevelNamesAreStable) {
  EXPECT_EQ(std::string(simd_level_name(SimdLevel::kScalar)), "scalar");
  EXPECT_EQ(std::string(simd_level_name(SimdLevel::kAvx2)), "avx2");
}

TEST(Simd, DetectRespectsCompileTimeGate) {
  if (!simd_compiled_avx2()) {
    EXPECT_EQ(simd_detect(), SimdLevel::kScalar)
        << "a scalar-only build must never detect a vector level";
  }
  if (simd_detect() == SimdLevel::kAvx2) {
    EXPECT_TRUE(simd_compiled_avx2());
    EXPECT_TRUE(cpu_has_avx2());
  }
}

TEST(Simd, DefaultLevelIsDetected) {
  OverrideGuard guard;
  clear_simd_override();
  EXPECT_EQ(simd_level(), simd_detect());
}

TEST(Simd, OverrideLowersButNeverRaises) {
  OverrideGuard guard;
  set_simd_override(SimdLevel::kScalar);
  EXPECT_EQ(simd_level(), SimdLevel::kScalar)
      << "forcing scalar must always stick";
  // Forcing AVX2 is clamped to what this build+CPU can actually execute.
  set_simd_override(SimdLevel::kAvx2);
  EXPECT_EQ(simd_level(), simd_detect());
  clear_simd_override();
  EXPECT_EQ(simd_level(), simd_detect());
}

TEST(Simd, DetectionIsCachedAndConsistent) {
  const bool avx2 = cpu_has_avx2();
  const bool fma = cpu_has_fma();
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(cpu_has_avx2(), avx2);
    EXPECT_EQ(cpu_has_fma(), fma);
    EXPECT_EQ(simd_detect(),
              simd_compiled_avx2() && avx2 ? SimdLevel::kAvx2
                                           : SimdLevel::kScalar);
  }
}

}  // namespace
}  // namespace scrubber::util
