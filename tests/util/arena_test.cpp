// util::Arena bump-allocator tests: alignment, block reuse across reset()
// (the steady-state zero-allocation property), and geometric growth with
// the per-block cap.

#include "util/arena.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <tuple>

namespace scrubber::util {
namespace {

TEST(Arena, AllocatesAlignedStorage) {
  Arena arena;
  auto* bytes = arena.alloc<std::uint8_t>(3);
  ASSERT_NE(bytes, nullptr);
  auto* words = arena.alloc<std::uint64_t>(4);
  ASSERT_NE(words, nullptr);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(words) % alignof(std::uint64_t),
            0u);
  // The storage is writable and distinct.
  std::memset(bytes, 0xAB, 3);
  for (int i = 0; i < 4; ++i) words[i] = 7;
  EXPECT_EQ(bytes[0], 0xAB);
  EXPECT_EQ(words[3], 7u);
  EXPECT_GE(arena.bytes_used(), 3 + 4 * sizeof(std::uint64_t));
}

TEST(Arena, ResetReusesBlocks) {
  Arena arena(1024);
  for (int i = 0; i < 100; ++i) std::ignore = arena.alloc<std::uint64_t>(16);
  const std::size_t blocks = arena.block_count();
  const std::size_t reserved = arena.bytes_reserved();
  EXPECT_GT(blocks, 0u);

  // Same workload after reset: no new blocks, same capacity.
  arena.reset();
  EXPECT_EQ(arena.bytes_used(), 0u);
  for (int cycle = 0; cycle < 10; ++cycle) {
    for (int i = 0; i < 100; ++i) std::ignore = arena.alloc<std::uint64_t>(16);
    arena.reset();
  }
  EXPECT_EQ(arena.block_count(), blocks);
  EXPECT_EQ(arena.bytes_reserved(), reserved);
}

TEST(Arena, GrowsForOversizedRequests) {
  Arena arena(1024);
  // A single request larger than any default block still succeeds.
  auto* big = arena.alloc<std::uint8_t>(1 << 20);
  ASSERT_NE(big, nullptr);
  big[0] = 1;
  big[(1 << 20) - 1] = 2;
  EXPECT_GE(arena.bytes_reserved(), std::size_t{1} << 20);
}

TEST(Arena, PointersRemainValidAcrossGrowth) {
  Arena arena(1024);
  // Earlier allocations must not move when the arena adds blocks.
  auto* first = arena.alloc<std::uint64_t>(1);
  *first = 0xFEEDFACE;
  for (int i = 0; i < 10000; ++i) std::ignore = arena.alloc<std::uint64_t>(8);
  EXPECT_EQ(*first, 0xFEEDFACE);
  EXPECT_GT(arena.block_count(), 1u);
}

}  // namespace
}  // namespace scrubber::util
