// util::FlatHash property suite: randomized equivalence against a
// std::unordered_map oracle, the insertion-order iteration contract that
// FlowCache::drain_before depends on, tombstone reuse under churn, and a
// degenerate-hash stress (everything collides, table degrades to a linear
// scan but stays correct).

#include "util/flat_hash.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/rng.hpp"

namespace scrubber::util {
namespace {

TEST(FlatHash, BasicInsertFindErase) {
  FlatHash<std::uint64_t, int> table;
  EXPECT_TRUE(table.empty());
  EXPECT_EQ(table.find(7u), nullptr);

  auto [value, inserted] = table.try_emplace(7);
  EXPECT_TRUE(inserted);
  *value = 42;
  EXPECT_EQ(table.size(), 1u);

  auto [again, inserted_again] = table.try_emplace(7);
  EXPECT_FALSE(inserted_again);
  EXPECT_EQ(*again, 42);

  table[9] = 5;
  EXPECT_EQ(table.size(), 2u);
  ASSERT_NE(table.find(9u), nullptr);
  EXPECT_EQ(*table.find(9u), 5);

  EXPECT_TRUE(table.erase(7));
  EXPECT_FALSE(table.erase(7));
  EXPECT_EQ(table.find(7u), nullptr);
  EXPECT_EQ(table.size(), 1u);
}

TEST(FlatHash, ReserveAvoidsRehash) {
  FlatHash<std::uint64_t, std::uint64_t> table;
  table.reserve(1000);
  const std::size_t buckets = table.bucket_count();
  EXPECT_GE(buckets, 1000u);
  for (std::uint64_t key = 0; key < 1000; ++key) table[key] = key;
  EXPECT_EQ(table.bucket_count(), buckets);
  EXPECT_EQ(table.size(), 1000u);
}

TEST(FlatHash, ClearKeepsCapacity) {
  FlatHash<std::uint64_t, int> table;
  for (std::uint64_t key = 0; key < 500; ++key) table[key] = 1;
  const std::size_t buckets = table.bucket_count();
  table.clear();
  EXPECT_TRUE(table.empty());
  EXPECT_EQ(table.bucket_count(), buckets);
  for (std::uint64_t key = 0; key < 500; ++key) {
    EXPECT_EQ(table.find(key), nullptr);
  }
  table[3] = 7;
  EXPECT_EQ(table.size(), 1u);
}

// Randomized op sequence checked against std::unordered_map after every
// mutation batch: same membership, same values, same size.
TEST(FlatHash, MatchesUnorderedMapOracle) {
  Rng rng(0xFA57);
  FlatHash<std::uint64_t, std::uint64_t> table;
  std::unordered_map<std::uint64_t, std::uint64_t> oracle;
  const std::uint64_t key_space = 512;  // force collisions and reuse

  for (int step = 0; step < 20000; ++step) {
    const std::uint64_t key = rng.below(key_space);
    const std::uint64_t op = rng.below(10);
    if (op < 6) {  // upsert
      const std::uint64_t value = rng();
      table[key] = value;
      oracle[key] = value;
    } else if (op < 9) {  // erase
      EXPECT_EQ(table.erase(key), oracle.erase(key) > 0) << "key " << key;
    } else {  // lookup
      const auto it = oracle.find(key);
      const std::uint64_t* found = table.find(key);
      if (it == oracle.end()) {
        EXPECT_EQ(found, nullptr) << "key " << key;
      } else {
        ASSERT_NE(found, nullptr) << "key " << key;
        EXPECT_EQ(*found, it->second) << "key " << key;
      }
    }
    EXPECT_EQ(table.size(), oracle.size());
  }
  // Full-content sweep both directions.
  std::size_t visited = 0;
  table.for_each([&](std::uint64_t key, std::uint64_t value) {
    ++visited;
    const auto it = oracle.find(key);
    ASSERT_NE(it, oracle.end());
    EXPECT_EQ(value, it->second);
  });
  EXPECT_EQ(visited, oracle.size());
}

// for_each visits keys in first-insertion order, across rehashes and
// erase-driven compactions (survivors keep relative order).
TEST(FlatHash, IterationFollowsInsertionOrder) {
  Rng rng(0x07D37);
  FlatHash<std::uint64_t, int> table;
  std::vector<std::uint64_t> inserted;
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t key = rng.below(4096);
    if (table.try_emplace(key).second) inserted.push_back(key);
  }
  std::vector<std::uint64_t> seen;
  table.for_each([&](std::uint64_t key, int) { seen.push_back(key); });
  EXPECT_EQ(seen, inserted);

  // Erase every third key; survivors must keep relative order.
  std::vector<std::uint64_t> survivors;
  for (std::size_t i = 0; i < inserted.size(); ++i) {
    if (i % 3 == 0) {
      EXPECT_TRUE(table.erase(inserted[i]));
    } else {
      survivors.push_back(inserted[i]);
    }
  }
  seen.clear();
  table.for_each([&](std::uint64_t key, int) { seen.push_back(key); });
  EXPECT_EQ(seen, survivors);

  // Re-inserting an erased key appends at the end of the order.
  table.try_emplace(inserted[0]);
  seen.clear();
  table.for_each([&](std::uint64_t key, int) { seen.push_back(key); });
  survivors.push_back(inserted[0]);
  EXPECT_EQ(seen, survivors);
}

TEST(FlatHash, ExtractIfDrainsInInsertionOrder) {
  FlatHash<std::uint64_t, std::string> table;
  for (std::uint64_t key = 0; key < 100; ++key) {
    table[key] = "v" + std::to_string(key);
  }
  // Drain the evens; values arrive by move, in insertion order.
  std::vector<std::uint64_t> drained;
  table.extract_if(
      [](std::uint64_t key, const std::string&) { return key % 2 == 0; },
      [&](std::uint64_t key, std::string&& value) {
        EXPECT_EQ(value, "v" + std::to_string(key));
        drained.push_back(key);
      });
  ASSERT_EQ(drained.size(), 50u);
  for (std::size_t i = 0; i + 1 < drained.size(); ++i) {
    EXPECT_LT(drained[i], drained[i + 1]);  // ascending == insertion order
  }
  EXPECT_EQ(table.size(), 50u);
  for (std::uint64_t key = 0; key < 100; ++key) {
    EXPECT_EQ(table.find(key) != nullptr, key % 2 == 1) << "key " << key;
  }
  // Survivors still iterate in insertion order.
  std::vector<std::uint64_t> seen;
  table.for_each([&](std::uint64_t key, const std::string&) {
    seen.push_back(key);
  });
  for (std::size_t i = 0; i + 1 < seen.size(); ++i) {
    EXPECT_LT(seen[i], seen[i + 1]);
  }
  // A drain that removes nothing leaves the table untouched.
  table.extract_if([](std::uint64_t, const std::string&) { return false; },
                   [&](std::uint64_t, std::string&&) { FAIL(); });
  EXPECT_EQ(table.size(), 50u);
}

// Steady-state churn (insert/erase the same working set) must not grow the
// bucket array: tombstones are reused by inserts and wiped by same-size
// rehashes, so capacity converges.
TEST(FlatHash, TombstoneChurnDoesNotGrowTable) {
  FlatHash<std::uint64_t, int> table;
  for (std::uint64_t key = 0; key < 64; ++key) table[key] = 1;
  Rng rng(0xC0DE);
  const auto churn = [&](int cycles) {
    for (int cycle = 0; cycle < cycles; ++cycle) {
      const std::uint64_t key = 1000 + rng.below(64);
      if (table.find(key) != nullptr) {
        table.erase(key);
      } else {
        table[key] = cycle;
      }
    }
  };
  // Warm up: let the table settle at the capacity the full working set
  // (64 resident + up to 64 churning keys) demands...
  churn(10000);
  const std::size_t buckets = table.bucket_count();
  // ...then sustained churn on the same bounded working set must never
  // grow it further: inserts reuse tombstones and same-size rehashes wipe
  // the rest.
  churn(50000);
  EXPECT_EQ(table.bucket_count(), buckets)
      << "churn on a bounded working set must not grow the table";
}

struct DegenerateHash {
  std::size_t operator()(std::uint64_t) const noexcept { return 42; }
};

// Everything collides: probes degrade to a linear scan but every operation
// stays correct, including erase-in-the-middle of a probe chain.
TEST(FlatHash, DegenerateHashStaysCorrect) {
  FlatHash<std::uint64_t, std::uint64_t, DegenerateHash> table;
  std::unordered_map<std::uint64_t, std::uint64_t> oracle;
  Rng rng(0xDE6E);
  for (int step = 0; step < 4000; ++step) {
    const std::uint64_t key = rng.below(96);
    if (rng.chance(0.6)) {
      const std::uint64_t value = rng();
      table[key] = value;
      oracle[key] = value;
    } else {
      EXPECT_EQ(table.erase(key), oracle.erase(key) > 0);
    }
    EXPECT_EQ(table.size(), oracle.size());
  }
  for (const auto& [key, value] : oracle) {
    const std::uint64_t* found = table.find(key);
    ASSERT_NE(found, nullptr) << "key " << key;
    EXPECT_EQ(*found, value);
  }
}

// Mapped types with owned storage move cleanly through rehash/compaction
// and erase releases their memory eagerly.
TEST(FlatHash, NonTrivialMappedType) {
  FlatHash<std::uint64_t, std::vector<int>> table;
  for (std::uint64_t key = 0; key < 200; ++key) {
    table[key].assign(10, static_cast<int>(key));
  }
  for (std::uint64_t key = 0; key < 200; key += 2) table.erase(key);
  for (std::uint64_t key = 0; key < 200; ++key) {
    auto* value = table.find(key);
    if (key % 2 == 0) {
      EXPECT_EQ(value, nullptr);
    } else {
      ASSERT_NE(value, nullptr);
      ASSERT_EQ(value->size(), 10u);
      EXPECT_EQ(value->front(), static_cast<int>(key));
    }
  }
}

}  // namespace
}  // namespace scrubber::util
