#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <set>

namespace scrubber::util {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (a() == b());
  EXPECT_LT(equal, 3);
}

TEST(Rng, ForkProducesIndependentStreams) {
  Rng parent(7);
  Rng child1 = parent.fork(1);
  Rng child2 = parent.fork(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (child1() == child2());
  EXPECT_LT(equal, 3);
}

TEST(Rng, ForkIsDeterministic) {
  Rng a(7), b(7);
  Rng fa = a.fork(42), fb = b.fork(42);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(fa(), fb());
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanIsHalf) {
  Rng rng(5);
  double total = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) total += rng.uniform();
  EXPECT_NEAR(total / n, 0.5, 0.01);
}

TEST(Rng, BelowStaysInBound) {
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(rng.below(17), 17u);
}

TEST(Rng, BelowCoversAllValues) {
  Rng rng(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.below(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, RangeInclusive) {
  Rng rng(11);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const auto v = rng.range(3, 6);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 6);
    saw_lo |= (v == 3);
    saw_hi |= (v == 6);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, NormalMoments) {
  Rng rng(13);
  const int n = 200000;
  double sum = 0.0, sum2 = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal(10.0, 2.0);
    sum += x;
    sum2 += x * x;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.05);
  EXPECT_NEAR(var, 4.0, 0.1);
}

TEST(Rng, ExponentialMean) {
  Rng rng(17);
  const int n = 200000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.exponential(0.5);
  EXPECT_NEAR(sum / n, 2.0, 0.05);
}

TEST(Rng, PoissonMean) {
  Rng rng(19);
  const int n = 50000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.poisson(3.5));
  EXPECT_NEAR(sum / n, 3.5, 0.1);
}

TEST(Rng, PoissonLargeLambdaUsesNormalApprox) {
  Rng rng(19);
  const int n = 20000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.poisson(100.0));
  EXPECT_NEAR(sum / n, 100.0, 1.0);
}

TEST(Rng, PoissonZeroLambda) {
  Rng rng(19);
  EXPECT_EQ(rng.poisson(0.0), 0u);
  EXPECT_EQ(rng.poisson(-1.0), 0u);
}

TEST(Rng, ZipfFavorsLowRanks) {
  Rng rng(23);
  const std::size_t n = 1000;
  std::vector<int> counts(n, 0);
  for (int i = 0; i < 100000; ++i) ++counts[rng.zipf(n, 1.2)];
  EXPECT_GT(counts[0], counts[10]);
  EXPECT_GT(counts[0], 100000 / 20);  // head is heavy
}

TEST(Rng, ZipfStaysInRange) {
  Rng rng(23);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(rng.zipf(50, 0.9), 50u);
  EXPECT_EQ(rng.zipf(1, 1.0), 0u);
}

TEST(Rng, WeightedRespectsWeights) {
  Rng rng(29);
  std::vector<double> weights{1.0, 0.0, 3.0};
  std::vector<int> counts(3, 0);
  for (int i = 0; i < 40000; ++i) ++counts[rng.weighted(weights)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[0], 3.0, 0.3);
}

TEST(Rng, WeightedAllZeroFallsBackToUniform) {
  Rng rng(29);
  std::vector<double> weights{0.0, 0.0, 0.0};
  std::set<std::size_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.weighted(weights));
  EXPECT_EQ(seen.size(), 3u);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(31);
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  auto shuffled = v;
  rng.shuffle(shuffled);
  EXPECT_NE(shuffled, v);  // astronomically unlikely to be identity
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(Rng, SampleIndicesDistinctAndSorted) {
  Rng rng(37);
  const auto sample = rng.sample_indices(1000, 50);
  ASSERT_EQ(sample.size(), 50u);
  EXPECT_TRUE(std::is_sorted(sample.begin(), sample.end()));
  EXPECT_EQ(std::set<std::size_t>(sample.begin(), sample.end()).size(), 50u);
  for (const auto i : sample) EXPECT_LT(i, 1000u);
}

TEST(Rng, SampleIndicesKGreaterThanN) {
  Rng rng(37);
  const auto sample = rng.sample_indices(5, 10);
  EXPECT_EQ(sample.size(), 5u);
}

TEST(Rng, SampleIndicesDenseCase) {
  Rng rng(37);
  const auto sample = rng.sample_indices(10, 6);
  EXPECT_EQ(sample.size(), 6u);
  EXPECT_TRUE(std::is_sorted(sample.begin(), sample.end()));
}

TEST(Mix64, StatelessAndSpread) {
  EXPECT_EQ(mix64(42), mix64(42));
  EXPECT_NE(mix64(42), mix64(43));
  // Low bits should differ for consecutive inputs (avalanche).
  int same_low = 0;
  for (std::uint64_t i = 0; i < 64; ++i)
    same_low += ((mix64(i) & 0xFF) == (mix64(i + 1) & 0xFF));
  EXPECT_LT(same_low, 5);
}

}  // namespace
}  // namespace scrubber::util
