#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/rng.hpp"

namespace scrubber::util {
namespace {

TEST(Stats, MeanBasics) {
  const std::vector<double> v{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(mean(v), 2.5);
  EXPECT_DOUBLE_EQ(mean({}), 0.0);
}

TEST(Stats, VarianceUnbiased) {
  const std::vector<double> v{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_NEAR(variance(v), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(variance(std::vector<double>{1.0}), 0.0);
}

TEST(Stats, StddevIsSqrtVariance) {
  const std::vector<double> v{1.0, 3.0, 5.0};
  EXPECT_DOUBLE_EQ(stddev(v), std::sqrt(variance(v)));
}

TEST(Stats, QuantileInterpolates) {
  const std::vector<double> v{4.0, 1.0, 3.0, 2.0};  // unsorted on purpose
  EXPECT_DOUBLE_EQ(quantile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(v, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(quantile(v, 0.5), 2.5);
  EXPECT_DOUBLE_EQ(median(v), 2.5);
  EXPECT_DOUBLE_EQ(quantile(v, 1.0 / 3.0), 2.0);
}

TEST(Stats, QuantileEmptyAndClamps) {
  EXPECT_DOUBLE_EQ(quantile({}, 0.5), 0.0);
  const std::vector<double> v{5.0};
  EXPECT_DOUBLE_EQ(quantile(v, -1.0), 5.0);
  EXPECT_DOUBLE_EQ(quantile(v, 2.0), 5.0);
}

TEST(Stats, PearsonPerfectCorrelation) {
  const std::vector<double> x{1.0, 2.0, 3.0, 4.0};
  const std::vector<double> y{2.0, 4.0, 6.0, 8.0};
  EXPECT_NEAR(pearson(x, y), 1.0, 1e-12);
  const std::vector<double> z{8.0, 6.0, 4.0, 2.0};
  EXPECT_NEAR(pearson(x, z), -1.0, 1e-12);
}

TEST(Stats, PearsonConstantSeriesIsZero) {
  const std::vector<double> x{1.0, 1.0, 1.0};
  const std::vector<double> y{1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(pearson(x, y), 0.0);
}

TEST(Stats, PearsonMismatchedSizes) {
  const std::vector<double> x{1.0, 2.0};
  const std::vector<double> y{1.0};
  EXPECT_DOUBLE_EQ(pearson(x, y), 0.0);
}

TEST(Stats, PearsonIndependentNearZero) {
  Rng rng(3);
  std::vector<double> x, y;
  for (int i = 0; i < 20000; ++i) {
    x.push_back(rng.normal());
    y.push_back(rng.normal());
  }
  EXPECT_NEAR(pearson(x, y), 0.0, 0.03);
}

TEST(Stats, AverageRanksHandleTies) {
  const std::vector<double> v{10.0, 20.0, 20.0, 30.0};
  const auto ranks = average_ranks(v);
  ASSERT_EQ(ranks.size(), 4u);
  EXPECT_DOUBLE_EQ(ranks[0], 1.0);
  EXPECT_DOUBLE_EQ(ranks[1], 2.5);
  EXPECT_DOUBLE_EQ(ranks[2], 2.5);
  EXPECT_DOUBLE_EQ(ranks[3], 4.0);
}

TEST(Stats, SpearmanMonotonicIsOne) {
  const std::vector<double> x{1.0, 2.0, 3.0, 4.0, 5.0};
  const std::vector<double> y{1.0, 8.0, 27.0, 64.0, 125.0};  // x^3, nonlinear
  EXPECT_NEAR(spearman(x, y), 1.0, 1e-12);
  EXPECT_LT(pearson(x, y), 1.0);  // pearson is below 1 for nonlinear
}

TEST(Stats, EcdfPointsSorted) {
  const std::vector<double> v{3.0, 1.0, 2.0};
  const auto pts = ecdf_points(v);
  EXPECT_EQ(pts, (std::vector<double>{1.0, 2.0, 3.0}));
}

TEST(Accumulator, MatchesBatchStatistics) {
  Rng rng(7);
  std::vector<double> values;
  Accumulator acc;
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.normal(5.0, 3.0);
    values.push_back(v);
    acc.add(v);
  }
  EXPECT_EQ(acc.count(), 1000u);
  EXPECT_NEAR(acc.mean(), mean(values), 1e-9);
  EXPECT_NEAR(acc.variance(), variance(values), 1e-6);
  EXPECT_DOUBLE_EQ(acc.min(), *std::min_element(values.begin(), values.end()));
  EXPECT_DOUBLE_EQ(acc.max(), *std::max_element(values.begin(), values.end()));
}

TEST(Accumulator, EmptyIsZero) {
  Accumulator acc;
  EXPECT_EQ(acc.count(), 0u);
  EXPECT_DOUBLE_EQ(acc.mean(), 0.0);
  EXPECT_DOUBLE_EQ(acc.variance(), 0.0);
}

TEST(Accumulator, SingleValue) {
  Accumulator acc;
  acc.add(42.0);
  EXPECT_DOUBLE_EQ(acc.mean(), 42.0);
  EXPECT_DOUBLE_EQ(acc.variance(), 0.0);
  EXPECT_DOUBLE_EQ(acc.min(), 42.0);
  EXPECT_DOUBLE_EQ(acc.max(), 42.0);
  EXPECT_DOUBLE_EQ(acc.sum(), 42.0);
}

}  // namespace
}  // namespace scrubber::util
