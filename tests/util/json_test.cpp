#include "util/json.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace scrubber::util {
namespace {

TEST(Json, ParseScalars) {
  EXPECT_TRUE(Json::parse("null").is_null());
  EXPECT_TRUE(Json::parse("true").as_bool());
  EXPECT_FALSE(Json::parse("false").as_bool());
  EXPECT_DOUBLE_EQ(Json::parse("3.5").as_number(), 3.5);
  EXPECT_DOUBLE_EQ(Json::parse("-17").as_number(), -17.0);
  EXPECT_DOUBLE_EQ(Json::parse("1e3").as_number(), 1000.0);
  EXPECT_EQ(Json::parse("\"hi\"").as_string(), "hi");
}

TEST(Json, ParseNested) {
  const Json doc = Json::parse(R"({"a": [1, 2, {"b": true}], "c": "x"})");
  ASSERT_TRUE(doc.is_object());
  const auto& arr = doc.at("a").as_array();
  ASSERT_EQ(arr.size(), 3u);
  EXPECT_DOUBLE_EQ(arr[0].as_number(), 1.0);
  EXPECT_TRUE(arr[2].at("b").as_bool());
  EXPECT_EQ(doc.at("c").as_string(), "x");
}

TEST(Json, ParseStringEscapes) {
  EXPECT_EQ(Json::parse(R"("a\"b\\c\nd\te")").as_string(), "a\"b\\c\nd\te");
  EXPECT_EQ(Json::parse(R"("A")").as_string(), "A");
  EXPECT_EQ(Json::parse(R"("é")").as_string(), "\xC3\xA9");  // é in UTF-8
}

TEST(Json, ParseWhitespaceTolerant) {
  const Json doc = Json::parse("  { \"a\" :\n[ 1 ,\t2 ] }  ");
  EXPECT_EQ(doc.at("a").as_array().size(), 2u);
}

TEST(Json, ParseErrors) {
  EXPECT_THROW(Json::parse(""), JsonError);
  EXPECT_THROW(Json::parse("{"), JsonError);
  EXPECT_THROW(Json::parse("[1,]"), JsonError);
  EXPECT_THROW(Json::parse("nul"), JsonError);
  EXPECT_THROW(Json::parse("\"unterminated"), JsonError);
  EXPECT_THROW(Json::parse("{} trailing"), JsonError);
  EXPECT_THROW(Json::parse("{\"a\" 1}"), JsonError);
}

TEST(Json, TypeMismatchThrows) {
  const Json doc = Json::parse("42");
  EXPECT_THROW((void)doc.as_string(), JsonError);
  EXPECT_THROW((void)doc.as_array(), JsonError);
  EXPECT_THROW((void)doc.as_object(), JsonError);
  EXPECT_THROW((void)doc.as_bool(), JsonError);
  EXPECT_THROW((void)doc.at("x"), JsonError);
}

TEST(Json, FindReturnsNullWhenAbsent) {
  const Json doc = Json::parse(R"({"a": 1})");
  EXPECT_NE(doc.find("a"), nullptr);
  EXPECT_EQ(doc.find("b"), nullptr);
  EXPECT_EQ(Json(3.0).find("a"), nullptr);
}

TEST(Json, RoundTripCompact) {
  const std::string text = R"({"name":"rule","conf":0.97601,"ok":true,"tags":[1,2,3],"sub":{"x":null}})";
  const Json doc = Json::parse(text);
  EXPECT_EQ(Json::parse(doc.dump()).dump(), doc.dump());
}

TEST(Json, DumpPrettyParsesBack) {
  Json doc;
  doc.set("a", Json(1.5));
  doc.set("b", Json(JsonArray{Json("x"), Json(nullptr)}));
  const std::string pretty = doc.dump(2);
  EXPECT_NE(pretty.find('\n'), std::string::npos);
  EXPECT_EQ(Json::parse(pretty).dump(), doc.dump());
}

TEST(Json, DumpIntegersWithoutDecimals) {
  EXPECT_EQ(Json(42.0).dump(), "42");
  EXPECT_EQ(Json(-3.0).dump(), "-3");
  EXPECT_EQ(Json(2.5).dump(), "2.5");
}

TEST(Json, DumpEscapesControlCharacters) {
  EXPECT_EQ(Json(std::string("a\nb")).dump(), "\"a\\nb\"");
  EXPECT_EQ(Json(std::string("q\"q")).dump(), "\"q\\\"q\"");
  EXPECT_EQ(Json(std::string(1, '\x01')).dump(), "\"\\u0001\"");
}

TEST(Json, SetOverwritesAndPreservesOrder) {
  Json doc;
  doc.set("z", Json(1.0));
  doc.set("a", Json(2.0));
  doc.set("z", Json(3.0));
  const auto& obj = doc.as_object();
  ASSERT_EQ(obj.size(), 2u);
  EXPECT_EQ(obj[0].first, "z");
  EXPECT_DOUBLE_EQ(obj[0].second.as_number(), 3.0);
  EXPECT_EQ(obj[1].first, "a");
}

TEST(Json, SetOnNullCreatesObject) {
  Json doc;  // null
  EXPECT_TRUE(doc.is_null());
  doc.set("k", Json("v"));
  EXPECT_TRUE(doc.is_object());
}

TEST(Json, AsIntRounds) {
  EXPECT_EQ(Json(3.6).as_int(), 4);
  EXPECT_EQ(Json(-2.4).as_int(), -2);
}

TEST(Json, NanSerializesAsNull) {
  EXPECT_EQ(Json(std::nan("")).dump(), "null");
}

TEST(Json, EmptyContainers) {
  EXPECT_EQ(Json(JsonArray{}).dump(), "[]");
  EXPECT_EQ(Json(JsonObject{}).dump(), "{}");
  EXPECT_EQ(Json::parse("[]").as_array().size(), 0u);
  EXPECT_EQ(Json::parse("{}").as_object().size(), 0u);
}

}  // namespace
}  // namespace scrubber::util
