#include "util/table.hpp"

#include <gtest/gtest.h>

namespace scrubber::util {
namespace {

TEST(TextTable, AlignsColumns) {
  TextTable table;
  table.set_header({"name", "value"});
  table.add_row({"a", "1"});
  table.add_row({"longer", "22"});
  const std::string out = table.render();
  // Each row has the same position for the second column.
  const auto lines_start = out.find("a ");
  EXPECT_NE(lines_start, std::string::npos);
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("longer  22"), std::string::npos);
}

TEST(TextTable, HeaderSeparatorPresent) {
  TextTable table;
  table.set_header({"h"});
  table.add_row({"x"});
  EXPECT_NE(table.render().find("-"), std::string::npos);
}

TEST(TextTable, NoHeaderNoSeparator) {
  TextTable table;
  table.add_row({"x", "y"});
  EXPECT_EQ(table.render().find("-"), std::string::npos);
}

TEST(TextTable, RaggedRowsSupported) {
  TextTable table;
  table.add_row({"a"});
  table.add_row({"b", "c", "d"});
  const std::string out = table.render();
  EXPECT_NE(out.find("d"), std::string::npos);
  EXPECT_EQ(table.row_count(), 2u);
}

TEST(Format, Fmt) {
  EXPECT_EQ(fmt(3.14159, 2), "3.14");
  EXPECT_EQ(fmt(1.0, 0), "1");
  EXPECT_EQ(fmt(-0.5, 3), "-0.500");
}

TEST(Format, FmtCount) {
  EXPECT_EQ(fmt_count(0), "0");
  EXPECT_EQ(fmt_count(999), "999");
  EXPECT_EQ(fmt_count(1000), "1,000");
  EXPECT_EQ(fmt_count(1234567), "1,234,567");
  EXPECT_EQ(fmt_count(1000000000ULL), "1,000,000,000");
}

TEST(Format, FmtPct) {
  EXPECT_EQ(fmt_pct(0.5, 1), "50.0%");
  EXPECT_EQ(fmt_pct(0.123456, 2), "12.35%");
}

TEST(Format, Bar) {
  EXPECT_EQ(bar(0.0, 4), "....");
  EXPECT_EQ(bar(1.0, 4), "####");
  EXPECT_EQ(bar(0.5, 4), "##..");
  EXPECT_EQ(bar(2.0, 4), "####");   // clamped
  EXPECT_EQ(bar(-1.0, 4), "....");  // clamped
}

}  // namespace
}  // namespace scrubber::util
