// Property tests for the learning-plane thread pool: the determinism
// contract (bit-identical results for any thread count), the static
// chunking layout callers' ordered merges rely on, exception propagation,
// and nested-region behavior. Run in every sanitizer config; the TSan job
// is the one that proves the concurrent paths race-free.

#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <stdexcept>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace scrubber::util {
namespace {

TEST(ThreadPool, ParallelForVisitsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr std::size_t kN = 1000;
  std::vector<std::atomic<int>> visits(kN);
  pool.parallel_for(kN, [&](std::size_t i) {
    visits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(visits[i].load(std::memory_order_relaxed), 1) << "index " << i;
  }
}

TEST(ThreadPool, ChunksPartitionTheRangeContiguouslyAscending) {
  ThreadPool pool(3);
  constexpr std::size_t kN = 100;
  const std::size_t chunks = pool.plan_chunks(kN);
  ASSERT_EQ(chunks, 3u);
  std::vector<std::pair<std::size_t, std::size_t>> bounds(chunks);
  pool.parallel_for_chunks(kN, [&](std::size_t c, std::size_t begin,
                                   std::size_t end) {
    bounds[c] = {begin, end};
  });
  EXPECT_EQ(bounds.front().first, 0u);
  EXPECT_EQ(bounds.back().second, kN);
  for (std::size_t c = 1; c < chunks; ++c) {
    EXPECT_EQ(bounds[c].first, bounds[c - 1].second)
        << "chunk " << c << " not contiguous";
  }
}

TEST(ThreadPool, PlanChunksRespectsMaxChunksAndSmallRanges) {
  ThreadPool pool(8);
  EXPECT_EQ(pool.plan_chunks(3), 3u);   // never more chunks than work
  EXPECT_EQ(pool.plan_chunks(100), 8u);
  EXPECT_EQ(pool.plan_chunks(100, 1), 1u);
  EXPECT_EQ(pool.plan_chunks(100, 5), 5u);
  EXPECT_EQ(pool.plan_chunks(0), 0u);
}

TEST(ThreadPool, PerIndexResultsIdenticalForAnyThreadCount) {
  constexpr std::size_t kN = 4096;
  std::vector<double> reference;
  for (const unsigned threads : {1u, 2u, 3u, 8u}) {
    ThreadPool pool(threads);
    std::vector<double> out(kN, 0.0);
    pool.parallel_for(kN, [&](std::size_t i) {
      out[i] = std::sin(static_cast<double>(i)) * 1e6;
    });
    if (reference.empty()) {
      reference = out;
    } else {
      EXPECT_EQ(out, reference) << "thread count " << threads;
    }
  }
}

// The merge discipline every call site uses: per-chunk running argmax
// (strict >) folded in ascending chunk order equals the sequential left
// fold, for any chunk partition — including duplicated maxima, where the
// earliest index must win.
TEST(ThreadPool, OrderedChunkMergeEqualsSequentialArgmax) {
  constexpr std::size_t kN = 513;
  Rng rng(99);
  std::vector<double> values(kN);
  for (double& v : values) v = rng.uniform();
  values[100] = 2.0;  // duplicated maximum: index 100 must win
  values[400] = 2.0;

  std::size_t sequential_best = 0;
  for (std::size_t i = 1; i < kN; ++i) {
    if (values[i] > values[sequential_best]) sequential_best = i;
  }

  for (const unsigned threads : {1u, 2u, 5u, 8u}) {
    ThreadPool pool(threads);
    const std::size_t chunks = pool.plan_chunks(kN);
    std::vector<std::size_t> chunk_best(chunks, 0);
    pool.parallel_for_chunks(kN, [&](std::size_t c, std::size_t begin,
                                     std::size_t end) {
      std::size_t best = begin;
      for (std::size_t i = begin + 1; i < end; ++i) {
        if (values[i] > values[best]) best = i;
      }
      chunk_best[c] = best;
    });
    std::size_t best = chunk_best[0];
    for (std::size_t c = 1; c < chunks; ++c) {
      if (values[chunk_best[c]] > values[best]) best = chunk_best[c];
    }
    EXPECT_EQ(best, sequential_best) << "thread count " << threads;
  }
}

TEST(ThreadPool, ParallelReduceBitIdenticalForAnyThreadCount) {
  constexpr std::size_t kN = 10'000;
  Rng rng(7);
  std::vector<double> values(kN);
  for (double& v : values) v = rng.normal(0.0, 1e6);  // rounding-hostile

  const auto sum_with = [&](unsigned threads) {
    ThreadPool pool(threads);
    return pool.parallel_reduce(
        kN, /*grain=*/64, 0.0,
        [&](std::size_t begin, std::size_t end) {
          double s = 0.0;
          for (std::size_t i = begin; i < end; ++i) s += values[i];
          return s;
        },
        [](double a, double b) { return a + b; });
  };

  const double reference = sum_with(1);
  for (const unsigned threads : {2u, 3u, 7u, 16u}) {
    const double sum = sum_with(threads);
    EXPECT_EQ(sum, reference) << "thread count " << threads;  // exact bits
  }
}

TEST(ThreadPool, LowestChunkExceptionPropagatesAndPoolStaysUsable) {
  ThreadPool pool(4);
  constexpr std::size_t kN = 100;  // chunks: [0,25) [25,50) [50,75) [75,100)
  try {
    pool.parallel_for(kN, [](std::size_t i) {
      if (i >= 50) throw std::runtime_error(std::to_string(i));
    });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    // Chunk 2 is the lowest throwing chunk; it scans ascending from 50.
    EXPECT_STREQ(e.what(), "50");
  }
  // The pool survives: the next region runs to completion.
  std::vector<int> out(kN, 0);
  pool.parallel_for(kN, [&](std::size_t i) { out[i] = 1; });
  for (const int v : out) EXPECT_EQ(v, 1);
}

TEST(ThreadPool, NestedRegionsRunInlineWithCorrectResults) {
  ThreadPool pool(4);
  constexpr std::size_t kOuter = 8;
  constexpr std::size_t kInner = 64;
  std::vector<std::vector<double>> out(kOuter);
  pool.parallel_for(kOuter, [&](std::size_t o) {
    out[o].assign(kInner, 0.0);
    // Nested region: must not deadlock, must produce the same values.
    pool.parallel_for(kInner, [&](std::size_t i) {
      out[o][i] = static_cast<double>(o * kInner + i);
    });
  });
  for (std::size_t o = 0; o < kOuter; ++o) {
    for (std::size_t i = 0; i < kInner; ++i) {
      EXPECT_EQ(out[o][i], static_cast<double>(o * kInner + i));
    }
  }
}

TEST(ThreadPool, TrainingPoolReconfigures) {
  const unsigned two = set_training_threads(2);
  EXPECT_EQ(two, 2u);
  EXPECT_EQ(training_threads(), 2u);
  EXPECT_EQ(training_pool().thread_count(), 2u);
  // 0 restores the hardware default.
  const unsigned restored = set_training_threads(0);
  EXPECT_GE(restored, 1u);
}

}  // namespace
}  // namespace scrubber::util
