#include "runtime/engine.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>
#include <vector>

namespace scrubber::runtime {
namespace {

net::SflowDatagram datagram_at(std::uint32_t minute, std::uint32_t dst,
                               std::uint32_t samples = 2) {
  net::SflowDatagram datagram;
  datagram.agent = net::Ipv4Address(0x0AFF0001);
  datagram.uptime_ms = std::uint64_t{minute} * 60'000;
  for (std::uint32_t k = 0; k < samples; ++k) {
    net::SflowFlowSample sample;
    sample.sampling_rate = 1;
    sample.input_port = 5;
    sample.packet.src_ip = net::Ipv4Address(0x80000000 + k);
    sample.packet.dst_ip = net::Ipv4Address(dst + k);
    sample.packet.src_port = 123;
    sample.packet.dst_port = 44000;
    sample.packet.protocol = 17;
    sample.packet.length = 468;
    datagram.samples.push_back(sample);
  }
  return datagram;
}

TEST(Engine, DeliversEveryMinuteInOrderUnderBlockPolicy) {
  EngineConfig config;
  config.shards = 4;
  config.queue_capacity = 32;  // small queues: force real backpressure
  config.backpressure = Backpressure::kBlock;
  config.collector.sampling_rate = 1;

  std::vector<std::uint32_t> minutes;
  std::uint64_t flows = 0;
  Engine engine(config,
                [&](std::uint32_t minute, std::span<const net::FlowRecord> f) {
                  minutes.push_back(minute);
                  flows += f.size();
                });

  constexpr std::uint32_t kMinutes = 120;
  for (std::uint32_t minute = 0; minute < kMinutes; ++minute) {
    for (std::uint32_t d = 0; d < 3; ++d) {
      EXPECT_TRUE(engine.push(datagram_at(minute, 0xC0A80000 + 16 * d)));
    }
  }
  engine.finish();

  const EngineSnapshot stats = engine.stats();
  EXPECT_EQ(stats.input_drops, 0u);   // block policy never sheds
  EXPECT_EQ(stats.late_drops, 0u);
  EXPECT_EQ(stats.datagrams, kMinutes * 3);
  // 3 datagrams/minute x 2 samples, all distinct flow keys.
  EXPECT_EQ(stats.flows_out, std::uint64_t{kMinutes} * 6);
  EXPECT_EQ(flows, stats.flows_out);
  ASSERT_EQ(minutes.size(), kMinutes);
  for (std::size_t i = 0; i < minutes.size(); ++i) {
    EXPECT_EQ(minutes[i], i);  // strictly minute-ordered delivery
  }
}

TEST(Engine, OutputInvariantUnderBatchSize) {
  // End-to-end over the whole stage graph: input-ring batching plus
  // shard-ring batching must not change a single emitted flow. batch=1 is
  // the single-record baseline; 5 forces ragged flushes around control
  // events; 512 exceeds capacity/4 and exercises the clamp.
  const auto run_with_batch = [](std::size_t batch_records) {
    EngineConfig config;
    config.shards = 3;
    config.queue_capacity = 32;
    config.batch_records = batch_records;
    config.backpressure = Backpressure::kBlock;
    config.collector.sampling_rate = 1;
    std::vector<std::pair<std::uint32_t, std::vector<net::FlowRecord>>> out;
    Engine engine(
        config, [&](std::uint32_t minute, std::span<const net::FlowRecord> f) {
          out.emplace_back(minute,
                           std::vector<net::FlowRecord>(f.begin(), f.end()));
        });
    for (std::uint32_t minute = 0; minute < 90; ++minute) {
      for (std::uint32_t d = 0; d < 4; ++d) {
        EXPECT_TRUE(engine.push(datagram_at(minute, 0xC0A80000 + 16 * d)));
      }
    }
    engine.finish();
    EXPECT_EQ(engine.stats().input_drops, 0u);
    return out;
  };

  const auto reference = run_with_batch(1);
  ASSERT_EQ(reference.size(), 90u);
  EXPECT_EQ(reference, run_with_batch(5));
  EXPECT_EQ(reference, run_with_batch(512));
}

TEST(Engine, DropPolicyShedsLoadWithoutDeadlock) {
  EngineConfig config;
  config.shards = 2;
  config.queue_capacity = 8;  // tiny bounded queues everywhere
  config.backpressure = Backpressure::kDrop;
  config.collector.sampling_rate = 1;

  Engine engine(config,
                [&](std::uint32_t, std::span<const net::FlowRecord>) {
                  // Slow model: scoring lags far behind ingest.
                  std::this_thread::sleep_for(std::chrono::milliseconds(2));
                });

  constexpr std::uint32_t kMinutes = 400;
  std::uint64_t accepted = 0;
  for (std::uint32_t minute = 0; minute < kMinutes; ++minute) {
    if (engine.push(datagram_at(minute, 0xC0A80000))) ++accepted;
  }
  engine.finish();  // must return: bounded queues + drops, no deadlock

  const EngineSnapshot stats = engine.stats();
  EXPECT_GT(stats.input_drops, 0u);  // queue filled -> counter incremented
  EXPECT_EQ(stats.input_drops, kMinutes - accepted);
  EXPECT_EQ(stats.datagrams, accepted);
  EXPECT_GT(stats.flows_out, 0u);  // accepted portion still flowed through
}

TEST(Engine, WirePathDecodesAndCountsErrors) {
  EngineConfig config;
  config.shards = 2;
  config.collector.sampling_rate = 1;

  std::uint64_t flows = 0;
  Engine engine(config,
                [&](std::uint32_t, std::span<const net::FlowRecord> f) {
                  flows += f.size();
                });
  for (std::uint32_t minute = 0; minute < 10; ++minute) {
    EXPECT_TRUE(engine.push_wire(datagram_at(minute, 0xC0A80000).encode()));
  }
  EXPECT_TRUE(engine.push_wire({0xDE, 0xAD, 0xBE, 0xEF}));  // malformed
  engine.finish();

  const EngineSnapshot stats = engine.stats();
  EXPECT_EQ(stats.decode_errors, 1u);
  EXPECT_EQ(stats.datagrams, 10u);
  EXPECT_EQ(flows, 20u);
}

TEST(Engine, BgpUpdatesLabelFlowsThroughThePipeline) {
  EngineConfig config;
  config.shards = 3;
  config.collector.sampling_rate = 1;

  std::uint64_t blackholed = 0;
  std::uint64_t total = 0;
  Engine engine(config,
                [&](std::uint32_t, std::span<const net::FlowRecord> f) {
                  for (const auto& flow : f) {
                    blackholed += flow.blackholed;
                    ++total;
                  }
                });
  // Victim 0xC0A80000 blackholed from minute 0; 0xC0A80001 clean.
  engine.push_bgp(bgp::make_blackhole_announcement(
                      net::Ipv4Prefix::host(net::Ipv4Address(0xC0A80000)),
                      64512, net::Ipv4Address(1)),
                  0);
  for (std::uint32_t minute = 0; minute < 20; ++minute) {
    EXPECT_TRUE(engine.push(datagram_at(minute, 0xC0A80000)));
  }
  engine.finish();

  ASSERT_EQ(total, 40u);      // 2 samples/datagram, distinct dst per sample
  EXPECT_EQ(blackholed, 20u); // exactly the announced victim's flows
  EXPECT_EQ(engine.stats().bgp_updates, 1u);
}

TEST(Engine, StatsSnapshotIsCallableMidRun) {
  EngineConfig config;
  config.shards = 2;
  Engine engine(config, nullptr);
  for (std::uint32_t minute = 0; minute < 5; ++minute) {
    EXPECT_TRUE(engine.push(datagram_at(minute, 0xC0A80000)));
  }
  const EngineSnapshot mid = engine.stats();  // running workers
  EXPECT_GE(mid.wall_seconds, 0.0);
  EXPECT_EQ(mid.stages.size(), 5u);  // decode, route, collect, merge, score
  engine.finish();
  EXPECT_EQ(engine.stats().datagrams, 5u);
}

}  // namespace
}  // namespace scrubber::runtime
