#include "runtime/sharded_collector.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "core/collector.hpp"
#include "flowgen/generator.hpp"

namespace scrubber::runtime {
namespace {

using MinuteBatches = std::map<std::uint32_t, std::vector<net::FlowRecord>>;

/// One replayable capture event: BGP updates interleaved with datagrams in
/// stream-time order, exactly as both pipelines receive them.
struct CaptureEvent {
  bool is_bgp = false;
  net::SflowDatagram datagram;
  bgp::UpdateMessage update;
  std::uint32_t minute = 0;
};

/// Builds a deterministic event stream from a seeded flowgen trace.
/// IXP-SE: mid-size with enough attacks/day that a few-hour trace carries
/// blackhole announcements (so labels are actually exercised).
std::vector<CaptureEvent> make_stream(std::uint32_t minutes,
                                      std::uint32_t sampling_rate,
                                      std::uint64_t seed) {
  flowgen::TrafficGenerator generator(flowgen::ixp_se(), seed);
  const auto trace = generator.generate(0, minutes);
  const auto datagrams = core::flows_to_datagrams(
      trace.flows, sampling_rate, net::Ipv4Address(0x0AFF0001));

  std::vector<CaptureEvent> events;
  std::size_t next_update = 0;
  for (const auto& datagram : datagrams) {
    const auto minute =
        static_cast<std::uint32_t>(datagram.uptime_ms / 60'000);
    while (next_update < trace.updates.size() &&
           trace.updates[next_update].first <= minute) {
      CaptureEvent event;
      event.is_bgp = true;
      event.update = trace.updates[next_update].second;
      event.minute = trace.updates[next_update].first;
      events.push_back(std::move(event));
      ++next_update;
    }
    CaptureEvent event;
    event.datagram = datagram;
    events.push_back(std::move(event));
  }
  return events;
}

/// Reference pipeline: the single-threaded core::Collector, with each
/// minute batch put into canonical order for comparison.
MinuteBatches run_single(const std::vector<CaptureEvent>& events,
                         core::Collector::Config config) {
  MinuteBatches batches;
  core::Collector collector(
      config, [&](std::uint32_t minute, std::span<const net::FlowRecord> f) {
        auto& bucket = batches[minute];
        EXPECT_TRUE(bucket.empty()) << "minute emitted twice: " << minute;
        bucket.assign(f.begin(), f.end());
        std::sort(bucket.begin(), bucket.end(), canonical_flow_less);
      });
  for (const auto& event : events) {
    if (event.is_bgp) {
      collector.ingest_bgp(event.update, std::uint64_t{event.minute} * 60'000);
    } else {
      collector.ingest(event.datagram);
    }
  }
  collector.flush();
  return batches;
}

/// The sharded multi-threaded pipeline over the same stream.
MinuteBatches run_sharded(const std::vector<CaptureEvent>& events,
                          core::Collector::Config config, std::size_t shards,
                          std::size_t batch_records = kDefaultBatchRecords) {
  MinuteBatches batches;
  ShardedCollectorConfig sharded_config;
  sharded_config.shards = shards;
  sharded_config.collector = config;
  sharded_config.queue_capacity = 64;  // small: exercise ring wraparound
  sharded_config.batch_records = batch_records;
  ShardedCollector collector(
      sharded_config,
      [&](std::uint32_t minute, std::span<const net::FlowRecord> f) {
        auto& bucket = batches[minute];
        EXPECT_TRUE(bucket.empty()) << "minute emitted twice: " << minute;
        bucket.assign(f.begin(), f.end());
      });
  for (const auto& event : events) {
    if (event.is_bgp) {
      collector.ingest_bgp(event.update, std::uint64_t{event.minute} * 60'000);
    } else {
      collector.ingest(event.datagram);
    }
  }
  collector.finish();
  EXPECT_EQ(collector.late_datagrams(), 0u);
  return batches;
}

void expect_identical(const MinuteBatches& expected,
                      const MinuteBatches& actual, std::size_t shards) {
  ASSERT_EQ(expected.size(), actual.size()) << "shards=" << shards;
  for (const auto& [minute, flows] : expected) {
    const auto it = actual.find(minute);
    ASSERT_NE(it, actual.end()) << "missing minute " << minute;
    ASSERT_EQ(flows.size(), it->second.size())
        << "minute " << minute << " shards=" << shards;
    for (std::size_t i = 0; i < flows.size(); ++i) {
      // FlowRecord operator== covers every field, label included.
      ASSERT_EQ(flows[i], it->second[i])
          << "minute " << minute << " flow " << i << " shards=" << shards;
    }
  }
}

TEST(ShardedCollector, BitIdenticalToSingleCollectorAcrossShardCounts) {
  core::Collector::Config config;
  config.sampling_rate = 4;
  config.reorder_slack_min = 1;
  const auto events = make_stream(/*minutes=*/180, config.sampling_rate, 77);
  bool saw_blackholed = false;
  const MinuteBatches reference = run_single(events, config);
  ASSERT_FALSE(reference.empty());
  for (const auto& [minute, flows] : reference) {
    for (const auto& flow : flows) saw_blackholed |= flow.blackholed;
  }
  EXPECT_TRUE(saw_blackholed) << "trace has no labels; test is too weak";

  for (const std::size_t shards : {1u, 2u, 4u, 7u}) {
    expect_identical(reference, run_sharded(events, config, shards), shards);
  }
}

TEST(ShardedCollector, BitIdenticalAcrossBatchSizes) {
  // The batching layer only changes ring-transfer granularity; the merge
  // must see the exact same per-shard sequences. batch=1 degenerates to
  // the pre-batching single-record path, 3 forces mid-datagram batch cuts
  // and ragged flushes, 64 (vs capacity 64) exercises the clamp to
  // capacity/4.
  core::Collector::Config config;
  config.sampling_rate = 4;
  config.reorder_slack_min = 1;
  const auto events = make_stream(/*minutes=*/120, config.sampling_rate, 55);
  const MinuteBatches reference = run_single(events, config);
  ASSERT_FALSE(reference.empty());

  for (const std::size_t batch_records : {1u, 3u, 64u}) {
    for (const std::size_t shards : {1u, 3u}) {
      expect_identical(reference,
                       run_sharded(events, config, shards, batch_records),
                       shards);
    }
  }
}

TEST(ShardedCollector, EquivalenceHoldsWithAnonymization) {
  // Labels are computed before hashing and the anonymizer is stateless,
  // so the determinism argument survives the privacy layer.
  const core::Collector::Config config{.sampling_rate = 4,
                                       .reorder_slack_min = 1,
                                       .anonymization_salt = 999};
  const auto events = make_stream(/*minutes=*/90, config.sampling_rate, 31);
  const MinuteBatches reference = run_single(events, config);
  ASSERT_FALSE(reference.empty());
  expect_identical(reference, run_sharded(events, config, 3), 3);
}

TEST(ShardedCollector, QuietShardsAdvanceViaPunctuation) {
  // Every datagram targets ONE destination, so with 8 shards at least 7
  // never see a sample. Without watermark punctuation the merge barrier
  // would stall forever; with it, every minute still closes.
  std::vector<CaptureEvent> events;
  for (std::uint32_t minute = 0; minute < 30; ++minute) {
    net::SflowDatagram datagram;
    datagram.agent = net::Ipv4Address(0x0A000001);
    datagram.uptime_ms = std::uint64_t{minute} * 60'000;
    net::SflowFlowSample sample;
    sample.sampling_rate = 1;
    sample.input_port = 3;
    sample.packet.src_ip = net::Ipv4Address(0x80000000 + minute);
    sample.packet.dst_ip = net::Ipv4Address(0xC0A80001);  // single victim
    sample.packet.src_port = 123;
    sample.packet.dst_port = 44000;
    sample.packet.protocol = 17;
    sample.packet.length = 400;
    datagram.samples.push_back(sample);
    CaptureEvent event;
    event.datagram = datagram;
    events.push_back(std::move(event));
  }

  core::Collector::Config config;
  config.sampling_rate = 1;
  config.reorder_slack_min = 1;
  const MinuteBatches reference = run_single(events, config);
  ASSERT_EQ(reference.size(), 30u);
  expect_identical(reference, run_sharded(events, config, 8), 8);
}

TEST(ShardOf, IsStableAndInRange) {
  for (std::uint32_t ip = 0; ip < 10'000; ip += 37) {
    const std::size_t shard = shard_of(net::Ipv4Address(ip), 5);
    EXPECT_LT(shard, 5u);
    EXPECT_EQ(shard, shard_of(net::Ipv4Address(ip), 5));  // stable
  }
  EXPECT_EQ(shard_of(net::Ipv4Address(1234), 1), 0u);
}

TEST(CanonicalFlowLess, IsAStrictTotalOrderOverContent) {
  net::FlowRecord a;
  a.minute = 1;
  a.src_ip = net::Ipv4Address(10);
  net::FlowRecord b = a;
  EXPECT_FALSE(canonical_flow_less(a, b));  // irreflexive on equal content
  b.bytes = 7;
  EXPECT_TRUE(canonical_flow_less(a, b) != canonical_flow_less(b, a));
  b = a;
  b.minute = 2;
  EXPECT_TRUE(canonical_flow_less(a, b));
}

}  // namespace
}  // namespace scrubber::runtime
