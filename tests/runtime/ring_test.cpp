#include "runtime/ring.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <numeric>
#include <thread>
#include <vector>

namespace scrubber::runtime {
namespace {

TEST(SpscRing, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(SpscRing<int>(1).capacity(), 1u);
  EXPECT_EQ(SpscRing<int>(2).capacity(), 2u);
  EXPECT_EQ(SpscRing<int>(3).capacity(), 4u);
  EXPECT_EQ(SpscRing<int>(1000).capacity(), 1024u);
}

TEST(SpscRing, FullAndEmptyEdges) {
  SpscRing<int> ring(4);
  int out = 0;
  EXPECT_FALSE(ring.try_pop(out));  // empty
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(ring.try_push(i + 10));
  EXPECT_FALSE(ring.try_push(99));  // full
  EXPECT_EQ(ring.size(), 4u);
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(ring.try_pop(out));
    EXPECT_EQ(out, i + 10);  // FIFO
  }
  EXPECT_FALSE(ring.try_pop(out));  // drained
  EXPECT_TRUE(ring.empty());
}

TEST(SpscRing, WraparoundPreservesOrder) {
  SpscRing<int> ring(8);
  int out = 0;
  // Cycle many times past the index wrap within the ring.
  for (int round = 0; round < 100; ++round) {
    for (int i = 0; i < 5; ++i) EXPECT_TRUE(ring.try_push(round * 5 + i));
    for (int i = 0; i < 5; ++i) {
      ASSERT_TRUE(ring.try_pop(out));
      EXPECT_EQ(out, round * 5 + i);
    }
  }
}

TEST(SpscRing, TwoThreadStress) {
  // Producer and consumer hammer a tiny ring so every wraparound and
  // full/empty transition is exercised; the consumer checks FIFO order.
  constexpr std::uint64_t kItems = 200'000;
  SpscRing<std::uint64_t> ring(16);
  std::atomic<bool> abort{false};

  std::thread producer([&] {
    for (std::uint64_t i = 0; i < kItems; ++i) {
      ASSERT_TRUE(ring.push_blocking(std::uint64_t{i}, abort));
    }
  });

  std::uint64_t expected = 0;
  std::uint64_t sum = 0;
  while (expected < kItems) {
    std::uint64_t value = 0;
    if (!ring.try_pop(value)) {
      std::this_thread::yield();
      continue;
    }
    ASSERT_EQ(value, expected);  // strict FIFO, nothing lost or duplicated
    sum += value;
    ++expected;
  }
  producer.join();
  EXPECT_EQ(sum, kItems * (kItems - 1) / 2);
  EXPECT_TRUE(ring.empty());
}

TEST(SpscRing, PushBlockingAbortsWhenFlagged) {
  SpscRing<int> ring(2);
  ASSERT_TRUE(ring.try_push(1));
  ASSERT_TRUE(ring.try_push(2));
  std::atomic<bool> abort{true};
  EXPECT_FALSE(ring.push_blocking(3, abort));  // full + aborted -> false
}

TEST(MpscQueue, MultiProducerDeliversEverything) {
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 10'000;
  MpscQueue<int> queue(64);

  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&queue, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        ASSERT_TRUE(queue.push(p * kPerProducer + i));
      }
    });
  }

  std::vector<int> seen(kProducers * kPerProducer, 0);
  std::vector<int> last_per_producer(kProducers, -1);
  for (int n = 0; n < kProducers * kPerProducer; ++n) {
    int value = 0;
    ASSERT_TRUE(queue.pop(value));
    ++seen[static_cast<std::size_t>(value)];
    // Per-producer FIFO: values from one producer arrive in order.
    const int producer = value / kPerProducer;
    const auto producer_at = static_cast<std::size_t>(producer);
    EXPECT_GT(value % kPerProducer, last_per_producer[producer_at]);
    last_per_producer[producer_at] = value % kPerProducer;
  }
  for (auto& t : producers) t.join();
  EXPECT_EQ(std::accumulate(seen.begin(), seen.end(), 0),
            kProducers * kPerProducer);
  for (const int count : seen) EXPECT_EQ(count, 1);
  EXPECT_LE(queue.highwater(), 64u);
  EXPECT_GT(queue.highwater(), 0u);
}

TEST(MpscQueue, CloseDrainsThenStops) {
  MpscQueue<int> queue(8);
  ASSERT_TRUE(queue.push(1));
  ASSERT_TRUE(queue.push(2));
  queue.close();
  EXPECT_FALSE(queue.push(3));  // closed to producers immediately
  int value = 0;
  EXPECT_TRUE(queue.pop(value));  // ...but queued items drain
  EXPECT_EQ(value, 1);
  EXPECT_TRUE(queue.pop(value));
  EXPECT_EQ(value, 2);
  EXPECT_FALSE(queue.pop(value));  // closed + drained
}

TEST(MpscQueue, PopUnblocksOnClose) {
  MpscQueue<int> queue(8);
  std::thread closer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    queue.close();
  });
  int value = 0;
  EXPECT_FALSE(queue.pop(value));  // was blocked, woken by close
  closer.join();
}

}  // namespace
}  // namespace scrubber::runtime
