// Steady-state zero-allocation proof for the pooled wire ingest path.
//
// The tentpole claim of the zero-allocation ingest work is structural:
// once every capacity is minted (pool slots, input batches, shard
// messages, flow-cache tables), a datagram travels
//
//   pooled slot → input ring → fused decode→route → shard ring → collect
//
// without a single heap allocation. This test makes the claim executable:
// a counting global operator new observes the whole process, the engine is
// warmed until every recycle ring is primed, and then a measured window of
// pooled pushes must leave the allocation counter exactly where it was.
//
// The counting overrides are compiled only in SCRUBBER_CHECKED builds and
// never under sanitizers (ASan/TSan/MSan interpose their own allocator and
// must keep it); elsewhere the test compiles to a skip.

#include "runtime/engine.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <new>
#include <thread>
#include <vector>

#include "net/sflow.hpp"

#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define SCRUBBER_ZEROALLOC_ACTIVE 0
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer) || \
    __has_feature(memory_sanitizer)
#define SCRUBBER_ZEROALLOC_ACTIVE 0
#endif
#endif
#if !defined(SCRUBBER_ZEROALLOC_ACTIVE)
#if defined(SCRUBBER_CHECKED)
#define SCRUBBER_ZEROALLOC_ACTIVE 1
#else
#define SCRUBBER_ZEROALLOC_ACTIVE 0
#endif
#endif

#if SCRUBBER_ZEROALLOC_ACTIVE

namespace {
/// Process-wide allocation counter; relaxed is enough — the test reads it
/// only across quiesced boundaries.
std::atomic<std::uint64_t> g_alloc_count{0};

void* counted_alloc(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  void* p = std::malloc(size != 0 ? size : 1);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* counted_aligned_alloc(std::size_t size, std::size_t align) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  // aligned_alloc wants size to be a multiple of the alignment.
  const std::size_t padded = (size + align - 1) / align * align;
  void* p = std::aligned_alloc(align, padded != 0 ? padded : align);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
}  // namespace

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  return counted_aligned_alloc(size, static_cast<std::size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return counted_aligned_alloc(size, static_cast<std::size_t>(align));
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

#endif  // SCRUBBER_ZEROALLOC_ACTIVE

namespace scrubber::runtime {
namespace {

#if SCRUBBER_ZEROALLOC_ACTIVE

/// A fixed corpus of well-formed single-minute datagrams over a small,
/// recurring set of flow keys — so the flow cache stops growing after the
/// first round and every later round is pure steady state.
std::vector<std::vector<std::uint8_t>> make_corpus() {
  std::vector<std::vector<std::uint8_t>> corpus;
  for (std::uint32_t d = 0; d < 64; ++d) {
    net::SflowDatagram datagram;
    datagram.agent = net::Ipv4Address(0x0AFF0001);
    datagram.sub_agent_id = d % 4;
    datagram.sequence = d;
    datagram.uptime_ms = 90'000;  // all in export minute 1: no bin churn
    for (std::uint32_t k = 0; k < 4; ++k) {
      net::SflowFlowSample sample;
      sample.sequence = d * 4 + k;
      sample.sampling_rate = 1;
      sample.input_port = 5;
      sample.packet.src_ip = net::Ipv4Address(0x80000000 + (d % 8));
      sample.packet.dst_ip = net::Ipv4Address(0xC0A80000 + ((d * 4 + k) % 16));
      sample.packet.src_port = 123;
      sample.packet.dst_port = 44000;
      sample.packet.protocol = 17;
      sample.packet.length = 468;
      sample.packet.ingress_member = 5;
      datagram.samples.push_back(sample);
    }
    corpus.push_back(datagram.encode());
  }
  return corpus;
}

/// Pushes one full corpus round through pooled slots, spinning (not
/// sleeping, not allocating) when the pool is momentarily dry.
void push_round(Engine& engine, WireBufferPool& pool,
                const std::vector<std::vector<std::uint8_t>>& corpus) {
  for (const std::vector<std::uint8_t>& wire : corpus) {
    WireSlot slot;
    while (!(slot = pool.try_acquire())) {
      std::this_thread::yield();  // decode is draining; bounded wait
    }
    std::memcpy(slot.data(), wire.data(), wire.size());
    slot.set_size(wire.size());
    engine.push_wire(std::move(slot));
  }
}

/// Waits until every pooled slot has been recycled (the decode worker has
/// walked and released every in-flight datagram), then a grace period for
/// the shard workers to drain their rings.
void quiesce(const WireBufferPool& pool) {
  while (pool.in_use() != 0) {
    std::this_thread::yield();
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
}

#endif  // SCRUBBER_ZEROALLOC_ACTIVE

TEST(ZeroAlloc, SteadyStatePooledIngestDoesNotAllocate) {
#if !SCRUBBER_ZEROALLOC_ACTIVE
  GTEST_SKIP() << "counting allocator compiled out (needs SCRUBBER_CHECKED, "
                  "no sanitizer)";
#else
  EngineConfig config;
  config.shards = 2;
  config.queue_capacity = 256;
  config.backpressure = Backpressure::kBlock;
  config.batch_records = 8;
  config.wire_pool_slots = 32;
  config.wire_slot_bytes = 2048;
  config.collector.sampling_rate = 1;

  std::uint64_t sunk_flows = 0;
  Engine engine(config,
                [&](std::uint32_t, std::span<const net::FlowRecord> flows) {
                  sunk_flows += flows.size();
                });
  WireBufferPool* pool = engine.wire_pool();
  ASSERT_NE(pool, nullptr);

  const auto corpus = make_corpus();

  // Warm-up: mint every capacity — pool slots circulate, the batch and
  // shard recycle rings fill with their steady-state fleets, the flow
  // cache reaches its final table size for this key set.
  for (int round = 0; round < 8; ++round) {
    push_round(engine, *pool, corpus);
  }
  quiesce(*pool);

  // Measured window. No gtest assertions inside (they may allocate);
  // verdicts are collected and checked after.
  const std::uint64_t before = g_alloc_count.load(std::memory_order_relaxed);
  for (int round = 0; round < 4; ++round) {
    push_round(engine, *pool, corpus);
  }
  quiesce(*pool);
  const std::uint64_t after = g_alloc_count.load(std::memory_order_relaxed);

  EXPECT_EQ(after - before, 0u)
      << "steady-state pooled wire→shard ingest allocated "
      << (after - before) << " times";

  engine.finish();
  const EngineSnapshot snapshot = engine.stats();
  EXPECT_EQ(snapshot.decode_errors, 0u);
  EXPECT_EQ(snapshot.datagrams, corpus.size() * 12);  // 8 warm + 4 measured
  EXPECT_GT(snapshot.pool_highwater, 0u);
  EXPECT_GT(sunk_flows, 0u);
#endif
}

}  // namespace
}  // namespace scrubber::runtime
