// Self-test for tools/scrubber-lint: runs the real binary over fixture
// trees and checks that each rule fires exactly where the fixtures say it
// should — and nowhere else. Expectations live inline in the fixtures as
// `EXPECT-LINT: rule-a, rule-b` comment markers on the offending line, so
// adding a rule case means adding one fixture line, not editing this file.
//
// The comparison is exact in both directions: a diagnostic without a
// marker is a false positive, a marker without a diagnostic is a false
// negative. Both fail.

#include <gtest/gtest.h>
#include <sys/wait.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

namespace {

namespace fs = std::filesystem;

// (relative path, line, rule-id)
using Key = std::tuple<std::string, int, std::string>;

struct LintRun {
  int exit_code = -1;
  std::vector<std::string> lines;
};

/// Runs scrubber-lint with the given arguments, capturing stdout lines.
LintRun run_lint(const std::string& args) {
  const std::string command =
      std::string(SCRUBBER_LINT_BIN) + " " + args + " 2>/dev/null";
  LintRun run;
  FILE* pipe = popen(command.c_str(), "r");
  if (pipe == nullptr) return run;
  char buffer[4096];
  std::string current;
  while (std::fgets(buffer, sizeof(buffer), pipe) != nullptr) {
    current += buffer;
    while (true) {
      const auto newline = current.find('\n');
      if (newline == std::string::npos) break;
      run.lines.push_back(current.substr(0, newline));
      current.erase(0, newline + 1);
    }
  }
  if (!current.empty()) run.lines.push_back(current);
  const int status = pclose(pipe);
  run.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return run;
}

/// Parses one `file:line: rule message` diagnostic into a Key.
bool parse_diagnostic(const std::string& line, Key& out) {
  const auto first = line.find(':');
  if (first == std::string::npos) return false;
  const auto second = line.find(':', first + 1);
  if (second == std::string::npos) return false;
  int line_number = 0;
  try {
    line_number = std::stoi(line.substr(first + 1, second - first - 1));
  } catch (...) {
    return false;
  }
  auto rule_begin = line.find_first_not_of(' ', second + 1);
  if (rule_begin == std::string::npos) return false;
  auto rule_end = line.find(' ', rule_begin);
  if (rule_end == std::string::npos) rule_end = line.size();
  out = Key{line.substr(0, first), line_number,
            line.substr(rule_begin, rule_end - rule_begin)};
  return true;
}

std::set<Key> actual_diagnostics(const LintRun& run) {
  std::set<Key> out;
  for (const std::string& line : run.lines) {
    Key key;
    EXPECT_TRUE(parse_diagnostic(line, key)) << "unparsable line: " << line;
    if (parse_diagnostic(line, key)) out.insert(key);
  }
  return out;
}

std::string trim(const std::string& text) {
  const auto first = text.find_first_not_of(" \t\r");
  if (first == std::string::npos) return {};
  const auto last = text.find_last_not_of(" \t\r");
  return text.substr(first, last - first + 1);
}

/// Collects every `EXPECT-LINT: rule[, rule...]` marker under `root`.
std::set<Key> expected_diagnostics(const fs::path& root) {
  std::set<Key> out;
  for (const auto& entry : fs::recursive_directory_iterator(root)) {
    if (!entry.is_regular_file()) continue;
    const std::string rel = fs::relative(entry.path(), root).generic_string();
    std::ifstream in(entry.path());
    std::string line;
    int line_number = 0;
    while (std::getline(in, line)) {
      ++line_number;
      const auto marker = line.find("EXPECT-LINT:");
      if (marker == std::string::npos) continue;
      std::string list = line.substr(marker + std::string("EXPECT-LINT:").size());
      // Markers inside block comments carry a trailing `*/`.
      if (const auto close = list.find("*/"); close != std::string::npos) {
        list.resize(close);
      }
      std::stringstream stream(list);
      std::string rule;
      while (std::getline(stream, rule, ',')) {
        rule = trim(rule);
        if (!rule.empty()) out.insert(Key{rel, line_number, rule});
      }
    }
  }
  return out;
}

std::string fixtures(const char* tree) {
  return (fs::path(SCRUBBER_LINT_FIXTURES) / tree).string();
}

TEST(ScrubberLint, ListRulesNamesEveryRule) {
  const LintRun run = run_lint("--list-rules");
  EXPECT_EQ(run.exit_code, 0);
  const std::set<std::string> rules(run.lines.begin(), run.lines.end());
  for (const char* rule :
       {"scrubber-memory-order", "scrubber-hot-path-blocking",
        "scrubber-hot-path-alloc", "scrubber-hot-path-container",
        "scrubber-raw-rand",
        "scrubber-raw-thread", "scrubber-float-counter",
        "scrubber-naked-new", "scrubber-include-guard",
        "scrubber-banned-construct", "scrubber-nolint-needs-reason",
        "scrubber-transitive", "scrubber-deterministic",
        "scrubber-layering", "scrubber-stale-nolint",
        "scrubber-simd-isolation"}) {
    EXPECT_TRUE(rules.count(rule) > 0) << "missing rule id: " << rule;
  }
}

TEST(ScrubberLint, BadFixturesFireExactlyWhereExpected) {
  const LintRun run = run_lint("--root " + fixtures("bad") + " src");
  EXPECT_EQ(run.exit_code, 1) << "violations must produce exit status 1";

  const std::set<Key> actual = actual_diagnostics(run);
  const std::set<Key> expected = expected_diagnostics(fixtures("bad"));
  ASSERT_FALSE(expected.empty()) << "fixture markers failed to parse";

  for (const Key& key : expected) {
    EXPECT_TRUE(actual.count(key) > 0)
        << "false negative: expected " << std::get<2>(key) << " at "
        << std::get<0>(key) << ":" << std::get<1>(key);
  }
  for (const Key& key : actual) {
    EXPECT_TRUE(expected.count(key) > 0)
        << "false positive: unexpected " << std::get<2>(key) << " at "
        << std::get<0>(key) << ":" << std::get<1>(key);
  }
}

TEST(ScrubberLint, CleanFixturesAreSilent) {
  const LintRun run = run_lint("--root " + fixtures("clean") + " src");
  EXPECT_EQ(run.exit_code, 0);
  EXPECT_TRUE(run.lines.empty())
      << "first unexpected diagnostic: " << run.lines.front();
}

TEST(ScrubberLint, RuleFilterRestrictsOutput) {
  const LintRun run = run_lint("--root " + fixtures("bad") +
                               " --rule scrubber-raw-rand src");
  EXPECT_EQ(run.exit_code, 1);
  const std::set<Key> actual = actual_diagnostics(run);
  EXPECT_FALSE(actual.empty());
  for (const Key& key : actual) {
    EXPECT_EQ(std::get<2>(key), "scrubber-raw-rand");
  }
}

TEST(ScrubberLint, MissingTargetIsUsageError) {
  const LintRun run =
      run_lint("--root " + fixtures("bad") + " no/such/dir");
  EXPECT_EQ(run.exit_code, 2);
}

}  // namespace
