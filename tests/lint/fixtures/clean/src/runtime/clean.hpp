#pragma once
// Clean fixture: satisfies every scrubber-* rule — explicit memory orders,
// lock-free hot region, structural ownership, #pragma once. The linter
// must stay completely silent on this tree.
#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

namespace fixture {

class Counter {
 public:
  // scrubber-hot-begin
  void bump() { value_.fetch_add(1, std::memory_order_relaxed); }
  [[nodiscard]] std::uint64_t total_packets() const {
    return value_.load(std::memory_order_acquire);
  }
  // scrubber-hot-end

  [[nodiscard]] static std::unique_ptr<Counter> make() {
    return std::make_unique<Counter>();
  }

  /// Allocation on the cold path (outside any hot region) is fine.
  void note(std::uint64_t value) { history_.push_back(value); }

 private:
  std::atomic<std::uint64_t> value_{0};
  std::vector<std::uint64_t> history_;
};

/// Derived floating-point quantities are fine; raw tallies are integral.
struct MinuteStats {
  std::uint64_t bytes = 0;
  std::uint64_t packets = 0;
  double mean_packet_len = 0.0;
  double bytes_per_second = 0.0;
};

}  // namespace fixture
