#pragma once
// Fixture: scrubber-raw-thread — the serving path owns its shard threads.
#include <thread>

namespace fixture {

class Stage {
 public:
  void start() { worker_ = std::thread([] {}); }
  void stop() {
    if (worker_.joinable()) worker_.join();
  }

 private:
  std::thread worker_;
};

}  // namespace fixture
