#pragma once
// Fixture: the clean mirror of bad/src/runtime/hot_throw.hpp — the hot
// decode path reports malformed input as a status value, and the one
// deliberate unwind (a checked-build invariant) is suppressed at the
// throw site with a justification.
#include <cstddef>
#include <cstdint>

namespace fixture {

enum class ParseStatus { kOk, kTruncated };

class WireParser {
 public:
  // scrubber-hot-begin
  ParseStatus parse(const std::uint8_t* data, std::size_t size) {
    if (size < 4) return ParseStatus::kTruncated;
    last_ = data[0];
    return ParseStatus::kOk;
  }
  void check_invariant(bool ok) {
    // NOLINTNEXTLINE(scrubber-hot-path-throw): checked-build invariant — unreachable when callers honor the parse() status
    if (!ok) throw last_;
  }
  // scrubber-hot-end

  /// Cold path: constructors and config may unwind; the rule is scoped
  /// to the region.
  void configure(int depth) {
    if (depth < 0) throw depth;
  }

 private:
  std::uint8_t last_ = 0;
};

}  // namespace fixture
