#pragma once
// Fixture: layering — runtime depending on core follows the declared DAG
// (runtime -> { runtime, core, net, bgp, util }); no diagnostic.

#include "core/tables.hpp"

namespace fixture {

inline int layered_ok() { return 1; }

}  // namespace fixture
