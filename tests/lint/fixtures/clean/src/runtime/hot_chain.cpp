// Fixture: the clean mirror of bad/src/runtime/hot_chain.cpp — same call
// shape, but the helpers hand out arena slots, and the one genuinely
// allocating callee is suppressed at the call site with a justification.

namespace fixture {

int* chain_helper_a(int n);
void flush_stats();

struct ChainedProducer {
  int* publish(int n) {
    // scrubber-hot-begin
    int* slot = chain_helper_a(n);
    // NOLINTNEXTLINE(scrubber-transitive): stats growth is amortized — the vector is reserved during warm-up
    flush_stats();
    // scrubber-hot-end
    return slot;
  }
};

}  // namespace fixture
