#pragma once
// Clean fixture: src/netio/ is the wire boundary — socket syscalls inside
// its hot regions and a raw receive thread are this subsystem's job, and
// the linter must stay silent on both.
#include <thread>

namespace fixture {

class BatchReceiver {
 public:
  // scrubber-hot-begin
  int harvest(int fd, void* frames, unsigned count) {
    if (poll(nullptr, 0, 0) < 0) return -1;
    return recvmmsg(fd, frames, count, 0, nullptr);
  }
  // scrubber-hot-end

  void start() { thread_ = std::thread([] {}); }
  void stop() {
    if (thread_.joinable()) thread_.join();
  }

 private:
  std::thread thread_;
};

}  // namespace fixture
