// Fixture: the clean mirror of bad/src/chain_helpers.cpp — the whole
// cross-TU chain stays allocation-free (fixed arena, no syscalls), except
// for flush_stats, whose growth the hot caller suppresses with a reason.
#include <vector>

namespace fixture {

constexpr int kSlots = 64;
int g_arena[kSlots];
int g_used = 0;
std::vector<int> g_stats;

int* chain_helper_b(int n) {
  if (g_used + n > kSlots) return nullptr;
  int* slot = g_arena + g_used;
  g_used += n;
  return slot;
}

int* chain_helper_a(int n) { return chain_helper_b(n); }

void flush_stats() { g_stats.push_back(g_used); }

}  // namespace fixture
