// Fixture: scrubber-raw-thread — learning-plane code reads the machine
// width (static member access) but never constructs threads itself.
#include <thread>

namespace fixture {

unsigned plan_width() { return std::thread::hardware_concurrency(); }

}  // namespace fixture
