// Fixture: scrubber-simd-isolation exemption — src/ml/compiled_tree* (the
// lane-table kernel TUs) may use intrinsics freely; nothing here may fire.
#include <immintrin.h>

namespace fixture {

void add4(const double* a, const double* b, double* out) noexcept {
  const __m256d va = _mm256_loadu_pd(a);
  const __m256d vb = _mm256_loadu_pd(b);
  _mm256_storeu_pd(out, _mm256_add_pd(va, vb));
}

}  // namespace fixture
