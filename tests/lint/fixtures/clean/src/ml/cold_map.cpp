// Fixture: node-based containers are fine off the hot path — this file
// has no hot region and is not one of the dedicated hot-path sources.

#include <map>

namespace fixture {

inline int lookup(const std::map<int, int>& table, int key) {
  const auto it = table.find(key);
  return it == table.end() ? 0 : it->second;
}

}  // namespace fixture
