#pragma once
// Fixture: scrubber-raw-thread — the pool itself is the one place in
// src/ (outside the runtime) allowed to own raw workers.
#include <thread>
#include <vector>

namespace fixture {

class Pool {
 public:
  explicit Pool(unsigned threads) {
    for (unsigned w = 1; w < threads; ++w) {
      workers_.emplace_back([] {});
    }
  }

 private:
  std::vector<std::jthread> workers_;
};

}  // namespace fixture
