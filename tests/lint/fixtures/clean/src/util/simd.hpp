#pragma once
// Fixture: scrubber-simd-isolation exemption — src/util/simd.* is one of
// the two sanctioned homes for x86 vector intrinsics; nothing here may
// fire.
#include <immintrin.h>

namespace fixture {

inline __m256d splat4(double value) noexcept {
  return _mm256_set1_pd(value);
}

}  // namespace fixture
