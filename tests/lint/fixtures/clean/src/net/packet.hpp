#pragma once
// Fixture: the NOLINT escape hatch for the hot-path container ban.

#include <map>

namespace fixture {

// Cold-path diagnostics index: populated once at shutdown, never touched
// per flow, so the ordered-iteration convenience is worth the nodes.
using DebugIndex =
    std::map<int, int>;  // NOLINT(scrubber-hot-path-container): cold shutdown-time index, never per-flow

}  // namespace fixture
