#pragma once
// Fixture: the src/netio/ exemption covers socket syscalls ONLY — locks
// and allocation inside a netio hot region still fire like anywhere else.
#include <mutex>
#include <vector>

namespace fixture {

class GreedyReceiver {
 public:
  // scrubber-hot-begin
  long harvest(int fd, void* frames, unsigned long count) {
    std::lock_guard guard(lock_);  // EXPECT-LINT: scrubber-hot-path-blocking
    sizes_.push_back(count);       // EXPECT-LINT: scrubber-hot-path-alloc
    // The syscall itself is exempt here: netio is the wire boundary.
    return recvmmsg(fd, frames, count, 0, nullptr);
  }
  // scrubber-hot-end

 private:
  std::mutex lock_;
  std::vector<unsigned long> sizes_;
};

}  // namespace fixture
