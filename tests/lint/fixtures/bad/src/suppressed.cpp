// Fixture: NOLINT handling — a justified suppression silences the rule,
// a bare NOLINT is itself a violation AND the rule still fires.
#include <cstdlib>

namespace fixture {

int seeded() {
  // NOLINTNEXTLINE(scrubber-raw-rand): fixture proving justified next-line suppression
  int a = rand();
  int b = rand();  // NOLINT(scrubber-raw-rand): fixture proving justified inline suppression
  int c = rand();  // NOLINT(scrubber-raw-rand) EXPECT-LINT: scrubber-raw-rand, scrubber-nolint-needs-reason
  return a + b + c;
}

}  // namespace fixture
