// Fixture: cross-TU helpers for the transitive hot-path chain. The hot
// caller lives in runtime/hot_chain.cpp two hops away; the sins live here,
// in a file with no hot region of its own.
#include <poll.h>

namespace fixture {

int* chain_helper_b(int n) {
  poll(nullptr, 0, n);  // blocking syscall, surfaced only through the chain
  return new int[8];    // EXPECT-LINT: scrubber-naked-new
}

int* chain_helper_a(int n) { return chain_helper_b(n); }

}  // namespace fixture
