#ifndef FIXTURE_GUARDED_HPP /* EXPECT-LINT: scrubber-include-guard */
#define FIXTURE_GUARDED_HPP

namespace fixture {
inline int answer() { return 42; }
}  // namespace fixture

#endif
