// Fixture: scrubber-naked-new — `= delete` declarations are the one
// allowed spelling of the keyword.

namespace fixture {

struct Widget {
  int value = 0;
  Widget() = default;
  Widget(const Widget&) = delete;
  Widget& operator=(const Widget&) = delete;
};

int churn() {
  int* scratch = new int(7);  // EXPECT-LINT: scrubber-naked-new
  int result = *scratch;
  delete scratch;  // EXPECT-LINT: scrubber-naked-new
  return result;
}

}  // namespace fixture
