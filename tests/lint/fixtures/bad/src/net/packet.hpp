#pragma once
// Fixture: node-based containers in the flow-cache hot file — banned
// anywhere in src/net/packet.*, not just inside hot regions.

#include <cstdint>
#include <map>
#include <unordered_map>

namespace fixture {

struct FlowCacheish {
  std::map<std::uint64_t, std::uint64_t> order;           // EXPECT-LINT: scrubber-hot-path-container
  std::unordered_map<std::uint64_t, std::uint64_t> data;  // EXPECT-LINT: scrubber-hot-path-container
};

}  // namespace fixture
