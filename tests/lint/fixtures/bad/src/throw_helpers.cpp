// Fixture: cross-TU helper for the transitive throw chain. The hot
// caller lives in runtime/hot_throw_chain.cpp; the unwind lives here, in
// a file with no hot region of its own (so nothing fires in this file —
// the chain surfaces it at the root call site).

namespace fixture {

int parse_or_throw(int n) {
  if (n < 0) throw n;  // unwinding, surfaced only through the chain
  return n * 2;
}

}  // namespace fixture
