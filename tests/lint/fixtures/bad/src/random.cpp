// Fixture: scrubber-raw-rand — unseeded randomness outside src/util/rng.
#include <cstdlib>
#include <random>

namespace fixture {

int entropy() {
  std::random_device device;  // EXPECT-LINT: scrubber-raw-rand
  int noise = rand();         // EXPECT-LINT: scrubber-raw-rand
  srand(42);                  // EXPECT-LINT: scrubber-raw-rand
  return noise + static_cast<int>(device());  // calling through is not re-flagged
}

}  // namespace fixture
