// Fixture: lexer — backslash-newline continuations extend line comments
// and preprocessor directives over the next physical lines; the spliced
// text is not code and must produce no diagnostics.
#include <cstdlib>

namespace fixture {

// this comment swallows the next physical line via the trailing splice \
rand(); volatile int hidden = 0;

#define NOISE_SOURCE() \
  rand() +             \
  drand48()

int sample() { return rand(); }  // EXPECT-LINT: scrubber-raw-rand

}  // namespace fixture
