#pragma once
// Fixture: scrubber-hot-path-throw — no unwinding between the hot
// markers; the same construct outside the region is allowed (cold-path
// configuration may throw all it wants).
#include <cstddef>
#include <cstdint>
#include <stdexcept>

namespace fixture {

class WireParser {
 public:
  // scrubber-hot-begin
  std::uint32_t parse(const std::uint8_t* data, std::size_t size) {
    if (size < 4) {
      throw std::length_error("truncated");  // EXPECT-LINT: scrubber-hot-path-throw
    }
    return data[0];
  }
  // scrubber-hot-end

  /// Cold path: rejecting a bad config by unwinding is fine out here, so
  /// none of these lines may fire.
  void configure(int depth) {
    if (depth < 0) throw std::length_error("bad depth");
  }
};

}  // namespace fixture
