// Fixture: scrubber-transitive — the hot region itself is spotless; the
// allocation and the blocking syscall are two calls away in another TU
// (chain_helpers.cpp). The diagnostic must land on the root call site.

namespace fixture {

int* chain_helper_a(int n);

struct ChainedProducer {
  int* publish(int n) {
    // scrubber-hot-begin
    int* slot = chain_helper_a(n);  // EXPECT-LINT: scrubber-transitive
    // scrubber-hot-end
    return slot;
  }
};

}  // namespace fixture
