// Fixture: unmatched hot-region markers are violations at the marker line.

namespace fixture {

inline int spin() { return 0; }

/* EXPECT-LINT: scrubber-hot-path-blocking */  // scrubber-hot-end

inline int also_spin() { return 1; }

/* EXPECT-LINT: scrubber-hot-path-blocking */  // scrubber-hot-begin

}  // namespace fixture
