// Fixture: unmatched deterministic-region markers are violations at the
// marker line, same contract as the hot-region markers.

namespace fixture {

inline int merge_quietly() { return 0; }

/* EXPECT-LINT: scrubber-deterministic */  // scrubber-deterministic-end

inline int also_merge() { return 1; }

/* EXPECT-LINT: scrubber-deterministic */  // scrubber-deterministic-begin

}  // namespace fixture
