#pragma once
// Fixture: scrubber-hot-path-blocking — no locks between the hot markers;
// the same construct outside the region is allowed.
#include <mutex>

namespace fixture {

class Ring {
 public:
  // scrubber-hot-begin
  bool try_push(int value) {
    std::lock_guard guard(lock_);  // EXPECT-LINT: scrubber-hot-path-blocking
    value_ = value;
    return true;
  }
  // scrubber-hot-end

  void slow_path() {
    std::lock_guard guard(lock_);
    value_ = 0;
  }

 private:
  std::mutex lock_;
  int value_ = 0;
};

}  // namespace fixture
