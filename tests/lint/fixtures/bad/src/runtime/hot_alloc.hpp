#pragma once
// Fixture: scrubber-hot-path-alloc — no heap allocation between the hot
// markers; the same calls outside the region are allowed (and a naked
// `new` inside the region trips both the alloc and ownership rules).
#include <cstdint>
#include <memory>
#include <vector>

namespace fixture {

class BatchBuffer {
 public:
  // scrubber-hot-begin
  void push(std::uint64_t value) {
    records_.push_back(value);  // EXPECT-LINT: scrubber-hot-path-alloc
  }
  void grow(std::size_t n) {
    records_.reserve(n);   // EXPECT-LINT: scrubber-hot-path-alloc
    records_.resize(n);    // EXPECT-LINT: scrubber-hot-path-alloc
  }
  void attach() {
    scratch_ = std::make_unique<std::uint64_t[]>(64);  // EXPECT-LINT: scrubber-hot-path-alloc
    raw_ = new std::uint64_t[64];  // EXPECT-LINT: scrubber-naked-new, scrubber-hot-path-alloc
  }
  // scrubber-hot-end

  /// Cold path: pre-sizing the buffer outside the region is the fix the
  /// rule is pushing towards, so none of these lines may fire.
  void prepare(std::size_t n) {
    records_.reserve(n);
    records_.push_back(0);
    scratch_ = std::make_unique<std::uint64_t[]>(n);
  }

 private:
  std::vector<std::uint64_t> records_;
  std::unique_ptr<std::uint64_t[]> scratch_;
  std::uint64_t* raw_ = nullptr;
};

}  // namespace fixture
