// Fixture: scrubber-memory-order — atomic ops in src/runtime/ must name
// their ordering. Lexed by scrubber-lint only; never compiled.
#include <atomic>

namespace fixture {

int bad_atomics() {
  std::atomic<int> counter{0};
  std::atomic<int>* pointer = &counter;
  counter.store(1);               // EXPECT-LINT: scrubber-memory-order
  int a = counter.load();         // EXPECT-LINT: scrubber-memory-order
  int b = pointer->fetch_add(2);  // EXPECT-LINT: scrubber-memory-order
  counter.store(3, std::memory_order_release);
  int c = counter.load(std::memory_order_acquire);
  int expected = 0;
  counter.compare_exchange_strong(expected, 5);  // EXPECT-LINT: scrubber-memory-order
  counter.compare_exchange_weak(expected, 5, std::memory_order_acq_rel,
                                std::memory_order_acquire);
  return a + b + c;
}

}  // namespace fixture
