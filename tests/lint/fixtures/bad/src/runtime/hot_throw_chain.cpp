// Fixture: scrubber-transitive (throw) — the hot region itself looks
// exception-free; the throw hides one call away in another TU
// (throw_helpers.cpp). The diagnostic must land on the root call site.

namespace fixture {

int parse_or_throw(int n);

struct ThrowingDecoder {
  int consume(int n) {
    // scrubber-hot-begin
    const int value = parse_or_throw(n);  // EXPECT-LINT: scrubber-transitive
    // scrubber-hot-end
    return value;
  }
};

}  // namespace fixture
