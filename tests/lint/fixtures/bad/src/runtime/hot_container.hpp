#pragma once
// Fixture: node-based container inside a scrubber-hot region fires in any
// file, not just the dedicated hot-path sources.

#include <map>

namespace fixture {

inline int tally(const int* values, int n) {
  // scrubber-hot-begin
  std::map<int, int> counts;  // EXPECT-LINT: scrubber-hot-path-container
  int total = 0;
  for (int i = 0; i < n; ++i) total += counts[values[i]]++;
  // scrubber-hot-end
  return total;
}

}  // namespace fixture
