#pragma once
// Fixture: scrubber-layering — the ml module must not reach into netio;
// the declared DAG allows ml -> { ml, net, util } only.

#include "netio/udp.hpp"  // EXPECT-LINT: scrubber-layering

namespace fixture {

inline int deep_peek() { return 7; }

}  // namespace fixture
