// Fixture: lexer — raw string literals are opaque payload. Banned
// identifiers, quotes and parens inside them must produce no tokens and no
// diagnostics; only the real call at the bottom fires.
#include <cstdlib>

namespace fixture {

const char* kPlain = R"(rand() volatile std::regex new int[3])";
const char* kDelim = R"x(a quote " then )" still inside the literal)x";
const char8_t* kUtf = u8R"(srand(7) drand48() random_device)";
const wchar_t* kWide = LR"(time( clock( std::unordered_map<int, int>)";
const char16_t* kU16 = uR"(std::thread worker([] { rand(); });)";

int noise() { return rand(); }  // EXPECT-LINT: scrubber-raw-rand

}  // namespace fixture
