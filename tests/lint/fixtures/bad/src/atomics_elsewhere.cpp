// Fixture: scrubber-memory-order is scoped to src/runtime/ — the same
// default-ordering atomics outside it are allowed (general-purpose code
// may take seq_cst). No diagnostics expected in this file.
#include <atomic>

namespace fixture {

int relaxed_rules_here() {
  std::atomic<int> counter{0};
  counter.store(1);
  counter.fetch_add(2);
  return counter.load();
}

}  // namespace fixture
