// Fixture: scrubber-raw-thread — raw thread construction outside
// src/util/thread_pool.hpp and src/runtime/.
#include <thread>
#include <vector>

namespace fixture {

void spawn() {
  std::thread worker([] {});         // EXPECT-LINT: scrubber-raw-thread
  std::jthread auto_join([] {});     // EXPECT-LINT: scrubber-raw-thread
  std::vector<std::thread> workers;  // EXPECT-LINT: scrubber-raw-thread
  // Static member access reads the machine, it does not spawn on it.
  const unsigned width = std::thread::hardware_concurrency();
  (void)width;
  worker.join();
  workers.clear();
}

}  // namespace fixture
