// Fixture: scrubber-banned-construct — std::regex and volatile.
#include <regex>  // EXPECT-LINT: scrubber-banned-construct

namespace fixture {

bool match(const char* text) {
  std::regex pattern("a+b");   // EXPECT-LINT: scrubber-banned-construct
  volatile int spin_flag = 1;  // EXPECT-LINT: scrubber-banned-construct
  (void)spin_flag;
  return text != nullptr && std::regex_search(text, pattern);
}

}  // namespace fixture
