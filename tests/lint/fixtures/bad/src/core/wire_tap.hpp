#pragma once
// Fixture: scrubber-hot-path-blocking — socket syscalls are blocking
// calls (they park the thread in the kernel); outside src/netio/ a hot
// region must never touch the wire.
#include <cstddef>

namespace fixture {

struct Frame {
  unsigned char* data = nullptr;
  std::size_t size = 0;
};

class WireTap {
 public:
  // scrubber-hot-begin
  long pull(int fd, Frame frame) {
    return recv(fd, frame.data, frame.size, 0);  // EXPECT-LINT: scrubber-hot-path-blocking
  }
  long push(int fd, Frame frame) {
    return sendto(fd, frame.data, frame.size, 0, nullptr, 0);  // EXPECT-LINT: scrubber-hot-path-blocking
  }
  // scrubber-hot-end

  // The same syscall on a cold path is allowed — the rule guards the
  // marked kernels, not socket use in general.
  long drain(int fd, Frame frame) {
    return recv(fd, frame.data, frame.size, 0);
  }
};

}  // namespace fixture
