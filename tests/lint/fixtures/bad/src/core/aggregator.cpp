// Fixture: the aggregator is a container-banned file in its entirety —
// no hot-region markers needed for the rule to fire here.

#include <unordered_set>

namespace fixture {

inline int distinct(const int* values, int n) {
  std::unordered_set<int> seen;  // EXPECT-LINT: scrubber-hot-path-container
  int count = 0;
  for (int i = 0; i < n; ++i) count += seen.insert(values[i]).second ? 1 : 0;
  return count;
}

}  // namespace fixture
