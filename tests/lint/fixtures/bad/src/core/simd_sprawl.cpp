// Fixture: scrubber-simd-isolation — raw x86 vector intrinsics outside
// src/util/simd.* and src/ml/compiled_tree* (header and identifiers).
#include <immintrin.h>   // EXPECT-LINT: scrubber-simd-isolation
#include <x86intrin.h>   // EXPECT-LINT: scrubber-simd-isolation

namespace fixture {

double sum4(const double* values) {
  const __m256d v = _mm256_loadu_pd(values);  // EXPECT-LINT: scrubber-simd-isolation
  const __m128d lo = _mm256_castpd256_pd128(v);  // EXPECT-LINT: scrubber-simd-isolation
  const __m128d hi = _mm256_extractf128_pd(v, 1);  // EXPECT-LINT: scrubber-simd-isolation
  const __m128d pair = _mm_add_pd(lo, hi);  // EXPECT-LINT: scrubber-simd-isolation
  return _mm_cvtsd_f64(_mm_hadd_pd(pair, pair));  // EXPECT-LINT: scrubber-simd-isolation
}

int lanes_wide(__m512i block) {  // EXPECT-LINT: scrubber-simd-isolation
  return _mm512_reduce_add_epi32(block);  // EXPECT-LINT: scrubber-simd-isolation
}

}  // namespace fixture
