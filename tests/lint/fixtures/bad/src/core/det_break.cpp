// Fixture: scrubber-deterministic — direct determinism breaks inside the
// region (unordered container, unseeded randomness, address-dependent
// ordering) plus a clock read hidden one call away in the same TU.
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <unordered_map>

namespace fixture {

std::uint64_t wall_nanos() {
  return static_cast<std::uint64_t>(
      std::chrono::steady_clock::now().time_since_epoch().count());
}

std::uint64_t merge_tallies() {
  // scrubber-deterministic-begin
  std::unordered_map<int, int> tally;  // EXPECT-LINT: scrubber-deterministic
  tally[rand() % 8] = 1;  // EXPECT-LINT: scrubber-raw-rand, scrubber-deterministic
  const auto cookie = reinterpret_cast<std::uintptr_t>(&tally);  // EXPECT-LINT: scrubber-deterministic
  return cookie + wall_nanos();  // EXPECT-LINT: scrubber-deterministic
  // scrubber-deterministic-end
}

}  // namespace fixture
