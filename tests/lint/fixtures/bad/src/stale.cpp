// Fixture: scrubber-stale-nolint — a justified suppression whose violation
// is long gone must itself be flagged at the marker line.

namespace fixture {

int quiet() { return 3; }  // NOLINT(scrubber-raw-rand): the dice roll moved to util::Rng EXPECT-LINT: scrubber-stale-nolint

}  // namespace fixture
