// Fixture: scrubber-float-counter — byte/packet tallies stay integral;
// derived quantities (rates, means, shares) are exempt by name.
#include <cstdint>

namespace fixture {

struct Totals {
  double total_bytes = 0.0;       // EXPECT-LINT: scrubber-float-counter
  float packet_count = 0.0F;      // EXPECT-LINT: scrubber-float-counter
  double bytes_per_second = 0.0;  // derived rate: exempt
  double mean_packets = 0.0;      // derived mean: exempt
  std::uint64_t pkts_in = 0;      // integer counter: correct
};

}  // namespace fixture
