// Unit tests for the scrubber-lint v2 whole-program passes, built against
// the linter core library over synthetic in-memory trees: lexer edge
// cases, the indexer's scope scanner, call-graph resolution policy, the
// bounded transitive walk, module layering, suppression bookkeeping and
// the SARIF emitter. The fixture-tree test (lint_rules_test.cpp) covers
// the binary end to end; this file covers the pieces in isolation.

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "lint/callgraph.hpp"
#include "lint/index.hpp"
#include "lint/lexer.hpp"
#include "lint/rules.hpp"
#include "lint/sarif.hpp"

namespace {

using scrubber::lint::build_call_graph;
using scrubber::lint::build_index;
using scrubber::lint::CallGraph;
using scrubber::lint::check_transitive;
using scrubber::lint::Diagnostic;
using scrubber::lint::FunctionDef;
using scrubber::lint::lex;
using scrubber::lint::LexedFile;
using scrubber::lint::module_of;
using scrubber::lint::ProjectIndex;
using scrubber::lint::Sink;
using scrubber::lint::TransitiveOptions;
using scrubber::lint::UsedSuppressions;

/// Builds a ProjectIndex from (path, source) pairs.
ProjectIndex index_of(
    const std::vector<std::pair<std::string, std::string>>& sources) {
  std::vector<LexedFile> lexed;
  lexed.reserve(sources.size());
  for (const auto& [path, text] : sources) {
    lexed.push_back(lex(path, text));
  }
  return build_index(std::move(lexed));
}

const FunctionDef* find_function(const ProjectIndex& index,
                                 const std::string& qualified) {
  for (const FunctionDef& def : index.functions) {
    if (def.qualified == qualified) return &def;
  }
  return nullptr;
}

/// Runs the transitive pass and returns surviving diagnostics.
Sink transitive_diags(const ProjectIndex& index, int max_depth = 6) {
  const CallGraph graph = build_call_graph(index);
  Sink raw;
  UsedSuppressions used;
  TransitiveOptions options;
  options.max_depth = max_depth;
  check_transitive(index, graph, options, raw, used);
  Sink kept;
  apply_suppressions(index, std::move(raw), used, kept);
  return kept;
}

// ---------------------------------------------------------------- lexer

TEST(LintLexer, RawStringPayloadProducesNoTokens) {
  const LexedFile f = lex("src/util/a.cpp",
                          "const char* s = R\"x(rand() \" )\" volatile)x\";\n"
                          "int live = 1;\n");
  for (const auto& token : f.tokens) {
    EXPECT_NE(token.text, "rand");
    EXPECT_NE(token.text, "volatile");
  }
  // The code after the literal still tokenizes.
  bool saw_live = false;
  for (const auto& token : f.tokens) saw_live |= token.text == "live";
  EXPECT_TRUE(saw_live);
}

TEST(LintLexer, RawStringEncodingPrefixes) {
  for (const char* prefix : {"R", "LR", "uR", "UR", "u8R"}) {
    const std::string text =
        std::string("auto s = ") + prefix + "\"(srand(1))\";\nint after = 2;\n";
    const LexedFile f = lex("src/util/a.cpp", text);
    for (const auto& token : f.tokens) EXPECT_NE(token.text, "srand");
  }
}

TEST(LintLexer, IdentifierEndingInRIsNotARawString) {
  // `fooR"(...)"` is identifier + ordinary string, not a raw literal.
  const LexedFile f = lex("src/util/a.cpp", "auto x = fooR\"(text)\";\n");
  bool saw_ident = false;
  for (const auto& token : f.tokens) saw_ident |= token.text == "fooR";
  EXPECT_TRUE(saw_ident);
}

TEST(LintLexer, CommentContinuationSwallowsNextLine) {
  const LexedFile f = lex("src/util/a.cpp",
                          "// spliced comment \\\n"
                          "rand(); volatile int x = 0;\n"
                          "int live = 1;\n");
  for (const auto& token : f.tokens) {
    EXPECT_NE(token.text, "rand");
    EXPECT_NE(token.text, "volatile");
  }
  // Line numbers survive the splice: `live` sits on physical line 3.
  for (const auto& token : f.tokens) {
    if (token.text == "live") {
      EXPECT_EQ(token.line, 3);
    }
  }
}

TEST(LintLexer, DirectiveContinuationStaysDirective) {
  const LexedFile f = lex("src/util/a.cpp",
                          "#define NOISE() \\\n"
                          "  rand()\n"
                          "int live = 1;\n");
  for (const auto& token : f.tokens) EXPECT_NE(token.text, "rand");
  ASSERT_FALSE(f.directives.empty());
  EXPECT_NE(f.directives[0].text.find("rand"), std::string::npos);
}

// --------------------------------------------------------------- indexer

TEST(LintIndex, FreeMemberOutOfLineAndDestructor) {
  const ProjectIndex index = index_of({{"src/util/a.cpp",
                                        "namespace scrubber::util {\n"
                                        "int helper(int x) { return x; }\n"
                                        "struct Ring {\n"
                                        "  int push() { return 1; }\n"
                                        "  ~Ring() { push(); }\n"
                                        "};\n"
                                        "int Ring::popped() { return 0; }\n"
                                        "}\n"}});
  EXPECT_NE(find_function(index, "scrubber::util::helper"), nullptr);
  EXPECT_NE(find_function(index, "scrubber::util::Ring::push"), nullptr);
  EXPECT_NE(find_function(index, "scrubber::util::Ring::~Ring"), nullptr);
  const FunctionDef* popped =
      find_function(index, "scrubber::util::Ring::popped");
  ASSERT_NE(popped, nullptr);
  EXPECT_EQ(popped->class_name, "Ring");
}

TEST(LintIndex, DeclarationsAndMacrosAreNotDefinitions) {
  const ProjectIndex index = index_of({{"src/util/a.cpp",
                                        "int declared(int x);\n"
                                        "int defaulted(int x) = delete;\n"
                                        "MACRO_LIKE(name);\n"
                                        "int real() { return 1; }\n"}});
  ASSERT_EQ(index.functions.size(), 1u);
  EXPECT_EQ(index.functions[0].name, "real");
}

TEST(LintIndex, TemplateClassMembersAreIndexed) {
  // The `=` in a defaulted template parameter must not stop `class Table`
  // from opening a class scope (regression: FlatHash members were lost).
  const ProjectIndex index =
      index_of({{"src/util/a.hpp",
                 "#pragma once\n"
                 "template <typename K, typename H = std::hash<K>>\n"
                 "class Table {\n"
                 " public:\n"
                 "  void grow() { entries_.push_back(0); }\n"
                 "};\n"}});
  const FunctionDef* grow = find_function(index, "Table::grow");
  ASSERT_NE(grow, nullptr);
  EXPECT_EQ(grow->class_name, "Table");
}

TEST(LintIndex, EnumClassIsNotAClassScope) {
  const ProjectIndex index = index_of({{"src/util/a.cpp",
                                        "enum class Color { kRed, kBlue };\n"
                                        "int after() { return 0; }\n"}});
  ASSERT_EQ(index.functions.size(), 1u);
  EXPECT_EQ(index.functions[0].class_name, "");
}

TEST(LintIndex, QuotedIncludesBecomeEdges) {
  const ProjectIndex index =
      index_of({{"src/ml/a.cpp",
                 "#include <vector>\n#include \"netio/udp.hpp\"\n"}});
  ASSERT_EQ(index.includes.size(), 1u);
  EXPECT_EQ(index.includes[0].path, "netio/udp.hpp");
  EXPECT_EQ(index.includes[0].line, 2);
}

TEST(LintIndex, ModuleOfPaths) {
  EXPECT_EQ(module_of("src/runtime/ring.hpp"), "runtime");
  EXPECT_EQ(module_of("src/main.cpp"), "");
  EXPECT_EQ(module_of("tools/lint/main.cpp"), "tools");
  EXPECT_EQ(module_of("bench/micro.cpp"), "bench");
  EXPECT_EQ(module_of("tests/a.cpp"), "");
}

// ------------------------------------------------------------ call graph

TEST(LintGraph, CrossTuResolutionAndVeto) {
  const ProjectIndex index =
      index_of({{"src/core/a.cpp",
                 "void caller() { helper(); items.size(); }\n"},
                {"src/util/b.cpp", "void helper() {}\n"}});
  const CallGraph graph = build_call_graph(index);
  EXPECT_EQ(graph.resolved_edges, 1u);  // helper() — cross-TU
  EXPECT_EQ(graph.vetoed_calls, 1u);    // size() — vocabulary veto
}

TEST(LintGraph, SameFileFreeFunctionPreferred) {
  // Two anonymous-namespace-style twins: the caller's own TU wins.
  const ProjectIndex index =
      index_of({{"src/core/a.cpp",
                 "static int now_ms() { return 1; }\n"
                 "int caller() { return now_ms(); }\n"},
                {"src/netio/b.cpp", "static int now_ms() { return 2; }\n"}});
  const CallGraph graph = build_call_graph(index);
  bool found = false;
  for (std::size_t c = 0; c < index.calls.size(); ++c) {
    if (index.calls[c].name != "now_ms") continue;
    found = true;
    ASSERT_EQ(graph.call_targets[c].size(), 1u);
    EXPECT_EQ(index.functions[graph.call_targets[c][0]].file, 0u);
  }
  EXPECT_TRUE(found);
}

TEST(LintGraph, OverloadSetFallbackKeepsAllCandidates) {
  // No same-file twin: both cross-TU definitions become targets.
  const ProjectIndex index =
      index_of({{"src/core/a.cpp", "void caller() { helper(1); }\n"},
                {"src/util/b.cpp", "void helper(int x) {}\n"},
                {"src/util/c.cpp", "void helper(long x) {}\n"}});
  const CallGraph graph = build_call_graph(index);
  for (std::size_t c = 0; c < index.calls.size(); ++c) {
    if (index.calls[c].name == "helper") {
      EXPECT_EQ(graph.call_targets[c].size(), 2u);
    }
  }
}

TEST(LintGraph, ReceiverCallAmbiguousAcrossClassesIsSkipped) {
  const ProjectIndex index =
      index_of({{"src/core/a.cpp",
                 "struct A { void step() {} };\n"
                 "struct B { void step() {} };\n"
                 "void caller(A& a) { a.step(); }\n"}});
  const CallGraph graph = build_call_graph(index);
  EXPECT_EQ(graph.ambiguous_calls, 1u);
}

TEST(LintGraph, UnresolvedExternIsCountedNotFatal) {
  const ProjectIndex index =
      index_of({{"src/core/a.cpp", "void caller() { mystery(); }\n"}});
  const CallGraph graph = build_call_graph(index);
  EXPECT_EQ(graph.unresolved_calls, 1u);
  EXPECT_EQ(graph.resolved_edges, 0u);
}

// ------------------------------------------------------- transitive walk

constexpr const char* kHotRoot =
    "void entry() {\n"
    "  // scrubber-hot-begin\n"
    "  hop_one();\n"
    "  // scrubber-hot-end\n"
    "}\n";

TEST(LintWalk, TwoHopAllocationIsReportedAtRoot) {
  const ProjectIndex index =
      index_of({{"src/runtime/a.cpp", kHotRoot},
                {"src/core/b.cpp",
                 "void hop_two() { new int; }\n"
                 "void hop_one() { hop_two(); }\n"}});
  const Sink diags = transitive_diags(index);
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, "scrubber-transitive");
  EXPECT_EQ(diags[0].file, "src/runtime/a.cpp");
  EXPECT_EQ(diags[0].line, 3);
  EXPECT_NE(diags[0].message.find("hop_one → hop_two"), std::string::npos);
}

TEST(LintWalk, DepthBoundCutsTheChain) {
  const ProjectIndex index =
      index_of({{"src/runtime/a.cpp", kHotRoot},
                {"src/core/b.cpp",
                 "void hop_three() { new int; }\n"
                 "void hop_two() { hop_three(); }\n"
                 "void hop_one() { hop_two(); }\n"}});
  EXPECT_EQ(transitive_diags(index, /*max_depth=*/2).size(), 0u);
  EXPECT_EQ(transitive_diags(index, /*max_depth=*/3).size(), 1u);
}

TEST(LintWalk, RecursionTerminates) {
  const ProjectIndex index =
      index_of({{"src/runtime/a.cpp", kHotRoot},
                {"src/core/b.cpp",
                 "void hop_one() { hop_one(); other(); }\n"
                 "void other() { other(); }\n"}});
  EXPECT_EQ(transitive_diags(index).size(), 0u);  // and does not hang
}

TEST(LintWalk, DeterministicRegionSeesClockThroughChain) {
  const ProjectIndex index = index_of(
      {{"src/ml/a.cpp",
        "void train() {\n"
        "  // scrubber-deterministic-begin\n"
        "  stamp();\n"
        "  // scrubber-deterministic-end\n"
        "}\n"},
       {"src/util/b.cpp",
        "long stamp() { return std::chrono::steady_clock::now(); }\n"}});
  const Sink diags = transitive_diags(index);
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, "scrubber-deterministic");
  EXPECT_EQ(diags[0].line, 3);
  EXPECT_NE(diags[0].message.find("clock read"), std::string::npos);
}

TEST(LintWalk, SuppressedRootIsAbsorbedAndNotStale) {
  const ProjectIndex index = index_of(
      {{"src/runtime/a.cpp",
        "void entry() {\n"
        "  // scrubber-hot-begin\n"
        "  // NOLINTNEXTLINE(scrubber-transitive): arena-backed in release\n"
        "  hop_one();\n"
        "  // scrubber-hot-end\n"
        "}\n"},
       {"src/core/b.cpp", "void hop_one() { new int; }\n"}});
  EXPECT_EQ(transitive_diags(index).size(), 0u);
}

// ---------------------------------------------------- layering and stale

TEST(LintRules, LayeringViolationAndAllowedEdge) {
  const ProjectIndex index =
      index_of({{"src/ml/a.hpp", "#pragma once\n#include \"netio/udp.hpp\"\n"},
                {"src/runtime/b.hpp",
                 "#pragma once\n#include \"core/tables.hpp\"\n"}});
  Sink sink;
  scrubber::lint::rule_layering(index, sink);
  ASSERT_EQ(sink.size(), 1u);
  EXPECT_EQ(sink[0].rule, "scrubber-layering");
  EXPECT_EQ(sink[0].file, "src/ml/a.hpp");
  EXPECT_EQ(sink[0].line, 2);
}

TEST(LintRules, StaleSuppressionIsReportedAtMarkerLine) {
  const ProjectIndex index = index_of(
      {{"src/core/a.cpp",
        "int quiet() { return 3; }  // NOLINT(scrubber-raw-rand): gone\n"}});
  Sink kept;
  apply_suppressions(index, Sink{}, UsedSuppressions{}, kept);
  ASSERT_EQ(kept.size(), 1u);
  EXPECT_EQ(kept[0].rule, "scrubber-stale-nolint");
  EXPECT_EQ(kept[0].line, 1);
}

TEST(LintRules, UsedSuppressionIsNotStale) {
  const ProjectIndex index = index_of(
      {{"src/core/a.cpp",
        "int noisy() { return rand(); }  // NOLINT(scrubber-raw-rand): "
        "fixture\n"}});
  Sink raw;
  scrubber::lint::run_file_rules(index.files[0].lexed, raw);
  Sink kept;
  apply_suppressions(index, std::move(raw), UsedSuppressions{}, kept);
  EXPECT_TRUE(kept.empty());
}

// ------------------------------------------------------------------ sarif

TEST(LintSarif, EscapesAndEmbedsDiagnostics) {
  Sink sink;
  sink.push_back(Diagnostic{"src/a \"b\".cpp", 7, "scrubber-raw-rand",
                            "line1\nline2\tand \\slash"});
  std::ostringstream out;
  scrubber::lint::write_sarif(sink, out);
  const std::string json = out.str();
  EXPECT_NE(json.find("\"version\": \"2.1.0\""), std::string::npos);
  EXPECT_NE(json.find("\"ruleId\": \"scrubber-raw-rand\""), std::string::npos);
  EXPECT_NE(json.find("src/a \\\"b\\\".cpp"), std::string::npos);
  EXPECT_NE(json.find("line1\\nline2\\tand \\\\slash"), std::string::npos);
  EXPECT_NE(json.find("\"startLine\": 7"), std::string::npos);
  // Every declared rule id ships in the tool metadata.
  for (const std::string& rule : scrubber::lint::all_rule_ids()) {
    EXPECT_NE(json.find("{\"id\": \"" + rule + "\"}"), std::string::npos);
  }
}

}  // namespace
