#include "core/collector.hpp"

#include <gtest/gtest.h>

#include <map>

#include "flowgen/generator.hpp"

namespace scrubber::core {
namespace {

using net::Ipv4Address;
using net::Ipv4Prefix;


/// Config builder: GCC 12's -Wmissing-field-initializers fires on
/// designated initializers even when the omitted members have defaults.
Collector::Config make_config(std::uint32_t sampling_rate = 10,
                              std::uint32_t reorder_slack_min = 1) {
  Collector::Config config;
  config.sampling_rate = sampling_rate;
  config.reorder_slack_min = reorder_slack_min;
  return config;
}

net::SflowDatagram datagram_at(std::uint32_t minute, std::uint32_t dst,
                               std::uint16_t src_port = 123,
                               std::uint32_t samples = 3) {
  net::SflowDatagram d;
  d.agent = Ipv4Address(0x0AFF0001);
  d.uptime_ms = std::uint64_t{minute} * 60'000;
  for (std::uint32_t k = 0; k < samples; ++k) {
    net::SflowFlowSample sample;
    sample.sampling_rate = 10;
    sample.input_port = 5;
    sample.packet.src_ip = Ipv4Address(0x80000000 + k);
    sample.packet.dst_ip = Ipv4Address(dst);
    sample.packet.src_port = src_port;
    sample.packet.dst_port = 44000;
    sample.packet.protocol = 17;
    sample.packet.length = 468;
    d.samples.push_back(sample);
  }
  return d;
}

TEST(Collector, EmitsClosedMinutes) {
  std::map<std::uint32_t, std::size_t> batches;
  Collector collector(make_config(),
                      [&](std::uint32_t minute, std::span<const net::FlowRecord> f) {
                        batches[minute] += f.size();
                      });
  collector.ingest(datagram_at(0, 100));
  EXPECT_TRUE(batches.empty());  // minute 0 still open (slack)
  collector.ingest(datagram_at(2, 100));
  // Watermark 2, slack 1 -> minute 0 closed.
  ASSERT_EQ(batches.count(0), 1u);
  EXPECT_EQ(batches[0], 3u);  // 3 distinct source IPs
  collector.flush();
  EXPECT_EQ(batches.count(2), 1u);
}

TEST(Collector, ScalesBySamplingRate) {
  std::vector<net::FlowRecord> flows;
  Collector collector(make_config(),
                      [&](std::uint32_t, std::span<const net::FlowRecord> f) {
                        flows.insert(flows.end(), f.begin(), f.end());
                      });
  collector.ingest(datagram_at(0, 100, 123, 1));
  collector.flush();
  ASSERT_EQ(flows.size(), 1u);
  EXPECT_EQ(flows[0].packets, 10u);
  EXPECT_EQ(flows[0].bytes, 4680u);
}

TEST(Collector, LabelsFromBgpFeed) {
  std::vector<net::FlowRecord> flows;
  Collector collector(make_config(),
                      [&](std::uint32_t, std::span<const net::FlowRecord> f) {
                        flows.insert(flows.end(), f.begin(), f.end());
                      });
  // Blackhole for dst 100 announced at minute 0; dst 200 never blackholed.
  collector.ingest_bgp(
      bgp::make_blackhole_announcement(Ipv4Prefix::host(Ipv4Address(100)), 64512,
                                       Ipv4Address(1)),
      0);
  collector.ingest(datagram_at(0, 100));
  collector.ingest(datagram_at(0, 200));
  collector.flush();
  ASSERT_EQ(flows.size(), 6u);
  for (const auto& flow : flows) {
    EXPECT_EQ(flow.blackholed, flow.dst_ip.value() == 100u);
  }
  EXPECT_EQ(collector.blackholed_flows(), 3u);
  EXPECT_EQ(collector.flows_emitted(), 6u);
}

TEST(Collector, AnonymizesWhenConfigured) {
  std::vector<net::FlowRecord> flows;
  Collector::Config salted = make_config();
  salted.anonymization_salt = 999;
  Collector collector(salted,
                      [&](std::uint32_t, std::span<const net::FlowRecord> f) {
                        flows.insert(flows.end(), f.begin(), f.end());
                      });
  collector.ingest_bgp(
      bgp::make_blackhole_announcement(Ipv4Prefix::host(Ipv4Address(100)), 64512,
                                       Ipv4Address(1)),
      0);
  collector.ingest(datagram_at(0, 100));
  collector.flush();
  ASSERT_FALSE(flows.empty());
  for (const auto& flow : flows) {
    EXPECT_NE(flow.dst_ip.value(), 100u);  // address hashed
    EXPECT_TRUE(flow.blackholed);          // ...but labeled before hashing
    EXPECT_EQ(flow.src_port, 123);         // ports untouched
  }
}

TEST(Collector, WireIngestion) {
  std::size_t flows = 0;
  Collector collector(make_config(),
                      [&](std::uint32_t, std::span<const net::FlowRecord> f) {
                        flows += f.size();
                      });
  collector.ingest_wire(datagram_at(0, 100).encode());
  collector.flush();
  EXPECT_EQ(flows, 3u);
  EXPECT_EQ(collector.datagrams(), 1u);
  EXPECT_THROW(collector.ingest_wire({1, 2, 3}), net::SflowDecodeError);
}

TEST(Collector, ReorderSlackToleratesLateDatagrams) {
  std::map<std::uint32_t, std::size_t> batches;
  Collector collector(make_config(10, 2),
                      [&](std::uint32_t minute, std::span<const net::FlowRecord> f) {
                        batches[minute] += f.size();
                      });
  collector.ingest(datagram_at(5, 100));
  collector.ingest(datagram_at(4, 100));  // late, within slack
  collector.ingest(datagram_at(7, 100));  // closes minutes < 5
  EXPECT_EQ(batches.count(4), 1u);
  EXPECT_EQ(batches.count(5), 0u);
  collector.flush();
  EXPECT_EQ(batches.count(5), 1u);
  EXPECT_EQ(batches.count(7), 1u);
}

TEST(Collector, SinkMustNotReenterTheCollector) {
  // The MinuteBatchSink contract (relied on by runtime::ShardedCollector):
  // the sink runs mid-drain and must not call back into the collector.
  Collector* self = nullptr;
  std::size_t calls = 0;
  Collector collector(make_config(),
                      [&](std::uint32_t, std::span<const net::FlowRecord>) {
                        ++calls;
                        EXPECT_THROW(self->ingest(datagram_at(9, 100)),
                                     std::logic_error);
                        EXPECT_THROW(self->flush(), std::logic_error);
                        EXPECT_THROW(self->advance(99), std::logic_error);
                        EXPECT_THROW(
                            self->ingest_bgp(bgp::make_blackhole_announcement(
                                                 Ipv4Prefix::host(Ipv4Address(1)),
                                                 64512, Ipv4Address(1)),
                                             0),
                            std::logic_error);
                      });
  self = &collector;
  collector.ingest(datagram_at(0, 100));
  collector.flush();
  EXPECT_EQ(calls, 1u);  // the guard fired inside a real drain
}

TEST(Collector, AdvanceClosesQuietMinutes) {
  // A shard that stops seeing traffic still closes its bins when the
  // runtime broadcasts the global watermark.
  std::map<std::uint32_t, std::size_t> batches;
  Collector collector(make_config(),
                      [&](std::uint32_t minute, std::span<const net::FlowRecord> f) {
                        batches[minute] += f.size();
                      });
  collector.ingest(datagram_at(3, 100));
  EXPECT_TRUE(batches.empty());  // minute 3 open (slack 1)
  collector.advance(5);          // watermark from elsewhere: closes < 4
  EXPECT_EQ(batches.count(3), 1u);
  EXPECT_EQ(collector.flush_horizon(), 4u);
  collector.advance(5);  // idempotent
  collector.advance(2);  // stale watermark tolerated: no-op, no underflow
  EXPECT_EQ(collector.flush_horizon(), 4u);
  EXPECT_EQ(batches.size(), 1u);
}

TEST(Collector, LateDatagramsAreDroppedAndCounted) {
  // Once a minute is flushed it never reopens: a datagram arriving behind
  // the flush horizon is shed with a counter, so every minute batch is
  // emitted exactly once (the sharded merge depends on this).
  std::map<std::uint32_t, std::size_t> batches;
  Collector collector(make_config(),
                      [&](std::uint32_t minute, std::span<const net::FlowRecord> f) {
                        batches[minute] += f.size();
                      });
  collector.ingest(datagram_at(0, 100));
  collector.advance(10);  // closes minutes < 9, including 0
  ASSERT_EQ(batches.count(0), 1u);
  const std::size_t size_before = batches[0];

  collector.ingest(datagram_at(0, 200));  // behind the horizon: dropped
  EXPECT_EQ(collector.late_datagrams(), 1u);
  collector.ingest(datagram_at(9, 100));  // at the horizon: accepted
  EXPECT_EQ(collector.late_datagrams(), 1u);
  collector.flush();
  EXPECT_EQ(batches[0], size_before);  // minute 0 never re-emitted
  EXPECT_EQ(batches.count(9), 1u);
}

TEST(FlowsToDatagrams, RoundTripPreservesAggregates) {
  // Property: flows -> datagrams -> collector reproduces the original
  // per-flow aggregates (packets within rounding, key fields exactly).
  flowgen::TrafficGenerator gen(flowgen::ixp_us2(), 77);
  const auto trace = gen.generate(0, 30);
  const std::uint32_t rate = 4;
  const auto datagrams =
      flows_to_datagrams(trace.flows, rate, Ipv4Address(0x0AFF0001));
  ASSERT_FALSE(datagrams.empty());

  std::vector<net::FlowRecord> reconstructed;
  Collector collector(make_config(rate, 0),
                      [&](std::uint32_t, std::span<const net::FlowRecord> f) {
                        reconstructed.insert(reconstructed.end(), f.begin(),
                                             f.end());
                      });
  // Replay the BGP feed so labels reproduce too.
  for (const auto& [minute, update] : gen.updates()) {
    collector.ingest_bgp(update, std::uint64_t{minute} * 60'000);
  }
  for (const auto& d : datagrams) collector.ingest(d);
  collector.flush();

  // Index original flows by key.
  const auto key = [](const net::FlowRecord& f) {
    return std::tuple(f.minute, f.src_ip.value(), f.dst_ip.value(), f.src_port,
                      f.dst_port, f.protocol, f.src_member);
  };
  std::map<decltype(key(net::FlowRecord{})), const net::FlowRecord*> originals;
  for (const auto& f : trace.flows) originals[key(f)] = &f;

  ASSERT_EQ(reconstructed.size(), originals.size());
  std::size_t label_matches = 0;
  for (const auto& f : reconstructed) {
    const auto it = originals.find(key(f));
    ASSERT_NE(it, originals.end());
    const net::FlowRecord& original = *it->second;
    // Sampling quantizes packets to multiples of the rate.
    EXPECT_LE(
        std::abs(static_cast<long>(f.packets) - static_cast<long>(original.packets)),
        static_cast<long>(rate));
    label_matches += (f.blackholed == original.blackholed);
  }
  EXPECT_EQ(label_matches, reconstructed.size());
}

}  // namespace
}  // namespace scrubber::core
