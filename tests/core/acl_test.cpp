#include "core/acl.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace scrubber::core {
namespace {

arm::TaggingRule make_rule(std::vector<arm::Item> antecedent,
                           arm::RuleStatus status = arm::RuleStatus::kAccepted) {
  std::sort(antecedent.begin(), antecedent.end());
  arm::TaggingRule rule;
  rule.rule.antecedent = std::move(antecedent);
  rule.rule.consequent = arm::kBlackholeItem;
  rule.rule.confidence = 0.976;
  rule.rule.support = 0.026;
  rule.id = arm::rule_id(rule.rule.antecedent);
  rule.status = status;
  return rule;
}

TEST(Acl, NtpRuleRendersPortsAndSize) {
  const auto rule = make_rule({arm::Item(arm::Attribute::kProtocol, 17),
                               arm::Item(arm::Attribute::kSrcPort, 123),
                               arm::Item(arm::Attribute::kDstPortOther, 0),
                               arm::Item(arm::Attribute::kPacketSize, 4)});
  const std::string entry = acl_entry(rule);
  EXPECT_EQ(entry.rfind("deny udp", 0), 0u);
  EXPECT_NE(entry.find("eq 123"), std::string::npos);
  EXPECT_NE(entry.find("range 1024 65535"), std::string::npos);
  EXPECT_NE(entry.find("match-size 401-500"), std::string::npos);
  EXPECT_NE(entry.find("conf=0.976"), std::string::npos);
  EXPECT_NE(entry.find(rule.id), std::string::npos);
}

TEST(Acl, FragmentRule) {
  const auto rule = make_rule({arm::Item(arm::Attribute::kProtocol, 17),
                               arm::Item(arm::Attribute::kFragment, 1)});
  const std::string entry = acl_entry(rule);
  EXPECT_NE(entry.find("fragments"), std::string::npos);
}

TEST(Acl, ActionKeywords) {
  const auto rule = make_rule({arm::Item(arm::Attribute::kProtocol, 17)});
  EXPECT_EQ(acl_entry(rule, AclAction::kDeny).rfind("deny", 0), 0u);
  EXPECT_EQ(acl_entry(rule, AclAction::kRateLimit).rfind("police", 0), 0u);
  EXPECT_EQ(acl_entry(rule, AclAction::kMonitor).rfind("log", 0), 0u);
}

TEST(Acl, GreProtocolKeyword) {
  const auto rule = make_rule({arm::Item(arm::Attribute::kProtocol, 47)});
  EXPECT_NE(acl_entry(rule).find("deny gre"), std::string::npos);
}

TEST(Acl, GenerateOnlyAcceptedRules) {
  arm::RuleSet rules;
  rules.add(make_rule({arm::Item(arm::Attribute::kSrcPort, 123)},
                      arm::RuleStatus::kAccepted));
  rules.add(make_rule({arm::Item(arm::Attribute::kSrcPort, 53)},
                      arm::RuleStatus::kStaging));
  rules.add(make_rule({arm::Item(arm::Attribute::kSrcPort, 161)},
                      arm::RuleStatus::kDeclined));
  const std::string acl = generate_acl(rules);
  EXPECT_NE(acl.find("eq 123"), std::string::npos);
  EXPECT_EQ(acl.find("eq 53"), std::string::npos);
  EXPECT_EQ(acl.find("eq 161"), std::string::npos);
  // Implicit permit at the end.
  EXPECT_NE(acl.find("permit ip any any\n"), std::string::npos);
}

TEST(Acl, EmptyRuleSetStillPermits) {
  const arm::RuleSet rules;
  EXPECT_EQ(generate_acl(rules), "permit ip any any\n");
}

}  // namespace
}  // namespace scrubber::core
