// Bit-identity of the flattened hot path against the pre-flattening
// implementations, embedded here verbatim as oracles:
//
//   * FlowCache (util::FlatHash, insertion-order drain) vs the legacy
//     std::unordered_map + explicit order-counter cache — drain_before
//     must return the same FlowRecords in the same order.
//   * Aggregator (index sort + flat tallies + bounded top-k + parallel
//     feature build) vs the legacy std::map group-by with per-metric full
//     sorts — the feature matrix must be byte-equal (memcmp, so NaN
//     patterns count too) and labels/meta identical, at every thread
//     count (1, 2, 3, 8). This is the DESIGN.md §10 determinism contract
//     for the serving-path feature build.

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cstring>
#include <limits>
#include <map>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/aggregator.hpp"
#include "core/balancer.hpp"
#include "flowgen/generator.hpp"
#include "net/packet.hpp"
#include "util/rng.hpp"

namespace scrubber {
namespace {

// --------------------------------------------------------------------------
// Legacy FlowCache: node-based map plus an order counter, drained by
// filtering and sorting on insertion order.
// --------------------------------------------------------------------------

class LegacyFlowCache {
 public:
  explicit LegacyFlowCache(std::uint32_t sampling_rate)
      : sampling_rate_(sampling_rate) {}

  void add(const net::PacketHeader& packet) {
    net::FlowKey key;
    key.minute = static_cast<std::uint32_t>(packet.timestamp_ms / 60000);
    key.src_ip = packet.src_ip.value();
    key.dst_ip = packet.dst_ip.value();
    key.src_port = packet.src_port;
    key.dst_port = packet.dst_port;
    key.protocol = packet.protocol;
    key.member = packet.ingress_member;
    auto [it, inserted] = cache_.try_emplace(key);
    if (inserted) it->second.order = next_order_++;
    it->second.packets += 1;
    it->second.bytes += packet.length;
    it->second.tcp_flags |= packet.tcp_flags;
  }

  [[nodiscard]] std::vector<net::FlowRecord> drain_before(std::uint32_t minute) {
    std::vector<std::pair<std::uint64_t, net::FlowRecord>> drained;
    for (auto it = cache_.begin(); it != cache_.end();) {
      if (it->first.minute < minute) {
        net::FlowRecord flow;
        flow.minute = it->first.minute;
        flow.src_ip = net::Ipv4Address(it->first.src_ip);
        flow.dst_ip = net::Ipv4Address(it->first.dst_ip);
        flow.src_port = it->first.src_port;
        flow.dst_port = it->first.dst_port;
        flow.protocol = it->first.protocol;
        flow.tcp_flags = it->second.tcp_flags;
        flow.src_member = it->first.member;
        flow.packets =
            static_cast<std::uint32_t>(it->second.packets * sampling_rate_);
        flow.bytes = it->second.bytes * sampling_rate_;
        drained.emplace_back(it->second.order, flow);
        it = cache_.erase(it);
      } else {
        ++it;
      }
    }
    std::sort(drained.begin(), drained.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    std::vector<net::FlowRecord> out;
    out.reserve(drained.size());
    for (auto& [order, flow] : drained) out.push_back(flow);
    return out;
  }

 private:
  struct Counters {
    std::uint64_t packets = 0;
    std::uint64_t bytes = 0;
    std::uint8_t tcp_flags = 0;
    std::uint64_t order = 0;
  };
  std::uint32_t sampling_rate_;
  std::uint64_t next_order_ = 0;
  std::unordered_map<net::FlowKey, Counters, net::FlowKeyHash> cache_;
};

// --------------------------------------------------------------------------
// Legacy Aggregator::aggregate: std::map group-by, per-categorical
// unordered_map tallies, full sort per (categorical, metric) ranking.
// --------------------------------------------------------------------------

enum class Categorical : std::size_t {
  kSrcIp, kSrcPort, kDstPort, kSrcMember, kProtocol,
};
constexpr std::array<Categorical, 5> kCategoricals{
    Categorical::kSrcIp, Categorical::kSrcPort, Categorical::kDstPort,
    Categorical::kSrcMember, Categorical::kProtocol,
};
enum class Metric : std::size_t { kMeanPacketSize, kSumBytes, kSumPackets };
constexpr std::array<Metric, 3> kMetrics{
    Metric::kMeanPacketSize, Metric::kSumBytes, Metric::kSumPackets,
};

double categorical_value(const net::FlowRecord& flow, Categorical c) {
  switch (c) {
    case Categorical::kSrcIp: return static_cast<double>(flow.src_ip.value());
    case Categorical::kSrcPort: return static_cast<double>(flow.src_port);
    case Categorical::kDstPort: return static_cast<double>(flow.dst_port);
    case Categorical::kSrcMember: return static_cast<double>(flow.src_member);
    case Categorical::kProtocol: return static_cast<double>(flow.protocol);
  }
  return 0.0;
}

struct GroupMetrics {
  std::uint64_t bytes = 0;
  std::uint64_t packets = 0;
  [[nodiscard]] double metric(Metric m) const {
    switch (m) {
      case Metric::kMeanPacketSize:
        return packets == 0 ? 0.0
                            : static_cast<double>(bytes) /
                                  static_cast<double>(packets);
      case Metric::kSumBytes: return static_cast<double>(bytes);
      case Metric::kSumPackets: return static_cast<double>(packets);
    }
    return 0.0;
  }
};

core::AggregatedDataset legacy_aggregate(std::span<const net::FlowRecord> flows,
                                         const arm::RuleSet* rules) {
  const arm::Itemizer itemizer;
  core::AggregatedDataset out;
  out.data = ml::Dataset(core::Aggregator::schema());

  std::map<std::pair<std::uint32_t, std::uint32_t>, std::vector<std::size_t>>
      groups;
  for (std::size_t i = 0; i < flows.size(); ++i) {
    groups[{flows[i].minute, flows[i].dst_ip.value()}].push_back(i);
  }

  const std::size_t width = out.data.n_cols();
  std::vector<double> row(width);

  for (const auto& [key, indices] : groups) {
    std::fill(row.begin(), row.end(), ml::kMissing);
    std::size_t column = 0;
    for (const Categorical c : kCategoricals) {
      std::unordered_map<std::uint64_t, GroupMetrics> by_value;
      for (const std::size_t i : indices) {
        const auto value =
            static_cast<std::uint64_t>(categorical_value(flows[i], c));
        auto& group = by_value[value];
        group.bytes += flows[i].bytes;
        group.packets += flows[i].packets;
      }
      for (const Metric m : kMetrics) {
        std::vector<std::pair<double, std::uint64_t>> ranked;
        ranked.reserve(by_value.size());
        for (const auto& [value, metrics] : by_value)
          ranked.emplace_back(metrics.metric(m), value);
        std::sort(ranked.begin(), ranked.end(),
                  [](const auto& a, const auto& b) {
                    return a.first > b.first ||
                           (a.first == b.first && a.second < b.second);
                  });
        for (std::size_t r = 0; r < core::kRanks; ++r) {
          if (r < ranked.size()) {
            row[column] = static_cast<double>(ranked[r].second);
            row[column + 1] = ranked[r].first;
          }
          column += 2;
        }
      }
    }

    int label = 0;
    for (const std::size_t i : indices) {
      if (flows[i].blackholed) {
        label = 1;
        break;
      }
    }
    out.data.add_row(row, label);

    core::RecordMeta meta;
    meta.minute = key.first;
    meta.target = net::Ipv4Address(key.second);
    meta.flow_count = static_cast<std::uint32_t>(indices.size());

    if (rules != nullptr) {
      std::unordered_set<std::uint32_t> tags;
      for (const std::size_t i : indices) {
        for (const std::uint32_t tag :
             rules->matching_accepted(flows[i], itemizer))
          tags.insert(tag);
      }
      meta.rule_tags.assign(tags.begin(), tags.end());
      std::sort(meta.rule_tags.begin(), meta.rule_tags.end());
    }

    std::unordered_map<std::size_t, std::uint64_t> vector_bytes;
    std::uint64_t total_bytes = 0;
    for (const std::size_t i : indices) {
      total_bytes += flows[i].bytes;
      if (const auto v = flows[i].vector()) {
        vector_bytes[static_cast<std::size_t>(*v)] += flows[i].bytes;
      }
    }
    if (!vector_bytes.empty()) {
      std::size_t best = 0;
      std::uint64_t best_bytes = 0;
      for (const auto& [v, bytes] : vector_bytes) {
        if (bytes > best_bytes || (bytes == best_bytes && v < best)) {
          best = v;
          best_bytes = bytes;
        }
      }
      if (best_bytes * 4 >= total_bytes) {
        meta.dominant_vector = static_cast<net::DdosVector>(best);
      }
    }
    out.meta.push_back(std::move(meta));
  }
  return out;
}

// --------------------------------------------------------------------------
// Helpers
// --------------------------------------------------------------------------

std::vector<net::PacketHeader> synth_packets(std::size_t count,
                                             std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<net::PacketHeader> packets;
  packets.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    net::PacketHeader p;
    // Small key spaces force heavy flow aggregation and hash collisions.
    p.timestamp_ms = rng.below(8) * 60000 + rng.below(60000);
    p.src_ip = net::Ipv4Address(static_cast<std::uint32_t>(rng.below(64)));
    p.dst_ip = net::Ipv4Address(static_cast<std::uint32_t>(rng.below(16)));
    p.src_port = static_cast<std::uint16_t>(rng.below(128));
    p.dst_port = static_cast<std::uint16_t>(rng.below(32));
    p.protocol = rng.chance(0.7) ? 17 : 6;
    p.tcp_flags = static_cast<std::uint8_t>(rng.below(64));
    p.length = static_cast<std::uint16_t>(64 + rng.below(1400));
    p.ingress_member = static_cast<net::MemberId>(rng.below(12));
    packets.push_back(p);
  }
  return packets;
}

arm::RuleSet ntp_dns_rules() {
  arm::MinedRule ntp;
  ntp.antecedent = {arm::Item(arm::Attribute::kProtocol, 17),
                    arm::Item(arm::Attribute::kSrcPort, 123)};
  std::sort(ntp.antecedent.begin(), ntp.antecedent.end());
  ntp.consequent = arm::kBlackholeItem;
  ntp.confidence = 0.95;
  ntp.support = 0.1;
  arm::MinedRule dns;
  dns.antecedent = {arm::Item(arm::Attribute::kProtocol, 17),
                    arm::Item(arm::Attribute::kSrcPort, 53)};
  std::sort(dns.antecedent.begin(), dns.antecedent.end());
  dns.consequent = arm::kBlackholeItem;
  dns.confidence = 0.93;
  dns.support = 0.08;
  arm::RuleSet rules = arm::RuleSet::from_mined({ntp, dns});
  for (auto& rule : rules.rules()) rule.status = arm::RuleStatus::kAccepted;
  return rules;
}

void expect_identical(const core::AggregatedDataset& got,
                      const core::AggregatedDataset& want) {
  ASSERT_EQ(got.size(), want.size());
  ASSERT_EQ(got.data.n_cols(), want.data.n_cols());
  // Byte equality: NaN missing-markers compare equal by bit pattern.
  const auto& got_raw = got.data.raw();
  const auto& want_raw = want.data.raw();
  ASSERT_EQ(got_raw.size(), want_raw.size());
  EXPECT_EQ(std::memcmp(got_raw.data(), want_raw.data(),
                        got_raw.size() * sizeof(double)),
            0)
      << "feature matrix bytes differ";
  EXPECT_EQ(got.data.labels(), want.data.labels());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got.meta[i].minute, want.meta[i].minute) << "row " << i;
    EXPECT_EQ(got.meta[i].target.value(), want.meta[i].target.value())
        << "row " << i;
    EXPECT_EQ(got.meta[i].flow_count, want.meta[i].flow_count) << "row " << i;
    EXPECT_EQ(got.meta[i].rule_tags, want.meta[i].rule_tags) << "row " << i;
    EXPECT_EQ(got.meta[i].dominant_vector, want.meta[i].dominant_vector)
        << "row " << i;
  }
}

// --------------------------------------------------------------------------
// Tests
// --------------------------------------------------------------------------

TEST(HotPathEquivalence, FlowCacheDrainMatchesLegacyOrderCounter) {
  net::FlowCache flat(10);
  LegacyFlowCache legacy(10);
  const auto packets = synth_packets(20000, 0xF10C);
  // Interleave adds with partial drains to exercise tombstones + compaction.
  const std::array<std::uint32_t, 4> barriers{2, 4, 5, 7};
  const std::size_t chunk = packets.size() / (barriers.size() + 1);
  std::size_t fed = 0;
  for (const std::uint32_t barrier : barriers) {
    for (const std::size_t until = fed + chunk; fed < until; ++fed) {
      flat.add(packets[fed]);
      legacy.add(packets[fed]);
    }
    EXPECT_EQ(flat.drain_before(barrier), legacy.drain_before(barrier))
        << "barrier minute " << barrier;
  }
  for (; fed < packets.size(); ++fed) {
    flat.add(packets[fed]);
    legacy.add(packets[fed]);
  }
  const auto flat_rest = flat.drain_all();
  const auto legacy_rest = legacy.drain_before(
      std::numeric_limits<std::uint32_t>::max());
  EXPECT_FALSE(flat_rest.empty());
  EXPECT_EQ(flat_rest, legacy_rest);
}

TEST(HotPathEquivalence, AggregateMatchesLegacyAtEveryThreadCount) {
  // A realistic slice: the self-attack trace (dense ground-truth attacks,
  // so balancing yields a substantial two-class set), balanced like
  // training does.
  flowgen::TrafficGenerator generator(flowgen::self_attack_profile(), 555);
  const auto trace = generator.generate(
      0, 240, flowgen::TrafficGenerator::Labeling::kGroundTruth);
  const auto balanced = core::balance_trace(trace.flows, 99);
  ASSERT_GT(balanced.size(), 100u);
  const arm::RuleSet rules = ntp_dns_rules();

  const auto want = legacy_aggregate(balanced, &rules);
  ASSERT_GT(want.size(), 10u);

  for (const unsigned threads : {1u, 2u, 3u, 8u}) {
    core::Aggregator aggregator;
    aggregator.set_threads(threads);
    const auto got = aggregator.aggregate(balanced, &rules);
    SCOPED_TRACE("threads=" + std::to_string(threads));
    expect_identical(got, want);
  }

  // The raw (unbalanced) slice exercises much larger groups; no rules.
  const auto raw_want = legacy_aggregate(trace.flows, nullptr);
  for (const unsigned threads : {1u, 3u}) {
    core::Aggregator aggregator;
    aggregator.set_threads(threads);
    SCOPED_TRACE("raw threads=" + std::to_string(threads));
    expect_identical(aggregator.aggregate(trace.flows), raw_want);
  }
}

TEST(HotPathEquivalence, BalancerStatsUnchangedByFlatGrouping) {
  // The balancer's per-IP grouping moved to FlatHash chains; selection
  // counts and totals are driven by sorted rankings, so they must be
  // independent of the grouping container. (Checked against recorded
  // invariants rather than an embedded legacy copy: every blackholed flow
  // kept, benign selection flow-matched, stats consistent.)
  flowgen::TrafficGenerator generator(flowgen::self_attack_profile(), 0xBA1);
  const auto trace = generator.generate(
      0, 120, flowgen::TrafficGenerator::Labeling::kGroundTruth);
  core::BalanceTotals totals;
  const auto balanced = core::balance_trace(trace.flows, 4321, &totals);
  EXPECT_EQ(balanced.size(), totals.balanced_flows);
  EXPECT_GT(totals.balanced_blackhole_flows, 0u);
  EXPECT_GT(totals.blackhole_share(), 0.40);
  EXPECT_LT(totals.blackhole_share(), 0.60);
  // Every blackholed input flow survives balancing.
  std::size_t input_blackholed = 0;
  for (const auto& flow : trace.flows) input_blackholed += flow.blackholed;
  std::size_t output_blackholed = 0;
  for (const auto& flow : balanced) output_blackholed += flow.blackholed;
  EXPECT_EQ(output_blackholed, input_blackholed);
  EXPECT_EQ(output_blackholed, totals.balanced_blackhole_flows);
}

}  // namespace
}  // namespace scrubber
