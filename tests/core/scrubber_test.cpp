#include "core/scrubber.hpp"

#include <gtest/gtest.h>

#include "core/balancer.hpp"
#include "flowgen/generator.hpp"

namespace scrubber::core {
namespace {

/// Shared fixture: one balanced day of IXP-US1 traffic, mined rules, and a
/// 2/3-1/3 aggregate split. Built once; the full chain is expensive.
class ScrubberTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    state_ = new State();
    flowgen::TrafficGenerator gen(flowgen::ixp_us1(), 7);
    Balancer balancer(1);
    gen.generate_stream(
        0, 36 * 60, flowgen::TrafficGenerator::Labeling::kBlackholeRegistry,
        [&](std::uint32_t m, std::span<const net::FlowRecord> flows) {
          balancer.add_minute(m, flows);
        });
    state_->flows = balancer.take_balanced();

    state_->scrubber = std::make_unique<IxpScrubber>();
    auto rules = state_->scrubber->mine_tagging_rules(state_->flows,
                                                      &state_->rule_counts);
    accept_rules_above(rules, 0.9);
    state_->scrubber->set_rules(std::move(rules));

    state_->aggregated = state_->scrubber->aggregate(state_->flows);
    util::Rng rng(5);
    auto [train_idx, test_idx] =
        state_->aggregated.data.split_indices(2.0 / 3.0, rng);
    state_->train = state_->aggregated.subset(train_idx);
    state_->test = state_->aggregated.subset(test_idx);
    state_->scrubber->train(state_->train);
  }

  static void TearDownTestSuite() {
    delete state_;
    state_ = nullptr;
  }

  struct State {
    std::vector<net::FlowRecord> flows;
    std::unique_ptr<IxpScrubber> scrubber;
    std::array<std::size_t, 3> rule_counts{};
    AggregatedDataset aggregated;
    AggregatedDataset train;
    AggregatedDataset test;
  };
  static State* state_;
};

ScrubberTest::State* ScrubberTest::state_ = nullptr;

TEST_F(ScrubberTest, MiningPipelineShrinksRuleCounts) {
  const auto& [mined, blackhole_only, minimized] = state_->rule_counts;
  EXPECT_GT(mined, blackhole_only);      // non-blackhole consequents dropped
  EXPECT_GT(blackhole_only, minimized);  // Algorithm 1 shrinks further
  EXPECT_GT(minimized, 5u);              // still a usable rule set
}

TEST_F(ScrubberTest, MinedRulesMeetConfidenceThreshold) {
  for (const auto& rule : state_->scrubber->rules().rules()) {
    EXPECT_GE(rule.rule.confidence,
              state_->scrubber->config().mining.min_confidence);
    EXPECT_EQ(rule.rule.consequent, arm::kBlackholeItem);
  }
}

TEST_F(ScrubberTest, XgbReachesPaperBallparkFbeta) {
  const auto cm = state_->scrubber->evaluate(state_->test);
  // The paper reports 0.989 at full scale; at our scaled-down data size
  // anything >= 0.93 confirms the pipeline learns the signatures.
  EXPECT_GE(cm.f_beta(0.5), 0.93) << cm.summary();
  EXPECT_LE(cm.fpr(), 0.05) << cm.summary();
}

TEST_F(ScrubberTest, RbcIsWorseThanXgbButFarBetterThanCoinToss) {
  const auto rbc = rbc_predict(state_->test);
  const auto cm = ml::evaluate(state_->test.data.labels(), rbc);
  const auto xgb = state_->scrubber->evaluate(state_->test);
  EXPECT_GT(cm.tpr(), 0.8);
  EXPECT_GE(xgb.f_beta(0.5), cm.f_beta(0.5));
}

TEST_F(ScrubberTest, ClassifyReturnsScoreAndRules) {
  // Find a positive test record with rule tags.
  for (std::size_t i = 0; i < state_->test.size(); ++i) {
    if (state_->test.data.label(i) == 1 &&
        !state_->test.meta[i].rule_tags.empty()) {
      const Classification verdict = state_->scrubber->classify(state_->test, i);
      EXPECT_GE(verdict.score, 0.0);
      EXPECT_LE(verdict.score, 1.0);
      EXPECT_EQ(verdict.matched_rules.size(),
                state_->test.meta[i].rule_tags.size());
      for (const auto* rule : verdict.matched_rules) {
        ASSERT_NE(rule, nullptr);
        EXPECT_EQ(rule->status, arm::RuleStatus::kAccepted);
      }
      return;
    }
  }
  FAIL() << "no positive record with rule tags in test split";
}

TEST_F(ScrubberTest, PredictAllMatchesClassify) {
  const auto all = state_->scrubber->predict_all(state_->test);
  for (std::size_t i = 0; i < 20 && i < state_->test.size(); ++i) {
    const auto verdict = state_->scrubber->classify(state_->test, i);
    EXPECT_EQ(all[i], verdict.is_ddos ? 1 : 0);
  }
}

TEST_F(ScrubberTest, TrainedFlagSet) {
  EXPECT_TRUE(state_->scrubber->trained());
  IxpScrubber fresh;
  EXPECT_FALSE(fresh.trained());
}

TEST(ScrubberConfigTest, ModelKindSelectsPipeline) {
  ScrubberConfig config;
  config.model = ml::ModelKind::kDecisionTree;
  IxpScrubber scrubber(config);
  EXPECT_EQ(scrubber.pipeline().classifier().name(), "DT");
}

TEST(AcceptRules, ThresholdPolicy) {
  arm::MinedRule high;
  high.antecedent = {arm::Item(arm::Attribute::kSrcPort, 123)};
  high.consequent = arm::kBlackholeItem;
  high.confidence = 0.95;
  high.support = 0.1;
  arm::MinedRule low = high;
  low.antecedent = {arm::Item(arm::Attribute::kSrcPort, 53)};
  low.confidence = 0.85;
  arm::RuleSet rules = arm::RuleSet::from_mined({high, low});
  EXPECT_EQ(accept_rules_above(rules, 0.9), 1u);
  EXPECT_EQ(rules.rules()[0].status, arm::RuleStatus::kAccepted);
  EXPECT_EQ(rules.rules()[1].status, arm::RuleStatus::kDeclined);
}

TEST(AcceptRules, AcceptAll) {
  arm::MinedRule rule;
  rule.antecedent = {arm::Item(arm::Attribute::kSrcPort, 123)};
  rule.consequent = arm::kBlackholeItem;
  arm::RuleSet rules = arm::RuleSet::from_mined({rule});
  accept_all_rules(rules);
  EXPECT_EQ(rules.rules()[0].status, arm::RuleStatus::kAccepted);
}

}  // namespace
}  // namespace scrubber::core
