#include "core/tag_predictor.hpp"

#include <gtest/gtest.h>

#include "core/balancer.hpp"
#include "core/scrubber.hpp"
#include "flowgen/generator.hpp"

namespace scrubber::core {
namespace {

/// Shared fixture: tagged aggregates from a balanced day of IXP-US1.
class TagPredictorTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    state_ = new State();
    flowgen::TrafficGenerator gen(flowgen::ixp_us1(), 31);
    Balancer balancer(1);
    gen.generate_stream(
        0, 36 * 60, flowgen::TrafficGenerator::Labeling::kBlackholeRegistry,
        [&](std::uint32_t m, std::span<const net::FlowRecord> f) {
          balancer.add_minute(m, f);
        });
    const auto flows = balancer.take_balanced();
    auto rules = state_->scrubber.mine_tagging_rules(flows);
    accept_rules_above(rules, 0.9, 0.0, 3);
    state_->scrubber.set_rules(std::move(rules));
    const auto aggregated = state_->scrubber.aggregate(flows);
    util::Rng rng(3);
    const auto [train_idx, test_idx] = aggregated.data.split_indices(2.0 / 3.0, rng);
    state_->train = aggregated.subset(train_idx);
    state_->test = aggregated.subset(test_idx);
    state_->predictor.fit(state_->train);
  }
  static void TearDownTestSuite() {
    delete state_;
    state_ = nullptr;
  }

  struct State {
    IxpScrubber scrubber;
    AggregatedDataset train;
    AggregatedDataset test;
    TagPredictor predictor;
  };
  static State* state_;
};

TagPredictorTest::State* TagPredictorTest::state_ = nullptr;

TEST_F(TagPredictorTest, LearnsFrequentTags) {
  EXPECT_TRUE(state_->predictor.trained());
  EXPECT_GE(state_->predictor.learned_tags().size(), 3u);
  EXPECT_LE(state_->predictor.learned_tags().size(), 16u);
}

TEST_F(TagPredictorTest, PredictedTagsAgreeWithMatching) {
  const TagAgreement agreement = evaluate_tags(state_->predictor, state_->test);
  EXPECT_GT(agreement.records, 100u);
  EXPECT_GE(agreement.precision, 0.8) << "precision";
  EXPECT_GE(agreement.recall, 0.8) << "recall";
  EXPECT_GE(static_cast<double>(agreement.exact_set_matches) /
                static_cast<double>(agreement.records),
            0.6);
}

TEST_F(TagPredictorTest, UntaggedRecordsMostlyPredictEmpty) {
  std::size_t untagged = 0, predicted_empty = 0;
  for (std::size_t i = 0; i < state_->test.size(); ++i) {
    if (!state_->test.meta[i].rule_tags.empty()) continue;
    ++untagged;
    predicted_empty += state_->predictor.predict(state_->test, i).empty();
  }
  ASSERT_GT(untagged, 20u);
  EXPECT_GE(static_cast<double>(predicted_empty) / untagged, 0.85);
}

TEST_F(TagPredictorTest, PredictionsAreSortedAndLearned) {
  const auto& learned = state_->predictor.learned_tags();
  for (std::size_t i = 0; i < 50 && i < state_->test.size(); ++i) {
    const auto predicted = state_->predictor.predict(state_->test, i);
    EXPECT_TRUE(std::is_sorted(predicted.begin(), predicted.end()));
    for (const auto tag : predicted) {
      EXPECT_NE(std::find(learned.begin(), learned.end(), tag), learned.end());
    }
  }
}

TEST(TagPredictorConfig, MinPositiveFiltersRareTags) {
  TagPredictor::Config config;
  config.min_positive = 1000000;  // nothing is this frequent
  TagPredictor predictor(config);
  AggregatedDataset empty;
  empty.data = ml::Dataset(Aggregator::schema());
  predictor.fit(empty);
  EXPECT_FALSE(predictor.trained());
}

}  // namespace
}  // namespace scrubber::core
