#include "core/aggregator.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

namespace scrubber::core {
namespace {

net::FlowRecord make_flow(std::uint32_t minute, std::uint32_t dst,
                          std::uint32_t src, std::uint16_t src_port,
                          std::uint64_t bytes, std::uint32_t packets,
                          bool blackholed = false) {
  net::FlowRecord f;
  f.minute = minute;
  f.dst_ip = net::Ipv4Address(dst);
  f.src_ip = net::Ipv4Address(src);
  f.src_port = src_port;
  f.dst_port = 44000;
  f.protocol = 17;
  f.bytes = bytes;
  f.packets = packets;
  f.blackholed = blackholed;
  f.src_member = src % 16;
  return f;
}

TEST(AggregatorSchema, Has150FeatureColumns) {
  const auto schema = Aggregator::schema();
  // |C|=5 categoricals x |M|=3 metrics x r=5 ranks x 2 columns = 150.
  EXPECT_EQ(schema.size(), 150u);
  std::size_t categorical = 0, numeric = 0;
  for (const auto& col : schema) {
    (col.kind == ml::ColumnKind::kCategorical ? categorical : numeric) += 1;
  }
  EXPECT_EQ(categorical, 75u);
  EXPECT_EQ(numeric, 75u);
}

TEST(AggregatorSchema, ColumnNamingConvention) {
  const auto schema = Aggregator::schema();
  EXPECT_EQ(schema[0].name, "src_ip/pktsize/0");
  EXPECT_EQ(schema[1].name, "src_ip/pktsize/0/val");
  // All names unique.
  std::set<std::string> names;
  for (const auto& col : schema) names.insert(col.name);
  EXPECT_EQ(names.size(), schema.size());
}

TEST(Aggregator, GroupsByMinuteAndTarget) {
  const Aggregator aggregator;
  std::vector<net::FlowRecord> flows{
      make_flow(0, 100, 1, 123, 500, 1),
      make_flow(0, 100, 2, 123, 500, 1),
      make_flow(0, 200, 1, 53, 500, 1),
      make_flow(1, 100, 1, 123, 500, 1),
  };
  const auto agg = aggregator.aggregate(flows);
  EXPECT_EQ(agg.size(), 3u);  // (0,100), (0,200), (1,100)
  EXPECT_EQ(agg.meta[0].minute, 0u);
  EXPECT_EQ(agg.meta[0].target.value(), 100u);
  EXPECT_EQ(agg.meta[0].flow_count, 2u);
}

TEST(Aggregator, RanksSourcePortsByBytes) {
  const Aggregator aggregator;
  // Port 123 sends 3000 bytes, port 53 sends 1000.
  std::vector<net::FlowRecord> flows{
      make_flow(0, 100, 1, 123, 3000, 3),
      make_flow(0, 100, 2, 53, 1000, 1),
  };
  const auto agg = aggregator.aggregate(flows);
  const auto& data = agg.data;
  const std::size_t rank0 = data.column_index("port_src/bytes/0");
  const std::size_t rank0_val = data.column_index("port_src/bytes/0/val");
  const std::size_t rank1 = data.column_index("port_src/bytes/1");
  EXPECT_DOUBLE_EQ(data.at(0, rank0), 123.0);
  EXPECT_DOUBLE_EQ(data.at(0, rank0_val), 3000.0);
  EXPECT_DOUBLE_EQ(data.at(0, rank1), 53.0);
}

TEST(Aggregator, MeanPacketSizeMetricIsWeighted) {
  const Aggregator aggregator;
  // Two flows from the same source: 1000B/2pkt + 500B/3pkt = 1500B/5pkt.
  std::vector<net::FlowRecord> flows{
      make_flow(0, 100, 1, 123, 1000, 2),
      make_flow(0, 100, 1, 123, 500, 3),
  };
  const auto agg = aggregator.aggregate(flows);
  const std::size_t col = agg.data.column_index("src_ip/pktsize/0/val");
  EXPECT_DOUBLE_EQ(agg.data.at(0, col), 300.0);
}

TEST(Aggregator, MissingRanksAreNaN) {
  const Aggregator aggregator;
  std::vector<net::FlowRecord> flows{make_flow(0, 100, 1, 123, 500, 1)};
  const auto agg = aggregator.aggregate(flows);
  // Only one distinct source port: ranks 1..4 missing.
  const std::size_t rank1 = agg.data.column_index("port_src/bytes/1");
  const std::size_t rank4 = agg.data.column_index("port_src/bytes/4");
  EXPECT_TRUE(ml::is_missing(agg.data.at(0, rank1)));
  EXPECT_TRUE(ml::is_missing(agg.data.at(0, rank4)));
}

TEST(Aggregator, LabelIsAnyBlackholedFlow) {
  const Aggregator aggregator;
  std::vector<net::FlowRecord> flows{
      make_flow(0, 100, 1, 123, 500, 1, false),
      make_flow(0, 100, 2, 123, 500, 1, true),  // one blackholed flow
      make_flow(0, 200, 1, 53, 500, 1, false),
  };
  const auto agg = aggregator.aggregate(flows);
  EXPECT_EQ(agg.data.label(0), 1);
  EXPECT_EQ(agg.data.label(1), 0);
}

TEST(Aggregator, DominantVectorByBytes) {
  const Aggregator aggregator;
  std::vector<net::FlowRecord> flows{
      make_flow(0, 100, 1, 123, 9000, 9),  // NTP dominates bytes
      make_flow(0, 100, 2, 53, 1000, 1),   // DNS
      make_flow(0, 200, 3, 44555, 500, 1), // no known vector
  };
  const auto agg = aggregator.aggregate(flows);
  ASSERT_TRUE(agg.meta[0].dominant_vector.has_value());
  EXPECT_EQ(*agg.meta[0].dominant_vector, net::DdosVector::kNtp);
  EXPECT_FALSE(agg.meta[1].dominant_vector.has_value());
}

TEST(Aggregator, RuleTagsAnnotated) {
  // Build a rule set whose single accepted rule matches NTP flows.
  arm::MinedRule mined;
  mined.antecedent = {arm::Item(arm::Attribute::kProtocol, 17),
                      arm::Item(arm::Attribute::kSrcPort, 123)};
  std::sort(mined.antecedent.begin(), mined.antecedent.end());
  mined.consequent = arm::kBlackholeItem;
  mined.confidence = 0.95;
  mined.support = 0.1;
  arm::RuleSet rules = arm::RuleSet::from_mined({mined});
  rules.rules()[0].status = arm::RuleStatus::kAccepted;

  const Aggregator aggregator;
  std::vector<net::FlowRecord> flows{
      make_flow(0, 100, 1, 123, 500, 1),   // NTP -> tagged
      make_flow(0, 200, 1, 50001, 500, 1), // ephemeral src -> no tag
  };
  const auto agg = aggregator.aggregate(flows, &rules);
  ASSERT_EQ(agg.size(), 2u);
  EXPECT_EQ(agg.meta[0].rule_tags.size(), 1u);
  EXPECT_TRUE(agg.meta[1].rule_tags.empty());
}

TEST(AggregatedDataset, SubsetKeepsMetaAligned) {
  const Aggregator aggregator;
  std::vector<net::FlowRecord> flows{
      make_flow(0, 100, 1, 123, 500, 1, true),
      make_flow(0, 200, 1, 53, 500, 1),
      make_flow(0, 300, 1, 80, 500, 1),
  };
  const auto agg = aggregator.aggregate(flows);
  const std::vector<std::size_t> idx{2, 0};
  const auto sub = agg.subset(idx);
  ASSERT_EQ(sub.size(), 2u);
  EXPECT_EQ(sub.meta[0].target.value(), 300u);
  EXPECT_EQ(sub.meta[1].target.value(), 100u);
  EXPECT_EQ(sub.data.label(1), 1);
}

TEST(AggregatedDataset, AppendConcatenates) {
  const Aggregator aggregator;
  std::vector<net::FlowRecord> a{make_flow(0, 100, 1, 123, 500, 1)};
  std::vector<net::FlowRecord> b{make_flow(5, 200, 1, 53, 500, 1)};
  auto agg_a = aggregator.aggregate(a);
  const auto agg_b = aggregator.aggregate(b);
  agg_a.append(agg_b);
  EXPECT_EQ(agg_a.size(), 2u);
  EXPECT_EQ(agg_a.meta[1].minute, 5u);
}

TEST(Aggregator, DeterministicRecordOrder) {
  const Aggregator aggregator;
  std::vector<net::FlowRecord> flows{
      make_flow(1, 300, 1, 123, 500, 1),
      make_flow(0, 200, 1, 53, 500, 1),
      make_flow(0, 100, 1, 80, 500, 1),
  };
  const auto agg = aggregator.aggregate(flows);
  // Ordered by (minute, target).
  EXPECT_EQ(agg.meta[0].minute, 0u);
  EXPECT_EQ(agg.meta[0].target.value(), 100u);
  EXPECT_EQ(agg.meta[1].target.value(), 200u);
  EXPECT_EQ(agg.meta[2].minute, 1u);
}

}  // namespace
}  // namespace scrubber::core
