#include "core/explain.hpp"

#include <gtest/gtest.h>

#include "core/balancer.hpp"
#include "flowgen/generator.hpp"

namespace scrubber::core {
namespace {

/// Minimal trained scrubber over a short generated trace.
struct Fixture {
  Fixture() {
    flowgen::TrafficGenerator gen(flowgen::ixp_us1(), 21);
    Balancer balancer(3);
    gen.generate_stream(
        0, 10 * 60, flowgen::TrafficGenerator::Labeling::kBlackholeRegistry,
        [&](std::uint32_t m, std::span<const net::FlowRecord> batch) {
          balancer.add_minute(m, batch);
        });
    flows = balancer.take_balanced();
    auto rules = scrubber.mine_tagging_rules(flows);
    accept_rules_above(rules, 0.9);
    scrubber.set_rules(std::move(rules));
    aggregated = scrubber.aggregate(flows);
    scrubber.train(aggregated);
  }

  std::vector<net::FlowRecord> flows;
  IxpScrubber scrubber;
  AggregatedDataset aggregated;
};

TEST(Explain, EvidenceSortedByAbsoluteWoe) {
  const Fixture fx;
  const Explanation out = explain(fx.scrubber, fx.aggregated, 0, 0);
  ASSERT_GT(out.evidence.size(), 2u);
  for (std::size_t i = 1; i < out.evidence.size(); ++i) {
    EXPECT_GE(std::abs(out.evidence[i - 1].woe), std::abs(out.evidence[i].woe));
  }
}

TEST(Explain, TopKLimitsEvidence) {
  const Fixture fx;
  const Explanation out = explain(fx.scrubber, fx.aggregated, 0, 3);
  EXPECT_LE(out.evidence.size(), 3u);
}

TEST(Explain, PositiveRecordHasAttackEvidence) {
  const Fixture fx;
  for (std::size_t i = 0; i < fx.aggregated.size(); ++i) {
    if (fx.aggregated.data.label(i) != 1 ||
        !fx.aggregated.meta[i].dominant_vector.has_value())
      continue;
    const Explanation out = explain(fx.scrubber, fx.aggregated, i, 10);
    // At least one top feature should argue for the attack.
    bool any_positive = false;
    for (const auto& e : out.evidence) any_positive |= e.points_to_attack();
    EXPECT_TRUE(any_positive);
    return;
  }
  GTEST_SKIP() << "no attack record in fixture trace";
}

TEST(Explain, MatchedRulesListedForTaggedRecords) {
  const Fixture fx;
  for (std::size_t i = 0; i < fx.aggregated.size(); ++i) {
    if (fx.aggregated.meta[i].rule_tags.empty()) continue;
    const Explanation out = explain(fx.scrubber, fx.aggregated, i, 5);
    EXPECT_EQ(out.matched_rules.size(), fx.aggregated.meta[i].rule_tags.size());
    EXPECT_FALSE(out.matched_rules[0].empty());
    return;
  }
  GTEST_SKIP() << "no tagged record in fixture trace";
}

TEST(Explain, ToStringRendersAllParts) {
  const Fixture fx;
  const Explanation out = explain(fx.scrubber, fx.aggregated, 0, 5);
  const std::string text = out.to_string();
  EXPECT_NE(text.find("target "), std::string::npos);
  EXPECT_NE(text.find("weight-of-evidence"), std::string::npos);
  EXPECT_NE(text.find("WoE="), std::string::npos);
}

TEST(Explain, MetadataCopied) {
  const Fixture fx;
  const Explanation out = explain(fx.scrubber, fx.aggregated, 0, 5);
  EXPECT_EQ(out.minute, fx.aggregated.meta[0].minute);
  EXPECT_EQ(out.target, fx.aggregated.meta[0].target);
}

TEST(RenderRawValue, IpColumnsDottedQuad) {
  EXPECT_EQ(render_raw_value("src_ip/bytes/0", 0x0A000001), "10.0.0.1");
  EXPECT_EQ(render_raw_value("port_src/bytes/0", 123.0), "123");
  EXPECT_EQ(render_raw_value("protocol/bytes/0", 17.0), "UDP");
  EXPECT_EQ(render_raw_value("port_dst/packets/2", ml::kMissing), "(missing)");
}

}  // namespace
}  // namespace scrubber::core
