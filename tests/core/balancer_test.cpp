#include "core/balancer.hpp"

#include <gtest/gtest.h>

#include <unordered_set>

#include "flowgen/generator.hpp"
#include "util/stats.hpp"

namespace scrubber::core {
namespace {

net::FlowRecord flow_to(std::uint32_t minute, std::uint32_t dst, bool blackholed,
                        std::uint32_t src = 1) {
  net::FlowRecord f;
  f.minute = minute;
  f.dst_ip = net::Ipv4Address(dst);
  f.src_ip = net::Ipv4Address(src);
  f.packets = 1;
  f.bytes = 500;
  f.blackholed = blackholed;
  return f;
}

TEST(Balancer, KeepsAllBlackholedFlows) {
  Balancer balancer(1);
  std::vector<net::FlowRecord> flows;
  for (int i = 0; i < 10; ++i) flows.push_back(flow_to(0, 100, true));
  for (int i = 0; i < 100; ++i)
    flows.push_back(flow_to(0, 200 + static_cast<std::uint32_t>(i % 5), false));
  balancer.add_minute(0, flows);
  std::size_t bh = 0;
  for (const auto& f : balancer.balanced()) bh += f.blackholed;
  EXPECT_EQ(bh, 10u);
}

TEST(Balancer, BalancesFlowCounts) {
  Balancer balancer(1);
  std::vector<net::FlowRecord> flows;
  for (int i = 0; i < 20; ++i) flows.push_back(flow_to(0, 100, true));
  // Plenty of benign supply across several IPs.
  for (int i = 0; i < 500; ++i)
    flows.push_back(flow_to(0, 200 + static_cast<std::uint32_t>(i % 10), false));
  balancer.add_minute(0, flows);
  const auto& totals = balancer.totals();
  EXPECT_NEAR(totals.blackhole_share(), 0.5, 0.05);
  EXPECT_EQ(totals.balanced_blackhole_flows, 20u);
}

TEST(Balancer, NoBlackholeMeansNothingKept) {
  Balancer balancer(1);
  std::vector<net::FlowRecord> flows;
  for (int i = 0; i < 50; ++i) flows.push_back(flow_to(0, 200, false));
  balancer.add_minute(0, flows);
  EXPECT_TRUE(balancer.balanced().empty());
  EXPECT_EQ(balancer.totals().raw_flows, 50u);
}

TEST(Balancer, NoBenignMeansOnlyBlackholeKept) {
  // Degenerate minute: blackholed traffic only. Nothing to pair with.
  Balancer balancer(1);
  std::vector<net::FlowRecord> flows{flow_to(0, 100, true), flow_to(0, 100, true)};
  balancer.add_minute(0, flows);
  EXPECT_TRUE(balancer.balanced().empty());
}

TEST(Balancer, SpilloverCoversDeficit) {
  Balancer balancer(1);
  std::vector<net::FlowRecord> flows;
  // One hot victim with 30 flows; benign IPs have only 5 flows each.
  for (int i = 0; i < 30; ++i) flows.push_back(flow_to(0, 100, true));
  for (int ip = 0; ip < 20; ++ip) {
    for (int k = 0; k < 5; ++k)
      flows.push_back(flow_to(0, 200 + static_cast<std::uint32_t>(ip), false));
  }
  balancer.add_minute(0, flows);
  const auto& totals = balancer.totals();
  // 30 blackholed + 30 benign (6 IPs x 5 flows spillover).
  EXPECT_EQ(totals.balanced_blackhole_flows, 30u);
  EXPECT_EQ(totals.balanced_flows, 60u);
}

TEST(Balancer, BenignSupplyShortfallTakesWhatExists) {
  Balancer balancer(1);
  std::vector<net::FlowRecord> flows;
  for (int i = 0; i < 50; ++i) flows.push_back(flow_to(0, 100, true));
  for (int i = 0; i < 10; ++i) flows.push_back(flow_to(0, 200, false));
  balancer.add_minute(0, flows);
  EXPECT_EQ(balancer.totals().balanced_flows, 60u);  // 50 BH + all 10 benign
}

TEST(Balancer, MinuteStatsRecorded) {
  Balancer balancer(1);
  std::vector<net::FlowRecord> flows;
  for (int i = 0; i < 4; ++i) flows.push_back(flow_to(7, 100, true));
  for (int i = 0; i < 40; ++i)
    flows.push_back(flow_to(7, 200 + static_cast<std::uint32_t>(i % 4), false));
  balancer.add_minute(7, flows);
  ASSERT_EQ(balancer.minute_stats().size(), 1u);
  const auto& stats = balancer.minute_stats()[0];
  EXPECT_EQ(stats.minute, 7u);
  EXPECT_EQ(stats.raw_flows, 44u);
  EXPECT_EQ(stats.blackhole_flows, 4u);
  EXPECT_EQ(stats.blackhole_unique_ips, 1u);
  EXPECT_DOUBLE_EQ(stats.blackhole_flows_per_ip(), 4.0);
  EXPECT_GT(stats.blackhole_byte_share(), 0.0);
}

TEST(Balancer, ReductionRatioReflectsDiscarding) {
  Balancer balancer(1);
  std::vector<net::FlowRecord> flows;
  flows.push_back(flow_to(0, 100, true));
  for (int i = 0; i < 999; ++i)
    flows.push_back(flow_to(0, 200 + static_cast<std::uint32_t>(i % 7), false));
  balancer.add_minute(0, flows);
  EXPECT_NEAR(balancer.totals().reduction_ratio(), 2.0 / 1000.0, 1e-9);
}

TEST(Balancer, BalancedFlowsComeFromInput) {
  Balancer balancer(1);
  std::vector<net::FlowRecord> flows;
  for (int i = 0; i < 5; ++i) flows.push_back(flow_to(0, 100, true, 42));
  for (int i = 0; i < 50; ++i)
    flows.push_back(flow_to(0, 200 + static_cast<std::uint32_t>(i % 3), false, 43));
  balancer.add_minute(0, flows);
  for (const auto& f : balancer.balanced()) {
    EXPECT_TRUE(f.src_ip.value() == 42 || f.src_ip.value() == 43);
    EXPECT_EQ(f.minute, 0u);
  }
}

TEST(BalanceTrace, GroupsByMinute) {
  std::vector<net::FlowRecord> flows;
  for (std::uint32_t m = 0; m < 3; ++m) {
    for (int i = 0; i < 5; ++i) flows.push_back(flow_to(m, 100, true));
    for (int i = 0; i < 50; ++i)
      flows.push_back(flow_to(m, 200 + static_cast<std::uint32_t>(i % 5), false));
  }
  BalanceTotals totals;
  const auto balanced = balance_trace(flows, 1, &totals);
  EXPECT_EQ(totals.balanced_blackhole_flows, 15u);
  EXPECT_NEAR(totals.blackhole_share(), 0.5, 0.01);
  // Every balanced flow retains its original minute.
  std::unordered_set<std::uint32_t> minutes;
  for (const auto& f : balanced) minutes.insert(f.minute);
  EXPECT_EQ(minutes.size(), 3u);
}

TEST(BalancerIntegration, RealisticTraceIsRoughlyBalanced) {
  // End to end against the generator: Table 2's ~50% blackhole share and
  // the >=99% data reduction (by flows) in attack-bearing traffic.
  flowgen::TrafficGenerator gen(flowgen::ixp_us1(), 77);
  Balancer balancer(7);
  gen.generate_stream(
      0, 24 * 60, flowgen::TrafficGenerator::Labeling::kBlackholeRegistry,
      [&](std::uint32_t m, std::span<const net::FlowRecord> flows) {
        balancer.add_minute(m, flows);
      });
  const auto& totals = balancer.totals();
  EXPECT_NEAR(totals.blackhole_share(), 0.5, 0.05);
  EXPECT_LT(totals.reduction_ratio(), 0.10);
}

TEST(BalancerIntegration, FlowsPerIpCorrelated) {
  // Figure 3c: flows per unique IP correlate between the classes.
  flowgen::TrafficGenerator gen(flowgen::ixp_ce1(), 78);
  Balancer balancer(8);
  gen.generate_stream(
      0, 12 * 60, flowgen::TrafficGenerator::Labeling::kBlackholeRegistry,
      [&](std::uint32_t m, std::span<const net::FlowRecord> flows) {
        balancer.add_minute(m, flows);
      });
  std::vector<double> bh, benign;
  for (const auto& stats : balancer.minute_stats()) {
    if (stats.blackhole_unique_ips == 0 || stats.benign_selected_ips == 0) continue;
    bh.push_back(stats.blackhole_flows_per_ip());
    benign.push_back(stats.benign_flows_per_ip());
  }
  ASSERT_GT(bh.size(), 20u);
  EXPECT_GT(util::pearson(bh, benign), 0.4);
}

}  // namespace
}  // namespace scrubber::core
