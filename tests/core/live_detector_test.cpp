#include "core/live_detector.hpp"

#include <gtest/gtest.h>

#include "flowgen/generator.hpp"

namespace scrubber::core {
namespace {

constexpr std::uint32_t kDay = 24 * 60;

LiveDetectorConfig fast_config() {
  LiveDetectorConfig config;
  config.warmup_min = 12 * 60;          // half a day of data before training
  config.retrain_interval_min = 12 * 60;
  config.training_window_min = 2 * kDay;
  return config;
}

TEST(LiveDetector, NotReadyBeforeWarmup) {
  LiveDetector detector(fast_config(), nullptr);
  flowgen::TrafficGenerator gen(flowgen::ixp_us1(), 1);
  gen.generate_stream(0, 60, flowgen::TrafficGenerator::Labeling::kBlackholeRegistry,
                      [&](std::uint32_t m, std::span<const net::FlowRecord> f) {
                        detector.ingest_minute(m, f);
                      });
  EXPECT_FALSE(detector.ready());
  EXPECT_EQ(detector.detections(), 0u);
  EXPECT_EQ(detector.minutes_processed(), 60u);
}

TEST(LiveDetector, TrainsAfterWarmupAndDetects) {
  std::vector<Detection> detections;
  LiveDetector detector(fast_config(),
                        [&](const Detection& d) { detections.push_back(d); });
  flowgen::TrafficGenerator gen(flowgen::ixp_us1(), 2);
  gen.generate_stream(
      0, 2 * kDay, flowgen::TrafficGenerator::Labeling::kBlackholeRegistry,
      [&](std::uint32_t m, std::span<const net::FlowRecord> f) {
        detector.ingest_minute(m, f);
      });
  EXPECT_TRUE(detector.ready());
  EXPECT_GE(detector.retrain_count(), 2u);
  EXPECT_GT(detector.detections(), 0u);
  EXPECT_EQ(detector.detections(), detections.size());

  // Every detection respects the traffic threshold and carries a score.
  for (const auto& d : detections) {
    EXPECT_GE(d.flow_count, fast_config().min_flows_per_target);
    EXPECT_GE(d.score, 0.5);
    EXPECT_LE(d.score, 1.0);
  }
}

TEST(LiveDetector, DetectionsAreOverwhelminglyRealAttacks) {
  std::vector<Detection> detections;
  LiveDetector detector(fast_config(),
                        [&](const Detection& d) { detections.push_back(d); });
  flowgen::TrafficGenerator gen(flowgen::ixp_us1(), 3);
  gen.generate_stream(
      0, 2 * kDay, flowgen::TrafficGenerator::Labeling::kBlackholeRegistry,
      [&](std::uint32_t m, std::span<const net::FlowRecord> f) {
        detector.ingest_minute(m, f);
      });
  ASSERT_GT(detections.size(), 10u);
  // Check detected targets against the attack schedule.
  std::size_t matched = 0;
  for (const auto& d : detections) {
    for (const auto& attack : gen.attacks()) {
      if (attack.victim == d.target && d.minute >= attack.start_minute &&
          d.minute < attack.end_minute + 2) {
        ++matched;
        break;
      }
    }
  }
  // Most detections coincide with a scheduled attack; the remainder are
  // spurious-blackhole targets and model false positives.
  EXPECT_GE(static_cast<double>(matched) / detections.size(), 0.8);
}

TEST(LiveDetector, WindowEvictionBoundsMemory) {
  LiveDetectorConfig config = fast_config();
  config.training_window_min = 6 * 60;  // six hours
  LiveDetector detector(config, nullptr);
  flowgen::TrafficGenerator gen(flowgen::ixp_us1(), 4);
  std::size_t max_window = 0;
  gen.generate_stream(
      0, kDay, flowgen::TrafficGenerator::Labeling::kBlackholeRegistry,
      [&](std::uint32_t m, std::span<const net::FlowRecord> f) {
        detector.ingest_minute(m, f);
        max_window = std::max(max_window, detector.window_flows());
      });
  // The window holds at most ~6h of balanced flows; a full day would be
  // roughly four times larger.
  LiveDetector unbounded(fast_config(), nullptr);
  flowgen::TrafficGenerator gen2(flowgen::ixp_us1(), 4);
  gen2.generate_stream(
      0, kDay, flowgen::TrafficGenerator::Labeling::kBlackholeRegistry,
      [&](std::uint32_t m, std::span<const net::FlowRecord> f) {
        unbounded.ingest_minute(m, f);
      });
  EXPECT_LT(max_window, unbounded.window_flows());
}

TEST(LiveDetector, ForcedRetrainWorks) {
  LiveDetector detector(fast_config(), nullptr);
  flowgen::TrafficGenerator gen(flowgen::ixp_us1(), 5);
  gen.generate_stream(
      0, 14 * 60, flowgen::TrafficGenerator::Labeling::kBlackholeRegistry,
      [&](std::uint32_t m, std::span<const net::FlowRecord> f) {
        detector.ingest_minute(m, f);
      });
  const auto before = detector.retrain_count();
  detector.retrain(14 * 60);
  EXPECT_EQ(detector.retrain_count(), before + 1);
  EXPECT_TRUE(detector.ready());
}

TEST(LiveDetector, RulesAreCuratedAndAvailable) {
  LiveDetector detector(fast_config(), nullptr);
  flowgen::TrafficGenerator gen(flowgen::ixp_us1(), 6);
  gen.generate_stream(
      0, 30 * 60, flowgen::TrafficGenerator::Labeling::kBlackholeRegistry,
      [&](std::uint32_t m, std::span<const net::FlowRecord> f) {
        detector.ingest_minute(m, f);
      });
  ASSERT_TRUE(detector.ready());
  std::size_t accepted = 0;
  for (const auto& rule : detector.scrubber().rules().rules())
    accepted += (rule.status == arm::RuleStatus::kAccepted);
  EXPECT_GT(accepted, 0u);
}

}  // namespace
}  // namespace scrubber::core
