#include "net/ipv4.hpp"

#include <gtest/gtest.h>

#include <unordered_set>

namespace scrubber::net {
namespace {

TEST(Ipv4Address, ParseValid) {
  const auto a = Ipv4Address::parse("192.0.2.1");
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->value(), 0xC0000201u);
  EXPECT_EQ(Ipv4Address::parse("0.0.0.0")->value(), 0u);
  EXPECT_EQ(Ipv4Address::parse("255.255.255.255")->value(), 0xFFFFFFFFu);
}

TEST(Ipv4Address, ParseInvalid) {
  EXPECT_FALSE(Ipv4Address::parse(""));
  EXPECT_FALSE(Ipv4Address::parse("1.2.3"));
  EXPECT_FALSE(Ipv4Address::parse("1.2.3.4.5"));
  EXPECT_FALSE(Ipv4Address::parse("256.0.0.1"));
  EXPECT_FALSE(Ipv4Address::parse("a.b.c.d"));
  EXPECT_FALSE(Ipv4Address::parse("1.2.3.4 "));
  EXPECT_FALSE(Ipv4Address::parse("1..2.3"));
}

TEST(Ipv4Address, RoundTrip) {
  for (const char* text : {"10.0.0.1", "172.16.254.3", "8.8.8.8"}) {
    EXPECT_EQ(Ipv4Address::parse(text)->to_string(), text);
  }
}

TEST(Ipv4Address, FromOctets) {
  EXPECT_EQ(Ipv4Address::from_octets(10, 20, 30, 40).to_string(), "10.20.30.40");
}

TEST(Ipv4Address, Ordering) {
  EXPECT_LT(*Ipv4Address::parse("10.0.0.1"), *Ipv4Address::parse("10.0.0.2"));
  EXPECT_EQ(*Ipv4Address::parse("10.0.0.1"), Ipv4Address(0x0A000001));
}

TEST(Ipv4Address, Hashable) {
  std::unordered_set<Ipv4Address> set;
  set.insert(Ipv4Address(1));
  set.insert(Ipv4Address(1));
  set.insert(Ipv4Address(2));
  EXPECT_EQ(set.size(), 2u);
}

TEST(Ipv4Prefix, NormalizesHostBits) {
  const Ipv4Prefix p(*Ipv4Address::parse("192.0.2.77"), 24);
  EXPECT_EQ(p.to_string(), "192.0.2.0/24");
  EXPECT_EQ(p.length(), 24);
}

TEST(Ipv4Prefix, ClampsLength) {
  const Ipv4Prefix p(Ipv4Address(0xFFFFFFFF), 40);
  EXPECT_EQ(p.length(), 32);
}

TEST(Ipv4Prefix, ZeroLengthMatchesEverything) {
  const Ipv4Prefix p(Ipv4Address(0x12345678), 0);
  EXPECT_EQ(p.address().value(), 0u);
  EXPECT_TRUE(p.contains(Ipv4Address(0)));
  EXPECT_TRUE(p.contains(Ipv4Address(0xFFFFFFFF)));
}

TEST(Ipv4Prefix, Contains) {
  const auto p = Ipv4Prefix::parse("10.1.0.0/16");
  ASSERT_TRUE(p);
  EXPECT_TRUE(p->contains(*Ipv4Address::parse("10.1.255.1")));
  EXPECT_FALSE(p->contains(*Ipv4Address::parse("10.2.0.1")));
}

TEST(Ipv4Prefix, Covers) {
  const auto p16 = Ipv4Prefix::parse("10.1.0.0/16");
  const auto p24 = Ipv4Prefix::parse("10.1.2.0/24");
  EXPECT_TRUE(p16->covers(*p24));
  EXPECT_FALSE(p24->covers(*p16));
  EXPECT_TRUE(p16->covers(*p16));
}

TEST(Ipv4Prefix, ParseBareAddressIsHostRoute) {
  const auto p = Ipv4Prefix::parse("192.0.2.1");
  ASSERT_TRUE(p);
  EXPECT_EQ(p->length(), 32);
  EXPECT_EQ(p->to_string(), "192.0.2.1/32");
}

TEST(Ipv4Prefix, ParseInvalid) {
  EXPECT_FALSE(Ipv4Prefix::parse("10.0.0.0/33"));
  EXPECT_FALSE(Ipv4Prefix::parse("10.0.0.0/"));
  EXPECT_FALSE(Ipv4Prefix::parse("10.0.0.0/8x"));
  EXPECT_FALSE(Ipv4Prefix::parse("/8"));
}

TEST(Ipv4Prefix, HostFactory) {
  const auto host = Ipv4Prefix::host(*Ipv4Address::parse("1.2.3.4"));
  EXPECT_EQ(host.to_string(), "1.2.3.4/32");
  EXPECT_TRUE(host.contains(*Ipv4Address::parse("1.2.3.4")));
  EXPECT_FALSE(host.contains(*Ipv4Address::parse("1.2.3.5")));
}

TEST(Ipv4Prefix, MaskValues) {
  EXPECT_EQ(Ipv4Prefix::parse("0.0.0.0/0")->mask(), 0u);
  EXPECT_EQ(Ipv4Prefix::parse("10.0.0.0/8")->mask(), 0xFF000000u);
  EXPECT_EQ(Ipv4Prefix::parse("1.2.3.4/32")->mask(), 0xFFFFFFFFu);
}

}  // namespace
}  // namespace scrubber::net
