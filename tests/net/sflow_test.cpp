#include "net/sflow.hpp"

#include <gtest/gtest.h>

namespace scrubber::net {
namespace {

SflowFlowSample make_sample(std::uint32_t seq) {
  SflowFlowSample sample;
  sample.sequence = seq;
  sample.sampling_rate = 2048;
  sample.sample_pool = seq * 2048;
  sample.input_port = 42;
  sample.output_port = 7;
  sample.packet.src_ip = *Ipv4Address::parse("198.51.100.9");
  sample.packet.dst_ip = *Ipv4Address::parse("10.0.1.10");
  sample.packet.src_port = 123;
  sample.packet.dst_port = 44321;
  sample.packet.protocol = 17;
  sample.packet.length = 468;
  sample.packet.ingress_member = 42;
  return sample;
}

SflowDatagram make_datagram() {
  SflowDatagram d;
  d.agent = *Ipv4Address::parse("10.255.1.1");
  d.sub_agent_id = 3;
  d.sequence = 1001;
  d.uptime_ms = 123'456;
  d.samples = {make_sample(1), make_sample(2), make_sample(3)};
  return d;
}

TEST(Sflow, EncodeDecodeRoundTrip) {
  const SflowDatagram original = make_datagram();
  const auto wire = original.encode();
  const SflowDatagram decoded = SflowDatagram::decode(wire);
  EXPECT_EQ(decoded.agent, original.agent);
  EXPECT_EQ(decoded.sub_agent_id, original.sub_agent_id);
  EXPECT_EQ(decoded.sequence, original.sequence);
  EXPECT_EQ(decoded.uptime_ms, original.uptime_ms);
  ASSERT_EQ(decoded.samples.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(decoded.samples[i].sampling_rate, original.samples[i].sampling_rate);
    EXPECT_EQ(decoded.samples[i].input_port, original.samples[i].input_port);
    EXPECT_EQ(decoded.samples[i].packet.src_ip, original.samples[i].packet.src_ip);
    EXPECT_EQ(decoded.samples[i].packet.dst_ip, original.samples[i].packet.dst_ip);
    EXPECT_EQ(decoded.samples[i].packet.src_port, original.samples[i].packet.src_port);
    EXPECT_EQ(decoded.samples[i].packet.dst_port, original.samples[i].packet.dst_port);
    EXPECT_EQ(decoded.samples[i].packet.protocol, original.samples[i].packet.protocol);
    EXPECT_EQ(decoded.samples[i].packet.length, original.samples[i].packet.length);
  }
}

TEST(Sflow, WireStartsWithVersion5) {
  const auto wire = make_datagram().encode();
  ASSERT_GE(wire.size(), 4u);
  EXPECT_EQ(wire[0], 0);
  EXPECT_EQ(wire[1], 0);
  EXPECT_EQ(wire[2], 0);
  EXPECT_EQ(wire[3], 5);
}

TEST(Sflow, XdrAlignment) {
  // Every encoded datagram is a multiple of 4 bytes (XDR rule).
  EXPECT_EQ(make_datagram().encode().size() % 4, 0u);
}

TEST(Sflow, TcpFlagsSurviveRoundTrip) {
  SflowDatagram d = make_datagram();
  d.samples.resize(1);
  d.samples[0].packet.protocol = 6;
  d.samples[0].packet.tcp_flags = 0x12;  // SYN|ACK
  const SflowDatagram decoded = SflowDatagram::decode(d.encode());
  ASSERT_EQ(decoded.samples.size(), 1u);
  EXPECT_EQ(decoded.samples[0].packet.tcp_flags, 0x12);
}

TEST(Sflow, EmptyDatagram) {
  SflowDatagram d;
  d.agent = Ipv4Address(1);
  const SflowDatagram decoded = SflowDatagram::decode(d.encode());
  EXPECT_TRUE(decoded.samples.empty());
}

TEST(Sflow, DecodeRejectsWrongVersion) {
  auto wire = make_datagram().encode();
  wire[3] = 4;
  EXPECT_THROW(SflowDatagram::decode(wire), SflowDecodeError);
}

TEST(Sflow, DecodeRejectsTruncated) {
  auto wire = make_datagram().encode();
  wire.resize(wire.size() / 2);
  EXPECT_THROW(SflowDatagram::decode(wire), SflowDecodeError);
}

TEST(Sflow, IngestIntoFlowCache) {
  FlowCache cache(2048);
  SflowDatagram d = make_datagram();
  d.uptime_ms = 5 * 60'000;  // minute 5
  ingest_datagram(d, cache);
  // Three samples with identical 5-tuples aggregate into one flow.
  const auto flows = cache.drain_all();
  ASSERT_EQ(flows.size(), 1u);
  EXPECT_EQ(flows[0].minute, 5u);
  EXPECT_EQ(flows[0].packets, 3u * 2048u);
  EXPECT_EQ(flows[0].bytes, 3u * 2048u * 468u);
  EXPECT_EQ(flows[0].src_member, 42u);
  // The reconstructed flow classifies as NTP reflection.
  EXPECT_EQ(flows[0].vector(), DdosVector::kNtp);
}

TEST(Sflow, MemberIdViaSrcMacRoundTrip) {
  SflowDatagram d = make_datagram();
  d.samples.resize(1);
  d.samples[0].packet.ingress_member = 0xABCDEF01;
  const SflowDatagram decoded = SflowDatagram::decode(d.encode());
  EXPECT_EQ(decoded.samples[0].packet.ingress_member, 0xABCDEF01u);
}

}  // namespace
}  // namespace scrubber::net
