#include "net/anonymize.hpp"

#include <gtest/gtest.h>

#include <set>

#include "net/prefix_trie.hpp"
#include "util/rng.hpp"

namespace scrubber::net {
namespace {

TEST(Anonymizer, DeterministicForSalt) {
  const Anonymizer a(12345), b(12345);
  const Ipv4Address ip = *Ipv4Address::parse("192.0.2.1");
  EXPECT_EQ(a.anonymize(ip), b.anonymize(ip));
}

TEST(Anonymizer, DifferentSaltsDiffer) {
  const Anonymizer a(1), b(2);
  const Ipv4Address ip = *Ipv4Address::parse("192.0.2.1");
  EXPECT_NE(a.anonymize(ip), b.anonymize(ip));
}

TEST(Anonymizer, OutputDiffersFromInput) {
  const Anonymizer anon(99);
  const Ipv4Address ip = *Ipv4Address::parse("192.0.2.1");
  EXPECT_NE(anon.anonymize(ip), ip);
}

TEST(Anonymizer, InjectiveOnSample) {
  const Anonymizer anon(7);
  util::Rng rng(1);
  std::set<std::uint32_t> outputs;
  for (int i = 0; i < 100000; ++i) {
    outputs.insert(anon.anonymize(Ipv4Address(static_cast<std::uint32_t>(rng()))).value());
  }
  EXPECT_GE(outputs.size(), 99990u);  // no meaningful collisions
}

TEST(Anonymizer, MemberIdsAnonymized) {
  const Anonymizer anon(7);
  EXPECT_EQ(anon.anonymize(MemberId{42}), anon.anonymize(MemberId{42}));
  EXPECT_NE(anon.anonymize(MemberId{42}), anon.anonymize(MemberId{43}));
  EXPECT_NE(anon.anonymize(MemberId{42}), MemberId{42});
}

TEST(Anonymizer, FlowFieldsAnonymized) {
  const Anonymizer anon(7);
  FlowRecord flow;
  flow.src_ip = *Ipv4Address::parse("198.51.100.9");
  flow.dst_ip = *Ipv4Address::parse("10.0.1.10");
  flow.src_port = 123;
  flow.src_member = 42;
  flow.bytes = 1000;
  const FlowRecord original = flow;
  anon.anonymize(flow);
  EXPECT_NE(flow.src_ip, original.src_ip);
  EXPECT_NE(flow.dst_ip, original.dst_ip);
  EXPECT_NE(flow.src_member, original.src_member);
  // Non-identifying fields are untouched (ports carry the DDoS signal!).
  EXPECT_EQ(flow.src_port, original.src_port);
  EXPECT_EQ(flow.bytes, original.bytes);
}

TEST(Anonymizer, PrefixPreservingKeepsSharedPrefixes) {
  const Anonymizer anon(31337, Anonymizer::Mode::kPrefixPreserving);
  // Two addresses in the same /24 share exactly a 24-bit anonymized prefix.
  const auto a = anon.anonymize(*Ipv4Address::parse("203.0.113.5"));
  const auto b = anon.anonymize(*Ipv4Address::parse("203.0.113.77"));
  const auto c = anon.anonymize(*Ipv4Address::parse("203.0.112.5"));
  EXPECT_EQ(a.value() >> 8, b.value() >> 8);
  EXPECT_NE(a, b);
  // 203.0.112.0/23 contains both .112 and .113: exactly 23 shared bits.
  EXPECT_EQ(a.value() >> 9, c.value() >> 9);
  EXPECT_NE(a.value() >> 8, c.value() >> 8);
}

TEST(Anonymizer, PrefixPreservingKeepsLpmSemantics) {
  // Property: blackhole labeling via LPM gives the same answer on
  // anonymized prefixes + anonymized addresses.
  const Anonymizer anon(5150, Anonymizer::Mode::kPrefixPreserving);
  util::Rng rng(2);
  PrefixTrie<int> plain, anonymized;
  std::vector<Ipv4Prefix> prefixes;
  for (int i = 0; i < 200; ++i) {
    const Ipv4Address base(static_cast<std::uint32_t>(rng()));
    const auto length = static_cast<std::uint8_t>(rng.range(8, 32));
    const Ipv4Prefix prefix(base, length);
    plain.insert(prefix, i);
    // Anonymize the prefix by anonymizing its base address: prefix
    // preservation guarantees host bits do not disturb the network part.
    anonymized.insert(Ipv4Prefix(anon.anonymize(prefix.address()), length), i);
  }
  for (int q = 0; q < 5000; ++q) {
    const Ipv4Address probe(static_cast<std::uint32_t>(rng()));
    const int* plain_match = plain.match(probe);
    const int* anon_match = anonymized.match(anon.anonymize(probe));
    if (plain_match == nullptr) {
      EXPECT_EQ(anon_match, nullptr);
    } else {
      ASSERT_NE(anon_match, nullptr);
      EXPECT_EQ(*plain_match, *anon_match);
    }
  }
}

TEST(Anonymizer, HashModeDoesNotPreservePrefixes) {
  const Anonymizer anon(31337, Anonymizer::Mode::kHash);
  const auto a = anon.anonymize(*Ipv4Address::parse("203.0.113.5"));
  const auto b = anon.anonymize(*Ipv4Address::parse("203.0.113.77"));
  EXPECT_NE(a.value() >> 8, b.value() >> 8);  // astronomically unlikely
}

}  // namespace
}  // namespace scrubber::net
