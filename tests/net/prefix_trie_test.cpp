#include "net/prefix_trie.hpp"

#include <gtest/gtest.h>

#include <map>

#include "util/rng.hpp"

namespace scrubber::net {
namespace {

Ipv4Prefix pfx(const char* text) { return *Ipv4Prefix::parse(text); }
Ipv4Address ip(const char* text) { return *Ipv4Address::parse(text); }

TEST(PrefixTrie, InsertAndExactFind) {
  PrefixTrie<int> trie;
  EXPECT_TRUE(trie.insert(pfx("10.0.0.0/8"), 1));
  EXPECT_TRUE(trie.insert(pfx("10.1.0.0/16"), 2));
  EXPECT_FALSE(trie.insert(pfx("10.0.0.0/8"), 3));  // overwrite, not new
  EXPECT_EQ(trie.size(), 2u);
  ASSERT_NE(trie.find_exact(pfx("10.0.0.0/8")), nullptr);
  EXPECT_EQ(*trie.find_exact(pfx("10.0.0.0/8")), 3);
  EXPECT_EQ(trie.find_exact(pfx("10.0.0.0/9")), nullptr);
}

TEST(PrefixTrie, LongestPrefixMatch) {
  PrefixTrie<int> trie;
  trie.insert(pfx("10.0.0.0/8"), 8);
  trie.insert(pfx("10.1.0.0/16"), 16);
  trie.insert(pfx("10.1.2.0/24"), 24);
  EXPECT_EQ(*trie.match(ip("10.1.2.3")), 24);
  EXPECT_EQ(*trie.match(ip("10.1.9.9")), 16);
  EXPECT_EQ(*trie.match(ip("10.200.0.1")), 8);
  EXPECT_EQ(trie.match(ip("11.0.0.1")), nullptr);
}

TEST(PrefixTrie, DefaultRouteMatchesAll) {
  PrefixTrie<int> trie;
  trie.insert(pfx("0.0.0.0/0"), 0);
  EXPECT_EQ(*trie.match(ip("1.2.3.4")), 0);
  trie.insert(pfx("1.0.0.0/8"), 1);
  EXPECT_EQ(*trie.match(ip("1.2.3.4")), 1);
  EXPECT_EQ(*trie.match(ip("2.2.3.4")), 0);
}

TEST(PrefixTrie, HostRoute) {
  PrefixTrie<int> trie;
  trie.insert(pfx("192.0.2.1/32"), 99);
  EXPECT_EQ(*trie.match(ip("192.0.2.1")), 99);
  EXPECT_EQ(trie.match(ip("192.0.2.2")), nullptr);
}

TEST(PrefixTrie, MatchEntryReturnsPrefix) {
  PrefixTrie<int> trie;
  trie.insert(pfx("10.0.0.0/8"), 8);
  trie.insert(pfx("10.1.0.0/16"), 16);
  const auto entry = trie.match_entry(ip("10.1.2.3"));
  ASSERT_TRUE(entry.has_value());
  EXPECT_EQ(entry->first.to_string(), "10.1.0.0/16");
  EXPECT_EQ(entry->second, 16);
  EXPECT_FALSE(trie.match_entry(ip("12.0.0.1")).has_value());
}

TEST(PrefixTrie, MatchAllLeastSpecificFirst) {
  PrefixTrie<int> trie;
  trie.insert(pfx("10.0.0.0/8"), 8);
  trie.insert(pfx("10.1.0.0/16"), 16);
  trie.insert(pfx("10.1.2.0/24"), 24);
  trie.insert(pfx("11.0.0.0/8"), 11);
  const auto all = trie.match_all(ip("10.1.2.3"));
  ASSERT_EQ(all.size(), 3u);
  EXPECT_EQ(*all[0].second, 8);
  EXPECT_EQ(*all[1].second, 16);
  EXPECT_EQ(*all[2].second, 24);
  EXPECT_EQ(all[2].first.to_string(), "10.1.2.0/24");
}

TEST(PrefixTrie, EraseRemovesOnlyExact) {
  PrefixTrie<int> trie;
  trie.insert(pfx("10.0.0.0/8"), 8);
  trie.insert(pfx("10.1.0.0/16"), 16);
  EXPECT_TRUE(trie.erase(pfx("10.1.0.0/16")));
  EXPECT_FALSE(trie.erase(pfx("10.1.0.0/16")));
  EXPECT_EQ(trie.size(), 1u);
  EXPECT_EQ(*trie.match(ip("10.1.2.3")), 8);
}

TEST(PrefixTrie, ClearEmptiesTrie) {
  PrefixTrie<int> trie;
  trie.insert(pfx("10.0.0.0/8"), 8);
  trie.clear();
  EXPECT_TRUE(trie.empty());
  EXPECT_EQ(trie.match(ip("10.0.0.1")), nullptr);
}

TEST(PrefixTrie, EntriesEnumeratesAll) {
  PrefixTrie<int> trie;
  trie.insert(pfx("10.0.0.0/8"), 1);
  trie.insert(pfx("192.168.0.0/16"), 2);
  trie.insert(pfx("10.0.0.0/24"), 3);
  const auto entries = trie.entries();
  EXPECT_EQ(entries.size(), 3u);
}

TEST(PrefixTrie, RandomizedAgainstLinearScan) {
  // Property: trie LPM must agree with a brute-force linear scan.
  util::Rng rng(99);
  PrefixTrie<int> trie;
  std::vector<std::pair<Ipv4Prefix, int>> reference;
  for (int i = 0; i < 500; ++i) {
    const auto addr = Ipv4Address(static_cast<std::uint32_t>(rng()));
    const auto length = static_cast<std::uint8_t>(rng.range(1, 32));
    const Ipv4Prefix prefix(addr, length);
    trie.insert(prefix, i);
    bool replaced = false;
    for (auto& [p, v] : reference) {
      if (p == prefix) {
        v = i;
        replaced = true;
        break;
      }
    }
    if (!replaced) reference.emplace_back(prefix, i);
  }
  for (int q = 0; q < 2000; ++q) {
    const auto probe = Ipv4Address(static_cast<std::uint32_t>(rng()));
    const int* got = trie.match(probe);
    // Linear scan for the most specific covering prefix.
    const std::pair<Ipv4Prefix, int>* best = nullptr;
    for (const auto& entry : reference) {
      if (entry.first.contains(probe) &&
          (best == nullptr || entry.first.length() > best->first.length())) {
        best = &entry;
      }
    }
    if (best == nullptr) {
      EXPECT_EQ(got, nullptr);
    } else {
      ASSERT_NE(got, nullptr);
      EXPECT_EQ(*got, best->second);
    }
  }
}

TEST(PrefixTrie, VisitCoversInsertedPrefixes) {
  PrefixTrie<int> trie;
  trie.insert(pfx("10.0.0.0/8"), 1);
  trie.insert(pfx("10.128.0.0/9"), 2);
  std::map<std::string, int> seen;
  trie.visit([&](const Ipv4Prefix& p, const int& v) { seen[p.to_string()] = v; });
  EXPECT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen["10.0.0.0/8"], 1);
  EXPECT_EQ(seen["10.128.0.0/9"], 2);
}

}  // namespace
}  // namespace scrubber::net
