#include "net/packet.hpp"

#include <gtest/gtest.h>

namespace scrubber::net {
namespace {

PacketHeader make_packet(std::uint64_t ts_ms, std::uint32_t src,
                         std::uint16_t src_port, std::uint16_t length = 468) {
  PacketHeader p;
  p.timestamp_ms = ts_ms;
  p.src_ip = Ipv4Address(src);
  p.dst_ip = Ipv4Address(0x0A000001);
  p.src_port = src_port;
  p.dst_port = 44000;
  p.protocol = 17;
  p.length = length;
  p.ingress_member = 7;
  return p;
}

TEST(PacketSampler, RateOneKeepsEverything) {
  PacketSampler sampler(1, 42);
  for (int i = 0; i < 100; ++i) EXPECT_TRUE(sampler.sample());
  EXPECT_EQ(sampler.sampled(), 100u);
  EXPECT_EQ(sampler.seen(), 100u);
}

TEST(PacketSampler, RateZeroTreatedAsOne) {
  PacketSampler sampler(0, 42);
  EXPECT_EQ(sampler.rate(), 1u);
  EXPECT_TRUE(sampler.sample());
}

TEST(PacketSampler, MeanSamplingRateApproximatesN) {
  PacketSampler sampler(100, 7);
  const int packets = 2000000;
  for (int i = 0; i < packets; ++i) (void)sampler.sample();
  const double effective =
      static_cast<double>(sampler.seen()) / static_cast<double>(sampler.sampled());
  EXPECT_NEAR(effective, 100.0, 5.0);
}

TEST(PacketSampler, DeterministicForSeed) {
  PacketSampler a(10, 3), b(10, 3);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.sample(), b.sample());
}

TEST(FlowCache, AggregatesSameKey) {
  FlowCache cache(1);
  cache.add(make_packet(60'000, 1, 123, 400));
  cache.add(make_packet(61'000, 1, 123, 500));  // same minute (1), same key
  EXPECT_EQ(cache.active_flows(), 1u);
  const auto flows = cache.drain_all();
  ASSERT_EQ(flows.size(), 1u);
  EXPECT_EQ(flows[0].packets, 2u);
  EXPECT_EQ(flows[0].bytes, 900u);
  EXPECT_EQ(flows[0].minute, 1u);
  EXPECT_DOUBLE_EQ(flows[0].mean_packet_size(), 450.0);
}

TEST(FlowCache, SeparatesMinutes) {
  FlowCache cache(1);
  cache.add(make_packet(30'000, 1, 123));   // minute 0
  cache.add(make_packet(90'000, 1, 123));   // minute 1
  EXPECT_EQ(cache.active_flows(), 2u);
  const auto old_flows = cache.drain_before(1);
  ASSERT_EQ(old_flows.size(), 1u);
  EXPECT_EQ(old_flows[0].minute, 0u);
  EXPECT_EQ(cache.active_flows(), 1u);
}

TEST(FlowCache, SeparatesDistinctKeys) {
  FlowCache cache(1);
  cache.add(make_packet(0, 1, 123));
  cache.add(make_packet(0, 2, 123));  // different src ip
  cache.add(make_packet(0, 1, 53));   // different src port
  EXPECT_EQ(cache.active_flows(), 3u);
}

TEST(FlowCache, ScalesBySamplingRate) {
  FlowCache cache(100);
  cache.add(make_packet(0, 1, 123, 468));
  const auto flows = cache.drain_all();
  ASSERT_EQ(flows.size(), 1u);
  EXPECT_EQ(flows[0].packets, 100u);
  EXPECT_EQ(flows[0].bytes, 46800u);
  // Mean packet size survives scaling.
  EXPECT_DOUBLE_EQ(flows[0].mean_packet_size(), 468.0);
}

TEST(FlowCache, TcpFlagsAccumulateWithOr) {
  FlowCache cache(1);
  PacketHeader syn = make_packet(0, 1, 123);
  syn.protocol = 6;
  syn.tcp_flags = 0x02;
  PacketHeader ack = syn;
  ack.tcp_flags = 0x10;
  cache.add(syn);
  cache.add(ack);
  const auto flows = cache.drain_all();
  ASSERT_EQ(flows.size(), 1u);
  EXPECT_EQ(flows[0].tcp_flags, 0x12);
}

TEST(FlowCache, DrainOrderDeterministic) {
  FlowCache a(1), b(1);
  for (std::uint32_t i = 0; i < 50; ++i) {
    a.add(make_packet(0, i, 123));
    b.add(make_packet(0, i, 123));
  }
  EXPECT_EQ(a.drain_all(), b.drain_all());
}

TEST(FlowCache, FieldsCopiedThrough) {
  FlowCache cache(2);
  const PacketHeader p = make_packet(120'000, 99, 123);
  cache.add(p);
  const auto flows = cache.drain_all();
  ASSERT_EQ(flows.size(), 1u);
  EXPECT_EQ(flows[0].src_ip.value(), 99u);
  EXPECT_EQ(flows[0].dst_ip, p.dst_ip);
  EXPECT_EQ(flows[0].src_port, 123);
  EXPECT_EQ(flows[0].dst_port, 44000);
  EXPECT_EQ(flows[0].protocol, 17);
  EXPECT_EQ(flows[0].src_member, 7u);
  EXPECT_EQ(flows[0].minute, 2u);
}

}  // namespace
}  // namespace scrubber::net
