// Fuzz-style robustness suite for the sFlow v5 decoder — the one parser
// in the repo that eats bytes straight off the wire from hardware we do
// not control. Every case here is generated from a fixed seed, so a
// failure reproduces exactly; the ASan+UBSan CI configuration turns any
// out-of-bounds read these inputs provoke into a hard failure.
//
// Contract under test:
//   * decode() either returns a datagram or throws SflowDecodeError —
//     no other exception, no crash, no OOB, for ANY input bytes;
//   * truncations, bit flips, and adversarial length fields are all
//     handled structurally (length-checked reads), never trusted;
//   * at the engine level, every pushed wire buffer is accounted for:
//     accepted datagrams + decode errors == buffers pushed.

#include "net/sflow.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "netio/listener.hpp"
#include "runtime/engine.hpp"
#include "util/rng.hpp"

namespace scrubber::net {
namespace {

constexpr std::uint64_t kSeed = 0xF0221;

/// A structurally valid datagram with randomized field values.
SflowDatagram random_datagram(util::Rng& rng) {
  SflowDatagram datagram;
  datagram.agent = Ipv4Address(static_cast<std::uint32_t>(rng()));
  datagram.sub_agent_id = static_cast<std::uint32_t>(rng.below(16));
  datagram.sequence = static_cast<std::uint32_t>(rng.below(1u << 20));
  datagram.uptime_ms = static_cast<std::uint32_t>(rng.below(6'000'000));
  const std::size_t samples = 1 + rng.below(8);
  for (std::size_t i = 0; i < samples; ++i) {
    SflowFlowSample sample;
    sample.sequence = static_cast<std::uint32_t>(rng.below(1u << 20));
    sample.sampling_rate = 1u << rng.below(12);
    sample.sample_pool = static_cast<std::uint32_t>(rng.below(1u << 24));
    sample.input_port = static_cast<std::uint32_t>(rng.below(1024));
    sample.output_port = static_cast<std::uint32_t>(rng.below(1024));
    sample.packet.src_ip = Ipv4Address(static_cast<std::uint32_t>(rng()));
    sample.packet.dst_ip = Ipv4Address(static_cast<std::uint32_t>(rng()));
    sample.packet.src_port = static_cast<std::uint16_t>(rng.below(65536));
    sample.packet.dst_port = static_cast<std::uint16_t>(rng.below(65536));
    sample.packet.protocol = rng.chance(0.5) ? 6 : 17;
    sample.packet.tcp_flags = static_cast<std::uint8_t>(rng.below(256));
    sample.packet.length =
        static_cast<std::uint16_t>(60 + rng.below(1441));
    sample.packet.ingress_member = sample.input_port;
    datagram.samples.push_back(sample);
  }
  return datagram;
}

/// Decodes; returns true when a datagram came back, false on the *only*
/// acceptable failure mode (SflowDecodeError). Anything else escapes and
/// fails the test.
bool decode_survives(const std::vector<std::uint8_t>& wire) {
  try {
    const SflowDatagram datagram = SflowDatagram::decode(wire);
    (void)datagram;
    return true;
  } catch (const SflowDecodeError&) {
    return false;
  }
}

TEST(SflowFuzz, RoundTripOnRandomDatagrams) {
  util::Rng rng(kSeed);
  for (int i = 0; i < 200; ++i) {
    const SflowDatagram datagram = random_datagram(rng);
    const auto wire = datagram.encode();
    const SflowDatagram decoded = SflowDatagram::decode(wire);
    EXPECT_EQ(decoded.samples.size(), datagram.samples.size());
    EXPECT_EQ(decoded.uptime_ms, datagram.uptime_ms);
    EXPECT_EQ(decoded.agent, datagram.agent);
  }
}

TEST(SflowFuzz, EveryTruncationEitherParsesOrThrows) {
  util::Rng rng(kSeed ^ 1);
  for (int i = 0; i < 25; ++i) {
    const auto wire = random_datagram(rng).encode();
    // Every prefix of a valid datagram, including empty.
    for (std::size_t cut = 0; cut < wire.size(); ++cut) {
      std::vector<std::uint8_t> truncated(wire.begin(),
                                          wire.begin() +
                                              static_cast<std::ptrdiff_t>(cut));
      decode_survives(truncated);  // must not crash; either outcome is fine
    }
  }
}

TEST(SflowFuzz, BitFlipsNeverEscapeTheDecoder) {
  util::Rng rng(kSeed ^ 2);
  for (int i = 0; i < 300; ++i) {
    auto wire = random_datagram(rng).encode();
    const std::size_t flips = 1 + rng.below(8);
    for (std::size_t f = 0; f < flips; ++f) {
      const std::size_t bit = rng.below(wire.size() * 8);
      wire[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
    }
    decode_survives(wire);
  }
}

TEST(SflowFuzz, AdversarialLengthFieldsAreBoundsChecked) {
  util::Rng rng(kSeed ^ 3);
  // Overwrite each 32-bit word of a valid datagram with hostile values —
  // this hits every length/count field the decoder trusts structurally.
  const std::uint32_t hostile[] = {0xFFFFFFFFu, 0x7FFFFFFFu, 0x80000000u,
                                   0xFFFFFFFDu, 1u << 30};
  for (int i = 0; i < 10; ++i) {
    const auto wire = random_datagram(rng).encode();
    for (std::size_t word = 0; word + 4 <= wire.size(); word += 4) {
      for (const std::uint32_t value : hostile) {
        auto mutated = wire;
        mutated[word] = static_cast<std::uint8_t>(value >> 24);
        mutated[word + 1] = static_cast<std::uint8_t>(value >> 16);
        mutated[word + 2] = static_cast<std::uint8_t>(value >> 8);
        mutated[word + 3] = static_cast<std::uint8_t>(value);
        decode_survives(mutated);
      }
    }
  }
}

TEST(SflowFuzz, RandomGarbageNeverCrashes) {
  util::Rng rng(kSeed ^ 4);
  for (int i = 0; i < 500; ++i) {
    std::vector<std::uint8_t> garbage(rng.below(512));
    for (auto& byte : garbage) {
      byte = static_cast<std::uint8_t>(rng.below(256));
    }
    decode_survives(garbage);
  }
}

TEST(SflowFuzz, EngineAccountsForEveryWireBuffer) {
  // Push a seeded mix of valid, truncated, and bit-flipped buffers through
  // the full engine; afterwards every single buffer must be accounted for
  // as either an accepted datagram or a decode error — the malformed-input
  // counters cannot leak.
  util::Rng rng(kSeed ^ 5);
  runtime::EngineConfig config;
  config.shards = 2;
  config.queue_capacity = 256;
  config.backpressure = runtime::Backpressure::kBlock;
  runtime::Engine engine(config, nullptr);

  std::uint64_t pushed = 0;
  for (int i = 0; i < 300; ++i) {
    auto wire = random_datagram(rng).encode();
    const double kind = rng.uniform();
    if (kind < 0.25 && !wire.empty()) {
      wire.resize(rng.below(wire.size()));  // truncate
    } else if (kind < 0.5) {
      const std::size_t bit = rng.below(wire.size() * 8);
      wire[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
    }  // else: leave valid
    engine.push_wire(std::move(wire));
    ++pushed;
  }
  engine.finish();

  const runtime::EngineSnapshot snapshot = engine.stats();
  EXPECT_EQ(snapshot.datagrams + snapshot.decode_errors, pushed);
  EXPECT_EQ(snapshot.input_drops, 0u);  // kBlock never sheds
}

TEST(SflowFuzz, ListenerSurvivesHostileWireTraffic) {
  // Same adversarial mix, but arriving the way production bytes do: over
  // a UDP socket into the netio listener's batched receive path. The
  // listener must neither crash nor stall on truncations, bit flips,
  // empty datagrams, or pure garbage — everything it receives must come
  // out the other side as a decoded datagram or a counted decode error,
  // and the FIN sentinel must still end the run cleanly afterwards.
  util::Rng rng(kSeed ^ 6);
  runtime::EngineConfig config;
  config.shards = 2;
  config.queue_capacity = 256;
  config.backpressure = runtime::Backpressure::kBlock;
  runtime::Engine engine(config, nullptr);
  netio::ListenerConfig listener_config;
  listener_config.poll_interval_ms = 10;
  listener_config.idle_stop_ms = 30'000;  // stall here = loud test failure
  netio::UdpListener listener(listener_config, engine);
  listener.start();

  netio::UdpSocket sender;
  sender.connect("127.0.0.1", listener.port());
  std::uint64_t sent = 0;
  std::uint64_t valid = 0;
  for (int i = 0; i < 300; ++i) {
    const double kind = rng.uniform();
    std::vector<std::uint8_t> wire;
    if (kind < 0.55) {
      wire = random_datagram(rng).encode();
      if (kind < 0.20) {
        wire.resize(rng.below(wire.size()));  // truncate
      } else if (kind < 0.40) {
        const std::size_t bit = rng.below(wire.size() * 8);
        wire[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
      } else {
        ++valid;  // leave intact
      }
    } else if (kind < 0.8) {
      wire.resize(rng.below(128));  // garbage, possibly empty
      for (auto& byte : wire) {
        byte = static_cast<std::uint8_t>(rng.below(256));
      }
    } else {
      wire = random_datagram(rng).encode();
      ++valid;
    }
    sender.send(wire);
    ++sent;
  }
  sender.send(netio::encode_fin_sentinel(sent));
  listener.join();

  const netio::ListenerSnapshot snapshot = listener.stats();
  const runtime::EngineSnapshot engine_snapshot = engine.stats();
  EXPECT_TRUE(snapshot.fin_seen);
  EXPECT_EQ(snapshot.expected_datagrams, sent);
  EXPECT_EQ(snapshot.stage.items_in, sent);  // loopback, ample rcvbuf
  EXPECT_EQ(snapshot.stage.drops, 0u);       // kBlock never sheds
  // Accounting identity across the wire boundary: nothing leaks.
  EXPECT_EQ(engine_snapshot.datagrams + engine_snapshot.decode_errors, sent);
  // Intact datagrams decode; a truncated or bit-flipped one *may* (the
  // mutation can land in a don't-care byte), so valid is a lower bound.
  EXPECT_GE(engine_snapshot.datagrams, valid);
}

}  // namespace
}  // namespace scrubber::net
