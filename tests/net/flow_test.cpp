#include "net/flow.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace scrubber::net {
namespace {

FlowRecord sample_flow() {
  FlowRecord f;
  f.minute = 1234;
  f.src_ip = *Ipv4Address::parse("198.51.100.7");
  f.dst_ip = *Ipv4Address::parse("10.0.1.10");
  f.src_port = 123;
  f.dst_port = 44321;
  f.protocol = 17;
  f.tcp_flags = 0;
  f.src_member = 42;
  f.packets = 3;
  f.bytes = 1404;
  f.blackholed = true;
  return f;
}

TEST(FlowRecord, MeanPacketSize) {
  FlowRecord f = sample_flow();
  EXPECT_DOUBLE_EQ(f.mean_packet_size(), 468.0);
  f.packets = 0;
  EXPECT_DOUBLE_EQ(f.mean_packet_size(), 0.0);
}

TEST(FlowRecord, VectorClassification) {
  const FlowRecord f = sample_flow();
  EXPECT_EQ(f.vector(), DdosVector::kNtp);
}

TEST(FlowRecord, ToStringContainsEndpoints) {
  const std::string s = sample_flow().to_string();
  EXPECT_NE(s.find("198.51.100.7:123"), std::string::npos);
  EXPECT_NE(s.find("10.0.1.10:44321"), std::string::npos);
  EXPECT_NE(s.find("UDP"), std::string::npos);
  EXPECT_NE(s.find("BH"), std::string::npos);
}

TEST(FlowSerialization, BinaryRoundTrip) {
  std::vector<FlowRecord> flows;
  for (int i = 0; i < 10; ++i) {
    FlowRecord f = sample_flow();
    f.minute = static_cast<std::uint32_t>(i);
    f.bytes = static_cast<std::uint64_t>(i) * 1000;
    f.blackholed = (i % 2) == 0;
    flows.push_back(f);
  }
  std::stringstream buffer;
  write_flows(buffer, flows);
  const auto restored = read_flows(buffer);
  EXPECT_EQ(restored, flows);
}

TEST(FlowSerialization, EmptyRoundTrip) {
  std::stringstream buffer;
  write_flows(buffer, {});
  EXPECT_TRUE(read_flows(buffer).empty());
}

TEST(FlowSerialization, BadMagicThrows) {
  std::stringstream buffer("XXXX\0\0\0\0");
  EXPECT_THROW(read_flows(buffer), std::runtime_error);
}

TEST(FlowSerialization, TruncatedThrows) {
  std::vector<FlowRecord> flows{sample_flow()};
  std::stringstream buffer;
  write_flows(buffer, flows);
  std::string data = buffer.str();
  data.resize(data.size() - 4);
  std::stringstream truncated(data);
  EXPECT_THROW(read_flows(truncated), std::runtime_error);
}

TEST(FlowSerialization, CsvHasHeaderAndRows) {
  std::stringstream buffer;
  write_flows_csv(buffer, {sample_flow()});
  const std::string out = buffer.str();
  EXPECT_NE(out.find("minute,src_ip"), std::string::npos);
  EXPECT_NE(out.find("198.51.100.7"), std::string::npos);
  EXPECT_NE(out.find(",1\n"), std::string::npos);  // blackholed flag
}

}  // namespace
}  // namespace scrubber::net
