// Parity fuzz suite: the in-place, non-throwing SflowView::decode must be
// bit-identical to the throwing oracle SflowDatagram::decode on EVERY
// input — hostile or well-formed. The oracle stays the specification; the
// fused wire hot path earns its keep only while this suite holds:
//
//   * oracle throws  ⇔  view returns a non-kOk status;
//   * when both accept, the header fields and the emitted sample sequence
//     equal the oracle's datagram field-for-field;
//   * at the engine level, the fused decode→route path and the oracle
//     decode path produce identical merged minute batches and identical
//     accounting (datagrams + decode_errors == buffers pushed).
//
// Every case is generated from a fixed seed so failures reproduce exactly.

#include "net/sflow.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <utility>
#include <vector>

#include "runtime/engine.hpp"
#include "util/rng.hpp"

namespace scrubber::net {
namespace {

constexpr std::uint64_t kSeed = 0x1EA51DE;

/// A structurally valid datagram with randomized field values.
SflowDatagram random_datagram(util::Rng& rng) {
  SflowDatagram datagram;
  datagram.agent = Ipv4Address(static_cast<std::uint32_t>(rng()));
  datagram.sub_agent_id = static_cast<std::uint32_t>(rng.below(16));
  datagram.sequence = static_cast<std::uint32_t>(rng.below(1u << 20));
  datagram.uptime_ms = static_cast<std::uint32_t>(rng.below(6'000'000));
  const std::size_t samples = 1 + rng.below(8);
  for (std::size_t i = 0; i < samples; ++i) {
    SflowFlowSample sample;
    sample.sequence = static_cast<std::uint32_t>(rng.below(1u << 20));
    sample.sampling_rate = 1u << rng.below(12);
    sample.sample_pool = static_cast<std::uint32_t>(rng.below(1u << 24));
    sample.input_port = static_cast<std::uint32_t>(rng.below(1024));
    sample.output_port = static_cast<std::uint32_t>(rng.below(1024));
    sample.packet.src_ip = Ipv4Address(static_cast<std::uint32_t>(rng()));
    sample.packet.dst_ip = Ipv4Address(static_cast<std::uint32_t>(rng()));
    sample.packet.src_port = static_cast<std::uint16_t>(rng.below(65536));
    sample.packet.dst_port = static_cast<std::uint16_t>(rng.below(65536));
    sample.packet.protocol = rng.chance(0.5) ? 6 : 17;
    sample.packet.tcp_flags = static_cast<std::uint8_t>(rng.below(256));
    sample.packet.length = static_cast<std::uint16_t>(60 + rng.below(1441));
    sample.packet.ingress_member = sample.input_port;
    datagram.samples.push_back(sample);
  }
  return datagram;
}

struct ViewResult {
  DecodeStatus status = DecodeStatus::kOk;
  SflowHeaderView header;
  std::vector<SflowFlowSample> samples;
};

ViewResult view_decode(const std::vector<std::uint8_t>& wire) {
  ViewResult result;
  result.status = SflowView::decode(
      std::span<const std::uint8_t>(wire.data(), wire.size()), result.header,
      [&](const SflowFlowSample& sample) { result.samples.push_back(sample); });
  return result;
}

/// The parity oracle: whatever the bytes, both decoders must agree on
/// accept/reject, and on accept the decoded content must be identical.
void expect_parity(const std::vector<std::uint8_t>& wire) {
  const ViewResult view = view_decode(wire);
  bool oracle_accepted = false;
  SflowDatagram oracle;
  try {
    oracle = SflowDatagram::decode(wire);
    oracle_accepted = true;
  } catch (const SflowDecodeError&) {
  }
  if (oracle_accepted) {
    ASSERT_EQ(view.status, DecodeStatus::kOk)
        << "oracle accepted but view rejected with "
        << decode_status_name(view.status);
    EXPECT_EQ(view.header.agent, oracle.agent);
    EXPECT_EQ(view.header.sub_agent_id, oracle.sub_agent_id);
    EXPECT_EQ(view.header.sequence, oracle.sequence);
    EXPECT_EQ(view.header.uptime_ms, oracle.uptime_ms);
    EXPECT_EQ(view.samples, oracle.samples);
  } else {
    EXPECT_NE(view.status, DecodeStatus::kOk)
        << "oracle rejected but view accepted " << view.samples.size()
        << " samples";
  }
}

TEST(SflowInplaceParity, WellFormedDatagramsMatchFieldForField) {
  util::Rng rng(kSeed);
  for (int i = 0; i < 300; ++i) {
    expect_parity(random_datagram(rng).encode());
  }
}

TEST(SflowInplaceParity, EveryTruncationAgrees) {
  util::Rng rng(kSeed ^ 1);
  for (int i = 0; i < 20; ++i) {
    const auto wire = random_datagram(rng).encode();
    for (std::size_t cut = 0; cut < wire.size(); ++cut) {
      expect_parity(std::vector<std::uint8_t>(
          wire.begin(), wire.begin() + static_cast<std::ptrdiff_t>(cut)));
    }
  }
}

TEST(SflowInplaceParity, BitFlipsAgree) {
  util::Rng rng(kSeed ^ 2);
  for (int i = 0; i < 400; ++i) {
    auto wire = random_datagram(rng).encode();
    const std::size_t flips = 1 + rng.below(8);
    for (std::size_t f = 0; f < flips; ++f) {
      const std::size_t bit = rng.below(wire.size() * 8);
      wire[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
    }
    expect_parity(wire);
  }
}

TEST(SflowInplaceParity, AdversarialWordOverwritesAgree) {
  util::Rng rng(kSeed ^ 3);
  const std::uint32_t hostile[] = {0xFFFFFFFFu, 0x7FFFFFFFu, 0x80000000u,
                                   0xFFFFFFFDu, 1u << 30};
  for (int i = 0; i < 8; ++i) {
    const auto wire = random_datagram(rng).encode();
    for (std::size_t word = 0; word + 4 <= wire.size(); word += 4) {
      for (const std::uint32_t value : hostile) {
        auto mutated = wire;
        mutated[word] = static_cast<std::uint8_t>(value >> 24);
        mutated[word + 1] = static_cast<std::uint8_t>(value >> 16);
        mutated[word + 2] = static_cast<std::uint8_t>(value >> 8);
        mutated[word + 3] = static_cast<std::uint8_t>(value);
        expect_parity(mutated);
      }
    }
  }
}

TEST(SflowInplaceParity, RandomGarbageAgrees) {
  util::Rng rng(kSeed ^ 4);
  for (int i = 0; i < 600; ++i) {
    std::vector<std::uint8_t> garbage(rng.below(512));
    for (auto& byte : garbage) {
      byte = static_cast<std::uint8_t>(rng.below(256));
    }
    expect_parity(garbage);
  }
}

/// Overwrites the datagram's declared sample count (wire bytes 24..27).
void set_sample_count(std::vector<std::uint8_t>& wire, std::uint32_t count) {
  ASSERT_GE(wire.size(), 28u);
  wire[24] = static_cast<std::uint8_t>(count >> 24);
  wire[25] = static_cast<std::uint8_t>(count >> 16);
  wire[26] = static_cast<std::uint8_t>(count >> 8);
  wire[27] = static_cast<std::uint8_t>(count);
}

TEST(SflowInplaceParity, OverdeclaredSampleCountRejectedByBoth) {
  // The sample count is the one field the walk loop trusts for iteration;
  // declaring more samples than the bytes hold must starve both decoders
  // into a truncation error, never an over-read or a partial accept.
  util::Rng rng(kSeed ^ 5);
  for (int i = 0; i < 50; ++i) {
    const SflowDatagram datagram = random_datagram(rng);
    const std::uint32_t actual =
        static_cast<std::uint32_t>(datagram.samples.size());
    for (const std::uint32_t declared :
         {actual + 1, actual + 7, 0xFFFFFFFFu}) {
      auto wire = datagram.encode();
      set_sample_count(wire, declared);
      const ViewResult view = view_decode(wire);
      EXPECT_EQ(view.status, DecodeStatus::kTruncated);
      EXPECT_THROW((void)SflowDatagram::decode(wire), SflowDecodeError);
    }
  }
}

TEST(SflowInplaceParity, UnderdeclaredSampleCountAcceptsPrefixInBoth) {
  // Fewer declared samples than encoded: both decoders stop after the
  // declared count and ignore the trailing bytes, with identical output.
  util::Rng rng(kSeed ^ 6);
  for (int i = 0; i < 50; ++i) {
    const SflowDatagram datagram = random_datagram(rng);
    const std::uint32_t actual =
        static_cast<std::uint32_t>(datagram.samples.size());
    if (actual < 2) continue;
    auto wire = datagram.encode();
    set_sample_count(wire, actual - 1);
    const ViewResult view = view_decode(wire);
    ASSERT_EQ(view.status, DecodeStatus::kOk);
    EXPECT_EQ(view.samples.size(), actual - 1);
    expect_parity(wire);
  }
}

TEST(SflowInplaceParity, EngineFusedPathMatchesOracleDecoderEndToEnd) {
  // The same seeded wire stream — mostly valid, some truncated, some
  // bit-flipped — through two engines: the default fused decode→route
  // path and the use_oracle_decoder comparison path. Merged minute
  // batches and accounting must be identical, and every pushed buffer
  // must be accounted for as a datagram or a decode error.
  const auto run = [](bool use_oracle) {
    util::Rng rng(kSeed ^ 7);  // identical stream for both runs
    runtime::EngineConfig config;
    config.shards = 3;
    config.queue_capacity = 256;
    config.backpressure = runtime::Backpressure::kBlock;
    config.use_oracle_decoder = use_oracle;
    config.collector.sampling_rate = 1;
    std::vector<std::pair<std::uint32_t, std::vector<FlowRecord>>> out;
    std::uint64_t pushed = 0;
    runtime::Engine engine(
        config, [&](std::uint32_t minute, std::span<const FlowRecord> flows) {
          out.emplace_back(minute,
                           std::vector<FlowRecord>(flows.begin(), flows.end()));
        });
    for (int i = 0; i < 400; ++i) {
      SflowDatagram datagram = random_datagram(rng);
      // Mostly monotonic export minutes so most samples land in open bins.
      datagram.uptime_ms = static_cast<std::uint32_t>(i / 4) * 60'000u;
      auto wire = datagram.encode();
      const double kind = rng.uniform();
      if (kind < 0.2 && !wire.empty()) {
        wire.resize(rng.below(wire.size()));  // truncate
      } else if (kind < 0.4) {
        const std::size_t bit = rng.below(wire.size() * 8);
        wire[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
      }  // else: leave valid
      EXPECT_TRUE(engine.push_wire(std::move(wire)));
      ++pushed;
    }
    engine.finish();
    const runtime::EngineSnapshot snapshot = engine.stats();
    EXPECT_EQ(snapshot.datagrams + snapshot.decode_errors, pushed);
    EXPECT_EQ(snapshot.input_drops, 0u);  // kBlock never sheds
    return std::make_pair(out, snapshot);
  };

  const auto [fused_out, fused_snap] = run(false);
  const auto [oracle_out, oracle_snap] = run(true);
  EXPECT_EQ(fused_out, oracle_out);
  EXPECT_EQ(fused_snap.datagrams, oracle_snap.datagrams);
  EXPECT_EQ(fused_snap.decode_errors, oracle_snap.decode_errors);
  EXPECT_EQ(fused_snap.flows_out, oracle_snap.flows_out);
  EXPECT_FALSE(fused_out.empty());
}

}  // namespace
}  // namespace scrubber::net
