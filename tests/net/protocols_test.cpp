#include "net/protocols.hpp"

#include <gtest/gtest.h>

#include <set>

namespace scrubber::net {
namespace {

TEST(Protocols, Names) {
  EXPECT_EQ(protocol_name(6), "TCP");
  EXPECT_EQ(protocol_name(17), "UDP");
  EXPECT_EQ(protocol_name(1), "ICMP");
  EXPECT_EQ(protocol_name(47), "GRE");
  EXPECT_EQ(protocol_name(99), "P?");
}

TEST(Vectors, SignatureTableCoversAllVectors) {
  const auto signatures = vector_signatures();
  EXPECT_EQ(signatures.size(), kDdosVectorCount);
  std::set<DdosVector> seen;
  for (const auto& sig : signatures) seen.insert(sig.vector);
  EXPECT_EQ(seen.size(), kDdosVectorCount);
}

TEST(Vectors, NamesAreUnique) {
  std::set<std::string_view> names;
  for (const auto& sig : vector_signatures()) names.insert(vector_name(sig.vector));
  EXPECT_EQ(names.size(), kDdosVectorCount);
}

TEST(Vectors, ClassifyWellKnownReflectionPorts) {
  EXPECT_EQ(classify_vector(17, 123, 41000), DdosVector::kNtp);
  EXPECT_EQ(classify_vector(17, 53, 80), DdosVector::kDns);
  EXPECT_EQ(classify_vector(17, 161, 1234), DdosVector::kSnmp);
  EXPECT_EQ(classify_vector(17, 389, 1234), DdosVector::kLdap);
  EXPECT_EQ(classify_vector(17, 1900, 1234), DdosVector::kSsdp);
  EXPECT_EQ(classify_vector(17, 3283, 1234), DdosVector::kAppleRd);
  EXPECT_EQ(classify_vector(17, 11211, 1234), DdosVector::kMemcached);
  EXPECT_EQ(classify_vector(17, 19, 1234), DdosVector::kChargen);
  EXPECT_EQ(classify_vector(17, 3702, 1234), DdosVector::kWsDiscovery);
}

TEST(Vectors, ClassifyFragmentsAndGre) {
  EXPECT_EQ(classify_vector(17, 0, 0), DdosVector::kUdpFragment);
  EXPECT_EQ(classify_vector(47, 0, 0), DdosVector::kGre);
  EXPECT_EQ(classify_vector(47, 123, 456), DdosVector::kGre);  // any ports
}

TEST(Vectors, ClassifyKeysOnSourcePort) {
  // Reflection is identified by the reflector-side (source) port; a flow
  // *to* port 123 is a benign NTP request, not an attack signature.
  EXPECT_EQ(classify_vector(17, 41000, 123), std::nullopt);
  EXPECT_EQ(classify_vector(17, 41000, 53), std::nullopt);
}

TEST(Vectors, TcpVariantsDistinct) {
  EXPECT_EQ(classify_vector(6, 53, 1234), DdosVector::kDnsTcp);
  EXPECT_EQ(classify_vector(17, 53, 1234), DdosVector::kDns);
  // TCP with NTP's port number is not an NTP signature.
  EXPECT_EQ(classify_vector(6, 123, 1234), std::nullopt);
}

TEST(Vectors, BenignTrafficNotClassified) {
  EXPECT_EQ(classify_vector(6, 443, 50000), std::nullopt);
  EXPECT_EQ(classify_vector(17, 51820, 51820), std::nullopt);
  EXPECT_FALSE(is_well_known_ddos_port(6, 443, 50000));
  EXPECT_TRUE(is_well_known_ddos_port(17, 123, 1));
}

TEST(Vectors, Top7MatchesTable3) {
  const auto top = top7_vectors();
  ASSERT_EQ(top.size(), 7u);
  EXPECT_EQ(top[0], DdosVector::kUdpFragment);
  EXPECT_EQ(top[1], DdosVector::kDns);
  EXPECT_EQ(top[2], DdosVector::kNtp);
  EXPECT_EQ(top[3], DdosVector::kSnmp);
  EXPECT_EQ(top[4], DdosVector::kLdap);
  EXPECT_EQ(top[5], DdosVector::kSsdp);
  EXPECT_EQ(top[6], DdosVector::kAppleRd);
}

}  // namespace
}  // namespace scrubber::net
