// Loopback equivalence: the wire path (encode → UDP loopback → batched
// listener → engine decode) must produce verdicts bit-identical to the
// in-process feed (push(datagram), no wire) for the same seeded trace —
// same detections, same flow/minute/sample counts, same BGP interleave.
// This is the end-to-end proof that src/netio adds a transport, not a
// semantic: DESIGN.md §11's correctness anchor for every latency number
// BENCH_latency.json reports.
//
// The trace is sized so the detector trains (short warmup) and actually
// fires at least one detection — equality of two empty verdict lists
// would prove nothing.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "core/collector.hpp"
#include "core/live_detector.hpp"
#include "flowgen/generator.hpp"
#include "netio/listener.hpp"
#include "netio/loadgen.hpp"
#include "runtime/engine.hpp"

namespace scrubber::netio {
namespace {

constexpr std::uint32_t kMinutes = 20;
constexpr std::uint32_t kSampling = 4;
constexpr std::uint64_t kSeed = 1337;  // schedules attacks + BGP in range

core::LiveDetectorConfig detector_config() {
  core::LiveDetectorConfig config;
  config.warmup_min = 10;
  config.retrain_interval_min = 60;
  config.min_flows_per_target = 8;
  config.seed = 0xD43;
  config.agg_threads = 1;
  return config;
}

runtime::EngineConfig engine_config() {
  runtime::EngineConfig config;
  config.shards = 2;
  config.queue_capacity = 1024;
  config.batch_records = 64;
  config.backpressure = runtime::Backpressure::kBlock;
  config.collector.sampling_rate = kSampling;
  return config;
}

std::string format_detection(const core::Detection& detection) {
  char line[160];
  std::snprintf(line, sizeof(line), "minute=%u target=%s score=%.12f flows=%u",
                detection.minute, detection.target.to_string().c_str(),
                detection.score, detection.flow_count);
  return line;
}

/// Everything the two feed paths must agree on.
struct Verdicts {
  std::vector<std::string> detections;
  std::uint64_t flows_out = 0;
  std::uint64_t minutes_merged = 0;
  std::uint64_t samples = 0;
  std::uint64_t bgp_updates = 0;
};

struct Trace {
  std::vector<net::SflowDatagram> datagrams;
  std::vector<std::pair<std::uint32_t, bgp::UpdateMessage>> updates;
};

Trace make_trace() {
  flowgen::TrafficGenerator generator(flowgen::ixp_se(), kSeed);
  const auto generated = generator.generate(0, kMinutes);
  Trace trace;
  trace.updates = generated.updates;
  trace.datagrams = core::flows_to_datagrams(
      generated.flows, kSampling, net::Ipv4Address::from_octets(10, 99, 0, 1));
  return trace;
}

Verdicts in_process_verdicts(const Trace& trace) {
  Verdicts verdicts;
  core::LiveDetector detector(detector_config(),
                              [&](const core::Detection& detection) {
                                verdicts.detections.push_back(
                                    format_detection(detection));
                              });
  runtime::Engine engine(
      engine_config(),
      [&](std::uint32_t minute, std::span<const net::FlowRecord> flows) {
        detector.ingest_minute(minute, flows);
      });
  std::size_t next_update = 0;
  for (const auto& datagram : trace.datagrams) {
    const auto minute = static_cast<std::uint32_t>(datagram.uptime_ms / 60'000);
    while (next_update < trace.updates.size() &&
           trace.updates[next_update].first <= minute) {
      engine.push_bgp(trace.updates[next_update].second,
                      std::uint64_t{trace.updates[next_update].first} *
                          60'000);
      ++next_update;
    }
    engine.push(datagram);
  }
  engine.finish();
  const runtime::EngineSnapshot snapshot = engine.stats();
  verdicts.flows_out = snapshot.flows_out;
  verdicts.minutes_merged = snapshot.minutes_merged;
  verdicts.samples = snapshot.samples;
  verdicts.bgp_updates = snapshot.bgp_updates;
  return verdicts;
}

Verdicts wire_verdicts(const Trace& trace) {
  Verdicts verdicts;
  core::LiveDetector detector(detector_config(),
                              [&](const core::Detection& detection) {
                                verdicts.detections.push_back(
                                    format_detection(detection));
                              });
  runtime::Engine engine(
      engine_config(),
      [&](std::uint32_t minute, std::span<const net::FlowRecord> flows) {
        detector.ingest_minute(minute, flows);
      });
  std::size_t next_update = 0;
  ListenerConfig listener_config;
  listener_config.poll_interval_ms = 10;
  listener_config.idle_stop_ms = 30'000;  // lost-FIN safety: fail, not hang
  UdpListener listener(
      listener_config, engine, [&](std::uint32_t minute) {
        while (next_update < trace.updates.size() &&
               trace.updates[next_update].first <= minute) {
          engine.push_bgp(trace.updates[next_update].second,
                          std::uint64_t{trace.updates[next_update].first} *
                              60'000);
          ++next_update;
        }
      });
  listener.start();

  std::vector<std::vector<std::uint8_t>> wire;
  std::vector<std::uint32_t> minutes;
  for (const auto& datagram : trace.datagrams) {
    wire.push_back(datagram.encode());
    minutes.push_back(static_cast<std::uint32_t>(datagram.uptime_ms / 60'000));
  }
  LoadGenConfig loadgen_config;
  loadgen_config.port = listener.port();
  loadgen_config.rate = 0.0;  // as fast as loopback accepts
  loadgen_config.record_stamps = false;
  LoadGenerator loadgen(loadgen_config, std::move(wire), std::move(minutes));
  const LoadGenSummary summary = loadgen.run();
  listener.join();

  // The equivalence claim requires a lossless wire; anything dropped here
  // is a test-environment failure worth seeing loudly.
  const ListenerSnapshot listen = listener.stats();
  EXPECT_TRUE(listen.fin_seen);
  EXPECT_EQ(listen.stage.items_in, summary.sent);
  EXPECT_EQ(listen.stage.drops, 0u);
  EXPECT_EQ(listen.kernel_drops, 0u);

  const runtime::EngineSnapshot snapshot = engine.stats();
  EXPECT_EQ(snapshot.decode_errors, 0u);
  verdicts.flows_out = snapshot.flows_out;
  verdicts.minutes_merged = snapshot.minutes_merged;
  verdicts.samples = snapshot.samples;
  verdicts.bgp_updates = snapshot.bgp_updates;
  return verdicts;
}

TEST(LoopbackEquivalence, WireVerdictsAreBitIdenticalToInProcess) {
  const Trace trace = make_trace();
  ASSERT_FALSE(trace.datagrams.empty());
  ASSERT_FALSE(trace.updates.empty());  // the BGP interleave is exercised

  const Verdicts reference = in_process_verdicts(trace);
  // An empty-vs-empty verdict comparison would prove nothing; the seed is
  // chosen so the detector trains and fires inside the trace.
  ASSERT_FALSE(reference.detections.empty());

  const Verdicts wire = wire_verdicts(trace);
  EXPECT_EQ(wire.detections, reference.detections);
  EXPECT_EQ(wire.flows_out, reference.flows_out);
  EXPECT_EQ(wire.minutes_merged, reference.minutes_merged);
  EXPECT_EQ(wire.samples, reference.samples);
  EXPECT_EQ(wire.bgp_updates, reference.bgp_updates);
}

TEST(LoopbackEquivalence, WirePathIsDeterministicAcrossRuns) {
  // Two wire runs of the same trace must agree with each other too — the
  // transport introduces no run-to-run nondeterminism into verdicts.
  const Trace trace = make_trace();
  const Verdicts first = wire_verdicts(trace);
  const Verdicts second = wire_verdicts(trace);
  EXPECT_EQ(first.detections, second.detections);
  EXPECT_EQ(first.flows_out, second.flows_out);
  EXPECT_EQ(first.minutes_merged, second.minutes_merged);
}

}  // namespace
}  // namespace scrubber::netio
