// UDP listener unit tests: wire framing helpers, the receive loop's
// lifecycle (FIN sentinel, stop(), idle timeout), malformed-datagram
// accounting through the engine, the minute feed's ordering contract,
// and the open-loop load generator's schedule bookkeeping. Everything
// runs over loopback on kernel-assigned ports so tests never collide.

#include "netio/listener.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "net/sflow.hpp"
#include "netio/loadgen.hpp"
#include "runtime/engine.hpp"

namespace scrubber::netio {
namespace {

/// A minimal valid single-sample datagram whose export minute is `minute`.
net::SflowDatagram minute_datagram(std::uint32_t minute,
                                   std::uint32_t sequence = 0) {
  net::SflowDatagram datagram;
  datagram.agent = net::Ipv4Address::from_octets(10, 0, 0, 1);
  datagram.sequence = sequence;
  datagram.uptime_ms = std::uint64_t{minute} * 60'000;
  net::SflowFlowSample sample;
  sample.sequence = sequence;
  sample.sampling_rate = 4;
  sample.sample_pool = 4 * (sequence + 1);
  sample.input_port = 3;
  sample.packet.src_ip = net::Ipv4Address::from_octets(192, 0, 2, 1);
  sample.packet.dst_ip = net::Ipv4Address::from_octets(198, 51, 100, 7);
  sample.packet.src_port = 123;
  sample.packet.dst_port = 4444;
  sample.packet.protocol = 17;
  sample.packet.length = 120;
  sample.packet.ingress_member = 3;
  datagram.samples.push_back(sample);
  return datagram;
}

/// Connected loopback sender for a listener under test.
UdpSocket sender_for(const UdpListener& listener) {
  UdpSocket socket;
  socket.connect("127.0.0.1", listener.port());
  return socket;
}

TEST(WireFraming, FinSentinelRoundTrips) {
  const auto sentinel = encode_fin_sentinel(123456789ULL);
  ASSERT_EQ(sentinel.size(), kFinSentinelBytes);
  EXPECT_TRUE(is_fin_sentinel(sentinel));
  EXPECT_EQ(fin_sentinel_total(sentinel), 123456789ULL);
}

TEST(WireFraming, SflowBytesAreNotASentinel) {
  // A real sFlow datagram starts with the big-endian word 5, never the
  // magic — and any length other than the sentinel's is rejected outright.
  const auto wire = minute_datagram(7).encode();
  EXPECT_FALSE(is_fin_sentinel(wire));
  std::vector<std::uint8_t> sixteen(wire.begin(), wire.begin() + 16);
  EXPECT_FALSE(is_fin_sentinel(sixteen));
}

TEST(WireFraming, PeekReadsTheExportMinuteWithoutDecoding) {
  for (const std::uint32_t minute : {0u, 1u, 59u, 1440u}) {
    const auto wire = minute_datagram(minute).encode();
    const auto peeked = peek_sflow_minute(wire);
    ASSERT_TRUE(peeked.has_value());
    EXPECT_EQ(*peeked, minute);
  }
  // Too short to carry the six-word header: no minute, no read past end.
  std::vector<std::uint8_t> runt(23, 0);
  EXPECT_FALSE(peek_sflow_minute(runt).has_value());
}

TEST(UdpListener, ReceivesDatagramsAndFinishesOnFin) {
  runtime::EngineConfig config;
  config.shards = 1;
  runtime::Engine engine(config, nullptr);
  ListenerConfig listener_config;
  listener_config.poll_interval_ms = 10;
  UdpListener listener(listener_config, engine);
  EXPECT_NE(listener.port(), 0);  // kernel-assigned port resolved
  listener.start();

  UdpSocket sender = sender_for(listener);
  for (std::uint32_t i = 0; i < 5; ++i) {
    sender.send(minute_datagram(i, i).encode());
  }
  sender.send(encode_fin_sentinel(5));
  listener.join();

  const ListenerSnapshot snapshot = listener.stats();
  EXPECT_EQ(snapshot.stage.items_in, 5u);
  EXPECT_EQ(snapshot.stage.items_out, 5u);
  EXPECT_EQ(snapshot.stage.drops, 0u);
  EXPECT_TRUE(snapshot.fin_seen);
  EXPECT_EQ(snapshot.expected_datagrams, 5u);
  EXPECT_GT(snapshot.bytes, 0u);
  EXPECT_FALSE(snapshot.backend.empty());
  EXPECT_FALSE(snapshot.summary().empty());

  // finish_engine_on_fin drained the engine on the listener thread.
  const runtime::EngineSnapshot engine_snapshot = engine.stats();
  EXPECT_EQ(engine_snapshot.datagrams, 5u);
  EXPECT_EQ(engine_snapshot.decode_errors, 0u);
}

TEST(UdpListener, MalformedDatagramsAreCountedNeverFatal) {
  runtime::EngineConfig config;
  config.shards = 1;
  runtime::Engine engine(config, nullptr);
  ListenerConfig listener_config;
  listener_config.poll_interval_ms = 10;
  UdpListener listener(listener_config, engine);
  listener.start();

  UdpSocket sender = sender_for(listener);
  sender.send(minute_datagram(0).encode());          // valid
  std::vector<std::uint8_t> garbage{0xde, 0xad, 0xbe, 0xef};
  sender.send(garbage);                              // garbage
  auto truncated = minute_datagram(1).encode();
  truncated.resize(truncated.size() / 2);
  sender.send(truncated);                            // truncated
  std::vector<std::uint8_t> runt(8, 0x05);
  sender.send(runt);                                 // too short to peek
  sender.send(minute_datagram(2, 1).encode());       // valid again
  sender.send(encode_fin_sentinel(5));
  listener.join();

  const ListenerSnapshot snapshot = listener.stats();
  const runtime::EngineSnapshot engine_snapshot = engine.stats();
  EXPECT_EQ(snapshot.stage.items_in, 5u);
  // Accounting identity: everything received is a decoded datagram or a
  // counted decode error — malformed input can never leak silently.
  EXPECT_EQ(engine_snapshot.datagrams, 2u);
  EXPECT_EQ(engine_snapshot.decode_errors, 3u);
  EXPECT_EQ(engine_snapshot.datagrams + engine_snapshot.decode_errors,
            snapshot.stage.items_in);
}

TEST(UdpListener, MinuteFeedFiresOncePerAdvanceBeforeTheDatagram) {
  runtime::EngineConfig config;
  config.shards = 1;
  runtime::Engine engine(config, nullptr);
  std::vector<std::uint32_t> fed;
  ListenerConfig listener_config;
  listener_config.poll_interval_ms = 10;
  UdpListener listener(listener_config, engine,
                       [&](std::uint32_t minute) { fed.push_back(minute); });
  listener.start();

  UdpSocket sender = sender_for(listener);
  // Two datagrams of minute 0, then 1, then a jump to 3: the feed must
  // see each distinct minute exactly once, in order.
  sender.send(minute_datagram(0, 0).encode());
  sender.send(minute_datagram(0, 1).encode());
  sender.send(minute_datagram(1, 2).encode());
  sender.send(minute_datagram(3, 3).encode());
  sender.send(encode_fin_sentinel(4));
  listener.join();

  EXPECT_EQ(fed, (std::vector<std::uint32_t>{0, 1, 3}));
}

TEST(UdpListener, IdleTimeoutEndsTheRunWithoutFin) {
  runtime::EngineConfig config;
  config.shards = 1;
  runtime::Engine engine(config, nullptr);
  ListenerConfig listener_config;
  listener_config.poll_interval_ms = 10;
  listener_config.idle_stop_ms = 50;
  UdpListener listener(listener_config, engine);
  listener.run();  // no traffic: returns after the idle window

  const ListenerSnapshot snapshot = listener.stats();
  EXPECT_FALSE(snapshot.fin_seen);
  EXPECT_EQ(snapshot.stage.items_in, 0u);
  engine.finish();  // the caller finishes after a FIN-less exit
}

TEST(UdpListener, StopEndsTheRunFromAnotherThread) {
  runtime::EngineConfig config;
  config.shards = 1;
  runtime::Engine engine(config, nullptr);
  ListenerConfig listener_config;
  listener_config.poll_interval_ms = 10;
  UdpListener listener(listener_config, engine);
  listener.start();
  listener.stop();
  listener.join();  // must return promptly at the next poll tick
  EXPECT_FALSE(listener.stats().fin_seen);
  engine.finish();
}

#if SCRUBBER_IO_URING
TEST(UdpListener, UringBuildSelectsAWorkingBackend) {
  // kAuto must come up with *some* backend; when the kernel permits
  // io_uring it is preferred, otherwise recvmmsg fills in.
  runtime::EngineConfig config;
  config.shards = 1;
  runtime::Engine engine(config, nullptr);
  UdpListener listener(ListenerConfig{}, engine);
  const ListenerSnapshot snapshot = listener.stats();
  EXPECT_TRUE(snapshot.backend == "io_uring" ||
              snapshot.backend == "recvmmsg")
      << snapshot.backend;
  engine.finish();
}
#else
TEST(UdpListener, ExplicitUringRequestThrowsWhenNotCompiledIn) {
  runtime::EngineConfig config;
  config.shards = 1;
  runtime::Engine engine(config, nullptr);
  ListenerConfig listener_config;
  listener_config.backend = RecvBackend::kIoUring;
  EXPECT_THROW(UdpListener(listener_config, engine, nullptr), NetioError);
  engine.finish();
}
#endif  // SCRUBBER_IO_URING

TEST(LoadGenerator, SendsEverythingAndStampsInOrder) {
  runtime::EngineConfig config;
  config.shards = 1;
  runtime::Engine engine(config, nullptr);
  ListenerConfig listener_config;
  listener_config.poll_interval_ms = 10;
  UdpListener listener(listener_config, engine);
  listener.start();

  std::vector<std::vector<std::uint8_t>> wire;
  std::vector<std::uint32_t> minutes;
  for (std::uint32_t i = 0; i < 20; ++i) {
    wire.push_back(minute_datagram(i / 4, i).encode());
    minutes.push_back(i / 4);
  }
  LoadGenConfig loadgen_config;
  loadgen_config.port = listener.port();
  loadgen_config.rate = 5000.0;  // paced: exercises the deadline schedule
  LoadGenerator loadgen(loadgen_config, wire, minutes);
  const LoadGenSummary summary = loadgen.run();
  listener.join();

  EXPECT_EQ(summary.sent, 20u);
  EXPECT_GT(summary.bytes, 0u);
  EXPECT_GT(summary.wall_seconds, 0.0);
  EXPECT_DOUBLE_EQ(summary.target_rate, 5000.0);
  ASSERT_EQ(loadgen.stamps().size(), 20u);
  for (std::size_t i = 1; i < loadgen.stamps().size(); ++i) {
    EXPECT_GE(loadgen.stamps()[i].send_ns, loadgen.stamps()[i - 1].send_ns);
    EXPECT_GE(loadgen.stamps()[i].minute, loadgen.stamps()[i - 1].minute);
  }
  EXPECT_EQ(listener.stats().stage.items_in, 20u);
  EXPECT_TRUE(listener.stats().fin_seen);
  EXPECT_EQ(listener.stats().expected_datagrams, 20u);
}

}  // namespace
}  // namespace scrubber::netio
