file(REMOVE_RECURSE
  "CMakeFiles/scrubberctl.dir/scrubberctl.cpp.o"
  "CMakeFiles/scrubberctl.dir/scrubberctl.cpp.o.d"
  "scrubberctl"
  "scrubberctl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scrubberctl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
