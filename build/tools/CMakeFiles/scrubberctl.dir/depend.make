# Empty dependencies file for scrubberctl.
# This may be replaced when dependencies are built.
