# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(scrubberctl_workflow "/usr/bin/cmake" "-E" "env" "bash" "-c" "set -e; cd \$(mktemp -d);      /root/repo/build/tools/scrubberctl generate --out flows.bin --profile us2 --minutes 2880 --seed 7;      /root/repo/build/tools/scrubberctl mine --flows flows.bin --out rules.json --accept 0.9;      /root/repo/build/tools/scrubberctl train --flows flows.bin --rules rules.json --out model.json --model dt;      /root/repo/build/tools/scrubberctl classify --flows flows.bin --model model.json --rules rules.json;      /root/repo/build/tools/scrubberctl acl --rules rules.json | grep -q 'permit ip any any'")
set_tests_properties(scrubberctl_workflow PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;9;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(scrubberctl_usage "/usr/bin/cmake" "-E" "env" "bash" "-c" "! /root/repo/build/tools/scrubberctl bogus-command")
set_tests_properties(scrubberctl_usage PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;17;add_test;/root/repo/tools/CMakeLists.txt;0;")
