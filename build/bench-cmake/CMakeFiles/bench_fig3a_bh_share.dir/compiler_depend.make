# Empty compiler generated dependencies file for bench_fig3a_bh_share.
# This may be replaced when dependencies are built.
