file(REMOVE_RECURSE
  "../bench/bench_fig3a_bh_share"
  "../bench/bench_fig3a_bh_share.pdb"
  "CMakeFiles/bench_fig3a_bh_share.dir/fig3a_bh_share.cpp.o"
  "CMakeFiles/bench_fig3a_bh_share.dir/fig3a_bh_share.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3a_bh_share.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
