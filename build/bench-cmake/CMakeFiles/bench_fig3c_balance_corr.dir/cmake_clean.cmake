file(REMOVE_RECURSE
  "../bench/bench_fig3c_balance_corr"
  "../bench/bench_fig3c_balance_corr.pdb"
  "CMakeFiles/bench_fig3c_balance_corr.dir/fig3c_balance_corr.cpp.o"
  "CMakeFiles/bench_fig3c_balance_corr.dir/fig3c_balance_corr.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3c_balance_corr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
