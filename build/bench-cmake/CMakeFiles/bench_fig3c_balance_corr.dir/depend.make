# Empty dependencies file for bench_fig3c_balance_corr.
# This may be replaced when dependencies are built.
