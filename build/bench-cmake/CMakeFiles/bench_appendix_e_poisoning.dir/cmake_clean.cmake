file(REMOVE_RECURSE
  "../bench/bench_appendix_e_poisoning"
  "../bench/bench_appendix_e_poisoning.pdb"
  "CMakeFiles/bench_appendix_e_poisoning.dir/appendix_e_poisoning.cpp.o"
  "CMakeFiles/bench_appendix_e_poisoning.dir/appendix_e_poisoning.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_appendix_e_poisoning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
