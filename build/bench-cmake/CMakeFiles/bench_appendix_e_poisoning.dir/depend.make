# Empty dependencies file for bench_appendix_e_poisoning.
# This may be replaced when dependencies are built.
