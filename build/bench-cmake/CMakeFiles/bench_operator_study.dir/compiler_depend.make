# Empty compiler generated dependencies file for bench_operator_study.
# This may be replaced when dependencies are built.
