file(REMOVE_RECURSE
  "../bench/bench_operator_study"
  "../bench/bench_operator_study.pdb"
  "CMakeFiles/bench_operator_study.dir/operator_study.cpp.o"
  "CMakeFiles/bench_operator_study.dir/operator_study.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_operator_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
