file(REMOVE_RECURSE
  "../bench/bench_fig12_geo"
  "../bench/bench_fig12_geo.pdb"
  "CMakeFiles/bench_fig12_geo.dir/fig12_geo.cpp.o"
  "CMakeFiles/bench_fig12_geo.dir/fig12_geo.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_geo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
