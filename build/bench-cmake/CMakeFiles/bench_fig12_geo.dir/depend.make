# Empty dependencies file for bench_fig12_geo.
# This may be replaced when dependencies are built.
