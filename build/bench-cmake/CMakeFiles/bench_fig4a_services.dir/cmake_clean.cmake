file(REMOVE_RECURSE
  "../bench/bench_fig4a_services"
  "../bench/bench_fig4a_services.pdb"
  "CMakeFiles/bench_fig4a_services.dir/fig4a_services.cpp.o"
  "CMakeFiles/bench_fig4a_services.dir/fig4a_services.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4a_services.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
