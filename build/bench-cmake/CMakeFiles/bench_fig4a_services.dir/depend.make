# Empty dependencies file for bench_fig4a_services.
# This may be replaced when dependencies are built.
