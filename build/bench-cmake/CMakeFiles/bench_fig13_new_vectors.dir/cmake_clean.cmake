file(REMOVE_RECURSE
  "../bench/bench_fig13_new_vectors"
  "../bench/bench_fig13_new_vectors.pdb"
  "CMakeFiles/bench_fig13_new_vectors.dir/fig13_new_vectors.cpp.o"
  "CMakeFiles/bench_fig13_new_vectors.dir/fig13_new_vectors.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_new_vectors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
