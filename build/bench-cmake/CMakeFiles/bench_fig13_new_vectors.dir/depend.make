# Empty dependencies file for bench_fig13_new_vectors.
# This may be replaced when dependencies are built.
