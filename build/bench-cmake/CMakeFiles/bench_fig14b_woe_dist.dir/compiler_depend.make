# Empty compiler generated dependencies file for bench_fig14b_woe_dist.
# This may be replaced when dependencies are built.
