file(REMOVE_RECURSE
  "../bench/bench_fig14b_woe_dist"
  "../bench/bench_fig14b_woe_dist.pdb"
  "CMakeFiles/bench_fig14b_woe_dist.dir/fig14b_woe_dist.cpp.o"
  "CMakeFiles/bench_fig14b_woe_dist.dir/fig14b_woe_dist.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14b_woe_dist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
