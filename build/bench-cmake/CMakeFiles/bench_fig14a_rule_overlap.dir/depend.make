# Empty dependencies file for bench_fig14a_rule_overlap.
# This may be replaced when dependencies are built.
