file(REMOVE_RECURSE
  "../bench/bench_fig14a_rule_overlap"
  "../bench/bench_fig14a_rule_overlap.pdb"
  "CMakeFiles/bench_fig14a_rule_overlap.dir/fig14a_rule_overlap.cpp.o"
  "CMakeFiles/bench_fig14a_rule_overlap.dir/fig14a_rule_overlap.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14a_rule_overlap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
