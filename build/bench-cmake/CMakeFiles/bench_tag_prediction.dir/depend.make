# Empty dependencies file for bench_tag_prediction.
# This may be replaced when dependencies are built.
