
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/tag_prediction.cpp" "bench-cmake/CMakeFiles/bench_tag_prediction.dir/tag_prediction.cpp.o" "gcc" "bench-cmake/CMakeFiles/bench_tag_prediction.dir/tag_prediction.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/scrubber_core.dir/DependInfo.cmake"
  "/root/repo/build/src/flowgen/CMakeFiles/scrubber_flowgen.dir/DependInfo.cmake"
  "/root/repo/build/src/arm/CMakeFiles/scrubber_arm.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/scrubber_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/bgp/CMakeFiles/scrubber_bgp.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/scrubber_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/scrubber_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
