file(REMOVE_RECURSE
  "../bench/bench_tag_prediction"
  "../bench/bench_tag_prediction.pdb"
  "CMakeFiles/bench_tag_prediction.dir/tag_prediction.cpp.o"
  "CMakeFiles/bench_tag_prediction.dir/tag_prediction.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tag_prediction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
