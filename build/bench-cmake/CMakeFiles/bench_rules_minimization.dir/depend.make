# Empty dependencies file for bench_rules_minimization.
# This may be replaced when dependencies are built.
