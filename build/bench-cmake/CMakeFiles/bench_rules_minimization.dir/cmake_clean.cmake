file(REMOVE_RECURSE
  "../bench/bench_rules_minimization"
  "../bench/bench_rules_minimization.pdb"
  "CMakeFiles/bench_rules_minimization.dir/rules_minimization.cpp.o"
  "CMakeFiles/bench_rules_minimization.dir/rules_minimization.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_rules_minimization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
