file(REMOVE_RECURSE
  "../bench/bench_table4_gridsearch"
  "../bench/bench_table4_gridsearch.pdb"
  "CMakeFiles/bench_table4_gridsearch.dir/table4_gridsearch.cpp.o"
  "CMakeFiles/bench_table4_gridsearch.dir/table4_gridsearch.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_gridsearch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
