file(REMOVE_RECURSE
  "../bench/bench_fig4b_pktsize"
  "../bench/bench_fig4b_pktsize.pdb"
  "CMakeFiles/bench_fig4b_pktsize.dir/fig4b_pktsize.cpp.o"
  "CMakeFiles/bench_fig4b_pktsize.dir/fig4b_pktsize.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4b_pktsize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
