# Empty dependencies file for bench_fig4b_pktsize.
# This may be replaced when dependencies are built.
