
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/util/json_test.cpp" "tests/CMakeFiles/tests_util.dir/util/json_test.cpp.o" "gcc" "tests/CMakeFiles/tests_util.dir/util/json_test.cpp.o.d"
  "/root/repo/tests/util/rng_test.cpp" "tests/CMakeFiles/tests_util.dir/util/rng_test.cpp.o" "gcc" "tests/CMakeFiles/tests_util.dir/util/rng_test.cpp.o.d"
  "/root/repo/tests/util/stats_test.cpp" "tests/CMakeFiles/tests_util.dir/util/stats_test.cpp.o" "gcc" "tests/CMakeFiles/tests_util.dir/util/stats_test.cpp.o.d"
  "/root/repo/tests/util/table_test.cpp" "tests/CMakeFiles/tests_util.dir/util/table_test.cpp.o" "gcc" "tests/CMakeFiles/tests_util.dir/util/table_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/scrubber_core.dir/DependInfo.cmake"
  "/root/repo/build/src/flowgen/CMakeFiles/scrubber_flowgen.dir/DependInfo.cmake"
  "/root/repo/build/src/arm/CMakeFiles/scrubber_arm.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/scrubber_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/bgp/CMakeFiles/scrubber_bgp.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/scrubber_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/scrubber_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
