# Empty dependencies file for tests_bgp.
# This may be replaced when dependencies are built.
