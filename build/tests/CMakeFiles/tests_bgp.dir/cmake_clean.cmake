file(REMOVE_RECURSE
  "CMakeFiles/tests_bgp.dir/bgp/blackhole_registry_test.cpp.o"
  "CMakeFiles/tests_bgp.dir/bgp/blackhole_registry_test.cpp.o.d"
  "CMakeFiles/tests_bgp.dir/bgp/message_test.cpp.o"
  "CMakeFiles/tests_bgp.dir/bgp/message_test.cpp.o.d"
  "CMakeFiles/tests_bgp.dir/bgp/rib_test.cpp.o"
  "CMakeFiles/tests_bgp.dir/bgp/rib_test.cpp.o.d"
  "CMakeFiles/tests_bgp.dir/bgp/session_test.cpp.o"
  "CMakeFiles/tests_bgp.dir/bgp/session_test.cpp.o.d"
  "tests_bgp"
  "tests_bgp.pdb"
  "tests_bgp[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tests_bgp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
