file(REMOVE_RECURSE
  "CMakeFiles/tests_arm.dir/arm/fpgrowth_test.cpp.o"
  "CMakeFiles/tests_arm.dir/arm/fpgrowth_test.cpp.o.d"
  "CMakeFiles/tests_arm.dir/arm/item_test.cpp.o"
  "CMakeFiles/tests_arm.dir/arm/item_test.cpp.o.d"
  "CMakeFiles/tests_arm.dir/arm/rules_test.cpp.o"
  "CMakeFiles/tests_arm.dir/arm/rules_test.cpp.o.d"
  "tests_arm"
  "tests_arm.pdb"
  "tests_arm[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tests_arm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
