# Empty dependencies file for tests_arm.
# This may be replaced when dependencies are built.
