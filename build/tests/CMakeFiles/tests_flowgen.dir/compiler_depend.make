# Empty compiler generated dependencies file for tests_flowgen.
# This may be replaced when dependencies are built.
