file(REMOVE_RECURSE
  "CMakeFiles/tests_flowgen.dir/flowgen/generator_test.cpp.o"
  "CMakeFiles/tests_flowgen.dir/flowgen/generator_test.cpp.o.d"
  "CMakeFiles/tests_flowgen.dir/flowgen/vectors_test.cpp.o"
  "CMakeFiles/tests_flowgen.dir/flowgen/vectors_test.cpp.o.d"
  "tests_flowgen"
  "tests_flowgen.pdb"
  "tests_flowgen[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tests_flowgen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
