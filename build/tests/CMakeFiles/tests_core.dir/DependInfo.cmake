
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/acl_test.cpp" "tests/CMakeFiles/tests_core.dir/core/acl_test.cpp.o" "gcc" "tests/CMakeFiles/tests_core.dir/core/acl_test.cpp.o.d"
  "/root/repo/tests/core/aggregator_test.cpp" "tests/CMakeFiles/tests_core.dir/core/aggregator_test.cpp.o" "gcc" "tests/CMakeFiles/tests_core.dir/core/aggregator_test.cpp.o.d"
  "/root/repo/tests/core/balancer_test.cpp" "tests/CMakeFiles/tests_core.dir/core/balancer_test.cpp.o" "gcc" "tests/CMakeFiles/tests_core.dir/core/balancer_test.cpp.o.d"
  "/root/repo/tests/core/collector_test.cpp" "tests/CMakeFiles/tests_core.dir/core/collector_test.cpp.o" "gcc" "tests/CMakeFiles/tests_core.dir/core/collector_test.cpp.o.d"
  "/root/repo/tests/core/explain_test.cpp" "tests/CMakeFiles/tests_core.dir/core/explain_test.cpp.o" "gcc" "tests/CMakeFiles/tests_core.dir/core/explain_test.cpp.o.d"
  "/root/repo/tests/core/live_detector_test.cpp" "tests/CMakeFiles/tests_core.dir/core/live_detector_test.cpp.o" "gcc" "tests/CMakeFiles/tests_core.dir/core/live_detector_test.cpp.o.d"
  "/root/repo/tests/core/scrubber_test.cpp" "tests/CMakeFiles/tests_core.dir/core/scrubber_test.cpp.o" "gcc" "tests/CMakeFiles/tests_core.dir/core/scrubber_test.cpp.o.d"
  "/root/repo/tests/core/tag_predictor_test.cpp" "tests/CMakeFiles/tests_core.dir/core/tag_predictor_test.cpp.o" "gcc" "tests/CMakeFiles/tests_core.dir/core/tag_predictor_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/scrubber_core.dir/DependInfo.cmake"
  "/root/repo/build/src/flowgen/CMakeFiles/scrubber_flowgen.dir/DependInfo.cmake"
  "/root/repo/build/src/arm/CMakeFiles/scrubber_arm.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/scrubber_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/bgp/CMakeFiles/scrubber_bgp.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/scrubber_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/scrubber_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
