file(REMOVE_RECURSE
  "CMakeFiles/tests_core.dir/core/acl_test.cpp.o"
  "CMakeFiles/tests_core.dir/core/acl_test.cpp.o.d"
  "CMakeFiles/tests_core.dir/core/aggregator_test.cpp.o"
  "CMakeFiles/tests_core.dir/core/aggregator_test.cpp.o.d"
  "CMakeFiles/tests_core.dir/core/balancer_test.cpp.o"
  "CMakeFiles/tests_core.dir/core/balancer_test.cpp.o.d"
  "CMakeFiles/tests_core.dir/core/collector_test.cpp.o"
  "CMakeFiles/tests_core.dir/core/collector_test.cpp.o.d"
  "CMakeFiles/tests_core.dir/core/explain_test.cpp.o"
  "CMakeFiles/tests_core.dir/core/explain_test.cpp.o.d"
  "CMakeFiles/tests_core.dir/core/live_detector_test.cpp.o"
  "CMakeFiles/tests_core.dir/core/live_detector_test.cpp.o.d"
  "CMakeFiles/tests_core.dir/core/scrubber_test.cpp.o"
  "CMakeFiles/tests_core.dir/core/scrubber_test.cpp.o.d"
  "CMakeFiles/tests_core.dir/core/tag_predictor_test.cpp.o"
  "CMakeFiles/tests_core.dir/core/tag_predictor_test.cpp.o.d"
  "tests_core"
  "tests_core.pdb"
  "tests_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tests_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
