
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/ml/classifiers_test.cpp" "tests/CMakeFiles/tests_ml.dir/ml/classifiers_test.cpp.o" "gcc" "tests/CMakeFiles/tests_ml.dir/ml/classifiers_test.cpp.o.d"
  "/root/repo/tests/ml/dataset_test.cpp" "tests/CMakeFiles/tests_ml.dir/ml/dataset_test.cpp.o" "gcc" "tests/CMakeFiles/tests_ml.dir/ml/dataset_test.cpp.o.d"
  "/root/repo/tests/ml/grid_search_test.cpp" "tests/CMakeFiles/tests_ml.dir/ml/grid_search_test.cpp.o" "gcc" "tests/CMakeFiles/tests_ml.dir/ml/grid_search_test.cpp.o.d"
  "/root/repo/tests/ml/metrics_auc_test.cpp" "tests/CMakeFiles/tests_ml.dir/ml/metrics_auc_test.cpp.o" "gcc" "tests/CMakeFiles/tests_ml.dir/ml/metrics_auc_test.cpp.o.d"
  "/root/repo/tests/ml/metrics_test.cpp" "tests/CMakeFiles/tests_ml.dir/ml/metrics_test.cpp.o" "gcc" "tests/CMakeFiles/tests_ml.dir/ml/metrics_test.cpp.o.d"
  "/root/repo/tests/ml/model_io_test.cpp" "tests/CMakeFiles/tests_ml.dir/ml/model_io_test.cpp.o" "gcc" "tests/CMakeFiles/tests_ml.dir/ml/model_io_test.cpp.o.d"
  "/root/repo/tests/ml/pca_test.cpp" "tests/CMakeFiles/tests_ml.dir/ml/pca_test.cpp.o" "gcc" "tests/CMakeFiles/tests_ml.dir/ml/pca_test.cpp.o.d"
  "/root/repo/tests/ml/pipeline_io_test.cpp" "tests/CMakeFiles/tests_ml.dir/ml/pipeline_io_test.cpp.o" "gcc" "tests/CMakeFiles/tests_ml.dir/ml/pipeline_io_test.cpp.o.d"
  "/root/repo/tests/ml/pipeline_test.cpp" "tests/CMakeFiles/tests_ml.dir/ml/pipeline_test.cpp.o" "gcc" "tests/CMakeFiles/tests_ml.dir/ml/pipeline_test.cpp.o.d"
  "/root/repo/tests/ml/preprocess_test.cpp" "tests/CMakeFiles/tests_ml.dir/ml/preprocess_test.cpp.o" "gcc" "tests/CMakeFiles/tests_ml.dir/ml/preprocess_test.cpp.o.d"
  "/root/repo/tests/ml/woe_test.cpp" "tests/CMakeFiles/tests_ml.dir/ml/woe_test.cpp.o" "gcc" "tests/CMakeFiles/tests_ml.dir/ml/woe_test.cpp.o.d"
  "/root/repo/tests/ml/woe_update_test.cpp" "tests/CMakeFiles/tests_ml.dir/ml/woe_update_test.cpp.o" "gcc" "tests/CMakeFiles/tests_ml.dir/ml/woe_update_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/scrubber_core.dir/DependInfo.cmake"
  "/root/repo/build/src/flowgen/CMakeFiles/scrubber_flowgen.dir/DependInfo.cmake"
  "/root/repo/build/src/arm/CMakeFiles/scrubber_arm.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/scrubber_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/bgp/CMakeFiles/scrubber_bgp.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/scrubber_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/scrubber_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
