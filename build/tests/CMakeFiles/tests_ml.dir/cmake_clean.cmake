file(REMOVE_RECURSE
  "CMakeFiles/tests_ml.dir/ml/classifiers_test.cpp.o"
  "CMakeFiles/tests_ml.dir/ml/classifiers_test.cpp.o.d"
  "CMakeFiles/tests_ml.dir/ml/dataset_test.cpp.o"
  "CMakeFiles/tests_ml.dir/ml/dataset_test.cpp.o.d"
  "CMakeFiles/tests_ml.dir/ml/grid_search_test.cpp.o"
  "CMakeFiles/tests_ml.dir/ml/grid_search_test.cpp.o.d"
  "CMakeFiles/tests_ml.dir/ml/metrics_auc_test.cpp.o"
  "CMakeFiles/tests_ml.dir/ml/metrics_auc_test.cpp.o.d"
  "CMakeFiles/tests_ml.dir/ml/metrics_test.cpp.o"
  "CMakeFiles/tests_ml.dir/ml/metrics_test.cpp.o.d"
  "CMakeFiles/tests_ml.dir/ml/model_io_test.cpp.o"
  "CMakeFiles/tests_ml.dir/ml/model_io_test.cpp.o.d"
  "CMakeFiles/tests_ml.dir/ml/pca_test.cpp.o"
  "CMakeFiles/tests_ml.dir/ml/pca_test.cpp.o.d"
  "CMakeFiles/tests_ml.dir/ml/pipeline_io_test.cpp.o"
  "CMakeFiles/tests_ml.dir/ml/pipeline_io_test.cpp.o.d"
  "CMakeFiles/tests_ml.dir/ml/pipeline_test.cpp.o"
  "CMakeFiles/tests_ml.dir/ml/pipeline_test.cpp.o.d"
  "CMakeFiles/tests_ml.dir/ml/preprocess_test.cpp.o"
  "CMakeFiles/tests_ml.dir/ml/preprocess_test.cpp.o.d"
  "CMakeFiles/tests_ml.dir/ml/woe_test.cpp.o"
  "CMakeFiles/tests_ml.dir/ml/woe_test.cpp.o.d"
  "CMakeFiles/tests_ml.dir/ml/woe_update_test.cpp.o"
  "CMakeFiles/tests_ml.dir/ml/woe_update_test.cpp.o.d"
  "tests_ml"
  "tests_ml.pdb"
  "tests_ml[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tests_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
