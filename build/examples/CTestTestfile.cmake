# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/usr/bin/cmake" "-E" "env" "bash" "-c" "cd \$(mktemp -d) && /root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_live_detection "/usr/bin/cmake" "-E" "env" "bash" "-c" "cd \$(mktemp -d) && /root/repo/build/examples/live_detection")
set_tests_properties(example_live_detection PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_model_transfer "/usr/bin/cmake" "-E" "env" "bash" "-c" "cd \$(mktemp -d) && /root/repo/build/examples/model_transfer")
set_tests_properties(example_model_transfer PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_rule_curation "/usr/bin/cmake" "-E" "env" "bash" "-c" "cd \$(mktemp -d) && /root/repo/build/examples/rule_curation")
set_tests_properties(example_rule_curation PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
