file(REMOVE_RECURSE
  "CMakeFiles/live_detection.dir/live_detection.cpp.o"
  "CMakeFiles/live_detection.dir/live_detection.cpp.o.d"
  "live_detection"
  "live_detection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/live_detection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
