file(REMOVE_RECURSE
  "CMakeFiles/rule_curation.dir/rule_curation.cpp.o"
  "CMakeFiles/rule_curation.dir/rule_curation.cpp.o.d"
  "rule_curation"
  "rule_curation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rule_curation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
