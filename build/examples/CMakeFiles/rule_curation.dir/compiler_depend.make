# Empty compiler generated dependencies file for rule_curation.
# This may be replaced when dependencies are built.
