# Empty compiler generated dependencies file for model_transfer.
# This may be replaced when dependencies are built.
