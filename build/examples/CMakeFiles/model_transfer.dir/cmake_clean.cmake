file(REMOVE_RECURSE
  "CMakeFiles/model_transfer.dir/model_transfer.cpp.o"
  "CMakeFiles/model_transfer.dir/model_transfer.cpp.o.d"
  "model_transfer"
  "model_transfer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/model_transfer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
