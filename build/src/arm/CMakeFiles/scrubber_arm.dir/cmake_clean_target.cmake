file(REMOVE_RECURSE
  "libscrubber_arm.a"
)
