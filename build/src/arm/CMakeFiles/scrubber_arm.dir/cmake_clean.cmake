file(REMOVE_RECURSE
  "CMakeFiles/scrubber_arm.dir/fpgrowth.cpp.o"
  "CMakeFiles/scrubber_arm.dir/fpgrowth.cpp.o.d"
  "CMakeFiles/scrubber_arm.dir/item.cpp.o"
  "CMakeFiles/scrubber_arm.dir/item.cpp.o.d"
  "CMakeFiles/scrubber_arm.dir/rules.cpp.o"
  "CMakeFiles/scrubber_arm.dir/rules.cpp.o.d"
  "libscrubber_arm.a"
  "libscrubber_arm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scrubber_arm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
