# Empty compiler generated dependencies file for scrubber_arm.
# This may be replaced when dependencies are built.
