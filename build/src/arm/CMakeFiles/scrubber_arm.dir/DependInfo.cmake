
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/arm/fpgrowth.cpp" "src/arm/CMakeFiles/scrubber_arm.dir/fpgrowth.cpp.o" "gcc" "src/arm/CMakeFiles/scrubber_arm.dir/fpgrowth.cpp.o.d"
  "/root/repo/src/arm/item.cpp" "src/arm/CMakeFiles/scrubber_arm.dir/item.cpp.o" "gcc" "src/arm/CMakeFiles/scrubber_arm.dir/item.cpp.o.d"
  "/root/repo/src/arm/rules.cpp" "src/arm/CMakeFiles/scrubber_arm.dir/rules.cpp.o" "gcc" "src/arm/CMakeFiles/scrubber_arm.dir/rules.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/scrubber_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/scrubber_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
