file(REMOVE_RECURSE
  "CMakeFiles/scrubber_ml.dir/dataset.cpp.o"
  "CMakeFiles/scrubber_ml.dir/dataset.cpp.o.d"
  "CMakeFiles/scrubber_ml.dir/decision_tree.cpp.o"
  "CMakeFiles/scrubber_ml.dir/decision_tree.cpp.o.d"
  "CMakeFiles/scrubber_ml.dir/gbt.cpp.o"
  "CMakeFiles/scrubber_ml.dir/gbt.cpp.o.d"
  "CMakeFiles/scrubber_ml.dir/grid_search.cpp.o"
  "CMakeFiles/scrubber_ml.dir/grid_search.cpp.o.d"
  "CMakeFiles/scrubber_ml.dir/linear.cpp.o"
  "CMakeFiles/scrubber_ml.dir/linear.cpp.o.d"
  "CMakeFiles/scrubber_ml.dir/metrics.cpp.o"
  "CMakeFiles/scrubber_ml.dir/metrics.cpp.o.d"
  "CMakeFiles/scrubber_ml.dir/model_io.cpp.o"
  "CMakeFiles/scrubber_ml.dir/model_io.cpp.o.d"
  "CMakeFiles/scrubber_ml.dir/naive_bayes.cpp.o"
  "CMakeFiles/scrubber_ml.dir/naive_bayes.cpp.o.d"
  "CMakeFiles/scrubber_ml.dir/neural_net.cpp.o"
  "CMakeFiles/scrubber_ml.dir/neural_net.cpp.o.d"
  "CMakeFiles/scrubber_ml.dir/pca.cpp.o"
  "CMakeFiles/scrubber_ml.dir/pca.cpp.o.d"
  "CMakeFiles/scrubber_ml.dir/pipeline.cpp.o"
  "CMakeFiles/scrubber_ml.dir/pipeline.cpp.o.d"
  "CMakeFiles/scrubber_ml.dir/preprocess.cpp.o"
  "CMakeFiles/scrubber_ml.dir/preprocess.cpp.o.d"
  "CMakeFiles/scrubber_ml.dir/woe.cpp.o"
  "CMakeFiles/scrubber_ml.dir/woe.cpp.o.d"
  "libscrubber_ml.a"
  "libscrubber_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scrubber_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
