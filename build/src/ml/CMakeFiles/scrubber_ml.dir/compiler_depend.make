# Empty compiler generated dependencies file for scrubber_ml.
# This may be replaced when dependencies are built.
