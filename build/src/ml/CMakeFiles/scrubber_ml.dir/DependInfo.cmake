
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ml/dataset.cpp" "src/ml/CMakeFiles/scrubber_ml.dir/dataset.cpp.o" "gcc" "src/ml/CMakeFiles/scrubber_ml.dir/dataset.cpp.o.d"
  "/root/repo/src/ml/decision_tree.cpp" "src/ml/CMakeFiles/scrubber_ml.dir/decision_tree.cpp.o" "gcc" "src/ml/CMakeFiles/scrubber_ml.dir/decision_tree.cpp.o.d"
  "/root/repo/src/ml/gbt.cpp" "src/ml/CMakeFiles/scrubber_ml.dir/gbt.cpp.o" "gcc" "src/ml/CMakeFiles/scrubber_ml.dir/gbt.cpp.o.d"
  "/root/repo/src/ml/grid_search.cpp" "src/ml/CMakeFiles/scrubber_ml.dir/grid_search.cpp.o" "gcc" "src/ml/CMakeFiles/scrubber_ml.dir/grid_search.cpp.o.d"
  "/root/repo/src/ml/linear.cpp" "src/ml/CMakeFiles/scrubber_ml.dir/linear.cpp.o" "gcc" "src/ml/CMakeFiles/scrubber_ml.dir/linear.cpp.o.d"
  "/root/repo/src/ml/metrics.cpp" "src/ml/CMakeFiles/scrubber_ml.dir/metrics.cpp.o" "gcc" "src/ml/CMakeFiles/scrubber_ml.dir/metrics.cpp.o.d"
  "/root/repo/src/ml/model_io.cpp" "src/ml/CMakeFiles/scrubber_ml.dir/model_io.cpp.o" "gcc" "src/ml/CMakeFiles/scrubber_ml.dir/model_io.cpp.o.d"
  "/root/repo/src/ml/naive_bayes.cpp" "src/ml/CMakeFiles/scrubber_ml.dir/naive_bayes.cpp.o" "gcc" "src/ml/CMakeFiles/scrubber_ml.dir/naive_bayes.cpp.o.d"
  "/root/repo/src/ml/neural_net.cpp" "src/ml/CMakeFiles/scrubber_ml.dir/neural_net.cpp.o" "gcc" "src/ml/CMakeFiles/scrubber_ml.dir/neural_net.cpp.o.d"
  "/root/repo/src/ml/pca.cpp" "src/ml/CMakeFiles/scrubber_ml.dir/pca.cpp.o" "gcc" "src/ml/CMakeFiles/scrubber_ml.dir/pca.cpp.o.d"
  "/root/repo/src/ml/pipeline.cpp" "src/ml/CMakeFiles/scrubber_ml.dir/pipeline.cpp.o" "gcc" "src/ml/CMakeFiles/scrubber_ml.dir/pipeline.cpp.o.d"
  "/root/repo/src/ml/preprocess.cpp" "src/ml/CMakeFiles/scrubber_ml.dir/preprocess.cpp.o" "gcc" "src/ml/CMakeFiles/scrubber_ml.dir/preprocess.cpp.o.d"
  "/root/repo/src/ml/woe.cpp" "src/ml/CMakeFiles/scrubber_ml.dir/woe.cpp.o" "gcc" "src/ml/CMakeFiles/scrubber_ml.dir/woe.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/scrubber_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
