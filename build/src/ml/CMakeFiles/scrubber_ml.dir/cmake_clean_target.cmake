file(REMOVE_RECURSE
  "libscrubber_ml.a"
)
