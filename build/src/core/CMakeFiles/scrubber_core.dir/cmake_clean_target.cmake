file(REMOVE_RECURSE
  "libscrubber_core.a"
)
