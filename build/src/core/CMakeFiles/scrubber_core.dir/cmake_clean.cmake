file(REMOVE_RECURSE
  "CMakeFiles/scrubber_core.dir/acl.cpp.o"
  "CMakeFiles/scrubber_core.dir/acl.cpp.o.d"
  "CMakeFiles/scrubber_core.dir/aggregator.cpp.o"
  "CMakeFiles/scrubber_core.dir/aggregator.cpp.o.d"
  "CMakeFiles/scrubber_core.dir/balancer.cpp.o"
  "CMakeFiles/scrubber_core.dir/balancer.cpp.o.d"
  "CMakeFiles/scrubber_core.dir/collector.cpp.o"
  "CMakeFiles/scrubber_core.dir/collector.cpp.o.d"
  "CMakeFiles/scrubber_core.dir/explain.cpp.o"
  "CMakeFiles/scrubber_core.dir/explain.cpp.o.d"
  "CMakeFiles/scrubber_core.dir/live_detector.cpp.o"
  "CMakeFiles/scrubber_core.dir/live_detector.cpp.o.d"
  "CMakeFiles/scrubber_core.dir/scrubber.cpp.o"
  "CMakeFiles/scrubber_core.dir/scrubber.cpp.o.d"
  "CMakeFiles/scrubber_core.dir/tag_predictor.cpp.o"
  "CMakeFiles/scrubber_core.dir/tag_predictor.cpp.o.d"
  "libscrubber_core.a"
  "libscrubber_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scrubber_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
