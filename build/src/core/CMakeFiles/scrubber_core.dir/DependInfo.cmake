
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/acl.cpp" "src/core/CMakeFiles/scrubber_core.dir/acl.cpp.o" "gcc" "src/core/CMakeFiles/scrubber_core.dir/acl.cpp.o.d"
  "/root/repo/src/core/aggregator.cpp" "src/core/CMakeFiles/scrubber_core.dir/aggregator.cpp.o" "gcc" "src/core/CMakeFiles/scrubber_core.dir/aggregator.cpp.o.d"
  "/root/repo/src/core/balancer.cpp" "src/core/CMakeFiles/scrubber_core.dir/balancer.cpp.o" "gcc" "src/core/CMakeFiles/scrubber_core.dir/balancer.cpp.o.d"
  "/root/repo/src/core/collector.cpp" "src/core/CMakeFiles/scrubber_core.dir/collector.cpp.o" "gcc" "src/core/CMakeFiles/scrubber_core.dir/collector.cpp.o.d"
  "/root/repo/src/core/explain.cpp" "src/core/CMakeFiles/scrubber_core.dir/explain.cpp.o" "gcc" "src/core/CMakeFiles/scrubber_core.dir/explain.cpp.o.d"
  "/root/repo/src/core/live_detector.cpp" "src/core/CMakeFiles/scrubber_core.dir/live_detector.cpp.o" "gcc" "src/core/CMakeFiles/scrubber_core.dir/live_detector.cpp.o.d"
  "/root/repo/src/core/scrubber.cpp" "src/core/CMakeFiles/scrubber_core.dir/scrubber.cpp.o" "gcc" "src/core/CMakeFiles/scrubber_core.dir/scrubber.cpp.o.d"
  "/root/repo/src/core/tag_predictor.cpp" "src/core/CMakeFiles/scrubber_core.dir/tag_predictor.cpp.o" "gcc" "src/core/CMakeFiles/scrubber_core.dir/tag_predictor.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/scrubber_net.dir/DependInfo.cmake"
  "/root/repo/build/src/bgp/CMakeFiles/scrubber_bgp.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/scrubber_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/arm/CMakeFiles/scrubber_arm.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/scrubber_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
