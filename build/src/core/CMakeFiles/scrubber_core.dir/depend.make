# Empty dependencies file for scrubber_core.
# This may be replaced when dependencies are built.
