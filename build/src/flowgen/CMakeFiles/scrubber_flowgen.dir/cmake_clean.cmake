file(REMOVE_RECURSE
  "CMakeFiles/scrubber_flowgen.dir/generator.cpp.o"
  "CMakeFiles/scrubber_flowgen.dir/generator.cpp.o.d"
  "CMakeFiles/scrubber_flowgen.dir/profile.cpp.o"
  "CMakeFiles/scrubber_flowgen.dir/profile.cpp.o.d"
  "CMakeFiles/scrubber_flowgen.dir/vectors.cpp.o"
  "CMakeFiles/scrubber_flowgen.dir/vectors.cpp.o.d"
  "libscrubber_flowgen.a"
  "libscrubber_flowgen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scrubber_flowgen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
