# Empty compiler generated dependencies file for scrubber_flowgen.
# This may be replaced when dependencies are built.
