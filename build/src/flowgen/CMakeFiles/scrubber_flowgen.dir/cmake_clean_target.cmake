file(REMOVE_RECURSE
  "libscrubber_flowgen.a"
)
