
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/flowgen/generator.cpp" "src/flowgen/CMakeFiles/scrubber_flowgen.dir/generator.cpp.o" "gcc" "src/flowgen/CMakeFiles/scrubber_flowgen.dir/generator.cpp.o.d"
  "/root/repo/src/flowgen/profile.cpp" "src/flowgen/CMakeFiles/scrubber_flowgen.dir/profile.cpp.o" "gcc" "src/flowgen/CMakeFiles/scrubber_flowgen.dir/profile.cpp.o.d"
  "/root/repo/src/flowgen/vectors.cpp" "src/flowgen/CMakeFiles/scrubber_flowgen.dir/vectors.cpp.o" "gcc" "src/flowgen/CMakeFiles/scrubber_flowgen.dir/vectors.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/scrubber_net.dir/DependInfo.cmake"
  "/root/repo/build/src/bgp/CMakeFiles/scrubber_bgp.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/scrubber_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
