file(REMOVE_RECURSE
  "libscrubber_net.a"
)
