file(REMOVE_RECURSE
  "CMakeFiles/scrubber_net.dir/anonymize.cpp.o"
  "CMakeFiles/scrubber_net.dir/anonymize.cpp.o.d"
  "CMakeFiles/scrubber_net.dir/flow.cpp.o"
  "CMakeFiles/scrubber_net.dir/flow.cpp.o.d"
  "CMakeFiles/scrubber_net.dir/ipv4.cpp.o"
  "CMakeFiles/scrubber_net.dir/ipv4.cpp.o.d"
  "CMakeFiles/scrubber_net.dir/packet.cpp.o"
  "CMakeFiles/scrubber_net.dir/packet.cpp.o.d"
  "CMakeFiles/scrubber_net.dir/protocols.cpp.o"
  "CMakeFiles/scrubber_net.dir/protocols.cpp.o.d"
  "CMakeFiles/scrubber_net.dir/sflow.cpp.o"
  "CMakeFiles/scrubber_net.dir/sflow.cpp.o.d"
  "libscrubber_net.a"
  "libscrubber_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scrubber_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
