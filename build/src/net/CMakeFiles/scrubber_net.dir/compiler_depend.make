# Empty compiler generated dependencies file for scrubber_net.
# This may be replaced when dependencies are built.
