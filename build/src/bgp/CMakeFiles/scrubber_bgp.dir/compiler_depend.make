# Empty compiler generated dependencies file for scrubber_bgp.
# This may be replaced when dependencies are built.
