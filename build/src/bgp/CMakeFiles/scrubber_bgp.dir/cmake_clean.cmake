file(REMOVE_RECURSE
  "CMakeFiles/scrubber_bgp.dir/blackhole_registry.cpp.o"
  "CMakeFiles/scrubber_bgp.dir/blackhole_registry.cpp.o.d"
  "CMakeFiles/scrubber_bgp.dir/message.cpp.o"
  "CMakeFiles/scrubber_bgp.dir/message.cpp.o.d"
  "CMakeFiles/scrubber_bgp.dir/rib.cpp.o"
  "CMakeFiles/scrubber_bgp.dir/rib.cpp.o.d"
  "CMakeFiles/scrubber_bgp.dir/session.cpp.o"
  "CMakeFiles/scrubber_bgp.dir/session.cpp.o.d"
  "libscrubber_bgp.a"
  "libscrubber_bgp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scrubber_bgp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
