file(REMOVE_RECURSE
  "libscrubber_bgp.a"
)
