# Empty dependencies file for scrubber_util.
# This may be replaced when dependencies are built.
