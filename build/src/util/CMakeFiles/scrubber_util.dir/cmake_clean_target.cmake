file(REMOVE_RECURSE
  "libscrubber_util.a"
)
