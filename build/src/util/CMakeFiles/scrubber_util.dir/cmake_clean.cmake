file(REMOVE_RECURSE
  "CMakeFiles/scrubber_util.dir/json.cpp.o"
  "CMakeFiles/scrubber_util.dir/json.cpp.o.d"
  "CMakeFiles/scrubber_util.dir/rng.cpp.o"
  "CMakeFiles/scrubber_util.dir/rng.cpp.o.d"
  "CMakeFiles/scrubber_util.dir/stats.cpp.o"
  "CMakeFiles/scrubber_util.dir/stats.cpp.o.d"
  "CMakeFiles/scrubber_util.dir/table.cpp.o"
  "CMakeFiles/scrubber_util.dir/table.cpp.o.d"
  "libscrubber_util.a"
  "libscrubber_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scrubber_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
