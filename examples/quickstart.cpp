// Quickstart: the whole IXP Scrubber pipeline in one file.
//
//   1. generate a day of synthetic IXP traffic (sFlow-style records plus
//      BGP blackholing announcements),
//   2. balance it online (§3),
//   3. mine + minimize + accept tagging rules (Step 1, §5.1),
//   4. aggregate to per-target records and train XGB (Step 2, §5.2),
//   5. classify the held-out third and print the paper's metrics,
//   6. locally explain one detection (§6.6).
//
// Run: ./examples/quickstart

#include <cstdio>

#include "core/balancer.hpp"
#include "core/explain.hpp"
#include "core/scrubber.hpp"
#include "flowgen/generator.hpp"

int main() {
  using namespace scrubber;

  // --- 1. traffic + blackholing -------------------------------------------
  std::printf("generating one simulated day at IXP-US1...\n");
  flowgen::TrafficGenerator generator(flowgen::ixp_us1(), /*seed=*/2024);

  // --- 2. online balancing -------------------------------------------------
  core::Balancer balancer(/*seed=*/7);
  generator.generate_stream(
      0, 24 * 60, flowgen::TrafficGenerator::Labeling::kBlackholeRegistry,
      [&](std::uint32_t minute, std::span<const net::FlowRecord> flows) {
        balancer.add_minute(minute, flows);
      });
  const std::vector<net::FlowRecord> flows = balancer.take_balanced();
  std::printf("balanced flows: %zu of %llu raw (blackhole share %.1f%%)\n",
              flows.size(),
              static_cast<unsigned long long>(balancer.totals().raw_flows),
              balancer.totals().blackhole_share() * 100.0);

  // --- 3. Step 1: rule tagging ---------------------------------------------
  core::IxpScrubber scrubber;
  std::array<std::size_t, 3> counts{};
  arm::RuleSet rules = scrubber.mine_tagging_rules(flows, &counts);
  std::printf("rules: %zu mined -> %zu blackhole-consequent -> %zu minimized\n",
              counts[0], counts[1], counts[2]);
  core::accept_rules_above(rules, /*min_confidence=*/0.9);
  scrubber.set_rules(std::move(rules));

  // --- 4. Step 2: aggregate + train ----------------------------------------
  const core::AggregatedDataset aggregated = scrubber.aggregate(flows);
  util::Rng rng(1);
  const auto [train_idx, test_idx] = aggregated.data.split_indices(2.0 / 3.0, rng);
  const auto train = aggregated.subset(train_idx);
  const auto test = aggregated.subset(test_idx);
  scrubber.train(train);
  std::printf("trained %s on %zu records (%s)\n",
              scrubber.pipeline().classifier().name().c_str(), train.size(),
              scrubber.pipeline().describe().c_str());

  // --- 5. evaluate ----------------------------------------------------------
  const ml::ConfusionMatrix cm = scrubber.evaluate(test);
  std::printf("held-out test: %s\n", cm.summary().c_str());

  // --- 6. explain one detection ---------------------------------------------
  for (std::size_t i = 0; i < test.size(); ++i) {
    const core::Classification verdict = scrubber.classify(test, i);
    if (verdict.is_ddos && !verdict.matched_rules.empty()) {
      std::printf("\nlocal explanation of one detection:\n%s",
                  core::explain(scrubber, test, i, 6).to_string().c_str());
      break;
    }
  }
  return 0;
}
