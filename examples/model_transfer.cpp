// Model transfer between IXPs (§6.4 / Figure 12).
//
// Trains XGB at the largest IXP, serializes it to JSON, "ships" it to the
// smallest IXP — which sees so few attacks that training locally is data
// starved — and compares three deployments on the receiving site's
// traffic:
//   (a) local model trained on the sparse local data,
//   (b) naive transfer (foreign WoE + foreign classifier),
//   (c) classifier transfer on top of the *local* WoE encoding — the
//       paper's recommended mode: "it is nearly irrelevant where the
//       classifier is learning, but learning on more data is helpful".
//
// Run: ./examples/model_transfer

#include <cstdio>

#include "core/balancer.hpp"
#include "core/scrubber.hpp"
#include "flowgen/generator.hpp"
#include "ml/gbt.hpp"
#include "ml/model_io.hpp"

namespace {

using namespace scrubber;

std::vector<net::FlowRecord> balanced_trace(const flowgen::IxpProfile& profile,
                                            std::uint64_t seed,
                                            std::uint32_t minutes) {
  flowgen::TrafficGenerator generator(profile, seed);
  core::Balancer balancer(seed);
  generator.generate_stream(
      0, minutes, flowgen::TrafficGenerator::Labeling::kBlackholeRegistry,
      [&](std::uint32_t m, std::span<const net::FlowRecord> f) {
        balancer.add_minute(m, f);
      });
  return balancer.take_balanced();
}

double score(const ml::Pipeline& pipeline, const core::AggregatedDataset& test) {
  const auto predictions = pipeline.predict_all(test.data);
  return ml::evaluate(test.data.labels(), predictions).f_beta(0.5);
}

}  // namespace

int main() {
  // ----- exporting site: IXP-CE1 -----
  std::printf("training at IXP-CE1 (exporting site, 2 days)...\n");
  const auto flows_ce1 = balanced_trace(flowgen::ixp_ce1(), 8001, 2 * 24 * 60);
  core::IxpScrubber site_ce1;
  site_ce1.set_rules(arm::RuleSet{});
  site_ce1.train(site_ce1.aggregate(flows_ce1));

  const auto& gbt =
      dynamic_cast<const ml::GradientBoostedTrees&>(site_ce1.pipeline().classifier());
  const std::string wire = ml::gbt_to_json(gbt).dump();
  std::printf("serialized XGB model: %zu bytes of JSON (%zu trees)\n\n",
              wire.size(), gbt.tree_count());

  // ----- receiving site: IXP-CE2, which sees < 1 attack per day -----
  std::printf("receiving site IXP-CE2 (2 simulated weeks, sparse attacks)...\n");
  const auto flows_ce2 =
      balanced_trace(flowgen::ixp_ce2(), 8002, 14 * 24 * 60);
  core::IxpScrubber site_ce2;
  site_ce2.set_rules(arm::RuleSet{});
  auto aggregated = site_ce2.aggregate(flows_ce2);
  util::Rng rng(5);
  const auto [train_idx, test_idx] = aggregated.data.split_indices(0.5, rng);
  const auto train = aggregated.subset(train_idx);
  const auto test = aggregated.subset(test_idx);
  std::printf("local training data: %zu records (%zu positive) — data "
              "starved\n",
              train.size(), train.data.positive_count());
  site_ce2.train(train);  // fits the local WoE stage and a local classifier

  // (a) local model trained on the sparse local data.
  const double local = score(site_ce2.pipeline(), test);

  // (b) naive transfer: CE1's whole pipeline (incl. CE1's WoE) on CE2.
  const double naive = score(site_ce1.pipeline(), test);

  // (c) classifier-only transfer: deserialize CE1's trees, keep CE2's WoE.
  auto imported = ml::gbt_from_json(util::Json::parse(wire));
  ml::Pipeline transferred = site_ce2.pipeline().clone();
  transferred.swap_classifier(std::move(imported));
  const double with_local_woe = score(transferred, test);

  std::printf("\nF_beta=0.5 on IXP-CE2 held-out traffic:\n");
  std::printf("  (a) local model (sparse local data)      %.3f\n", local);
  std::printf("  (b) naive transfer (foreign WoE)         %.3f\n", naive);
  std::printf("  (c) transferred classifier + local WoE   %.3f\n", with_local_woe);
  std::printf(
      "\nthe transferred classifier (c) runs at full quality on top of the "
      "receiving site's own WoE tables — no local training data needed "
      "(§6.4). For the full 5x5 transfer grid, incl. the degradation of "
      "naive transfers between small sites, run bench_fig12_geo.\n");
  return 0;
}
