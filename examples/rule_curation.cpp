// Rule curation workflow (Step 1, §5.1 / Figure 6).
//
// Mines tagging rules from balanced traffic, renders them like the
// operator UI (id, antecedent, confidence, support, status), applies a
// scripted curation pass (accept/decline/staging), exports the curated set
// to JSON — the paper's released-rules format (Appendix F) — re-imports
// it, merges freshly mined rules into the curated set, and prints the
// resulting ACL.
//
// Run: ./examples/rule_curation [rules.json]

#include <cstdio>
#include <fstream>

#include "core/acl.hpp"
#include "core/balancer.hpp"
#include "core/scrubber.hpp"
#include "flowgen/generator.hpp"

namespace {

using namespace scrubber;

std::vector<net::FlowRecord> balanced_trace(std::uint64_t seed,
                                            std::uint32_t start) {
  flowgen::TrafficGenerator generator(flowgen::ixp_ce1(), seed);
  core::Balancer balancer(seed);
  generator.generate_stream(
      start, 12 * 60, flowgen::TrafficGenerator::Labeling::kBlackholeRegistry,
      [&](std::uint32_t m, std::span<const net::FlowRecord> f) {
        balancer.add_minute(m, f);
      });
  return balancer.take_balanced();
}

void print_ui(const arm::RuleSet& rules, std::size_t limit) {
  std::printf("%-10s %-58s %-9s %-9s %s\n", "id", "antecedent", "conf",
              "support", "status");
  std::size_t shown = 0;
  for (const auto& rule : rules.rules()) {
    if (shown++ >= limit) break;
    std::printf("%-10s %-58s %-9.5f %-9.5f %s\n", rule.id.c_str(),
                rule.antecedent_string().c_str(), rule.rule.confidence,
                rule.rule.support,
                std::string(arm::rule_status_name(rule.status)).c_str());
  }
  if (rules.size() > limit) std::printf("... (%zu total)\n", rules.size());
}

}  // namespace

int main(int argc, char** argv) {
  const char* path = argc > 1 ? argv[1] : "curated_rules.json";

  // ----- mine fresh rules -----
  std::printf("mining tagging rules from 12h of IXP-CE1 traffic...\n");
  const auto flows = balanced_trace(6001, 0);
  core::ScrubberConfig config;
  config.mining.min_support = 0.002;
  core::IxpScrubber scrubber(config);
  std::array<std::size_t, 3> counts{};
  arm::RuleSet rules = scrubber.mine_tagging_rules(flows, &counts);
  std::printf("mined %zu -> blackhole-consequent %zu -> minimized %zu\n\n",
              counts[0], counts[1], counts[2]);
  print_ui(rules, 10);

  // ----- scripted curation pass (the operator's decisions) -----
  std::size_t accepted = 0, declined = 0;
  for (auto& rule : rules.rules()) {
    if (rule.rule.confidence >= 0.95) {
      rule.status = arm::RuleStatus::kAccepted;
      rule.note = "auto-accepted: high confidence";
      ++accepted;
    } else if (rule.rule.confidence < 0.85) {
      rule.status = arm::RuleStatus::kDeclined;
      ++declined;
    }  // middle band stays in staging for the next review round
  }
  std::printf("\ncuration: %zu accepted, %zu declined, %zu staging\n", accepted,
              declined, rules.size() - accepted - declined);

  // ----- export (Appendix F format) -----
  {
    std::ofstream out(path);
    out << rules.to_json().dump(2) << "\n";
  }
  std::printf("exported curated rules to %s\n", path);

  // ----- import + merge freshly mined rules (the growing set, §5.1.2) -----
  std::ifstream in(path);
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  arm::RuleSet curated = arm::RuleSet::from_json(util::Json::parse(text));
  std::printf("re-imported %zu rules\n", curated.size());

  const auto fresh_flows = balanced_trace(6002, 24 * 60);  // next day
  arm::RuleSet fresh = scrubber.mine_tagging_rules(fresh_flows);
  const std::size_t added = curated.merge(fresh);
  std::printf("merged next day's mining: %zu new rules (existing curation "
              "preserved)\n",
              added);

  // ----- deployable ACL from the accepted rules -----
  std::printf("\nACL generated from accepted rules:\n%s",
              core::generate_acl(curated, core::AclAction::kDeny).c_str());
  return 0;
}
