// Live detection with the production LiveDetector: continuous learning
// plus streaming detection (the operational loop of Figure 1/Figure 5).
//
// The detector ingests labeled live traffic minute by minute. It keeps a
// sliding window of balanced training data, retrains the two-step model on
// schedule (daily over the trailing window, §6.3's recommendation), and
// scores every sufficiently-loaded target of every live minute, emitting
// detections together with the ACL entries an operator could push to the
// switches.
//
// Run: ./examples/live_detection

#include <cstdio>

#include "core/live_detector.hpp"
#include "flowgen/generator.hpp"

int main() {
  using namespace scrubber;
  constexpr std::uint32_t kDay = 24 * 60;

  core::LiveDetectorConfig config;
  config.warmup_min = kDay;            // collect one day before first training
  config.retrain_interval_min = kDay;  // then retrain daily
  config.training_window_min = 7 * kDay;

  std::size_t shown = 0;
  core::LiveDetector detector(config, [&](const core::Detection& d) {
    if (shown >= 12) return;
    ++shown;
    std::printf("  [m=%5u] target %-15s score %.2f  flows %u", d.minute,
                d.target.to_string().c_str(), d.score, d.flow_count);
    if (d.vector) std::printf("  vector %s", std::string(net::vector_name(*d.vector)).c_str());
    std::printf("\n");
    if (!d.acl_entries.empty())
      std::printf("      ACL: %s\n", d.acl_entries.front().c_str());
  });

  std::printf("streaming two days of IXP-US1 traffic through LiveDetector\n");
  std::printf("(day 1 = warmup/training, day 2 = detection; first 12 shown)\n\n");

  flowgen::TrafficGenerator generator(flowgen::ixp_us1(), 31337);
  generator.generate_stream(
      0, 2 * kDay, flowgen::TrafficGenerator::Labeling::kBlackholeRegistry,
      [&](std::uint32_t minute, std::span<const net::FlowRecord> flows) {
        detector.ingest_minute(minute, flows);
      });

  std::printf("\nsummary: %llu minutes processed, %u retrainings, "
              "%llu target-minute detections\n",
              static_cast<unsigned long long>(detector.minutes_processed()),
              detector.retrain_count(),
              static_cast<unsigned long long>(detector.detections()));
  std::size_t accepted = 0;
  for (const auto& rule : detector.scrubber().rules().rules())
    accepted += (rule.status == arm::RuleStatus::kAccepted);
  std::printf("active tagging rules: %zu accepted of %zu mined\n", accepted,
              detector.scrubber().rules().size());
  std::printf("(nothing is actually filtered in this demo)\n");
  return 0;
}
