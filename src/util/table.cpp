#include "util/table.hpp"

#include <algorithm>
#include <cstdint>
#include <cstdio>

namespace scrubber::util {

std::string TextTable::render() const {
  // Compute column widths over header and all rows.
  std::size_t columns = header_.size();
  for (const auto& row : rows_) columns = std::max(columns, row.size());
  std::vector<std::size_t> widths(columns, 0);
  auto update = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i)
      widths[i] = std::max(widths[i], row[i].size());
  };
  if (!header_.empty()) update(header_);
  for (const auto& row : rows_) update(row);

  std::string out;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i) out += "  ";
      out += row[i];
      if (i + 1 < row.size())
        out.append(widths[i] - row[i].size(), ' ');
    }
    out.push_back('\n');
  };
  if (!header_.empty()) {
    emit(header_);
    std::size_t total = 0;
    for (std::size_t i = 0; i < columns; ++i) total += widths[i] + (i ? 2 : 0);
    out.append(total, '-');
    out.push_back('\n');
  }
  for (const auto& row : rows_) emit(row);
  return out;
}

std::string fmt(double value, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", decimals, value);
  return buf;
}

std::string fmt_count(std::uint64_t value) {
  std::string digits = std::to_string(value);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3);
  const std::size_t first = digits.size() % 3 == 0 ? 3 : digits.size() % 3;
  for (std::size_t i = 0; i < digits.size(); ++i) {
    if (i != 0 && (i - first) % 3 == 0 && i >= first) out.push_back(',');
    out.push_back(digits[i]);
  }
  return out;
}

std::string fmt_pct(double ratio, int decimals) {
  return fmt(ratio * 100.0, decimals) + "%";
}

std::string bar(double fraction, int width) {
  fraction = std::clamp(fraction, 0.0, 1.0);
  const int filled = static_cast<int>(fraction * width + 0.5);
  std::string out;
  out.reserve(static_cast<std::size_t>(width));
  for (int i = 0; i < width; ++i) out.push_back(i < filled ? '#' : '.');
  return out;
}

}  // namespace scrubber::util
