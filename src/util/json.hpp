#pragma once
// Minimal JSON value model, parser, and serializer.
//
// Used for the association-rule interchange format (mirroring the paper's
// released rule list, Appendix F), model checkpoints, and experiment output.
// Supports the full JSON grammar except for \u escapes beyond the Basic
// Latin range (which are preserved verbatim as escaped sequences).

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

namespace scrubber::util {

class Json;

/// Ordered object representation: preserves insertion order so exported
/// rule files diff cleanly run-to-run.
using JsonObject = std::vector<std::pair<std::string, Json>>;
using JsonArray = std::vector<Json>;

/// Error thrown on malformed JSON input or type-mismatched access.
class JsonError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// A JSON value (null, bool, number, string, array, or object).
class Json {
 public:
  Json() : value_(nullptr) {}
  Json(std::nullptr_t) : value_(nullptr) {}
  Json(bool b) : value_(b) {}
  Json(double d) : value_(d) {}
  Json(int i) : value_(static_cast<double>(i)) {}
  Json(std::int64_t i) : value_(static_cast<double>(i)) {}
  Json(std::uint64_t i) : value_(static_cast<double>(i)) {}
  Json(const char* s) : value_(std::string(s)) {}
  Json(std::string s) : value_(std::move(s)) {}
  Json(JsonArray a) : value_(std::move(a)) {}
  Json(JsonObject o) : value_(std::move(o)) {}

  [[nodiscard]] bool is_null() const noexcept {
    return std::holds_alternative<std::nullptr_t>(value_);
  }
  [[nodiscard]] bool is_bool() const noexcept {
    return std::holds_alternative<bool>(value_);
  }
  [[nodiscard]] bool is_number() const noexcept {
    return std::holds_alternative<double>(value_);
  }
  [[nodiscard]] bool is_string() const noexcept {
    return std::holds_alternative<std::string>(value_);
  }
  [[nodiscard]] bool is_array() const noexcept {
    return std::holds_alternative<JsonArray>(value_);
  }
  [[nodiscard]] bool is_object() const noexcept {
    return std::holds_alternative<JsonObject>(value_);
  }

  /// Typed accessors; throw JsonError on type mismatch.
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] double as_number() const;
  [[nodiscard]] std::int64_t as_int() const;
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const JsonArray& as_array() const;
  [[nodiscard]] const JsonObject& as_object() const;
  [[nodiscard]] JsonArray& as_array();
  [[nodiscard]] JsonObject& as_object();

  /// Object field lookup; returns nullptr when absent or not an object.
  [[nodiscard]] const Json* find(std::string_view key) const noexcept;

  /// Object field lookup; throws JsonError when absent.
  [[nodiscard]] const Json& at(std::string_view key) const;

  /// Appends/overwrites a field on an object value (converts null to object).
  void set(std::string key, Json value);

  /// Serializes to a compact string; `indent` > 0 pretty-prints.
  [[nodiscard]] std::string dump(int indent = 0) const;

  /// Parses a JSON document; throws JsonError with position info on error.
  [[nodiscard]] static Json parse(std::string_view text);

 private:
  void dump_to(std::string& out, int indent, int depth) const;

  std::variant<std::nullptr_t, bool, double, std::string, JsonArray, JsonObject>
      value_;
};

}  // namespace scrubber::util
