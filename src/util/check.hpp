#pragma once
// Checked-build invariant instrumentation (-DSCRUBBER_CHECKED=1, set by
// the SCRUBBER_CHECKED CMake option).
//
// The concurrent runtime's correctness argument rests on a handful of
// structural invariants — single-producer/single-consumer ring ownership,
// monotonic watermarks, the minute-barrier merge order, stage-counter
// coherence. A data race that breaks one of them corrupts the
// blackholing-derived labels silently; no test output looks wrong, the
// model just trains on garbage. The checked build turns each invariant
// into an executable assertion so the whole tier-1 suite (and the
// sanitizer CI matrix) runs with the runtime watching itself.
//
// Contract:
//   * SCRUBBER_ASSERT(cond, msg)          — aborts with file:line, the
//     failed expression and msg when cond is false.
//   * SCRUBBER_ASSERT_THREAD(owner, what) — asserts that every call site
//     naming the same ThreadOwner is reached by one thread only (the
//     first caller claims ownership). Used for the SPSC ring endpoints.
//   * When SCRUBBER_CHECKED is off, both macros expand to `((void)0)`
//     and evaluate NOTHING — conditions may be arbitrarily expensive
//     (O(n) scans over minute batches are fine).
//
// The assertion map — which invariant guards which structure — is
// documented in DESIGN.md §7.

#include <cstdio>
#include <cstdlib>

#if defined(SCRUBBER_CHECKED)
#include <atomic>
#include <thread>
#endif

namespace scrubber::util {

/// Prints the failure and aborts. Out-of-line so the macro expansion at
/// every call site stays one compare + one never-taken branch.
[[noreturn]] inline void checked_fail(const char* file, int line,
                                      const char* expression,
                                      const char* message) noexcept {
  std::fprintf(stderr, "SCRUBBER_ASSERT failed: %s:%d: (%s) — %s\n", file,
               line, expression, message);
  std::fflush(stderr);
  std::abort();
}

#if defined(SCRUBBER_CHECKED)

/// Debug-only owner-thread tracker for single-threaded access contracts
/// (each SPSC ring endpoint, the producer-facing engine API). The first
/// thread to touch it claims ownership; any other thread aborts.
class ThreadOwner {
 public:
  void check(const char* file, int line, const char* what) noexcept {
    const std::thread::id self = std::this_thread::get_id();
    std::thread::id expected{};  // "unowned"
    if (owner_.compare_exchange_strong(expected, self,
                                       std::memory_order_acq_rel,
                                       std::memory_order_acquire)) {
      return;  // first caller claims the endpoint
    }
    if (expected != self) {
      checked_fail(file, line, what,
                   "single-thread contract violated: called from a second "
                   "thread");
    }
  }

  /// Releases ownership (e.g. when a queue is handed to a new thread
  /// after a join point makes the handoff safe).
  void release() noexcept {
    owner_.store(std::thread::id{}, std::memory_order_release);
  }

 private:
  std::atomic<std::thread::id> owner_{};
};

#endif  // SCRUBBER_CHECKED

}  // namespace scrubber::util

#if defined(SCRUBBER_CHECKED)
#define SCRUBBER_ASSERT(cond, msg)                                       \
  do {                                                                   \
    if (!(cond)) {                                                       \
      ::scrubber::util::checked_fail(__FILE__, __LINE__, #cond, (msg));  \
    }                                                                    \
  } while (false)
#define SCRUBBER_ASSERT_THREAD(owner, what) \
  (owner).check(__FILE__, __LINE__, (what))
#else
// Arguments are swallowed unexpanded: a checked-only member (e.g. a
// ThreadOwner field that exists only under SCRUBBER_CHECKED) may be named
// freely at call sites.
#define SCRUBBER_ASSERT(cond, msg) ((void)0)
#define SCRUBBER_ASSERT_THREAD(owner, what) ((void)0)
#endif
