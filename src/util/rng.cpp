#include "util/rng.hpp"

#include <algorithm>
#include <numeric>
#include <unordered_set>

namespace scrubber::util {

std::size_t Rng::weighted(const std::vector<double>& weights) noexcept {
  if (weights.empty()) return 0;
  double total = 0.0;
  for (double w : weights) total += (w > 0.0 ? w : 0.0);
  if (total <= 0.0) return below(weights.size());
  double pick = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    const double w = weights[i] > 0.0 ? weights[i] : 0.0;
    if (pick < w) return i;
    pick -= w;
  }
  return weights.size() - 1;
}

std::vector<std::size_t> Rng::sample_indices(std::size_t n, std::size_t k) noexcept {
  if (k >= n) {
    std::vector<std::size_t> all(n);
    std::iota(all.begin(), all.end(), std::size_t{0});
    return all;
  }
  if (k * 3 >= n) {
    // Dense case: shuffle a full index vector and truncate.
    std::vector<std::size_t> all(n);
    std::iota(all.begin(), all.end(), std::size_t{0});
    shuffle(all);
    all.resize(k);
    std::sort(all.begin(), all.end());
    return all;
  }
  // Sparse case: rejection sampling into a set.
  std::unordered_set<std::size_t> chosen;
  chosen.reserve(k * 2);
  while (chosen.size() < k) chosen.insert(below(n));
  std::vector<std::size_t> out(chosen.begin(), chosen.end());
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace scrubber::util
