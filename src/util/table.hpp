#pragma once
// Plain-text table renderer used by the benchmark harnesses to print the
// paper's tables and figure series in aligned, readable form.

#include <cstdint>
#include <string>
#include <vector>

namespace scrubber::util {

/// Accumulates rows of string cells and renders an aligned ASCII table.
class TextTable {
 public:
  /// Sets the header row (optional).
  void set_header(std::vector<std::string> header) { header_ = std::move(header); }

  /// Appends a data row. Rows may have differing cell counts.
  void add_row(std::vector<std::string> row) { rows_.push_back(std::move(row)); }

  /// Renders the table with column alignment and a header separator.
  [[nodiscard]] std::string render() const;

  [[nodiscard]] std::size_t row_count() const noexcept { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with the given number of decimals.
[[nodiscard]] std::string fmt(double value, int decimals = 3);

/// Formats a count with thousands separators (e.g. 1,234,567).
[[nodiscard]] std::string fmt_count(std::uint64_t value);

/// Formats a ratio as a percentage string with the given decimals.
[[nodiscard]] std::string fmt_pct(double ratio, int decimals = 2);

/// Renders a unicode sparkline-ish horizontal bar of width `width` for a
/// value in [0, 1]; used for figure-style output in benches.
[[nodiscard]] std::string bar(double fraction, int width = 40);

}  // namespace scrubber::util
