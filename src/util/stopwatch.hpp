#pragma once
// Timing utilities: a steady-clock stopwatch and a CPU cycle counter used
// to report the paper's "mega clock cycles per prediction" (mcc) metric.

#include <chrono>
#include <cstdint>

#if defined(__x86_64__) || defined(_M_X64)
// NOLINTNEXTLINE(scrubber-simd-isolation): __rdtsc is a cycle counter, not a vector kernel — no AVX2 dispatch needed, it runs on every x86_64
#include <x86intrin.h>
#endif

namespace scrubber::util {

/// Reads the CPU timestamp counter when available; falls back to a
/// nanosecond steady clock (1 tick ~ 1 ns) on other architectures.
[[nodiscard]] inline std::uint64_t cycle_count() noexcept {
#if defined(__x86_64__) || defined(_M_X64)
  return __rdtsc();
#else
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
#endif
}

/// Simple steady-clock stopwatch.
class Stopwatch {
 public:
  Stopwatch() noexcept : start_(clock::now()) {}

  /// Restarts the stopwatch.
  void reset() noexcept { start_ = clock::now(); }

  /// Elapsed time in seconds since construction or last reset().
  [[nodiscard]] double seconds() const noexcept {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  /// Elapsed time in milliseconds.
  [[nodiscard]] double millis() const noexcept { return seconds() * 1e3; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

/// Measures CPU cycles across a region; mirrors the paper's mcc metric.
class CycleTimer {
 public:
  CycleTimer() noexcept : start_(cycle_count()) {}

  void reset() noexcept { start_ = cycle_count(); }

  /// Elapsed cycles (or ns on non-x86) since construction / reset.
  [[nodiscard]] std::uint64_t cycles() const noexcept {
    return cycle_count() - start_;
  }

  /// Elapsed mega-cycles, the unit used in Table 3 of the paper.
  [[nodiscard]] double mega_cycles() const noexcept {
    return static_cast<double>(cycles()) / 1e6;
  }

 private:
  std::uint64_t start_;
};

}  // namespace scrubber::util
