#pragma once
// Deterministic, seedable random number generation for simulations.
//
// All stochastic components of the repository (traffic generation, ML
// initialization, sampling) draw from Rng so that every experiment is
// reproducible from a single 64-bit seed. The generator is xoshiro256**,
// which is small, fast, and passes BigCrush; splitmix64 is used to expand
// the seed into the initial state and to derive independent child streams.

#include <array>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

namespace scrubber::util {

/// splitmix64 step: returns the next value of the sequence and advances state.
/// Used for seeding and for cheap stateless hashing of identifiers.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Stateless 64-bit mix of a value; handy for salted hashing of IPs/MACs.
[[nodiscard]] constexpr std::uint64_t mix64(std::uint64_t value) noexcept {
  std::uint64_t s = value;
  return splitmix64(s);
}

/// xoshiro256** pseudo random generator with convenience distributions.
///
/// Satisfies the UniformRandomBitGenerator concept so it can also be used
/// with <random> distributions, though the built-in helpers below avoid
/// the libstdc++ distribution objects for cross-platform determinism.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Constructs a generator from a 64-bit seed (expanded via splitmix64).
  explicit Rng(std::uint64_t seed = 0x5eedc0ffee123456ULL) noexcept { reseed(seed); }

  /// Re-initializes the state from a seed.
  void reseed(std::uint64_t seed) noexcept {
    std::uint64_t s = seed;
    for (auto& word : state_) word = splitmix64(s);
  }

  /// Derives an independent child generator; children with distinct tags
  /// produce decorrelated streams, letting subsystems share one master seed.
  [[nodiscard]] Rng fork(std::uint64_t tag) const noexcept {
    std::uint64_t s = state_[0] ^ mix64(tag ^ 0xa5a5a5a5deadbeefULL);
    return Rng(s);
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  /// Next raw 64-bit value.
  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  [[nodiscard]] double uniform() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  [[nodiscard]] std::uint64_t below(std::uint64_t bound) noexcept {
    // Lemire's nearly-divisionless method.
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (lo < threshold) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in the inclusive range [lo, hi].
  [[nodiscard]] std::int64_t range(std::int64_t lo, std::int64_t hi) noexcept {
    return lo + static_cast<std::int64_t>(
                    below(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Bernoulli trial with success probability p.
  [[nodiscard]] bool chance(double p) noexcept { return uniform() < p; }

  /// Standard normal via Marsaglia polar method (deterministic, no cache).
  [[nodiscard]] double normal() noexcept {
    double u, v, s;
    do {
      u = uniform(-1.0, 1.0);
      v = uniform(-1.0, 1.0);
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    return u * std::sqrt(-2.0 * std::log(s) / s);
  }

  /// Normal with the given mean and standard deviation.
  [[nodiscard]] double normal(double mean, double stddev) noexcept {
    return mean + stddev * normal();
  }

  /// Exponential with the given rate (lambda > 0).
  [[nodiscard]] double exponential(double rate) noexcept {
    return -std::log(1.0 - uniform()) / rate;
  }

  /// Pareto (heavy-tailed) sample with scale xm > 0 and shape alpha > 0.
  [[nodiscard]] double pareto(double xm, double alpha) noexcept {
    return xm / std::pow(1.0 - uniform(), 1.0 / alpha);
  }

  /// Poisson sample (Knuth for small lambda, normal approximation otherwise).
  [[nodiscard]] std::uint64_t poisson(double lambda) noexcept {
    if (lambda <= 0.0) return 0;
    if (lambda < 30.0) {
      const double limit = std::exp(-lambda);
      std::uint64_t k = 0;
      double p = 1.0;
      do {
        ++k;
        p *= uniform();
      } while (p > limit);
      return k - 1;
    }
    const double sample = normal(lambda, std::sqrt(lambda));
    return sample <= 0.0 ? 0 : static_cast<std::uint64_t>(sample + 0.5);
  }

  /// Zipf-like rank sample over [0, n): returns small ranks much more often.
  /// skew in (0, ~2]; implemented via inverse-power transform (approximate
  /// Zipf, adequate for traffic popularity modeling).
  [[nodiscard]] std::size_t zipf(std::size_t n, double skew) noexcept {
    if (n <= 1) return 0;
    const double u = uniform();
    // Inverse CDF of a bounded power-law on [1, n+1).
    const double exponent = 1.0 - skew;
    double value;
    if (std::abs(exponent) < 1e-9) {
      value = std::exp(u * std::log(static_cast<double>(n) + 1.0));
    } else {
      const double hi = std::pow(static_cast<double>(n) + 1.0, exponent);
      value = std::pow(1.0 + u * (hi - 1.0), 1.0 / exponent);
    }
    auto rank = static_cast<std::size_t>(value) - 1;
    return rank >= n ? n - 1 : rank;
  }

  /// Picks an index according to a discrete weight vector (weights >= 0,
  /// not necessarily normalized). Returns weights.size() - 1 on rounding.
  [[nodiscard]] std::size_t weighted(const std::vector<double>& weights) noexcept;

  /// Fisher-Yates shuffle of a vector.
  template <typename T>
  void shuffle(std::vector<T>& items) noexcept {
    if (items.empty()) return;
    for (std::size_t i = items.size() - 1; i > 0; --i) {
      const std::size_t j = below(i + 1);
      using std::swap;
      swap(items[i], items[j]);
    }
  }

  /// Samples k distinct indices from [0, n) (reservoir when k << n).
  [[nodiscard]] std::vector<std::size_t> sample_indices(std::size_t n,
                                                        std::size_t k) noexcept;

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

}  // namespace scrubber::util
