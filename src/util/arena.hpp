#pragma once
// util::Arena — bump allocator for per-minute scratch.
//
// The per-minute cycle builds many short-lived, variably-sized objects
// (per-IP flow chains in the balancer, per-group scratch in the
// aggregator) whose lifetimes all end together when the minute closes.
// A bump allocator turns each of those allocations into a pointer
// increment and the collective free into reset(): blocks are kept and
// reused, so a steady-state minute performs zero heap traffic.
//
// Only trivially-destructible (implicit-lifetime) types may be allocated —
// reset() never runs destructors and alloc() hands back uninitialized
// storage; callers assign every field they read. Blocks grow geometrically
// up to a cap so one oversized minute does not balloon later ones.
//
// Not thread-safe; give each worker its own arena.

#include <cstddef>
#include <memory>
#include <type_traits>
#include <vector>

namespace scrubber::util {

class Arena {
 public:
  /// `first_block_bytes` sizes the initial block; later blocks double up
  /// to kMaxBlockBytes.
  explicit Arena(std::size_t first_block_bytes = 16 * 1024)
      : next_block_bytes_(first_block_bytes < kMinBlockBytes
                              ? kMinBlockBytes
                              : first_block_bytes) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;
  Arena(Arena&&) noexcept = default;
  Arena& operator=(Arena&&) noexcept = default;

  /// Uninitialized storage for `count` objects of trivially-destructible T.
  template <typename T>
  [[nodiscard]] T* alloc(std::size_t count) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "Arena::reset never runs destructors");
    return static_cast<T*>(raw_alloc(count * sizeof(T), alignof(T)));
  }

  /// Rewinds to empty, keeping every block for reuse.
  void reset() noexcept {
    current_ = 0;
    offset_ = 0;
    used_ = 0;
  }

  /// Bytes handed out since the last reset.
  [[nodiscard]] std::size_t bytes_used() const noexcept { return used_; }
  /// Total capacity across all retained blocks.
  [[nodiscard]] std::size_t bytes_reserved() const noexcept {
    std::size_t total = 0;
    for (const Block& block : blocks_) total += block.size;
    return total;
  }
  [[nodiscard]] std::size_t block_count() const noexcept {
    return blocks_.size();
  }

 private:
  static constexpr std::size_t kMinBlockBytes = 1024;
  static constexpr std::size_t kMaxBlockBytes = 4 * 1024 * 1024;

  struct Block {
    std::unique_ptr<std::byte[]> data;
    std::size_t size = 0;
  };

  void* raw_alloc(std::size_t bytes, std::size_t align) {
    if (bytes == 0) bytes = 1;
    for (;;) {
      if (current_ < blocks_.size()) {
        Block& block = blocks_[current_];
        const std::size_t aligned =
            (offset_ + align - 1) & ~(align - 1);
        if (aligned + bytes <= block.size) {
          offset_ = aligned + bytes;
          used_ += bytes;
          return block.data.get() + aligned;
        }
        // Current block exhausted: advance (a retained later block may
        // already be big enough).
        ++current_;
        offset_ = 0;
        continue;
      }
      // Need a fresh block, sized for the request.
      std::size_t size = next_block_bytes_;
      while (size < bytes + align) size *= 2;
      if (next_block_bytes_ < kMaxBlockBytes) next_block_bytes_ *= 2;
      blocks_.push_back(
          Block{std::make_unique<std::byte[]>(size), size});
    }
  }

  std::vector<Block> blocks_;
  std::size_t current_ = 0;          ///< block being bumped
  std::size_t offset_ = 0;           ///< bump offset in current block
  std::size_t used_ = 0;             ///< bytes since construction
  std::size_t next_block_bytes_;     ///< size of the next new block
};

}  // namespace scrubber::util
