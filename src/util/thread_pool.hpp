#pragma once
// Shared fixed-size worker pool for the offline learning plane (GBT
// training, exact split search, FP-Growth mining, grid search). The
// serving path (src/runtime/) owns its threads; everything else in the
// tree goes through this pool — enforced by the scrubber-raw-thread lint
// rule.
//
// Determinism contract (mirrors the sharding/batching/flowgen contracts,
// DESIGN.md §9): every learning-plane result must be bit-identical for
// any thread count. The pool supplies the two primitives that make that
// cheap to guarantee:
//
//   * parallel_for / parallel_for_chunks — statically partitions [0, n)
//     into contiguous ascending chunks. Callers either write only to
//     per-index slots (thread-count independent by construction) or keep
//     a per-chunk partial and merge the chunk partials *in ascending
//     chunk order* after the join. Because chunks are contiguous and a
//     chunk-local fold scans ascending, the two-level ascending fold
//     equals the sequential left fold for any associative-with-left-bias
//     merge (e.g. strict `>` argmax keeping the earliest maximum) — for
//     ANY chunk partition, hence for any thread count.
//   * parallel_reduce — fixed-grain chunking: the chunk boundaries
//     depend only on (n, grain), never on the thread count, and the
//     partials are combined by a fixed-shape binary tree in index order.
//     Floating-point sums are therefore bit-identical for any thread
//     count (they differ from a sequential left-fold sum, which is why
//     call sites that must preserve the historical sequential stream sum
//     per-chunk partials in ascending order instead).
//
// Nesting: a parallel region entered from inside another parallel region
// (e.g. GBT histogram building inside a grid-search cell) runs inline on
// the calling thread in ascending chunk order — same results, no
// deadlock, no oversubscription. Concurrent top-level regions from two
// different user threads serialize the pool; the loser runs inline.
//
// Exceptions thrown by chunk bodies are captured and the one from the
// lowest-numbered chunk is rethrown on the calling thread after all
// chunks finished; the pool stays usable.

#include <algorithm>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace scrubber::util {

class ThreadPool {
 public:
  /// Creates a pool with `threads` participants (the calling thread plus
  /// threads-1 workers). 0 means std::thread::hardware_concurrency().
  explicit ThreadPool(unsigned threads = 0) {
    if (threads == 0) threads = std::max(1U, std::thread::hardware_concurrency());
    thread_count_ = threads;
    workers_.reserve(threads - 1);
    for (unsigned w = 1; w < threads; ++w) {
      workers_.emplace_back([this, w] { worker_main(w); });
    }
  }

  ~ThreadPool() {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      stop_ = true;
    }
    work_cv_.notify_all();
    // jthread joins on destruction.
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Participants, including the calling thread.
  [[nodiscard]] unsigned thread_count() const noexcept { return thread_count_; }

  /// Chunk count parallel_for_chunks(n, ., max_chunks) will use; callers
  /// size per-chunk partial buffers with this.
  [[nodiscard]] std::size_t plan_chunks(std::size_t n,
                                        std::size_t max_chunks = 0) const noexcept {
    std::size_t chunks = std::min<std::size_t>(thread_count_, n);
    if (max_chunks != 0) chunks = std::min(chunks, max_chunks);
    return chunks;
  }

  /// Runs fn(chunk, begin, end) over a static partition of [0, n) into
  /// plan_chunks(n, max_chunks) contiguous ascending chunks. Blocks until
  /// every chunk finished (or rethrows the lowest chunk's exception).
  template <typename Fn>
  void parallel_for_chunks(std::size_t n, Fn&& fn, std::size_t max_chunks = 0) {
    const std::size_t chunks = plan_chunks(n, max_chunks);
    if (chunks == 0) return;
    if (chunks == 1 || tls_in_parallel()) {
      run_inline(n, chunks, fn);
      return;
    }
    // One top-level region at a time; a concurrent caller runs inline.
    std::unique_lock<std::mutex> region(region_mutex_, std::try_to_lock);
    if (!region.owns_lock()) {
      run_inline(n, chunks, fn);
      return;
    }

    Job job;
    job.chunks = chunks;
    job.n = n;
    job.exceptions.assign(chunks, nullptr);
    job.run = [&fn](std::size_t chunk, std::size_t begin, std::size_t end) {
      fn(chunk, begin, end);
    };
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      job_ = &job;
      ++generation_;
      job.pending_acks = static_cast<unsigned>(workers_.size());
    }
    work_cv_.notify_all();

    // The caller is participant 0 and owns chunk 0.
    run_chunk(job, 0);

    {
      std::unique_lock<std::mutex> lock(mutex_);
      done_cv_.wait(lock, [&] { return job.pending_acks == 0; });
      job_ = nullptr;
    }
    for (std::size_t c = 0; c < chunks; ++c) {
      if (job.exceptions[c]) std::rethrow_exception(job.exceptions[c]);
    }
  }

  /// Runs fn(i) for every i in [0, n), statically chunked as above.
  template <typename Fn>
  void parallel_for(std::size_t n, Fn&& fn, std::size_t max_chunks = 0) {
    parallel_for_chunks(
        n,
        [&fn](std::size_t, std::size_t begin, std::size_t end) {
          for (std::size_t i = begin; i < end; ++i) fn(i);
        },
        max_chunks);
  }

  /// Deterministic reduction: partials over fixed-grain chunks (boundaries
  /// depend only on n and grain), combined by a fixed-shape binary tree in
  /// chunk-index order. Bit-identical for any thread count.
  ///   map(begin, end) -> T   partial over one chunk (scan ascending)
  ///   combine(T, T)   -> T
  template <typename T, typename Map, typename Combine>
  [[nodiscard]] T parallel_reduce(std::size_t n, std::size_t grain, T identity,
                                  Map&& map, Combine&& combine) {
    if (n == 0) return identity;
    if (grain == 0) grain = 1;
    const std::size_t k = (n + grain - 1) / grain;
    std::vector<T> partials(k, identity);
    parallel_for(k, [&](std::size_t c) {
      const std::size_t begin = c * grain;
      const std::size_t end = std::min(n, begin + grain);
      partials[c] = map(begin, end);
    });
    // Fixed-shape tree: pair (i, i+width) in index order, doubling width.
    for (std::size_t width = 1; width < k; width *= 2) {
      for (std::size_t i = 0; i + width < k; i += 2 * width) {
        partials[i] = combine(partials[i], partials[i + width]);
      }
    }
    return combine(identity, partials[0]);
  }

 private:
  struct Job {
    std::size_t chunks = 0;
    std::size_t n = 0;
    std::function<void(std::size_t, std::size_t, std::size_t)> run;
    std::vector<std::exception_ptr> exceptions;
    unsigned pending_acks = 0;  ///< workers yet to finish this job
  };

  /// Flag marking threads currently executing a chunk body; a nested
  /// parallel region from such a thread runs inline.
  static bool& tls_in_parallel() noexcept {
    thread_local bool in_parallel = false;
    return in_parallel;
  }

  template <typename Fn>
  static void run_inline(std::size_t n, std::size_t chunks, Fn& fn) {
    const bool outer = tls_in_parallel();
    tls_in_parallel() = true;
    try {
      for (std::size_t c = 0; c < chunks; ++c) {
        fn(c, c * n / chunks, (c + 1) * n / chunks);
      }
    } catch (...) {
      tls_in_parallel() = outer;
      throw;
    }
    tls_in_parallel() = outer;
  }

  void run_chunk(Job& job, std::size_t chunk) noexcept {
    const bool outer = tls_in_parallel();
    tls_in_parallel() = true;
    try {
      job.run(chunk, chunk * job.n / job.chunks,
              (chunk + 1) * job.n / job.chunks);
    } catch (...) {
      job.exceptions[chunk] = std::current_exception();
    }
    tls_in_parallel() = outer;
  }

  void worker_main(unsigned worker_index) {
    std::uint64_t seen = 0;
    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
      work_cv_.wait(lock, [&] { return stop_ || generation_ != seen; });
      if (stop_) return;
      seen = generation_;
      Job* job = job_;
      lock.unlock();
      // Participant `worker_index` owns chunk `worker_index` (the caller
      // owns chunk 0); workers beyond the chunk count just acknowledge.
      if (job != nullptr && worker_index < job->chunks) {
        run_chunk(*job, worker_index);
      }
      lock.lock();
      if (job != nullptr && --job->pending_acks == 0) done_cv_.notify_all();
    }
  }

  unsigned thread_count_ = 1;
  std::vector<std::jthread> workers_;
  std::mutex region_mutex_;  ///< one top-level region at a time
  std::mutex mutex_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  Job* job_ = nullptr;
  std::uint64_t generation_ = 0;
  bool stop_ = false;
};

// ---------------------------------------------------------------------------
// Process-wide training pool
// ---------------------------------------------------------------------------
//
// The learning plane shares one pool so `--train-threads` is a single
// knob. Configure it (set_training_threads) before or between training
// runs — never while one is in flight.

namespace detail {
struct TrainingPoolState {
  std::mutex mutex;
  unsigned configured = 0;  ///< 0 = hardware_concurrency
  std::unique_ptr<ThreadPool> pool;
};
inline TrainingPoolState& training_pool_state() {
  static TrainingPoolState state;
  return state;
}
}  // namespace detail

/// The shared learning-plane pool, built lazily with the configured
/// thread count (default: hardware_concurrency).
inline ThreadPool& training_pool() {
  auto& state = detail::training_pool_state();
  const std::lock_guard<std::mutex> lock(state.mutex);
  if (!state.pool) state.pool = std::make_unique<ThreadPool>(state.configured);
  return *state.pool;
}

/// Reconfigures the training pool to `threads` participants (0 =
/// hardware_concurrency). Tears the old pool down; call only between
/// training runs. Returns the effective thread count.
inline unsigned set_training_threads(unsigned threads) {
  auto& state = detail::training_pool_state();
  const std::lock_guard<std::mutex> lock(state.mutex);
  state.configured = threads;
  state.pool = std::make_unique<ThreadPool>(threads);
  return state.pool->thread_count();
}

/// Effective thread count of the training pool (builds it if needed).
inline unsigned training_threads() { return training_pool().thread_count(); }

}  // namespace scrubber::util
