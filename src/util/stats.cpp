#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace scrubber::util {

double mean(std::span<const double> values) noexcept {
  if (values.empty()) return 0.0;
  double total = 0.0;
  for (double v : values) total += v;
  return total / static_cast<double>(values.size());
}

double variance(std::span<const double> values) noexcept {
  if (values.size() < 2) return 0.0;
  const double m = mean(values);
  double ss = 0.0;
  for (double v : values) {
    const double d = v - m;
    ss += d * d;
  }
  return ss / static_cast<double>(values.size() - 1);
}

double stddev(std::span<const double> values) noexcept {
  return std::sqrt(variance(values));
}

double quantile(std::span<const double> values, double q) {
  if (values.empty()) return 0.0;
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  if (q <= 0.0) return sorted.front();
  if (q >= 1.0) return sorted.back();
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(lo);
  if (lo + 1 >= sorted.size()) return sorted.back();
  return sorted[lo] * (1.0 - frac) + sorted[lo + 1] * frac;
}

double median(std::span<const double> values) { return quantile(values, 0.5); }

double pearson(std::span<const double> x, std::span<const double> y) noexcept {
  if (x.size() != y.size() || x.empty()) return 0.0;
  const double mx = mean(x);
  const double my = mean(y);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double dx = x[i] - mx;
    const double dy = y[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx <= 0.0 || syy <= 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

std::vector<double> average_ranks(std::span<const double> values) {
  const std::size_t n = values.size();
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return values[a] < values[b]; });
  std::vector<double> ranks(n, 0.0);
  std::size_t i = 0;
  while (i < n) {
    std::size_t j = i;
    while (j + 1 < n && values[order[j + 1]] == values[order[i]]) ++j;
    // Elements order[i..j] are tied; assign them the mean of ranks i+1..j+1.
    const double rank = (static_cast<double>(i) + static_cast<double>(j)) / 2.0 + 1.0;
    for (std::size_t k = i; k <= j; ++k) ranks[order[k]] = rank;
    i = j + 1;
  }
  return ranks;
}

double spearman(std::span<const double> x, std::span<const double> y) {
  if (x.size() != y.size() || x.empty()) return 0.0;
  const std::vector<double> rx = average_ranks(x);
  const std::vector<double> ry = average_ranks(y);
  return pearson(rx, ry);
}

std::vector<double> ecdf_points(std::span<const double> values) {
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  return sorted;
}

void Accumulator::add(double value) noexcept {
  ++n_;
  sum_ += value;
  if (n_ == 1) {
    mean_ = value;
    min_ = value;
    max_ = value;
    m2_ = 0.0;
    return;
  }
  const double delta = value - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (value - mean_);
  min_ = std::min(min_, value);
  max_ = std::max(max_, value);
}

double Accumulator::stddev() const noexcept { return std::sqrt(variance()); }

}  // namespace scrubber::util
