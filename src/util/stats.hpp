#pragma once
// Descriptive statistics used throughout dataset validation and evaluation:
// moments, quantiles, correlation coefficients (Pearson/Spearman), and a
// small online accumulator. These back the reproduction of Figures 3, 4,
// and 16 of the paper.

#include <cstddef>
#include <span>
#include <vector>

namespace scrubber::util {

/// Arithmetic mean; returns 0 for empty input.
[[nodiscard]] double mean(std::span<const double> values) noexcept;

/// Unbiased sample variance (n-1 denominator); 0 when fewer than 2 values.
[[nodiscard]] double variance(std::span<const double> values) noexcept;

/// Sample standard deviation.
[[nodiscard]] double stddev(std::span<const double> values) noexcept;

/// q-th quantile (q in [0,1]) with linear interpolation; input need not be
/// sorted (a sorted copy is made). Returns 0 for empty input.
[[nodiscard]] double quantile(std::span<const double> values, double q);

/// Convenience median.
[[nodiscard]] double median(std::span<const double> values);

/// Pearson product-moment correlation of two equally sized series.
/// Returns 0 when either series is constant or inputs are empty/mismatched.
[[nodiscard]] double pearson(std::span<const double> x,
                             std::span<const double> y) noexcept;

/// Spearman rank correlation (Pearson over average ranks, handling ties).
[[nodiscard]] double spearman(std::span<const double> x,
                              std::span<const double> y);

/// Average ranks of a series (1-based, ties share the mean rank).
[[nodiscard]] std::vector<double> average_ranks(std::span<const double> values);

/// Empirical CDF evaluation points: returns sorted copy of the input; the
/// CDF value of element i is (i + 1) / n.
[[nodiscard]] std::vector<double> ecdf_points(std::span<const double> values);

/// Streaming accumulator for mean/variance/min/max (Welford's algorithm).
class Accumulator {
 public:
  void add(double value) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return n_ ? mean_ : 0.0; }
  [[nodiscard]] double variance() const noexcept {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const noexcept { return n_ ? max_ : 0.0; }
  [[nodiscard]] double sum() const noexcept { return sum_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

}  // namespace scrubber::util
