#pragma once
// util::FlatHash — open-addressing hash map for the flow hot path.
//
// std::unordered_map costs one node allocation plus one pointer chase per
// entry; at IXP packet rates that is the dominant cost of the per-minute
// cycle (FlowCache key lookup per sampled packet, per-group categorical
// tallies in the aggregator). FlatHash removes both:
//
//   * contiguous storage — entries live in one std::vector in insertion
//     order, the bucket array is a parallel std::vector of 32-bit slot
//     references. Zero per-entry allocations; reserve() preallocates both.
//   * power-of-two capacity + linear probing — the probe sequence is a
//     cache-friendly forward scan; the bucket index is `mixed & mask`.
//   * avalanched hashing — the user hash is finalized through mix64
//     (splitmix64), so weak hashes (identity, truncation) still spread
//     over the table. Degenerate hashes degrade to a linear scan but stay
//     correct (see the collision-stress test).
//   * insertion-order iteration — for_each/entries walk the dense vector,
//     so drains are deterministic for a given insertion sequence. This is
//     the contract FlowCache::drain_before is built on.
//   * tombstone reuse — erase marks the bucket as a tombstone and the
//     dense entry as dead; a later insert probing past the tombstone
//     reuses the bucket slot. Dead dense entries are compacted on the
//     next rehash (triggered by growth or by a dead-majority), preserving
//     the insertion order of the survivors.
//
// Mapped types may be non-trivial (e.g. std::vector); they are moved on
// rehash/compaction. Keys need operator== and the supplied hash functor.
// Not thread-safe; share-nothing per thread like the rest of the hot path.

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "util/rng.hpp"

namespace scrubber::util {

template <typename Key, typename Mapped, typename Hash = std::hash<Key>>
class FlatHash {
 public:
  struct Entry {
    Key key{};
    Mapped value{};
    bool alive = false;
  };

  FlatHash() = default;
  /// Preallocates for `expected` entries (see reserve()).
  explicit FlatHash(std::size_t expected) { reserve(expected); }

  /// Live entries.
  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  /// Current bucket-array capacity (0 before the first insert/reserve).
  [[nodiscard]] std::size_t bucket_count() const noexcept {
    return buckets_.size();
  }

  /// Ensures `expected` entries fit without a rehash.
  void reserve(std::size_t expected) {
    entries_.reserve(expected);
    std::size_t want = kMinBuckets;
    // Grow until expected fits under the load-factor ceiling.
    while (expected + (expected >> 1) >= want) want <<= 1;
    if (want > buckets_.size()) rehash(want);
  }

  /// Removes every entry; keeps both allocations for reuse.
  void clear() noexcept {
    entries_.clear();
    buckets_.assign(buckets_.size(), kEmpty);
    size_ = 0;
    dead_ = 0;
    tombstones_ = 0;
  }

  /// Pointer to the mapped value, or nullptr.
  [[nodiscard]] Mapped* find(const Key& key) noexcept {
    const std::size_t slot = find_slot(key);
    return slot == kNpos ? nullptr : &entries_[slot].value;
  }
  [[nodiscard]] const Mapped* find(const Key& key) const noexcept {
    const std::size_t slot =
        const_cast<FlatHash*>(this)->find_slot(key);
    return slot == kNpos ? nullptr : &entries_[slot].value;
  }

  /// Inserts a default-constructed mapped value if absent. Returns the
  /// mapped value and whether it was inserted.
  std::pair<Mapped*, bool> try_emplace(const Key& key) {
    if (buckets_.empty() || needs_rehash()) grow();
    const std::uint64_t mixed = mix64(static_cast<std::uint64_t>(hash_(key)));
    const std::size_t mask = buckets_.size() - 1;
    std::size_t bucket = static_cast<std::size_t>(mixed) & mask;
    std::size_t first_tombstone = kNpos;
    for (;;) {
      const std::uint32_t ref = buckets_[bucket];
      if (ref == kEmpty) {
        const std::size_t target =
            first_tombstone == kNpos ? bucket : first_tombstone;
        if (first_tombstone != kNpos) --tombstones_;
        entries_.push_back(Entry{key, Mapped{}, true});
        buckets_[target] = static_cast<std::uint32_t>(entries_.size() - 1) +
                           kFirstSlot;
        ++size_;
        return {&entries_.back().value, true};
      }
      if (ref == kTombstone) {
        if (first_tombstone == kNpos) first_tombstone = bucket;
      } else {
        Entry& entry = entries_[ref - kFirstSlot];
        if (entry.key == key) return {&entry.value, false};
      }
      bucket = (bucket + 1) & mask;
    }
  }

  Mapped& operator[](const Key& key) { return *try_emplace(key).first; }

  /// Removes `key`; the bucket becomes a reusable tombstone and the dense
  /// entry is skipped by iteration until the next compaction.
  bool erase(const Key& key) {
    if (buckets_.empty()) return false;
    const std::uint64_t mixed = mix64(static_cast<std::uint64_t>(hash_(key)));
    const std::size_t mask = buckets_.size() - 1;
    std::size_t bucket = static_cast<std::size_t>(mixed) & mask;
    for (;;) {
      const std::uint32_t ref = buckets_[bucket];
      if (ref == kEmpty) return false;
      if (ref != kTombstone) {
        Entry& entry = entries_[ref - kFirstSlot];
        if (entry.key == key) {
          entry.alive = false;
          entry.value = Mapped{};  // release owned storage now
          buckets_[bucket] = kTombstone;
          ++tombstones_;
          --size_;
          ++dead_;
          // A dead-majority dense vector wastes iteration and memory;
          // compact in place (same bucket count, order preserved).
          if (dead_ > entries_.size() / 2) rehash(buckets_.size());
          return true;
        }
      }
      bucket = (bucket + 1) & mask;
    }
  }

  /// Visits live entries in insertion order as fn(key, value).
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const Entry& entry : entries_) {
      if (entry.alive) fn(entry.key, entry.value);
    }
  }

  /// Dense storage, insertion-ordered; dead entries have alive == false.
  [[nodiscard]] const std::vector<Entry>& entries() const noexcept {
    return entries_;
  }

  /// Removes every entry matching pred(key, value), visiting candidates in
  /// insertion order and handing removed values to consume(key, value&&).
  /// Survivors keep their relative order. One O(n) pass — this is the
  /// FlowCache minute-drain primitive.
  template <typename Pred, typename Consume>
  void extract_if(Pred&& pred, Consume&& consume) {
    std::size_t removed = 0;
    for (Entry& entry : entries_) {
      if (!entry.alive) continue;
      if (pred(entry.key, entry.value)) {
        consume(entry.key, std::move(entry.value));
        entry.alive = false;
        ++removed;
      }
    }
    if (removed == 0) return;
    size_ -= removed;
    dead_ += removed;
    rehash(buckets_.size());  // compact + rebuild; order preserved
  }

 private:
  static constexpr std::uint32_t kEmpty = 0;
  static constexpr std::uint32_t kTombstone = 1;
  static constexpr std::uint32_t kFirstSlot = 2;
  static constexpr std::size_t kMinBuckets = 16;
  static constexpr std::size_t kNpos = static_cast<std::size_t>(-1);

  [[nodiscard]] bool needs_rehash() const noexcept {
    // Load factor (incl. tombstones) capped at 3/4.
    const std::size_t used = entries_.size() - dead_ + tombstones_;
    return (used + 1) + ((used + 1) >> 1) >= buckets_.size();
  }

  void grow() {
    std::size_t want = buckets_.empty() ? kMinBuckets : buckets_.size();
    // Only enlarge when live entries (not tombstones) demand it; a
    // tombstone-heavy table rehashes at the same size, wiping them.
    if ((size_ + 1) + ((size_ + 1) >> 1) >= want) want <<= 1;
    rehash(want);
  }

  void rehash(std::size_t bucket_count) {
    if (dead_ > 0) {
      // Compact the dense vector, preserving insertion order.
      std::size_t write = 0;
      for (std::size_t read = 0; read < entries_.size(); ++read) {
        if (!entries_[read].alive) continue;
        if (write != read) entries_[write] = std::move(entries_[read]);
        ++write;
      }
      entries_.resize(write);
      dead_ = 0;
    }
    buckets_.assign(bucket_count, kEmpty);
    tombstones_ = 0;
    const std::size_t mask = bucket_count - 1;
    for (std::size_t slot = 0; slot < entries_.size(); ++slot) {
      const std::uint64_t mixed =
          mix64(static_cast<std::uint64_t>(hash_(entries_[slot].key)));
      std::size_t bucket = static_cast<std::size_t>(mixed) & mask;
      while (buckets_[bucket] != kEmpty) bucket = (bucket + 1) & mask;
      buckets_[bucket] = static_cast<std::uint32_t>(slot) + kFirstSlot;
    }
  }

  /// Dense-slot index of `key`, or kNpos.
  [[nodiscard]] std::size_t find_slot(const Key& key) noexcept {
    if (buckets_.empty()) return kNpos;
    const std::uint64_t mixed = mix64(static_cast<std::uint64_t>(hash_(key)));
    const std::size_t mask = buckets_.size() - 1;
    std::size_t bucket = static_cast<std::size_t>(mixed) & mask;
    for (;;) {
      const std::uint32_t ref = buckets_[bucket];
      if (ref == kEmpty) return kNpos;
      if (ref != kTombstone) {
        const std::size_t slot = ref - kFirstSlot;
        if (entries_[slot].key == key) return slot;
      }
      bucket = (bucket + 1) & mask;
    }
  }

  std::vector<Entry> entries_;          ///< dense, insertion-ordered
  std::vector<std::uint32_t> buckets_;  ///< kEmpty/kTombstone/slot + 2
  std::size_t size_ = 0;                ///< live entries
  std::size_t dead_ = 0;                ///< dead dense entries
  std::size_t tombstones_ = 0;          ///< tombstoned buckets
  [[no_unique_address]] Hash hash_{};
};

}  // namespace scrubber::util
