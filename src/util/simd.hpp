#pragma once
// SIMD capability detection and kernel dispatch for the scoring hot path.
//
// Two gates decide which inference kernel runs (DESIGN.md §13):
//
//   compile time  SCRUBBER_AVX2 (CMake option, default ON) compiles the
//                 AVX2 lane-table kernels in ml/compiled_tree_avx2.cpp.
//                 OFF builds a scalar-only binary — the forced-scalar CI
//                 leg — where simd_level() can never report kAvx2.
//   run time      cpuid (via __builtin_cpu_supports) confirms the machine
//                 actually executes AVX2 before the first vector kernel is
//                 selected, so one binary serves both old and new boxes.
//
// set_simd_override() forces a level below the detected one (benches time
// both kernels on the same machine; tests pin the fallback path). Forcing
// a level the build or the CPU cannot execute is clamped to simd_detect()
// — the override can only ever *lower* the level, never fault the box.
//
// Every kernel behind this dispatch is BIT-IDENTICAL to the scalar oracle
// by contract; the level changes wall time, never output. This header is
// one of the two files allowed to touch x86 vector intrinsics
// (scrubber-simd-isolation) — it deliberately contains none itself, so it
// stays includable from any TU on any architecture.

#include <cstdint>

namespace scrubber::util {

/// Kernel tiers, ordered: a higher level implies the lower ones work.
enum class SimdLevel : std::uint8_t { kScalar = 0, kAvx2 = 1 };

/// Display name ("scalar", "avx2") used in stats lines and provenance.
[[nodiscard]] const char* simd_level_name(SimdLevel level) noexcept;

/// True when the running CPU reports AVX2 (cpuid, cached after first call).
[[nodiscard]] bool cpu_has_avx2() noexcept;

/// True when the running CPU reports FMA3. Recorded in bench provenance
/// only — the inference kernels use no fused ops (fusion would break
/// bit-identity with the scalar oracle).
[[nodiscard]] bool cpu_has_fma() noexcept;

/// True when this binary was built with SCRUBBER_AVX2=ON.
[[nodiscard]] bool simd_compiled_avx2() noexcept;

/// Highest level this binary can execute on this machine (compile-time
/// gate AND runtime cpuid), ignoring any override.
[[nodiscard]] SimdLevel simd_detect() noexcept;

/// The level kernels dispatch on: min(simd_detect(), override).
[[nodiscard]] SimdLevel simd_level() noexcept;

/// Pins dispatch at `level` (clamped to simd_detect()). Thread-safe;
/// intended for benches and tests, not for per-call toggling.
void set_simd_override(SimdLevel level) noexcept;

/// Restores automatic (detected) dispatch.
void clear_simd_override() noexcept;

}  // namespace scrubber::util
