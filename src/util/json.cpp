#include "util/json.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>

namespace scrubber::util {
namespace {

/// Recursive-descent JSON parser over a string_view.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Json parse_document() {
    Json value = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after JSON document");
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw JsonError("JSON parse error at offset " + std::to_string(pos_) + ": " +
                    what);
  }

  void skip_ws() noexcept {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        ++pos_;
      } else {
        break;
      }
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  char next() {
    const char c = peek();
    ++pos_;
    return c;
  }

  void expect(char c) {
    if (next() != c) fail(std::string("expected '") + c + "'");
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) == lit) {
      pos_ += lit.size();
      return true;
    }
    return false;
  }

  Json parse_value() {
    skip_ws();
    const char c = peek();
    switch (c) {
      case '{':
        return parse_object();
      case '[':
        return parse_array();
      case '"':
        return Json(parse_string());
      case 't':
        if (consume_literal("true")) return Json(true);
        fail("invalid literal");
      case 'f':
        if (consume_literal("false")) return Json(false);
        fail("invalid literal");
      case 'n':
        if (consume_literal("null")) return Json(nullptr);
        fail("invalid literal");
      default:
        return parse_number();
    }
  }

  Json parse_object() {
    expect('{');
    JsonObject obj;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return Json(std::move(obj));
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      obj.emplace_back(std::move(key), parse_value());
      skip_ws();
      const char c = next();
      if (c == '}') break;
      if (c != ',') fail("expected ',' or '}' in object");
    }
    return Json(std::move(obj));
  }

  Json parse_array() {
    expect('[');
    JsonArray arr;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return Json(std::move(arr));
    }
    while (true) {
      arr.push_back(parse_value());
      skip_ws();
      const char c = next();
      if (c == ']') break;
      if (c != ',') fail("expected ',' or ']' in array");
    }
    return Json(std::move(arr));
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') break;
      if (c == '\\') {
        if (pos_ >= text_.size()) fail("unterminated escape");
        const char e = text_[pos_++];
        switch (e) {
          case '"': out.push_back('"'); break;
          case '\\': out.push_back('\\'); break;
          case '/': out.push_back('/'); break;
          case 'b': out.push_back('\b'); break;
          case 'f': out.push_back('\f'); break;
          case 'n': out.push_back('\n'); break;
          case 'r': out.push_back('\r'); break;
          case 't': out.push_back('\t'); break;
          case 'u': {
            if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = text_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
              else fail("invalid hex digit in \\u escape");
            }
            // Encode the code point as UTF-8 (BMP only; surrogate pairs are
            // not needed for our ASCII-centric rule files).
            if (code < 0x80) {
              out.push_back(static_cast<char>(code));
            } else if (code < 0x800) {
              out.push_back(static_cast<char>(0xC0 | (code >> 6)));
              out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
            } else {
              out.push_back(static_cast<char>(0xE0 | (code >> 12)));
              out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
              out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
            }
            break;
          }
          default:
            fail("invalid escape character");
        }
      } else {
        out.push_back(c);
      }
    }
    return out;
  }

  Json parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) ++pos_;
    bool any = false;
    auto eat_digits = [&] {
      while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
        any = true;
      }
    };
    eat_digits();
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      eat_digits();
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) ++pos_;
      eat_digits();
    }
    if (!any) fail("invalid number");
    double value = 0.0;
    const auto* first = text_.data() + start;
    const auto* last = text_.data() + pos_;
    const auto [ptr, ec] = std::from_chars(first, last, value);
    if (ec != std::errc{} || ptr != last) fail("unparsable number");
    return Json(value);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

void append_escaped(std::string& out, const std::string& s) {
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

void append_number(std::string& out, double d) {
  if (std::isnan(d) || std::isinf(d)) {
    out += "null";  // JSON has no NaN/Inf; serialize as null.
    return;
  }
  if (d == std::floor(d) && std::abs(d) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.0f", d);
    out += buf;
    return;
  }
  // %.17g preserves every double bit-exactly across a parse round trip
  // (required for model checkpoints).
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", d);
  out += buf;
}

void append_newline_indent(std::string& out, int indent, int depth) {
  if (indent <= 0) return;
  out.push_back('\n');
  out.append(static_cast<std::size_t>(indent) * static_cast<std::size_t>(depth), ' ');
}

}  // namespace

bool Json::as_bool() const {
  if (const auto* b = std::get_if<bool>(&value_)) return *b;
  throw JsonError("JSON value is not a boolean");
}

double Json::as_number() const {
  if (const auto* d = std::get_if<double>(&value_)) return *d;
  throw JsonError("JSON value is not a number");
}

std::int64_t Json::as_int() const {
  return static_cast<std::int64_t>(std::llround(as_number()));
}

const std::string& Json::as_string() const {
  if (const auto* s = std::get_if<std::string>(&value_)) return *s;
  throw JsonError("JSON value is not a string");
}

const JsonArray& Json::as_array() const {
  if (const auto* a = std::get_if<JsonArray>(&value_)) return *a;
  throw JsonError("JSON value is not an array");
}

const JsonObject& Json::as_object() const {
  if (const auto* o = std::get_if<JsonObject>(&value_)) return *o;
  throw JsonError("JSON value is not an object");
}

JsonArray& Json::as_array() {
  if (auto* a = std::get_if<JsonArray>(&value_)) return *a;
  throw JsonError("JSON value is not an array");
}

JsonObject& Json::as_object() {
  if (auto* o = std::get_if<JsonObject>(&value_)) return *o;
  throw JsonError("JSON value is not an object");
}

const Json* Json::find(std::string_view key) const noexcept {
  const auto* obj = std::get_if<JsonObject>(&value_);
  if (obj == nullptr) return nullptr;
  for (const auto& [k, v] : *obj) {
    if (k == key) return &v;
  }
  return nullptr;
}

const Json& Json::at(std::string_view key) const {
  const Json* found = find(key);
  if (found == nullptr) throw JsonError("missing JSON key: " + std::string(key));
  return *found;
}

void Json::set(std::string key, Json value) {
  if (is_null()) value_ = JsonObject{};
  auto& obj = as_object();
  for (auto& [k, v] : obj) {
    if (k == key) {
      v = std::move(value);
      return;
    }
  }
  obj.emplace_back(std::move(key), std::move(value));
}

std::string Json::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

void Json::dump_to(std::string& out, int indent, int depth) const {
  if (is_null()) {
    out += "null";
  } else if (const auto* b = std::get_if<bool>(&value_)) {
    out += *b ? "true" : "false";
  } else if (const auto* d = std::get_if<double>(&value_)) {
    append_number(out, *d);
  } else if (const auto* s = std::get_if<std::string>(&value_)) {
    append_escaped(out, *s);
  } else if (const auto* a = std::get_if<JsonArray>(&value_)) {
    if (a->empty()) {
      out += "[]";
      return;
    }
    out.push_back('[');
    for (std::size_t i = 0; i < a->size(); ++i) {
      if (i) out.push_back(',');
      append_newline_indent(out, indent, depth + 1);
      (*a)[i].dump_to(out, indent, depth + 1);
    }
    append_newline_indent(out, indent, depth);
    out.push_back(']');
  } else if (const auto* o = std::get_if<JsonObject>(&value_)) {
    if (o->empty()) {
      out += "{}";
      return;
    }
    out.push_back('{');
    bool first = true;
    for (const auto& [k, v] : *o) {
      if (!first) out.push_back(',');
      first = false;
      append_newline_indent(out, indent, depth + 1);
      append_escaped(out, k);
      out.push_back(':');
      if (indent > 0) out.push_back(' ');
      v.dump_to(out, indent, depth + 1);
    }
    append_newline_indent(out, indent, depth);
    out.push_back('}');
  }
}

Json Json::parse(std::string_view text) { return Parser(text).parse_document(); }

}  // namespace scrubber::util
