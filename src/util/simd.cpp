#include "util/simd.hpp"

#include <atomic>

namespace scrubber::util {
namespace {

/// -1 = no override, otherwise the pinned SimdLevel. Relaxed ordering is
/// enough: the override is a test/bench configuration knob set before the
/// timed region, not a synchronization point.
std::atomic<int> g_override{-1};

// __builtin_cpu_supports requires a string literal, hence one probe
// function per feature instead of a parameterized helper.

[[nodiscard]] bool probe_avx2() noexcept {
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

[[nodiscard]] bool probe_fma() noexcept {
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
  return __builtin_cpu_supports("fma") != 0;
#else
  return false;
#endif
}

}  // namespace

const char* simd_level_name(SimdLevel level) noexcept {
  switch (level) {
    case SimdLevel::kScalar: return "scalar";
    case SimdLevel::kAvx2: return "avx2";
  }
  return "?";
}

bool cpu_has_avx2() noexcept {
  static const bool cached = probe_avx2();
  return cached;
}

bool cpu_has_fma() noexcept {
  static const bool cached = probe_fma();
  return cached;
}

bool simd_compiled_avx2() noexcept {
#if defined(SCRUBBER_AVX2) && SCRUBBER_AVX2 && defined(__x86_64__) && \
    (defined(__GNUC__) || defined(__clang__))
  return true;
#else
  return false;
#endif
}

SimdLevel simd_detect() noexcept {
  return simd_compiled_avx2() && cpu_has_avx2() ? SimdLevel::kAvx2
                                                : SimdLevel::kScalar;
}

SimdLevel simd_level() noexcept {
  const int forced = g_override.load(std::memory_order_relaxed);
  const SimdLevel detected = simd_detect();
  if (forced < 0) return detected;
  const auto wanted = static_cast<SimdLevel>(forced);
  return wanted < detected ? wanted : detected;  // clamp: only ever lower
}

void set_simd_override(SimdLevel level) noexcept {
  g_override.store(static_cast<int>(level), std::memory_order_relaxed);
}

void clear_simd_override() noexcept {
  g_override.store(-1, std::memory_order_relaxed);
}

}  // namespace scrubber::util
