#pragma once
// Bounded queues for the streaming runtime (see DESIGN.md "Runtime").
//
// Two shapes cover every edge of the stage graph:
//
//   SpscRing   — lock-free single-producer/single-consumer ring. Used for
//                the high-rate edges (producer → decode, router → shard,
//                merge → score) where exactly one thread sits on each end.
//                Head and tail live on separate cache lines and each side
//                keeps a cached copy of the opposite index, so the steady
//                state touches one shared line per batch, not per item.
//
//   MpscQueue  — mutex-based multi-producer/single-consumer bounded queue
//                with blocking pop and close(). Used for the merge edge,
//                where N shard threads funnel closed minute batches into
//                one merge thread. Traffic here is per-minute-batch, not
//                per-datagram, so a lock is cheap and keeps the code
//                obviously correct.
//
// Both queues transfer by move; capacity is fixed at construction.

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <thread>
#include <vector>

#include "util/check.hpp"

namespace scrubber::runtime {

/// Size of a destructive-interference-free region. Hardcoded rather than
/// std::hardware_destructive_interference_size, which GCC warns is an ABI
/// hazard in headers; 64 bytes is right for every deployment target.
inline constexpr std::size_t kCacheLine = 64;

/// Bounded lock-free SPSC ring buffer.
///
/// Exactly one thread may call push-side methods and exactly one thread
/// pop-side methods. Capacity is rounded up to a power of two.
template <typename T>
class SpscRing {
 public:
  explicit SpscRing(std::size_t min_capacity) {
    std::size_t cap = 1;
    while (cap < min_capacity) cap <<= 1;
    slots_.resize(cap);
    mask_ = cap - 1;
  }

  /// Usable capacity (power of two, >= requested).
  [[nodiscard]] std::size_t capacity() const noexcept { return slots_.size(); }

  // The push/pop paths below are the per-datagram hot path of the whole
  // engine. scrubber-lint enforces that nothing blocking creeps in.
  // scrubber-hot-begin

  /// Producer side: false when the ring is full (item untouched).
  [[nodiscard]] bool try_push(T& value) {
    SCRUBBER_ASSERT_THREAD(push_owner_, "SpscRing push endpoint");
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    if (tail - head_cache_ >= capacity()) {
      head_cache_ = head_.load(std::memory_order_acquire);
      if (tail - head_cache_ >= capacity()) return false;
    }
    slots_[tail & mask_] = std::move(value);
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }
  [[nodiscard]] bool try_push(T&& value) { return try_push(value); }

  /// Producer side: spins (with yield) until the item fits or `abort`
  /// becomes true. Returns false only on abort.
  bool push_blocking(T&& value, const std::atomic<bool>& abort) {
    while (!try_push(value)) {
      if (abort.load(std::memory_order_relaxed)) return false;
      std::this_thread::yield();
    }
    return true;
  }

  /// Consumer side: false when the ring is empty.
  [[nodiscard]] bool try_pop(T& out) {
    SCRUBBER_ASSERT_THREAD(pop_owner_, "SpscRing pop endpoint");
    const std::size_t head = head_.load(std::memory_order_relaxed);
    if (head == tail_cache_) {
      tail_cache_ = tail_.load(std::memory_order_acquire);
      if (head == tail_cache_) return false;
    }
    out = std::move(slots_[head & mask_]);
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  /// Approximate occupancy (exact when called from either endpoint thread).
  [[nodiscard]] std::size_t size() const noexcept {
    return tail_.load(std::memory_order_acquire) -
           head_.load(std::memory_order_acquire);
  }
  [[nodiscard]] bool empty() const noexcept { return size() == 0; }

  // scrubber-hot-end

  /// Checked-build handoff of the producer endpoint. Legal only after a
  /// join point proves the previous producer thread has exited (e.g. the
  /// merge thread is joined before the decode thread pushes the finish
  /// sentinel); the next push re-claims ownership. No-op in normal builds.
  void adopt_producer() noexcept {
#if defined(SCRUBBER_CHECKED)
    push_owner_.release();
#endif
  }

 private:
  std::vector<T> slots_;
  std::size_t mask_ = 0;
  alignas(kCacheLine) std::atomic<std::size_t> head_{0};  ///< next pop index
  alignas(kCacheLine) std::size_t tail_cache_ = 0;        ///< consumer's view of tail
  alignas(kCacheLine) std::atomic<std::size_t> tail_{0};  ///< next push index
  alignas(kCacheLine) std::size_t head_cache_ = 0;        ///< producer's view of head
#if defined(SCRUBBER_CHECKED)
  // Checked builds enforce the SPSC ownership contract: the first thread
  // to push (pop) claims the endpoint, any second thread aborts. Absent
  // entirely in normal builds.
  util::ThreadOwner push_owner_;
  util::ThreadOwner pop_owner_;
#endif
};

/// Bounded blocking MPSC queue with shutdown.
///
/// Any number of producers may push; one consumer pops. close() wakes
/// everyone: producers fail fast, the consumer drains what is left and
/// then sees pop() return false.
template <typename T>
class MpscQueue {
 public:
  explicit MpscQueue(std::size_t capacity) : capacity_(capacity) {}

  /// Blocks while full. Returns false if the queue was closed.
  bool push(T&& value) {
    std::unique_lock lock(mutex_);
    not_full_.wait(lock, [&] { return items_.size() < capacity_ || closed_; });
    if (closed_) return false;
    items_.push_back(std::move(value));
    highwater_ = std::max(highwater_, items_.size());
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Non-blocking push; false when full or closed.
  [[nodiscard]] bool try_push(T&& value) {
    {
      std::lock_guard lock(mutex_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(value));
      highwater_ = std::max(highwater_, items_.size());
    }
    not_empty_.notify_one();
    return true;
  }

  /// Blocks while empty. Returns false once closed *and* drained.
  bool pop(T& out) {
    std::unique_lock lock(mutex_);
    not_empty_.wait(lock, [&] { return !items_.empty() || closed_; });
    if (items_.empty()) return false;  // closed and drained
    out = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return true;
  }

  /// Closes the queue; queued items remain poppable.
  void close() {
    {
      std::lock_guard lock(mutex_);
      closed_ = true;
    }
    not_full_.notify_all();
    not_empty_.notify_all();
  }

  [[nodiscard]] std::size_t size() const {
    std::lock_guard lock(mutex_);
    return items_.size();
  }
  /// Deepest occupancy ever observed (for the queue-depth counters).
  [[nodiscard]] std::size_t highwater() const {
    std::lock_guard lock(mutex_);
    return highwater_;
  }

 private:
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<T> items_;
  std::size_t highwater_ = 0;
  bool closed_ = false;
};

}  // namespace scrubber::runtime
