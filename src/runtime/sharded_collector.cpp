#include "runtime/sharded_collector.hpp"

#include <algorithm>
#include <chrono>
#include <limits>
#include <tuple>

#include "util/check.hpp"

namespace scrubber::runtime {
namespace {

constexpr std::uint32_t kClosedForever =
    std::numeric_limits<std::uint32_t>::max();

/// Nanoseconds since an arbitrary epoch (busy-time accounting).
std::uint64_t now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

bool canonical_flow_less(const net::FlowRecord& a,
                         const net::FlowRecord& b) noexcept {
  const auto key = [](const net::FlowRecord& f) {
    return std::tuple(f.minute, f.src_ip.value(), f.dst_ip.value(), f.src_port,
                      f.dst_port, f.protocol, f.tcp_flags, f.src_member,
                      f.packets, f.bytes, f.blackholed);
  };
  return key(a) < key(b);
}

std::size_t shard_of(net::Ipv4Address dst, std::size_t shards) noexcept {
  // splitmix64 finalizer: cheap, well-mixed, stable across runs.
  std::uint64_t x = dst.value();
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  x ^= x >> 31;
  return static_cast<std::size_t>(x % shards);
}

ShardedCollector::ShardedCollector(ShardedCollectorConfig config,
                                   core::MinuteBatchSink sink)
    : config_(config),
      sink_(std::move(sink)),
      merge_queue_(std::max<std::size_t>(config.queue_capacity,
                                         4 * std::max<std::size_t>(
                                                 config.shards, 1))) {
  if (config_.shards == 0) config_.shards = 1;
  batch_records_ =
      effective_batch_records(config_.batch_records, config_.queue_capacity);
  const std::size_t slots =
      batch_ring_slots(config_.queue_capacity, batch_records_);
  shards_.reserve(config_.shards);
  pending_.resize(config_.shards);
  pending_samples_.assign(config_.shards, 0);
  sub_mark_.assign(config_.shards, 0);
  for (std::size_t i = 0; i < config_.shards; ++i) {
    shards_.push_back(std::make_unique<Shard>(slots));
  }
  for (std::size_t i = 0; i < config_.shards; ++i) {
    shards_[i]->thread = std::thread([this, i] { shard_worker(i); });
  }
  merge_thread_ = std::thread([this] { merge_worker(); });
}

ShardedCollector::~ShardedCollector() {
  if (!finished_) {
    // Abandon in-flight work: unblock every thread and join. No flush —
    // destruction without finish() drops open bins by design.
    abort_.store(true, std::memory_order_relaxed);
    merge_queue_.close();
    for (auto& shard : shards_) {
      if (shard->thread.joinable()) shard->thread.join();
    }
    if (merge_thread_.joinable()) merge_thread_.join();
  }
}

ShardMessage ShardedCollector::fresh_data_message(std::size_t s) {
  ShardMessage recycled;
  if (shards_[s]->recycle.try_pop(recycled)) {
    // Drained batch coming back from the worker: vectors are already
    // cleared (POD/trivial payloads, so clear() kept their capacity) and
    // steady state appends allocate nothing.
    recycled.kind = ShardMessage::Kind::kData;
    recycled.subs.clear();
    recycled.samples.clear();
    return recycled;
  }
  return ShardMessage{};
}

void ShardedCollector::flush_shard(std::size_t s) {
  if (pending_[s].subs.empty()) return;
  ShardMessage message = std::move(pending_[s]);
  pending_[s] = fresh_data_message(s);
  pending_samples_[s] = 0;
  shards_[s]->ring.push_blocking(std::move(message), abort_);
  collect_.note_queue_depth(shards_[s]->ring.size() * batch_records_);
}

void ShardedCollector::broadcast(ShardMessage message) {
  // Order barrier: buffered data must reach every shard before (never
  // after) a control message — each shard then sees the identical
  // datagram/BGP/punctuation sequence the unbatched router produced,
  // which is what the bit-identical-output determinism argument needs.
  for (std::size_t s = 0; s < shards_.size(); ++s) flush_shard(s);
  for (auto& shard : shards_) {
    ShardMessage copy = message;
    shard->ring.push_blocking(std::move(copy), abort_);
  }
}

void ShardedCollector::route_begin(net::Ipv4Address agent,
                                   std::uint32_t sub_agent_id,
                                   std::uint32_t sequence,
                                   std::uint32_t uptime_ms) {
  ++ingest_seq_;
  route_agent_ = agent;
  route_sub_agent_id_ = sub_agent_id;
  route_sequence_ = sequence;
  route_uptime_ms_ = uptime_ms;
}

void ShardedCollector::route_sample(const net::SflowFlowSample& sample) {
  // Shard identity comes from the raw destination IP (pre-anonymization),
  // so a victim's flows always land in one shard.
  const std::size_t s = shard_of(sample.packet.dst_ip, shards_.size());
  ShardMessage& open = pending_[s];
  if (sub_mark_[s] != ingest_seq_) {
    // First sample of this source datagram routed to shard s: open a
    // fresh sub-datagram carrying the source header (uptime_ms is what
    // drives minute binning downstream).
    sub_mark_[s] = ingest_seq_;
    open.subs.push_back(ShardSubDatagram{
        route_agent_, route_sub_agent_id_, route_sequence_, route_uptime_ms_,
        static_cast<std::uint32_t>(open.samples.size()), 0});
  }
  open.samples.push_back(sample);
  ++open.subs.back().sample_count;
  ++pending_samples_[s];
}

void ShardedCollector::route_commit(std::uint32_t uptime_ms,
                                    std::size_t sample_total) {
  collect_.add_in(sample_total);
  const std::size_t n = shards_.size();
  for (std::size_t s = 0; s < n; ++s) {
    if (pending_samples_[s] >= batch_records_) flush_shard(s);
  }

  // Watermark punctuation: when stream time advances, tell every shard so
  // quiet shards close their minutes too (and ack to the merge barrier).
  // broadcast() flushes all pending batches first, so no shard sees the
  // punctuation before the data that precedes it in the stream.
  const auto minute = static_cast<std::uint32_t>(uptime_ms / 60'000);
  if (minute > watermark_min_) {
    watermark_min_ = minute;
    ShardMessage punct;
    punct.kind = ShardMessage::Kind::kAdvance;
    punct.minute = minute;
    broadcast(std::move(punct));
  }
}

void ShardedCollector::route_rollback() {
  // Unwind every sub-datagram the current (failed) datagram opened. Safe
  // because route_sample never flushes — a partially routed datagram sits
  // wholly at the tail of each touched shard's open batch.
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    if (sub_mark_[s] != ingest_seq_) continue;
    const ShardSubDatagram& sub = pending_[s].subs.back();
    SCRUBBER_ASSERT(pending_samples_[s] >= sub.sample_count,
                    "route rollback would underflow a shard's sample count");
    pending_samples_[s] -= sub.sample_count;
    pending_[s].samples.resize(sub.first_sample);
    pending_[s].subs.pop_back();
    sub_mark_[s] = 0;  // ingest_seq_ is pre-incremented, so 0 never matches
  }
}

void ShardedCollector::ingest(const net::SflowDatagram& datagram) {
  // Split the datagram's samples into per-shard sub-datagrams appended to
  // each shard's open batch (the same cursor the fused wire path drives,
  // so both paths produce bit-identical shard streams).
  route_begin(datagram.agent, datagram.sub_agent_id, datagram.sequence,
              datagram.uptime_ms);
  for (const auto& sample : datagram.samples) route_sample(sample);
  route_commit(datagram.uptime_ms, datagram.samples.size());
}

net::DecodeStatus ShardedCollector::ingest_wire(
    std::span<const std::uint8_t> wire) {
  net::SflowHeaderView header;
  bool begun = false;
  std::size_t emitted = 0;
  const net::DecodeStatus status = net::SflowView::decode(
      wire, header, [&](const net::SflowFlowSample& sample) {
        if (!begun) {
          // Header fields are fully parsed before the first sample emits.
          begun = true;
          route_begin(header.agent, header.sub_agent_id, header.sequence,
                      header.uptime_ms);
        }
        route_sample(sample);
        ++emitted;
      });
  if (status != net::DecodeStatus::kOk) {
    // Mirror the throwing path, where the error fires before ingest():
    // shard batches end up exactly as if the datagram never arrived.
    if (begun) route_rollback();
    return status;
  }
  // Commit even with zero routed samples so the watermark advances
  // exactly as decode-then-ingest() of the same (empty) datagram would.
  route_commit(header.uptime_ms, emitted);
  return net::DecodeStatus::kOk;
}

void ShardedCollector::ingest_bgp(const bgp::UpdateMessage& update,
                                  std::uint64_t now_ms) {
  ShardMessage message;
  message.kind = ShardMessage::Kind::kBgp;
  message.update = update;
  message.now_ms = now_ms;
  broadcast(std::move(message));
}

void ShardedCollector::finish() {
  if (finished_) return;
  finished_ = true;
  ShardMessage fin;
  fin.kind = ShardMessage::Kind::kFinish;
  broadcast(std::move(fin));
  for (auto& shard : shards_) shard->thread.join();
  merge_thread_.join();  // exits once every shard's horizon hit max
  merge_queue_.close();
  // Counter coherence: after a clean finish every flow a shard handed to
  // the merge stage must have been emitted to the sink — the minute
  // barrier drains completely, nothing is stranded in `pending`.
  SCRUBBER_ASSERT(
      flows_emitted_.load(std::memory_order_relaxed) == collect_.items_out(),
      "merge emitted a different flow count than the shards produced "
      "(minute-barrier drain is incomplete or duplicated)");
}

std::uint64_t ShardedCollector::late_datagrams() const noexcept {
  std::uint64_t total = 0;
  for (const auto& shard : shards_) {
    total += shard->late.load(std::memory_order_relaxed);
  }
  return total;
}

StageSnapshot ShardedCollector::merge_snapshot() const {
  StageSnapshot snap = merge_.snapshot("merge");
  snap.queue_highwater = std::max<std::uint64_t>(snap.queue_highwater,
                                                 merge_queue_.highwater());
  return snap;
}

void ShardedCollector::shard_worker(std::size_t index) {
  Shard& self = *shards_[index];
  core::Collector collector(
      config_.collector,
      [&](std::uint32_t minute, std::span<const net::FlowRecord> flows) {
        // Runs inside the collector's drain; forwards downstream only
        // (the MinuteBatchSink contract forbids re-entering `collector`).
        MergeMessage batch;
        batch.kind = MergeMessage::Kind::kBatch;
        batch.shard = index;
        batch.minute = minute;
        batch.flows.assign(flows.begin(), flows.end());
        collect_.add_out(batch.flows.size());
        merge_queue_.push(std::move(batch));  // false only after abort
      });

#if defined(SCRUBBER_CHECKED)
  std::uint32_t last_published_horizon = 0;
#endif
  const auto publish_horizon = [&] {
    self.late.store(collector.late_datagrams(), std::memory_order_relaxed);
    MergeMessage horizon;
    horizon.kind = MergeMessage::Kind::kHorizon;
    horizon.shard = index;
    horizon.minute = collector.flush_horizon();
#if defined(SCRUBBER_CHECKED)
    // The merge barrier is min-over-shards of these values; a regressing
    // horizon would re-open an already-emitted minute.
    SCRUBBER_ASSERT(horizon.minute >= last_published_horizon,
                    "shard flush horizon regressed");
    last_published_horizon = horizon.minute;
#endif
    merge_queue_.push(std::move(horizon));
  };

  ShardMessage message;
  for (;;) {
    if (!self.ring.try_pop(message)) {
      if (abort_.load(std::memory_order_relaxed)) return;
      std::this_thread::yield();
      continue;
    }
    const std::uint64_t begin = now_ns();
    switch (message.kind) {
      case ShardMessage::Kind::kData:
        for (const ShardSubDatagram& sub : message.subs) {
          collector.ingest_samples(
              sub.uptime_ms,
              std::span<const net::SflowFlowSample>(
                  message.samples.data() + sub.first_sample, sub.sample_count));
        }
        // Hand the drained batch back to the router: clear() keeps both
        // vectors' capacity (trivial payloads), so steady-state routing
        // allocates nothing. A full recycle ring just drops the batch.
        message.subs.clear();
        message.samples.clear();
        (void)self.recycle.try_push(std::move(message));
        break;
      case ShardMessage::Kind::kBgp:
        collector.ingest_bgp(message.update, message.now_ms);
        break;
      case ShardMessage::Kind::kAdvance:
        collector.advance(message.minute);
        publish_horizon();
        break;
      case ShardMessage::Kind::kFinish:
        collector.flush();  // horizon becomes UINT32_MAX
        publish_horizon();
        collect_.add_busy_ns(now_ns() - begin);
        return;
    }
    collect_.add_busy_ns(now_ns() - begin);
  }
}

void ShardedCollector::merge_worker() {
  // scrubber-deterministic-begin
  const std::size_t n = shards_.size();
  std::vector<std::uint32_t> horizon(n, 0);
  // Minute -> concatenated shard flows, kept sorted by minute. The live
  // set is tiny (a few minutes around the barrier), so a flat sorted
  // vector beats the node-based std::map it replaces: lower_bound insert,
  // front-range drain, and the per-minute flow vectors move — they are
  // never copied.
  std::vector<std::pair<std::uint32_t, std::vector<net::FlowRecord>>> pending;
  pending.reserve(16);
#if defined(SCRUBBER_CHECKED)
  bool emitted_any = false;
  std::uint32_t last_emitted = 0;   ///< highest minute handed to the sink
  std::uint32_t last_barrier = 0;   ///< min-over-shards horizon
#endif

  const auto emit_below = [&](std::uint32_t barrier) {
    auto it = pending.begin();
    for (; it != pending.end() && it->first < barrier; ++it) {
      std::vector<net::FlowRecord> flows = std::move(it->second);
#if defined(SCRUBBER_CHECKED)
      // Minute-barrier ordering: the sink sees minutes strictly
      // increasing, and never a minute the barrier has not yet passed.
      SCRUBBER_ASSERT(!emitted_any || it->first > last_emitted,
                      "merge emitted minutes out of order");
      SCRUBBER_ASSERT(it->first < barrier,
                      "merge emitted a minute at or beyond the barrier");
      emitted_any = true;
      last_emitted = it->first;
#endif
      // Canonical order erases shard interleaving: output is identical
      // for any shard count and any thread timing.
      std::sort(flows.begin(), flows.end(), canonical_flow_less);
      flows_emitted_.fetch_add(flows.size(), std::memory_order_relaxed);
      minutes_merged_.fetch_add(1, std::memory_order_relaxed);
      merge_.add_out(1);
      if (sink_) {
        sink_(it->first,
              std::span<const net::FlowRecord>(flows.data(), flows.size()));
      }
    }
    pending.erase(pending.begin(), it);
  };

  MergeMessage message;
  while (merge_queue_.pop(message)) {
    // NOLINTNEXTLINE(scrubber-deterministic): busy-time telemetry only — the clock value never reaches the merged output
    const std::uint64_t begin = now_ns();
    if (message.kind == MergeMessage::Kind::kBatch) {
      merge_.add_in(1);
      // A batch below the barrier would extend a minute that was already
      // emitted (closed forever) — exactly the corruption the barrier
      // exists to prevent.
#if defined(SCRUBBER_CHECKED)
      SCRUBBER_ASSERT(message.minute >= last_barrier,
                      "shard batch arrived for an already-emitted minute");
#endif
      auto slot = std::lower_bound(
          pending.begin(), pending.end(), message.minute,
          [](const auto& entry, std::uint32_t m) { return entry.first < m; });
      if (slot == pending.end() || slot->first != message.minute) {
        slot = pending.emplace(slot, message.minute,
                               std::vector<net::FlowRecord>{});
      }
      std::vector<net::FlowRecord>& bucket = slot->second;
      bucket.reserve(bucket.size() + message.flows.size());
      bucket.insert(bucket.end(), message.flows.begin(), message.flows.end());
    } else {
      // Per-shard horizons only advance: the MPSC queue preserves each
      // producer's FIFO order and the shard publishes monotonically.
      SCRUBBER_ASSERT(message.minute >= horizon[message.shard],
                      "shard horizon message arrived out of order");
      horizon[message.shard] =
          std::max(horizon[message.shard], message.minute);
      const std::uint32_t barrier =
          *std::min_element(horizon.begin(), horizon.end());
      emit_below(barrier);
#if defined(SCRUBBER_CHECKED)
      SCRUBBER_ASSERT(barrier >= last_barrier, "merge barrier regressed");
      last_barrier = barrier;
#endif
      if (barrier == kClosedForever) {
        // NOLINTNEXTLINE(scrubber-deterministic): busy-time telemetry only — the clock value never reaches the merged output
        merge_.add_busy_ns(now_ns() - begin);
        return;  // every shard flushed and finished
      }
    }
    // NOLINTNEXTLINE(scrubber-deterministic): busy-time telemetry only — the clock value never reaches the merged output
    merge_.add_busy_ns(now_ns() - begin);
  }
  // scrubber-deterministic-end
}

}  // namespace scrubber::runtime
