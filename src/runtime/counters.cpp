#include "runtime/counters.hpp"

#include <cstdio>

namespace scrubber::runtime {

StageSnapshot StageCounters::snapshot(std::string name) const {
  StageSnapshot snap;
  snap.name = std::move(name);
  snap.items_in = in_.load(std::memory_order_relaxed);
  snap.items_out = out_.load(std::memory_order_relaxed);
  snap.drops = drops_.load(std::memory_order_relaxed);
  snap.queue_highwater = highwater_.load(std::memory_order_relaxed);
  snap.busy_seconds =
      static_cast<double>(busy_ns_.load(std::memory_order_relaxed)) * 1e-9;
  return snap;
}

std::string EngineSnapshot::stats_line() const {
  char line[256];
  std::snprintf(line, sizeof(line),
                "t=%8.1fs datagrams=%llu flows=%llu minutes=%llu "
                "drops=%llu late=%llu bad=%llu rate=%.0f flows/s",
                wall_seconds, static_cast<unsigned long long>(datagrams),
                static_cast<unsigned long long>(flows_out),
                static_cast<unsigned long long>(minutes_merged),
                static_cast<unsigned long long>(input_drops),
                static_cast<unsigned long long>(late_drops),
                static_cast<unsigned long long>(decode_errors),
                flows_per_sec());
  std::string out = line;
  if (pool_slots > 0) {
    std::snprintf(line, sizeof(line), " pool=%llu/%llu hiwat=%llu dry=%llu",
                  static_cast<unsigned long long>(pool_in_use),
                  static_cast<unsigned long long>(pool_slots),
                  static_cast<unsigned long long>(pool_highwater),
                  static_cast<unsigned long long>(pool_exhausted));
    out += line;
  }
  return out;
}

std::string EngineSnapshot::report() const {
  std::string out;
  char line[256];
  std::snprintf(line, sizeof(line),
                "wall %.3fs | %llu datagrams, %llu samples, %llu BGP updates\n"
                "%llu flows in %llu minute batches -> %.0f flows/s\n"
                "drops: input=%llu late=%llu decode_errors=%llu\n",
                wall_seconds, static_cast<unsigned long long>(datagrams),
                static_cast<unsigned long long>(samples),
                static_cast<unsigned long long>(bgp_updates),
                static_cast<unsigned long long>(flows_out),
                static_cast<unsigned long long>(minutes_merged),
                flows_per_sec(), static_cast<unsigned long long>(input_drops),
                static_cast<unsigned long long>(late_drops),
                static_cast<unsigned long long>(decode_errors));
  out += line;
  if (pool_slots > 0) {
    std::snprintf(line, sizeof(line),
                  "wire pool: %llu slots, in_use=%llu highwater=%llu "
                  "exhausted=%llu\n",
                  static_cast<unsigned long long>(pool_slots),
                  static_cast<unsigned long long>(pool_in_use),
                  static_cast<unsigned long long>(pool_highwater),
                  static_cast<unsigned long long>(pool_exhausted));
    out += line;
  }
  for (const StageSnapshot& stage : stages) {
    std::snprintf(line, sizeof(line),
                  "  stage %-8s in=%-10llu out=%-10llu drops=%-6llu "
                  "q_hiwat=%-5llu busy=%7.3fs util=%5.1f%%\n",
                  stage.name.c_str(),
                  static_cast<unsigned long long>(stage.items_in),
                  static_cast<unsigned long long>(stage.items_out),
                  static_cast<unsigned long long>(stage.drops),
                  static_cast<unsigned long long>(stage.queue_highwater),
                  stage.busy_seconds, 100.0 * stage.utilization(wall_seconds));
    out += line;
  }
  return out;
}

}  // namespace scrubber::runtime
