#pragma once
// Streaming ingest engine: the stage graph
//
//   producer ─► [input ring] ─► decode ─► route ─► shard rings ─► collect×N
//                                                                    │
//   sink ◄── score ◄── [score ring] ◄── merge ◄── [merge queue] ◄────┘
//
// wired from the runtime building blocks. One decode/route worker drains
// the bounded input ring, decodes sFlow wire bytes when needed, and feeds
// the ShardedCollector (N collect workers + merge worker). Merged minute
// batches cross a bounded ring to the score worker, which invokes the
// user's minute sink (typically core::LiveDetector::ingest_minute) — so a
// slow model never blocks packet decode directly; backpressure propagates
// queue by queue until the producer either blocks or drops, per policy.
//
// Every ring edge moves batches (see batch.hpp): the producer accumulates
// events into a pending InputBatch and flushes at `batch_records` events
// or immediately on control events (BGP, finish), so relative order of
// data and control is exactly the submission order. Under kDrop a full
// ring drops only the incoming data event — buffered events are retried
// on the next submission and on finish, so every accepted event is
// eventually delivered and `input_drops` equals rejected push() calls.
//
// Producer API (push / push_wire / push_bgp / finish) must be called from
// one thread. The minute sink runs on the score thread, and only there,
// so non-thread-safe sinks are fine.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <thread>

#include "runtime/batch.hpp"
#include "runtime/counters.hpp"
#include "runtime/ring.hpp"
#include "runtime/sharded_collector.hpp"
#include "runtime/wire_pool.hpp"

namespace scrubber::runtime {

/// What the producer-facing input ring does when full.
enum class Backpressure {
  kBlock,  ///< push spins until space (lossless, producer-paced)
  kDrop,   ///< push fails fast, drop counted (loss-tolerant telemetry)
};

struct EngineConfig {
  std::size_t shards = 1;               ///< collector shards (collect workers)
  std::size_t queue_capacity = 1024;    ///< bound for every stage queue (records)
  Backpressure backpressure = Backpressure::kBlock;
  core::Collector::Config collector{};  ///< per-shard collector config
  /// Records per ring batch (clamped by effective_batch_records so small
  /// test queues still exercise backpressure); 1 = single-record transfer.
  std::size_t batch_records = kDefaultBatchRecords;
  /// When > 0 the engine owns a WireBufferPool of this many slots and
  /// receivers scatter datagrams straight into pooled buffers (see
  /// wire_pool.hpp) — the zero-allocation ingest path. 0 disables it.
  std::size_t wire_pool_slots = 0;
  /// Capacity of each pooled slot; must hold the largest datagram.
  std::size_t wire_slot_bytes = 8192;
  /// Bench/test knob: decode wire events with the throwing oracle decoder
  /// (materialize SflowDatagram, then route) instead of the fused in-place
  /// walk. Output is bit-identical either way; only the cost differs.
  bool use_oracle_decoder = false;
};

/// Multi-threaded decode → shard → collect → merge → score pipeline.
class Engine {
 public:
  /// `minute_sink` receives every labeled minute batch, in minute order,
  /// on the score thread.
  Engine(EngineConfig config, core::MinuteBatchSink minute_sink);
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Enqueues a decoded datagram. Returns false iff dropped (kDrop).
  bool push(net::SflowDatagram datagram);

  /// Enqueues raw sFlow wire bytes (decoded on the decode worker).
  /// Returns false iff dropped (kDrop).
  bool push_wire(std::vector<std::uint8_t> wire);

  /// Enqueues raw sFlow wire bytes living in a pooled slot — no copy, no
  /// allocation; the slot recycles after the decode worker walks it (and
  /// on drop, when the event is destroyed). Returns false iff dropped.
  bool push_wire(WireSlot slot);

  /// The engine's wire buffer pool, or nullptr when wire_pool_slots == 0.
  /// Receivers acquire slots here; slots they hand to push_wire flow
  /// through the ring and recycle automatically.
  [[nodiscard]] WireBufferPool* wire_pool() noexcept {
    return wire_pool_.get();
  }

  /// Enqueues a BGP update. Updates are control-plane state the labels
  /// depend on, so they always block — never dropped, either policy.
  void push_bgp(bgp::UpdateMessage update, std::uint64_t now_ms);

  /// Drains every stage and joins every worker. After this returns the
  /// minute sink has seen all input. Idempotent.
  void finish();

  /// Coherent point-in-time stats (callable while running).
  [[nodiscard]] EngineSnapshot stats() const;

 private:
  struct InputEvent {
    enum class Kind : std::uint8_t {
      kDatagram, kWire, kPooledWire, kBgp, kFinish
    };
    Kind kind = Kind::kDatagram;
    net::SflowDatagram datagram;
    std::vector<std::uint8_t> wire;
    WireSlot slot;  ///< kPooledWire payload (recycles on event destruction)
    bgp::UpdateMessage update;
    std::uint64_t now_ms = 0;
  };
  struct ScoreItem {
    bool finish = false;
    std::uint32_t minute = 0;
    std::vector<net::FlowRecord> flows;
  };
  /// The input ring's unit of transfer: a chunk of producer events,
  /// flushed at `batch_records` events or on any control event.
  struct InputBatch {
    std::vector<InputEvent> events;
  };

  void decode_worker();
  void score_worker();
  bool submit(InputEvent&& event);
  /// Pushes the pending batch into the input ring. `block` spins until it
  /// fits; otherwise a full ring leaves the batch pending and returns
  /// false. No-op (true) when nothing is pending.
  bool flush_pending(bool block);

  EngineConfig config_;
  core::MinuteBatchSink minute_sink_;
  /// Declared before every ring: rings may hold InputEvents carrying
  /// WireSlots at teardown, and slot destructors recycle into the pool —
  /// reverse destruction order keeps the pool alive until they ran.
  std::unique_ptr<WireBufferPool> wire_pool_;
  std::size_t batch_records_;   ///< effective records per input batch
  InputBatch pending_;          ///< producer thread only
  SpscRing<InputBatch> input_ring_;
  SpscRing<ScoreItem> score_ring_;
  /// Drained input batches flowing back from the decode worker to the
  /// producer so event-vector capacity is reused, not reallocated.
  SpscRing<InputBatch> batch_recycle_;
  std::unique_ptr<ShardedCollector> sharded_;
  std::thread decode_thread_;
  std::thread score_thread_;
  std::atomic<bool> abort_{false};
  bool finished_ = false;  ///< producer thread only

  std::chrono::steady_clock::time_point start_;
  std::atomic<std::uint64_t> wall_ns_final_{0};  ///< frozen at finish()
  std::atomic<std::uint64_t> datagrams_{0};
  std::atomic<std::uint64_t> bgp_updates_{0};
  std::atomic<std::uint64_t> decode_errors_{0};
  std::atomic<std::uint64_t> input_drops_{0};
  std::atomic<std::uint64_t> flows_scored_{0};
  StageCounters decode_;
  StageCounters route_;
  StageCounters score_;
};

}  // namespace scrubber::runtime
