#include "runtime/engine.hpp"

#include "util/check.hpp"

namespace scrubber::runtime {
namespace {

std::uint64_t now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

Engine::Engine(EngineConfig config, core::MinuteBatchSink minute_sink)
    : config_(config),
      minute_sink_(std::move(minute_sink)),
      batch_records_(effective_batch_records(config.batch_records,
                                             config.queue_capacity)),
      input_ring_(batch_ring_slots(config.queue_capacity, batch_records_)),
      score_ring_(std::max<std::size_t>(16, config.queue_capacity / 16)),
      batch_recycle_(batch_ring_slots(config.queue_capacity, batch_records_) +
                     4),
      start_(std::chrono::steady_clock::now()) {
  if (config_.wire_pool_slots > 0) {
    wire_pool_ = std::make_unique<WireBufferPool>(config_.wire_pool_slots,
                                                  config_.wire_slot_bytes);
  }
  pending_.events.reserve(batch_records_);
  ShardedCollectorConfig sharded_config;
  sharded_config.shards = config_.shards;
  sharded_config.collector = config_.collector;
  sharded_config.queue_capacity = config_.queue_capacity;
  sharded_config.batch_records = config_.batch_records;
  sharded_ = std::make_unique<ShardedCollector>(
      sharded_config,
      [this](std::uint32_t minute, std::span<const net::FlowRecord> flows) {
        // Merge thread → score ring. Blocking: merged minutes are already
        // deduplicated work, dropping them would corrupt detector state.
        ScoreItem item;
        item.minute = minute;
        item.flows.assign(flows.begin(), flows.end());
        score_ring_.push_blocking(std::move(item), abort_);
      });
  // Stage-graph topology: one collect worker per configured shard (the
  // sharded collector normalizes 0 to 1), and every stage queue bounded.
  SCRUBBER_ASSERT(sharded_->shards() == std::max<std::size_t>(1, config_.shards),
                  "engine stage graph lost a collect worker");
  SCRUBBER_ASSERT(input_ring_.capacity() >= 1 && score_ring_.capacity() >= 1,
                  "engine stage queues must be bounded and non-empty");
  decode_thread_ = std::thread([this] { decode_worker(); });
  score_thread_ = std::thread([this] { score_worker(); });
}

Engine::~Engine() {
  if (!finished_) {
    // Teardown without flush: stop our workers first (they may be inside
    // sharded_ calls), then let the sharded collector abort its own.
    abort_.store(true, std::memory_order_relaxed);
    if (decode_thread_.joinable()) decode_thread_.join();
    if (score_thread_.joinable()) score_thread_.join();
    sharded_.reset();
  }
}

bool Engine::flush_pending(bool block) {
  if (pending_.events.empty()) return true;
  if (block) {
    input_ring_.push_blocking(std::move(pending_), abort_);
  } else if (!input_ring_.try_push(std::move(pending_))) {
    return false;  // ring full; batch stays pending (try_push left it intact)
  }
  // Prefer a recycled batch (drained by the decode worker; its cleared
  // event vector keeps capacity) over allocating a fresh one. Once the
  // warm-up rounds have minted ring-capacity + in-flight batches, the
  // recycle ring is never empty here and steady state allocates nothing.
  if (!batch_recycle_.try_pop(pending_)) {
    pending_ = InputBatch{};
  }
  pending_.events.clear();
  pending_.events.reserve(batch_records_);
  decode_.note_queue_depth(input_ring_.size() * batch_records_);
  return true;
}

bool Engine::submit(InputEvent&& event) {
  const bool control = event.kind == InputEvent::Kind::kBgp ||
                       event.kind == InputEvent::Kind::kFinish;
  const bool block = config_.backpressure == Backpressure::kBlock || control;
  if (pending_.events.size() >= batch_records_ && !flush_pending(block)) {
    // kDrop with a full ring: shed only the incoming data event. The
    // pending batch is kept and retried on the next submission, so
    // accepted events are never lost and drops count rejected pushes 1:1.
    input_drops_.fetch_add(1, std::memory_order_relaxed);
    decode_.add_drop();
    return false;
  }
  pending_.events.push_back(std::move(event));
  if (control) {
    // Control events cut the batch: BGP ordering relative to data is the
    // submission order, and control is never deferred behind a partial
    // batch (nor ever dropped — the flush blocks under either policy).
    flush_pending(true);
  } else if (pending_.events.size() >= batch_records_) {
    flush_pending(config_.backpressure == Backpressure::kBlock);
  }
  return true;
}

bool Engine::push(net::SflowDatagram datagram) {
  InputEvent event;
  event.kind = InputEvent::Kind::kDatagram;
  event.datagram = std::move(datagram);
  return submit(std::move(event));
}

bool Engine::push_wire(std::vector<std::uint8_t> wire) {
  InputEvent event;
  event.kind = InputEvent::Kind::kWire;
  event.wire = std::move(wire);
  return submit(std::move(event));
}

bool Engine::push_wire(WireSlot slot) {
  InputEvent event;
  event.kind = InputEvent::Kind::kPooledWire;
  event.slot = std::move(slot);
  // On a kDrop rejection the event (and the slot it carries) is destroyed
  // here, which recycles the buffer — a dropped datagram costs nothing.
  return submit(std::move(event));
}

void Engine::push_bgp(bgp::UpdateMessage update, std::uint64_t now_ms) {
  InputEvent event;
  event.kind = InputEvent::Kind::kBgp;
  event.update = std::move(update);
  event.now_ms = now_ms;
  submit(std::move(event));
}

void Engine::finish() {
  if (finished_) return;
  finished_ = true;
  InputEvent fin;
  fin.kind = InputEvent::Kind::kFinish;
  submit(std::move(fin));
  decode_thread_.join();  // returns once the sharded collector finished
  score_thread_.join();   // returns once the finish marker crossed scoring
  // Counter coherence across the stage graph, checked at the one point
  // where every queue is provably drained (all workers joined):
  //   decode out = datagrams + BGP updates (errors and the finish marker
  //                never leave the stage),
  //   score saw every merged minute exactly once,
  //   every flow the merge emitted reached the sink.
  SCRUBBER_ASSERT(decode_.items_out() ==
                      datagrams_.load(std::memory_order_relaxed) +
                          bgp_updates_.load(std::memory_order_relaxed),
                  "decode stage accounting leak");
  SCRUBBER_ASSERT(score_.items_in() == sharded_->minutes_merged(),
                  "score stage missed or duplicated a minute batch");
  SCRUBBER_ASSERT(flows_scored_.load(std::memory_order_relaxed) ==
                      sharded_->flows_emitted(),
                  "flows lost or duplicated between merge and score");
  SCRUBBER_ASSERT(input_ring_.empty() && score_ring_.empty(),
                  "engine finished with items stranded in a stage queue");
  wall_ns_final_.store(
      static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - start_)
              .count()),
      std::memory_order_relaxed);
}

void Engine::decode_worker() {
  InputBatch batch;
  for (;;) {
    if (!input_ring_.try_pop(batch)) {
      if (abort_.load(std::memory_order_relaxed)) return;
      std::this_thread::yield();
      continue;
    }
    for (InputEvent& event : batch.events) {
      decode_.add_in();
      switch (event.kind) {
        case InputEvent::Kind::kWire:
        case InputEvent::Kind::kPooledWire: {
          // Fused decode→route: walk the wire bytes in place and append
          // samples straight into per-shard batches — no SflowDatagram
          // materialization, no route-stage copy. The walk cost lands in
          // the decode stage; the route stage's busy time is zero on this
          // path (routing happens inside the walk).
          // scrubber-hot-begin
          const std::uint64_t begin = now_ns();
          const std::span<const std::uint8_t> wire =
              event.kind == InputEvent::Kind::kPooledWire
                  ? event.slot.bytes()
                  : std::span<const std::uint8_t>(event.wire.data(),
                                                  event.wire.size());
          if (config_.use_oracle_decoder) {
            // Bench/test comparison path: the throwing oracle decoder,
            // then the ordinary route step. Bit-identical output.
            bool decoded = true;
            try {
              // NOLINTNEXTLINE(scrubber-transitive): oracle decoder comparison path — materializes an SflowDatagram by design; gated behind use_oracle_decoder for bench/test parity only
              event.datagram = net::SflowDatagram::decode(wire);
            } catch (const net::SflowDecodeError&) {
              decoded = false;
            }
            if (decoded) {
              datagrams_.fetch_add(1, std::memory_order_relaxed);
              sharded_->ingest(event.datagram);
              decode_.add_out();
              route_.add_in();
              route_.add_out();
            } else {
              decode_errors_.fetch_add(1, std::memory_order_relaxed);
            }
          } else {
            // Appends into preallocated, recycled per-shard batches —
            // steady-state growth is amortized to zero (proved by the
            // SCRUBBER_CHECKED counting-allocator test).
            const net::DecodeStatus status = sharded_->ingest_wire(wire);
            if (status == net::DecodeStatus::kOk) {
              datagrams_.fetch_add(1, std::memory_order_relaxed);
              decode_.add_out();
              route_.add_in();
              route_.add_out();
            } else {
              decode_errors_.fetch_add(1, std::memory_order_relaxed);
            }
          }
          event.slot.release();  // recycle the pooled buffer (no-op for kWire)
          decode_.add_busy_ns(now_ns() - begin);
          // scrubber-hot-end
          break;
        }
        case InputEvent::Kind::kDatagram: {
          const std::uint64_t begin = now_ns();
          datagrams_.fetch_add(1, std::memory_order_relaxed);
          sharded_->ingest(event.datagram);
          decode_.add_out();
          route_.add_in();
          route_.add_out();
          route_.add_busy_ns(now_ns() - begin);
          break;
        }
        case InputEvent::Kind::kBgp: {
          const std::uint64_t begin = now_ns();
          bgp_updates_.fetch_add(1, std::memory_order_relaxed);
          sharded_->ingest_bgp(event.update, event.now_ms);
          decode_.add_out();
          route_.add_busy_ns(now_ns() - begin);
          break;
        }
        case InputEvent::Kind::kFinish: {
          // Always the last event of its batch: submit() cuts the batch
          // at every control event.
          sharded_->finish();  // all minute batches now sit in the score ring
          // finish() joined the merge thread, so the score ring's producer
          // endpoint hands off to this thread for the final sentinel.
          score_ring_.adopt_producer();
          ScoreItem fin;
          fin.finish = true;
          score_ring_.push_blocking(std::move(fin), abort_);
          return;
        }
      }
    }
    // Hand the drained batch back to the producer: clear() keeps the
    // event vector's capacity, so steady-state batching allocates
    // nothing. A full recycle ring just drops the batch.
    batch.events.clear();
    (void)batch_recycle_.try_push(std::move(batch));
  }
}

void Engine::score_worker() {
  ScoreItem item;
  for (;;) {
    if (!score_ring_.try_pop(item)) {
      if (abort_.load(std::memory_order_relaxed)) return;
      std::this_thread::yield();
      continue;
    }
    if (item.finish) return;
    score_.add_in();
    score_.note_queue_depth(score_ring_.size());
    const std::uint64_t begin = now_ns();
    if (minute_sink_) {
      minute_sink_(item.minute, std::span<const net::FlowRecord>(
                                    item.flows.data(), item.flows.size()));
    }
    score_.add_busy_ns(now_ns() - begin);  // per-minute scoring latency
    score_.add_out();
    flows_scored_.fetch_add(item.flows.size(), std::memory_order_relaxed);
  }
}

EngineSnapshot Engine::stats() const {
  EngineSnapshot snap;
  const std::uint64_t frozen = wall_ns_final_.load(std::memory_order_relaxed);
  snap.wall_seconds =
      frozen != 0
          ? static_cast<double>(frozen) * 1e-9
          : std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          start_)
                .count();
  snap.datagrams = datagrams_.load(std::memory_order_relaxed);
  snap.bgp_updates = bgp_updates_.load(std::memory_order_relaxed);
  snap.decode_errors = decode_errors_.load(std::memory_order_relaxed);
  snap.input_drops = input_drops_.load(std::memory_order_relaxed);
  snap.late_drops = sharded_->late_datagrams();
  snap.flows_out = flows_scored_.load(std::memory_order_relaxed);
  snap.minutes_merged = sharded_->minutes_merged();
  if (wire_pool_) {
    snap.pool_slots = wire_pool_->slots();
    snap.pool_in_use = wire_pool_->in_use();
    snap.pool_highwater = wire_pool_->highwater();
    snap.pool_exhausted = wire_pool_->exhausted();
  }
  StageSnapshot collect = sharded_->collect_snapshot();
  snap.samples = collect.items_in;
  snap.stages.push_back(decode_.snapshot("decode"));
  snap.stages.push_back(route_.snapshot("route"));
  snap.stages.push_back(std::move(collect));
  snap.stages.push_back(sharded_->merge_snapshot());
  snap.stages.push_back(score_.snapshot("score"));
  return snap;
}

}  // namespace scrubber::runtime
