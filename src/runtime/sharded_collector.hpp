#pragma once
// Sharded, multi-threaded capture front-end.
//
// N core::Collector shards — keyed by hash(dst IP), so every flow key and
// every potential victim lives wholly inside one shard — each run on their
// own worker thread behind a bounded SPSC ring. A single merge thread
// re-assembles the shards' closed minute batches behind a deterministic
// minute barrier and emits them in minute order.
//
// Determinism argument (see DESIGN.md "Runtime"):
//   1. Sharding by destination IP partitions FlowKeys, so per-flow
//      aggregation (sum of packets/bytes, OR of TCP flags) is identical
//      to the single-collector path regardless of shard count.
//   2. BGP updates are broadcast to every shard in stream order and the
//      BlackholeRegistry is time-indexed, so labels computed at
//      minute-close match the single-collector path.
//   3. The router re-broadcasts its watermark as punctuation whenever it
//      advances, so a shard closes minute M at the same logical stream
//      position the single collector would — never earlier, and the merge
//      barrier (all shards past M) means never later than the sink sees.
//   4. The merge stage sorts each re-assembled minute canonically
//      (canonical_flow_less, a total order over every FlowRecord field),
//      erasing shard interleaving and thread timing from the output.
// Hence: for the same input stream, the emitted labeled minute batches
// are identical for any shard count — equal to the 1-shard path, which
// is itself the canonically-ordered single-threaded core::Collector
// output. tests/runtime/sharded_collector_test.cpp proves this.
//
// Threading contract: ingest / ingest_bgp / finish must be called from
// ONE producer thread (they feed SPSC rings). The minute sink runs on the
// merge thread.

#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <thread>
#include <vector>

#include "core/collector.hpp"
#include "runtime/batch.hpp"
#include "runtime/counters.hpp"
#include "runtime/ring.hpp"

namespace scrubber::runtime {

/// Total order over every FlowRecord field; the merge stage's canonical
/// emission order (and the order tests use to compare pipelines).
[[nodiscard]] bool canonical_flow_less(const net::FlowRecord& a,
                                       const net::FlowRecord& b) noexcept;

/// Shard index of a destination IP (splitmix64 of the address, modulo
/// `shards`) — stable across runs, uniform across shards.
[[nodiscard]] std::size_t shard_of(net::Ipv4Address dst,
                                   std::size_t shards) noexcept;

struct ShardedCollectorConfig {
  std::size_t shards = 1;              ///< number of collector shards
  core::Collector::Config collector{}; ///< per-shard collector config
  std::size_t queue_capacity = 1024;   ///< per-shard ring + merge queue bound (records)
  /// Target samples per shard-ring batch (see batch.hpp). The router
  /// accumulates each shard's sub-datagrams until the batch carries this
  /// many samples, and flushes every pending batch before broadcasting
  /// any control message — so each shard observes the exact datagram /
  /// BGP / punctuation sequence of the unbatched router.
  std::size_t batch_records = kDefaultBatchRecords;
};

/// One source datagram's contribution to one shard: the header fields the
/// collector needs (uptime_ms drives minute binning and late-drop
/// accounting, so samples are never merged across source datagrams) plus
/// a span into ShardMessage::samples. POD — recycled batches keep their
/// capacity across clear().
struct ShardSubDatagram {
  net::Ipv4Address agent;
  std::uint32_t sub_agent_id = 0;
  std::uint32_t sequence = 0;
  std::uint32_t uptime_ms = 0;
  std::uint32_t first_sample = 0;  ///< index into ShardMessage::samples
  std::uint32_t sample_count = 0;
};

/// Work item delivered to one shard worker.
struct ShardMessage {
  enum class Kind : std::uint8_t { kData, kBgp, kAdvance, kFinish };
  Kind kind = Kind::kData;
  /// kData: this shard's sub-datagrams in stream order; sub-datagram i
  /// owns samples [first_sample, first_sample + sample_count). Flat
  /// layout (two vectors, no per-datagram vector) so the fused
  /// decode→route path appends samples with zero per-datagram
  /// allocation and recycled messages keep both capacities.
  std::vector<ShardSubDatagram> subs;
  std::vector<net::SflowFlowSample> samples;
  bgp::UpdateMessage update;    ///< kBgp
  std::uint64_t now_ms = 0;     ///< kBgp: observation time
  std::uint32_t minute = 0;     ///< kAdvance: router watermark
};

/// Message from a shard worker to the merge thread.
struct MergeMessage {
  enum class Kind : std::uint8_t { kBatch, kHorizon };
  Kind kind = Kind::kBatch;
  std::size_t shard = 0;
  std::uint32_t minute = 0;  ///< kBatch: batch minute; kHorizon: flush horizon
  std::vector<net::FlowRecord> flows;  ///< kBatch payload
};

/// N collector shards + deterministic minute-barrier merge.
class ShardedCollector {
 public:
  ShardedCollector(ShardedCollectorConfig config, core::MinuteBatchSink sink);
  ~ShardedCollector();

  ShardedCollector(const ShardedCollector&) = delete;
  ShardedCollector& operator=(const ShardedCollector&) = delete;

  /// Routes one datagram's samples to their shards and broadcasts the
  /// watermark when it advances. Blocks while shard rings are full.
  void ingest(const net::SflowDatagram& datagram);

  /// Fused decode→route: walks the sFlow wire bytes in place and appends
  /// each sample straight into its shard's open batch — no SflowDatagram
  /// materialization, no route-stage copy. On a decode error the partial
  /// route is rolled back (shard batches are exactly as if the datagram
  /// never arrived, matching the throwing-decode path where the error
  /// fires before ingest) and the status is returned. Produces
  /// bit-identical shard streams to decode-then-ingest() for any wire.
  [[nodiscard]] net::DecodeStatus ingest_wire(
      std::span<const std::uint8_t> wire);

  /// Broadcasts one BGP update to every shard (each keeps a full registry).
  void ingest_bgp(const bgp::UpdateMessage& update, std::uint64_t now_ms);

  /// Flushes every shard, drains the merge, joins all threads. After this
  /// returns the sink has received every minute batch. Idempotent.
  void finish();

  [[nodiscard]] std::size_t shards() const noexcept { return shards_.size(); }
  [[nodiscard]] std::uint64_t flows_emitted() const noexcept {
    return flows_emitted_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t minutes_merged() const noexcept {
    return minutes_merged_.load(std::memory_order_relaxed);
  }
  /// Sum of per-shard late-datagram drops (refreshed at punctuation).
  [[nodiscard]] std::uint64_t late_datagrams() const noexcept;

  [[nodiscard]] StageSnapshot collect_snapshot() const {
    return collect_.snapshot("collect");
  }
  [[nodiscard]] StageSnapshot merge_snapshot() const;

 private:
  struct Shard {
    explicit Shard(std::size_t capacity)
        : ring(capacity), recycle(capacity + 4) {}
    SpscRing<ShardMessage> ring;
    /// Drained kData messages flowing back to the router so batch
    /// capacity is reused instead of reallocated (worker pushes, router
    /// pops — SPSC in the reverse direction).
    SpscRing<ShardMessage> recycle;
    std::atomic<std::uint64_t> late{0};
    std::thread thread;
  };

  void shard_worker(std::size_t index);
  void merge_worker();
  /// Flushes every pending data batch, then delivers `message` to every
  /// shard — control never overtakes (or is overtaken by) buffered data.
  void broadcast(ShardMessage message);
  /// Pushes shard `s`'s pending batch into its ring (blocking) and
  /// resets the accumulator. No-op when empty.
  void flush_shard(std::size_t s);
  /// Replacement accumulator for shard `s`: a recycled kData message
  /// (cleared, capacity kept) when one is available, else a fresh one.
  [[nodiscard]] ShardMessage fresh_data_message(std::size_t s);

  // --- route cursor (producer thread only) ---
  // ingest() and ingest_wire() drive the same four-step cursor, so both
  // paths produce bit-identical shard streams: begin stamps the datagram
  // header, sample appends one sample to its shard (opening a
  // sub-datagram on first touch), commit does the post-datagram flush /
  // watermark work, rollback unwinds a partially routed datagram.
  void route_begin(net::Ipv4Address agent, std::uint32_t sub_agent_id,
                   std::uint32_t sequence, std::uint32_t uptime_ms);
  void route_sample(const net::SflowFlowSample& sample);
  void route_commit(std::uint32_t uptime_ms, std::size_t sample_total);
  void route_rollback();

  ShardedCollectorConfig config_;
  core::MinuteBatchSink sink_;
  std::vector<std::unique_ptr<Shard>> shards_;
  MpscQueue<MergeMessage> merge_queue_;
  std::thread merge_thread_;
  std::size_t batch_records_ = kDefaultBatchRecords;  ///< effective batch size
  // Router accumulators (producer thread only): one open data batch per
  // shard plus its sample count, and a per-ingest stamp marking whether
  // the current source datagram already opened a sub-datagram there.
  std::vector<ShardMessage> pending_;
  std::vector<std::size_t> pending_samples_;
  std::vector<std::uint64_t> sub_mark_;
  std::uint64_t ingest_seq_ = 0;
  // Header of the datagram currently being routed (route_begin → commit).
  net::Ipv4Address route_agent_{};
  std::uint32_t route_sub_agent_id_ = 0;
  std::uint32_t route_sequence_ = 0;
  std::uint32_t route_uptime_ms_ = 0;
  std::uint32_t watermark_min_ = 0;  ///< router watermark (producer thread)
  bool finished_ = false;            ///< producer thread only
  std::atomic<bool> abort_{false};
  std::atomic<std::uint64_t> flows_emitted_{0};
  std::atomic<std::uint64_t> minutes_merged_{0};
  StageCounters collect_;
  StageCounters merge_;
};

}  // namespace scrubber::runtime
