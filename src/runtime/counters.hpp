#pragma once
// Relaxed-atomic telemetry for the streaming runtime.
//
// Every stage of the engine (decode, shard-route, collect, merge, score)
// owns one StageCounters block. Workers bump the counters with relaxed
// atomics on the hot path — ordering between counters does not matter,
// only eventual visibility — and snapshot() materializes a plain struct
// for the daemon's periodic stats line and the final report. Counters are
// monotonically increasing, so a snapshot is a consistent lower bound
// even while workers keep running.

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace scrubber::runtime {

/// Point-in-time copy of one stage's counters.
struct StageSnapshot {
  std::string name;
  std::uint64_t items_in = 0;    ///< work items entering the stage
  std::uint64_t items_out = 0;   ///< work items leaving the stage
  std::uint64_t drops = 0;       ///< items discarded under backpressure
  std::uint64_t queue_highwater = 0;  ///< deepest input-queue occupancy seen
  double busy_seconds = 0.0;     ///< time spent processing (vs. waiting)

  /// Fraction of `wall_seconds` this stage spent doing work.
  [[nodiscard]] double utilization(double wall_seconds) const noexcept {
    return wall_seconds <= 0.0 ? 0.0 : busy_seconds / wall_seconds;
  }
};

/// One stage's live counters (shared between a worker and snapshotters).
class StageCounters {
 public:
  void add_in(std::uint64_t n = 1) noexcept {
    in_.fetch_add(n, std::memory_order_relaxed);
  }
  void add_out(std::uint64_t n = 1) noexcept {
    out_.fetch_add(n, std::memory_order_relaxed);
  }
  void add_drop(std::uint64_t n = 1) noexcept {
    drops_.fetch_add(n, std::memory_order_relaxed);
  }
  void add_busy_ns(std::uint64_t ns) noexcept {
    busy_ns_.fetch_add(ns, std::memory_order_relaxed);
  }
  /// Records an observed input-queue depth, keeping the maximum.
  void note_queue_depth(std::uint64_t depth) noexcept {
    std::uint64_t seen = highwater_.load(std::memory_order_relaxed);
    while (depth > seen && !highwater_.compare_exchange_weak(
                               seen, depth, std::memory_order_relaxed)) {
    }
  }

  [[nodiscard]] std::uint64_t drops() const noexcept {
    return drops_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t items_in() const noexcept {
    return in_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t items_out() const noexcept {
    return out_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] StageSnapshot snapshot(std::string name) const;

 private:
  std::atomic<std::uint64_t> in_{0};
  std::atomic<std::uint64_t> out_{0};
  std::atomic<std::uint64_t> drops_{0};
  std::atomic<std::uint64_t> highwater_{0};
  std::atomic<std::uint64_t> busy_ns_{0};
};

/// Engine-wide snapshot: totals plus one entry per stage.
struct EngineSnapshot {
  double wall_seconds = 0.0;
  std::uint64_t datagrams = 0;      ///< sFlow datagrams accepted
  std::uint64_t samples = 0;        ///< packet samples routed to shards
  std::uint64_t bgp_updates = 0;    ///< BGP updates broadcast
  std::uint64_t decode_errors = 0;  ///< malformed wire datagrams
  std::uint64_t input_drops = 0;    ///< producer-side drops (kDrop policy)
  std::uint64_t late_drops = 0;     ///< shard-side late-datagram drops
  std::uint64_t flows_out = 0;      ///< labeled flows delivered to the sink
  std::uint64_t minutes_merged = 0; ///< minute batches emitted in order
  // Wire buffer pool occupancy (all zero when the pool is disabled).
  std::uint64_t pool_slots = 0;     ///< configured pool capacity
  std::uint64_t pool_in_use = 0;    ///< slots currently in flight
  std::uint64_t pool_highwater = 0; ///< deepest in-flight occupancy seen
  std::uint64_t pool_exhausted = 0; ///< acquires that found the pool empty
  std::vector<StageSnapshot> stages;

  [[nodiscard]] double flows_per_sec() const noexcept {
    return wall_seconds <= 0.0 ? 0.0
                               : static_cast<double>(flows_out) / wall_seconds;
  }

  /// One-line periodic stats string (the `ixpd` heartbeat).
  [[nodiscard]] std::string stats_line() const;

  /// Multi-line final report with per-stage utilization.
  [[nodiscard]] std::string report() const;
};

}  // namespace scrubber::runtime
