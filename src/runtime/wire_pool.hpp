#pragma once
// Fixed-capacity wire buffer pool (DESIGN.md §15).
//
// The zero-allocation ingest path scatters received datagrams straight
// into pooled slots: the receiver acquires a slot, the kernel writes the
// wire bytes into it, a WireSlot handle (pool pointer + index, no heap)
// travels the input ring, and the decode worker releases the slot after
// the in-place walk. Capacity is fixed at construction — under flood the
// pool runs dry and the receiver falls back to counted copies instead of
// growing, so ingest memory is bounded no matter what the wire does.
//
// Concurrency shape: ONE acquiring thread (the receiver), any number of
// releasing threads (in practice the decode worker, plus teardown paths
// destroying stranded handles). Releases push onto a Treiber free stack;
// the acquirer detaches the whole stack at once into a private LIFO
// cache, so there is no ABA window (pop-all, never pop-one) and the
// steady state touches the shared head once per drained batch. Both
// paths are lock-free and allocation-free; the only allocations are the
// three arrays in the constructor.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>

#include "util/check.hpp"

namespace scrubber::runtime {

class WireBufferPool;

/// Move-only RAII handle to one pooled wire buffer. An empty handle
/// (default-constructed, moved-from, or acquired from a dry pool) is
/// falsy and releases nothing.
class WireSlot {
 public:
  WireSlot() noexcept = default;
  WireSlot(WireSlot&& other) noexcept
      : pool_(other.pool_), index_(other.index_), size_(other.size_) {
    other.pool_ = nullptr;
  }
  WireSlot& operator=(WireSlot&& other) noexcept {
    if (this != &other) {
      release();
      pool_ = other.pool_;
      index_ = other.index_;
      size_ = other.size_;
      other.pool_ = nullptr;
    }
    return *this;
  }
  WireSlot(const WireSlot&) = delete;
  WireSlot& operator=(const WireSlot&) = delete;
  ~WireSlot() { release(); }

  [[nodiscard]] explicit operator bool() const noexcept {
    return pool_ != nullptr;
  }

  [[nodiscard]] inline std::uint8_t* data() noexcept;
  [[nodiscard]] inline const std::uint8_t* data() const noexcept;
  [[nodiscard]] inline std::size_t capacity() const noexcept;

  /// Bytes of the datagram currently held (set by the receiver).
  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  void set_size(std::size_t size) noexcept {
    size_ = static_cast<std::uint32_t>(size);
  }

  [[nodiscard]] std::span<const std::uint8_t> bytes() const noexcept {
    return {data(), size()};
  }

  /// Returns the buffer to the pool; the handle becomes empty.
  inline void release() noexcept;

 private:
  friend class WireBufferPool;
  WireSlot(WireBufferPool* pool, std::uint32_t index) noexcept
      : pool_(pool), index_(index) {}

  WireBufferPool* pool_ = nullptr;
  std::uint32_t index_ = 0;
  std::uint32_t size_ = 0;
};

/// Pool of `slots` fixed-size wire buffers. See the file comment for the
/// concurrency contract (one acquirer, many releasers).
class WireBufferPool {
 public:
  WireBufferPool(std::size_t slots, std::size_t slot_bytes)
      : slots_(slots),
        slot_bytes_(slot_bytes),
        storage_(slots > 0 ? std::make_unique<std::uint8_t[]>(slots * slot_bytes)
                           : nullptr),
        next_(slots > 0 ? std::make_unique<std::atomic<std::uint32_t>[]>(slots)
                        : nullptr),
        cache_(slots > 0 ? std::make_unique<std::uint32_t[]>(slots) : nullptr),
        cache_count_(slots) {
    // Seed the acquirer cache with every slot (low indices handed out
    // first) so startup never touches the shared free stack.
    for (std::size_t i = 0; i < slots_; ++i) {
      cache_[i] = static_cast<std::uint32_t>(slots_ - 1 - i);
    }
  }

  WireBufferPool(const WireBufferPool&) = delete;
  WireBufferPool& operator=(const WireBufferPool&) = delete;

  [[nodiscard]] std::size_t slots() const noexcept { return slots_; }
  [[nodiscard]] std::size_t slot_bytes() const noexcept { return slot_bytes_; }

  // The acquire/release pair runs once per received datagram.
  // scrubber-hot-begin

  /// Acquires a free slot; empty handle when the pool is dry (counted in
  /// exhausted()). Must be called from one thread only.
  [[nodiscard]] WireSlot try_acquire() noexcept {
    SCRUBBER_ASSERT_THREAD(acquire_owner_, "WireBufferPool acquire endpoint");
    if (cache_count_ == 0) {
      // Detach the whole free stack in one exchange (pop-all: no ABA).
      std::uint32_t head =
          free_head_.exchange(kNil, std::memory_order_acquire);
      while (head != kNil) {
        cache_[cache_count_++] = head;
        head = next_[head].load(std::memory_order_relaxed);
      }
    }
    if (cache_count_ == 0) {
      exhausted_.fetch_add(1, std::memory_order_relaxed);
      return WireSlot{};
    }
    const std::uint32_t index = cache_[--cache_count_];
    const std::uint64_t used =
        in_use_.fetch_add(1, std::memory_order_relaxed) + 1;
    std::uint64_t seen = highwater_.load(std::memory_order_relaxed);
    while (used > seen &&
           !highwater_.compare_exchange_weak(seen, used,
                                             std::memory_order_relaxed,
                                             std::memory_order_relaxed)) {
    }
    return WireSlot{this, index};
  }

  /// Returns slot `index` to the free stack. Any thread.
  void recycle(std::uint32_t index) noexcept {
    std::uint32_t head = free_head_.load(std::memory_order_relaxed);
    do {
      next_[index].store(head, std::memory_order_relaxed);
    } while (!free_head_.compare_exchange_weak(head, index,
                                               std::memory_order_release,
                                               std::memory_order_relaxed));
    in_use_.fetch_sub(1, std::memory_order_relaxed);
  }

  // scrubber-hot-end

  /// Slots currently handed out (exact at quiescence).
  [[nodiscard]] std::uint64_t in_use() const noexcept {
    return in_use_.load(std::memory_order_relaxed);
  }
  /// Deepest occupancy ever observed.
  [[nodiscard]] std::uint64_t highwater() const noexcept {
    return highwater_.load(std::memory_order_relaxed);
  }
  /// try_acquire() calls that found the pool dry (each one is a datagram
  /// the receiver had to copy or drop).
  [[nodiscard]] std::uint64_t exhausted() const noexcept {
    return exhausted_.load(std::memory_order_relaxed);
  }

 private:
  friend class WireSlot;
  static constexpr std::uint32_t kNil = 0xFFFFFFFFU;

  [[nodiscard]] std::uint8_t* slot_data(std::uint32_t index) noexcept {
    return storage_.get() + static_cast<std::size_t>(index) * slot_bytes_;
  }

  std::size_t slots_;
  std::size_t slot_bytes_;
  std::unique_ptr<std::uint8_t[]> storage_;
  std::unique_ptr<std::atomic<std::uint32_t>[]> next_;  ///< free-stack links
  std::unique_ptr<std::uint32_t[]> cache_;  ///< acquirer-private LIFO
  std::size_t cache_count_ = 0;
  alignas(64) std::atomic<std::uint32_t> free_head_{kNil};
  std::atomic<std::uint64_t> in_use_{0};
  std::atomic<std::uint64_t> highwater_{0};
  std::atomic<std::uint64_t> exhausted_{0};
#if defined(SCRUBBER_CHECKED)
  util::ThreadOwner acquire_owner_;
#endif
};

inline std::uint8_t* WireSlot::data() noexcept {
  return pool_->slot_data(index_);
}
inline const std::uint8_t* WireSlot::data() const noexcept {
  return pool_->slot_data(index_);
}
inline std::size_t WireSlot::capacity() const noexcept {
  return pool_->slot_bytes();
}
inline void WireSlot::release() noexcept {
  if (pool_ == nullptr) return;
  pool_->recycle(index_);
  pool_ = nullptr;
}

}  // namespace scrubber::runtime
