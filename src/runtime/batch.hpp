#pragma once
// Batch sizing policy for the streaming runtime.
//
// Every ring in the stage graph moves fixed-capacity batches, not single
// records: one SPSC push/pop (an acquire/release pair plus a shared cache
// line) is amortized over `batch_records` records instead of being paid
// per record. The producer side of each edge accumulates records into a
// pending batch and flushes it when full — or earlier, whenever ordering
// demands it (control events, watermark punctuation, finish).
//
// Two knobs interact:
//   queue_capacity  — the stage-queue bound, still expressed in RECORDS so
//                     existing configs keep their memory meaning;
//   batch_records   — the target batch size (default 512, the middle of
//                     the 256–1024 sweet spot measured by
//                     bench_runtime_throughput).
//
// effective_batch_records() clamps the target so a ring always holds at
// least a few in-flight batches: with tiny test queues (capacity 8) the
// batch degenerates towards single-record transfer and backpressure/drop
// semantics stay observable; with production queues (4096) the full batch
// size is used.

#include <algorithm>
#include <cstddef>

namespace scrubber::runtime {

/// Default records per ring batch (bench-derived, see DESIGN.md §8).
inline constexpr std::size_t kDefaultBatchRecords = 512;

/// Records per batch actually used for a queue bound of `queue_capacity`
/// records: at least 1, at most queue_capacity/4 so the ring pipelines
/// four or more batches between producer and consumer.
[[nodiscard]] constexpr std::size_t effective_batch_records(
    std::size_t batch_records, std::size_t queue_capacity) noexcept {
  const std::size_t requested =
      batch_records == 0 ? kDefaultBatchRecords : batch_records;
  const std::size_t cap = std::max<std::size_t>(1, queue_capacity / 4);
  return std::clamp<std::size_t>(requested, 1, cap);
}

/// Ring slot count holding batches such that total buffered records stay
/// in the order of `queue_capacity` (minimum 4 slots to pipeline).
[[nodiscard]] constexpr std::size_t batch_ring_slots(
    std::size_t queue_capacity, std::size_t batch_records) noexcept {
  const std::size_t per = std::max<std::size_t>(1, batch_records);
  return std::max<std::size_t>(4, queue_capacity / per);
}

}  // namespace scrubber::runtime
