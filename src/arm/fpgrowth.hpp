#pragma once
// FP-Growth frequent itemset mining [Han, Pei & Yin 2000] and association
// rule generation — the rule mining engine of Step 1 (§5.1.1).
//
// Transactions are compact item vectors; the miner builds an FP-tree of
// frequency-ordered items and recursively mines conditional trees. Rule
// generation enumerates, for each frequent itemset, all single-item
// consequents (the paper's pipeline later keeps only consequent ==
// {blackhole}) and computes antecedent support and confidence.

#include <cstdint>
#include <vector>

#include "arm/item.hpp"

namespace scrubber::arm {

/// A frequent itemset with its absolute support count.
struct FrequentItemset {
  std::vector<Item> items;  // sorted
  std::uint64_t count = 0;

  friend bool operator==(const FrequentItemset&, const FrequentItemset&) =
      default;
};

/// An association rule A -> C with the paper's metrics: `support` is the
/// antecedent support s (share of transactions containing A), `confidence`
/// is c = P(C | A).
struct MinedRule {
  std::vector<Item> antecedent;  // sorted
  Item consequent;
  double support = 0.0;
  double confidence = 0.0;

  friend bool operator==(const MinedRule&, const MinedRule&) = default;
};

/// FP-Growth configuration.
struct FpGrowthParams {
  double min_support = 0.01;      ///< minimum itemset support (fraction)
  double min_confidence = 0.8;    ///< minimum rule confidence
  std::size_t max_itemset_size = 6;  ///< cap on mined itemset cardinality
};

/// Mines all frequent itemsets from the transactions.
[[nodiscard]] std::vector<FrequentItemset> mine_frequent_itemsets(
    const std::vector<Transaction>& transactions, const FpGrowthParams& params);

/// Generates association rules from frequent itemsets: every single-item
/// consequent split with confidence >= min_confidence.
[[nodiscard]] std::vector<MinedRule> generate_rules(
    const std::vector<FrequentItemset>& itemsets, std::uint64_t n_transactions,
    const FpGrowthParams& params);

/// Convenience: mine itemsets and generate rules in one call.
[[nodiscard]] std::vector<MinedRule> mine_rules(
    const std::vector<Transaction>& transactions, const FpGrowthParams& params);

}  // namespace scrubber::arm
