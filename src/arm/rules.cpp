#include "arm/rules.hpp"

#include <algorithm>
#include <cstdio>
#include <unordered_set>

#include "util/rng.hpp"

namespace scrubber::arm {
namespace {

/// Parses an item from its to_string() form (inverse of Item::to_string).
std::optional<Item> item_from_string(std::string_view text) {
  const auto eq = text.find('=');
  const std::string_view key = text.substr(0, eq);
  const std::string_view val =
      eq == std::string_view::npos ? std::string_view{} : text.substr(eq + 1);
  auto parse_value = [&]() -> std::uint32_t {
    std::uint32_t v = 0;
    for (const char c : val) {
      if (c < '0' || c > '9') break;
      v = v * 10 + static_cast<std::uint32_t>(c - '0');
    }
    return v;
  };
  if (key == "blackhole") return kBlackholeItem;
  if (key == "fragment") return Item(Attribute::kFragment, 1);
  if (key == "protocol") return Item(Attribute::kProtocol, parse_value());
  if (key == "port_src") {
    if (!val.empty() && val.front() == '~') return Item(Attribute::kSrcPortOther, 0);
    return Item(Attribute::kSrcPort, parse_value());
  }
  if (key == "port_dst") {
    if (!val.empty() && val.front() == '~') return Item(Attribute::kDstPortOther, 0);
    return Item(Attribute::kDstPort, parse_value());
  }
  if (key == "packet_size") {
    // "(400,500]" -> bucket 4.
    if (val.size() < 2 || val.front() != '(') return std::nullopt;
    std::uint32_t lo = 0;
    for (std::size_t i = 1; i < val.size() && val[i] >= '0' && val[i] <= '9'; ++i)
      lo = lo * 10 + static_cast<std::uint32_t>(val[i] - '0');
    return Item(Attribute::kPacketSize, lo / kPacketSizeBucket);
  }
  return std::nullopt;
}

}  // namespace

std::string_view rule_status_name(RuleStatus status) noexcept {
  switch (status) {
    case RuleStatus::kStaging: return "staging";
    case RuleStatus::kAccepted: return "accept";
    case RuleStatus::kDeclined: return "decline";
  }
  return "?";
}

std::optional<RuleStatus> rule_status_from(std::string_view name) noexcept {
  if (name == "staging") return RuleStatus::kStaging;
  if (name == "accept") return RuleStatus::kAccepted;
  if (name == "decline") return RuleStatus::kDeclined;
  return std::nullopt;
}

bool TaggingRule::matches(const Transaction& header_items) const {
  // Antecedents and header items are sorted; subset check via includes.
  // The blackhole item never appears in header items, so a rule whose
  // antecedent accidentally contains it can never match.
  return std::includes(header_items.begin(), header_items.end(),
                       rule.antecedent.begin(), rule.antecedent.end());
}

std::string TaggingRule::antecedent_string() const {
  std::string out;
  for (const Item item : rule.antecedent) {
    if (!out.empty()) out += " ";
    out += item.to_string();
  }
  return out;
}

std::string rule_id(const std::vector<Item>& antecedent) {
  std::uint64_t h = 0x9d39f1a2b4c5d6e7ULL;
  for (const Item item : antecedent) {
    h = util::mix64(h ^ item.packed());
  }
  char buf[16];
  std::snprintf(buf, sizeof buf, "%08x", static_cast<std::uint32_t>(h));
  return buf;
}

std::vector<MinedRule> keep_blackhole_consequent(std::vector<MinedRule> rules) {
  std::erase_if(rules, [](const MinedRule& rule) {
    return rule.consequent != kBlackholeItem;
  });
  return rules;
}

std::vector<MinedRule> minimize_rules(std::vector<MinedRule> rules,
                                      double loss_confidence,
                                      double loss_support) {
  // Algorithm 1: iterate pairwise until no more rules are dispensable.
  while (true) {
    std::vector<bool> remove(rules.size(), false);
    for (std::size_t i = 0; i < rules.size(); ++i) {
      if (remove[i]) continue;
      for (std::size_t j = 0; j < rules.size(); ++j) {
        if (i == j || remove[j]) continue;
        const auto& a_i = rules[i].antecedent;
        const auto& a_j = rules[j].antecedent;
        // A_i must be a *proper* subset of A_j.
        if (a_i.size() >= a_j.size()) continue;
        if (!std::includes(a_j.begin(), a_j.end(), a_i.begin(), a_i.end()))
          continue;
        const bool confidence_ok =
            rules[i].confidence - rules[j].confidence < loss_confidence;
        const bool support_ok = rules[i].support - rules[j].support < loss_support;
        if (confidence_ok && support_ok) {
          remove[i] = true;
          break;
        }
      }
    }
    bool any = false;
    for (const bool r : remove) any = any || r;
    if (!any) break;
    std::vector<MinedRule> kept;
    kept.reserve(rules.size());
    for (std::size_t k = 0; k < rules.size(); ++k) {
      if (!remove[k]) kept.push_back(std::move(rules[k]));
    }
    rules = std::move(kept);
  }
  return rules;
}

RuleSet RuleSet::from_mined(const std::vector<MinedRule>& rules) {
  RuleSet out;
  for (const auto& rule : rules) {
    TaggingRule tagged;
    tagged.id = rule_id(rule.antecedent);
    tagged.rule = rule;
    tagged.status = RuleStatus::kStaging;
    out.add(std::move(tagged));
  }
  return out;
}

bool RuleSet::add(TaggingRule rule) {
  for (const auto& existing : rules_) {
    if (existing.id == rule.id) return false;
  }
  rules_.push_back(std::move(rule));
  return true;
}

std::size_t RuleSet::merge(const RuleSet& other) {
  std::size_t added = 0;
  for (const auto& rule : other.rules_) {
    if (add(rule)) ++added;
  }
  return added;
}

bool RuleSet::set_status(std::string_view id, RuleStatus status) {
  for (auto& rule : rules_) {
    if (rule.id == id) {
      rule.status = status;
      return true;
    }
  }
  return false;
}

std::vector<std::uint32_t> RuleSet::matching_accepted(
    const net::FlowRecord& flow, const Itemizer& itemizer) const {
  const Transaction header = itemizer.itemize_header(flow);
  std::vector<std::uint32_t> out;
  for (std::uint32_t k = 0; k < rules_.size(); ++k) {
    if (rules_[k].status == RuleStatus::kAccepted && rules_[k].matches(header))
      out.push_back(k);
  }
  return out;
}

bool RuleSet::any_accepted_match(const net::FlowRecord& flow,
                                 const Itemizer& itemizer) const {
  const Transaction header = itemizer.itemize_header(flow);
  for (const auto& rule : rules_) {
    if (rule.status == RuleStatus::kAccepted && rule.matches(header)) return true;
  }
  return false;
}

util::Json RuleSet::to_json() const {
  util::JsonArray out;
  out.reserve(rules_.size());
  for (const auto& rule : rules_) {
    util::Json entry;
    entry.set("id", util::Json(rule.id));
    util::JsonArray antecedent;
    for (const Item item : rule.rule.antecedent)
      antecedent.emplace_back(item.to_string());
    entry.set("antecedent", util::Json(std::move(antecedent)));
    entry.set("consequent", util::Json(rule.rule.consequent.to_string()));
    entry.set("confidence", util::Json(rule.rule.confidence));
    entry.set("antecedent_support", util::Json(rule.rule.support));
    entry.set("rule_status", util::Json(std::string(rule_status_name(rule.status))));
    entry.set("notes", util::Json(rule.note));
    out.push_back(std::move(entry));
  }
  return util::Json(std::move(out));
}

RuleSet RuleSet::from_json(const util::Json& json) {
  RuleSet out;
  for (const auto& entry : json.as_array()) {
    TaggingRule rule;
    rule.id = entry.at("id").as_string();
    for (const auto& item_text : entry.at("antecedent").as_array()) {
      const auto item = item_from_string(item_text.as_string());
      if (!item) throw util::JsonError("unparsable item: " + item_text.as_string());
      rule.rule.antecedent.push_back(*item);
    }
    std::sort(rule.rule.antecedent.begin(), rule.rule.antecedent.end());
    const auto consequent = item_from_string(entry.at("consequent").as_string());
    if (!consequent) throw util::JsonError("unparsable consequent");
    rule.rule.consequent = *consequent;
    rule.rule.confidence = entry.at("confidence").as_number();
    rule.rule.support = entry.at("antecedent_support").as_number();
    const auto status = rule_status_from(entry.at("rule_status").as_string());
    if (!status) throw util::JsonError("unknown rule status");
    rule.status = *status;
    if (const auto* note = entry.find("notes")) rule.note = note->as_string();
    out.add(std::move(rule));
  }
  return out;
}

}  // namespace scrubber::arm
