#include "arm/fpgrowth.hpp"

#include <algorithm>
#include <map>
#include <memory>
#include <unordered_map>

#include "util/thread_pool.hpp"

namespace scrubber::arm {
namespace {

/// FP-tree node. Children are kept in a small sorted vector (item alphabets
/// here are tiny), siblings of the same item are chained via `next`.
struct FpNode {
  Item item;
  std::uint64_t count = 0;
  FpNode* parent = nullptr;
  FpNode* next = nullptr;  // header-table chain
  std::vector<std::unique_ptr<FpNode>> children;

  [[nodiscard]] FpNode* child_for(Item target) {
    for (auto& child : children) {
      if (child->item == target) return child.get();
    }
    return nullptr;
  }
};

/// An FP-tree with its header table (item -> first node in chain).
class FpTree {
 public:
  FpTree() : root_(std::make_unique<FpNode>()) {}

  /// Inserts a frequency-ordered transaction with multiplicity `count`.
  void insert(const std::vector<Item>& ordered_items, std::uint64_t count) {
    FpNode* node = root_.get();
    for (const Item item : ordered_items) {
      FpNode* child = node->child_for(item);
      if (child == nullptr) {
        auto owned = std::make_unique<FpNode>();
        owned->item = item;
        owned->parent = node;
        child = owned.get();
        node->children.push_back(std::move(owned));
        // Prepend to the header chain.
        auto [it, inserted] = header_.try_emplace(item.packed(), child);
        if (!inserted) {
          child->next = it->second;
          it->second = child;
        }
      }
      child->count += count;
      node = child;
    }
  }

  [[nodiscard]] const std::unordered_map<std::uint32_t, FpNode*>& header() const {
    return header_;
  }
  [[nodiscard]] bool empty() const noexcept { return header_.empty(); }

 private:
  std::unique_ptr<FpNode> root_;
  std::unordered_map<std::uint32_t, FpNode*> header_;
};

/// Recursive FP-Growth over conditional trees. The shared (read-only)
/// FP-tree is only ever traversed, so one Miner per top-level item can
/// run on a pool thread; each writes to its own output vector and the
/// vectors concatenate in the canonical mining order afterwards.
class Miner {
 public:
  Miner(std::uint64_t min_count, std::size_t max_size,
        std::vector<FrequentItemset>& out)
      : min_count_(min_count), max_size_(max_size), out_(out) {}

  /// Frequent items of a (conditional) tree in the canonical mining
  /// order: ascending frequency, ties by item (mine the rarest first).
  [[nodiscard]] std::vector<std::pair<Item, std::uint64_t>> frequent_items(
      const FpTree& tree) const {
    std::vector<std::pair<Item, std::uint64_t>> items;
    for (const auto& [packed, first] : tree.header()) {
      std::uint64_t total = 0;
      for (const FpNode* node = first; node != nullptr; node = node->next)
        total += node->count;
      if (total >= min_count_) items.emplace_back(unpack(packed), total);
    }
    std::sort(items.begin(), items.end(), [](const auto& a, const auto& b) {
      return a.second < b.second || (a.second == b.second && a.first < b.first);
    });
    return items;
  }

  /// Mines one item of `tree`: emits suffix+item, then recurses into the
  /// item's conditional tree. `suffix` is restored before returning.
  void mine_item(const FpTree& tree, Item item, std::uint64_t total,
                 std::vector<Item>& suffix) {
    suffix.push_back(item);
    std::vector<Item> itemset = suffix;
    std::sort(itemset.begin(), itemset.end());
    out_.push_back(FrequentItemset{std::move(itemset), total});

    if (suffix.size() < max_size_) {
      // Build the conditional tree of this item from its prefix paths.
      FpTree conditional;
      const FpNode* first = nullptr;
      for (const auto& [packed, head] : tree.header()) {
        if (unpack(packed) == item) {
          first = head;
          break;
        }
      }
      for (const FpNode* node = first; node != nullptr; node = node->next) {
        std::vector<Item> path;
        for (const FpNode* up = node->parent; up != nullptr && up->parent != nullptr;
             up = up->parent) {
          path.push_back(up->item);
        }
        std::reverse(path.begin(), path.end());
        if (!path.empty()) conditional.insert(path, node->count);
      }
      if (!conditional.empty()) mine(conditional, suffix);
    }
    suffix.pop_back();
  }

  void mine(const FpTree& tree, std::vector<Item>& suffix) {
    for (const auto& [item, total] : frequent_items(tree)) {
      mine_item(tree, item, total, suffix);
    }
  }

 private:
  [[nodiscard]] static Item unpack(std::uint32_t packed) noexcept {
    return Item(static_cast<Attribute>(packed >> 24), packed & 0x00FFFFFF);
  }

  std::uint64_t min_count_;
  std::size_t max_size_;
  std::vector<FrequentItemset>& out_;
};

}  // namespace

std::vector<FrequentItemset> mine_frequent_itemsets(
    const std::vector<Transaction>& transactions, const FpGrowthParams& params) {
  std::vector<FrequentItemset> out;
  if (transactions.empty()) return out;
  const auto min_count = static_cast<std::uint64_t>(
      params.min_support * static_cast<double>(transactions.size()));
  const std::uint64_t threshold = std::max<std::uint64_t>(min_count, 1);

  // First pass: global item counts.
  std::unordered_map<std::uint32_t, std::uint64_t> counts;
  for (const auto& tx : transactions) {
    for (const Item item : tx) ++counts[item.packed()];
  }

  // Second pass: build the tree with items ordered by descending frequency.
  FpTree tree;
  std::vector<Item> ordered;
  for (const auto& tx : transactions) {
    ordered.clear();
    for (const Item item : tx) {
      if (counts[item.packed()] >= threshold) ordered.push_back(item);
    }
    std::sort(ordered.begin(), ordered.end(), [&](Item a, Item b) {
      const std::uint64_t ca = counts[a.packed()];
      const std::uint64_t cb = counts[b.packed()];
      return ca > cb || (ca == cb && a < b);
    });
    if (!ordered.empty()) tree.insert(ordered, 1);
  }

  // Top-level fan-out: each frequent item mines its conditional subtree
  // into its own part (the global tree is read-only from here on), and
  // the parts concatenate in the canonical item order — the exact output
  // sequence of the sequential miner, for any thread count. Recursion
  // below the top level stays sequential inside each part.
  Miner planner(threshold, params.max_itemset_size, out);
  const auto items = planner.frequent_items(tree);
  std::vector<std::vector<FrequentItemset>> parts(items.size());
  util::training_pool().parallel_for(items.size(), [&](std::size_t k) {
    Miner miner(threshold, params.max_itemset_size, parts[k]);
    std::vector<Item> suffix;
    miner.mine_item(tree, items[k].first, items[k].second, suffix);
  });
  std::size_t total_itemsets = 0;
  for (const auto& part : parts) total_itemsets += part.size();
  out.reserve(total_itemsets);
  for (auto& part : parts) {
    out.insert(out.end(), std::make_move_iterator(part.begin()),
               std::make_move_iterator(part.end()));
  }
  return out;
}

std::vector<MinedRule> generate_rules(const std::vector<FrequentItemset>& itemsets,
                                      std::uint64_t n_transactions,
                                      const FpGrowthParams& params) {
  std::vector<MinedRule> rules;
  if (n_transactions == 0) return rules;

  // Index itemsets by their sorted item vector for O(log n) count lookup.
  std::map<std::vector<Item>, std::uint64_t> count_of;
  for (const auto& fi : itemsets) count_of[fi.items] = fi.count;

  const double n = static_cast<double>(n_transactions);
  for (const auto& fi : itemsets) {
    if (fi.items.size() < 2) continue;
    for (std::size_t c = 0; c < fi.items.size(); ++c) {
      std::vector<Item> antecedent;
      antecedent.reserve(fi.items.size() - 1);
      for (std::size_t k = 0; k < fi.items.size(); ++k) {
        if (k != c) antecedent.push_back(fi.items[k]);
      }
      const auto it = count_of.find(antecedent);
      if (it == count_of.end() || it->second == 0) continue;
      const double confidence =
          static_cast<double>(fi.count) / static_cast<double>(it->second);
      if (confidence < params.min_confidence) continue;
      MinedRule rule;
      rule.antecedent = std::move(antecedent);
      rule.consequent = fi.items[c];
      rule.support = static_cast<double>(it->second) / n;
      rule.confidence = confidence;
      rules.push_back(std::move(rule));
    }
  }
  return rules;
}

std::vector<MinedRule> mine_rules(const std::vector<Transaction>& transactions,
                                  const FpGrowthParams& params) {
  const auto itemsets = mine_frequent_itemsets(transactions, params);
  return generate_rules(itemsets, transactions.size(), params);
}

}  // namespace scrubber::arm
