#pragma once
// Tagging rules: minimization (Algorithm 1), operator curation workflow
// (accept / staging / decline, Figure 6), flow matching, and the JSON
// interchange format of the paper's released rule list (Appendix F).

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "arm/fpgrowth.hpp"
#include "net/flow.hpp"
#include "util/json.hpp"

namespace scrubber::arm {

/// Operator review status of a rule (Figure 6 workflow).
enum class RuleStatus : std::uint8_t { kStaging, kAccepted, kDeclined };

[[nodiscard]] std::string_view rule_status_name(RuleStatus status) noexcept;
[[nodiscard]] std::optional<RuleStatus> rule_status_from(std::string_view name) noexcept;

/// A curated tagging rule: a mined rule plus identity and review state.
struct TaggingRule {
  std::string id;          ///< 8-hex-digit stable id (hash of the antecedent)
  MinedRule rule;
  RuleStatus status = RuleStatus::kStaging;
  std::string note;        ///< operator documentation comment

  /// True when the rule's antecedent is contained in the flow's item set.
  [[nodiscard]] bool matches(const Transaction& header_items) const;

  /// Human-readable antecedent, e.g. "protocol=17 port_src=123 ...".
  [[nodiscard]] std::string antecedent_string() const;
};

/// Computes the stable rule id from an antecedent.
[[nodiscard]] std::string rule_id(const std::vector<Item>& antecedent);

/// Drops rules whose consequent is not {blackhole} (§5.1.1 step i).
[[nodiscard]] std::vector<MinedRule> keep_blackhole_consequent(
    std::vector<MinedRule> rules);

/// Algorithm 1 of the paper: removes a rule i whenever its antecedent is a
/// proper subset of another rule j's antecedent and the loss in confidence
/// (c_i - c_j < loss_confidence) and support (s_i - s_j < loss_support) is
/// bounded. Iterates to a fixpoint. O(|R|^2) per round.
[[nodiscard]] std::vector<MinedRule> minimize_rules(std::vector<MinedRule> rules,
                                                    double loss_confidence,
                                                    double loss_support);

/// A curated set of tagging rules with matching and persistence.
class RuleSet {
 public:
  RuleSet() = default;

  /// Wraps mined rules as staging tagging rules.
  static RuleSet from_mined(const std::vector<MinedRule>& rules);

  /// Adds one rule; returns false when a rule with the same id exists
  /// (the existing rule is kept — merge semantics for imports).
  bool add(TaggingRule rule);

  /// Merges another set (e.g. freshly mined rules into a curated set);
  /// existing ids keep their status/notes. Returns number of new rules.
  std::size_t merge(const RuleSet& other);

  [[nodiscard]] std::size_t size() const noexcept { return rules_.size(); }
  [[nodiscard]] const std::vector<TaggingRule>& rules() const noexcept {
    return rules_;
  }
  [[nodiscard]] std::vector<TaggingRule>& rules() noexcept { return rules_; }

  /// Sets the status of the rule with `id`; returns false when not found.
  bool set_status(std::string_view id, RuleStatus status);

  /// Ids of all *accepted* rules matching the flow (the tags preserved
  /// through aggregation). `itemizer` supplies the header itemization.
  [[nodiscard]] std::vector<std::uint32_t> matching_accepted(
      const net::FlowRecord& flow, const Itemizer& itemizer) const;

  /// True when any accepted rule matches the flow.
  [[nodiscard]] bool any_accepted_match(const net::FlowRecord& flow,
                                        const Itemizer& itemizer) const;

  /// Index into rules() by positional rule number (used as compact tag).
  [[nodiscard]] const TaggingRule& rule_at(std::uint32_t index) const {
    return rules_.at(index);
  }

  /// Serializes to the Appendix F-style JSON array.
  [[nodiscard]] util::Json to_json() const;

  /// Parses a rule file produced by to_json(); throws util::JsonError.
  [[nodiscard]] static RuleSet from_json(const util::Json& json);

 private:
  std::vector<TaggingRule> rules_;
};

}  // namespace scrubber::arm
