#include "arm/item.hpp"

#include <algorithm>

namespace scrubber::arm {
namespace {

/// Well-known ports itemized exactly. Covers the DDoS service catalog plus
/// the most common benign services so that complement items ("~{...}") are
/// meaningful. Sorted for binary search.
constexpr std::uint16_t kKnownPorts[] = {
    0,   19,  21,  22,  25,  53,   67,   69,   80,   111,  123,  137,
    161, 389, 443, 520, 853, 1194, 1434, 1900, 2048, 3283, 3389, 3702,
    4500, 5060, 8080, 10001, 11211,
};

[[nodiscard]] std::string bucket_to_string(std::uint32_t bucket) {
  const std::uint32_t lo = bucket * kPacketSizeBucket;
  const std::uint32_t hi = lo + kPacketSizeBucket;
  return "(" + std::to_string(lo) + "," + std::to_string(hi) + "]";
}

[[nodiscard]] std::string complement_ports_string() {
  std::string out = "~{";
  bool first = true;
  for (const std::uint16_t p : kKnownPorts) {
    if (!first) out += ",";
    first = false;
    out += std::to_string(p);
  }
  out += "}";
  return out;
}

}  // namespace

std::string Item::to_string() const {
  switch (attribute()) {
    case Attribute::kProtocol:
      return "protocol=" + std::to_string(value());
    case Attribute::kSrcPort:
      return "port_src=" + std::to_string(value());
    case Attribute::kSrcPortOther:
      return "port_src=" + complement_ports_string();
    case Attribute::kDstPort:
      return "port_dst=" + std::to_string(value());
    case Attribute::kDstPortOther:
      return "port_dst=" + complement_ports_string();
    case Attribute::kPacketSize:
      return "packet_size=" + bucket_to_string(value());
    case Attribute::kFragment:
      return "fragment=1";
    case Attribute::kBlackhole:
      return "blackhole";
  }
  return "?";
}

bool Itemizer::is_known_port(std::uint8_t /*protocol*/,
                             std::uint16_t port) noexcept {
  return std::binary_search(std::begin(kKnownPorts), std::end(kKnownPorts), port);
}

Transaction Itemizer::itemize_header(const net::FlowRecord& flow) const {
  Transaction items;
  items.reserve(5);
  items.emplace_back(Attribute::kProtocol, flow.protocol);

  const bool is_fragment =
      flow.protocol == 17 && flow.src_port == 0 && flow.dst_port == 0;
  if (is_fragment) {
    items.emplace_back(Attribute::kFragment, 1);
  } else {
    if (is_known_port(flow.protocol, flow.src_port)) {
      items.emplace_back(Attribute::kSrcPort, flow.src_port);
    } else {
      items.emplace_back(Attribute::kSrcPortOther, 0);
    }
    if (is_known_port(flow.protocol, flow.dst_port)) {
      items.emplace_back(Attribute::kDstPort, flow.dst_port);
    } else {
      items.emplace_back(Attribute::kDstPortOther, 0);
    }
  }

  const double mean_size = flow.mean_packet_size();
  const auto bucket = static_cast<std::uint32_t>(
      mean_size <= 0.0 ? 0 : (mean_size - 1.0) / kPacketSizeBucket);
  items.emplace_back(Attribute::kPacketSize, std::min(bucket, 20U));

  std::sort(items.begin(), items.end());
  return items;
}

Transaction Itemizer::itemize(const net::FlowRecord& flow) const {
  Transaction items = itemize_header(flow);
  if (flow.blackholed) {
    items.push_back(kBlackholeItem);
    std::sort(items.begin(), items.end());
  }
  return items;
}

}  // namespace scrubber::arm
