#pragma once
// Itemization of flow headers for association rule mining (§5.1.1).
//
// A flow is converted into a small transaction of attribute=value items:
// transport protocol, source/destination port class, and a packet-size
// bucket, plus the {blackhole} label item. Ports that are not well-known
// service ports collapse into a complement item (rendered like the
// "~{0,17,19,...}" notation of the paper's released rule list), which is
// what lets one mined rule cover "NTP reflection sprayed over arbitrary
// destination ports".

#include <cstdint>
#include <string>
#include <vector>

#include "net/flow.hpp"

namespace scrubber::arm {

/// Attribute of an item. Values are packed with the attribute into one
/// 32-bit Item for fast set operations.
enum class Attribute : std::uint8_t {
  kProtocol = 1,
  kSrcPort = 2,       // exact well-known port
  kSrcPortOther = 3,  // complement of the well-known port set
  kDstPort = 4,
  kDstPortOther = 5,
  kPacketSize = 6,    // bucket index, width kPacketSizeBucket
  kFragment = 7,
  kBlackhole = 8,     // the consequent label item
};

/// Packet size bucket width in bytes ("(400,500]" style buckets).
inline constexpr std::uint32_t kPacketSizeBucket = 100;

/// One attribute=value item, packed as attribute << 24 | value.
class Item {
 public:
  constexpr Item() noexcept = default;
  constexpr Item(Attribute attribute, std::uint32_t value) noexcept
      : packed_((static_cast<std::uint32_t>(attribute) << 24) |
                (value & 0x00FFFFFF)) {}

  [[nodiscard]] constexpr Attribute attribute() const noexcept {
    return static_cast<Attribute>(packed_ >> 24);
  }
  [[nodiscard]] constexpr std::uint32_t value() const noexcept {
    return packed_ & 0x00FFFFFF;
  }
  [[nodiscard]] constexpr std::uint32_t packed() const noexcept { return packed_; }

  /// Human-readable form, e.g. "port_src=123" or "packet_size=(400,500]".
  [[nodiscard]] std::string to_string() const;

  constexpr auto operator<=>(const Item&) const noexcept = default;

 private:
  std::uint32_t packed_ = 0;
};

/// The {blackhole} consequent item.
inline constexpr Item kBlackholeItem{Attribute::kBlackhole, 1};

/// A transaction: the sorted item set of one flow (including the label
/// item when the flow was blackholed).
using Transaction = std::vector<Item>;

/// Converts flow headers into mining transactions.
class Itemizer {
 public:
  /// Builds a transaction from a flow; appends the blackhole item when
  /// `flow.blackholed` (or `force_label`) is set.
  [[nodiscard]] Transaction itemize(const net::FlowRecord& flow) const;

  /// Items of the flow header only (no label); used for rule matching.
  [[nodiscard]] Transaction itemize_header(const net::FlowRecord& flow) const;

  /// True when a port is in the well-known service port set (and thus
  /// itemized exactly rather than as a complement item).
  [[nodiscard]] static bool is_known_port(std::uint8_t protocol,
                                          std::uint16_t port) noexcept;
};

}  // namespace scrubber::arm
