#pragma once
// Packet-level capture substrate: sampled packet headers and the
// collector-side flow cache that aggregates them into FlowRecords.
//
// At a real IXP the monitoring fabric samples 1-in-N packets (sFlow) and
// a collector aggregates the sampled headers into per-minute flow records
// — the exact input format of the scrubber pipeline. This module models
// that path: PacketHeader (the L2-4 header subset sFlow exports),
// PacketSampler (deterministic 1-in-N with scaling), and FlowCache
// (keyed aggregation with minute binning).

#include <cstdint>
#include <functional>
#include <vector>

#include "net/flow.hpp"
#include "util/flat_hash.hpp"

namespace scrubber::net {

/// The L2-4 header subset carried in a sampled-packet record.
struct PacketHeader {
  std::uint64_t timestamp_ms = 0;  ///< capture timestamp (milliseconds)
  Ipv4Address src_ip{};
  Ipv4Address dst_ip{};
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint8_t protocol = 0;
  std::uint8_t tcp_flags = 0;
  std::uint16_t length = 0;        ///< IP length in bytes
  MemberId ingress_member = 0;     ///< IXP member port of arrival

  friend bool operator==(const PacketHeader&, const PacketHeader&) = default;
};

/// Key identifying one flow within a minute bin.
struct FlowKey {
  std::uint32_t minute = 0;
  std::uint32_t src_ip = 0;
  std::uint32_t dst_ip = 0;
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint8_t protocol = 0;
  MemberId member = 0;

  friend bool operator==(const FlowKey&, const FlowKey&) = default;
};

struct FlowKeyHash {
  std::size_t operator()(const FlowKey& k) const noexcept {
    std::uint64_t h = k.minute;
    h = h * 0x9E3779B97F4A7C15ULL + k.src_ip;
    h = h * 0x9E3779B97F4A7C15ULL + k.dst_ip;
    h = h * 0x9E3779B97F4A7C15ULL +
        ((std::uint64_t{k.src_port} << 24) | (std::uint64_t{k.dst_port} << 8) |
         k.protocol);
    h = h * 0x9E3779B97F4A7C15ULL + k.member;
    return static_cast<std::size_t>(h ^ (h >> 32));
  }
};

/// Deterministic 1-in-N packet sampler. Real sFlow agents sample with a
/// pseudo-random skip so bursts are not aliased; this sampler draws the
/// skip from a seeded generator, making traces reproducible.
class PacketSampler {
 public:
  /// `rate` = N of 1-in-N sampling (1 = keep everything).
  explicit PacketSampler(std::uint32_t rate, std::uint64_t seed = 1);

  /// Returns true when this packet is sampled.
  [[nodiscard]] bool sample() noexcept;

  [[nodiscard]] std::uint32_t rate() const noexcept { return rate_; }

  /// Packets seen / packets sampled so far.
  [[nodiscard]] std::uint64_t seen() const noexcept { return seen_; }
  [[nodiscard]] std::uint64_t sampled() const noexcept { return sampled_; }

 private:
  void roll_skip() noexcept;

  std::uint32_t rate_;
  std::uint64_t state_;
  std::uint64_t skip_ = 0;
  std::uint64_t seen_ = 0;
  std::uint64_t sampled_ = 0;
};

/// Collector-side aggregation of sampled packet headers into per-minute
/// FlowRecords. Counters are scaled by the sampling rate (standard sFlow
/// estimation: each sampled packet represents `rate` packets).
///
/// Storage is a util::FlatHash keyed by FlowKey: one probe + contiguous
/// slot per sampled packet, no node allocation, and insertion-ordered
/// dense entries — which is exactly the deterministic drain order the
/// pre-flat implementation produced by sorting on a per-entry insertion
/// counter.
class FlowCache {
 public:
  /// `sampling_rate` is the 1-in-N rate used for scaling estimates.
  explicit FlowCache(std::uint32_t sampling_rate = 1)
      : sampling_rate_(sampling_rate) {}

  /// Adds one sampled packet header.
  void add(const PacketHeader& packet);

  /// Flows of all minute bins strictly older than `minute`, removed from
  /// the cache (call as time advances; sorted by minute then key order
  /// is unspecified but deterministic for a given insertion order).
  [[nodiscard]] std::vector<FlowRecord> drain_before(std::uint32_t minute);

  /// Flushes everything remaining.
  [[nodiscard]] std::vector<FlowRecord> drain_all();

  [[nodiscard]] std::size_t active_flows() const noexcept { return cache_.size(); }

 private:
  struct Counters {
    std::uint64_t packets = 0;
    std::uint64_t bytes = 0;
    std::uint8_t tcp_flags = 0;
  };

  [[nodiscard]] FlowRecord to_record(const FlowKey& key,
                                     const Counters& counters) const;

  std::uint32_t sampling_rate_;
  util::FlatHash<FlowKey, Counters, FlowKeyHash> cache_;
};

}  // namespace scrubber::net
