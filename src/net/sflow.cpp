#include "net/sflow.hpp"

#include <cstring>

#include "util/check.hpp"

namespace scrubber::net {
namespace {

// sFlow v5 constants.
constexpr std::uint32_t kVersion = 5;
constexpr std::uint32_t kAddressIpv4 = 1;
constexpr std::uint32_t kSampleTypeFlow = 1;         // enterprise 0, format 1
constexpr std::uint32_t kRecordTypeRawPacket = 1;    // enterprise 0, format 1
constexpr std::uint32_t kHeaderProtocolEthernet = 1;

// Synthesized raw-header layout: 14-byte Ethernet + 20-byte IPv4 + 8 bytes
// of L4 (src/dst port + either UDP len/cksum or TCP seq start). We always
// emit 42 bytes, which is also what typical sFlow agents clip to (the
// default header_bytes is 128, but 42 suffices for L4 ports).
constexpr std::uint32_t kRawHeaderBytes = 14 + 20 + 8;

class Writer {
 public:
  void u32(std::uint32_t v) {
    bytes_.push_back(static_cast<std::uint8_t>(v >> 24));
    bytes_.push_back(static_cast<std::uint8_t>(v >> 16));
    bytes_.push_back(static_cast<std::uint8_t>(v >> 8));
    bytes_.push_back(static_cast<std::uint8_t>(v));
  }
  void u16(std::uint16_t v) {
    bytes_.push_back(static_cast<std::uint8_t>(v >> 8));
    bytes_.push_back(static_cast<std::uint8_t>(v));
  }
  void u8(std::uint8_t v) { bytes_.push_back(v); }
  void raw(const std::vector<std::uint8_t>& data) {
    bytes_.insert(bytes_.end(), data.begin(), data.end());
  }
  /// XDR opaque: pads to a 4-byte boundary.
  void opaque(const std::vector<std::uint8_t>& data) {
    u32(static_cast<std::uint32_t>(data.size()));
    raw(data);
    while (bytes_.size() % 4 != 0) bytes_.push_back(0);
  }
  [[nodiscard]] std::vector<std::uint8_t> take() { return std::move(bytes_); }

 private:
  std::vector<std::uint8_t> bytes_;
};

class Reader {
 public:
  Reader(const std::uint8_t* data, std::size_t size) : data_(data), size_(size) {}

  std::uint32_t u32() {
    require(4);
    const std::uint32_t v = (std::uint32_t{data_[pos_]} << 24) |
                            (std::uint32_t{data_[pos_ + 1]} << 16) |
                            (std::uint32_t{data_[pos_ + 2]} << 8) |
                            std::uint32_t{data_[pos_ + 3]};
    pos_ += 4;
    return v;
  }
  std::uint16_t u16() {
    require(2);
    const std::uint16_t v =
        static_cast<std::uint16_t>((data_[pos_] << 8) | data_[pos_ + 1]);
    pos_ += 2;
    return v;
  }
  std::uint8_t u8() {
    require(1);
    return data_[pos_++];
  }
  void skip(std::size_t n) {
    require(n);
    pos_ += n;
  }
  Reader sub(std::size_t n) {
    require(n);
    // Decode-bounds invariant: a sub-reader's window lies entirely inside
    // its parent's, so no parse path can read past the datagram, whatever
    // an adversarial length field says.
    SCRUBBER_ASSERT(n <= size_ && pos_ <= size_ - n,
                    "sflow sub-reader window escapes its parent");
    Reader r(data_ + pos_, n);
    pos_ += n;
    return r;
  }
  [[nodiscard]] bool done() const noexcept { return pos_ >= size_; }
  [[nodiscard]] std::size_t remaining() const noexcept { return size_ - pos_; }

 private:
  void require(std::size_t n) const {
    if (pos_ + n > size_) throw SflowDecodeError("truncated sFlow datagram");
  }
  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

/// Builds the synthetic Ethernet+IPv4+L4 raw header for a packet.
std::vector<std::uint8_t> build_raw_header(const PacketHeader& packet) {
  Writer w;
  // Ethernet (14 bytes): zeroed dst MAC, src MAC carrying the member port
  // in its low 4 bytes (IXPs identify members by peering-LAN MAC, §5.2.1),
  // ethertype 0x0800.
  w.u16(0);
  w.u32(0);                         // dst MAC
  w.u16(0);                         // src MAC bytes 0-1
  w.u32(packet.ingress_member);     // src MAC bytes 2-5 = member id
  w.u16(0x0800);                    // ethertype IPv4
  // IPv4 header (20 bytes, no options).
  w.u8(0x45);                         // version + IHL
  w.u8(0);                            // DSCP
  w.u16(packet.length);               // total length
  w.u32(0);                           // id + flags/fragment offset
  w.u8(64);                           // TTL
  w.u8(packet.protocol);
  w.u16(0);                           // checksum (agents do not recompute)
  w.u32(packet.src_ip.value());
  w.u32(packet.dst_ip.value());
  // First 8 bytes of L4: ports + 4 bytes of protocol-specific data; the
  // TCP flags are stashed where a collector would read them for TCP
  // (offset 13 of the TCP header is beyond 8 bytes, so agents exporting
  // 42-byte clips carry flags only for longer clips; we encode them in
  // the 4 trailing bytes for test fidelity).
  w.u16(packet.src_port);
  w.u16(packet.dst_port);
  w.u16(0);
  w.u8(packet.tcp_flags);
  w.u8(0);
  return w.take();
}

PacketHeader parse_raw_header(Reader& r, std::uint32_t frame_length) {
  PacketHeader packet;
  packet.length = static_cast<std::uint16_t>(frame_length);
  // Ethernet.
  r.skip(6);  // dst MAC
  r.u16();    // src MAC bytes 0-1
  packet.ingress_member = r.u32();  // src MAC bytes 2-5 = member id
  if (r.u16() != 0x0800)
    throw SflowDecodeError("raw header is not IPv4 over Ethernet");
  // IPv4.
  const std::uint8_t version_ihl = r.u8();
  if ((version_ihl >> 4) != 4) throw SflowDecodeError("not an IPv4 header");
  r.u8();
  packet.length = r.u16();
  r.u32();
  r.u8();
  packet.protocol = r.u8();
  r.u16();
  packet.src_ip = Ipv4Address(r.u32());
  packet.dst_ip = Ipv4Address(r.u32());
  // L4 stub.
  packet.src_port = r.u16();
  packet.dst_port = r.u16();
  r.u16();
  packet.tcp_flags = r.u8();
  r.u8();
  return packet;
}

}  // namespace

std::vector<std::uint8_t> SflowDatagram::encode() const {
  Writer w;
  w.u32(kVersion);
  w.u32(kAddressIpv4);
  w.u32(agent.value());
  w.u32(sub_agent_id);
  w.u32(sequence);
  w.u32(uptime_ms);
  w.u32(static_cast<std::uint32_t>(samples.size()));

  for (const auto& sample : samples) {
    // Flow sample record body.
    Writer body;
    body.u32(sample.sequence);
    body.u32(sample.input_port & 0x00FFFFFFU);  // source id (type 0 + index)
    body.u32(sample.sampling_rate);
    body.u32(sample.sample_pool);
    body.u32(0);  // drops
    body.u32(sample.input_port);
    body.u32(sample.output_port);
    body.u32(1);  // one flow record

    // Raw packet header record.
    Writer record;
    record.u32(kHeaderProtocolEthernet);
    record.u32(sample.packet.length + 14U);  // frame length incl. Ethernet
    record.u32(0);                           // payload stripped
    record.opaque(build_raw_header(sample.packet));
    const auto record_bytes = record.take();
    body.u32(kRecordTypeRawPacket);
    body.opaque(record_bytes);

    const auto body_bytes = body.take();
    w.u32(kSampleTypeFlow);
    w.opaque(body_bytes);
  }
  return w.take();
}

SflowDatagram SflowDatagram::decode(const std::vector<std::uint8_t>& wire) {
  return decode(std::span<const std::uint8_t>(wire.data(), wire.size()));
}

SflowDatagram SflowDatagram::decode(std::span<const std::uint8_t> wire) {
  Reader r(wire.data(), wire.size());
  if (r.u32() != kVersion) throw SflowDecodeError("unsupported sFlow version");
  if (r.u32() != kAddressIpv4)
    throw SflowDecodeError("unsupported agent address family");
  SflowDatagram out;
  out.agent = Ipv4Address(r.u32());
  out.sub_agent_id = r.u32();
  out.sequence = r.u32();
  out.uptime_ms = r.u32();
  const std::uint32_t sample_count = r.u32();

  for (std::uint32_t s = 0; s < sample_count; ++s) {
    const std::uint32_t sample_type = r.u32();
    const std::uint32_t sample_length = r.u32();
    Reader body = r.sub((sample_length + 3) & ~3U);
    if (sample_type != kSampleTypeFlow) continue;  // counter samples skipped

    SflowFlowSample sample;
    sample.sequence = body.u32();
    body.u32();  // source id
    sample.sampling_rate = body.u32();
    sample.sample_pool = body.u32();
    body.u32();  // drops
    sample.input_port = body.u32();
    sample.output_port = body.u32();
    const std::uint32_t record_count = body.u32();
    bool have_packet = false;
    for (std::uint32_t k = 0; k < record_count; ++k) {
      const std::uint32_t record_type = body.u32();
      const std::uint32_t record_length = body.u32();
      Reader record = body.sub((record_length + 3) & ~3U);
      if (record_type != kRecordTypeRawPacket) continue;
      if (record.u32() != kHeaderProtocolEthernet)
        throw SflowDecodeError("unsupported header protocol");
      const std::uint32_t frame_length = record.u32();
      record.u32();  // stripped
      const std::uint32_t header_bytes = record.u32();
      if (header_bytes < kRawHeaderBytes)
        throw SflowDecodeError("raw header clip too short");
      Reader header = record.sub(header_bytes);
      sample.packet = parse_raw_header(header, frame_length - 14);
      have_packet = true;
    }
    if (have_packet) out.samples.push_back(sample);
  }
  SCRUBBER_ASSERT(out.samples.size() <= sample_count,
                  "decoded more flow samples than the datagram declared");
  return out;
}

const char* decode_status_name(DecodeStatus status) noexcept {
  switch (status) {
    case DecodeStatus::kOk: return "ok";
    case DecodeStatus::kTruncated: return "truncated";
    case DecodeStatus::kBadVersion: return "bad-version";
    case DecodeStatus::kBadAddressFamily: return "bad-address-family";
    case DecodeStatus::kBadHeaderProtocol: return "bad-header-protocol";
    case DecodeStatus::kShortHeaderClip: return "short-header-clip";
    case DecodeStatus::kNotEthernetIpv4: return "not-ethernet-ipv4";
    case DecodeStatus::kNotIpv4: return "not-ipv4";
  }
  return "unknown";
}

void ingest_datagram(const SflowDatagram& datagram, FlowCache& cache) {
  for (const auto& sample : datagram.samples) {
    PacketHeader packet = sample.packet;
    packet.timestamp_ms = datagram.uptime_ms;
    packet.ingress_member = sample.input_port;
    cache.add(packet);
  }
}

}  // namespace scrubber::net
