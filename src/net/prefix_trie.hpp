#pragma once
// Binary radix (Patricia-style, uncompressed path) trie keyed by IPv4
// prefixes with longest-prefix-match lookup.
//
// This backs the BGP RIB and the blackhole registry: flow labeling asks,
// per flow, "what is the most specific blackhole prefix covering this
// destination IP?". The trie keeps lookups O(32) regardless of table size.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "net/ipv4.hpp"

namespace scrubber::net {

/// Radix trie mapping Ipv4Prefix -> T with longest-prefix-match semantics.
template <typename T>
class PrefixTrie {
 public:
  PrefixTrie() : root_(std::make_unique<Node>()) {}

  /// Inserts or overwrites the value stored at `prefix`.
  /// Returns true when the prefix was newly inserted.
  bool insert(const Ipv4Prefix& prefix, T value) {
    Node* node = descend_or_create(prefix);
    const bool inserted = !node->value.has_value();
    node->value = std::move(value);
    if (inserted) ++size_;
    return inserted;
  }

  /// Removes the entry stored at exactly `prefix` (no aggregation).
  /// Returns true when an entry was removed.
  bool erase(const Ipv4Prefix& prefix) {
    Node* node = descend(prefix);
    if (node == nullptr || !node->value.has_value()) return false;
    node->value.reset();
    --size_;
    return true;
  }

  /// Exact-match lookup.
  [[nodiscard]] const T* find_exact(const Ipv4Prefix& prefix) const {
    const Node* node = descend(prefix);
    return node != nullptr && node->value ? &*node->value : nullptr;
  }

  /// Mutable exact-match lookup.
  [[nodiscard]] T* find_exact(const Ipv4Prefix& prefix) {
    Node* node = descend(prefix);
    return node != nullptr && node->value ? &*node->value : nullptr;
  }

  /// Longest-prefix-match: most specific entry covering `ip`, or nullptr.
  [[nodiscard]] const T* match(Ipv4Address ip) const {
    const Node* node = root_.get();
    const T* best = node->value ? &*node->value : nullptr;
    const std::uint32_t bits = ip.value();
    for (int depth = 0; depth < 32 && node != nullptr; ++depth) {
      const int bit = (bits >> (31 - depth)) & 1;
      node = node->child[bit].get();
      if (node != nullptr && node->value) best = &*node->value;
    }
    return best;
  }

  /// Longest-prefix-match returning the matched prefix alongside the value.
  [[nodiscard]] std::optional<std::pair<Ipv4Prefix, T>> match_entry(
      Ipv4Address ip) const {
    const Node* node = root_.get();
    std::optional<std::pair<Ipv4Prefix, T>> best;
    if (node->value) best = {Ipv4Prefix(Ipv4Address(0), 0), *node->value};
    const std::uint32_t bits = ip.value();
    std::uint32_t accum = 0;
    for (int depth = 0; depth < 32 && node != nullptr; ++depth) {
      const std::uint32_t bit = (bits >> (31 - depth)) & 1;
      accum |= bit << (31 - depth);
      node = node->child[bit].get();
      if (node != nullptr && node->value) {
        best = {Ipv4Prefix(Ipv4Address(accum), static_cast<std::uint8_t>(depth + 1)),
                *node->value};
      }
    }
    return best;
  }

  /// All entries whose prefix covers `ip`, least specific first.
  [[nodiscard]] std::vector<std::pair<Ipv4Prefix, const T*>> match_all(
      Ipv4Address ip) const {
    std::vector<std::pair<Ipv4Prefix, const T*>> out;
    const Node* node = root_.get();
    if (node->value) out.emplace_back(Ipv4Prefix(Ipv4Address(0), 0), &*node->value);
    const std::uint32_t bits = ip.value();
    std::uint32_t accum = 0;
    for (int depth = 0; depth < 32 && node != nullptr; ++depth) {
      const std::uint32_t bit = (bits >> (31 - depth)) & 1;
      accum |= bit << (31 - depth);
      node = node->child[bit].get();
      if (node != nullptr && node->value) {
        out.emplace_back(
            Ipv4Prefix(Ipv4Address(accum), static_cast<std::uint8_t>(depth + 1)),
            &*node->value);
      }
    }
    return out;
  }

  /// Visits every (prefix, value) pair in preorder.
  template <typename Visitor>
  void visit(Visitor&& visitor) const {
    visit_node(root_.get(), 0, 0, visitor);
  }

  /// All stored entries, sorted by (address, length) preorder.
  [[nodiscard]] std::vector<std::pair<Ipv4Prefix, T>> entries() const {
    std::vector<std::pair<Ipv4Prefix, T>> out;
    out.reserve(size_);
    visit([&](const Ipv4Prefix& p, const T& v) { out.emplace_back(p, v); });
    return out;
  }

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }

  /// Removes all entries.
  void clear() {
    root_ = std::make_unique<Node>();
    size_ = 0;
  }

 private:
  struct Node {
    std::optional<T> value;
    std::unique_ptr<Node> child[2];
  };

  [[nodiscard]] Node* descend_or_create(const Ipv4Prefix& prefix) {
    Node* node = root_.get();
    const std::uint32_t bits = prefix.address().value();
    for (int depth = 0; depth < prefix.length(); ++depth) {
      const int bit = (bits >> (31 - depth)) & 1;
      if (!node->child[bit]) node->child[bit] = std::make_unique<Node>();
      node = node->child[bit].get();
    }
    return node;
  }

  [[nodiscard]] const Node* descend(const Ipv4Prefix& prefix) const {
    const Node* node = root_.get();
    const std::uint32_t bits = prefix.address().value();
    for (int depth = 0; depth < prefix.length() && node != nullptr; ++depth) {
      const int bit = (bits >> (31 - depth)) & 1;
      node = node->child[bit].get();
    }
    return node;
  }

  [[nodiscard]] Node* descend(const Ipv4Prefix& prefix) {
    return const_cast<Node*>(std::as_const(*this).descend(prefix));
  }

  template <typename Visitor>
  static void visit_node(const Node* node, std::uint32_t accum, int depth,
                         Visitor& visitor) {
    if (node == nullptr) return;
    if (node->value) {
      visitor(Ipv4Prefix(Ipv4Address(accum), static_cast<std::uint8_t>(depth)),
              *node->value);
    }
    if (depth == 32) return;
    visit_node(node->child[0].get(), accum, depth + 1, visitor);
    visit_node(node->child[1].get(), accum | (1U << (31 - depth)), depth + 1,
               visitor);
  }

  std::unique_ptr<Node> root_;
  std::size_t size_ = 0;
};

}  // namespace scrubber::net
