#pragma once
// sFlow version 5 datagram codec (subset).
//
// The paper's capture pipeline consumes sampled packet headers exported by
// the IXP's switches as sFlow v5. This module implements the on-the-wire
// format for the parts the scrubber needs: the datagram header, flow
// sample records, and the "raw packet header" flow record carrying an
// Ethernet + IPv4 + TCP/UDP header stub. Counter samples and other record
// types are skipped structurally (length-prefixed), as a real collector
// does.
//
// Reference: sFlow.org, "sFlow Version 5" (July 2004).

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <stdexcept>
#include <vector>

#include "net/packet.hpp"

namespace scrubber::net {

/// Error thrown on malformed sFlow bytes.
class SflowDecodeError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// One flow sample: a sampled packet header plus sampling metadata.
struct SflowFlowSample {
  std::uint32_t sequence = 0;
  std::uint32_t sampling_rate = 1;
  std::uint32_t sample_pool = 0;   ///< packets seen by the sampler
  std::uint32_t input_port = 0;    ///< ingress interface (member port)
  std::uint32_t output_port = 0;
  PacketHeader packet;             ///< decoded raw packet header

  friend bool operator==(const SflowFlowSample&, const SflowFlowSample&) = default;
};

/// An sFlow v5 datagram: agent identity plus flow samples.
struct SflowDatagram {
  Ipv4Address agent;               ///< exporting switch
  std::uint32_t sub_agent_id = 0;
  std::uint32_t sequence = 0;
  std::uint32_t uptime_ms = 0;     ///< sysUptime at export — maps to timestamps
  std::vector<SflowFlowSample> samples;

  /// Encodes the datagram as sFlow v5 wire bytes (XDR, big endian).
  [[nodiscard]] std::vector<std::uint8_t> encode() const;

  /// Decodes wire bytes; unknown record types are skipped. Throws
  /// SflowDecodeError on malformed input.
  [[nodiscard]] static SflowDatagram decode(const std::vector<std::uint8_t>& wire);

  /// Same decoder over a borrowed byte window (pooled wire slots).
  [[nodiscard]] static SflowDatagram decode(std::span<const std::uint8_t> wire);

  friend bool operator==(const SflowDatagram&, const SflowDatagram&) = default;
};

/// Feeds every flow sample of a datagram into a FlowCache, stamping packet
/// timestamps from the datagram uptime (collector behavior).
void ingest_datagram(const SflowDatagram& datagram, FlowCache& cache);

// --- in-place, non-throwing decode (the wire hot path) --------------------
//
// SflowDatagram::decode above is the oracle: it materializes a datagram
// and throws on malformed input. The serving path cannot afford either —
// a hostile flood would pay one C++ unwind per bad datagram and one heap
// vector per good one — so SflowView::decode walks the same wire bytes
// with zero copies, reports malformation as a status code, and hands each
// accepted sample to a caller-supplied emitter (which the sharded router
// uses to append straight into per-shard batches). The walk mirrors the
// oracle field-for-field and check-for-check; the fuzz parity suite
// (tests/net/sflow_inplace_parity_test.cpp) holds the two bit-identical
// on hostile corpora.

/// Outcome of an in-place decode; one code per oracle throw site. The
/// first error in walk order wins, exactly as the oracle's first throw.
enum class DecodeStatus : std::uint8_t {
  kOk = 0,
  kTruncated,          ///< oracle: "truncated sFlow datagram"
  kBadVersion,         ///< oracle: "unsupported sFlow version"
  kBadAddressFamily,   ///< oracle: "unsupported agent address family"
  kBadHeaderProtocol,  ///< oracle: "unsupported header protocol"
  kShortHeaderClip,    ///< oracle: "raw header clip too short"
  kNotEthernetIpv4,    ///< oracle: "raw header is not IPv4 over Ethernet"
  kNotIpv4,            ///< oracle: "not an IPv4 header"
};

/// Human-readable name (bench/test reporting).
[[nodiscard]] const char* decode_status_name(DecodeStatus status) noexcept;

/// The datagram header fields, decoded in place (no sample storage).
struct SflowHeaderView {
  Ipv4Address agent;
  std::uint32_t sub_agent_id = 0;
  std::uint32_t sequence = 0;
  std::uint32_t uptime_ms = 0;
  std::uint32_t sample_count = 0;  ///< declared by the wire, not validated
};

namespace sflow_detail {

// Wire constants, mirrored from the oracle in sflow.cpp (which keeps its
// own copies so the oracle text stays untouched).
inline constexpr std::uint32_t kWireVersion = 5;
inline constexpr std::uint32_t kWireAddressIpv4 = 1;
inline constexpr std::uint32_t kWireSampleFlow = 1;
inline constexpr std::uint32_t kWireRecordRawPacket = 1;
inline constexpr std::uint32_t kWireHeaderEthernet = 1;
inline constexpr std::uint32_t kWireRawHeaderBytes = 14 + 20 + 8;

// scrubber-hot-begin
// Non-throwing big-endian reads over bare pointer pairs. Cursor state
// lives in the caller's locals (pointer + window end), NOT in a struct:
// a cursor object whose members are mutated through `this` keeps its
// state memory-resident across every read, and measured ~8x slower than
// this shape at -O2 (the compiler scalarizes plain local pointers into
// registers; it gives up on the address-taken aggregate).

[[nodiscard]] inline std::uint32_t load_be32(const std::uint8_t* p) noexcept {
  return (std::uint32_t{p[0]} << 24) | (std::uint32_t{p[1]} << 16) |
         (std::uint32_t{p[2]} << 8) | std::uint32_t{p[3]};
}
[[nodiscard]] inline std::uint16_t load_be16(const std::uint8_t* p) noexcept {
  return static_cast<std::uint16_t>((p[0] << 8) | p[1]);
}
/// Reads one XDR word, advancing `p`; false = truncated (caller maps to
/// DecodeStatus::kTruncated so the first short read wins, exactly as the
/// oracle's first throw).
[[nodiscard]] inline bool read_u32(const std::uint8_t*& p,
                                   const std::uint8_t* end,
                                   std::uint32_t& v) noexcept {
  if (end - p < 4) return false;
  v = load_be32(p);
  p += 4;
  return true;
}
// scrubber-hot-end

}  // namespace sflow_detail

/// Zero-copy sFlow v5 decoder. See the section comment above.
class SflowView {
 public:
  /// Walks `wire` in place: fills `header`, then calls
  /// `emit(const SflowFlowSample&)` once per accepted flow sample, in
  /// wire order. On any error returns the matching status — the caller
  /// must then discard (roll back) everything emitted for this datagram,
  /// because the oracle rejects a malformed datagram wholesale. The
  /// emitted sample references stack storage valid only for the call.
  // scrubber-hot-begin
  template <typename Emit>
  [[nodiscard]] static DecodeStatus decode(std::span<const std::uint8_t> wire,
                                           SflowHeaderView& header,
                                           Emit&& emit) {
    namespace d = sflow_detail;
    const std::uint8_t* p = wire.data();
    const std::uint8_t* const end = p + wire.size();
    std::uint32_t word = 0;
    if (!d::read_u32(p, end, word)) return DecodeStatus::kTruncated;
    if (word != d::kWireVersion) return DecodeStatus::kBadVersion;
    if (!d::read_u32(p, end, word)) return DecodeStatus::kTruncated;
    if (word != d::kWireAddressIpv4) return DecodeStatus::kBadAddressFamily;
    if (!d::read_u32(p, end, word)) return DecodeStatus::kTruncated;
    header.agent = Ipv4Address(word);
    if (!d::read_u32(p, end, header.sub_agent_id)) return DecodeStatus::kTruncated;
    if (!d::read_u32(p, end, header.sequence)) return DecodeStatus::kTruncated;
    if (!d::read_u32(p, end, header.uptime_ms)) return DecodeStatus::kTruncated;
    if (!d::read_u32(p, end, header.sample_count)) return DecodeStatus::kTruncated;

    for (std::uint32_t s = 0; s < header.sample_count; ++s) {
      std::uint32_t sample_type = 0;
      std::uint32_t sample_length = 0;
      if (!d::read_u32(p, end, sample_type)) return DecodeStatus::kTruncated;
      if (!d::read_u32(p, end, sample_length)) return DecodeStatus::kTruncated;
      // Carve the length-prefixed sample window (padded to the XDR word
      // boundary, uint32 wrap as the oracle). The child window lies inside
      // the parent, so no parse path reads past the datagram whatever an
      // adversarial length field says.
      const std::size_t sample_padded = (sample_length + 3) & ~3U;
      if (static_cast<std::size_t>(end - p) < sample_padded) {
        return DecodeStatus::kTruncated;
      }
      const std::uint8_t* b = p;
      const std::uint8_t* const bend = p + sample_padded;
      p = bend;
      if (sample_type != d::kWireSampleFlow) continue;  // counter samples

      SflowFlowSample sample;
      if (!d::read_u32(b, bend, sample.sequence)) return DecodeStatus::kTruncated;
      if (!d::read_u32(b, bend, word)) return DecodeStatus::kTruncated;  // source id
      if (!d::read_u32(b, bend, sample.sampling_rate)) return DecodeStatus::kTruncated;
      if (!d::read_u32(b, bend, sample.sample_pool)) return DecodeStatus::kTruncated;
      if (!d::read_u32(b, bend, word)) return DecodeStatus::kTruncated;  // drops
      if (!d::read_u32(b, bend, sample.input_port)) return DecodeStatus::kTruncated;
      if (!d::read_u32(b, bend, sample.output_port)) return DecodeStatus::kTruncated;
      std::uint32_t record_count = 0;
      if (!d::read_u32(b, bend, record_count)) return DecodeStatus::kTruncated;
      bool have_packet = false;
      for (std::uint32_t k = 0; k < record_count; ++k) {
        std::uint32_t record_type = 0;
        std::uint32_t record_length = 0;
        if (!d::read_u32(b, bend, record_type)) return DecodeStatus::kTruncated;
        if (!d::read_u32(b, bend, record_length)) return DecodeStatus::kTruncated;
        const std::size_t record_padded = (record_length + 3) & ~3U;
        if (static_cast<std::size_t>(bend - b) < record_padded) {
          return DecodeStatus::kTruncated;
        }
        const std::uint8_t* rec = b;
        const std::uint8_t* const rend = b + record_padded;
        b = rend;
        if (record_type != d::kWireRecordRawPacket) continue;
        if (!d::read_u32(rec, rend, word)) return DecodeStatus::kTruncated;
        if (word != d::kWireHeaderEthernet) {
          return DecodeStatus::kBadHeaderProtocol;
        }
        std::uint32_t frame_length = 0;
        if (!d::read_u32(rec, rend, frame_length)) return DecodeStatus::kTruncated;
        if (!d::read_u32(rec, rend, word)) return DecodeStatus::kTruncated;  // stripped
        std::uint32_t header_bytes = 0;
        if (!d::read_u32(rec, rend, header_bytes)) return DecodeStatus::kTruncated;
        if (header_bytes < d::kWireRawHeaderBytes) {
          return DecodeStatus::kShortHeaderClip;
        }
        if (static_cast<std::size_t>(rend - rec) < header_bytes) {
          return DecodeStatus::kTruncated;
        }
        // Ethernet + IPv4 + L4 stub at fixed offsets: the exact field walk
        // of the oracle's parse_raw_header, with the per-field truncation
        // checks dropped because the two guards above prove the window
        // holds header_bytes >= 42 bytes. Value checks keep the oracle's
        // throw order: ethertype before IP version.
        const std::uint8_t* const h = rec;
        static_assert(d::kWireRawHeaderBytes == 42);
        if (d::load_be16(h + 12) != 0x0800) {
          return DecodeStatus::kNotEthernetIpv4;
        }
        if ((h[14] >> 4) != 4) return DecodeStatus::kNotIpv4;
        PacketHeader packet;
        packet.ingress_member = d::load_be32(h + 8);
        packet.length = d::load_be16(h + 16);  // IPv4 total length
        packet.protocol = h[23];
        packet.src_ip = Ipv4Address(d::load_be32(h + 26));
        packet.dst_ip = Ipv4Address(d::load_be32(h + 30));
        packet.src_port = d::load_be16(h + 34);
        packet.dst_port = d::load_be16(h + 36);
        packet.tcp_flags = h[40];
        sample.packet = packet;
        have_packet = true;  // last raw-packet record wins, as the oracle
      }
      if (have_packet) emit(static_cast<const SflowFlowSample&>(sample));
    }
    return DecodeStatus::kOk;
  }
  // scrubber-hot-end
};

}  // namespace scrubber::net
