#pragma once
// sFlow version 5 datagram codec (subset).
//
// The paper's capture pipeline consumes sampled packet headers exported by
// the IXP's switches as sFlow v5. This module implements the on-the-wire
// format for the parts the scrubber needs: the datagram header, flow
// sample records, and the "raw packet header" flow record carrying an
// Ethernet + IPv4 + TCP/UDP header stub. Counter samples and other record
// types are skipped structurally (length-prefixed), as a real collector
// does.
//
// Reference: sFlow.org, "sFlow Version 5" (July 2004).

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <vector>

#include "net/packet.hpp"

namespace scrubber::net {

/// Error thrown on malformed sFlow bytes.
class SflowDecodeError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// One flow sample: a sampled packet header plus sampling metadata.
struct SflowFlowSample {
  std::uint32_t sequence = 0;
  std::uint32_t sampling_rate = 1;
  std::uint32_t sample_pool = 0;   ///< packets seen by the sampler
  std::uint32_t input_port = 0;    ///< ingress interface (member port)
  std::uint32_t output_port = 0;
  PacketHeader packet;             ///< decoded raw packet header

  friend bool operator==(const SflowFlowSample&, const SflowFlowSample&) = default;
};

/// An sFlow v5 datagram: agent identity plus flow samples.
struct SflowDatagram {
  Ipv4Address agent;               ///< exporting switch
  std::uint32_t sub_agent_id = 0;
  std::uint32_t sequence = 0;
  std::uint32_t uptime_ms = 0;     ///< sysUptime at export — maps to timestamps
  std::vector<SflowFlowSample> samples;

  /// Encodes the datagram as sFlow v5 wire bytes (XDR, big endian).
  [[nodiscard]] std::vector<std::uint8_t> encode() const;

  /// Decodes wire bytes; unknown record types are skipped. Throws
  /// SflowDecodeError on malformed input.
  [[nodiscard]] static SflowDatagram decode(const std::vector<std::uint8_t>& wire);

  friend bool operator==(const SflowDatagram&, const SflowDatagram&) = default;
};

/// Feeds every flow sample of a datagram into a FlowCache, stamping packet
/// timestamps from the datagram uptime (collector behavior).
void ingest_datagram(const SflowDatagram& datagram, FlowCache& cache);

}  // namespace scrubber::net
