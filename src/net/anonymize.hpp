#pragma once
// Privacy layer of §4.3: IP addresses and member MACs are hashed with a
// secret salt immediately after capture, before storage or analysis.
//
// Two modes are provided: plain salted hashing (what the paper describes)
// and prefix-preserving anonymization (a simplified Crypto-PAn: equal
// prefixes map to equal prefixes), which keeps longest-prefix-match
// semantics intact so blackhole labeling still works on anonymized data.

#include <cstdint>

#include "net/flow.hpp"

namespace scrubber::net {

/// Salted, deterministic anonymizer for flow records.
class Anonymizer {
 public:
  enum class Mode {
    kHash,              ///< full salted hash (paper's approach)
    kPrefixPreserving,  ///< simplified Crypto-PAn (LPM survives)
  };

  explicit Anonymizer(std::uint64_t secret_salt, Mode mode = Mode::kHash)
      : salt_(secret_salt), mode_(mode) {}

  /// Anonymizes one address. Deterministic for a given salt; distinct
  /// inputs map to distinct outputs with overwhelming probability.
  [[nodiscard]] Ipv4Address anonymize(Ipv4Address ip) const noexcept;

  /// Anonymizes a member identifier (source MAC surrogate).
  [[nodiscard]] MemberId anonymize(MemberId member) const noexcept;

  /// Anonymizes all sensitive fields of a flow record in place.
  void anonymize(FlowRecord& flow) const noexcept;

  [[nodiscard]] Mode mode() const noexcept { return mode_; }

 private:
  [[nodiscard]] Ipv4Address prefix_preserving(Ipv4Address ip) const noexcept;

  std::uint64_t salt_;
  Mode mode_;
};

}  // namespace scrubber::net
