#pragma once
// Sampled flow records as exported by IXP monitoring (sFlow-style).
//
// A FlowRecord summarizes the sampled packets of one flow (5-tuple plus
// the IXP member port's MAC) within one time bin. The paper's entire
// pipeline consumes only these L2-4 headers; no payload is ever stored,
// mirroring the privacy constraints described in §4.3.

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "net/ipv4.hpp"
#include "net/protocols.hpp"

namespace scrubber::net {

/// Identifier of the IXP member port (anonymized source MAC address).
using MemberId = std::uint32_t;

/// One sampled, aggregated flow within a single time bin.
struct FlowRecord {
  std::uint32_t minute = 0;     ///< time bin index (1-minute resolution)
  Ipv4Address src_ip{};         ///< sampled source IP (salted-hash anonymized upstream)
  Ipv4Address dst_ip{};         ///< destination (potential victim) IP
  std::uint16_t src_port = 0;   ///< transport source port (0 for fragments / no L4)
  std::uint16_t dst_port = 0;   ///< transport destination port
  std::uint8_t protocol = 0;    ///< IANA protocol number
  std::uint8_t tcp_flags = 0;   ///< OR of TCP flags over sampled packets
  MemberId src_member = 0;      ///< ingress IXP member port (source MAC)
  std::uint32_t packets = 0;    ///< sampled packet count (scaled by sampling rate)
  std::uint64_t bytes = 0;      ///< sampled byte count (scaled by sampling rate)
  bool blackholed = false;      ///< label: dst matched an active blackhole route

  /// Mean sampled packet size in bytes; 0 when no packets were sampled.
  [[nodiscard]] double mean_packet_size() const noexcept {
    return packets == 0 ? 0.0
                        : static_cast<double>(bytes) / static_cast<double>(packets);
  }

  /// Well-known DDoS vector classification of this flow's header, if any.
  [[nodiscard]] std::optional<DdosVector> vector() const noexcept {
    return classify_vector(protocol, src_port, dst_port);
  }

  /// Compact human-readable representation (for logs and examples).
  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const FlowRecord&, const FlowRecord&) = default;
};

/// Serializes flow records in a compact binary format (little endian).
void write_flows(std::ostream& out, const std::vector<FlowRecord>& flows);

/// Reads flow records written by write_flows; throws std::runtime_error on
/// malformed input.
[[nodiscard]] std::vector<FlowRecord> read_flows(std::istream& in);

/// Writes a CSV header + rows (for offline inspection with other tools).
void write_flows_csv(std::ostream& out, const std::vector<FlowRecord>& flows);

}  // namespace scrubber::net
