#include "net/packet.hpp"

#include <limits>

#include "util/rng.hpp"

namespace scrubber::net {

PacketSampler::PacketSampler(std::uint32_t rate, std::uint64_t seed)
    : rate_(rate == 0 ? 1 : rate), state_(seed ^ 0x5A11'7E57ULL) {
  roll_skip();
}

void PacketSampler::roll_skip() noexcept {
  if (rate_ == 1) {
    skip_ = 0;
    return;
  }
  // Uniform skip in [0, 2*rate) yields a mean inter-sample gap of `rate`,
  // the classic sFlow agent behavior.
  skip_ = util::splitmix64(state_) % (2ULL * rate_);
}

bool PacketSampler::sample() noexcept {
  ++seen_;
  if (skip_ > 0) {
    --skip_;
    return false;
  }
  ++sampled_;
  roll_skip();
  return true;
}

void FlowCache::add(const PacketHeader& packet) {
  FlowKey key;
  key.minute = static_cast<std::uint32_t>(packet.timestamp_ms / 60000);
  key.src_ip = packet.src_ip.value();
  key.dst_ip = packet.dst_ip.value();
  key.src_port = packet.src_port;
  key.dst_port = packet.dst_port;
  key.protocol = packet.protocol;
  key.member = packet.ingress_member;

  Counters& counters = *cache_.try_emplace(key).first;
  counters.packets += 1;
  counters.bytes += packet.length;
  counters.tcp_flags |= packet.tcp_flags;
}

FlowRecord FlowCache::to_record(const FlowKey& key,
                                const Counters& counters) const {
  FlowRecord flow;
  flow.minute = key.minute;
  flow.src_ip = Ipv4Address(key.src_ip);
  flow.dst_ip = Ipv4Address(key.dst_ip);
  flow.src_port = key.src_port;
  flow.dst_port = key.dst_port;
  flow.protocol = key.protocol;
  flow.tcp_flags = counters.tcp_flags;
  flow.src_member = key.member;
  // Scale sampled counters to population estimates.
  flow.packets = static_cast<std::uint32_t>(counters.packets * sampling_rate_);
  flow.bytes = counters.bytes * sampling_rate_;
  return flow;
}

std::vector<FlowRecord> FlowCache::drain_before(std::uint32_t minute) {
  // extract_if visits dense entries in insertion order, so the output is
  // ordered by first-packet arrival — bit-identical to the old
  // sort-by-insertion-counter drain.
  std::vector<FlowRecord> out;
  cache_.extract_if(
      [minute](const FlowKey& key, const Counters&) {
        return key.minute < minute;
      },
      [&](const FlowKey& key, Counters&& counters) {
        out.push_back(to_record(key, counters));
      });
  return out;
}

std::vector<FlowRecord> FlowCache::drain_all() {
  return drain_before(std::numeric_limits<std::uint32_t>::max());
}

}  // namespace scrubber::net
