#include "net/ipv4.hpp"

#include <charconv>

namespace scrubber::net {
namespace {

/// Parses an integer in [0, max] from the front of `text`, advancing it.
std::optional<std::uint32_t> parse_uint(std::string_view& text,
                                        std::uint32_t max) noexcept {
  std::uint32_t value = 0;
  const auto* first = text.data();
  const auto* last = text.data() + text.size();
  const auto [ptr, ec] = std::from_chars(first, last, value);
  if (ec != std::errc{} || ptr == first || value > max) return std::nullopt;
  text.remove_prefix(static_cast<std::size_t>(ptr - first));
  return value;
}

}  // namespace

std::optional<Ipv4Address> Ipv4Address::parse(std::string_view text) noexcept {
  std::uint32_t value = 0;
  for (int octet = 0; octet < 4; ++octet) {
    if (octet > 0) {
      if (text.empty() || text.front() != '.') return std::nullopt;
      text.remove_prefix(1);
    }
    const auto part = parse_uint(text, 255);
    if (!part) return std::nullopt;
    value = (value << 8) | *part;
  }
  if (!text.empty()) return std::nullopt;
  return Ipv4Address(value);
}

std::string Ipv4Address::to_string() const {
  std::string out;
  out.reserve(15);
  for (int shift = 24; shift >= 0; shift -= 8) {
    if (shift != 24) out.push_back('.');
    out += std::to_string((value_ >> shift) & 0xFF);
  }
  return out;
}

std::optional<Ipv4Prefix> Ipv4Prefix::parse(std::string_view text) noexcept {
  const std::size_t slash = text.find('/');
  if (slash == std::string_view::npos) {
    const auto address = Ipv4Address::parse(text);
    if (!address) return std::nullopt;
    return Ipv4Prefix(*address, 32);
  }
  const auto address = Ipv4Address::parse(text.substr(0, slash));
  if (!address) return std::nullopt;
  std::string_view rest = text.substr(slash + 1);
  const auto length = parse_uint(rest, 32);
  if (!length || !rest.empty()) return std::nullopt;
  return Ipv4Prefix(*address, static_cast<std::uint8_t>(*length));
}

std::string Ipv4Prefix::to_string() const {
  return address_.to_string() + "/" + std::to_string(length_);
}

}  // namespace scrubber::net
