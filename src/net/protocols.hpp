#pragma once
// Transport protocol numbers and the catalog of well-known DDoS
// (reflection/amplification) service ports used throughout the paper's
// dataset validation (Figure 4) and attack-vector evaluation (Table 3).

#include <cstdint>
#include <optional>
#include <span>
#include <string_view>

namespace scrubber::net {

/// IANA protocol numbers relevant to IXP DDoS traffic.
enum class Protocol : std::uint8_t {
  kIcmp = 1,
  kTcp = 6,
  kUdp = 17,
  kGre = 47,
};

[[nodiscard]] constexpr std::uint8_t to_number(Protocol p) noexcept {
  return static_cast<std::uint8_t>(p);
}

/// Returns a short protocol name ("TCP", "UDP", ...) or "P<n>".
[[nodiscard]] std::string_view protocol_name(std::uint8_t protocol) noexcept;

/// DDoS reflection/amplification vectors distinguished by the paper.
/// The first seven are the "top 7 attack vectors" of Table 3; the rest
/// appear in Figure 4a's "other DDoS" group.
enum class DdosVector : std::uint8_t {
  kUdpFragment,  // non-initial fragments of amplified responses
  kDns,          // UDP/53
  kNtp,          // UDP/123 (monlist)
  kSnmp,         // UDP/161
  kLdap,         // CLDAP, UDP/389
  kSsdp,         // UDP/1900
  kAppleRd,      // Apple Remote Desktop ARMS, UDP/3283
  kMemcached,    // UDP/11211
  kChargen,      // UDP/19
  kWsDiscovery,  // UDP/3702
  kRpcbind,      // UDP+TCP/111
  kMssql,        // UDP/1434
  kDnsTcp,       // TCP/53
  kUbiquiti,     // UDP/10001
  kDhcpDiscover, // UDP/67
  kGre,          // protocol 47
  kWccp,         // UDP/2048
  kNetbios,      // UDP/137
  kRip,          // UDP/520
  kOpenVpn,      // UDP/1194
  kTftp,         // UDP/69
  kMsTerminal,   // UDP/3389 (RDP UDP amplification)
};

inline constexpr std::size_t kDdosVectorCount = 22;

/// Human-readable vector name matching the paper's figure labels.
[[nodiscard]] std::string_view vector_name(DdosVector v) noexcept;

/// Source (reflector) port and protocol signature of a vector.
struct VectorSignature {
  DdosVector vector;
  std::uint8_t protocol;   // IANA protocol number
  std::uint16_t src_port;  // reflector-side port; 0 when not port-based
};

/// All vector signatures, in DdosVector order.
[[nodiscard]] std::span<const VectorSignature> vector_signatures() noexcept;

/// Classifies a flow header as a well-known DDoS vector, if any.
/// A UDP flow with src and dst port 0 is treated as a UDP fragment
/// (sampled non-initial fragments carry no L4 header).
[[nodiscard]] std::optional<DdosVector> classify_vector(
    std::uint8_t protocol, std::uint16_t src_port, std::uint16_t dst_port) noexcept;

/// True when the header matches any well-known DDoS service signature.
[[nodiscard]] bool is_well_known_ddos_port(std::uint8_t protocol,
                                           std::uint16_t src_port,
                                           std::uint16_t dst_port) noexcept;

/// The "top 7" vectors reported per-vector in Table 3.
[[nodiscard]] std::span<const DdosVector> top7_vectors() noexcept;

}  // namespace scrubber::net
