#include "net/anonymize.hpp"

#include "util/rng.hpp"

namespace scrubber::net {

Ipv4Address Anonymizer::anonymize(Ipv4Address ip) const noexcept {
  if (mode_ == Mode::kPrefixPreserving) return prefix_preserving(ip);
  const std::uint64_t h = util::mix64(ip.value() ^ salt_);
  return Ipv4Address(static_cast<std::uint32_t>(h));
}

MemberId Anonymizer::anonymize(MemberId member) const noexcept {
  const std::uint64_t h = util::mix64((std::uint64_t{member} << 32) ^ salt_ ^
                                      0x3A3A3A3A3A3A3A3AULL);
  return static_cast<MemberId>(h & 0xFFFFFFFF);
}

Ipv4Address Anonymizer::prefix_preserving(Ipv4Address ip) const noexcept {
  // Simplified Crypto-PAn: bit i of the output flips based on a keyed
  // function of bits 0..i-1 of the input. Two addresses sharing a k-bit
  // prefix therefore share exactly a k-bit anonymized prefix.
  const std::uint32_t value = ip.value();
  std::uint32_t out = 0;
  for (int i = 0; i < 32; ++i) {
    const std::uint32_t prefix = i == 0 ? 0 : value >> (32 - i);
    const std::uint64_t keyed =
        util::mix64((std::uint64_t{prefix} << 6) ^ static_cast<std::uint64_t>(i) ^
                    salt_);
    const std::uint32_t original_bit = (value >> (31 - i)) & 1;
    const std::uint32_t flip = static_cast<std::uint32_t>(keyed & 1);
    out = (out << 1) | (original_bit ^ flip);
  }
  return Ipv4Address(out);
}

void Anonymizer::anonymize(FlowRecord& flow) const noexcept {
  flow.src_ip = anonymize(flow.src_ip);
  flow.dst_ip = anonymize(flow.dst_ip);
  flow.src_member = anonymize(flow.src_member);
}

}  // namespace scrubber::net
