#pragma once
// IPv4 address and prefix value types.
//
// Blackholing at IXPs is announced for IPv4 prefixes (commonly /32 host
// routes, RFC 7999); these types provide parsing, formatting, ordering,
// and containment tests used by the BGP substrate and flow labeler.

#include <compare>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>

namespace scrubber::net {

/// An IPv4 address stored in host byte order.
class Ipv4Address {
 public:
  constexpr Ipv4Address() noexcept = default;
  constexpr explicit Ipv4Address(std::uint32_t value) noexcept : value_(value) {}

  /// Builds from four octets (a.b.c.d).
  constexpr static Ipv4Address from_octets(std::uint8_t a, std::uint8_t b,
                                           std::uint8_t c, std::uint8_t d) noexcept {
    return Ipv4Address((std::uint32_t{a} << 24) | (std::uint32_t{b} << 16) |
                       (std::uint32_t{c} << 8) | std::uint32_t{d});
  }

  /// Parses dotted-quad notation; returns nullopt on malformed input.
  static std::optional<Ipv4Address> parse(std::string_view text) noexcept;

  [[nodiscard]] constexpr std::uint32_t value() const noexcept { return value_; }

  /// Dotted-quad string, e.g. "192.0.2.1".
  [[nodiscard]] std::string to_string() const;

  constexpr auto operator<=>(const Ipv4Address&) const noexcept = default;

 private:
  std::uint32_t value_ = 0;
};

/// An IPv4 prefix (address + mask length), normalized so host bits are zero.
class Ipv4Prefix {
 public:
  constexpr Ipv4Prefix() noexcept = default;

  /// Constructs a normalized prefix; lengths > 32 are clamped to 32.
  constexpr Ipv4Prefix(Ipv4Address address, std::uint8_t length) noexcept
      : length_(length > 32 ? 32 : length),
        address_(Ipv4Address(address.value() & mask_for(length_))) {}

  /// Parses "a.b.c.d/len"; a bare address parses as a /32.
  static std::optional<Ipv4Prefix> parse(std::string_view text) noexcept;

  /// Host route (/32) for a single address.
  constexpr static Ipv4Prefix host(Ipv4Address address) noexcept {
    return Ipv4Prefix(address, 32);
  }

  [[nodiscard]] constexpr Ipv4Address address() const noexcept { return address_; }
  [[nodiscard]] constexpr std::uint8_t length() const noexcept { return length_; }

  /// Network mask for this prefix length.
  [[nodiscard]] constexpr std::uint32_t mask() const noexcept {
    return mask_for(length_);
  }

  /// True when `ip` lies inside this prefix.
  [[nodiscard]] constexpr bool contains(Ipv4Address ip) const noexcept {
    return (ip.value() & mask()) == address_.value();
  }

  /// True when `other` is fully contained in (or equal to) this prefix.
  [[nodiscard]] constexpr bool covers(const Ipv4Prefix& other) const noexcept {
    return length_ <= other.length_ && contains(other.address_);
  }

  /// "a.b.c.d/len" string.
  [[nodiscard]] std::string to_string() const;

  constexpr auto operator<=>(const Ipv4Prefix&) const noexcept = default;

 private:
  constexpr static std::uint32_t mask_for(std::uint8_t length) noexcept {
    return length == 0 ? 0U : ~std::uint32_t{0} << (32 - length);
  }

  std::uint8_t length_ = 0;
  Ipv4Address address_{};
};

}  // namespace scrubber::net

template <>
struct std::hash<scrubber::net::Ipv4Address> {
  std::size_t operator()(const scrubber::net::Ipv4Address& a) const noexcept {
    return std::hash<std::uint32_t>{}(a.value());
  }
};

template <>
struct std::hash<scrubber::net::Ipv4Prefix> {
  std::size_t operator()(const scrubber::net::Ipv4Prefix& p) const noexcept {
    return std::hash<std::uint64_t>{}(
        (static_cast<std::uint64_t>(p.address().value()) << 8) | p.length());
  }
};
