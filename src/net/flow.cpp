#include "net/flow.hpp"

#include <array>
#include <cstring>
#include <istream>
#include <ostream>
#include <stdexcept>

namespace scrubber::net {
namespace {

constexpr std::array<char, 4> kMagic{'S', 'F', 'L', '1'};

template <typename T>
void put(std::ostream& out, T value) {
  // Host order is little-endian on all supported targets; fixed-width fields.
  out.write(reinterpret_cast<const char*>(&value), sizeof value);
}

template <typename T>
T get(std::istream& in) {
  T value{};
  in.read(reinterpret_cast<char*>(&value), sizeof value);
  if (!in) throw std::runtime_error("truncated flow stream");
  return value;
}

}  // namespace

std::string FlowRecord::to_string() const {
  std::string out;
  out += "[m=" + std::to_string(minute) + "] ";
  out += src_ip.to_string() + ":" + std::to_string(src_port);
  out += " -> ";
  out += dst_ip.to_string() + ":" + std::to_string(dst_port);
  out += " ";
  out += protocol_name(protocol);
  out += " pkts=" + std::to_string(packets);
  out += " bytes=" + std::to_string(bytes);
  if (blackholed) out += " BH";
  return out;
}

void write_flows(std::ostream& out, const std::vector<FlowRecord>& flows) {
  out.write(kMagic.data(), kMagic.size());
  put<std::uint64_t>(out, flows.size());
  for (const auto& f : flows) {
    put<std::uint32_t>(out, f.minute);
    put<std::uint32_t>(out, f.src_ip.value());
    put<std::uint32_t>(out, f.dst_ip.value());
    put<std::uint16_t>(out, f.src_port);
    put<std::uint16_t>(out, f.dst_port);
    put<std::uint8_t>(out, f.protocol);
    put<std::uint8_t>(out, f.tcp_flags);
    put<std::uint32_t>(out, f.src_member);
    put<std::uint32_t>(out, f.packets);
    put<std::uint64_t>(out, f.bytes);
    put<std::uint8_t>(out, f.blackholed ? 1 : 0);
  }
}

std::vector<FlowRecord> read_flows(std::istream& in) {
  std::array<char, 4> magic{};
  in.read(magic.data(), magic.size());
  if (!in || magic != kMagic) throw std::runtime_error("bad flow stream magic");
  const auto count = get<std::uint64_t>(in);
  std::vector<FlowRecord> flows;
  flows.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    FlowRecord f;
    f.minute = get<std::uint32_t>(in);
    f.src_ip = Ipv4Address(get<std::uint32_t>(in));
    f.dst_ip = Ipv4Address(get<std::uint32_t>(in));
    f.src_port = get<std::uint16_t>(in);
    f.dst_port = get<std::uint16_t>(in);
    f.protocol = get<std::uint8_t>(in);
    f.tcp_flags = get<std::uint8_t>(in);
    f.src_member = get<std::uint32_t>(in);
    f.packets = get<std::uint32_t>(in);
    f.bytes = get<std::uint64_t>(in);
    f.blackholed = get<std::uint8_t>(in) != 0;
    flows.push_back(f);
  }
  return flows;
}

void write_flows_csv(std::ostream& out, const std::vector<FlowRecord>& flows) {
  out << "minute,src_ip,dst_ip,src_port,dst_port,protocol,tcp_flags,"
         "src_member,packets,bytes,blackholed\n";
  for (const auto& f : flows) {
    out << f.minute << ',' << f.src_ip.to_string() << ',' << f.dst_ip.to_string()
        << ',' << f.src_port << ',' << f.dst_port << ','
        << static_cast<int>(f.protocol) << ',' << static_cast<int>(f.tcp_flags)
        << ',' << f.src_member << ',' << f.packets << ',' << f.bytes << ','
        << (f.blackholed ? 1 : 0) << '\n';
  }
}

}  // namespace scrubber::net
