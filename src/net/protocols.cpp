#include "net/protocols.hpp"

#include <array>

namespace scrubber::net {
namespace {

constexpr std::array<VectorSignature, kDdosVectorCount> kSignatures{{
    {DdosVector::kUdpFragment, 17, 0},
    {DdosVector::kDns, 17, 53},
    {DdosVector::kNtp, 17, 123},
    {DdosVector::kSnmp, 17, 161},
    {DdosVector::kLdap, 17, 389},
    {DdosVector::kSsdp, 17, 1900},
    {DdosVector::kAppleRd, 17, 3283},
    {DdosVector::kMemcached, 17, 11211},
    {DdosVector::kChargen, 17, 19},
    {DdosVector::kWsDiscovery, 17, 3702},
    {DdosVector::kRpcbind, 17, 111},
    {DdosVector::kMssql, 17, 1434},
    {DdosVector::kDnsTcp, 6, 53},
    {DdosVector::kUbiquiti, 17, 10001},
    {DdosVector::kDhcpDiscover, 17, 67},
    {DdosVector::kGre, 47, 0},
    {DdosVector::kWccp, 17, 2048},
    {DdosVector::kNetbios, 17, 137},
    {DdosVector::kRip, 17, 520},
    {DdosVector::kOpenVpn, 17, 1194},
    {DdosVector::kTftp, 17, 69},
    {DdosVector::kMsTerminal, 17, 3389},
}};

constexpr std::array<DdosVector, 7> kTop7{
    DdosVector::kUdpFragment, DdosVector::kDns,  DdosVector::kNtp,
    DdosVector::kSnmp,        DdosVector::kLdap, DdosVector::kSsdp,
    DdosVector::kAppleRd,
};

// Reflection signatures keyed by source port, one direct-indexed table
// per protocol that carries any (0 = no signature, else vector + 1). The
// linear kSignatures scan this replaces sat on the per-flow aggregation
// path; the table lookup is exact for it because every signature port is
// unique within its protocol.
template <std::uint8_t Protocol>
consteval std::array<std::uint8_t, 65536> make_port_table() {
  std::array<std::uint8_t, 65536> table{};
  for (const VectorSignature& sig : kSignatures) {
    if (sig.protocol == Protocol && sig.src_port != 0) {
      table[sig.src_port] =
          static_cast<std::uint8_t>(static_cast<std::size_t>(sig.vector) + 1);
    }
  }
  return table;
}
constexpr std::array<std::uint8_t, 65536> kUdpPortTable = make_port_table<17>();
constexpr std::array<std::uint8_t, 65536> kTcpPortTable = make_port_table<6>();

}  // namespace

std::string_view protocol_name(std::uint8_t protocol) noexcept {
  switch (protocol) {
    case 1: return "ICMP";
    case 6: return "TCP";
    case 17: return "UDP";
    case 47: return "GRE";
    default: return "P?";
  }
}

std::string_view vector_name(DdosVector v) noexcept {
  switch (v) {
    case DdosVector::kUdpFragment: return "UDP Fragm.";
    case DdosVector::kDns: return "DNS";
    case DdosVector::kNtp: return "NTP";
    case DdosVector::kSnmp: return "SNMP";
    case DdosVector::kLdap: return "LDAP";
    case DdosVector::kSsdp: return "SSDP";
    case DdosVector::kAppleRd: return "Apple RD";
    case DdosVector::kMemcached: return "memcached";
    case DdosVector::kChargen: return "chargen";
    case DdosVector::kWsDiscovery: return "WS-Disc.";
    case DdosVector::kRpcbind: return "rpcbind";
    case DdosVector::kMssql: return "MSSQL";
    case DdosVector::kDnsTcp: return "DNS (TCP)";
    case DdosVector::kUbiquiti: return "Ubiq. SD";
    case DdosVector::kDhcpDiscover: return "DHCPDisc.";
    case DdosVector::kGre: return "GRE";
    case DdosVector::kWccp: return "WCCP";
    case DdosVector::kNetbios: return "NetBios";
    case DdosVector::kRip: return "RIP";
    case DdosVector::kOpenVpn: return "OpenVPN";
    case DdosVector::kTftp: return "TFTP";
    case DdosVector::kMsTerminal: return "Micr. TS";
  }
  return "unknown";
}

std::span<const VectorSignature> vector_signatures() noexcept {
  return kSignatures;
}

std::optional<DdosVector> classify_vector(std::uint8_t protocol,
                                          std::uint16_t src_port,
                                          std::uint16_t dst_port) noexcept {
  if (protocol == 47) return DdosVector::kGre;
  if (protocol == 17 && src_port == 0 && dst_port == 0)
    return DdosVector::kUdpFragment;
  // Reflection traffic is identified by its source (reflector) port.
  std::uint8_t hit = 0;
  if (protocol == 17) {
    hit = kUdpPortTable[src_port];
  } else if (protocol == 6) {
    hit = kTcpPortTable[src_port];
  }
  if (hit != 0) return static_cast<DdosVector>(hit - 1);
  return std::nullopt;
}

bool is_well_known_ddos_port(std::uint8_t protocol, std::uint16_t src_port,
                             std::uint16_t dst_port) noexcept {
  return classify_vector(protocol, src_port, dst_port).has_value();
}

std::span<const DdosVector> top7_vectors() noexcept { return kTop7; }

}  // namespace scrubber::net
