#pragma once
// ACL generation: turns accepted tagging rules into router access-control
// list entries — the deployable output of Step 1 ("filters … which can be
// used for dropping, shaping, monitoring or re-routing", §5). The syntax
// is a generic Cisco-like single line per rule.

#include <string>
#include <vector>

#include "arm/rules.hpp"

namespace scrubber::arm {
struct TaggingRule;
}

namespace scrubber::core {

/// Action applied by generated ACL entries.
enum class AclAction { kDeny, kRateLimit, kMonitor };

/// Renders one tagging rule as an ACL line, e.g.
///   "deny udp any eq 123 any range 1024 65535 match-size 401-500  ! id=..."
/// Rules without a port constraint match any port; complement port items
/// render as "range 1024 65535" (best effort for `~{...}` semantics).
[[nodiscard]] std::string acl_entry(const arm::TaggingRule& rule,
                                    AclAction action = AclAction::kDeny);

/// Renders all *accepted* rules of a set as an ACL, one entry per line,
/// terminated by an implicit "permit ip any any" line.
[[nodiscard]] std::string generate_acl(const arm::RuleSet& rules,
                                       AclAction action = AclAction::kDeny);

}  // namespace scrubber::core
