#include "core/tag_predictor.hpp"

#include <algorithm>

#include "util/flat_hash.hpp"

namespace scrubber::core {

void TagPredictor::fit(const AggregatedDataset& data) {
  tags_.clear();
  models_.clear();

  // Frequency of each rule tag over the training records. The build order
  // does not matter (ranked is fully sorted below), so a flat table
  // replaces the node-based std::map.
  util::FlatHash<std::uint32_t, std::size_t> tag_counts;
  tag_counts.reserve(data.size());
  for (const auto& meta : data.meta) {
    for (const std::uint32_t tag : meta.rule_tags) ++tag_counts[tag];
  }
  std::vector<std::pair<std::size_t, std::uint32_t>> ranked;
  ranked.reserve(tag_counts.size());
  tag_counts.for_each([&](std::uint32_t tag, std::size_t count) {
    if (count >= config_.min_positive && count + config_.min_positive <= data.size())
      ranked.emplace_back(count, tag);
  });
  std::sort(ranked.rbegin(), ranked.rend());
  if (ranked.size() > config_.max_rules) ranked.resize(config_.max_rules);

  for (const auto& [count, tag] : ranked) {
    // Relabel the dataset: positive iff this tag matched the record.
    ml::Dataset relabeled = data.data;
    std::vector<int> labels(relabeled.n_rows(), 0);
    for (std::size_t i = 0; i < data.size(); ++i) {
      const auto& tags = data.meta[i].rule_tags;
      labels[i] = std::binary_search(tags.begin(), tags.end(), tag) ? 1 : 0;
    }
    relabeled.set_labels(std::move(labels));

    ml::Pipeline pipeline = ml::make_model_pipeline(ml::ModelKind::kXgb);
    pipeline.fit(relabeled);
    tags_.push_back(tag);
    models_.push_back(std::move(pipeline));
  }
}

std::vector<std::uint32_t> TagPredictor::predict(const AggregatedDataset& data,
                                                 std::size_t index) const {
  std::vector<std::uint32_t> out;
  const auto row = data.data.row(index);
  for (std::size_t m = 0; m < models_.size(); ++m) {
    if (models_[m].score(row) >= config_.threshold) out.push_back(tags_[m]);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<std::vector<std::uint32_t>> TagPredictor::predict_all(
    const AggregatedDataset& data) const {
  std::vector<std::vector<std::uint32_t>> out(data.size());
  for (std::size_t m = 0; m < models_.size(); ++m) {
    const std::vector<double> scores = models_[m].score_all(data.data);
    for (std::size_t i = 0; i < data.size(); ++i) {
      if (scores[i] >= config_.threshold) out[i].push_back(tags_[m]);
    }
  }
  for (auto& tags : out) std::sort(tags.begin(), tags.end());
  return out;
}

TagAgreement evaluate_tags(const TagPredictor& predictor,
                           const AggregatedDataset& data) {
  TagAgreement agreement;
  const auto& learned = predictor.learned_tags();
  const auto all_predicted = predictor.predict_all(data);
  std::uint64_t tp = 0, fp = 0, fn = 0;
  for (std::size_t i = 0; i < data.size(); ++i) {
    const auto& predicted = all_predicted[i];
    // Ground truth restricted to learnable tags.
    std::vector<std::uint32_t> truth;
    for (const std::uint32_t tag : data.meta[i].rule_tags) {
      if (std::find(learned.begin(), learned.end(), tag) != learned.end())
        truth.push_back(tag);
    }
    std::sort(truth.begin(), truth.end());
    ++agreement.records;
    agreement.exact_set_matches += (predicted == truth);
    for (const std::uint32_t tag : predicted) {
      (std::binary_search(truth.begin(), truth.end(), tag) ? tp : fp) += 1;
    }
    for (const std::uint32_t tag : truth) {
      if (!std::binary_search(predicted.begin(), predicted.end(), tag)) ++fn;
    }
  }
  agreement.precision =
      tp + fp == 0 ? 0.0 : static_cast<double>(tp) / static_cast<double>(tp + fp);
  agreement.recall =
      tp + fn == 0 ? 0.0 : static_cast<double>(tp) / static_cast<double>(tp + fn);
  return agreement;
}

}  // namespace scrubber::core
