#include "core/balancer.hpp"

#include <algorithm>

namespace scrubber::core {

void Balancer::append_flow(IpGroup& group, const net::FlowRecord& flow) {
  FlowNode* node = arena_.alloc<FlowNode>(1);
  node->flow = &flow;
  node->next = nullptr;
  (group.head == nullptr ? group.head : group.tail->next) = node;
  group.tail = node;
  ++group.count;
}

void Balancer::add_minute(std::uint32_t minute,
                          std::span<const net::FlowRecord> flows) {
  MinuteBalanceStats stats;
  stats.minute = minute;
  stats.raw_flows = flows.size();

  // Partition by label, group by destination IP: flat tables over
  // arena-backed per-IP chains — no per-IP vector, no per-flow node
  // allocation once the scratch is warm.
  arena_.reset();
  bh_by_ip_.clear();
  benign_by_ip_.clear();
  for (const auto& flow : flows) {
    stats.raw_bytes += flow.bytes;
    if (flow.blackholed) {
      stats.blackhole_bytes += flow.bytes;
      ++stats.blackhole_flows;
      append_flow(bh_by_ip_[flow.dst_ip.value()], flow);
    } else {
      append_flow(benign_by_ip_[flow.dst_ip.value()], flow);
    }
  }
  stats.blackhole_unique_ips = static_cast<std::uint32_t>(bh_by_ip_.size());

  totals_.raw_flows += stats.raw_flows;
  totals_.raw_bytes += stats.raw_bytes;

  if (!bh_by_ip_.empty() && !benign_by_ip_.empty()) {
    // Keep every blackholed flow, in first-seen destination-IP order
    // (insertion-ordered table iteration — deterministic across
    // platforms, unlike the unordered_map walk it replaces).
    bh_by_ip_.for_each([&](std::uint32_t, const IpGroup& group) {
      for (const FlowNode* node = group.head; node != nullptr;
           node = node->next) {
        balanced_.push_back(*node->flow);
      }
      totals_.balanced_blackhole_flows += group.count;
      totals_.balanced_flows += group.count;
    });

    // Select as many benign destination IPs as blackholed ones. Each
    // blackholed IP is paired with the unused benign IP whose flow count
    // is *closest* to its own ("an equal number of flows per destination
    // IP", §3): this preserves the flows-per-IP distribution across the
    // classes (the Figure 3c correlation) and — unlike always taking the
    // busiest benign hosts — keeps the benign class representative of the
    // full benign service mix. Residual deficits spill over to further
    // benign IPs (capped) so the classes stay flow-balanced (Table 2).
    std::vector<std::pair<std::size_t, std::uint32_t>> benign_ranked;
    benign_ranked.reserve(benign_by_ip_.size());
    benign_by_ip_.for_each([&](std::uint32_t ip, const IpGroup& group) {
      benign_ranked.emplace_back(group.count, ip);
    });
    std::sort(benign_ranked.begin(), benign_ranked.end());  // ascending count

    std::vector<std::size_t> bh_sizes;
    bh_sizes.reserve(bh_by_ip_.size());
    bh_by_ip_.for_each([&](std::uint32_t, const IpGroup& group) {
      bh_sizes.push_back(group.count);
    });
    std::sort(bh_sizes.begin(), bh_sizes.end(), std::greater<>());

    auto take_from = [&](std::uint32_t ip, std::size_t want, bool spillover) {
      const IpGroup& group = *benign_by_ip_.find(ip);
      const std::size_t take = std::min(want, group.count);
      if (take < group.count) {
        // sample_indices returns ascending indices: one chain walk picks
        // them all.
        const auto chosen = rng_.sample_indices(group.count, take);
        const FlowNode* node = group.head;
        std::size_t at = 0;
        for (const std::size_t i : chosen) {
          while (at < i) {
            node = node->next;
            ++at;
          }
          balanced_.push_back(*node->flow);
        }
      } else {
        for (const FlowNode* node = group.head; node != nullptr;
             node = node->next) {
          balanced_.push_back(*node->flow);
        }
      }
      if (spillover) {
        stats.benign_spillover_flows += take;
        ++stats.benign_spillover_ips;
      } else {
        stats.benign_selected_flows += take;
        ++stats.benign_selected_ips;
      }
      return take;
    };

    // Closest-count pairing over the ascending benign ranking.
    std::size_t deficit = 0;
    for (const std::size_t want : bh_sizes) {
      if (benign_ranked.empty()) break;
      auto it = std::lower_bound(
          benign_ranked.begin(), benign_ranked.end(), want,
          [](const auto& entry, std::size_t w) { return entry.first < w; });
      if (it == benign_ranked.end()) {
        --it;  // all remaining are smaller: take the largest
      } else if (it != benign_ranked.begin()) {
        // Choose the closer of the two neighbors.
        const auto below = std::prev(it);
        if (want - below->first < it->first - want) it = below;
      }
      const std::size_t got = take_from(it->second, want, false);
      deficit += want - got;
      benign_ranked.erase(it);
    }
    // Spillover: cover the remaining deficit from the largest unused
    // benign IPs. Capped so a single huge attack cannot flood the set
    // with hundreds of thin destination IPs; a small residual flow
    // imbalance matches the paper's 48-55% range.
    const std::size_t spillover_cap = 3 * bh_by_ip_.size() + 2;
    while (deficit > 0 && !benign_ranked.empty() &&
           stats.benign_spillover_ips < spillover_cap) {
      deficit -= take_from(benign_ranked.back().second, deficit, true);
      benign_ranked.pop_back();
    }
    totals_.balanced_flows +=
        stats.benign_selected_flows + stats.benign_spillover_flows;
  }

  minute_stats_.push_back(stats);
}

std::vector<net::FlowRecord> balance_trace(std::span<const net::FlowRecord> flows,
                                           std::uint64_t seed,
                                           BalanceTotals* totals) {
  Balancer balancer(seed);
  std::size_t start = 0;
  while (start < flows.size()) {
    std::size_t end = start;
    const std::uint32_t minute = flows[start].minute;
    while (end < flows.size() && flows[end].minute == minute) ++end;
    balancer.add_minute(minute, flows.subspan(start, end - start));
    start = end;
  }
  if (totals != nullptr) *totals = balancer.totals();
  return balancer.take_balanced();
}

}  // namespace scrubber::core
