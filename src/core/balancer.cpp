#include "core/balancer.hpp"

#include <algorithm>
#include <unordered_map>

namespace scrubber::core {

void Balancer::add_minute(std::uint32_t minute,
                          std::span<const net::FlowRecord> flows) {
  MinuteBalanceStats stats;
  stats.minute = minute;
  stats.raw_flows = flows.size();

  // Partition by label, group by destination IP.
  std::unordered_map<std::uint32_t, std::vector<const net::FlowRecord*>> bh_by_ip;
  std::unordered_map<std::uint32_t, std::vector<const net::FlowRecord*>> benign_by_ip;
  for (const auto& flow : flows) {
    stats.raw_bytes += flow.bytes;
    if (flow.blackholed) {
      stats.blackhole_bytes += flow.bytes;
      ++stats.blackhole_flows;
      bh_by_ip[flow.dst_ip.value()].push_back(&flow);
    } else {
      benign_by_ip[flow.dst_ip.value()].push_back(&flow);
    }
  }
  stats.blackhole_unique_ips = static_cast<std::uint32_t>(bh_by_ip.size());

  totals_.raw_flows += stats.raw_flows;
  totals_.raw_bytes += stats.raw_bytes;

  if (!bh_by_ip.empty() && !benign_by_ip.empty()) {
    // Keep every blackholed flow.
    for (const auto& [ip, group] : bh_by_ip) {
      for (const auto* flow : group) balanced_.push_back(*flow);
      totals_.balanced_blackhole_flows += group.size();
      totals_.balanced_flows += group.size();
    }

    // Select as many benign destination IPs as blackholed ones. Each
    // blackholed IP is paired with the unused benign IP whose flow count
    // is *closest* to its own ("an equal number of flows per destination
    // IP", §3): this preserves the flows-per-IP distribution across the
    // classes (the Figure 3c correlation) and — unlike always taking the
    // busiest benign hosts — keeps the benign class representative of the
    // full benign service mix. Residual deficits spill over to further
    // benign IPs (capped) so the classes stay flow-balanced (Table 2).
    std::vector<std::pair<std::size_t, std::uint32_t>> benign_ranked;
    benign_ranked.reserve(benign_by_ip.size());
    for (const auto& [ip, group] : benign_by_ip)
      benign_ranked.emplace_back(group.size(), ip);
    std::sort(benign_ranked.begin(), benign_ranked.end());  // ascending count

    std::vector<std::size_t> bh_sizes;
    bh_sizes.reserve(bh_by_ip.size());
    for (const auto& [ip, group] : bh_by_ip) bh_sizes.push_back(group.size());
    std::sort(bh_sizes.begin(), bh_sizes.end(), std::greater<>());

    auto take_from = [&](std::uint32_t ip, std::size_t want, bool spillover) {
      auto& group = benign_by_ip[ip];
      const std::size_t take = std::min(want, group.size());
      if (take < group.size()) {
        const auto chosen = rng_.sample_indices(group.size(), take);
        for (const std::size_t i : chosen) balanced_.push_back(*group[i]);
      } else {
        for (const auto* flow : group) balanced_.push_back(*flow);
      }
      if (spillover) {
        stats.benign_spillover_flows += take;
        ++stats.benign_spillover_ips;
      } else {
        stats.benign_selected_flows += take;
        ++stats.benign_selected_ips;
      }
      return take;
    };

    // Closest-count pairing over the ascending benign ranking.
    std::size_t deficit = 0;
    for (const std::size_t want : bh_sizes) {
      if (benign_ranked.empty()) break;
      auto it = std::lower_bound(
          benign_ranked.begin(), benign_ranked.end(), want,
          [](const auto& entry, std::size_t w) { return entry.first < w; });
      if (it == benign_ranked.end()) {
        --it;  // all remaining are smaller: take the largest
      } else if (it != benign_ranked.begin()) {
        // Choose the closer of the two neighbors.
        const auto below = std::prev(it);
        if (want - below->first < it->first - want) it = below;
      }
      const std::size_t got = take_from(it->second, want, false);
      deficit += want - got;
      benign_ranked.erase(it);
    }
    // Spillover: cover the remaining deficit from the largest unused
    // benign IPs. Capped so a single huge attack cannot flood the set
    // with hundreds of thin destination IPs; a small residual flow
    // imbalance matches the paper's 48-55% range.
    const std::size_t spillover_cap = 3 * bh_by_ip.size() + 2;
    while (deficit > 0 && !benign_ranked.empty() &&
           stats.benign_spillover_ips < spillover_cap) {
      deficit -= take_from(benign_ranked.back().second, deficit, true);
      benign_ranked.pop_back();
    }
    totals_.balanced_flows +=
        stats.benign_selected_flows + stats.benign_spillover_flows;
  }

  minute_stats_.push_back(stats);
}

std::vector<net::FlowRecord> balance_trace(std::span<const net::FlowRecord> flows,
                                           std::uint64_t seed,
                                           BalanceTotals* totals) {
  Balancer balancer(seed);
  std::size_t start = 0;
  while (start < flows.size()) {
    std::size_t end = start;
    const std::uint32_t minute = flows[start].minute;
    while (end < flows.size() && flows[end].minute == minute) ++end;
    balancer.add_minute(minute, flows.subspan(start, end - start));
    start = end;
  }
  if (totals != nullptr) *totals = balancer.totals();
  return balancer.take_balanced();
}

}  // namespace scrubber::core
