#pragma once
// Multiclass tagging-rule prediction — the alternative design §5.2.2
// discusses but does not build: instead of classifying targets and then
// looking up which mined rules matched, predict the applicable tagging
// rules (ACLs) directly from the aggregated record, one-vs-rest.
//
// The paper notes the trade-off: this removes the post-hoc rule matching
// at prediction time but the predicted tags are model output rather than
// rules applied to raw data, i.e. less interpretable. The bench
// `bench_tag_prediction` quantifies how well predicted tags agree with
// ground-truth matching.

#include <memory>
#include <vector>

#include "core/aggregator.hpp"
#include "ml/pipeline.hpp"

namespace scrubber::core {

/// One-vs-rest predictor of tagging rules on aggregated target records.
class TagPredictor {
 public:
  struct Config {
    std::size_t max_rules = 16;        ///< predict only the most frequent rules
    std::size_t min_positive = 10;     ///< skip rules too rare to learn
    double threshold = 0.5;            ///< per-rule decision threshold
  };

  TagPredictor() = default;
  explicit TagPredictor(Config config) : config_(config) {}

  /// Trains one binary pipeline per sufficiently frequent rule tag in
  /// `data` (tags come from RecordMeta::rule_tags).
  void fit(const AggregatedDataset& data);

  /// Predicted rule-tag indices (into the RuleSet used at aggregation
  /// time) for row `index`, ascending.
  [[nodiscard]] std::vector<std::uint32_t> predict(const AggregatedDataset& data,
                                                   std::size_t index) const;

  /// Predicted tag sets for every record: each one-vs-rest model scores
  /// the whole dataset in one batch pass instead of per row. Identical
  /// output to calling predict() per index.
  [[nodiscard]] std::vector<std::vector<std::uint32_t>> predict_all(
      const AggregatedDataset& data) const;

  /// Rule tags this predictor learned to emit.
  [[nodiscard]] const std::vector<std::uint32_t>& learned_tags() const noexcept {
    return tags_;
  }

  [[nodiscard]] bool trained() const noexcept { return !models_.empty(); }

 private:
  Config config_;
  std::vector<std::uint32_t> tags_;          // tag id per model
  std::vector<ml::Pipeline> models_;         // one-vs-rest pipelines
};

/// Micro-averaged precision/recall of predicted tag sets against the
/// ground-truth matched tags, restricted to the predictor's learned tags.
struct TagAgreement {
  double precision = 0.0;
  double recall = 0.0;
  std::uint64_t exact_set_matches = 0;  ///< records with identical tag sets
  std::uint64_t records = 0;
};

[[nodiscard]] TagAgreement evaluate_tags(const TagPredictor& predictor,
                                         const AggregatedDataset& data);

}  // namespace scrubber::core
