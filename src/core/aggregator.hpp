#pragma once
// Step 2 feature construction (§5.2.1, Figure 7): aggregation of balanced
// flows into per-(minute, target IP) records.
//
// For every record, each categorical flow property in
//   C = {src_ip, src_port, dst_port, src_member, protocol}
// is ranked by each non-categorical metric in
//   M = {mean_packet_size, sum_bytes, sum_packets}
// keeping the top r = 5 entries. Each ranking contributes 2*r columns (the
// categorical value and its metric), giving |C|*|M|*2*r = 150 feature
// columns. Missing ranks are NaN (imputed later). Deliberately redundant —
// Appendix B discusses why — with feature elimination downstream.
//
// The record label is 1 iff any constituent flow was blackholed. Matched
// accepted tagging rules are annotated (but never used as features, which
// would leak Step 1 into Step 2) for the RBC baseline and Figure 14;
// a dominant attack vector is derived from the headers for the per-vector
// breakdown of Table 3.

#include <optional>
#include <span>
#include <vector>

#include "arm/rules.hpp"
#include "ml/dataset.hpp"
#include "net/flow.hpp"

namespace scrubber::core {

/// Number of ranks kept per (categorical, metric) ranking.
inline constexpr std::size_t kRanks = 5;

/// Side metadata of one aggregated record (parallel to dataset rows).
struct RecordMeta {
  std::uint32_t minute = 0;
  net::Ipv4Address target;
  std::vector<std::uint32_t> rule_tags;  ///< indices of matching accepted rules
  std::optional<net::DdosVector> dominant_vector;
  std::uint32_t flow_count = 0;
};

/// An aggregated dataset: the ML matrix plus per-row metadata.
struct AggregatedDataset {
  ml::Dataset data;
  std::vector<RecordMeta> meta;

  [[nodiscard]] std::size_t size() const noexcept { return data.n_rows(); }

  /// Row-subset preserving metadata alignment.
  [[nodiscard]] AggregatedDataset subset(std::span<const std::size_t> indices) const;

  /// Appends another aggregated dataset (same schema).
  void append(const AggregatedDataset& other);
};

/// Builds aggregated records from balanced flows.
///
/// The implementation is a sort-based group-by: one index sort by
/// (minute, target) turns every record into a contiguous flow range, and
/// the independent per-group feature rows are built in parallel on
/// util::training_pool() into pre-sized slots. Output is bit-identical
/// for any thread count (DESIGN.md §10).
class Aggregator {
 public:
  /// The fixed 150-column schema (+ categorical/numeric kinds).
  [[nodiscard]] static std::vector<ml::ColumnInfo> schema();

  /// Aggregates flows into per-(minute, target) records. When `rules` is
  /// given, each record is annotated with the accepted rules matching any
  /// of its flows.
  [[nodiscard]] AggregatedDataset aggregate(
      std::span<const net::FlowRecord> flows,
      const arm::RuleSet* rules = nullptr) const;

  /// Caps the parallel feature build at `threads` workers (0 = the full
  /// training pool). Any value produces bit-identical output; this is a
  /// resource knob, not a semantic one.
  void set_threads(unsigned threads) noexcept { threads_ = threads; }
  [[nodiscard]] unsigned threads() const noexcept { return threads_; }

 private:
  arm::Itemizer itemizer_;
  unsigned threads_ = 0;
};

}  // namespace scrubber::core
