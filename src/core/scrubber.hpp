#pragma once
// The IXP Scrubber facade: the two-step ML system of §5.
//
// Step 1 (rule tagging): mine association rules from balanced flows with
// FP-Growth, drop non-{blackhole} consequents, minimize with Algorithm 1,
// and hand the survivors to an operator curation workflow (RuleSet).
//
// Step 2 (classification): aggregate flows to per-target records, WoE-
// encode, and classify with one of the Figure 8 model pipelines. Rule tags
// are preserved alongside records for the RBC baseline, ACL generation,
// and local explainability — never as classifier features (§5.2.1).

#include <array>
#include <cstdint>
#include <memory>
#include <optional>
#include <span>

#include "arm/rules.hpp"
#include "core/aggregator.hpp"
#include "core/balancer.hpp"
#include "ml/metrics.hpp"
#include "ml/pipeline.hpp"

namespace scrubber::core {

/// End-to-end configuration.
struct ScrubberConfig {
  ml::ModelKind model = ml::ModelKind::kXgb;
  arm::FpGrowthParams mining{};       ///< FP-Growth thresholds (§5.1.1)
  double rule_loss_confidence = 0.01; ///< Algorithm 1 L_c (Appendix A)
  double rule_loss_support = 0.01;    ///< Algorithm 1 L_s
  std::uint64_t seed = 42;
  /// Workers for the parallel feature build (0 = full training pool);
  /// bit-identical output for any value.
  unsigned agg_threads = 0;
};

/// Verdict for one aggregated target record.
struct Classification {
  bool is_ddos = false;
  double score = 0.0;  ///< model probability
  /// Accepted tagging rules matching the record's flows (deployable ACLs
  /// and local explanation, Figure 14a).
  std::vector<const arm::TaggingRule*> matched_rules;
};

/// The IXP Scrubber system.
class IxpScrubber {
 public:
  explicit IxpScrubber(ScrubberConfig config = {});

  // ----- Step 1: rule tagging -----

  /// Mines, filters, and minimizes tagging rules from balanced flows.
  /// Returned rules are in `staging`; operators accept/decline them.
  /// `counts` (optional) receives {mined, blackhole-consequent, minimized}.
  [[nodiscard]] arm::RuleSet mine_tagging_rules(
      std::span<const net::FlowRecord> balanced_flows,
      std::array<std::size_t, 3>* counts = nullptr) const;

  /// Installs the curated rule set used for tagging and RBC.
  void set_rules(arm::RuleSet rules) { rules_ = std::move(rules); }
  [[nodiscard]] const arm::RuleSet& rules() const noexcept { return rules_; }
  [[nodiscard]] arm::RuleSet& rules() noexcept { return rules_; }

  // ----- Step 2: aggregation + classification -----

  /// Aggregates balanced flows into per-target records, annotated with the
  /// installed rules.
  [[nodiscard]] AggregatedDataset aggregate(
      std::span<const net::FlowRecord> balanced_flows) const;

  /// Trains the configured model pipeline on aggregated records.
  void train(const AggregatedDataset& data);

  /// Classifies one aggregated record (row `index` of `data`).
  [[nodiscard]] Classification classify(const AggregatedDataset& data,
                                        std::size_t index) const;

  /// Batch scores over a whole aggregated dataset, one probability per
  /// record — the compiled-tree fast path (bit-identical to classify()'s
  /// per-record score; the live detector's per-minute pass uses this).
  [[nodiscard]] std::vector<double> score_all(const AggregatedDataset& data) const;

  /// Batch predictions (0/1) over a whole aggregated dataset.
  [[nodiscard]] std::vector<int> predict_all(const AggregatedDataset& data) const;

  /// Evaluates against the dataset's labels.
  [[nodiscard]] ml::ConfusionMatrix evaluate(const AggregatedDataset& data) const;

  /// The trained pipeline (for transfer experiments and explainability).
  [[nodiscard]] ml::Pipeline& pipeline() noexcept { return pipeline_; }
  [[nodiscard]] const ml::Pipeline& pipeline() const noexcept { return pipeline_; }

  [[nodiscard]] const ScrubberConfig& config() const noexcept { return config_; }
  [[nodiscard]] bool trained() const noexcept { return trained_; }

 private:
  ScrubberConfig config_;
  arm::Itemizer itemizer_;
  arm::RuleSet rules_;
  Aggregator aggregator_;
  ml::Pipeline pipeline_;
  bool trained_ = false;
};

/// Rule-based classifier baseline (RBC, §5.2.2): predicts DDoS iff any
/// accepted tagging rule matched the record's flows.
[[nodiscard]] std::vector<int> rbc_predict(const AggregatedDataset& data);

/// Accepts every staged rule of a set (scripted stand-in for the operator
/// UI; the §5.1.3 operator study is modeled in bench_operator_study).
void accept_all_rules(arm::RuleSet& rules);

/// Threshold-policy operator: accepts staged rules with confidence >=
/// `min_confidence` (the released rule list of Appendix F uses 0.9), at
/// least `min_support` antecedent support, and at least `min_items`
/// antecedent items (operators decline overly generic rules — a deployable
/// reflection filter pins protocol + port + size, not just "UDP").
/// Declines the rest. Returns the number of accepted rules.
std::size_t accept_rules_above(arm::RuleSet& rules, double min_confidence,
                               double min_support = 0.0,
                               std::size_t min_items = 0);

}  // namespace scrubber::core
