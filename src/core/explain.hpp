#pragma once
// Local explainability (§5.2.3, §6.6, Figure 9): classification decisions
// are debugged through (i) the matched tagging rules and (ii) the WoE
// encodings of the record's features — independent of the classifier.

#include <string>
#include <vector>

#include "core/aggregator.hpp"
#include "core/scrubber.hpp"
#include "ml/woe.hpp"

namespace scrubber::core {

/// One WoE-encoded feature of an explanation, ready for display.
struct FeatureEvidence {
  std::string column;        ///< feature column name (Figure 7 notation)
  std::string raw_value;     ///< rendered raw value (IP dotted quad, port, ...)
  double woe = 0.0;          ///< Weight of Evidence of the value

  /// Positive WoE argues for DDoS, negative for benign.
  [[nodiscard]] bool points_to_attack() const noexcept { return woe > 0.0; }
};

/// Full local explanation of one classification decision (Figure 9).
struct Explanation {
  std::uint32_t minute = 0;
  net::Ipv4Address target;
  bool is_ddos = false;
  double score = 0.0;
  std::vector<FeatureEvidence> evidence;  ///< sorted by |WoE| descending
  std::vector<std::string> matched_rules; ///< antecedents of matched rules

  /// Multi-line human-readable rendering.
  [[nodiscard]] std::string to_string() const;
};

/// Builds an explanation for row `index` of an aggregated dataset using the
/// scrubber's fitted WoE stage and installed rules. `top_k` limits the
/// evidence list (0 = all encoded features).
[[nodiscard]] Explanation explain(const IxpScrubber& scrubber,
                                  const AggregatedDataset& data,
                                  std::size_t index, std::size_t top_k = 10);

/// Renders the raw value of a schema column (IPs as dotted quads, ports
/// and members as integers). Exposed for the UI-style outputs of benches.
[[nodiscard]] std::string render_raw_value(const std::string& column,
                                           double value);

}  // namespace scrubber::core
