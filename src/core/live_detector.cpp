#include "core/live_detector.hpp"

namespace scrubber::core {

LiveDetector::LiveDetector(LiveDetectorConfig config, DetectionSink sink)
    : config_(config), sink_(std::move(sink)) {
  ScrubberConfig scrubber_config;
  scrubber_config.model = config_.model;
  scrubber_config.mining = config_.mining;
  scrubber_config.seed = config_.seed;
  scrubber_config.agg_threads = config_.agg_threads;
  scrubber_ = IxpScrubber(scrubber_config);
}

std::size_t LiveDetector::window_flows() const noexcept {
  std::size_t total = 0;
  for (const auto& [minute, flows] : window_) total += flows.size();
  return total;
}

void LiveDetector::evict_window(std::uint32_t now_minute) {
  while (!window_.empty() &&
         window_.front().first + config_.training_window_min <= now_minute) {
    window_.pop_front();
  }
}

void LiveDetector::retrain(std::uint32_t now_minute) {
  evict_window(now_minute);
  std::vector<net::FlowRecord> training;
  training.reserve(window_flows());
  for (const auto& [minute, flows] : window_)
    training.insert(training.end(), flows.begin(), flows.end());
  if (training.empty()) return;

  // Step 1: mine + minimize + auto-curate tagging rules. A production
  // deployment routes the staged rules through the operator UI instead of
  // the threshold policy (see RuleSet / Figure 6).
  auto rules = scrubber_.mine_tagging_rules(training);
  accept_rules_above(rules, config_.rule_min_confidence, 0.0,
                     config_.rule_min_items);
  scrubber_.set_rules(std::move(rules));

  // Step 2: aggregate + train.
  const AggregatedDataset aggregated = scrubber_.aggregate(training);
  if (aggregated.size() < 20 || aggregated.data.positive_count() < 5) return;
  scrubber_.train(aggregated);
  last_retrain_minute_ = now_minute;
  ++retrain_count_;
}

void LiveDetector::ingest_minute(std::uint32_t minute,
                                 std::span<const net::FlowRecord> flows) {
  ++minutes_processed_;
  if (!first_minute_) first_minute_ = minute;

  // Online balancing into the sliding training window.
  Balancer balancer(config_.seed ^ minute);
  balancer.add_minute(minute, flows);
  auto balanced = balancer.take_balanced();
  if (!balanced.empty()) window_.emplace_back(minute, std::move(balanced));
  evict_window(minute);

  // Scheduled (re)training.
  const bool warmed_up = minute >= *first_minute_ + config_.warmup_min;
  const bool due = !scrubber_.trained() ||
                   minute >= last_retrain_minute_ + config_.retrain_interval_min;
  if (warmed_up && due) retrain(minute);
  if (!scrubber_.trained() || flows.empty()) return;

  // Detection pass over the live (unbalanced) minute: one batch scoring
  // call for the whole minute (compiled-tree kernel), then per-record
  // thresholding — scores match scrubber_.classify() bit-for-bit.
  const AggregatedDataset aggregated = scrubber_.aggregate(flows);
  const std::vector<double> scores = scrubber_.score_all(aggregated);
  for (std::size_t i = 0; i < aggregated.size(); ++i) {
    if (aggregated.meta[i].flow_count < config_.min_flows_per_target) continue;
    if (scores[i] < 0.5) continue;
    ++detections_;
    if (!sink_) continue;
    Detection detection;
    detection.minute = minute;
    detection.target = aggregated.meta[i].target;
    detection.score = scores[i];
    detection.flow_count = aggregated.meta[i].flow_count;
    detection.vector = aggregated.meta[i].dominant_vector;
    for (const std::uint32_t tag : aggregated.meta[i].rule_tags)
      detection.acl_entries.push_back(
          acl_entry(scrubber_.rules().rule_at(tag)));
    sink_(detection);
  }
}

}  // namespace scrubber::core
