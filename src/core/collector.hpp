#pragma once
// Capture front-end: turns the IXP's raw telemetry — sFlow v5 datagrams
// from the switches and the BGP feed from the route server — into the
// labeled, anonymized per-minute flow batches the rest of the pipeline
// consumes. This is the deployment glue between the substrates:
//
//   sFlow datagrams ──► FlowCache (aggregation, sampling-rate scaling)
//   BGP UPDATEs     ──► BlackholeRegistry (time-indexed labels)
//                         │
//   minute closes ──► label flows ──► (optional) anonymize ──► sink
//
// Labeling happens when a minute bin closes, so announcements that arrive
// during the minute are honored. Flows are optionally anonymized before
// they leave the collector, as §4.3 requires.

#include <functional>
#include <optional>
#include <span>

#include "bgp/blackhole_registry.hpp"
#include "net/anonymize.hpp"
#include "net/sflow.hpp"

namespace scrubber::core {

/// Receives each closed minute's labeled flows.
///
/// Re-entrancy contract: the sink is invoked while the collector drains a
/// minute bin and MUST NOT call back into `ingest` / `ingest_bgp` /
/// `advance` / `flush` on the same collector — the collector is mid-drain
/// and its cache would be mutated under the iteration. The contract is
/// enforced: re-entering throws std::logic_error. (The sharded runtime in
/// src/runtime/ relies on this: shard sinks forward batches to the merge
/// queue and must never loop back into their own shard.)
using MinuteBatchSink =
    std::function<void(std::uint32_t minute, std::span<const net::FlowRecord>)>;

/// sFlow + BGP collector producing labeled minute batches.
class Collector {
 public:
  struct Config {
    std::uint32_t sampling_rate = 1;  ///< sFlow 1-in-N (for scaling)
    /// Minutes a bin stays open after time passes it (late datagrams).
    std::uint32_t reorder_slack_min = 1;
    /// When set, flows are anonymized before reaching the sink.
    std::optional<std::uint64_t> anonymization_salt;
  };

  Collector(Config config, MinuteBatchSink sink);

  /// Ingests one sFlow datagram (already decoded). Advances collector time
  /// to the datagram's uptime and flushes bins older than the slack.
  /// Datagrams for minutes that were already flushed (a shard fell behind
  /// an externally advanced watermark) are dropped and counted instead of
  /// re-opening the closed bin.
  void ingest(const net::SflowDatagram& datagram);

  /// Ingests one sub-datagram's worth of samples without materializing an
  /// SflowDatagram: `uptime_ms` plays the datagram header's role (minute
  /// binning, late-drop accounting, timestamp stamping) and counts as one
  /// datagram. Semantically identical to ingest() of a datagram carrying
  /// exactly these samples — the fused wire path feeds shards through
  /// this overload.
  void ingest_samples(std::uint32_t uptime_ms,
                      std::span<const net::SflowFlowSample> samples);

  /// Ingests sFlow wire bytes. Throws net::SflowDecodeError on bad input.
  void ingest_wire(const std::vector<std::uint8_t>& wire);

  /// Ingests one BGP update observed at `now_ms` (e.g. from bgp::Session).
  void ingest_bgp(const bgp::UpdateMessage& update, std::uint64_t now_ms);

  /// Advances collector time to `minute` as if a datagram with that
  /// timestamp had arrived (without ingesting any flows), closing bins
  /// that fall out of the slack window. Used by the sharded runtime to
  /// propagate the global watermark to shards that saw no traffic for a
  /// stretch of minutes. Tolerant of stale calls: a `minute` at or below
  /// the current watermark is a no-op.
  void advance(std::uint32_t minute);

  /// Flushes every open bin (end of capture).
  void flush();

  [[nodiscard]] const bgp::BlackholeRegistry& registry() const noexcept {
    return registry_;
  }

  // --- statistics ---
  [[nodiscard]] std::uint64_t datagrams() const noexcept { return datagrams_; }
  [[nodiscard]] std::uint64_t flows_emitted() const noexcept {
    return flows_emitted_;
  }
  [[nodiscard]] std::uint64_t blackholed_flows() const noexcept {
    return blackholed_flows_;
  }
  /// Datagrams dropped because their minute was already flushed.
  [[nodiscard]] std::uint64_t late_datagrams() const noexcept {
    return late_datagrams_;
  }
  /// First minute that has NOT been flushed yet (flush horizon).
  [[nodiscard]] std::uint32_t flush_horizon() const noexcept {
    return flushed_before_;
  }

 private:
  void flush_before(std::uint32_t minute);
  void check_not_in_flush(const char* what) const;

  Config config_;
  MinuteBatchSink sink_;
  net::FlowCache cache_;
  bgp::BlackholeRegistry registry_;
  std::optional<net::Anonymizer> anonymizer_;
  std::uint32_t watermark_min_ = 0;   ///< highest minute observed
  std::uint32_t flushed_before_ = 0;  ///< minutes < this are closed forever
  bool in_flush_ = false;             ///< re-entrancy guard (sink contract)
  std::uint64_t datagrams_ = 0;
  std::uint64_t flows_emitted_ = 0;
  std::uint64_t blackholed_flows_ = 0;
  std::uint64_t late_datagrams_ = 0;
};

/// Test/replay helper: expands flow records back into sFlow datagrams (one
/// sampled packet per `packets / sampling_rate`, minimum 1) — the inverse
/// of the collector path, used to exercise it end to end.
[[nodiscard]] std::vector<net::SflowDatagram> flows_to_datagrams(
    std::span<const net::FlowRecord> flows, std::uint32_t sampling_rate,
    net::Ipv4Address agent);

}  // namespace scrubber::core
