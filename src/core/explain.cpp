#include "core/explain.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace scrubber::core {

std::string Explanation::to_string() const {
  std::string out;
  char buf[160];
  std::snprintf(buf, sizeof buf, "target %s @minute %u -> %s (score %.3f)\n",
                target.to_string().c_str(), minute,
                is_ddos ? "DDoS" : "benign", score);
  out += buf;
  if (!matched_rules.empty()) {
    out += "  matched tagging rules:\n";
    for (const auto& rule : matched_rules) {
      out += "    [";
      out += rule;
      out += "]\n";
    }
  }
  out += "  weight-of-evidence:\n";
  for (const auto& e : evidence) {
    std::snprintf(buf, sizeof buf, "    %-26s %-18s WoE=%+8.3f %s\n",
                  e.column.c_str(), e.raw_value.c_str(), e.woe,
                  e.points_to_attack() ? "-> attack" : "-> benign");
    out += buf;
  }
  return out;
}

std::string render_raw_value(const std::string& column, double value) {
  if (std::isnan(value)) return "(missing)";
  if (column.rfind("src_ip/", 0) == 0) {
    return net::Ipv4Address(static_cast<std::uint32_t>(value)).to_string();
  }
  if (column.rfind("protocol/", 0) == 0) {
    return std::string(net::protocol_name(static_cast<std::uint8_t>(value)));
  }
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.0f", value);
  return buf;
}

Explanation explain(const IxpScrubber& scrubber, const AggregatedDataset& data,
                    std::size_t index, std::size_t top_k) {
  Explanation out;
  const RecordMeta& meta = data.meta[index];
  out.minute = meta.minute;
  out.target = meta.target;

  const Classification verdict = scrubber.classify(data, index);
  out.is_ddos = verdict.is_ddos;
  out.score = verdict.score;
  for (const auto* rule : verdict.matched_rules)
    out.matched_rules.push_back(rule->antecedent_string());

  // WoE evidence from the pipeline's fitted encoder.
  const auto* stage = scrubber.pipeline().find_stage("WoE");
  if (stage != nullptr) {
    const auto& encoder = static_cast<const ml::WoeEncoder&>(*stage);
    const auto row = data.data.row(index);
    for (std::size_t j = 0; j < data.data.n_cols(); ++j) {
      if (!encoder.encodes(j) || ml::is_missing(row[j])) continue;
      FeatureEvidence evidence;
      evidence.column = data.data.column(j).name;
      evidence.raw_value = render_raw_value(evidence.column, row[j]);
      evidence.woe = encoder.column(j).encode(
          static_cast<std::int64_t>(std::llround(row[j])));
      out.evidence.push_back(std::move(evidence));
    }
    std::sort(out.evidence.begin(), out.evidence.end(),
              [](const FeatureEvidence& a, const FeatureEvidence& b) {
                return std::abs(a.woe) > std::abs(b.woe);
              });
    if (top_k != 0 && out.evidence.size() > top_k) out.evidence.resize(top_k);
  }
  return out;
}

}  // namespace scrubber::core
