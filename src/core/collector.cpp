#include "core/collector.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "util/check.hpp"

namespace scrubber::core {

Collector::Collector(Config config, MinuteBatchSink sink)
    : config_(config), sink_(std::move(sink)), cache_(config.sampling_rate) {
  if (config_.anonymization_salt) {
    anonymizer_.emplace(*config_.anonymization_salt);
  }
}

void Collector::check_not_in_flush(const char* what) const {
  // MinuteBatchSink contract (see collector.hpp): the sink runs mid-drain
  // and must not call back into the collector. Enforced unconditionally
  // (not just an assert): the sharded runtime depends on it for memory
  // safety, and release builds are where it would silently corrupt.
  if (in_flush_) {
    throw std::logic_error(std::string("core::Collector::") + what +
                           " called from inside a MinuteBatchSink");
  }
}

void Collector::flush_before(std::uint32_t minute) {
  // Tolerate stale flush points: a shard whose time was advanced past the
  // watermark by Collector::advance may later compute an older flush
  // minute from its own traffic; closed minutes never reopen.
  if (minute <= flushed_before_) return;
#if defined(SCRUBBER_CHECKED)
  const std::uint32_t previous_horizon = flushed_before_;
#endif
  flushed_before_ = minute;
  in_flush_ = true;
  struct FlushGuard {
    bool& flag;
    ~FlushGuard() { flag = false; }
  } guard{in_flush_};
  auto flows = cache_.drain_before(minute);
#if defined(SCRUBBER_CHECKED)
  // Every drained flow belongs to [previous horizon, new horizon): the
  // cache must never hold flows for minutes that were already emitted,
  // and drain_before must not leak flows at or past the new horizon.
  for (const net::FlowRecord& flow : flows) {
    SCRUBBER_ASSERT(flow.minute >= previous_horizon,
                    "collector drained a flow from an already-closed minute");
    SCRUBBER_ASSERT(flow.minute < minute,
                    "collector drained a flow beyond the flush horizon");
  }
#endif
  if (flows.empty()) return;
  std::stable_sort(flows.begin(), flows.end(),
                   [](const net::FlowRecord& a, const net::FlowRecord& b) {
                     return a.minute < b.minute;
                   });
  std::size_t start = 0;
  while (start < flows.size()) {
    std::size_t end = start;
    const std::uint32_t bin = flows[start].minute;
    while (end < flows.size() && flows[end].minute == bin) ++end;
    // Label against the registry, then anonymize (order matters: labels
    // need the real destination addresses).
    for (std::size_t i = start; i < end; ++i) {
      flows[i].blackholed = registry_.is_blackholed(flows[i].dst_ip, bin);
      blackholed_flows_ += flows[i].blackholed;
      if (anonymizer_) anonymizer_->anonymize(flows[i]);
    }
    flows_emitted_ += end - start;
    if (sink_) {
      sink_(bin, std::span<const net::FlowRecord>(flows.data() + start,
                                                  end - start));
    }
    start = end;
  }
}

void Collector::ingest(const net::SflowDatagram& datagram) {
  ingest_samples(datagram.uptime_ms,
                 std::span<const net::SflowFlowSample>(
                     datagram.samples.data(), datagram.samples.size()));
}

void Collector::ingest_samples(std::uint32_t uptime_ms,
                               std::span<const net::SflowFlowSample> samples) {
  check_not_in_flush("ingest_samples");
  ++datagrams_;
  const auto minute = static_cast<std::uint32_t>(uptime_ms / 60'000);
  if (minute < flushed_before_) {
    // The bin this sub-datagram belongs to was already emitted (the shard
    // fell behind an externally advanced watermark); dropping keeps every
    // minute batch emitted exactly once.
    ++late_datagrams_;
    return;
  }
  // Inline net::ingest_datagram over the borrowed span: stamp timestamps
  // from the export uptime, source member from the sampler's input port.
  for (const net::SflowFlowSample& sample : samples) {
    net::PacketHeader packet = sample.packet;
    packet.timestamp_ms = uptime_ms;
    packet.ingress_member = sample.input_port;
    cache_.add(packet);
  }
  watermark_min_ = std::max(watermark_min_, minute);
  // The watermark/horizon pair is the collector's clock: both only move
  // forward, and the horizon trails the watermark by the reorder slack.
  SCRUBBER_ASSERT(flushed_before_ <= watermark_min_ + 1,
                  "flush horizon overtook the watermark");
  if (watermark_min_ > config_.reorder_slack_min) {
    flush_before(watermark_min_ - config_.reorder_slack_min);
  }
}

void Collector::ingest_wire(const std::vector<std::uint8_t>& wire) {
  ingest(net::SflowDatagram::decode(wire));
}

void Collector::ingest_bgp(const bgp::UpdateMessage& update,
                           std::uint64_t now_ms) {
  check_not_in_flush("ingest_bgp");
  registry_.apply(update, static_cast<std::uint32_t>(now_ms / 60'000));
}

void Collector::advance(std::uint32_t minute) {
  check_not_in_flush("advance");
  if (minute <= watermark_min_) return;  // stale watermark: no-op
  watermark_min_ = minute;
  if (watermark_min_ > config_.reorder_slack_min) {
    flush_before(watermark_min_ - config_.reorder_slack_min);
  }
}

void Collector::flush() {
  check_not_in_flush("flush");
  flush_before(std::numeric_limits<std::uint32_t>::max());
}

std::vector<net::SflowDatagram> flows_to_datagrams(
    std::span<const net::FlowRecord> flows, std::uint32_t sampling_rate,
    net::Ipv4Address agent) {
  std::vector<net::SflowDatagram> out;
  net::SflowDatagram current;
  current.agent = agent;
  std::uint32_t sequence = 0;
  std::uint32_t sample_sequence = 0;
  std::uint32_t current_minute = flows.empty() ? 0 : flows.front().minute;
  current.uptime_ms = std::uint64_t{current_minute} * 60'000;

  auto emit = [&]() {
    if (current.samples.empty()) return;
    current.sequence = sequence++;
    out.push_back(current);
    current.samples.clear();
  };

  for (const auto& flow : flows) {
    if (flow.minute != current_minute) {
      emit();
      current_minute = flow.minute;
      current.uptime_ms = std::uint64_t{current_minute} * 60'000;
    }
    // One sampled packet represents `sampling_rate` real packets; emit
    // round(packets / rate) samples (at least one) whose sizes reproduce
    // the flow's mean packet size.
    const std::uint32_t samples = std::max<std::uint32_t>(
        1, (flow.packets + sampling_rate / 2) / sampling_rate);
    const auto size = static_cast<std::uint16_t>(
        std::clamp(flow.mean_packet_size(), 60.0, 65535.0));
    for (std::uint32_t k = 0; k < samples; ++k) {
      net::SflowFlowSample sample;
      sample.sequence = sample_sequence++;
      sample.sampling_rate = sampling_rate;
      sample.sample_pool = sample_sequence * sampling_rate;
      sample.input_port = flow.src_member;
      sample.packet.src_ip = flow.src_ip;
      sample.packet.dst_ip = flow.dst_ip;
      sample.packet.src_port = flow.src_port;
      sample.packet.dst_port = flow.dst_port;
      sample.packet.protocol = flow.protocol;
      sample.packet.tcp_flags = flow.tcp_flags;
      sample.packet.length = size;
      sample.packet.ingress_member = flow.src_member;
      current.samples.push_back(sample);
      if (current.samples.size() >= 64) emit();  // typical MTU-bound batch
    }
  }
  emit();
  return out;
}

}  // namespace scrubber::core
