#include "core/scrubber.hpp"

namespace scrubber::core {

IxpScrubber::IxpScrubber(ScrubberConfig config)
    : config_(config), pipeline_(ml::make_model_pipeline(config.model)) {
  aggregator_.set_threads(config_.agg_threads);
}

arm::RuleSet IxpScrubber::mine_tagging_rules(
    std::span<const net::FlowRecord> balanced_flows,
    std::array<std::size_t, 3>* counts) const {
  // Itemize every balanced flow (label item included for blackholed flows).
  std::vector<arm::Transaction> transactions;
  transactions.reserve(balanced_flows.size());
  for (const auto& flow : balanced_flows)
    transactions.push_back(itemizer_.itemize(flow));

  // FP-Growth rule mining (§5.1.1).
  std::vector<arm::MinedRule> mined = arm::mine_rules(transactions, config_.mining);
  const std::size_t total_mined = mined.size();

  // Step i: keep only rules with the {blackhole} consequent.
  mined = arm::keep_blackhole_consequent(std::move(mined));
  const std::size_t blackhole_rules = mined.size();

  // Step ii: Algorithm 1 minimization.
  mined = arm::minimize_rules(std::move(mined), config_.rule_loss_confidence,
                              config_.rule_loss_support);
  if (counts != nullptr) *counts = {total_mined, blackhole_rules, mined.size()};

  return arm::RuleSet::from_mined(mined);
}

AggregatedDataset IxpScrubber::aggregate(
    std::span<const net::FlowRecord> balanced_flows) const {
  return aggregator_.aggregate(balanced_flows, &rules_);
}

void IxpScrubber::train(const AggregatedDataset& data) {
  pipeline_.fit(data.data);
  trained_ = true;
}

Classification IxpScrubber::classify(const AggregatedDataset& data,
                                     std::size_t index) const {
  Classification result;
  result.score = pipeline_.score(data.data.row(index));
  result.is_ddos = result.score >= 0.5;
  for (const std::uint32_t tag : data.meta[index].rule_tags)
    result.matched_rules.push_back(&rules_.rule_at(tag));
  return result;
}

std::vector<double> IxpScrubber::score_all(const AggregatedDataset& data) const {
  return pipeline_.score_all(data.data);
}

std::vector<int> IxpScrubber::predict_all(const AggregatedDataset& data) const {
  return pipeline_.predict_all(data.data);
}

ml::ConfusionMatrix IxpScrubber::evaluate(const AggregatedDataset& data) const {
  return ml::evaluate(data.data.labels(), predict_all(data));
}

std::vector<int> rbc_predict(const AggregatedDataset& data) {
  std::vector<int> out;
  out.reserve(data.size());
  for (const auto& meta : data.meta)
    out.push_back(meta.rule_tags.empty() ? 0 : 1);
  return out;
}

void accept_all_rules(arm::RuleSet& rules) {
  for (auto& rule : rules.rules()) rule.status = arm::RuleStatus::kAccepted;
}

std::size_t accept_rules_above(arm::RuleSet& rules, double min_confidence,
                               double min_support, std::size_t min_items) {
  std::size_t accepted = 0;
  for (auto& rule : rules.rules()) {
    if (rule.status == arm::RuleStatus::kDeclined) continue;
    if (rule.rule.confidence >= min_confidence &&
        rule.rule.support >= min_support &&
        rule.rule.antecedent.size() >= min_items) {
      rule.status = arm::RuleStatus::kAccepted;
      ++accepted;
    } else {
      rule.status = arm::RuleStatus::kDeclined;
    }
  }
  return accepted;
}

}  // namespace scrubber::core
