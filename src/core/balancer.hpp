#pragma once
// The dataset balancing procedure of §3 / Figure 3b.
//
// Blackholing traffic is a tiny fraction (< 0.8%) of total IXP traffic, so
// training directly on raw data would collapse to the majority class. The
// balancer consumes flows minute by minute (online, like the paper's
// recording setup) and, per minute bin, keeps all blackholed flows while
// sampling benign flows to match (i) the number of distinct destination
// IPs and (ii) the number of flows per destination IP of the blackhole
// class. Everything else is discarded immediately — reproducing the
// >= 99.6% data reduction that doubles as the privacy mechanism of §4.3.

#include <cstdint>
#include <span>
#include <vector>

#include "net/flow.hpp"
#include "util/arena.hpp"
#include "util/flat_hash.hpp"
#include "util/rng.hpp"

namespace scrubber::core {

/// Per-minute balancing statistics (inputs to Figures 3a and 3c).
struct MinuteBalanceStats {
  std::uint32_t minute = 0;
  std::uint64_t raw_flows = 0;
  std::uint64_t raw_bytes = 0;
  std::uint64_t blackhole_flows = 0;
  std::uint64_t blackhole_bytes = 0;
  std::uint32_t blackhole_unique_ips = 0;
  std::uint64_t benign_selected_flows = 0;  ///< rank-paired selections
  std::uint32_t benign_selected_ips = 0;
  std::uint64_t benign_spillover_flows = 0;  ///< deficit fills (extra IPs)
  std::uint32_t benign_spillover_ips = 0;

  /// Share of blackholed bytes in this minute's total (Figure 3a).
  [[nodiscard]] double blackhole_byte_share() const noexcept {
    return raw_bytes == 0 ? 0.0
                          : static_cast<double>(blackhole_bytes) /
                                static_cast<double>(raw_bytes);
  }

  /// Blackhole flows per unique blackholed IP (x-axis of Figure 3c).
  [[nodiscard]] double blackhole_flows_per_ip() const noexcept {
    return blackhole_unique_ips == 0
               ? 0.0
               : static_cast<double>(blackhole_flows) /
                     static_cast<double>(blackhole_unique_ips);
  }

  /// Rank-paired benign flows per paired benign IP (y-axis of Figure 3c).
  /// Spillover fills (taken to keep the classes flow-balanced when one
  /// benign IP cannot supply enough) are bookkept separately so they do
  /// not distort the per-IP distribution comparison.
  [[nodiscard]] double benign_flows_per_ip() const noexcept {
    return benign_selected_ips == 0
               ? 0.0
               : static_cast<double>(benign_selected_flows) /
                     static_cast<double>(benign_selected_ips);
  }
};

/// Aggregate totals over all processed minutes (rows of Table 2).
struct BalanceTotals {
  std::uint64_t raw_flows = 0;
  std::uint64_t raw_bytes = 0;
  std::uint64_t balanced_flows = 0;
  std::uint64_t balanced_blackhole_flows = 0;

  /// Share of the blackhole class in the balanced output (~50%).
  [[nodiscard]] double blackhole_share() const noexcept {
    return balanced_flows == 0
               ? 0.0
               : static_cast<double>(balanced_blackhole_flows) /
                     static_cast<double>(balanced_flows);
  }

  /// Balanced / unbalanced flow ratio (Table 2, rightmost column).
  [[nodiscard]] double reduction_ratio() const noexcept {
    return raw_flows == 0 ? 0.0
                          : static_cast<double>(balanced_flows) /
                                static_cast<double>(raw_flows);
  }
};

/// Online balancing of a flow stream.
class Balancer {
 public:
  explicit Balancer(std::uint64_t seed = 1234) : rng_(seed) {}

  /// Processes one minute bin; balanced flows are appended to the output.
  /// Flows must all carry `minute` (the caller's binning is trusted).
  void add_minute(std::uint32_t minute, std::span<const net::FlowRecord> flows);

  /// Balanced flows accumulated so far (move out when done).
  [[nodiscard]] const std::vector<net::FlowRecord>& balanced() const noexcept {
    return balanced_;
  }
  [[nodiscard]] std::vector<net::FlowRecord> take_balanced() {
    return std::move(balanced_);
  }

  [[nodiscard]] const std::vector<MinuteBalanceStats>& minute_stats() const noexcept {
    return minute_stats_;
  }
  [[nodiscard]] const BalanceTotals& totals() const noexcept { return totals_; }

 private:
  /// One flow of a per-IP chain; nodes live in the per-minute arena.
  struct FlowNode {
    const net::FlowRecord* flow = nullptr;
    FlowNode* next = nullptr;
  };
  /// Per-destination-IP flow chain in scan order (head -> tail).
  struct IpGroup {
    FlowNode* head = nullptr;
    FlowNode* tail = nullptr;
    std::size_t count = 0;
  };

  void append_flow(IpGroup& group, const net::FlowRecord& flow);

  util::Rng rng_;
  std::vector<net::FlowRecord> balanced_;
  std::vector<MinuteBalanceStats> minute_stats_;
  BalanceTotals totals_;
  // Per-minute scratch, reused across add_minute calls: the grouping
  // tables keep their bucket arrays, the arena keeps its blocks — a
  // steady-state minute allocates nothing.
  util::Arena arena_;
  util::FlatHash<std::uint32_t, IpGroup> bh_by_ip_;
  util::FlatHash<std::uint32_t, IpGroup> benign_by_ip_;
};

/// Convenience: balances a fully materialized trace (groups by minute).
[[nodiscard]] std::vector<net::FlowRecord> balance_trace(
    std::span<const net::FlowRecord> flows, std::uint64_t seed = 1234,
    BalanceTotals* totals = nullptr);

}  // namespace scrubber::core
