#include "core/acl.hpp"

#include "arm/item.hpp"
#include "net/protocols.hpp"

namespace scrubber::core {
namespace {

[[nodiscard]] const char* action_keyword(AclAction action) noexcept {
  switch (action) {
    case AclAction::kDeny: return "deny";
    case AclAction::kRateLimit: return "police";
    case AclAction::kMonitor: return "log";
  }
  return "deny";
}

[[nodiscard]] std::string protocol_keyword(std::uint32_t protocol) {
  switch (protocol) {
    case 6: return "tcp";
    case 17: return "udp";
    case 47: return "gre";
    case 1: return "icmp";
    default: return "ip proto " + std::to_string(protocol);
  }
}

}  // namespace

std::string acl_entry(const arm::TaggingRule& rule, AclAction action) {
  using arm::Attribute;

  std::string protocol = "ip";
  std::string src_port = "";       // empty = any
  std::string dst_port = "";
  std::string size_match = "";
  bool fragments = false;

  for (const arm::Item item : rule.rule.antecedent) {
    switch (item.attribute()) {
      case Attribute::kProtocol:
        protocol = protocol_keyword(item.value());
        break;
      case Attribute::kSrcPort:
        src_port = "eq " + std::to_string(item.value());
        break;
      case Attribute::kSrcPortOther:
        src_port = "range 1024 65535";
        break;
      case Attribute::kDstPort:
        dst_port = "eq " + std::to_string(item.value());
        break;
      case Attribute::kDstPortOther:
        dst_port = "range 1024 65535";
        break;
      case Attribute::kPacketSize: {
        const std::uint32_t lo = item.value() * arm::kPacketSizeBucket;
        size_match = "match-size " + std::to_string(lo + 1) + "-" +
                     std::to_string(lo + arm::kPacketSizeBucket);
        break;
      }
      case Attribute::kFragment:
        fragments = true;
        break;
      case Attribute::kBlackhole:
        break;  // consequent; never part of a filter
    }
  }

  std::string out = action_keyword(action);
  out += " " + protocol;
  out += " any";
  if (!src_port.empty()) out += " " + src_port;
  out += " any";
  if (!dst_port.empty()) out += " " + dst_port;
  if (fragments) out += " fragments";
  if (!size_match.empty()) out += " " + size_match;
  out += "  ! id=" + rule.id;
  char conf[32];
  std::snprintf(conf, sizeof conf, " conf=%.3f", rule.rule.confidence);
  out += conf;
  return out;
}

std::string generate_acl(const arm::RuleSet& rules, AclAction action) {
  std::string out;
  for (const auto& rule : rules.rules()) {
    if (rule.status != arm::RuleStatus::kAccepted) continue;
    out += acl_entry(rule, action);
    out += '\n';
  }
  out += "permit ip any any\n";
  return out;
}

}  // namespace scrubber::core
