#include "core/aggregator.hpp"

#include <algorithm>
#include <array>
#include <map>
#include <string>
#include <unordered_map>
#include <unordered_set>

namespace scrubber::core {
namespace {

/// Categorical flow properties of the ranking (C in §5.2.1).
enum class Categorical : std::size_t {
  kSrcIp, kSrcPort, kDstPort, kSrcMember, kProtocol,
};
constexpr std::array<Categorical, 5> kCategoricals{
    Categorical::kSrcIp, Categorical::kSrcPort, Categorical::kDstPort,
    Categorical::kSrcMember, Categorical::kProtocol,
};
constexpr std::array<const char*, 5> kCategoricalNames{
    "src_ip", "port_src", "port_dst", "src_mac", "protocol",
};

/// Ranking metrics (M in §5.2.1).
enum class Metric : std::size_t { kMeanPacketSize, kSumBytes, kSumPackets };
constexpr std::array<Metric, 3> kMetrics{
    Metric::kMeanPacketSize, Metric::kSumBytes, Metric::kSumPackets,
};
constexpr std::array<const char*, 3> kMetricNames{"pktsize", "bytes", "packets"};

[[nodiscard]] double categorical_value(const net::FlowRecord& flow,
                                       Categorical c) noexcept {
  switch (c) {
    case Categorical::kSrcIp: return static_cast<double>(flow.src_ip.value());
    case Categorical::kSrcPort: return static_cast<double>(flow.src_port);
    case Categorical::kDstPort: return static_cast<double>(flow.dst_port);
    case Categorical::kSrcMember: return static_cast<double>(flow.src_member);
    case Categorical::kProtocol: return static_cast<double>(flow.protocol);
  }
  return 0.0;
}

/// Accumulated metrics of one categorical group.
struct GroupMetrics {
  std::uint64_t bytes = 0;
  std::uint64_t packets = 0;

  [[nodiscard]] double metric(Metric m) const noexcept {
    switch (m) {
      case Metric::kMeanPacketSize:
        return packets == 0 ? 0.0
                            : static_cast<double>(bytes) /
                                  static_cast<double>(packets);
      case Metric::kSumBytes: return static_cast<double>(bytes);
      case Metric::kSumPackets: return static_cast<double>(packets);
    }
    return 0.0;
  }
};

}  // namespace

AggregatedDataset AggregatedDataset::subset(
    std::span<const std::size_t> indices) const {
  AggregatedDataset out;
  out.data = data.subset(indices);
  out.meta.reserve(indices.size());
  for (const std::size_t i : indices) out.meta.push_back(meta[i]);
  return out;
}

void AggregatedDataset::append(const AggregatedDataset& other) {
  data.append(other.data);
  meta.insert(meta.end(), other.meta.begin(), other.meta.end());
}

std::vector<ml::ColumnInfo> Aggregator::schema() {
  std::vector<ml::ColumnInfo> columns;
  columns.reserve(kCategoricals.size() * kMetrics.size() * kRanks * 2);
  for (std::size_t c = 0; c < kCategoricals.size(); ++c) {
    for (std::size_t m = 0; m < kMetrics.size(); ++m) {
      for (std::size_t r = 0; r < kRanks; ++r) {
        const std::string base = std::string(kCategoricalNames[c]) + "/" +
                                 kMetricNames[m] + "/" + std::to_string(r);
        columns.push_back(ml::ColumnInfo{base, ml::ColumnKind::kCategorical});
        columns.push_back(ml::ColumnInfo{base + "/val", ml::ColumnKind::kNumeric});
      }
    }
  }
  return columns;
}

AggregatedDataset Aggregator::aggregate(std::span<const net::FlowRecord> flows,
                                        const arm::RuleSet* rules) const {
  AggregatedDataset out;
  out.data = ml::Dataset(schema());

  // Group flow indices by (minute, target). std::map keeps record order
  // deterministic (by minute, then target IP).
  std::map<std::pair<std::uint32_t, std::uint32_t>, std::vector<std::size_t>> groups;
  for (std::size_t i = 0; i < flows.size(); ++i) {
    groups[{flows[i].minute, flows[i].dst_ip.value()}].push_back(i);
  }

  const std::size_t width = out.data.n_cols();
  std::vector<double> row(width);

  for (const auto& [key, indices] : groups) {
    std::fill(row.begin(), row.end(), ml::kMissing);

    // Per categorical: group metrics by value.
    std::size_t column = 0;
    for (const Categorical c : kCategoricals) {
      std::unordered_map<std::uint64_t, GroupMetrics> by_value;
      for (const std::size_t i : indices) {
        const auto value =
            static_cast<std::uint64_t>(categorical_value(flows[i], c));
        auto& group = by_value[value];
        group.bytes += flows[i].bytes;
        group.packets += flows[i].packets;
      }
      for (const Metric m : kMetrics) {
        // Top-kRanks values by this metric (descending).
        std::vector<std::pair<double, std::uint64_t>> ranked;
        ranked.reserve(by_value.size());
        for (const auto& [value, metrics] : by_value)
          ranked.emplace_back(metrics.metric(m), value);
        std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
          return a.first > b.first || (a.first == b.first && a.second < b.second);
        });
        for (std::size_t r = 0; r < kRanks; ++r) {
          if (r < ranked.size()) {
            row[column] = static_cast<double>(ranked[r].second);
            row[column + 1] = ranked[r].first;
          }
          column += 2;
        }
      }
    }

    // Label: any blackholed flow marks the record.
    int label = 0;
    for (const std::size_t i : indices) {
      if (flows[i].blackholed) {
        label = 1;
        break;
      }
    }
    out.data.add_row(row, label);

    // Metadata: tags, dominant vector, bookkeeping.
    RecordMeta meta;
    meta.minute = key.first;
    meta.target = net::Ipv4Address(key.second);
    meta.flow_count = static_cast<std::uint32_t>(indices.size());

    if (rules != nullptr) {
      std::unordered_set<std::uint32_t> tags;
      for (const std::size_t i : indices) {
        for (const std::uint32_t tag : rules->matching_accepted(flows[i], itemizer_))
          tags.insert(tag);
      }
      meta.rule_tags.assign(tags.begin(), tags.end());
      std::sort(meta.rule_tags.begin(), meta.rule_tags.end());
    }

    // Dominant vector by bytes among vector-classified flows. A vector
    // only counts as dominant when it carries a meaningful share (>= 25%)
    // of the record's total bytes — otherwise a single stray benign
    // fragment or DNS response would mislabel a benign record.
    std::unordered_map<std::size_t, std::uint64_t> vector_bytes;
    std::uint64_t total_bytes = 0;
    for (const std::size_t i : indices) {
      total_bytes += flows[i].bytes;
      if (const auto v = flows[i].vector()) {
        vector_bytes[static_cast<std::size_t>(*v)] += flows[i].bytes;
      }
    }
    if (!vector_bytes.empty()) {
      std::size_t best = 0;
      std::uint64_t best_bytes = 0;
      for (const auto& [v, bytes] : vector_bytes) {
        if (bytes > best_bytes || (bytes == best_bytes && v < best)) {
          best = v;
          best_bytes = bytes;
        }
      }
      if (best_bytes * 4 >= total_bytes) {
        meta.dominant_vector = static_cast<net::DdosVector>(best);
      }
    }
    out.meta.push_back(std::move(meta));
  }
  return out;
}

}  // namespace scrubber::core
