#include "core/aggregator.hpp"

// scrubber-hot-begin / scrubber-hot-end markers below fence the per-group
// feature kernel; the scrubber-hot-path-container lint rule additionally
// bans node-based std:: containers anywhere in this file — every per-flow
// and per-group structure here is flat (util::FlatHash over contiguous
// storage, plain vectors, fixed arrays).

#include <algorithm>
#include <array>
#include <memory>
#include <numeric>
#include <string>

#include "util/flat_hash.hpp"
#include "util/thread_pool.hpp"

namespace scrubber::core {
namespace {

/// Categorical flow properties of the ranking (C in §5.2.1).
enum class Categorical : std::size_t {
  kSrcIp, kSrcPort, kDstPort, kSrcMember, kProtocol,
};
constexpr std::array<Categorical, 5> kCategoricals{
    Categorical::kSrcIp, Categorical::kSrcPort, Categorical::kDstPort,
    Categorical::kSrcMember, Categorical::kProtocol,
};
constexpr std::array<const char*, 5> kCategoricalNames{
    "src_ip", "port_src", "port_dst", "src_mac", "protocol",
};

/// Ranking metrics (M in §5.2.1).
enum class Metric : std::size_t { kMeanPacketSize, kSumBytes, kSumPackets };
constexpr std::array<Metric, 3> kMetrics{
    Metric::kMeanPacketSize, Metric::kSumBytes, Metric::kSumPackets,
};
constexpr std::array<const char*, 3> kMetricNames{"pktsize", "bytes", "packets"};

[[nodiscard]] std::uint64_t categorical_value(const net::FlowRecord& flow,
                                              Categorical c) noexcept {
  switch (c) {
    case Categorical::kSrcIp: return flow.src_ip.value();
    case Categorical::kSrcPort: return flow.src_port;
    case Categorical::kDstPort: return flow.dst_port;
    case Categorical::kSrcMember: return flow.src_member;
    case Categorical::kProtocol: return flow.protocol;
  }
  return 0;
}

/// Accumulated metrics of one categorical group.
struct GroupMetrics {
  std::uint64_t bytes = 0;
  std::uint64_t packets = 0;

  [[nodiscard]] double metric(Metric m) const noexcept {
    switch (m) {
      case Metric::kMeanPacketSize:
        return packets == 0 ? 0.0
                            : static_cast<double>(bytes) /
                                  static_cast<double>(packets);
      case Metric::kSumBytes: return static_cast<double>(bytes);
      case Metric::kSumPackets: return static_cast<double>(packets);
    }
    return 0.0;
  }
};

/// One contiguous (minute, target) range of the sorted flow index.
struct GroupRange {
  std::size_t begin = 0;
  std::size_t end = 0;
};

/// `a` ranks before `b`: metric descending, value ascending on ties. The
/// tally keys are unique per group, so this is a strict total order and
/// any top-k selection scheme yields the same first kRanks entries as the
/// full sort the pre-flat implementation ran.
[[nodiscard]] bool ranks_before(const std::pair<double, std::uint64_t>& a,
                                const std::pair<double, std::uint64_t>& b)
    noexcept {
  return a.first > b.first || (a.first == b.first && a.second < b.second);
}

/// Per-worker scratch, reused across every group a chunk processes: the
/// five categorical tallies keep their bucket arrays between clears, the
/// tag buffer keeps its capacity. Nothing here escapes the group body.
struct GroupScratch {
  std::array<util::FlatHash<std::uint64_t, GroupMetrics>, 5> tallies;
  std::vector<std::uint32_t> tags;
};

}  // namespace

AggregatedDataset AggregatedDataset::subset(
    std::span<const std::size_t> indices) const {
  AggregatedDataset out;
  out.data = data.subset(indices);
  out.meta.reserve(indices.size());
  for (const std::size_t i : indices) out.meta.push_back(meta[i]);
  return out;
}

void AggregatedDataset::append(const AggregatedDataset& other) {
  data.append(other.data);
  meta.insert(meta.end(), other.meta.begin(), other.meta.end());
}

std::vector<ml::ColumnInfo> Aggregator::schema() {
  std::vector<ml::ColumnInfo> columns;
  columns.reserve(kCategoricals.size() * kMetrics.size() * kRanks * 2);
  for (std::size_t c = 0; c < kCategoricals.size(); ++c) {
    for (std::size_t m = 0; m < kMetrics.size(); ++m) {
      for (std::size_t r = 0; r < kRanks; ++r) {
        const std::string base = std::string(kCategoricalNames[c]) + "/" +
                                 kMetricNames[m] + "/" + std::to_string(r);
        columns.push_back(ml::ColumnInfo{base, ml::ColumnKind::kCategorical});
        columns.push_back(ml::ColumnInfo{base + "/val", ml::ColumnKind::kNumeric});
      }
    }
  }
  return columns;
}

AggregatedDataset Aggregator::aggregate(std::span<const net::FlowRecord> flows,
                                        const arm::RuleSet* rules) const {
  AggregatedDataset out;
  out.data = ml::Dataset(schema());
  const std::size_t width = out.data.n_cols();
  if (flows.empty()) return out;

  // Sort-based group-by: one index sort by (minute, dst_ip, index) makes
  // every (minute, target) group a contiguous range, in exactly the
  // ascending (minute, target) record order the old std::map produced —
  // with the index tiebreak keeping each group's flows in input order.
  // (minute, dst_ip) packs into one 64-bit key whose integer order is the
  // lexicographic order, so the sort touches 12-byte entries instead of
  // chasing 48-byte FlowRecords through the comparator. Both producers of
  // this span (the collector drain and the balancer) emit flows in minute
  // order already, so when minutes arrive nondecreasing the global sort
  // decomposes into independent per-minute run sorts — same final order,
  // log(run) instead of log(n) comparisons per element.
  std::vector<std::pair<std::uint64_t, std::uint32_t>> keyed(flows.size());
  bool minutes_sorted = true;
  for (std::size_t i = 0; i < flows.size(); ++i) {
    keyed[i] = {(static_cast<std::uint64_t>(flows[i].minute) << 32) |
                    flows[i].dst_ip.value(),
                static_cast<std::uint32_t>(i)};
    minutes_sorted &= i == 0 || flows[i].minute >= flows[i - 1].minute;
  }
  if (minutes_sorted) {
    for (std::size_t i = 0; i < keyed.size();) {
      const std::uint64_t minute_bits = keyed[i].first >> 32;
      std::size_t j = i + 1;
      while (j < keyed.size() && (keyed[j].first >> 32) == minute_bits) ++j;
      std::sort(keyed.begin() + static_cast<std::ptrdiff_t>(i),
                keyed.begin() + static_cast<std::ptrdiff_t>(j));
      i = j;
    }
  } else {
    std::sort(keyed.begin(), keyed.end());
  }

  std::vector<std::uint32_t> order(flows.size());
  std::vector<GroupRange> groups;
  for (std::size_t i = 0; i < keyed.size();) {
    std::size_t j = i;
    while (j < keyed.size() && keyed[j].first == keyed[i].first) {
      order[j] = keyed[j].second;
      ++j;
    }
    groups.push_back(GroupRange{i, j});
    i = j;
  }
  const std::size_t n_groups = groups.size();

  // Pre-sized output slots: every group owns row g of the matrix and
  // meta[g] / labels[g], so the parallel build below is thread-count
  // independent by construction (DESIGN.md §10 determinism contract).
  // make_unique_for_overwrite: every row slot is fully written by its
  // group (the kMissing fill), so zero-initializing the matrix first
  // would be a second full pass over it for nothing.
  const auto matrix = std::make_unique_for_overwrite<double[]>(
      n_groups * width);
  std::vector<int> labels(n_groups);
  out.meta.resize(n_groups);

  const auto build_group = [&](GroupScratch& scratch, std::size_t g) {
    const GroupRange range = groups[g];
    double* row = matrix.get() + g * width;
    std::fill(row, row + width, ml::kMissing);

    // One walk over the group's flows fills all five categorical tallies,
    // the label, the byte totals, and the per-vector byte tally (the old
    // implementation re-scanned the group once per categorical).
    for (auto& tally : scratch.tallies) tally.clear();
    std::array<std::uint64_t, net::kDdosVectorCount> vector_bytes{};
    bool any_vector = false;
    std::uint64_t total_bytes = 0;
    int label = 0;
    // scrubber-hot-begin
    for (std::size_t i = range.begin; i < range.end; ++i) {
      const net::FlowRecord& flow = flows[order[i]];
      for (std::size_t c = 0; c < kCategoricals.size(); ++c) {
        GroupMetrics& cell =
            *scratch.tallies[c]
                 // NOLINTNEXTLINE(scrubber-transitive): amortized — clear() keeps FlatHash capacity across groups, so growth happens only on each worker's first groups, not at steady state
                 .try_emplace(categorical_value(flow, kCategoricals[c]))
                 .first;
        cell.bytes += flow.bytes;
        cell.packets += flow.packets;
      }
      label |= flow.blackholed ? 1 : 0;
      total_bytes += flow.bytes;
      if (const auto v = flow.vector()) {
        vector_bytes[static_cast<std::size_t>(*v)] += flow.bytes;
        any_vector = true;
      }
    }
    // scrubber-hot-end
    labels[g] = label;

    // Rankings: bounded top-kRanks selection per (categorical, metric)
    // instead of a full sort of every tally, and one fused walk over each
    // tally's entries feeding all three metric rankings at once (the
    // entries array is the per-group hot data; three separate walks paid
    // for it three times).
    for (std::size_t c = 0; c < kCategoricals.size(); ++c) {
      std::array<std::array<std::pair<double, std::uint64_t>, kRanks>, 3> top;
      std::array<std::size_t, 3> top_n{};
      const auto consider = [&](std::size_t m,
                                std::pair<double, std::uint64_t> cand) {
        auto& heap = top[m];
        std::size_t& n = top_n[m];
        if (n == kRanks && !ranks_before(cand, heap[kRanks - 1])) return;
        std::size_t at = n < kRanks ? n++ : kRanks - 1;
        heap[at] = cand;
        while (at > 0 && ranks_before(heap[at], heap[at - 1])) {
          std::swap(heap[at], heap[at - 1]);
          --at;
        }
      };
      for (const auto& entry : scratch.tallies[c].entries()) {
        const GroupMetrics& gm = entry.value;
        consider(0, {gm.metric(Metric::kMeanPacketSize), entry.key});
        consider(1, {gm.metric(Metric::kSumBytes), entry.key});
        consider(2, {gm.metric(Metric::kSumPackets), entry.key});
      }
      for (std::size_t m = 0; m < kMetrics.size(); ++m) {
        double* cell = row + (c * kMetrics.size() + m) * kRanks * 2;
        for (std::size_t r = 0; r < top_n[m]; ++r) {
          cell[2 * r] = static_cast<double>(top[m][r].second);
          cell[2 * r + 1] = top[m][r].first;
        }
      }
    }

    // Metadata: tags, dominant vector, bookkeeping.
    const net::FlowRecord& head = flows[order[range.begin]];
    RecordMeta& meta = out.meta[g];
    meta.minute = head.minute;
    meta.target = head.dst_ip;
    meta.flow_count = static_cast<std::uint32_t>(range.end - range.begin);

    if (rules != nullptr) {
      scratch.tags.clear();
      for (std::size_t i = range.begin; i < range.end; ++i) {
        for (const std::uint32_t tag :
             rules->matching_accepted(flows[order[i]], itemizer_)) {
          scratch.tags.push_back(tag);
        }
      }
      // Sorted-vector dedup (the old unordered_set + sort, flattened).
      std::sort(scratch.tags.begin(), scratch.tags.end());
      scratch.tags.erase(
          std::unique(scratch.tags.begin(), scratch.tags.end()),
          scratch.tags.end());
      meta.rule_tags.assign(scratch.tags.begin(), scratch.tags.end());
    }

    // Dominant vector by bytes among vector-classified flows. A vector
    // only counts as dominant when it carries a meaningful share (>= 25%)
    // of the record's total bytes — otherwise a single stray benign
    // fragment or DNS response would mislabel a benign record. Ascending
    // scan with a strict `>` keeps the smallest vector on byte ties,
    // matching the old map's explicit tiebreak.
    if (any_vector) {
      std::size_t best = 0;
      std::uint64_t best_bytes = 0;
      for (std::size_t v = 0; v < vector_bytes.size(); ++v) {
        if (vector_bytes[v] > best_bytes) {
          best = v;
          best_bytes = vector_bytes[v];
        }
      }
      if (best_bytes * 4 >= total_bytes) {
        meta.dominant_vector = static_cast<net::DdosVector>(best);
      }
    }
  };

  // Independent per-group rows, built in parallel on the shared pool.
  // Rows land in pre-sized slots, so output is bit-identical for any
  // thread count; `threads_` (0 = pool width) caps the chunk fan-out.
  util::training_pool().parallel_for_chunks(
      n_groups,
      [&](std::size_t, std::size_t begin, std::size_t end) {
        GroupScratch scratch;
        for (std::size_t c = 0; c < scratch.tallies.size(); ++c) {
          scratch.tallies[c].reserve(64);
        }
        for (std::size_t g = begin; g < end; ++g) build_group(scratch, g);
      },
      threads_);

  out.data.reserve_rows(n_groups);
  for (std::size_t g = 0; g < n_groups; ++g) {
    out.data.add_row({matrix.get() + g * width, width}, labels[g]);
  }
  return out;
}

}  // namespace scrubber::core
