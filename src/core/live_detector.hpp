#pragma once
// Operational detection loop: continuous learning + streaming detection.
//
// LiveDetector packages the deployment recipe the paper's evaluation
// arrives at: labeled (blackholing) traffic is balanced online and kept in
// a sliding training window; the two-step model (tagging rules + WoE +
// classifier) is retrained on a schedule (§6.3 recommends daily retraining
// over the trailing month); and every live minute is aggregated and scored,
// emitting detections with ready-to-push ACL entries for targets above a
// minimum traffic threshold (classifying every single-flow target would
// turn any nonzero false-positive rate into alert floods, §6.1).

#include <deque>
#include <functional>
#include <optional>

#include "core/acl.hpp"
#include "core/balancer.hpp"
#include "core/scrubber.hpp"

namespace scrubber::core {

/// Deployment configuration.
struct LiveDetectorConfig {
  ml::ModelKind model = ml::ModelKind::kXgb;
  std::uint32_t min_flows_per_target = 8;    ///< detection traffic threshold
  std::uint32_t retrain_interval_min = 24 * 60;      ///< daily (paper §6.3)
  std::uint32_t training_window_min = 28 * 24 * 60;  ///< trailing month
  std::uint32_t warmup_min = 24 * 60;  ///< data collected before first training
  double rule_min_confidence = 0.9;    ///< auto-acceptance bar for mined rules
  std::size_t rule_min_items = 3;      ///< specificity bar for mined rules
  arm::FpGrowthParams mining{};
  std::uint64_t seed = 77;
  /// Workers for the per-minute parallel feature build (0 = full training
  /// pool); output is bit-identical for any value.
  unsigned agg_threads = 0;
};

/// One detection event.
struct Detection {
  std::uint32_t minute = 0;
  net::Ipv4Address target;
  double score = 0.0;
  std::uint32_t flow_count = 0;
  std::optional<net::DdosVector> vector;
  std::vector<std::string> acl_entries;  ///< deployable filters, may be empty
};

/// Streaming detector with scheduled retraining.
class LiveDetector {
 public:
  using DetectionSink = std::function<void(const Detection&)>;

  LiveDetector(LiveDetectorConfig config, DetectionSink sink);

  /// Feeds one minute of labeled live traffic. Flows are (i) balanced into
  /// the sliding training window and (ii) — once a model is trained —
  /// aggregated and scored for detection.
  void ingest_minute(std::uint32_t minute, std::span<const net::FlowRecord> flows);

  /// True once the first model has been trained.
  [[nodiscard]] bool ready() const noexcept { return scrubber_.trained(); }

  /// Forces a retrain on the current window (otherwise scheduled).
  void retrain(std::uint32_t now_minute);

  [[nodiscard]] const IxpScrubber& scrubber() const noexcept { return scrubber_; }

  // --- statistics ---
  [[nodiscard]] std::uint64_t minutes_processed() const noexcept {
    return minutes_processed_;
  }
  [[nodiscard]] std::uint64_t detections() const noexcept { return detections_; }
  [[nodiscard]] std::uint32_t retrain_count() const noexcept {
    return retrain_count_;
  }
  [[nodiscard]] std::size_t window_flows() const noexcept;

 private:
  void evict_window(std::uint32_t now_minute);

  LiveDetectorConfig config_;
  DetectionSink sink_;
  IxpScrubber scrubber_;
  std::deque<std::pair<std::uint32_t, std::vector<net::FlowRecord>>> window_;
  std::optional<std::uint32_t> first_minute_;
  std::uint32_t last_retrain_minute_ = 0;
  std::uint64_t minutes_processed_ = 0;
  std::uint64_t detections_ = 0;
  std::uint32_t retrain_count_ = 0;
};

}  // namespace scrubber::core
