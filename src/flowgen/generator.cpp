#include "flowgen/generator.hpp"

#include <algorithm>
#include <array>
#include <atomic>
#include <cmath>
#include <exception>
#include <mutex>
#include <thread>

namespace scrubber::flowgen {
namespace {

constexpr std::uint32_t kMinutesPerWeek = 7 * 24 * 60;
constexpr double kMaxAttackFlowsPerMinute = 400.0;

/// Benign service mix. `server_port` identifies the service; response
/// flows carry it as the source port. Weights are chosen so that roughly
/// 7.5% of benign flows carry a well-known DDoS source port (DNS, NTP,
/// SNMP responses), matching Figure 4a's benign class.
struct BenignService {
  std::uint8_t protocol;
  std::uint16_t server_port;
  double mean_size;    // response packet size
  double stddev_size;
  double weight;
};

constexpr std::array<BenignService, 12> kBenignServices{{
    {6, 443, 980.0, 380.0, 0.42},    // HTTPS
    {6, 80, 900.0, 420.0, 0.11},     // HTTP
    {17, 443, 1050.0, 300.0, 0.16},  // QUIC
    {17, 53, 180.0, 110.0, 0.058},   // DNS responses (well-known DDoS port)
    {17, 123, 90.0, 8.0, 0.015},     // NTP sync responses (DDoS port)
    {17, 161, 130.0, 40.0, 0.006},   // SNMP polling (DDoS port)
    {6, 25, 520.0, 260.0, 0.03},     // SMTP
    {6, 22, 420.0, 300.0, 0.02},     // SSH
    {6, 853, 400.0, 150.0, 0.01},    // DoT
    {17, 4500, 700.0, 350.0, 0.02},  // IPsec NAT-T
    {6, 8080, 850.0, 400.0, 0.03},   // alt HTTP
    {17, 0, 1280.0, 160.0, 0.089},   // high-port streaming (src/dst ephemeral)
}};

[[nodiscard]] std::uint16_t ephemeral_port(util::Rng& rng) noexcept {
  return static_cast<std::uint16_t>(rng.range(1024, 65535));
}

}  // namespace

TrafficGenerator::TrafficGenerator(IxpProfile profile, std::uint64_t seed)
    : profile_(std::move(profile)), seed_(seed) {}

net::Ipv4Address TrafficGenerator::member_host(std::uint32_t member,
                                               std::uint32_t host) const noexcept {
  // Member m owns 10.<m_hi>.<m_lo>.0/24; hosts live in the low byte.
  return net::Ipv4Address::from_octets(
      10, static_cast<std::uint8_t>(member >> 8),
      static_cast<std::uint8_t>(member & 0xFF),
      static_cast<std::uint8_t>(host));
}

net::Ipv4Address TrafficGenerator::random_victim(util::Rng& rng) const noexcept {
  const auto member = static_cast<std::uint32_t>(rng.below(profile_.member_count));
  const auto victim = static_cast<std::uint32_t>(rng.below(profile_.victims_per_member));
  return member_host(member, 10 + victim);
}

net::Ipv4Address TrafficGenerator::random_server(util::Rng& rng) const noexcept {
  // Heavy-tailed (Zipf) popularity over the global server population,
  // mirroring real IXPs' traffic matrices where a few content hosts
  // dominate. The popularity rank is scattered over members by hashing so
  // popular servers are not clustered on low member ids.
  const std::uint32_t total =
      profile_.member_count * profile_.servers_per_member;
  const auto rank = static_cast<std::uint32_t>(rng.zipf(total, 1.35));
  const std::uint64_t h = util::mix64(rank ^ (profile_.pool_seed() << 24));
  const auto member = static_cast<std::uint32_t>(h % profile_.member_count);
  const auto server =
      static_cast<std::uint32_t>((h >> 32) % profile_.servers_per_member);
  return member_host(member, 100 + server);
}

net::Ipv4Address TrafficGenerator::random_client(util::Rng& rng) const noexcept {
  // Skewed client popularity (large eyeball networks resolve to a modest
  // set of NAT egress addresses).
  const auto index = rng.zipf(profile_.client_pool, 1.0);
  const std::uint64_t h = util::mix64(index ^ (profile_.pool_seed() << 20));
  // 100.64.0.0/10 carrier-grade NAT space for remote clients.
  return net::Ipv4Address(0x64400000U |
                          static_cast<std::uint32_t>(h & 0x003FFFFF));
}

net::MemberId TrafficGenerator::member_of(net::Ipv4Address ip) const noexcept {
  const std::uint32_t v = ip.value();
  if ((v >> 24) == 10) {
    // Member-owned space: the /24 identifies the member port directly.
    return (v >> 8) & 0xFFFF;
  }
  // External space reaches the IXP through a stable transit member.
  return static_cast<net::MemberId>(util::mix64(v ^ profile_.pool_seed()) %
                                    profile_.member_count);
}

net::Ipv4Address TrafficGenerator::reflector_ip(net::DdosVector vector,
                                                std::uint32_t slot,
                                                std::uint32_t minute) const noexcept {
  // Each pool slot is re-rolled once per churn period; slots have random
  // phases so a ~constant fraction of the pool rotates every week.
  const std::uint32_t week = minute / kMinutesPerWeek;
  const auto churn_weeks =
      std::max<std::uint32_t>(1, static_cast<std::uint32_t>(profile_.reflector_churn_weeks));
  const std::uint32_t phase = static_cast<std::uint32_t>(
      util::mix64(slot * 7919ULL + static_cast<std::uint64_t>(vector)) % churn_weeks);
  const std::uint32_t epoch = (week + phase) / churn_weeks;
  const std::uint64_t h =
      util::mix64(profile_.pool_seed() ^ (static_cast<std::uint64_t>(vector) << 48) ^
                  (static_cast<std::uint64_t>(slot) << 16) ^ epoch);
  // Reflectors live in 128.0.0.0/2 (disjoint from member and client space).
  return net::Ipv4Address(0x80000000U |
                          static_cast<std::uint32_t>(h & 0x3FFFFFFFU));
}

bool TrafficGenerator::vector_active(net::DdosVector vector,
                                     std::uint32_t minute) const noexcept {
  const auto it = profile_.vector_onset_week.find(vector);
  if (it == profile_.vector_onset_week.end()) return true;
  return minute / kMinutesPerWeek >= it->second;
}

void TrafficGenerator::schedule_attacks(std::uint32_t start_minute,
                                        std::uint32_t minutes, util::Rng& rng) {
  attacks_.clear();
  updates_.clear();
  registry_ = bgp::BlackholeRegistry{};

  const double days = static_cast<double>(minutes) / (24.0 * 60.0);
  const std::uint64_t attack_count = rng.poisson(profile_.attacks_per_day * days);

  // Vector sampling weights (prevalence), filtered per-attack by onset.
  std::vector<double> base_weights;
  std::vector<net::DdosVector> vectors;
  for (const auto& sig : net::vector_signatures()) {
    if (sig.vector == net::DdosVector::kUdpFragment) continue;  // companion only
    vectors.push_back(sig.vector);
    base_weights.push_back(vector_traffic(sig.vector).prevalence);
  }
  // The attack mix rotates over time (booter fashion, newly weaponized
  // reflector populations): each vector's prevalence is modulated by a
  // deterministic log-uniform factor in [1/3, 3] that re-rolls every four
  // weeks. This temporal non-stationarity is what makes one-shot-trained
  // models decay (§6.3).
  const auto modulated_weights = [&](std::uint32_t minute) {
    const std::uint32_t era = minute / (4 * kMinutesPerWeek);
    std::vector<double> weights = base_weights;
    for (std::size_t v = 0; v < weights.size(); ++v) {
      const std::uint64_t h =
          util::mix64(profile_.pool_seed() ^ (static_cast<std::uint64_t>(era) << 32) ^
                      (v * 0x9E37ULL));
      const double u =
          static_cast<double>(h >> 11) * 0x1.0p-53;  // uniform [0,1)
      weights[v] *= std::exp((u * 2.0 - 1.0) * std::log(3.0));
    }
    return weights;
  };

  for (std::uint64_t a = 0; a < attack_count; ++a) {
    AttackEvent attack;
    attack.start_minute =
        start_minute + static_cast<std::uint32_t>(rng.below(minutes));
    const double duration = 1.0 + rng.exponential(1.0 / profile_.attack_duration_mean_min);
    attack.end_minute =
        attack.start_minute +
        static_cast<std::uint32_t>(
            std::min(duration, static_cast<double>(kMaxAttackDurationMin)));

    // Resample the vector until one active at the attack start is found.
    const std::vector<double> weights = modulated_weights(attack.start_minute);
    for (int tries = 0; tries < 32; ++tries) {
      const net::DdosVector v = vectors[rng.weighted(weights)];
      if (vector_active(v, attack.start_minute)) {
        attack.vector = v;
        break;
      }
      attack.vector = net::DdosVector::kNtp;  // NTP is always active
    }
    attack.victim = random_victim(rng);
    // The Pareto tail is capped relative to the site's (scaled-down)
    // benign volume so one monster attack cannot dwarf everything the
    // balancer could pair it with.
    const double cap = std::min(kMaxAttackFlowsPerMinute,
                                0.5 * profile_.benign_flows_per_minute);
    attack.flows_per_minute =
        std::min(rng.pareto(profile_.attack_flows_per_minute_scale,
                            profile_.attack_flows_per_minute_shape),
                 std::max(cap, 10.0));
    attack.dst_port_sprayed = rng.chance(0.8);
    attack.fixed_dst_port = rng.chance(0.5) ? 80 : 443;

    attack.announces_blackhole = rng.chance(profile_.blackhole_probability);
    if (attack.announces_blackhole) {
      attack.announce_minute =
          attack.start_minute +
          static_cast<std::uint32_t>(rng.exponential(
              1.0 / std::max(profile_.announce_delay_mean_min, 0.01)));
      attack.withdraw_minute =
          attack.end_minute +
          1 + static_cast<std::uint32_t>(rng.exponential(
                  1.0 / std::max(profile_.withdraw_delay_mean_min, 0.01)));
    }
    attacks_.push_back(attack);
  }
  std::sort(attacks_.begin(), attacks_.end(),
            [](const AttackEvent& a, const AttackEvent& b) {
              return a.start_minute < b.start_minute;
            });

  // Spurious blackholes: operator-announced drops on unattacked hosts
  // (maintenance, policy) that sweep benign-only traffic into the class.
  const std::uint64_t spurious =
      rng.poisson(profile_.spurious_blackhole_per_day * days);
  const net::Ipv4Address route_server = net::Ipv4Address::from_octets(10, 255, 0, 1);
  for (std::uint64_t s = 0; s < spurious; ++s) {
    const std::uint32_t at =
        start_minute + static_cast<std::uint32_t>(rng.below(minutes));
    // Cold hosts (uniform over the server space): maintenance blackholes on
    // popular content would not survive operationally.
    const auto member = static_cast<std::uint32_t>(rng.below(profile_.member_count));
    const auto server = static_cast<std::uint32_t>(rng.below(profile_.servers_per_member));
    const net::Ipv4Address host = member_host(member, 100 + server);
    const std::uint32_t until = at + 10 + static_cast<std::uint32_t>(rng.below(120));
    const auto prefix = net::Ipv4Prefix::host(host);
    const auto origin = static_cast<std::uint32_t>(64512 + member_of(host));
    updates_.emplace_back(at, bgp::make_blackhole_announcement(prefix, origin,
                                                               route_server));
    updates_.emplace_back(until, bgp::make_withdrawal(prefix));
  }

  // Attack-triggered announcements.
  for (const auto& attack : attacks_) {
    if (!attack.announces_blackhole) continue;
    const auto prefix = net::Ipv4Prefix::host(attack.victim);
    const auto origin = static_cast<std::uint32_t>(64512 + member_of(attack.victim));
    updates_.emplace_back(attack.announce_minute,
                          bgp::make_blackhole_announcement(prefix, origin,
                                                           route_server));
    updates_.emplace_back(attack.withdraw_minute, bgp::make_withdrawal(prefix));
  }

  std::sort(updates_.begin(), updates_.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  for (const auto& [minute, update] : updates_) registry_.apply(update, minute);
}

void TrafficGenerator::emit_benign_flow(std::uint32_t minute,
                                        std::vector<net::FlowRecord>& out,
                                        util::Rng& rng) const {
  static const std::vector<double> kWeights = [] {
    std::vector<double> w;
    for (const auto& svc : kBenignServices) w.push_back(svc.weight);
    return w;
  }();

  if (rng.chance(profile_.benign_fragment_share)) {
    // Benign trailing fragments (large transfers over UDP).
    net::FlowRecord flow;
    flow.minute = minute;
    flow.src_ip = random_server(rng);
    flow.dst_ip = random_client(rng);
    flow.protocol = 17;
    flow.src_port = 0;
    flow.dst_port = 0;
    flow.packets = 1 + static_cast<std::uint32_t>(rng.below(3));
    flow.bytes = static_cast<std::uint64_t>(
        flow.packets * sample_fragment_size(rng));
    flow.src_member = member_of(flow.src_ip);
    out.push_back(flow);
    return;
  }

  const BenignService& svc = kBenignServices[rng.weighted(kWeights)];
  net::FlowRecord flow;
  flow.minute = minute;
  flow.protocol = svc.protocol;

  const bool response = rng.chance(0.55);
  if (response) {
    // Server -> client: source port is the service port. Infrastructure
    // protocols (DNS/NTP/SNMP) flow back towards the busy *server* hosts
    // themselves — content servers resolve domains, sync clocks, and get
    // SNMP-polled. This is what gives the benign class its well-known-
    // DDoS-port share (~7.5%, Figure 4a) even after per-IP balancing.
    const bool infra = svc.server_port == 53 || svc.server_port == 123 ||
                       svc.server_port == 161;
    flow.src_ip = random_server(rng);
    flow.dst_ip = infra ? random_server(rng) : random_client(rng);
    flow.src_port = svc.server_port != 0 ? svc.server_port : ephemeral_port(rng);
    flow.dst_port = ephemeral_port(rng);
    flow.packets = 1 + static_cast<std::uint32_t>(rng.zipf(16, 1.2));
    const double size = std::clamp(rng.normal(svc.mean_size, svc.stddev_size),
                                   60.0, 1500.0);
    flow.bytes = static_cast<std::uint64_t>(flow.packets * size);
  } else {
    // Client -> server: requests are small.
    flow.src_ip = random_client(rng);
    flow.dst_ip = random_server(rng);
    flow.src_port = ephemeral_port(rng);
    flow.dst_port = svc.server_port != 0 ? svc.server_port : ephemeral_port(rng);
    flow.packets = 1 + static_cast<std::uint32_t>(rng.zipf(8, 1.2));
    const double size = std::clamp(rng.normal(260.0, 140.0), 60.0, 1500.0);
    flow.bytes = static_cast<std::uint64_t>(flow.packets * size);
  }
  if (svc.protocol == 6) flow.tcp_flags = 0x18;  // ACK|PSH
  flow.src_member = member_of(flow.src_ip);
  out.push_back(flow);
}

void TrafficGenerator::emit_benign_flow_to(std::uint32_t minute,
                                           net::Ipv4Address dst,
                                           std::vector<net::FlowRecord>& out,
                                           util::Rng& rng) const {
  // Legitimate traffic still reaching an attacked host: web/API responses
  // and requests addressed to the victim.
  net::FlowRecord flow;
  flow.minute = minute;
  flow.dst_ip = dst;
  flow.src_ip = random_client(rng);
  flow.protocol = rng.chance(0.8) ? 6 : 17;
  flow.src_port = ephemeral_port(rng);
  flow.dst_port = rng.chance(0.7) ? 443 : 80;
  flow.packets = 1 + static_cast<std::uint32_t>(rng.zipf(8, 1.2));
  const double size = std::clamp(rng.normal(420.0, 260.0), 60.0, 1500.0);
  flow.bytes = static_cast<std::uint64_t>(flow.packets * size);
  if (flow.protocol == 6) flow.tcp_flags = 0x18;
  flow.src_member = member_of(flow.src_ip);
  out.push_back(flow);
}

void TrafficGenerator::emit_attack_flows(std::uint32_t minute,
                                         const AttackEvent& attack,
                                         std::vector<net::FlowRecord>& out,
                                         util::Rng& rng) const {
  const auto flow_count = rng.poisson(attack.flows_per_minute);
  const VectorTraffic& model = vector_traffic(attack.vector);
  const net::VectorSignature* signature = nullptr;
  for (const auto& sig : net::vector_signatures()) {
    if (sig.vector == attack.vector) {
      signature = &sig;
      break;
    }
  }

  for (std::uint64_t f = 0; f < flow_count; ++f) {
    const auto slot =
        static_cast<std::uint32_t>(rng.zipf(profile_.reflectors_per_vector, 1.0));
    const net::Ipv4Address reflector = reflector_ip(attack.vector, slot, minute);

    const bool fragment = rng.chance(model.fragment_fraction);
    net::FlowRecord flow;
    flow.minute = minute;
    flow.src_ip = reflector;
    flow.dst_ip = attack.victim;
    if (fragment) {
      flow.protocol = 17;
      flow.src_port = 0;
      flow.dst_port = 0;
      flow.packets = 1 + static_cast<std::uint32_t>(rng.below(4));
      flow.bytes = static_cast<std::uint64_t>(flow.packets *
                                              sample_fragment_size(rng));
    } else {
      flow.protocol = signature != nullptr ? signature->protocol : 17;
      flow.src_port = signature != nullptr ? signature->src_port : 0;
      flow.dst_port = attack.dst_port_sprayed ? ephemeral_port(rng)
                                              : attack.fixed_dst_port;
      if (attack.vector == net::DdosVector::kGre) {
        flow.src_port = 0;
        flow.dst_port = 0;
      }
      flow.packets = 1 + static_cast<std::uint32_t>(rng.below(4));
      flow.bytes = static_cast<std::uint64_t>(
          flow.packets * sample_packet_size(attack.vector, rng));
    }
    flow.src_member = member_of(reflector);
    out.push_back(flow);
  }
}

void TrafficGenerator::generate_minute(std::uint32_t minute, Labeling labeling,
                                       std::vector<net::FlowRecord>& out) const {
  // One RNG stream per minute, derived from (seed, minute): the minute's
  // bytes depend on nothing generated for any other minute, so minutes
  // can be produced in any order — or concurrently — with identical
  // output.
  util::Rng rng = util::Rng(seed_).fork(0xF10775).fork(minute);
  const std::size_t first = out.size();

  // Benign background.
  const auto benign = rng.poisson(profile_.benign_flows_per_minute);
  for (std::uint64_t i = 0; i < benign; ++i) emit_benign_flow(minute, out, rng);

  // Attacks active this minute, in schedule (start, then insertion)
  // order. attacks_ is sorted by start_minute and durations are capped at
  // kMaxAttackDurationMin, so only starts inside that trailing window
  // can still be live.
  const std::uint32_t window_start =
      minute > kMaxAttackDurationMin ? minute - kMaxAttackDurationMin : 0;
  auto it = std::lower_bound(
      attacks_.begin(), attacks_.end(), window_start,
      [](const AttackEvent& a, std::uint32_t m) { return a.start_minute < m; });
  for (; it != attacks_.end() && it->start_minute <= minute; ++it) {
    const AttackEvent& attack = *it;
    if (attack.end_minute <= minute) continue;
    emit_attack_flows(minute, attack, out, rng);
    // Benign traffic that keeps flowing to the victim during the attack.
    const auto benign_to_victim = rng.poisson(
        attack.flows_per_minute * profile_.benign_victim_flow_fraction);
    for (std::uint64_t i = 0; i < benign_to_victim; ++i)
      emit_benign_flow_to(minute, attack.victim, out, rng);
  }

  // Label.
  if (labeling == Labeling::kBlackholeRegistry) {
    for (std::size_t i = first; i < out.size(); ++i)
      out[i].blackholed = registry_.is_blackholed(out[i].dst_ip, minute);
  } else {
    // Ground truth: a flow is an attack flow iff it originates from the
    // reflector address space (128.0.0.0/2) towards a victim host.
    for (std::size_t i = first; i < out.size(); ++i)
      out[i].blackholed = (out[i].src_ip.value() >> 30) == 2;
  }
}

void TrafficGenerator::schedule_control_plane(std::uint32_t start_minute,
                                              std::uint32_t minutes) {
  util::Rng schedule_rng = util::Rng(seed_).fork(0xA77ACC);
  schedule_attacks(start_minute, minutes, schedule_rng);
}

void TrafficGenerator::generate_stream(std::uint32_t start_minute,
                                       std::uint32_t minutes, Labeling labeling,
                                       const MinuteSink& sink,
                                       unsigned threads) {
  // scrubber-deterministic-begin
  schedule_control_plane(start_minute, minutes);

  if (threads <= 1 || minutes <= 1) {
    std::vector<net::FlowRecord> batch;
    for (std::uint32_t m = start_minute; m < start_minute + minutes; ++m) {
      batch.clear();
      generate_minute(m, labeling, batch);
      sink(m, batch);
    }
    return;
  }

  // Parallel path: workers claim minute indices and fill a bounded ring
  // of slots; this (the calling) thread consumes slots in minute order
  // and invokes the sink, preserving the serial sink contract. The slot
  // window bounds memory to `window` minutes of flows.
  const std::uint64_t total = minutes;
  const std::uint64_t window = 4ULL * threads;
  struct Slot {
    std::vector<net::FlowRecord> flows;
    std::atomic<std::uint64_t> ready{0};  ///< minute index + 1 once filled
  };
  std::vector<Slot> slots(window);
  std::atomic<std::uint64_t> next{0};     // next minute index to claim
  std::atomic<std::uint64_t> emitted{0};  // minutes already sunk
  std::atomic<bool> failed{false};
  std::exception_ptr error;
  std::mutex error_mutex;

  // Producers must run while this thread concurrently drains the slot
  // ring; the fork-join pool joins before returning, so it cannot
  // express this pipeline.
  // NOLINTNEXTLINE(scrubber-raw-thread): streaming producers outlive the parallel region
  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (unsigned t = 0; t < threads; ++t) {
    workers.emplace_back([&] {
      for (;;) {
        const std::uint64_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= total) return;
        // Wait for the slot's previous occupant (minute i - window) to be
        // emitted before overwriting it.
        while (i >= emitted.load(std::memory_order_acquire) + window) {
          if (failed.load(std::memory_order_relaxed)) return;
          std::this_thread::yield();
        }
        Slot& slot = slots[i % window];
        try {
          slot.flows.clear();
          generate_minute(start_minute + static_cast<std::uint32_t>(i),
                          labeling, slot.flows);
        } catch (...) {
          {
            const std::scoped_lock lock(error_mutex);
            if (!error) error = std::current_exception();
          }
          failed.store(true, std::memory_order_release);
          return;
        }
        slot.ready.store(i + 1, std::memory_order_release);
      }
    });
  }

  try {
    for (std::uint64_t i = 0; i < total; ++i) {
      Slot& slot = slots[i % window];
      while (slot.ready.load(std::memory_order_acquire) != i + 1) {
        if (failed.load(std::memory_order_acquire)) break;
        std::this_thread::yield();
      }
      if (failed.load(std::memory_order_acquire)) break;
      sink(start_minute + static_cast<std::uint32_t>(i), slot.flows);
      slot.flows.clear();
      emitted.store(i + 1, std::memory_order_release);
    }
  } catch (...) {
    {
      const std::scoped_lock lock(error_mutex);
      if (!error) error = std::current_exception();
    }
    failed.store(true, std::memory_order_release);
  }
  for (auto& worker : workers) worker.join();
  if (error) std::rethrow_exception(error);
  // scrubber-deterministic-end
}

GeneratedTrace TrafficGenerator::generate(std::uint32_t start_minute,
                                          std::uint32_t minutes,
                                          Labeling labeling) {
  GeneratedTrace trace;
  generate_stream(start_minute, minutes, labeling,
                  [&](std::uint32_t, std::span<const net::FlowRecord> flows) {
                    trace.flows.insert(trace.flows.end(), flows.begin(),
                                       flows.end());
                  });
  trace.attacks = attacks_;
  trace.updates = updates_;
  return trace;
}

}  // namespace scrubber::flowgen
