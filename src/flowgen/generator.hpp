#pragma once
// Synthetic IXP traffic generator.
//
// Replaces the paper's proprietary sFlow feed (see DESIGN.md §1). The
// generator pre-schedules DDoS attack events over the requested time range,
// derives the corresponding BGP blackhole announcements/withdrawals (with
// operator noise: detection delay, non-adhering members, spurious
// blackholes), and then streams sampled flows minute by minute. Flow labels
// come from the BlackholeRegistry — *not* from attack ground truth — which
// reproduces the label noise of §3/§4.2: pre-announcement attack flows stay
// unlabeled and benign flows towards blackholed IPs get swept into the
// blackhole class (~12.5% contamination).
//
// Streaming matters: like the paper's online recording, consumers (the
// balancer) can discard unselected flows immediately, so multi-day traces
// never need to be held in memory at once.

#include <functional>
#include <span>
#include <vector>

#include "bgp/blackhole_registry.hpp"
#include "flowgen/profile.hpp"
#include "flowgen/vectors.hpp"
#include "net/flow.hpp"

namespace scrubber::flowgen {

/// Upper bound on one attack's duration (minutes). Bounds the window of
/// attack starts that can affect a given minute, which is what lets
/// minutes generate independently (and therefore in parallel).
inline constexpr std::uint32_t kMaxAttackDurationMin = 120;

/// One scheduled DDoS attack.
struct AttackEvent {
  std::uint32_t start_minute = 0;
  std::uint32_t end_minute = 0;  ///< exclusive
  net::Ipv4Address victim;
  net::DdosVector vector = net::DdosVector::kNtp;
  double flows_per_minute = 0.0;
  bool dst_port_sprayed = true;  ///< random dst ports vs. one popular port
  std::uint16_t fixed_dst_port = 80;
  bool announces_blackhole = false;
  std::uint32_t announce_minute = 0;
  std::uint32_t withdraw_minute = 0;
};

/// Callback receiving each generated minute's flows (labeled, sorted).
using MinuteSink =
    std::function<void(std::uint32_t minute, std::span<const net::FlowRecord>)>;

/// Fully materialized trace for small runs and tests.
struct GeneratedTrace {
  std::vector<net::FlowRecord> flows;
  std::vector<AttackEvent> attacks;
  std::vector<std::pair<std::uint32_t, bgp::UpdateMessage>> updates;
};

/// Streaming synthetic traffic source for one IXP vantage point.
class TrafficGenerator {
 public:
  /// Labeling mode: blackhole-registry labels (production pipeline) or
  /// attack ground truth (self-attack set).
  enum class Labeling { kBlackholeRegistry, kGroundTruth };

  TrafficGenerator(IxpProfile profile, std::uint64_t seed);

  /// Generates minutes [start_minute, start_minute + minutes) and streams
  /// each minute's flows into `sink`.
  ///
  /// Every minute draws from its own RNG stream derived from (seed,
  /// minute), so the trace bytes depend only on the seed and the range —
  /// `threads` > 1 generates minute bins concurrently on worker threads
  /// while this (the calling) thread still invokes `sink` in minute
  /// order. Output is byte-identical for every thread count.
  void generate_stream(std::uint32_t start_minute, std::uint32_t minutes,
                       Labeling labeling, const MinuteSink& sink,
                       unsigned threads = 1);

  /// Schedules the attacks and BGP announcements for the range without
  /// generating any flows. The control plane depends only on (seed,
  /// range), so a wire-listening daemon can pre-draw the exact update
  /// schedule its remote load generator will pace flows against; read the
  /// result from updates()/registry()/attacks().
  void schedule_control_plane(std::uint32_t start_minute,
                              std::uint32_t minutes);

  /// Convenience: materializes the whole trace (use for short ranges).
  [[nodiscard]] GeneratedTrace generate(std::uint32_t start_minute,
                                        std::uint32_t minutes,
                                        Labeling labeling = Labeling::kBlackholeRegistry);

  /// The blackhole registry of the most recent generate call (attack
  /// schedule and announcements for the generated range).
  [[nodiscard]] const bgp::BlackholeRegistry& registry() const noexcept {
    return registry_;
  }

  /// Attack events scheduled by the most recent generate call.
  [[nodiscard]] const std::vector<AttackEvent>& attacks() const noexcept {
    return attacks_;
  }

  /// BGP updates (with their minute) from the most recent generate call.
  [[nodiscard]] const std::vector<std::pair<std::uint32_t, bgp::UpdateMessage>>&
  updates() const noexcept {
    return updates_;
  }

  /// Reflector IP of pool `slot` for `vector` during `minute` (exposed so
  /// tests can verify churn and cross-IXP disjointness).
  [[nodiscard]] net::Ipv4Address reflector_ip(net::DdosVector vector,
                                              std::uint32_t slot,
                                              std::uint32_t minute) const noexcept;

  [[nodiscard]] const IxpProfile& profile() const noexcept { return profile_; }

 private:
  void schedule_attacks(std::uint32_t start_minute, std::uint32_t minutes,
                        util::Rng& rng);
  /// Appends minute `minute`'s labeled flows to `out` using the minute's
  /// own derived RNG stream. Const and data-race-free against concurrent
  /// calls for other minutes (reads only the frozen schedule/registry),
  /// which is what the parallel generate_stream path relies on.
  void generate_minute(std::uint32_t minute, Labeling labeling,
                       std::vector<net::FlowRecord>& out) const;
  void emit_benign_flow(std::uint32_t minute, std::vector<net::FlowRecord>& out,
                        util::Rng& rng) const;
  void emit_benign_flow_to(std::uint32_t minute, net::Ipv4Address dst,
                           std::vector<net::FlowRecord>& out,
                           util::Rng& rng) const;
  void emit_attack_flows(std::uint32_t minute, const AttackEvent& attack,
                         std::vector<net::FlowRecord>& out,
                         util::Rng& rng) const;

  [[nodiscard]] net::Ipv4Address member_host(std::uint32_t member,
                                             std::uint32_t host) const noexcept;
  [[nodiscard]] net::Ipv4Address random_victim(util::Rng& rng) const noexcept;
  [[nodiscard]] net::Ipv4Address random_server(util::Rng& rng) const noexcept;
  [[nodiscard]] net::Ipv4Address random_client(util::Rng& rng) const noexcept;
  [[nodiscard]] net::MemberId member_of(net::Ipv4Address ip) const noexcept;
  [[nodiscard]] bool vector_active(net::DdosVector vector,
                                   std::uint32_t minute) const noexcept;

  IxpProfile profile_;
  std::uint64_t seed_;
  bgp::BlackholeRegistry registry_;
  std::vector<AttackEvent> attacks_;
  std::vector<std::pair<std::uint32_t, bgp::UpdateMessage>> updates_;
};

}  // namespace scrubber::flowgen
