#include "flowgen/vectors.hpp"

#include <algorithm>
#include <array>

namespace scrubber::flowgen {
namespace {

using net::DdosVector;

// Packet-size models per vector. Means/deviations follow commonly reported
// response sizes (monlist ~468 B, SSDP ~310 B, CLDAP/memcached near MTU
// with fragments, ...). Prevalence weights shape the attack mix so that
// the "top 7" of Table 3 dominate, as in the paper's dataset.
constexpr std::array<VectorTraffic, net::kDdosVectorCount> kTraffic{{
    {DdosVector::kUdpFragment, 760.0, 350.0, 0.00, 0.00},  // only as companion
    {DdosVector::kDns, 1280.0, 180.0, 0.45, 0.22},
    {DdosVector::kNtp, 468.0, 18.0, 0.05, 0.24},
    {DdosVector::kSnmp, 920.0, 260.0, 0.20, 0.10},
    {DdosVector::kLdap, 1440.0, 90.0, 0.40, 0.12},
    {DdosVector::kSsdp, 310.0, 40.0, 0.02, 0.12},
    {DdosVector::kAppleRd, 380.0, 28.0, 0.02, 0.06},
    {DdosVector::kMemcached, 1430.0, 70.0, 0.70, 0.03},
    {DdosVector::kChargen, 400.0, 150.0, 0.05, 0.02},
    {DdosVector::kWsDiscovery, 650.0, 80.0, 0.05, 0.015},
    {DdosVector::kRpcbind, 360.0, 40.0, 0.02, 0.012},
    {DdosVector::kMssql, 310.0, 30.0, 0.02, 0.012},
    {DdosVector::kDnsTcp, 800.0, 300.0, 0.00, 0.01},
    {DdosVector::kUbiquiti, 390.0, 30.0, 0.02, 0.008},
    {DdosVector::kDhcpDiscover, 300.0, 30.0, 0.02, 0.004},
    {DdosVector::kGre, 1100.0, 250.0, 0.00, 0.006},
    {DdosVector::kWccp, 1380.0, 90.0, 0.05, 0.004},
    {DdosVector::kNetbios, 230.0, 25.0, 0.02, 0.008},
    {DdosVector::kRip, 504.0, 20.0, 0.02, 0.006},
    {DdosVector::kOpenVpn, 420.0, 60.0, 0.02, 0.006},
    {DdosVector::kTftp, 516.0, 30.0, 0.02, 0.006},
    {DdosVector::kMsTerminal, 1260.0, 100.0, 0.05, 0.008},
}};

}  // namespace

const VectorTraffic& vector_traffic(net::DdosVector v) noexcept {
  return kTraffic[static_cast<std::size_t>(v)];
}

double sample_packet_size(net::DdosVector v, util::Rng& rng) noexcept {
  const VectorTraffic& model = vector_traffic(v);
  const double size = rng.normal(model.mean_packet_size, model.stddev_packet_size);
  return std::clamp(size, 60.0, 1500.0);
}

double sample_fragment_size(util::Rng& rng) noexcept {
  // Trailing fragments of near-MTU amplification responses: broad sizes.
  const double size = rng.normal(760.0, 350.0);
  return std::clamp(size, 100.0, 1480.0);
}

}  // namespace scrubber::flowgen
