#pragma once
// IXP vantage-point profiles.
//
// Each profile parameterizes the synthetic substrate for one of the five
// IXPs of §4.1 (relative scale follows Table 2: IXP-CE1 is by far the
// largest, IXP-CE2 the smallest and rarely blackholed) plus the self-attack
// setup of §4.1. Flow volumes are scaled down ~1:300 against the paper's
// multi-terabyte traces so every experiment runs on a laptop while
// preserving the distributional shape (blackhole share < 0.8% of traffic,
// heavy-tailed attack intensities, per-IXP disjoint reflector pools).

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "net/protocols.hpp"

namespace scrubber::flowgen {

/// Configuration of one synthetic IXP vantage point.
struct IxpProfile {
  std::string name;

  // --- topology ---
  std::uint32_t member_count = 200;       ///< connected ASes / member ports
  std::uint32_t victims_per_member = 6;   ///< potential DDoS targets per member
  std::uint32_t servers_per_member = 24;  ///< benign service hosts per member
  std::uint32_t client_pool = 50000;      ///< benign remote client IP pool

  // --- benign traffic ---
  double benign_flows_per_minute = 500.0;
  double benign_ddos_port_share = 0.075;  ///< Fig 4a: ~7.5% well-known DDoS ports
  double benign_fragment_share = 0.004;   ///< small UDP-fragment background

  // --- attacks ---
  double attacks_per_day = 20.0;
  double attack_duration_mean_min = 9.0;        ///< exponential mean, minutes
  double attack_flows_per_minute_scale = 25.0;  ///< Pareto scale (xm)
  double attack_flows_per_minute_shape = 1.6;   ///< Pareto shape (alpha)
  double benign_victim_flow_fraction = 0.13;    ///< benign share reaching victims

  // --- reflectors ---
  std::uint32_t reflectors_per_vector = 400;  ///< pool size per vector
  double reflector_churn_weeks = 6.0;         ///< mean reflector lifetime
  std::uint64_t reflector_universe_seed = 1;  ///< per-IXP pool decorrelation

  // --- blackholing behavior ---
  double blackhole_probability = 0.85;   ///< victim AS announces a blackhole
  double announce_delay_mean_min = 1.5;  ///< detection delay before announcing
  double withdraw_delay_mean_min = 12.0; ///< lag after the attack ends
  double spurious_blackhole_per_day = 0.3;  ///< blackholes on unattacked IPs

  // --- drift ---
  /// First week (from absolute minute 0) a vector appears at this IXP;
  /// vectors absent from the map are active from week 0.
  std::map<net::DdosVector, std::uint32_t> vector_onset_week;

  /// Deterministic per-IXP seed folded into all address pools.
  [[nodiscard]] std::uint64_t pool_seed() const noexcept {
    return reflector_universe_seed;
  }
};

/// The five evaluation IXPs of §4.1, scaled down for laptop-scale runs.
[[nodiscard]] IxpProfile ixp_ce1();  ///< central Europe, very large (>800 ASes)
[[nodiscard]] IxpProfile ixp_us1();  ///< US east coast, large
[[nodiscard]] IxpProfile ixp_se();   ///< southern Europe, mid (2-year dataset)
[[nodiscard]] IxpProfile ixp_us2();  ///< US south, small, rare blackholing
[[nodiscard]] IxpProfile ixp_ce2();  ///< central Europe, smallest

/// IXP-SE variant with staged vector onsets for the §6.5 new-vector study
/// (SNMP appears at week 10, SSDP at week 14, memcached at week 40).
[[nodiscard]] IxpProfile ixp_se_longitudinal();

/// All five standard profiles in Table 2 order (CE1, US1, SE, US2, CE2).
[[nodiscard]] std::vector<IxpProfile> all_ixp_profiles();

/// Profile of the self-attack experiment (§4.1): a dedicated victim AS,
/// disjoint reflector universe, pure attack + contemporaneous benign data.
[[nodiscard]] IxpProfile self_attack_profile();

}  // namespace scrubber::flowgen
