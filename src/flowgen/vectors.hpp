#pragma once
// Per-vector DDoS traffic models: packet-size distributions, fragment
// ratios, and relative prevalence. Parameters follow the published
// characteristics of reflection/amplification vectors (e.g. NTP monlist
// replies around 468 bytes, CLDAP/memcached at MTU with heavy trailing
// fragments) so that Figure 4b's packet-size signatures reproduce.

#include <cstdint>

#include "net/protocols.hpp"
#include "util/rng.hpp"

namespace scrubber::flowgen {

/// Traffic model of one attack vector.
struct VectorTraffic {
  net::DdosVector vector;
  double mean_packet_size;     ///< bytes, of the non-fragment response packets
  double stddev_packet_size;   ///< bytes
  double fragment_fraction;    ///< share of accompanying UDP-fragment flows
  double prevalence;           ///< relative weight when sampling attack vectors
};

/// Model for a vector; every DdosVector has an entry.
[[nodiscard]] const VectorTraffic& vector_traffic(net::DdosVector v) noexcept;

/// Samples a packet size (bytes, clamped to [60, 1500]) for a vector's
/// non-fragment packets.
[[nodiscard]] double sample_packet_size(net::DdosVector v, util::Rng& rng) noexcept;

/// Samples a packet size for a UDP trailing fragment.
[[nodiscard]] double sample_fragment_size(util::Rng& rng) noexcept;

}  // namespace scrubber::flowgen
