#include "flowgen/profile.hpp"

namespace scrubber::flowgen {

IxpProfile ixp_ce1() {
  IxpProfile p;
  p.name = "IXP-CE1";
  p.member_count = 800;
  p.victims_per_member = 8;
  p.servers_per_member = 30;
  p.client_pool = 120000;
  p.benign_flows_per_minute = 2200.0;
  p.attacks_per_day = 110.0;
  p.attack_flows_per_minute_scale = 30.0;
  p.reflectors_per_vector = 700;
  p.reflector_universe_seed = 0xCE1;
  p.blackhole_probability = 0.88;
  return p;
}

IxpProfile ixp_us1() {
  IxpProfile p;
  p.name = "IXP-US1";
  p.member_count = 250;
  p.benign_flows_per_minute = 420.0;
  p.attacks_per_day = 28.0;
  p.attack_flows_per_minute_scale = 14.0;
  p.reflectors_per_vector = 420;
  p.reflector_universe_seed = 0x0051;
  p.blackhole_probability = 0.85;
  return p;
}

IxpProfile ixp_se() {
  IxpProfile p;
  p.name = "IXP-SE";
  p.member_count = 209;
  p.benign_flows_per_minute = 210.0;
  p.attacks_per_day = 14.0;
  p.attack_flows_per_minute_scale = 10.0;
  p.reflectors_per_vector = 320;
  p.reflector_universe_seed = 0x005E;
  p.blackhole_probability = 0.86;
  return p;
}

IxpProfile ixp_us2() {
  IxpProfile p;
  p.name = "IXP-US2";
  p.member_count = 103;
  p.benign_flows_per_minute = 160.0;
  p.attacks_per_day = 2.2;
  p.attack_flows_per_minute_scale = 8.0;
  p.reflectors_per_vector = 180;
  p.reflector_universe_seed = 0x0052;
  p.blackhole_probability = 0.55;  // members rarely adhere to blackholing
  p.spurious_blackhole_per_day = 0.2;
  return p;
}

IxpProfile ixp_ce2() {
  IxpProfile p;
  p.name = "IXP-CE2";
  p.member_count = 211;
  p.benign_flows_per_minute = 120.0;
  p.attacks_per_day = 0.9;
  p.attack_flows_per_minute_scale = 7.0;
  p.reflectors_per_vector = 140;
  p.reflector_universe_seed = 0xCE2;
  p.blackhole_probability = 0.5;
  p.spurious_blackhole_per_day = 0.1;
  return p;
}

IxpProfile ixp_se_longitudinal() {
  IxpProfile p = ixp_se();
  p.name = "IXP-SE";
  p.vector_onset_week[net::DdosVector::kSnmp] = 10;
  p.vector_onset_week[net::DdosVector::kSsdp] = 14;
  p.vector_onset_week[net::DdosVector::kMemcached] = 40;
  return p;
}

std::vector<IxpProfile> all_ixp_profiles() {
  return {ixp_ce1(), ixp_us1(), ixp_se(), ixp_us2(), ixp_ce2()};
}

IxpProfile self_attack_profile() {
  IxpProfile p;
  p.name = "SAS";
  p.member_count = 40;
  p.victims_per_member = 2;
  p.benign_flows_per_minute = 320.0;
  // Controlled experiment: frequent short attacks on a dedicated AS, all
  // "labeled" by construction (ground truth, not blackholing).
  p.attacks_per_day = 220.0;
  p.attack_duration_mean_min = 4.0;  // booter packages run < 5 minutes
  p.attack_flows_per_minute_scale = 14.0;  // booter packages are small (<7 Gbps)
  p.reflectors_per_vector = 260;
  p.reflector_universe_seed = 0x5A5;  // disjoint reflector universe
  p.blackhole_probability = 1.0;
  p.announce_delay_mean_min = 0.0;   // ground truth: no detection delay
  p.withdraw_delay_mean_min = 0.0;
  p.spurious_blackhole_per_day = 0.0;
  return p;
}

}  // namespace scrubber::flowgen
